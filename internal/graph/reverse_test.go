package graph

import (
	"errors"
	"math/rand"
	"testing"
)

// TestLongestIntoRestrictedMatchesForward: for every visible source u, the
// reverse restricted distances into dst equal the forward restricted
// distance from u to dst.
func TestLongestIntoRestrictedMatchesForward(t *testing.T) {
	g, r := line()
	r.Overlay = make([][]Edge, 2)
	r.Overlay[0] = []Edge{{To: 5, Weight: 7}}
	r.ROverlay = make([][]Edge, 8)
	r.ROverlay[5] = []Edge{{To: 0, Weight: 7}}
	r.BoundaryTo = []int32{0, 1}
	r.BoundaryWeight = 1
	r.BoundaryFrom = []int32{4, 7} // vertices at the current limits
	var fwd, rev Scratch
	for dst := 0; dst < 8; dst++ {
		into, err := g.LongestIntoRestricted(&rev, dst, r)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]int64(nil), into...)
		for src := 0; src < 8; src++ {
			from, err := g.LongestRestricted(&fwd, src, r)
			if err != nil {
				t.Fatal(err)
			}
			if from[dst] != got[src] {
				t.Fatalf("dst %d src %d: forward %d reverse %d", dst, src, from[dst], got[src])
			}
		}
	}
}

// TestRelaxReverseRestrictedWarmMatchesFresh replays the growth scenario of
// TestRestrictedOverlayAndBoundary backwards: after limits grow, a warm
// reverse restart seeded with the HEADS of the newly visible edges (and the
// anchors whose boundary edge moved) matches a fresh reverse run.
func TestRelaxReverseRestrictedWarmMatchesFresh(t *testing.T) {
	g, r := line()
	r.Limit = []int32{1, 1}
	refreshVisible(r)
	r.Overlay = make([][]Edge, 2)
	r.Overlay[0] = []Edge{{To: 5, Weight: 7}}
	r.ROverlay = make([][]Edge, 8)
	r.ROverlay[5] = []Edge{{To: 0, Weight: 7}}
	r.BoundaryTo = []int32{0, 1}
	r.BoundaryWeight = 1
	r.BoundaryFrom = []int32{3, 6}
	var s Scratch
	if _, err := g.LongestIntoRestricted(&s, 1, r); err != nil {
		t.Fatal(err)
	}
	// Grow both limits: vertices 4 and 7 become visible, the boundary edges
	// move. Reverse seeds are edge HEADS: the new successor edges' heads
	// (4, 7) and the anchors whose moved boundary edge now starts there
	// (0, 1).
	r.Limit = []int32{2, 2}
	refreshVisible(r)
	r.BoundaryFrom = []int32{4, 7}
	warm, err := g.RelaxReverseRestrictedFrom(&s, []int{4, 7, 0, 1}, []int{4, 7}, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Scratch
	fresh, err := g.LongestIntoRestricted(&s2, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fresh {
		if warm[v] != fresh[v] {
			t.Fatalf("warm reverse restart diverges at %d: %d vs %d", v, warm[v], fresh[v])
		}
	}
}

// TestRelaxReverseRefreshAfterRemoval: removing an out-edge of an anchor can
// LOWER reverse distances of the anchor and everything whose derivation
// routed through it. Refreshing that whole family — including vertices that
// re-derive through each other, as the auxiliary band does through its E”'
// edges — converges to the new, lower fixpoint exactly.
func TestRelaxReverseRefreshAfterRemoval(t *testing.T) {
	g, r := line()
	r.Overlay = make([][]Edge, 2)
	r.Overlay[0] = []Edge{{To: 5, Weight: 7}}
	r.ROverlay = make([][]Edge, 8)
	r.ROverlay[5] = []Edge{{To: 0, Weight: 7}}
	r.BoundaryTo = []int32{0, 1}
	r.BoundaryWeight = 1
	r.BoundaryFrom = []int32{4, 7}
	var s Scratch
	dist, err := g.LongestIntoRestricted(&s, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int64(nil), dist...) // dist aliases s and is reused below
	// 2 reaches 1 through the overlay edge 0 --7--> 5.
	if before[2] == NegInf {
		t.Fatal("fixture: 2 should reach 1")
	}
	// Retire the overlay edge. The anchor loses its only exit, and band 0
	// (2, 3, 4), whose paths to 1 ran through the anchor, regresses with it
	// except where the cross edge 3 --5--> 6 survives: the refresh list is
	// the whole affected family.
	r.Overlay[0] = nil
	r.ROverlay[5] = nil
	warm, err := g.RelaxReverseRestrictedFrom(&s, nil, nil, []int{0, 2, 3, 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Scratch
	fresh, err := g.LongestIntoRestricted(&s2, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fresh {
		if warm[v] != fresh[v] {
			t.Fatalf("refresh diverges at %d: %d vs %d", v, warm[v], fresh[v])
		}
	}
	if warm[0] != NegInf {
		t.Fatalf("anchor 0 should regress to unreachable after retirement: %d -> %d", before[0], warm[0])
	}
	if warm[3] == NegInf || warm[3] >= before[3] {
		t.Fatalf("vertex 3 should regress to the cross-edge path: %d -> %d", before[3], warm[3])
	}
}

// TestRelaxReverseFromMatchesFresh: the unrestricted warm reverse restart
// over randomized growth sequences matches LongestIntoWith at every step.
func TestRelaxReverseFromMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		g := New(n)
		var s Scratch
		dst := rng.Intn(n)
		if _, err := g.LongestIntoWith(&s, dst); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			var seeds []int
			for e := 0; e < 1+rng.Intn(3); e++ {
				u, v := rng.Intn(len(g.adj)), rng.Intn(len(g.adj))
				// Negative-leaning weights keep positive cycles rare.
				g.AddEdge(u, v, rng.Intn(7)-4)
				seeds = append(seeds, v)
			}
			if rng.Intn(3) == 0 {
				g.AddVertex()
			}
			warm, warmErr := g.RelaxReverseFrom(&s, seeds, nil)
			var s2 Scratch
			fresh, freshErr := g.LongestIntoWith(&s2, dst)
			if (warmErr == nil) != (freshErr == nil) {
				t.Fatalf("trial %d step %d: warm err %v, fresh err %v", trial, step, warmErr, freshErr)
			}
			if warmErr != nil {
				break // inconsistent graph: recompute-from-scratch territory
			}
			for v := range fresh {
				if warm[v] != fresh[v] {
					t.Fatalf("trial %d step %d vertex %d: warm %d fresh %d", trial, step, v, warm[v], fresh[v])
				}
			}
		}
	}
}

// TestRelaxReverseFromRefreshUnrestricted: removal + refresh on the plain
// graph API re-derives tails from their surviving out-edges.
func TestRelaxReverseFromRefreshUnrestricted(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 9)
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 3, 1)
	var s Scratch
	dist, err := g.LongestIntoWith(&s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 10 {
		t.Fatalf("dist[0] = %d, want 10", dist[0])
	}
	if !g.RemoveEdge(0, 2, 9) {
		t.Fatal("edge not found")
	}
	warm, err := g.RelaxReverseFrom(&s, nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if warm[0] != 3 {
		t.Fatalf("after removal dist[0] = %d, want 3", warm[0])
	}
}

// TestRelaxReverseFromValidation mirrors the forward API's error contract.
func TestRelaxReverseFromValidation(t *testing.T) {
	g := New(3)
	var s Scratch
	if _, err := g.RelaxReverseFrom(&s, nil, nil); err == nil {
		t.Fatal("no prior computation: want error")
	}
	if _, err := g.LongestIntoWith(&s, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RelaxReverseFrom(&s, []int{7}, nil); err == nil {
		t.Fatal("out-of-range seed: want error")
	}
	if _, err := g.RelaxReverseFrom(&s, nil, []int{-1}); err == nil {
		t.Fatal("out-of-range refresh: want error")
	}
	var r Restriction
	if _, err := g.LongestIntoRestricted(&s, 9, &r); err == nil {
		t.Fatal("out-of-range destination: want error")
	}
}

// TestReverseRestrictedPositiveCycle: a visible positive cycle reachable
// backwards from the destination is detected; masked out, it is not.
func TestReverseRestrictedPositiveCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 1, 1) // positive cycle 1<->2
	g.AddEdge(2, 3, 1)
	r := &Restriction{
		Band:  []int32{0, 0, 0, 0},
		Idx:   []int32{AlwaysVisible, 0, 1, 2},
		Limit: []int32{2},
	}
	refreshVisible(r)
	var s Scratch
	if _, err := g.LongestIntoRestricted(&s, 3, r); !errors.Is(err, ErrPositiveCycle) {
		t.Fatalf("got %v, want ErrPositiveCycle", err)
	}
	r.Limit[0] = 0 // hide the cycle (and the destination's band suffix)
	refreshVisible(r)
	if _, err := g.LongestIntoRestricted(&s, 0, r); err != nil {
		t.Fatalf("masked cycle still reported: %v", err)
	}
}
