// Command bench-export runs the repository's scaling benchmark suite
// programmatically (the same bodies go test -bench runs, via internal/bench)
// and writes the results as a JSON perf-trajectory snapshot, by default to
// BENCH_<date>.json in the current directory. Committing one snapshot per
// perf-relevant change turns the benchmark numbers quoted in commit
// messages into a queryable series; EXPERIMENTS.md documents the workflow.
//
// Usage:
//
//	bench-export [-out file] [-benchtime 1x|100ms|...] [-filter substr] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/clockless/zigzag/internal/bench"
)

// result is one benchmark cell of the exported snapshot.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// snapshot is the exported file layout.
type snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

func main() {
	testing.Init() // registers -test.* flags: required to Benchmark outside go test
	var (
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		benchtime = flag.String("benchtime", "1x", "per-benchmark budget, as go test -benchtime (e.g. 1x, 100ms)")
		filter    = flag.String("filter", "", "only run cases whose name contains this substring")
		list      = flag.Bool("list", false, "list case names and exit")
	)
	flag.Parse()
	cases := bench.ExportCases()
	if *list {
		for _, c := range cases {
			fmt.Println(c.Name)
		}
		return
	}
	// testing.Benchmark honors the -test.benchtime flag; set it explicitly
	// so the export is self-contained.
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}
	snap := snapshot{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
	}
	for _, c := range cases {
		if *filter != "" && !strings.Contains(c.Name, *filter) {
			continue
		}
		br := testing.Benchmark(c.Run)
		r := result{
			Name:        c.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		fmt.Printf("%-28s %12.0f ns/op %10d allocs/op %12d B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		snap.Results = append(snap.Results, r)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark cases matched")
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("perf snapshot written to %s (%d cells)\n", path, len(snap.Results))
}
