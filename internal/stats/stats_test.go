package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %f", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %f", s.P50)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stddev = %f", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.P50 != 7 || s.Stddev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4})
	if s.Mean != 3 {
		t.Errorf("mean = %f", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}

// TestPercentileInvariants: min <= p50 <= p90 <= p99 <= max, and all
// percentiles lie within the sample's range.
func TestPercentileInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	if c.String() != "(empty)" {
		t.Errorf("empty = %q", c.String())
	}
	c.Add("pass")
	c.Add("pass")
	c.Add("fail")
	if c.Get("pass") != 2 || c.Get("fail") != 1 || c.Get("other") != 0 {
		t.Error("counts wrong")
	}
	if c.Total() != 3 {
		t.Errorf("total = %d", c.Total())
	}
	if got := c.String(); got != "pass=2 fail=1" {
		t.Errorf("render = %q", got)
	}
}
