package run

import (
	"fmt"

	"github.com/clockless/zigzag/internal/model"
)

// Validate checks that the recording is the prefix of a legal run of the
// FFIP in the bounded context:
//
//  1. node times start at 0 and strictly increase along each timeline, and
//     never exceed the horizon;
//  2. every non-initial node is created by at least one receipt (message or
//     external); initial nodes receive nothing;
//  3. every delivery travels an existing channel, is sent by a non-initial
//     node at that node's time, and its latency lies within [L, U];
//  4. the environment never misses a deadline: a message sent at time t on a
//     channel with upper bound U is delivered by t+U whenever t+U lies
//     within the horizon (FFIP sends on every outgoing channel at every
//     non-initial node);
//  5. at most one message per (node, channel);
//  6. externals land on non-initial nodes at the node's time.
//
// Build establishes most of these by construction; Validate re-checks them
// all independently so that synthesized runs (slow/fast constructions) are
// audited end to end.
func (r *Run) Validate() error {
	net := r.net
	// 1. Timeline monotonicity.
	for _, p := range net.Procs() {
		ts := r.times[p-1]
		if len(ts) == 0 || ts[0] != 0 {
			return fmt.Errorf("%w: process %d has no initial node at time 0", ErrNonMonotoneTimes, p)
		}
		for k := 1; k < len(ts); k++ {
			if ts[k] <= ts[k-1] {
				return fmt.Errorf("%w: process %d node %d at %d after node %d at %d",
					ErrNonMonotoneTimes, p, k, ts[k], k-1, ts[k-1])
			}
			if ts[k] > r.horizon {
				return fmt.Errorf("%w: node %s at %d", ErrOutsideHorizon, BasicNode{Proc: p, Index: k}, ts[k])
			}
		}
	}

	// 2. Node creation discipline.
	for _, p := range net.Procs() {
		for k := 0; k <= r.LastIndex(p); k++ {
			b := BasicNode{Proc: p, Index: k}
			sp := r.inbox[r.flat(b)]
			receipts := int(sp.hi-sp.lo) + len(r.extIn[b])
			if k == 0 && receipts != 0 {
				return fmt.Errorf("run: initial node %s has %d receipts", b, receipts)
			}
			if k > 0 && receipts == 0 {
				return fmt.Errorf("%w: %s", ErrOrphanNode, b)
			}
		}
	}

	// 3. Delivery legality. The channel is re-resolved from the endpoint
	// pair — independently of the recorded dense id, which must agree.
	for _, d := range r.deliveries {
		ch := d.Channel()
		cid := net.ChanIDOf(ch.From, ch.To)
		if cid == model.NoChan {
			return fmt.Errorf("%w: %s", ErrChannelMissing, d)
		}
		if d.Chan != cid {
			return fmt.Errorf("%w: %s carries channel id %d, want %d", ErrChannelMissing, d, d.Chan, cid)
		}
		bd := net.BoundsOf(cid)
		if d.From.IsInitial() {
			return fmt.Errorf("%w: %s", ErrInitialSend, d)
		}
		st, err := r.Time(d.From)
		if err != nil {
			return fmt.Errorf("run: delivery %s: %w", d, err)
		}
		if st != d.SendTime {
			return fmt.Errorf("%w: delivery %s sender node time %d", ErrTimeMismatch, d, st)
		}
		rt, err := r.Time(d.To)
		if err != nil {
			return fmt.Errorf("run: delivery %s: %w", d, err)
		}
		if rt != d.RecvTime {
			return fmt.Errorf("%w: delivery %s receiver node time %d", ErrTimeMismatch, d, rt)
		}
		if lat := d.RecvTime - d.SendTime; lat < bd.Lower || lat > bd.Upper {
			return fmt.Errorf("%w: %s latency %d outside %s", ErrBadDelivery, d, lat, bd)
		}
	}

	// 4+5. Forced-delivery discipline and single send per channel.
	for _, p := range net.Procs() {
		for k := 1; k <= r.LastIndex(p); k++ {
			from := BasicNode{Proc: p, Index: k}
			st := r.times[p-1][k]
			for _, a := range net.OutArcs(p) {
				_, delivered := r.DeliveryFrom(from, a.To)
				if !delivered && st+a.Bounds.Upper <= r.horizon {
					return fmt.Errorf("%w: message %s->%d sent at %d, deadline %d, horizon %d",
						ErrMissedDeadline, from, a.To, st, st+a.Bounds.Upper, r.horizon)
				}
			}
		}
	}

	// 6. Externals.
	for _, e := range r.externals {
		if e.To.IsInitial() {
			return fmt.Errorf("%w: %s", ErrExternalToInitial, e)
		}
		t, err := r.Time(e.To)
		if err != nil {
			return fmt.Errorf("run: external %s: %w", e, err)
		}
		if t != e.Time {
			return fmt.Errorf("%w: external %s node time %d", ErrTimeMismatch, e, t)
		}
	}
	return nil
}
