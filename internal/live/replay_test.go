package live

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

// runScenarioWith executes a scenario end to end through the given execution
// engine (Run or Replay) with one Protocol2 agent per task.
func runScenarioWith(t *testing.T, label string, exec func(Config) (*Result, error), sc *scenario.Scenario, policy sim.Policy, chunk int) *Result {
	t.Helper()
	agents, agentMap := NewTaskAgents(sc.TaskList())
	res, err := exec(Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: policy,
		Externals: sc.Externals, Agents: agentMap, ReplayChunk: chunk,
	})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for i, a := range agents {
		if err := a.Err(); err != nil {
			t.Fatalf("%s: agent %d: %v", label, i, err)
		}
	}
	return res
}

// requireIdenticalActions asserts two executions acted at the same nodes,
// times and labels, in the same order.
func requireIdenticalActions(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Actions) != len(want.Actions) {
		t.Fatalf("%s: actions %d vs %d", label, len(got.Actions), len(want.Actions))
	}
	for i := range got.Actions {
		if got.Actions[i] != want.Actions[i] {
			t.Fatalf("%s: action %d: %+v vs %+v", label, i, got.Actions[i], want.Actions[i])
		}
	}
}

// TestReplayMatchesGoroutineOnFullRegistry is the replay mode's correctness
// contract: on EVERY registry scenario at the full multi-agent ceiling
// (coord-m16 and coord-early-m16 included), the goroutine-free replay drive
// must record a byte-identical run — same deliveries, externals, pending
// messages, node times and content fingerprint — and make every Protocol2
// agent act at exactly the same nodes as the goroutine-per-process
// environment, under both a seeded uniform and a seeded heavy-tailed policy.
func TestReplayMatchesGoroutineOnFullRegistry(t *testing.T) {
	policies := []struct {
		name string
		mk   func(seed int64) sim.Policy
	}{
		{"eager", func(int64) sim.Policy { return sim.Eager{} }},
		{"random", func(seed int64) sim.Policy { return sim.NewRandom(seed) }},
		{"heavy", func(seed int64) sim.Policy { return sim.NewHeavyTail(seed) }},
	}
	for _, sc := range scenario.All(scenario.RegistrySized(0, 16)) {
		for _, pol := range policies {
			seed := int64(17)
			label := fmt.Sprintf("%s/%s", sc.Name, pol.name)
			want := runScenarioWith(t, label+"/goroutine", Run, sc, pol.mk(seed), 0)
			got := runScenarioWith(t, label+"/replay", Replay, sc, pol.mk(seed), 0)
			requireIdenticalRuns(t, label, got.Run, want.Run)
			requireIdenticalActions(t, label, got, want)
			if got.Run.Fingerprint() != want.Run.Fingerprint() {
				t.Fatalf("%s: fingerprint %#x vs %#x", label, got.Run.Fingerprint(), want.Run.Fingerprint())
			}
			if want.ReplayBatches != 0 || want.ReplayChunks != 0 {
				t.Fatalf("%s: goroutine execution reported replay counters %d/%d",
					label, want.ReplayBatches, want.ReplayChunks)
			}
			if got.ReplayBatches == 0 || got.ReplayChunks == 0 {
				t.Fatalf("%s: replay execution reported no streaming counters", label)
			}
		}
	}
}

// TestReplayStreamsChunks pins the streaming path: a chunk bound far below
// the schedule's batch count must force many recorder/driver handoffs while
// leaving the recording and every action byte-identical, and the chunk
// count must shrink as the bound grows.
func TestReplayStreamsChunks(t *testing.T) {
	sc := scenario.MultiAgent(4)
	policy := func() sim.Policy { return sim.NewRandom(7) }
	want := runScenarioWith(t, "goroutine", Run, sc, policy(), 0)
	small := runScenarioWith(t, "replay/chunk=3", Replay, sc, policy(), 3)
	big := runScenarioWith(t, "replay/default", Replay, sc, policy(), 0)

	requireIdenticalRuns(t, "chunk=3", small.Run, want.Run)
	requireIdenticalActions(t, "chunk=3", small, want)
	requireIdenticalRuns(t, "default", big.Run, want.Run)
	requireIdenticalActions(t, "default", big, want)

	if small.ReplayBatches != big.ReplayBatches {
		t.Fatalf("batch count depends on chunk size: %d vs %d", small.ReplayBatches, big.ReplayBatches)
	}
	if small.ReplayChunks <= big.ReplayChunks {
		t.Fatalf("chunk=3 streamed %d chunks, default streamed %d — want strictly more",
			small.ReplayChunks, big.ReplayChunks)
	}
	// Whole ticks are emitted per fill: a chunk may exceed the bound by one
	// tick's batches, but never by the network size.
	minChunks := small.ReplayBatches / (3 + sc.Net.N())
	if small.ReplayChunks < minChunks {
		t.Fatalf("chunk=3 streamed only %d chunks for %d batches", small.ReplayChunks, small.ReplayBatches)
	}
}

// TestReplayLongHorizonHeavyFamily runs the replay-only scenario family —
// long-horizon heavy-tail coordination at m=4 and m=16 — end to end in
// replay mode and cross-checks the m=4 member against the goroutine oracle.
// (The family exists because goroutine mode can't afford these horizons at
// scale; the oracle check on the small member keeps it honest without
// paying the big one twice.)
func TestReplayLongHorizonHeavyFamily(t *testing.T) {
	fam := scenario.ReplayFamily()
	if len(fam) == 0 {
		t.Fatal("empty replay family")
	}
	for _, sc := range fam {
		policy := func() sim.Policy { return sim.NewHeavyTail(int64(3)) }
		got := runScenarioWith(t, sc.Name+"/replay", Replay, sc, policy(), 0)
		if got.ReplayChunks < 2 {
			t.Errorf("%s: long-horizon run streamed %d chunks; want at least 2 (batches=%d)",
				sc.Name, got.ReplayChunks, got.ReplayBatches)
		}
		if len(got.Actions) == 0 {
			t.Errorf("%s: no agent acted within the stretched horizon", sc.Name)
		}
		if sc.Net.N() <= 6 {
			want := runScenarioWith(t, sc.Name+"/goroutine", Run, sc, policy(), 0)
			requireIdenticalRuns(t, sc.Name, got.Run, want.Run)
			requireIdenticalActions(t, sc.Name, got, want)
		}
	}
}

// TestReplayPredictsViewNodes locks the recorder's state-index bookkeeping
// to View.Absorb's: a replay of a dense multi-agent scenario must never trip
// the per-batch node cross-check (which also guards the snapshot rings'
// slot-reuse invariant), and the batch count must equal the recording's
// non-initial node count — one driven batch per created state.
func TestReplayPredictsViewNodes(t *testing.T) {
	sc := scenario.MultiAgent(8)
	got := runScenarioWith(t, "replay", Replay, sc, sim.NewRandom(5), 0)
	nodes := 0
	for _, p := range sc.Net.Procs() {
		nodes += got.Run.LastIndex(p)
	}
	if got.ReplayBatches != nodes {
		t.Fatalf("replay drove %d batches but the recording holds %d non-initial nodes",
			got.ReplayBatches, nodes)
	}
}

// TestReplayAllocationGuard pins the perf contract of the replay mode at
// every multi-agent size: a full replay cell must allocate strictly less
// than the goroutine cell on the identical configuration. (Time is covered
// by BenchmarkSweepReplayLive / BenchmarkSweepGoroutineLive in the committed
// benchmark trajectory.)
func TestReplayAllocationGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short")
	}
	for _, m := range scenario.MultiAgentSizes {
		sc := scenario.MultiAgent(m)
		cell := func(exec func(Config) (*Result, error), seed int64) {
			agents, agentMap := NewTaskAgents(sc.TaskList())
			res, err := exec(Config{
				Net: sc.Net, Horizon: sc.Horizon, Policy: sim.NewRandom(seed),
				Externals: sc.Externals, Agents: agentMap,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range agents {
				if err := agents[i].Err(); err != nil {
					t.Fatal(err)
				}
			}
			_ = res
		}
		var seed int64
		replayAllocs := testing.AllocsPerRun(3, func() { seed++; cell(Replay, seed) })
		seed = 0
		goroutineAllocs := testing.AllocsPerRun(3, func() { seed++; cell(Run, seed) })
		if replayAllocs >= goroutineAllocs {
			t.Errorf("m=%d: replay cell allocates %.0f/run, goroutine cell %.0f/run — want strictly fewer",
				m, replayAllocs, goroutineAllocs)
		}
	}
}
