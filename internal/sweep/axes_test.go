package sweep

import (
	"strings"
	"testing"

	"github.com/clockless/zigzag/internal/scenario"
)

// TestAxesIdentity: the zero Axes expands to exactly the sorted registry.
func TestAxesIdentity(t *testing.T) {
	scs, err := Axes{}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.All(scenario.Registry(0))
	if len(scs) != len(want) {
		t.Fatalf("got %d scenarios, want %d", len(scs), len(want))
	}
	for i := range scs {
		if scs[i].Name != want[i].Name {
			t.Fatalf("scenario %d: %s vs %s", i, scs[i].Name, want[i].Name)
		}
	}
}

// TestAxesExpansion: the grid is the product of the axes, with
// disambiguating name suffixes and correctly transformed cells.
func TestAxesExpansion(t *testing.T) {
	a := Axes{
		Xs:     []int{0, 3},
		Scales: []float64{1, 2},
		Random: []RandomShape{{Procs: 4, Extra: 3, Seed: 9}},
	}
	scs, err := a.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	base := len(scenario.All(scenario.Registry(0))) + 1
	if len(scs) != base*4 {
		t.Fatalf("got %d scenarios, want %d", len(scs), base*4)
	}
	names := make(map[string]*scenario.Scenario, len(scs))
	for _, sc := range scs {
		if names[sc.Name] != nil {
			t.Fatalf("duplicate grid name %s", sc.Name)
		}
		names[sc.Name] = sc
	}
	plain := names["figure1@x=0"]
	scaled := names["figure1@s=2@x=0"]
	overridden := names["figure1@x=3"]
	randed := names["random-n4-e3-s9@x=0"]
	if plain == nil || scaled == nil || overridden == nil || randed == nil {
		keys := make([]string, 0, len(names))
		for k := range names {
			keys = append(keys, k)
		}
		t.Fatalf("expected cells missing from %v", keys)
	}
	if overridden.Task == nil || overridden.Task.X != 3 {
		t.Fatalf("x override not applied: %+v", overridden.Task)
	}
	if plain.Task.X == 3 {
		t.Fatal("x override leaked into the x=0 cell")
	}
	// Scaling doubles every bound and stretches the horizon.
	ch := plain.Net.Channels()[0]
	bd0, _ := plain.Net.ChanBounds(ch.From, ch.To)
	bd2, _ := scaled.Net.ChanBounds(ch.From, ch.To)
	if bd2.Lower != 2*bd0.Lower || bd2.Upper != 2*bd0.Upper {
		t.Fatalf("bounds not scaled: %v vs %v", bd0, bd2)
	}
	if scaled.Horizon != 2*plain.Horizon {
		t.Fatalf("horizon not scaled: %d vs %d", scaled.Horizon, plain.Horizon)
	}
}

// TestAxesSingleXKeepsPlainNames pins the historical `-sweep -x n` naming:
// one x point, even non-zero, adds no suffix.
func TestAxesSingleXKeepsPlainNames(t *testing.T) {
	scs, err := Axes{Xs: []int{5}}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if strings.Contains(sc.Name, "@x=") {
			t.Fatalf("single-point x axis renamed %s", sc.Name)
		}
		if sc.Name == "figure1" && sc.Task.X != 5 {
			t.Fatalf("x override not applied: %+v", sc.Task)
		}
	}
}

// TestAxesScaledCellsSimulate: a scaled scenario still simulates and its
// runs respect the scaled bounds (sanity for the sweep's error column).
func TestAxesScaledCellsSimulate(t *testing.T) {
	scs, err := Axes{Scales: []float64{1.5}}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	var cell *scenario.Scenario
	for _, sc := range scs {
		if sc.Name == "figure2b@s=1.5" {
			cell = sc
			break
		}
	}
	if cell == nil {
		t.Fatal("figure2b@s=1.5 missing")
	}
	r, err := cell.Simulate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAxesRejectsBadInput: invalid shapes and scales surface as errors.
func TestAxesRejectsBadInput(t *testing.T) {
	if _, err := (Axes{Random: []RandomShape{{Procs: 1}}}).Scenarios(); err == nil {
		t.Error("1-process random shape accepted")
	}
	if _, err := (Axes{Scales: []float64{-2}}).Scenarios(); err == nil {
		t.Error("negative scale accepted")
	}
	// Duplicate grid names would silently merge aggregate rows.
	dup := Axes{Random: []RandomShape{{Procs: 4, Extra: 3, Seed: 9}, {Procs: 4, Extra: 3, Seed: 9}}}
	if _, err := dup.Scenarios(); err == nil {
		t.Error("duplicate random shape accepted")
	}
	canonical := Axes{Random: []RandomShape{{Procs: 6, Extra: 6, Seed: 1}}} // = registry's random-n6-e6-s1
	if _, err := canonical.Scenarios(); err == nil {
		t.Error("registry-colliding random shape accepted")
	}
}
