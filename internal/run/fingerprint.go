package run

import "github.com/clockless/zigzag/internal/model"

// Event fingerprints: rolling 64-bit FNV-1a hashes over append-only event
// logs, seeded with the network's content fingerprint. They give runs and
// views cheap content identities:
//
//   - (*Run).Fingerprint hashes the arrival-ordered delivery log and the
//     external log of a finished recording. Two byte-identical runs — in
//     particular a live recording and sim.Simulate under the same
//     configuration — share a fingerprint, which is what lets
//     bounds.NetworkEngine.NewRunAt address frozen standing prefixes by run
//     content across seeds and policies.
//   - (*View).Fingerprint is maintained incrementally as the view records
//     deliveries and externals: every recorded event folds into the hash at
//     O(1) cost. Two views evolved through identical record sequences (the
//     lockstep replays of internal/live and internal/bench produce exactly
//     those) share fingerprints at every prefix of their evolution.
//
// Fingerprints are in-memory cache keys, not cryptographic digests: a 64-bit
// collision would alias two distinct prefixes. The consumers accept that
// risk the way every content-addressed in-process cache does.

const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

// fpMix folds one 64-bit word into the hash, byte by byte.
func fpMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fpPrime
		x >>= 8
	}
	return h
}

// fpString folds a label into the hash, length-prefixed so concatenated
// labels cannot alias.
func fpString(h uint64, s string) uint64 {
	h = fpMix(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fpPrime
	}
	return h
}

// fpDelivery folds one delivery event into the hash. Times participate: a
// run fingerprint identifies the timed event log, not just its structure.
func fpDelivery(h uint64, d Delivery) uint64 {
	h = fpMix(h, uint64(d.From.Proc))
	h = fpMix(h, uint64(d.From.Index))
	h = fpMix(h, uint64(d.To.Proc))
	h = fpMix(h, uint64(d.To.Index))
	h = fpMix(h, uint64(d.SendTime))
	h = fpMix(h, uint64(d.RecvTime))
	return h
}

// fpExternal folds one external-input event into the hash.
func fpExternal(h uint64, e External) uint64 {
	h = fpMix(h, uint64(e.To.Proc))
	h = fpMix(h, uint64(e.To.Index))
	h = fpMix(h, uint64(e.Time))
	return fpString(h, e.Label)
}

// fpSeed starts a fingerprint from the network's content hash, so event
// streams over different topologies (or bound scalings of one topology)
// never alias even when their event tuples coincide.
func fpSeed(net *model.Network) uint64 {
	return fpMix(fpOffset, net.Fingerprint())
}

// fpFinish maps the accumulated hash away from the "no fingerprint"
// sentinel 0.
func fpFinish(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}

// Fingerprint returns the run's content hash: the network fingerprint, the
// horizon, every delivery in arrival order (sorted by receive batch, the
// order Deliveries returns) and every external input in recorded order. It
// is computed once by Builder.Build; byte-identical recordings — notably a
// live execution and sim.Simulate of the same configuration — agree on it.
// It is never zero.
func (r *Run) Fingerprint() uint64 { return r.fingerprint }

// Fingerprint returns the view's rolling event-prefix hash: the network
// fingerprint, the origin process, and every delivery and external input in
// the order this view recorded them. It grows in O(1) per recorded event and
// only ever changes when the underlying logs do, so equal fingerprints over
// a common network identify equal record sequences — the identity
// incremental consumers use to recognize a shared prefix. It is never zero.
func (v *View) Fingerprint() uint64 { return fpFinish(v.fp) }
