package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLongestSimpleDAG(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3 with weights making the lower route heavier.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 5)
	dist, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[3] != 10 {
		t.Errorf("dist[3] = %d, want 10", dist[3])
	}
	w, path, ok, err := g.LongestPath(0, 3)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != 10 {
		t.Errorf("weight = %d", w)
	}
	if len(path) != 3 || path[0] != 0 || path[1] != 2 || path[2] != 3 {
		t.Errorf("path = %v", path)
	}
}

func TestLongestUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	dist, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != NegInf {
		t.Errorf("dist[2] = %d, want NegInf", dist[2])
	}
	_, _, ok, err := g.LongestPath(0, 2)
	if err != nil || ok {
		t.Errorf("unreachable: ok=%v err=%v", ok, err)
	}
}

func TestNegativeCycleOK(t *testing.T) {
	// Negative cycles are fine (bounds graphs have L-U <= 0 cycles).
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, -5)
	g.AddEdge(1, 2, 1)
	dist, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != 3 {
		t.Errorf("dist[2] = %d, want 3", dist[2])
	}
}

func TestPositiveCycleDetected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, -1) // cycle weight +1
	g.AddEdge(1, 2, 1)
	_, err := g.Longest(0)
	if !errors.Is(err, ErrPositiveCycle) {
		t.Errorf("got %v, want ErrPositiveCycle", err)
	}
}

func TestZeroCycleReconstruction(t *testing.T) {
	// Zero-weight cycle (L == U channel): reconstruction must not loop.
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 0, -3) // zero cycle
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 2)
	w, path, ok, err := g.LongestPath(0, 3)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != 7 {
		t.Errorf("weight = %d, want 7", w)
	}
	if path[0] != 0 || path[len(path)-1] != 3 {
		t.Errorf("path = %v", path)
	}
}

func TestLongestInto(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 5)
	dist, err := g.LongestInto(2)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 9 || dist[1] != 5 || dist[2] != 0 {
		t.Errorf("dist = %v", dist)
	}
}

func TestReachSet(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 3, 0) // isolated self-loop... not allowed by AddEdge? it is.
	set := g.ReachSet(2)
	want := []bool{true, true, true, false}
	for i, w := range want {
		if set[i] != w {
			t.Errorf("ReachSet[%d] = %v, want %v", i, set[i], w)
		}
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	id := g.AddVertex()
	if id != 2 || g.N() != 3 {
		t.Errorf("AddVertex = %d, N = %d", id, g.N())
	}
	g.AddEdge(0, id, 7)
	dist, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[id] != 7 {
		t.Errorf("dist[new] = %d", dist[id])
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range edge")
		}
	}()
	New(2).AddEdge(0, 5, 1)
}

// bruteLongest computes longest-path distances by |V| rounds of relaxation
// (plain Bellman-Ford), as an independent oracle.
func bruteLongest(n int, edges [][3]int, src int) []int64 {
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = NegInf
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		for _, e := range edges {
			u, v, w := e[0], e[1], e[2]
			if dist[u] != NegInf && dist[u]+int64(w) > dist[v] {
				dist[v] = dist[u] + int64(w)
			}
		}
	}
	return dist
}

// TestLongestAgainstOracle cross-checks SPFA against plain Bellman-Ford on
// random graphs without positive cycles (all cycles forced <= 0 by using a
// topological base order with only non-positive back edges).
func TestLongestAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		g := New(n)
		var edges [][3]int
		for i := 0; i < 3*n; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			var w int
			if u < v {
				w = rng.Intn(6) // forward edges: any non-negative weight
			} else {
				// Back edges more negative than any forward path can gain,
				// so every cycle has negative weight.
				w = -(5*n + 1 + rng.Intn(6))
			}
			g.AddEdge(u, v, w)
			edges = append(edges, [3]int{u, v, w})
		}
		dist, err := g.Longest(0)
		if err != nil {
			return false
		}
		want := bruteLongest(n, edges, 0)
		for i := range dist {
			if dist[i] != want[i] {
				return false
			}
		}
		// Path reconstruction telescopes correctly for every reachable dst.
		for dst := 0; dst < n; dst++ {
			if dist[dst] == NegInf {
				continue
			}
			w, path, ok, err := g.LongestPath(0, dst)
			if err != nil || !ok || w != dist[dst] {
				return false
			}
			if path[0] != 0 || path[len(path)-1] != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNewWithDegreesMatchesNew pins the presized construction: a graph
// built over exact degree tables answers every query identically to one
// built with plain New/AddEdge, and adding edges beyond the declared
// degrees (or fresh vertices) still works via append growth.
func TestNewWithDegreesMatchesNew(t *testing.T) {
	type edge struct{ u, v, w int }
	edges := []edge{{0, 1, 2}, {1, 3, 5}, {0, 2, 1}, {2, 3, 4}, {3, 4, -3}, {1, 2, 0}}
	n := 5
	out := make([]int32, n)
	in := make([]int32, n)
	for _, e := range edges {
		out[e.u]++
		in[e.v]++
	}
	plain, dense := New(n), NewWithDegrees(out, in)
	for _, e := range edges {
		plain.AddEdge(e.u, e.v, e.w)
		dense.AddEdge(e.u, e.v, e.w)
	}
	if plain.NumEdges() != dense.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", plain.NumEdges(), dense.NumEdges())
	}
	for u := 0; u < n; u++ {
		dp, err1 := plain.Longest(u)
		dd, err2 := dense.Longest(u)
		if err1 != nil || err2 != nil {
			t.Fatalf("Longest(%d): %v / %v", u, err1, err2)
		}
		for v := range dp {
			if dp[v] != dd[v] {
				t.Errorf("dist %d->%d differs: %d vs %d", u, v, dp[v], dd[v])
			}
		}
	}
	w1, p1, ok1, err1 := plain.LongestPath(0, 4)
	w2, p2, ok2, err2 := dense.LongestPath(0, 4)
	if err1 != nil || err2 != nil || !ok1 || !ok2 || w1 != w2 || len(p1) != len(p2) {
		t.Fatalf("LongestPath disagrees: (%d,%v,%v,%v) vs (%d,%v,%v,%v)", w1, p1, ok1, err1, w2, p2, ok2, err2)
	}
	// Overflow the declared degree of vertex 0 and grow a new vertex.
	dense.AddEdge(0, 4, 7)
	fresh := dense.AddVertex()
	dense.AddEdge(4, fresh, 1)
	d, err := dense.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	if d[4] != 7 {
		t.Errorf("dist to 4 after overflow edge = %d, want 7", d[4])
	}
	if d[fresh] != 8 {
		t.Errorf("dist to fresh vertex = %d, want 8", d[fresh])
	}
}

func TestNewWithDegreesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched degree tables did not panic")
		}
	}()
	NewWithDegrees(make([]int32, 2), make([]int32, 3))
}
