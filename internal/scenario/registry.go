package scenario

import "sort"

// Registry returns the canonical scenario catalogue keyed by name: the
// paper's figures plus the motivating domain examples. x overrides each
// task's required separation (and the domain hold/lead times); 0 keeps every
// scenario's default. The catalogue is rebuilt on each call, so callers may
// mutate the returned scenarios freely.
func Registry(x int) map[string]*Scenario {
	f1 := DefaultFigure1()
	f2 := DefaultFigure2()
	f4 := DefaultFigure4()
	if x != 0 {
		f1.X, f2.X, f4.X = x, x, x
	}
	hold := 3
	lead := 4
	holdCirc := 6
	if x != 0 {
		hold, lead, holdCirc = x, x, x
	}
	return map[string]*Scenario{
		"figure1":  Figure1(f1),
		"figure2a": Figure2a(f2),
		"figure2b": Figure2b(f2),
		"figure3":  Figure3(DefaultFigure3()),
		"figure4":  Figure4(f4),
		"figure6":  Figure6(2, 5),
		"trains":   Trains(hold),
		"takeoff":  Takeoff(lead),
		"circuits": Circuits(holdCirc),
	}
}

// Names returns the registry's scenario names in sorted order.
func Names(reg map[string]*Scenario) []string {
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the registry's scenarios in sorted-name order — the
// deterministic enumeration a sweep over the full catalogue uses.
func All(reg map[string]*Scenario) []*Scenario {
	names := Names(reg)
	scs := make([]*Scenario, len(names))
	for i, n := range names {
		scs[i] = reg[n]
	}
	return scs
}
