package bounds

import (
	"errors"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// forkNet is the Figure 1 network: C=1 -> A=2 [1,3], C=1 -> B=3 [8,12].
func forkNet(t *testing.T) *model.Network {
	t.Helper()
	return model.NewBuilder(3).Chan(1, 2, 1, 3).Chan(1, 3, 8, 12).MustBuild()
}

func forkRun(t *testing.T, policy sim.Policy) *run.Run {
	t.Helper()
	r, err := sim.Simulate(sim.Config{
		Net: forkNet(t), Horizon: 40, Policy: policy, Externals: sim.GoAt(1, 1, "go"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBasicGraphShape(t *testing.T) {
	r := forkRun(t, sim.Eager{})
	gb := NewBasic(r)
	// Nodes: 3 initial + C#1 + A#1 + B#1 = 6.
	if gb.NumVertices() != 6 {
		t.Errorf("vertices = %d, want 6", gb.NumVertices())
	}
	// Edges: 3 successor + 2 deliveries * 2 = 7.
	if gb.NumEdges() != 7 {
		t.Errorf("edges = %d, want 7", gb.NumEdges())
	}
	// Vertex round-trips.
	for _, n := range []run.BasicNode{{Proc: 1, Index: 0}, {Proc: 2, Index: 1}, {Proc: 3, Index: 1}} {
		v, err := gb.Vertex(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := gb.NodeOf(v); got != n {
			t.Errorf("NodeOf(Vertex(%s)) = %s", n, got)
		}
	}
	if _, err := gb.Vertex(run.BasicNode{Proc: 2, Index: 9}); !errors.Is(err, ErrNotInGraph) {
		t.Errorf("missing node: %v", err)
	}
}

func TestBasicLongestFigure1(t *testing.T) {
	r := forkRun(t, sim.Lazy{})
	gb := NewBasic(r)
	a := run.BasicNode{Proc: 2, Index: 1}
	b := run.BasicNode{Proc: 3, Index: 1}
	// a -> b: back up the C->A message (-U=-3), down the C->B message (+8).
	w, steps, ok, err := gb.LongestBetween(a, b)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != 5 {
		t.Errorf("weight %d, want L_CB - U_CA = 5", w)
	}
	if len(steps) != 2 || steps[0].Kind != StepUpper || steps[1].Kind != StepLower {
		t.Errorf("steps = %v", steps)
	}
	if got, err := gb.CheckLemma1(steps); err != nil || got != 5 {
		t.Errorf("Lemma 1 check: %d, %v", got, err)
	}
	// b -> a: -U_CB + L_CA = -12 + 1 = -11.
	w, _, ok, err = gb.LongestBetween(b, a)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if w != -11 {
		t.Errorf("reverse weight %d, want -11", w)
	}
}

func TestPrecedenceSetPClosed(t *testing.T) {
	r := forkRun(t, sim.Eager{})
	gb := NewBasic(r)
	b := run.BasicNode{Proc: 3, Index: 1}
	set, err := gb.PrecedenceSet(b)
	if err != nil {
		t.Fatal(err)
	}
	// Definition 11: for every edge (u, v) with v in the set, u is too.
	g := gb.Graph()
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(u) {
			if set[e.To] && !set[u] {
				t.Fatalf("not p-closed: edge %d -> %d", u, e.To)
			}
		}
	}
}

func TestExtendedStructureFigure1(t *testing.T) {
	r := forkRun(t, sim.Eager{})
	// sigma = B's receipt of C's message.
	sigma := run.BasicNode{Proc: 3, Index: 1}
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Past: C#0, C#1, B#0, B#1 (A's receipt is invisible to B).
	if got := ext.Past().Size(); got != 4 {
		t.Errorf("past size %d, want 4", got)
	}
	if ext.Past().Contains(run.BasicNode{Proc: 2, Index: 1}) {
		t.Error("A's node leaked into B's past")
	}
	// Knowledge: K_sigma(a-node --x--> sigma) holds up to x = L_CB - U_CA.
	aNode := run.Via(run.BasicNode{Proc: 1, Index: 1}, model.Path{1, 2})
	kw, steps, known, err := ext.KnowledgeWeight(aNode, run.At(sigma))
	if err != nil || !known {
		t.Fatalf("known=%v err=%v", known, err)
	}
	if kw != 5 {
		t.Errorf("kw = %d, want 5", kw)
	}
	if PathWeight(steps) != 5 {
		t.Errorf("steps weight %d", PathWeight(steps))
	}
	ok, err := ext.Knows(aNode, 5, run.At(sigma))
	if err != nil || !ok {
		t.Errorf("Knows(5) = %v, %v", ok, err)
	}
	ok, err = ext.Knows(aNode, 6, run.At(sigma))
	if err != nil || ok {
		t.Errorf("Knows(6) = %v, %v", ok, err)
	}
}

func TestExtendedChainVertexDedup(t *testing.T) {
	r := forkRun(t, sim.Eager{})
	sigma := run.BasicNode{Proc: 3, Index: 1}
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	aNode := run.Via(run.BasicNode{Proc: 1, Index: 1}, model.Path{1, 2})
	v1, err := ext.VertexOfGeneral(aNode)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ext.VertexOfGeneral(aNode)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("chain vertex not deduplicated: %d vs %d", v1, v2)
	}
}

func TestExtendedRejectsUnrecognized(t *testing.T) {
	r := forkRun(t, sim.Eager{})
	// sigma = A's receipt; A has never heard of B's node... B's initial
	// node is not in A's past either way; use a node of B with index 1.
	sigma := run.BasicNode{Proc: 2, Index: 1}
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ext.VertexOfGeneral(run.At(run.BasicNode{Proc: 3, Index: 1}))
	if !errors.Is(err, ErrNotRecognized) {
		t.Errorf("got %v, want ErrNotRecognized", err)
	}
}

func TestExtendedRejectsInitialChain(t *testing.T) {
	r := forkRun(t, sim.Eager{})
	sigma := run.BasicNode{Proc: 3, Index: 1}
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// A chain off B's initial node denotes nothing.
	_, err = ext.VertexOfGeneral(run.Via(run.BasicNode{Proc: 3, Index: 0}, model.Path{3, 2}))
	if err == nil {
		t.Error("chain off an initial node accepted")
	}
}

func TestKnowledgeSoundInRun(t *testing.T) {
	// Soundness of kw against ground truth across policies and scenarios:
	// the realized gap never undercuts the known bound.
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(9)} {
		r := forkRun(t, pol)
		sigma := run.BasicNode{Proc: 3, Index: 1}
		ext, err := NewExtended(r, sigma)
		if err != nil {
			t.Fatal(err)
		}
		aNode := run.Via(run.BasicNode{Proc: 1, Index: 1}, model.Path{1, 2})
		kw, _, known, err := ext.KnowledgeWeight(aNode, run.At(sigma))
		if err != nil || !known {
			t.Fatal(err)
		}
		gap := r.MustTime(sigma) - r.MustTimeOf(aNode)
		if gap < kw {
			t.Errorf("%s: gap %d < kw %d", pol.Name(), gap, kw)
		}
	}
}

func TestStepKindStrings(t *testing.T) {
	kinds := []StepKind{StepSucc, StepLower, StepUpper, StepAuxEnter, StepAuxHop, StepAuxExit, StepAuxChain}
	want := []string{"succ", "lower", "upper", "aux-enter", "aux-hop", "aux-exit", "aux-chain"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("%d: %q != %q", i, k.String(), want[i])
		}
	}
	if StepKind(99).String() != "StepKind(99)" {
		t.Error("unknown kind rendering")
	}
}

func TestPointString(t *testing.T) {
	if got := AuxPoint(3).String(); got != "psi_3" {
		t.Errorf("aux point = %q", got)
	}
	p := NodePoint(run.At(run.BasicNode{Proc: 2, Index: 1}))
	if got := p.String(); got != "p2#1" {
		t.Errorf("node point = %q", got)
	}
	if p.ProcOf() != 2 || AuxPoint(3).ProcOf() != 3 {
		t.Error("ProcOf wrong")
	}
}
