package run

import (
	"math/rand"

	"github.com/clockless/zigzag/internal/model"
)

// buildRandomRun is a miniature FFIP simulator for property tests inside
// this package (the real simulator lives in internal/sim, which imports
// run and therefore cannot be used here).
func buildRandomRun(net *model.Network, seed int64) (*Run, error) {
	rng := rand.New(rand.NewSource(seed))
	const horizon = 30
	bl := NewBuilder(net, horizon)
	// One or two external triggers.
	triggers := 1 + rng.Intn(2)
	arrivals := make(map[model.Time]map[model.ProcID]bool) // proc received at t
	for i := 0; i < triggers; i++ {
		p := model.ProcID(1 + rng.Intn(net.N()))
		t := model.Time(1 + rng.Intn(5))
		bl.External(ExternalEvent{Proc: p, Time: t, Label: "tick"})
		if arrivals[t] == nil {
			arrivals[t] = make(map[model.ProcID]bool)
		}
		arrivals[t][p] = true
	}
	pending := make(map[model.Time][]MessageEvent)
	for t := model.Time(1); t <= horizon; t++ {
		received := make(map[model.ProcID]bool)
		for _, ev := range pending[t] {
			bl.Message(ev)
			received[ev.ToProc] = true
		}
		delete(pending, t)
		for p := range arrivals[t] {
			received[p] = true
		}
		for _, p := range net.Procs() {
			if !received[p] {
				continue
			}
			for _, q := range net.Out(p) {
				bd, _ := net.ChanBounds(p, q)
				lat := bd.Lower
				if bd.Upper > bd.Lower {
					lat += rng.Intn(bd.Upper - bd.Lower + 1)
				}
				if t+lat > horizon {
					continue
				}
				pending[t+lat] = append(pending[t+lat], MessageEvent{
					FromProc: p, ToProc: q, SendTime: t, RecvTime: t + lat,
				})
			}
		}
	}
	r, err := bl.Build()
	if err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
