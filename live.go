package zigzag

import (
	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/live"
	"github.com/clockless/zigzag/internal/run"
)

// Live execution types: one goroutine per process, FFIP over Go channels,
// agents deciding online from their views only (no clock access).
type (
	// Agent is per-process application logic for the live engine.
	Agent = live.Agent
	// AgentFunc adapts a function to an Agent.
	AgentFunc = live.AgentFunc
	// LiveConfig parametrizes a live execution.
	LiveConfig = live.Config
	// LiveResult is a live execution's outcome: the ground-truth recording
	// plus the actions agents performed.
	LiveResult = live.Result
	// LiveAction records one agent action.
	LiveAction = live.Action
	// OnlineProtocol2 is the knowledge-optimal coordination agent for B,
	// deciding online; it agrees exactly with (Task).RunOptimal.
	OnlineProtocol2 = live.Protocol2
	// View is the structural content of a process's local state — all an
	// agent ever sees.
	View = run.View
)

// RunLive executes the configuration with one goroutine per process.
func RunLive(cfg LiveConfig) (*LiveResult, error) { return live.Run(cfg) }

// RunReplay executes the configuration goroutine-free: the arrival-ordered
// event stream is recorded once and every agent is driven state by state in
// the calling goroutine, streaming long horizons through bounded chunks.
// The result — recording, fingerprint and actions — is byte-identical to
// RunLive on the same configuration.
func RunReplay(cfg LiveConfig) (*LiveResult, error) { return live.Replay(cfg) }

// ViewOf extracts the subjective view of sigma from a recorded run.
func ViewOf(r *Run, sigma BasicNode) (*View, error) { return run.ViewOf(r, sigma) }

// NewExtendedGraphFromView builds GE from a view — the clockless entry
// point used by online agents.
func NewExtendedGraphFromView(v *View) (*ExtendedGraph, error) {
	return bounds.NewExtendedFromView(v)
}
