// Benchmarks: one per experiment row of DESIGN.md §5. Each benchmark
// regenerates the corresponding paper artifact — figure scenario, theorem
// check or protocol comparison — and reports domain metrics alongside
// ns/op: realized gaps, bound weights, graph sizes.
//
// Run with: go test -bench=. -benchmem
package zigzag_test

import (
	"fmt"
	"testing"

	zigzag "github.com/clockless/zigzag"
	"github.com/clockless/zigzag/internal/bench"
	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/live"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/timing"
	"github.com/clockless/zigzag/internal/workload"
)

// BenchmarkFigure1 (E1): the fork coordination decision — simulate the
// Figure 1 network and run Protocol 2 for B.
func BenchmarkFigure1(b *testing.B) {
	sc := scenario.Figure1(scenario.DefaultFigure1())
	var gap int
	for i := 0; i < b.N; i++ {
		r, err := sc.Simulate(sim.Lazy{})
		if err != nil {
			b.Fatal(err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil || !out.Acted {
			b.Fatalf("acted=%v err=%v", out != nil && out.Acted, err)
		}
		gap = out.Gap
	}
	b.ReportMetric(float64(gap), "gap")
}

// BenchmarkFigure2a (E2): extract and verify the Equation (1) zigzag.
func BenchmarkFigure2a(b *testing.B) {
	p := scenario.DefaultFigure2()
	sc := scenario.Figure2a(p)
	r := sc.MustSimulate(sim.Eager{})
	w, err := sc.Task.Wire(r)
	if err != nil {
		b.Fatal(err)
	}
	bNode := run.BasicNode{Proc: sc.Proc("B"), Index: 1}
	var weight int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := bounds.NewBasic(r)
		z, wt, found, err := pattern.ExtractBasic(gb, w.ABasic, bNode)
		if err != nil || !found {
			b.Fatalf("found=%v err=%v", found, err)
		}
		if err := z.Verify(r); err != nil {
			b.Fatal(err)
		}
		weight = wt
	}
	b.ReportMetric(float64(weight), "wt(Z)")
	b.ReportMetric(float64(p.EquationOne()), "eq1")
}

// BenchmarkFigure2b (E3): the full visible-zigzag coordination decision.
func BenchmarkFigure2b(b *testing.B) {
	sc := scenario.Figure2b(scenario.DefaultFigure2())
	r := sc.MustSimulate(sim.Lazy{})
	var known int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sc.Task.RunOptimal(r)
		if err != nil || !out.Acted {
			b.Fatal(err)
		}
		known = out.KnownBound
	}
	b.ReportMetric(float64(known), "known_bound")
}

// BenchmarkFigure3 (E4): multi-hop fork weight extraction.
func BenchmarkFigure3(b *testing.B) {
	sc := scenario.Figure3(scenario.DefaultFigure3())
	r := sc.MustSimulate(sim.Eager{})
	head := run.BasicNode{Proc: sc.Proc("HEAD"), Index: 1}
	tail := run.BasicNode{Proc: sc.Proc("TAIL"), Index: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := bounds.NewBasic(r)
		if _, _, found, err := pattern.ExtractBasic(gb, tail, head); err != nil || !found {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 (E5): the three-fork sigma-visible zigzag decision.
func BenchmarkFigure4(b *testing.B) {
	sc := scenario.Figure4(scenario.DefaultFigure4())
	r := sc.MustSimulate(sim.Eager{})
	var forks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sc.Task.RunOptimal(r)
		if err != nil || !out.Acted {
			b.Fatal(err)
		}
		forks = out.Witness.Len()
	}
	b.ReportMetric(float64(forks), "forks")
}

// BenchmarkFigure6 (E6): basic bounds graph construction on the minimal
// one-delivery run.
func BenchmarkFigure6(b *testing.B) {
	sc := scenario.Figure6(2, 5)
	r := sc.MustSimulate(sim.Eager{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := bounds.NewBasic(r)
		if gb.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkFigure7 (E7): longest-path query behind Equation (1).
func BenchmarkFigure7(b *testing.B) {
	sc := scenario.Figure2a(scenario.DefaultFigure2())
	r := sc.MustSimulate(sim.Eager{})
	w, err := sc.Task.Wire(r)
	if err != nil {
		b.Fatal(err)
	}
	bNode := run.BasicNode{Proc: sc.Proc("B"), Index: 1}
	gb := bounds.NewBasic(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, found, err := gb.LongestBetween(w.ABasic, bNode); err != nil || !found {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 (E8): extended bounds graph construction at B's
// decision node.
func BenchmarkFigure8(b *testing.B) {
	sc := scenario.Figure2b(scenario.DefaultFigure2())
	r := sc.MustSimulate(sim.Eager{})
	out, err := sc.Task.RunOptimal(r)
	if err != nil || !out.Acted {
		b.Fatal(err)
	}
	var edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext, err := bounds.NewExtended(r, out.ActNode)
		if err != nil {
			b.Fatal(err)
		}
		edges = ext.NumEdges()
	}
	b.ReportMetric(float64(edges), "GE_edges")
}

// BenchmarkTheorem1 (T1): zigzag extraction + verification on random
// instances.
func BenchmarkTheorem1(b *testing.B) {
	in := workload.MustGenerate(workload.DefaultConfig(1))
	r, err := in.Simulate(sim.NewRandom(13))
	if err != nil {
		b.Fatal(err)
	}
	window := in.WindowNodes(r)
	s1, s2 := window[0], window[len(window)-1]
	gb := bounds.NewBasic(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z, _, found, err := pattern.ExtractBasic(gb, s1, s2)
		if err != nil {
			b.Fatal(err)
		}
		if found {
			if err := z.Verify(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTheorem2 (T2): the slow-run tightness construction.
func BenchmarkTheorem2(b *testing.B) {
	in := workload.MustGenerate(workload.DefaultConfig(2))
	r, err := in.Simulate(sim.NewRandom(7))
	if err != nil {
		b.Fatal(err)
	}
	window := in.WindowNodes(r)
	sigma2 := window[len(window)-1]
	gb := bounds.NewBasic(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.BuildSlow(gb, sigma2, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem4 (T4): knowledge query plus the fast-run tightness
// construction.
func BenchmarkTheorem4(b *testing.B) {
	in := workload.MustGenerate(workload.DefaultConfig(3))
	r, err := in.Simulate(sim.NewRandom(17))
	if err != nil {
		b.Fatal(err)
	}
	window := in.WindowNodes(r)
	sigma := window[len(window)-1]
	ps, err := r.Past(sigma)
	if err != nil {
		b.Fatal(err)
	}
	var theta1 run.GeneralNode
	for _, n := range window {
		if ps.Contains(n) && !n.IsInitial() {
			theta1 = run.At(n)
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext, err := bounds.NewExtended(r, sigma)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := ext.KnowledgeWeight(theta1, run.At(sigma)); err != nil {
			b.Fatal(err)
		}
		if _, err := timing.BuildFast(r, sigma, theta1, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLocalVsExtended (DESIGN §5, ablation row): the cost of a
// local-graph query vs a full extended-graph knowledge query — the price of
// the auxiliary horizon vertices.
func BenchmarkAblationLocalVsExtended(b *testing.B) {
	in := workload.MustGenerate(workload.DefaultConfig(4))
	r, err := in.Simulate(sim.NewRandom(11))
	if err != nil {
		b.Fatal(err)
	}
	window := in.WindowNodes(r)
	sigma := window[len(window)-1]
	ext, err := bounds.NewExtended(r, sigma)
	if err != nil {
		b.Fatal(err)
	}
	ps := ext.Past()
	var s1 run.BasicNode
	for _, n := range window {
		if ps.Contains(n) && !n.IsInitial() {
			s1 = n
			break
		}
	}
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ext.LocalWeight(s1, sigma); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("extended", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ext.KnowledgeWeight(run.At(s1), run.At(sigma)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLiveEngine: goroutine-per-process execution of Figure 2b with an
// online Protocol-2 agent — the end-to-end cost of a live clockless system.
func BenchmarkLiveEngine(b *testing.B) {
	sc := scenario.Figure2b(scenario.DefaultFigure2())
	for i := 0; i < b.N; i++ {
		agent := &live.Protocol2{Task: *sc.Task}
		res, err := live.Run(live.Config{
			Net: sc.Net, Horizon: sc.Horizon, Policy: sim.Lazy{}, Externals: sc.Externals,
			Agents: map[model.ProcID]live.Agent{sc.Task.B: agent},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Actions) == 0 {
			b.Fatal("online agent never acted")
		}
	}
}

// BenchmarkLateCoordination (P1): optimal vs baseline on the Late sweep
// topology (Figure 2b plus a weak feedback channel).
func BenchmarkLateCoordination(b *testing.B) {
	p := scenario.DefaultFigure2()
	p.X = 3 // within reach of both protocols; the baseline still lags
	sc0 := scenario.Figure2b(p)
	sc, err := sc0.WithChannel("A", "B", 1, 6)
	if err != nil {
		b.Fatal(err)
	}
	r := sc.MustSimulate(sim.Lazy{})
	var optAt, baseAt int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := sc.Task.RunOptimal(r)
		if err != nil || !opt.Acted {
			b.Fatal(err)
		}
		base, err := sc.Task.RunBaseline(r)
		if err != nil || !base.Acted {
			b.Fatal(err)
		}
		optAt, baseAt = opt.ActTime, base.ActTime
	}
	b.ReportMetric(float64(optAt), "optimal_t")
	b.ReportMetric(float64(baseAt), "baseline_t")
}

// BenchmarkEarlyCoordination (P2): the Early decision on the takeoff
// network (the baseline cannot act at all there).
func BenchmarkEarlyCoordination(b *testing.B) {
	sc := scenario.Takeoff(4)
	r := sc.MustSimulate(sim.Lazy{})
	var lead int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sc.Task.RunOptimal(r)
		if err != nil || !out.Acted {
			b.Fatal(err)
		}
		lead = -out.Gap
	}
	b.ReportMetric(float64(lead), "lead")
}

// BenchmarkScalingSimulate (B1): simulator throughput vs network size. The
// body is shared with cmd/bench-export via internal/bench, as are all the
// Scaling/Protocol2 families below, so go test -bench and the committed
// BENCH_<date>.json snapshots always measure the same workloads.
func BenchmarkScalingSimulate(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		c := bench.ScalingSimulate(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkScalingBasicGraph (B1): GB construction vs network size. The
// construction is dense (degree-counted CSR-style adjacency, no per-edge
// metadata), so allocs/op must stay constant as n grows — guarded by
// TestNewBasicAllocationGuard in internal/bounds.
func BenchmarkScalingBasicGraph(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		c := bench.ScalingBasicGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkScalingKnowledge (B1): extended graph + knowledge query vs
// network size — the per-decision cost of offline Protocol 2.
func BenchmarkScalingKnowledge(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		c := bench.ScalingKnowledge(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkScalingLive (B1): the goroutine-per-process live engine vs
// network size — environment scheduling, FFIP relaying and per-state
// snapshots, with no agents. The body is shared with cmd/bench-export via
// internal/bench.
func BenchmarkScalingLive(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		c := bench.ScalingLive(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkProtocol2Online (B1): the end-to-end online coordination
// decision with the incremental bounds.Online engine — every state of B
// pays only for its view's growth.
func BenchmarkProtocol2Online(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		c := bench.Protocol2Online(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkProtocol2Rebuild is the rebuild-per-state baseline recorded
// alongside BenchmarkProtocol2Online: identical workload, but B
// reconstructs GE(r, sigma) from scratch at every state (the pre-online
// agent). It stops at n=32 — a single rebuild-per-state run at n=64 takes
// over a minute, which is exactly the cost the online engine amortizes
// away.
func BenchmarkProtocol2Rebuild(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		c := bench.Protocol2Rebuild(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkProtocol2EarlyOnline (B1): the Early-kind online decision loop —
// the query source moves with B's state while the target stays fixed, so
// the engine's reverse (fixed-target) cache carries the per-state cost.
func BenchmarkProtocol2EarlyOnline(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		c := bench.Protocol2EarlyOnline(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkProtocol2EarlyShared is the Early-kind loop through a
// bounds.Shared handle: the reverse cache under the restricted standing
// graph.
func BenchmarkProtocol2EarlyShared(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		c := bench.Protocol2EarlyShared(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkProtocol2EarlyRebuild is the fresh-build-per-state baseline
// recorded alongside the Early variants; like Protocol2Rebuild it stops at
// n=32.
func BenchmarkProtocol2EarlyRebuild(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		c := bench.Protocol2EarlyRebuild(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkProtocol2Shared (B1): m concurrent Protocol2 agents deciding
// over one run through ONE shared per-run knowledge engine (bounds.Shared)
// — the standing bounds graph is built once and every agent pays only its
// frontier handle. Compare against BenchmarkProtocol2MultiOnline, the
// identical workload on m independent bounds.Online engines.
func BenchmarkProtocol2Shared(b *testing.B) {
	for _, m := range scenario.MultiAgentSizes {
		c := bench.Protocol2Shared(m)
		b.Run(fmt.Sprintf("m=%d", m), c.Run)
	}
}

// BenchmarkProtocol2MultiOnline is the per-agent-engine baseline recorded
// alongside BenchmarkProtocol2Shared: every agent maintains its own
// standing graph of (almost entirely) the same run.
func BenchmarkProtocol2MultiOnline(b *testing.B) {
	for _, m := range scenario.MultiAgentSizes {
		c := bench.Protocol2MultiOnline(m)
		b.Run(fmt.Sprintf("m=%d", m), c.Run)
	}
}

// BenchmarkSweepSharedNetwork (B1): a block of live-style multi-agent
// sweep cells — per cell: one per-run bounds.Shared, one handle per agent,
// full-run absorption and a knowledge query — all served by ONE
// bounds.NetworkEngine, the way sweep.Grid drives its live dimension. The
// network-lifetime tier (aux psi band + E”' prototype, presizing hints,
// scratch pool) is paid once and amortized across every cell; compare
// against BenchmarkSweepRebuildNetwork.
func BenchmarkSweepSharedNetwork(b *testing.B) {
	for _, m := range []int{4, 8} {
		c := bench.SweepSharedNetwork(m)
		b.Run(fmt.Sprintf("m=%d", m), c.Run)
	}
	// Seed-scaling sub-runs: deterministic cells absorbing from scratch, the
	// prefix-blind baseline BenchmarkSweepPrefixShared is compared against.
	for _, seeds := range []int{4, 16, 64} {
		c := bench.SweepSharedNetworkSeeds(4, seeds)
		b.Run(fmt.Sprintf("m=%d/seeds=%d", 4, seeds), c.Run)
	}
}

// BenchmarkSweepPrefixShared (B1): the standing-prefix tier under seed
// scaling — seeds deterministic live cells over one network all record the
// identical run, so the first cell freezes its fully-absorbed standing graph
// into the content-addressed prefix cache and every later seed stamps the
// frozen prefix instead of re-absorbing. Acceptance: at 16 seeds this path
// must allocate at most half of the matching BenchmarkSweepSharedNetwork
// seeds=16 baseline per op.
func BenchmarkSweepPrefixShared(b *testing.B) {
	for _, seeds := range []int{4, 16, 64} {
		c := bench.SweepPrefixShared(4, seeds)
		b.Run(fmt.Sprintf("m=%d/seeds=%d", 4, seeds), c.Run)
	}
}

// BenchmarkSweepReplayLive (B1): one COMPLETE live sweep cell per op —
// policy-driven environment, FFIP flooding, view maintenance and every
// Protocol2 decision — under the goroutine-free replay mode that
// full-registry live sweeps now default to: the event stream is recorded
// once and every agent is driven state by state in a single goroutine, no
// channels, no per-tick handshakes. Acceptance: strictly fewer allocs/op
// and lower ns/op than BenchmarkSweepGoroutineLive at every m.
func BenchmarkSweepReplayLive(b *testing.B) {
	for _, m := range scenario.MultiAgentSizes {
		c := bench.SweepReplayLive(m)
		b.Run(fmt.Sprintf("m=%d", m), c.Run)
	}
}

// BenchmarkSweepGoroutineLive is the goroutine-per-process baseline
// recorded alongside BenchmarkSweepReplayLive: the identical cell through
// the channel-synchronized environment, kept as the replay mode's
// differential oracle.
func BenchmarkSweepGoroutineLive(b *testing.B) {
	for _, m := range scenario.MultiAgentSizes {
		c := bench.SweepGoroutineLive(m)
		b.Run(fmt.Sprintf("m=%d", m), c.Run)
	}
}

// BenchmarkSweepRebuildNetwork is the rebuild-per-cell baseline recorded
// alongside BenchmarkSweepSharedNetwork: identical cells, each re-deriving
// the aux band, hint tables and scratch buffers from scratch — what every
// sweep cell paid before the engine hierarchy existed.
func BenchmarkSweepRebuildNetwork(b *testing.B) {
	for _, m := range []int{4, 8} {
		c := bench.SweepRebuildNetwork(m)
		b.Run(fmt.Sprintf("m=%d", m), c.Run)
	}
}

// BenchmarkKnowsWeightOnly (B1): a page of threshold knowledge queries
// through the weight-only fast path — one SPFA, one comparison, no witness
// Steps. Acceptance: zero allocations per warmed-up query (guarded by
// TestKnowsAllocationGuard in internal/bounds) and strictly cheaper than
// BenchmarkKnowsWitnessPath at every n.
func BenchmarkKnowsWeightOnly(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		c := bench.KnowsWeightOnly(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkKnowsWitnessPath is the witness-bearing baseline recorded
// alongside BenchmarkKnowsWeightOnly: the identical queries through
// KnowledgeWeight, paying for predecessor tracking and witness
// materialization threshold consumers never read.
func BenchmarkKnowsWitnessPath(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		c := bench.KnowsWitnessPath(n)
		b.Run(fmt.Sprintf("n=%d", n), c.Run)
	}
}

// BenchmarkSweepBatchedX (B1): a complete live sweep over an 8-point x
// axis of the m=16 coordination scenario with the axis collapsed — one
// execution per (policy, seed) answers every x row through KnowsAt
// threshold grids and fans the results out. Acceptance: >= 4x fewer
// allocs/op and >= 3x lower ns/op than BenchmarkSweepPerX at xs=8.
func BenchmarkSweepBatchedX(b *testing.B) {
	for _, nx := range []int{4, 8} {
		c := bench.SweepBatchedX(16, nx)
		b.Run(fmt.Sprintf("xs=%d", nx), c.Run)
	}
}

// BenchmarkSweepPerX is the dedicated per-x baseline recorded alongside
// BenchmarkSweepBatchedX: the identical grid, one full execution per x
// value — what every multi-x sweep paid before the batched plane.
func BenchmarkSweepPerX(b *testing.B) {
	for _, nx := range []int{4, 8} {
		c := bench.SweepPerX(16, nx)
		b.Run(fmt.Sprintf("xs=%d", nx), c.Run)
	}
}

// BenchmarkFacadeRoundTrip exercises the public API end to end, as the
// quickstart example does.
func BenchmarkFacadeRoundTrip(b *testing.B) {
	net, err := zigzag.NewNetwork(3).
		Chan(1, 2, 1, 3).
		Chan(1, 3, 8, 12).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	task := zigzag.Task{Kind: zigzag.Late, X: 5, A: 2, B: 3, C: 1, GoTime: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := task.Simulate(net, zigzag.LazyPolicy{}, 40)
		if err != nil {
			b.Fatal(err)
		}
		out, err := task.RunOptimal(r)
		if err != nil || !out.Acted {
			b.Fatal(err)
		}
	}
}
