package live

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

// runMultiAgent executes a multi-agent coordination scenario with one
// Protocol2 agent per task, all on the given engine selection, and returns
// the result plus each agent (indexed like sc.Tasks).
func runMultiAgent(t *testing.T, sc *scenario.Scenario, shared *bounds.Shared, seed int64) (*Result, []*Protocol2) {
	t.Helper()
	agents, agentMap := NewTaskAgents(sc.Tasks)
	res, err := Run(Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: sim.NewRandom(seed),
		Externals: sc.Externals, Agents: agentMap, Shared: shared,
	})
	if err != nil {
		t.Fatalf("%s shared=%v: %v", sc.Name, shared != nil, err)
	}
	for i, a := range agents {
		if err := a.Err(); err != nil {
			t.Fatalf("%s shared=%v agent %d: %v", sc.Name, shared != nil, i, err)
		}
	}
	return res, agents
}

// actionsOf extracts each agent's act (node, time) from the result, keyed
// by its ActLabel.
func actionsOf(res *Result) map[string]Action {
	out := make(map[string]Action, len(res.Actions))
	for _, a := range res.Actions {
		out[a.Label] = a
	}
	return out
}

// TestProtocol2SharedMultiAgentMatchesOffline is the multi-agent
// acceptance test of the shared per-run engine, exercised end to end
// through the live environment's goroutine-per-process loop (and therefore
// under -race in CI): m concurrent Protocol2 agents sharing ONE
// bounds.Shared engine must (a) record the same run as the per-agent
// bounds.Online configuration under the same policy seed, (b) act at
// exactly the same nodes and times as the Online agents, and (c) agree
// with the offline (coord.Task).RunOptimal analysis of the recording for
// every task.
func TestProtocol2SharedMultiAgentMatchesOffline(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		sc := scenario.MultiAgent(m)
		seed := int64(29 + m)
		shared := bounds.NewShared(sc.Net)
		sharedRes, _ := runMultiAgent(t, sc, shared, seed)
		onlineRes, _ := runMultiAgent(t, sc, nil, seed)

		requireIdenticalRuns(t, fmt.Sprintf("%s engines", sc.Name), sharedRes.Run, onlineRes.Run)
		sharedActs, onlineActs := actionsOf(sharedRes), actionsOf(onlineRes)
		if len(sharedActs) != len(onlineActs) {
			t.Fatalf("%s: %d shared actions vs %d online", sc.Name, len(sharedActs), len(onlineActs))
		}
		for label, act := range onlineActs {
			got, ok := sharedActs[label]
			if !ok || got != act {
				t.Fatalf("%s: action %q: shared %+v online %+v", sc.Name, label, got, act)
			}
		}

		for i := range sc.Tasks {
			offline, err := sc.Tasks[i].RunOptimal(sharedRes.Run)
			if err != nil {
				t.Fatalf("%s task %d offline: %v", sc.Name, i, err)
			}
			label := TaskLabel(i)
			act, acted := sharedActs[label]
			if offline.Acted != acted {
				t.Fatalf("%s task %d: offline acted=%v shared acted=%v", sc.Name, i, offline.Acted, acted)
			}
			if offline.Acted && (act.Node != offline.ActNode || act.Time != offline.ActTime) {
				t.Fatalf("%s task %d: shared %s@%d vs offline %s@%d",
					sc.Name, i, act.Node, act.Time, offline.ActNode, offline.ActTime)
			}
		}
		if shared.NumVertices() < sc.Net.N() {
			t.Fatalf("%s: shared engine never grew (%d vertices)", sc.Name, shared.NumVertices())
		}
	}
}

// TestProtocol2EarlyMultiAgentMatchesOffline runs the all-Early family —
// every agent's Protocol 2 loop asks KW(sigma, aNode) with a moving
// source and a fixed target, the shape the per-target reverse cache
// serves — through the live environment on both engine selections, up to
// coord-early-m16. Shared and Online must record identical runs, act
// identically, agree with the offline optimum for every task, and the
// shared engine's handles must actually have answered from the reverse
// cache (otherwise this differential would silently pin the forward
// path twice).
func TestProtocol2EarlyMultiAgentMatchesOffline(t *testing.T) {
	for _, m := range []int{2, 4, 16} {
		sc := scenario.MultiAgentEarly(m)
		seed := int64(29 + m)
		shared := bounds.NewShared(sc.Net)
		sharedRes, sharedAgents := runMultiAgent(t, sc, shared, seed)
		onlineRes, _ := runMultiAgent(t, sc, nil, seed)

		requireIdenticalRuns(t, fmt.Sprintf("%s engines", sc.Name), sharedRes.Run, onlineRes.Run)
		sharedActs, onlineActs := actionsOf(sharedRes), actionsOf(onlineRes)
		if len(sharedActs) != len(onlineActs) {
			t.Fatalf("%s: %d shared actions vs %d online", sc.Name, len(sharedActs), len(onlineActs))
		}
		for label, act := range onlineActs {
			got, ok := sharedActs[label]
			if !ok || got != act {
				t.Fatalf("%s: action %q: shared %+v online %+v", sc.Name, label, got, act)
			}
		}

		var rev bounds.HandleStats
		for i := range sc.Tasks {
			rev.Add(sharedAgents[i].HandleStats())
			// The offline RunOptimal rebuilds an extended graph per state and
			// dominates the test's budget at m=16; the engine-vs-engine run
			// and act identity above already covers every agent, so sampling
			// the offline anchor at the family's largest member suffices.
			if m > 4 && i != 0 && i != len(sc.Tasks)/2 && i != len(sc.Tasks)-1 {
				continue
			}
			offline, err := sc.Tasks[i].RunOptimal(sharedRes.Run)
			if err != nil {
				t.Fatalf("%s task %d offline: %v", sc.Name, i, err)
			}
			label := TaskLabel(i)
			act, acted := sharedActs[label]
			if offline.Acted != acted {
				t.Fatalf("%s task %d: offline acted=%v shared acted=%v", sc.Name, i, offline.Acted, acted)
			}
			if offline.Acted && (act.Node != offline.ActNode || act.Time != offline.ActTime) {
				t.Fatalf("%s task %d: shared %s@%d vs offline %s@%d",
					sc.Name, i, act.Node, act.Time, offline.ActNode, offline.ActTime)
			}
		}
		if rev.RevHits == 0 {
			t.Fatalf("%s: no Early agent answered from the reverse cache: %+v", sc.Name, rev)
		}
	}
}

// TestNetworkEngineConcurrentLiveRuns drives several live executions of one
// network CONCURRENTLY off a single bounds.NetworkEngine (the configuration
// a parallel sweep produces): each run clones the engine's aux prototype
// and leases scratches from the shared pool, so this test — running under
// -race in CI — pins the engine tier's concurrency contract, and every
// agent must still agree with the offline analysis of its own recording.
func TestNetworkEngineConcurrentLiveRuns(t *testing.T) {
	sc := scenario.MultiAgent(4)
	eng := bounds.NewNetworkEngine(sc.Net)
	const runs = 4
	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, runs)
	done := make(chan int, runs)
	for i := 0; i < runs; i++ {
		go func(i int) {
			_, agents := NewTaskAgents(sc.Tasks)
			res, err := Run(Config{
				Net: sc.Net, Horizon: sc.Horizon, Policy: sim.NewRandom(int64(40 + i)),
				Externals: sc.Externals, Agents: agents, Engine: eng,
			})
			outcomes[i] = outcome{res, err}
			done <- i
		}(i)
	}
	for i := 0; i < runs; i++ {
		<-done
	}
	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("run %d: %v", i, o.err)
		}
		acts := actionsOf(o.res)
		for j := range sc.Tasks {
			offline, err := sc.Tasks[j].RunOptimal(o.res.Run)
			if err != nil {
				t.Fatalf("run %d task %d: %v", i, j, err)
			}
			act, acted := acts[TaskLabel(j)]
			if acted != offline.Acted || (acted && (act.Node != offline.ActNode || act.Time != offline.ActTime)) {
				t.Fatalf("run %d task %d: live acted=%v@%d, offline acted=%v@%d",
					i, j, acted, act.Time, offline.Acted, offline.ActTime)
			}
		}
	}
}

// TestProtocol2SharedReusableAcrossViews: a second run must not reuse a
// Config.Shared engine (or Config.Engine) built for another network, and an
// agent driven with a different view than its handle was built on reports
// errDifferentView rather than answering stale.
func TestProtocol2SharedGuards(t *testing.T) {
	sc := scenario.MultiAgent(2)
	other := model.MustComplete(3, 1, 2)
	_, err := Run(Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: sim.Eager{},
		Externals: sc.Externals, Shared: bounds.NewShared(other),
	})
	if err == nil {
		t.Fatal("foreign shared engine accepted")
	}
	_, err = Run(Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: sim.Eager{},
		Externals: sc.Externals, Engine: bounds.NewNetworkEngine(other),
	})
	if err == nil {
		t.Fatal("foreign network engine accepted")
	}

	shared := bounds.NewShared(sc.Net)
	agent := &Protocol2{Task: sc.Tasks[0], Shared: shared}
	v1 := run.NewLocalView(sc.Net, sc.Tasks[0].B)
	if _, err := v1.Absorb(nil, []string{"go"}); err != nil {
		t.Fatal(err)
	}
	// Force the go label into B's own view so the agent subscribes.
	agent.Task.C = sc.Tasks[0].B
	agent.OnState(v1, nil)
	if agent.Err() != nil {
		t.Fatalf("first view: %v", agent.Err())
	}
	v2 := run.NewLocalView(sc.Net, sc.Tasks[0].B)
	if _, err := v2.Absorb(nil, []string{"go"}); err != nil {
		t.Fatal(err)
	}
	agent.OnState(v2, nil)
	if agent.Err() == nil {
		t.Fatal("different view accepted by shared handle")
	}
}
