package zigzag_test

import (
	"testing"

	zigzag "github.com/clockless/zigzag"
)

// TestPublicAPIFigure1 walks the full public surface: network construction,
// simulation, bounds analysis, knowledge, coordination and the tightness
// constructions — everything a downstream user touches.
func TestPublicAPIFigure1(t *testing.T) {
	net, err := zigzag.NewNetwork(3).
		Chan(1, 2, 1, 3).
		Chan(1, 3, 8, 12).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	task := zigzag.Task{Kind: zigzag.Late, X: 5, A: 2, B: 3, C: 1, GoTime: 1}
	r, err := task.Simulate(net, zigzag.LazyPolicy{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}

	// Supported bound between A's and B's receipt nodes.
	gb := zigzag.NewBasicGraph(r)
	a := zigzag.BasicNode{Proc: 2, Index: 1}
	b := zigzag.BasicNode{Proc: 3, Index: 1}
	x, z, found, err := zigzag.SupportedBound(gb, a, b)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if x != 5 {
		t.Errorf("supported bound %d, want 5", x)
	}
	if err := z.Verify(r); err != nil {
		t.Errorf("witness: %v", err)
	}

	// Knowledge at B's decision node.
	ext, err := zigzag.NewExtendedGraph(r, b)
	if err != nil {
		t.Fatal(err)
	}
	aNode := zigzag.At(zigzag.BasicNode{Proc: 1, Index: 1}).Hop(2)
	kw, w, known, err := zigzag.KnowledgeWeight(ext, aNode, zigzag.At(b))
	if err != nil || !known {
		t.Fatalf("known=%v err=%v", known, err)
	}
	if kw != 5 {
		t.Errorf("kw = %d, want 5", kw)
	}
	if err := w.VerifyVisible(r); err != nil {
		t.Errorf("visible witness: %v", err)
	}
	ok, err := zigzag.Knows(ext, aNode, 5, zigzag.At(b))
	if err != nil || !ok {
		t.Errorf("Knows = %v, %v", ok, err)
	}

	// Tightness constructions.
	slow, err := zigzag.BuildSlowRun(gb, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := slow.Gap(a)
	if err != nil || gap != 5 {
		t.Errorf("slow gap = %d, %v", gap, err)
	}
	fast, err := zigzag.BuildFastRun(r, b, aNode, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fgap, err := fast.Gap(zigzag.At(b))
	if err != nil || fgap != 5 {
		t.Errorf("fast gap = %d, %v", fgap, err)
	}
	if err := zigzag.SameView(r, fast.Run, b); err != nil {
		t.Errorf("fast run view: %v", err)
	}

	// Coordination outcome and renderings.
	out, err := task.RunOptimal(r)
	if err != nil || !out.Acted {
		t.Fatalf("acted=%v err=%v", out != nil && out.Acted, err)
	}
	if s := zigzag.RenderTimeline(r, map[zigzag.ProcID]string{1: "C", 2: "A", 3: "B"}, 20); s == "" {
		t.Error("empty timeline")
	}
	if s := zigzag.RenderZigzag(net, &out.Witness.Zigzag); s == "" {
		t.Error("empty zigzag render")
	}
	if s := zigzag.RenderExtendedStats(ext); s == "" {
		t.Error("empty stats render")
	}
}

// TestPublicAPIBuilderAndPolicies exercises secondary surface: run builder,
// policy kinds, Via paths.
func TestPublicAPIBuilderAndPolicies(t *testing.T) {
	net, err := zigzag.NewNetwork(2).Chan(1, 2, 2, 4).Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := zigzag.Simulate(zigzag.SimConfig{
		Net:       net,
		Horizon:   20,
		Policy:    zigzag.NewRandomPolicy(3),
		Externals: zigzag.GoAt(1, 1, "go"),
	})
	if err != nil {
		t.Fatal(err)
	}
	theta := zigzag.Via(zigzag.BasicNode{Proc: 1, Index: 1}, zigzag.Path{1, 2})
	tm, err := r.TimeOf(theta)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 3 || tm > 5 {
		t.Errorf("chain time %d outside [3,5]", tm)
	}
	adversary := zigzag.PolicyFunc{ID: "max", F: func(s zigzag.Send, b zigzag.Bounds) int {
		return b.Upper
	}}
	r2, err := zigzag.Simulate(zigzag.SimConfig{
		Net: net, Horizon: 20, Policy: adversary, Externals: zigzag.GoAt(1, 1, "go"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.MustTimeOf(theta); got != 5 {
		t.Errorf("adversary arrival %d, want 5", got)
	}
}

// TestPublicAPIErrors: representative error paths surface cleanly.
func TestPublicAPIErrors(t *testing.T) {
	if _, err := zigzag.NewNetwork(2).Chan(1, 1, 1, 1).Build(); err == nil {
		t.Error("self-loop accepted")
	}
	net, err := zigzag.NewNetwork(2).Chan(1, 2, 1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zigzag.Simulate(zigzag.SimConfig{Net: net, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	r, err := zigzag.Simulate(zigzag.SimConfig{
		Net: net, Horizon: 10, Externals: zigzag.GoAt(1, 1, "go"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Time(zigzag.BasicNode{Proc: 9, Index: 0}); err == nil {
		t.Error("bogus node timed")
	}
	var task zigzag.Task
	task = zigzag.Task{Kind: zigzag.Late, X: 1, A: 2, B: 2, C: 1, GoTime: 5}
	if _, err := task.Wire(r); err == nil {
		t.Error("wire without go input succeeded")
	}
}
