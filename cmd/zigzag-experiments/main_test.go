package main

import "testing"

// TestAllExperimentsPass is the harness's own regression test: every
// experiment must pass with a reduced seed budget. Any drift between the
// implementation and the paper's claims fails CI here.
func TestAllExperimentsPass(t *testing.T) {
	cfg := config{seeds: 3}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if err := e.run(cfg); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
		})
	}
}
