// Package workload generates random bcm instances — networks, bounds and
// external-input schedules — for property-based tests and the scaling
// benchmarks. Generation is deterministic in the seed.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// Config bounds the shape of generated instances.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Procs is the number of processes (>= 2).
	Procs int
	// ExtraChannels adds this many random directed channels on top of a
	// random strongly-connecting ring (which guarantees information can
	// flow everywhere).
	ExtraChannels int
	// MaxLower and MaxSlack bound channel bounds: L in [1, MaxLower],
	// U = L + [0, MaxSlack].
	MaxLower, MaxSlack int
	// Externals is the number of spontaneous inputs to schedule.
	Externals int
	// SpreadTime is the latest external-input time.
	SpreadTime model.Time
	// Window is the analysis window: tests should query nodes with time <=
	// Window. AutoHorizon sizes the recording so the window has full slack.
	Window model.Time
}

// DefaultConfig returns a small, well-connected instance shape.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Procs:         5,
		ExtraChannels: 5,
		MaxLower:      3,
		MaxSlack:      3,
		Externals:     3,
		SpreadTime:    8,
		Window:        24,
	}
}

// Instance is one generated scenario.
type Instance struct {
	Net       *model.Network
	Externals []run.ExternalEvent
	Horizon   model.Time
	Window    model.Time
	Seed      int64
}

// Generate builds the instance for cfg.
func Generate(cfg Config) (*Instance, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("workload: need >= 2 processes, got %d", cfg.Procs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nb := model.NewBuilder(cfg.Procs)
	randBounds := func() (int, int) {
		l := 1 + rng.Intn(cfg.MaxLower)
		u := l + rng.Intn(cfg.MaxSlack+1)
		return l, u
	}
	// A random ring over a permutation keeps the network strongly
	// connected, so floods reach everyone.
	perm := rng.Perm(cfg.Procs)
	have := make(map[model.Channel]bool)
	for i := range perm {
		from := model.ProcID(perm[i] + 1)
		to := model.ProcID(perm[(i+1)%len(perm)] + 1)
		if from == to {
			continue
		}
		l, u := randBounds()
		nb.Chan(from, to, l, u)
		have[model.Channel{From: from, To: to}] = true
	}
	for added := 0; added < cfg.ExtraChannels; {
		from := model.ProcID(1 + rng.Intn(cfg.Procs))
		to := model.ProcID(1 + rng.Intn(cfg.Procs))
		ch := model.Channel{From: from, To: to}
		if from == to || have[ch] {
			added++ // count attempts so dense configs terminate
			continue
		}
		l, u := randBounds()
		nb.Chan(from, to, l, u)
		have[ch] = true
		added++
	}
	net, err := nb.Build()
	if err != nil {
		return nil, err
	}
	externals := make([]run.ExternalEvent, 0, cfg.Externals)
	for i := 0; i < cfg.Externals; i++ {
		externals = append(externals, run.ExternalEvent{
			Proc:  model.ProcID(1 + rng.Intn(cfg.Procs)),
			Time:  1 + model.Time(rng.Intn(int(cfg.SpreadTime))),
			Label: fmt.Sprintf("ext%d", i),
		})
	}
	window := cfg.Window
	if window == 0 {
		window = cfg.SpreadTime + model.Time(4*(cfg.MaxLower+cfg.MaxSlack))
	}
	// DESIGN.md §4: record far enough past the analysis window that every
	// truncation artefact lands strictly beyond any synthesized horizon.
	slack := model.Time((cfg.Procs + 3) * net.MaxUpper() * 2)
	return &Instance{
		Net:       net,
		Externals: externals,
		Horizon:   window + slack,
		Window:    window,
		Seed:      cfg.Seed,
	}, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *Instance {
	in, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

// Simulate runs the instance under a policy.
func (in *Instance) Simulate(policy sim.Policy) (*run.Run, error) {
	return sim.Simulate(sim.Config{
		Net:       in.Net,
		Horizon:   in.Horizon,
		Policy:    policy,
		Externals: in.Externals,
	})
}

// WindowNodes returns the non-initial basic nodes whose time falls inside
// the analysis window, in deterministic order.
func (in *Instance) WindowNodes(r *run.Run) []run.BasicNode {
	var out []run.BasicNode
	for _, p := range in.Net.Procs() {
		for k := 1; k <= r.LastIndex(p); k++ {
			n := run.BasicNode{Proc: p, Index: k}
			if r.MustTime(n) <= in.Window {
				out = append(out, n)
			}
		}
	}
	return out
}
