package run

import (
	"errors"
	"fmt"
	"sort"

	"github.com/clockless/zigzag/internal/model"
)

// Delivery records one message delivery: the FFIP message sent at node From
// on the channel (From.Proc -> To.Proc) at SendTime, delivered at node To at
// RecvTime. In an FFIP run every non-initial node sends exactly one message
// per outgoing channel, so (From, To.Proc) identifies the message.
//
// Chan is the dense id of the channel travelled, resolved against the
// network by the constructors in this package (Builder, View); consumers on
// per-delivery hot paths use it for O(1) bounds lookups via
// (*model.Network).BoundsOf. Hand-rolled zero-valued literals leave it
// meaningless.
type Delivery struct {
	From     BasicNode
	To       BasicNode
	SendTime model.Time
	RecvTime model.Time
	Chan     model.ChanID
}

// Channel returns the channel the message travelled on.
func (d Delivery) Channel() model.Channel {
	return model.Channel{From: d.From.Proc, To: d.To.Proc}
}

// String renders the delivery as "p1#2@5 => p3#4@9".
func (d Delivery) String() string {
	return fmt.Sprintf("%s@%d => %s@%d", d.From, d.SendTime, d.To, d.RecvTime)
}

// External records the delivery of a spontaneous external message from the
// environment's set E to node To at time Time.
type External struct {
	To    BasicNode
	Time  model.Time
	Label string
}

// String renders the external as "ext(go)->p2#1@3".
func (e External) String() string {
	return fmt.Sprintf("ext(%s)->%s@%d", e.Label, e.To, e.Time)
}

// Pending describes an FFIP message that was sent but not delivered within
// the run's horizon (it is still in transit when the recording stops). Chan
// is the dense channel id, set by the constructors in this package.
type Pending struct {
	From     BasicNode
	To       model.ProcID
	SendTime model.Time
	Chan     model.ChanID
}

// Deadline returns the latest time the environment may deliver the message.
func (p Pending) Deadline(net *model.Network) model.Time {
	return p.SendTime + net.Upper(p.From.Proc, p.To)
}

// span is a half-open range [lo, hi) of indices into a Run's deliveries
// slice; the zero value is the empty span.
type span struct{ lo, hi int32 }

// sentKey identifies the unique FFIP message sent at a node on one outgoing
// channel.
type sentKey struct {
	from BasicNode
	to   model.ProcID
}

// Run is a finite recording of an execution of the FFIP in a bounded
// context: the first Horizon+1 global states of an infinite run. It is
// immutable once built and safe for concurrent reads.
type Run struct {
	net     *model.Network
	horizon model.Time

	// times[p-1][k] is the time of node (p, k); times[p-1][0] == 0.
	times [][]model.Time

	deliveries []Delivery
	externals  []External

	// nodeOff[p-1] is the flat-id offset of process p's nodes: node (p, k)
	// has flat id nodeOff[p-1]+k. nodeOff has n+1 entries; the last is the
	// total node count.
	nodeOff []int32

	// inbox[flat(node)] is the contiguous range of deliveries absorbed in
	// the node's creating batch (deliveries are sorted by receive batch);
	// extIn likewise lists indices into externals.
	inbox []span
	extIn map[BasicNode][]int

	// sent[{from, to}] is the index into deliveries of the message sent at
	// node from to process to, if it was delivered within the horizon.
	sent map[sentKey]int

	pending []Pending

	// fingerprint is the content hash of the recording (see Fingerprint).
	fingerprint uint64
}

// flat returns the node's index into flat per-node tables; the caller must
// ensure the node appears in the run.
func (r *Run) flat(b BasicNode) int32 { return r.nodeOff[b.Proc-1] + int32(b.Index) }

// Errors reported by run construction and validation.
var (
	ErrNoNode            = errors.New("run: node does not appear in run")
	ErrUnresolvable      = errors.New("run: general node not resolvable within horizon")
	ErrBadDelivery       = errors.New("run: delivery violates channel bounds")
	ErrMissedDeadline    = errors.New("run: message not delivered by its upper bound")
	ErrInitialSend       = errors.New("run: initial nodes cannot send messages")
	ErrOrphanNode        = errors.New("run: non-initial node with no incoming deliveries")
	ErrDuplicateSend     = errors.New("run: multiple messages for one (node, channel)")
	ErrNonMonotoneTimes  = errors.New("run: node times not strictly increasing")
	ErrOutsideHorizon    = errors.New("run: event beyond horizon")
	ErrChannelMissing    = errors.New("run: delivery on a non-existent channel")
	ErrTimeMismatch      = errors.New("run: event time disagrees with node time")
	ErrExternalToInitial = errors.New("run: external delivered to an initial node")
)

// Net returns the network the run executes over.
func (r *Run) Net() *model.Network { return r.net }

// Horizon returns the last recorded time step.
func (r *Run) Horizon() model.Time { return r.horizon }

// NumNodes returns the total number of basic nodes appearing in the run,
// including the n initial nodes.
func (r *Run) NumNodes() int {
	total := 0
	for _, ts := range r.times {
		total += len(ts)
	}
	return total
}

// LastIndex returns the largest state index of process p in the run
// (0 if p only has its initial node).
func (r *Run) LastIndex(p model.ProcID) int { return len(r.times[p-1]) - 1 }

// Appears reports whether the basic node appears in the run.
func (r *Run) Appears(b BasicNode) bool {
	if !r.net.ValidProc(b.Proc) || b.Index < 0 {
		return false
	}
	return b.Index < len(r.times[b.Proc-1])
}

// Time returns time_r(sigma), the (minimal) time at which the node's local
// state holds.
func (r *Run) Time(b BasicNode) (model.Time, error) {
	if !r.Appears(b) {
		return 0, fmt.Errorf("%w: %s", ErrNoNode, b)
	}
	return r.times[b.Proc-1][b.Index], nil
}

// MustTime is Time that panics if the node does not appear.
func (r *Run) MustTime(b BasicNode) model.Time {
	t, err := r.Time(b)
	if err != nil {
		panic(err)
	}
	return t
}

// NodeAt returns the node of process p whose state holds at time t: the
// last node with time <= t. The initial node covers every time before the
// first batch.
func (r *Run) NodeAt(p model.ProcID, t model.Time) BasicNode {
	ts := r.times[p-1]
	// Binary search for the last index with ts[idx] <= t.
	idx := sort.Search(len(ts), func(i int) bool { return ts[i] > t }) - 1
	if idx < 0 {
		idx = 0
	}
	return BasicNode{Proc: p, Index: idx}
}

// Deliveries returns all deliveries in recording order. Callers must not
// mutate the returned slice.
func (r *Run) Deliveries() []Delivery { return r.deliveries }

// Externals returns all external inputs. Callers must not mutate the
// returned slice.
func (r *Run) Externals() []External { return r.externals }

// PendingMessages returns the messages still in transit at the horizon.
// Callers must not mutate the returned slice.
func (r *Run) PendingMessages() []Pending { return r.pending }

// Inbox returns the deliveries absorbed by the batch that created node b.
func (r *Run) Inbox(b BasicNode) []Delivery {
	if !r.Appears(b) {
		return []Delivery{}
	}
	sp := r.inbox[r.flat(b)]
	ds := make([]Delivery, sp.hi-sp.lo)
	copy(ds, r.deliveries[sp.lo:sp.hi])
	return ds
}

// ExternalsAt returns the external inputs absorbed by the batch that
// created node b.
func (r *Run) ExternalsAt(b BasicNode) []External {
	idxs := r.extIn[b]
	es := make([]External, len(idxs))
	for i, idx := range idxs {
		es[i] = r.externals[idx]
	}
	return es
}

// DeliveryFrom returns the delivery of the message sent at node from to
// process to, and false if that message is still pending (or from never
// sends, i.e. it is initial).
func (r *Run) DeliveryFrom(from BasicNode, to model.ProcID) (Delivery, bool) {
	idx, ok := r.sent[sentKey{from: from, to: to}]
	if !ok {
		return Delivery{}, false
	}
	return r.deliveries[idx], true
}

// Resolve computes basic(theta, r) per Definition 4: the basic node reached
// by following theta's message chain. It fails with ErrUnresolvable if a
// link of the chain is still pending at the horizon, and with ErrNoNode if
// the base does not appear.
func (r *Run) Resolve(theta GeneralNode) (BasicNode, error) {
	if err := theta.Valid(r.net); err != nil {
		return BasicNode{}, err
	}
	if !r.Appears(theta.Base) {
		return BasicNode{}, fmt.Errorf("%w: base %s", ErrNoNode, theta.Base)
	}
	cur := theta.Base
	for _, next := range theta.Path[1:] {
		if cur.IsInitial() {
			return BasicNode{}, fmt.Errorf("%w: chain of %s leaves initial node %s",
				ErrUnresolvable, theta, cur)
		}
		d, ok := r.DeliveryFrom(cur, next)
		if !ok {
			return BasicNode{}, fmt.Errorf("%w: %s stuck at %s->%d", ErrUnresolvable, theta, cur, next)
		}
		cur = d.To
	}
	return cur, nil
}

// TimeOf returns time_r(theta) = time_r(basic(theta, r)).
func (r *Run) TimeOf(theta GeneralNode) (model.Time, error) {
	b, err := r.Resolve(theta)
	if err != nil {
		return 0, err
	}
	return r.Time(b)
}

// MustTimeOf is TimeOf that panics on error.
func (r *Run) MustTimeOf(theta GeneralNode) model.Time {
	t, err := r.TimeOf(theta)
	if err != nil {
		panic(err)
	}
	return t
}

// Precedes reports whether (R, r) |= theta1 --x--> theta2: both nodes are
// resolvable and time(theta1) + x <= time(theta2).
func (r *Run) Precedes(theta1 GeneralNode, x int, theta2 GeneralNode) (bool, error) {
	t1, err := r.TimeOf(theta1)
	if err != nil {
		return false, err
	}
	t2, err := r.TimeOf(theta2)
	if err != nil {
		return false, err
	}
	return t1+x <= t2, nil
}
