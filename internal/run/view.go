package run

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/clockless/zigzag/internal/model"
)

// viewIDs hands out a unique identity per View instance; snapshots carry
// their source view's id so receivers can watermark how much of that
// source's append-only logs they have already merged.
var viewIDs atomic.Uint64

// View is the subjective information content of a node's local state under
// an FFIP: the structure of its causal past — which nodes exist, which
// deliveries wired them together, which external inputs arrived — and
// nothing else. Crucially, a View carries no real-time information: every
// analysis built on it (in particular the extended bounds graph and hence
// all knowledge computation) is a function of structure alone, which is the
// paper's clockless point made executable.
//
// Views come from two places: ViewOf extracts one from a recorded run
// (offline analysis), and the live engine of internal/live accumulates one
// message by message inside each process goroutine (online decisions).
//
// A view only ever grows, and it records that growth in append-only logs:
// DeliveryCount/DeliveriesSince expose the delivery log as a cheap delta
// API (the incremental knowledge engine bounds.Online consumes it), and
// Snapshot freezes the logs into an immutable, shareable payload for
// outgoing FFIP messages without deep-copying the history.
type View struct {
	net    *model.Network
	origin BasicNode
	// id is this view's unique identity (see viewIDs).
	id uint64
	// members[p-1] is the boundary index of process p (-1 if absent).
	members []int
	// sent indexes the unique delivery per (sender node, destination
	// process) for DeliveryTo lookups and log deduplication.
	sent map[sentKey]BasicNode
	// externals[node] lists external-input labels absorbed at that node.
	externals map[BasicNode][]string
	// extEarliest indexes, per (process, label), the earliest non-initial
	// node that absorbed the label — the FindExternal answer. Protocol
	// agents call FindExternal at every state until the label appears, so
	// without the index every state pays a rescan of the whole timeline.
	// Lazily allocated: views without externals never pay for the map.
	extEarliest map[extKey]BasicNode

	// log is the append-only record of every distinct delivery, in
	// first-recorded order, with the dense channel id resolved and the
	// (structurally unknown) times zero.
	log []Delivery
	// extLog is the append-only record of every distinct (node, label)
	// external input, mirroring externals.
	extLog []External

	// fp is the rolling event-prefix hash over the two logs in recording
	// order (see Fingerprint), folded forward by recordDelivery and
	// recordExternal.
	fp uint64

	// merged[id] records how much of source view id's logs this view has
	// already merged. Successive snapshots of one view are prefix-extensions
	// of each other (logs only append), so a receiver that keeps receiving
	// from the same senders — the FFIP steady state — merges only each
	// payload's suffix instead of rescanning the whole history.
	merged map[uint64]logMarks
}

// logMarks is a per-source watermark into its delivery and external logs.
type logMarks struct{ log, ext int }

// extKey identifies an external-input lookup: which process absorbed which
// label.
type extKey struct {
	proc  model.ProcID
	label string
}

// ViewOf extracts the view of sigma from a recorded run.
func ViewOf(r *Run, sigma BasicNode) (*View, error) {
	ps, err := r.Past(sigma)
	if err != nil {
		return nil, err
	}
	v := &View{
		net:       r.net,
		origin:    sigma,
		id:        viewIDs.Add(1),
		members:   append([]int(nil), ps.members...),
		sent:      make(map[sentKey]BasicNode),
		externals: make(map[BasicNode][]string),
		fp:        fpMix(fpSeed(r.net), uint64(sigma.Proc)),
	}
	for _, d := range r.deliveries {
		if !ps.Contains(d.To) {
			continue
		}
		v.recordDelivery(d.From, d.To, d.Chan)
	}
	for _, e := range r.externals {
		if ps.Contains(e.To) {
			v.recordExternal(e.To, e.Label)
		}
	}
	return v, nil
}

// NewLocalView returns the view of process p's initial state.
func NewLocalView(net *model.Network, p model.ProcID) *View {
	v := &View{
		net:       net,
		origin:    BasicNode{Proc: p, Index: 0},
		id:        viewIDs.Add(1),
		members:   make([]int, net.N()),
		sent:      make(map[sentKey]BasicNode),
		externals: make(map[BasicNode][]string),
		fp:        fpMix(fpSeed(net), uint64(p)),
	}
	for i := range v.members {
		v.members[i] = -1
	}
	v.members[p-1] = 0
	return v
}

func (v *View) recordDelivery(from, to BasicNode, ch model.ChanID) {
	key := sentKey{from: from, to: to.Proc}
	if _, ok := v.sent[key]; ok {
		return
	}
	v.sent[key] = to
	d := Delivery{From: from, To: to, Chan: ch}
	v.log = append(v.log, d)
	v.fp = fpDelivery(v.fp, d)
}

func (v *View) recordExternal(node BasicNode, label string) {
	for _, l := range v.externals[node] {
		if l == label {
			return
		}
	}
	v.externals[node] = append(v.externals[node], label)
	e := External{To: node, Label: label}
	v.extLog = append(v.extLog, e)
	v.fp = fpExternal(v.fp, e)
	// Merge order is not timeline order, so the index keeps the smallest
	// index per (process, label). Initial nodes absorb no externals by
	// construction; the guard keeps the index aligned with FindExternal's
	// k >= 1 scan even for hand-built views.
	if node.Index >= 1 {
		if v.extEarliest == nil {
			v.extEarliest = make(map[extKey]BasicNode)
		}
		key := extKey{proc: node.Proc, label: label}
		if old, ok := v.extEarliest[key]; !ok || node.Index < old.Index {
			v.extEarliest[key] = node
		}
	}
}

// Net returns the network the view lives in.
func (v *View) Net() *model.Network { return v.net }

// Origin returns the node whose local state the view represents.
func (v *View) Origin() BasicNode { return v.origin }

// Contains reports membership of a basic node in the view.
func (v *View) Contains(b BasicNode) bool {
	if b.Proc < 1 || int(b.Proc) > len(v.members) || b.Index < 0 {
		return false
	}
	return b.Index <= v.members[b.Proc-1]
}

// Boundary returns the last node of process p inside the view.
func (v *View) Boundary(p model.ProcID) (BasicNode, bool) {
	if p < 1 || int(p) > len(v.members) || v.members[p-1] < 0 {
		return BasicNode{}, false
	}
	return BasicNode{Proc: p, Index: v.members[p-1]}, true
}

// PastSet converts the view's membership to a PastSet (for callers that
// verify witnesses against recorded runs).
func (v *View) PastSet() *PastSet {
	return &PastSet{origin: v.origin, members: append([]int(nil), v.members...)}
}

// Size returns the number of nodes in the view.
func (v *View) Size() int {
	total := 0
	for _, k := range v.members {
		total += k + 1
	}
	return total
}

// DeliveryTo returns the node that received the message sent at from to
// process to, if that delivery is inside the view.
func (v *View) DeliveryTo(from BasicNode, to model.ProcID) (BasicNode, bool) {
	b, ok := v.sent[sentKey{from: from, to: to}]
	return b, ok
}

// DeliveryCount returns the number of distinct deliveries the view has
// recorded. It only ever grows, so it serves as the watermark for
// DeliveriesSince.
func (v *View) DeliveryCount() int { return len(v.log) }

// DeliveriesSince returns the deliveries recorded since the watermark (a
// prior DeliveryCount), in recording order, with dense channel ids resolved
// and zero times. The result is a sub-slice of the append-only log: callers
// must not mutate it, and it stays valid as the view keeps growing.
func (v *View) DeliveriesSince(mark int) []Delivery { return v.log[mark:] }

// Deliveries returns the view's deliveries as (from, to) node pairs in
// deterministic order, with the dense channel id resolved. Send and receive
// times are structural unknowns and left zero.
func (v *View) Deliveries() []Delivery {
	out := append([]Delivery(nil), v.log...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		if a.From.Index != b.From.Index {
			return a.From.Index < b.From.Index
		}
		return a.To.Proc < b.To.Proc
	})
	return out
}

// Leaving returns the (sender, destination) pairs of FFIP messages sent at
// view nodes and not received inside the view — the E” generators of the
// extended bounds graph. Send times are structural unknowns and left zero.
func (v *View) Leaving() []Pending {
	var out []Pending
	for i, k := range v.members {
		p := model.ProcID(i + 1)
		for idx := 1; idx <= k; idx++ {
			from := BasicNode{Proc: p, Index: idx}
			for _, a := range v.net.OutArcs(p) {
				if _, ok := v.DeliveryTo(from, a.To); !ok {
					out = append(out, Pending{From: from, To: a.To, Chan: a.ID})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		if a.From.Index != b.From.Index {
			return a.From.Index < b.From.Index
		}
		return a.To < b.To
	})
	return out
}

// ResolvePrefix resolves theta's chain while it stays inside the view,
// mirroring (*Run).ChainPrefix: it returns the resolved prefix nodes and
// hop count.
func (v *View) ResolvePrefix(theta GeneralNode) (prefix []BasicNode, hops int) {
	cur := theta.Base
	if !v.Contains(cur) {
		return nil, 0
	}
	prefix = append(prefix, cur)
	for _, next := range theta.Path[1:] {
		if cur.IsInitial() {
			return prefix, hops
		}
		d, ok := v.DeliveryTo(cur, next)
		if !ok {
			return prefix, hops
		}
		cur = d
		prefix = append(prefix, cur)
		hops++
	}
	return prefix, hops
}

// ExternalsAt returns the external labels absorbed at a view node.
func (v *View) ExternalsAt(b BasicNode) []string {
	out := append([]string(nil), v.externals[b]...)
	sort.Strings(out)
	return out
}

// FindExternal locates the earliest node of process p that absorbed an
// external input with the given label. The lookup is O(1) against an index
// maintained on record, not a rescan of p's timeline: online agents
// (live.Protocol2) call this at every new state until the label appears,
// which used to cost a walk over every past node and its label slice per
// state.
func (v *View) FindExternal(p model.ProcID, label string) (BasicNode, bool) {
	n, ok := v.extEarliest[extKey{proc: p, label: label}]
	return n, ok
}

// Snapshot is a view's content frozen at one instant: the payload of an
// outgoing FFIP message (the sender's history at send time). It shares the
// view's append-only log backing instead of deep-copying it — the view only
// ever appends past the snapshot's length, so a Snapshot is immutable and
// safe to read from other goroutines while the owning process keeps
// absorbing. Taking one costs a copy of the n boundary indices, nothing
// proportional to the history.
type Snapshot struct {
	net     *model.Network
	origin  BasicNode
	source  uint64 // id of the view the snapshot froze
	members []int
	log     []Delivery
	extLog  []External
}

// Snapshot freezes the view's current content.
func (v *View) Snapshot() *Snapshot {
	return &Snapshot{
		net:     v.net,
		origin:  v.origin,
		source:  v.id,
		members: append([]int(nil), v.members...),
		log:     v.log[:len(v.log):len(v.log)],
		extLog:  v.extLog[:len(v.extLog):len(v.extLog)],
	}
}

// Origin returns the node whose local state the snapshot captured.
func (s *Snapshot) Origin() BasicNode { return s.origin }

// Contains reports membership of a basic node in the snapshot.
func (s *Snapshot) Contains(b BasicNode) bool {
	if b.Proc < 1 || int(b.Proc) > len(s.members) || b.Index < 0 {
		return false
	}
	return b.Index <= s.members[b.Proc-1]
}

// Receipt describes one incoming FFIP message for Absorb: the sender's node
// and the sender's frozen view at that node (the full-information payload).
type Receipt struct {
	From    BasicNode
	Payload *Snapshot
}

// Absorb advances the view by one receive batch: the owning process moves
// to its next local state, merges every sender's payload snapshot, records
// the batch's deliveries and external inputs, and returns the new node. It
// implements the FFIP state transition on the receiving side.
func (v *View) Absorb(receipts []Receipt, externalLabels []string) (BasicNode, error) {
	p := v.origin.Proc
	next := BasicNode{Proc: p, Index: v.members[p-1] + 1}
	v.members[p-1] = next.Index
	v.origin = next
	for _, rc := range receipts {
		if rc.Payload != nil {
			if err := v.merge(rc.Payload); err != nil {
				return BasicNode{}, err
			}
		}
		if !v.Contains(rc.From) {
			return BasicNode{}, fmt.Errorf("run: receipt from %s not covered by its own payload", rc.From)
		}
		v.recordDelivery(rc.From, next, v.net.ChanIDOf(rc.From.Proc, p))
	}
	for _, l := range externalLabels {
		v.recordExternal(next, l)
	}
	return next, nil
}

// merge unions a payload snapshot into this view. Everything below the
// watermark recorded for the snapshot's source view was merged from an
// earlier (prefix) snapshot already, so only the suffix is scanned.
func (v *View) merge(s *Snapshot) error {
	if len(s.members) != len(v.members) {
		return fmt.Errorf("run: merging views over different networks")
	}
	for i, k := range s.members {
		if k > v.members[i] {
			v.members[i] = k
		}
	}
	if v.merged == nil {
		v.merged = make(map[uint64]logMarks)
	}
	mk := v.merged[s.source]
	for i := mk.log; i < len(s.log); i++ {
		v.recordDelivery(s.log[i].From, s.log[i].To, s.log[i].Chan)
	}
	for i := mk.ext; i < len(s.extLog); i++ {
		v.recordExternal(s.extLog[i].To, s.extLog[i].Label)
	}
	// Channels need not be FIFO: a snapshot older than one already merged
	// can arrive later, so the watermark only ever advances.
	if len(s.log) > mk.log {
		mk.log = len(s.log)
	}
	if len(s.extLog) > mk.ext {
		mk.ext = len(s.extLog)
	}
	v.merged[s.source] = mk
	return nil
}

// Clone returns a deep copy with its own logs and indexes, for callers that
// need an independently growable view (message payloads use the far cheaper
// Snapshot instead).
func (v *View) Clone() *View {
	c := &View{
		net:       v.net,
		origin:    v.origin,
		id:        viewIDs.Add(1),
		members:   append([]int(nil), v.members...),
		sent:      make(map[sentKey]BasicNode, len(v.sent)),
		externals: make(map[BasicNode][]string, len(v.externals)),
		log:       append([]Delivery(nil), v.log...),
		extLog:    append([]External(nil), v.extLog...),
		fp:        v.fp,
	}
	for key, node := range v.sent {
		c.sent[key] = node
	}
	for node, labels := range v.externals {
		c.externals[node] = append([]string(nil), labels...)
	}
	if len(v.extEarliest) > 0 {
		c.extEarliest = make(map[extKey]BasicNode, len(v.extEarliest))
		for key, node := range v.extEarliest {
			c.extEarliest[key] = node
		}
	}
	if len(v.merged) > 0 {
		c.merged = make(map[uint64]logMarks, len(v.merged))
		for id, mk := range v.merged {
			c.merged[id] = mk
		}
	}
	return c
}
