// Command zigzag-sim runs one of the canonical scenarios and prints its
// timeline, the coordination outcome and the justifying zigzag pattern.
// With -sweep it instead runs the full scenario registry as a
// scenario × policy × seed grid across a worker pool and prints the
// aggregates — as an aligned table by default, or as CSV/JSON via -format
// for feeding figure scripts.
//
// Usage:
//
//	zigzag-sim [-scenario name] [-policy eager|lazy|random] [-seed n]
//	           [-x n] [-timeline n] [-list] [-dump file]
//	zigzag-sim -sweep [-seeds n] [-workers n] [-x n] [-format table|csv|json]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/sweep"
	"github.com/clockless/zigzag/internal/trace"
	"github.com/clockless/zigzag/internal/viz"
)

func main() {
	var (
		name     = flag.String("scenario", "figure2b", "scenario to run")
		policy   = flag.String("policy", "lazy", "delivery policy: eager, lazy or random")
		seed     = flag.Int64("seed", 1, "seed for the random policy")
		x        = flag.Int("x", 0, "override the task's required separation (0 keeps the default)")
		timeline = flag.Int("timeline", 32, "timeline window to render")
		list     = flag.Bool("list", false, "list scenarios and exit")
		dump     = flag.String("dump", "", "write the recorded run as JSON to this file")
		doSweep  = flag.Bool("sweep", false, "sweep the full registry under every policy and print the aggregate table")
		seeds    = flag.Int("seeds", 8, "number of seeds per (scenario, policy) cell in a sweep")
		workers  = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS)")
		format   = flag.String("format", "table", "sweep output format: table, csv or json")
	)
	flag.Parse()
	all := scenario.Registry(*x)
	if *list {
		for _, n := range scenario.Names(all) {
			fmt.Printf("%-9s %s\n", n, all[n].Description)
		}
		return
	}
	if *doSweep {
		if !sweep.ValidFormat(*format) {
			fmt.Fprintf(os.Stderr, "unknown output format %q (want table, csv or json)\n", *format)
			os.Exit(2)
		}
		if err := runSweep(all, *seeds, *workers, *format); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	sc, ok := all[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (use -list)\n", *name)
		os.Exit(2)
	}
	var pol sim.Policy
	switch *policy {
	case "eager":
		pol = sim.Eager{}
	case "lazy":
		pol = sim.Lazy{}
	case "random":
		pol = sim.NewRandom(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	r, err := sc.Simulate(pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.WriteRun(f, r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("run written to %s\n", *dump)
	}
	fmt.Printf("scenario %s under policy %s\n%s\n\n", sc.Name, pol.Name(), sc.Description)
	names := make(map[model.ProcID]string, len(sc.Roles))
	for role, p := range sc.Roles {
		names[p] = role
	}
	fmt.Println(viz.Timeline(r, names, model.Time(*timeline)))

	if sc.Task == nil {
		return
	}
	fmt.Printf("task: %s with x=%d (A=%s, B=%s, C=%s)\n",
		sc.Task.Kind, sc.Task.X, names[sc.Task.A], names[sc.Task.B], names[sc.Task.C])
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !out.Acted {
		fmt.Println("Protocol 2: B cannot act — the required bound is not knowable on this network.")
		return
	}
	fmt.Printf("Protocol 2: B acted at t=%d (a at t=%d, gap %+d), knowing a bound of %d\n",
		out.ActTime, out.ATime, out.Gap, out.KnownBound)
	fmt.Println("justifying sigma-visible zigzag:")
	fmt.Print(viz.Zigzag(r.Net(), &out.Witness.Zigzag))
	if err := out.Witness.VerifyVisible(r); err != nil {
		fmt.Fprintf(os.Stderr, "witness verification failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("witness verified ✔")

	ext, err := bounds.NewExtended(r, out.ActNode)
	if err == nil {
		fmt.Println()
		fmt.Print(viz.ExtendedStats(ext))
	}

	base, err := sc.Task.RunBaseline(r)
	if err == nil {
		if base.Acted {
			fmt.Printf("asynchronous baseline: acted at t=%d (%+d vs optimal)\n",
				base.ActTime, base.ActTime-out.ActTime)
		} else {
			fmt.Println("asynchronous baseline: never acts on this network")
		}
	}
}

// runSweep runs the full registry × policy × seed grid and prints the
// aggregates in deterministic order, in the requested format. The banner is
// only printed for the human-readable table so that csv/json output can be
// piped straight into figure scripts.
func runSweep(all map[string]*scenario.Scenario, seeds, workers int, format string) error {
	if seeds < 1 {
		return fmt.Errorf("sweep needs at least one seed, got %d", seeds)
	}
	grid := sweep.Grid{
		Scenarios: scenario.All(all),
		Policies:  sweep.DefaultPolicies(),
		Seeds:     make([]int64, seeds),
		Workers:   workers,
	}
	for i := range grid.Seeds {
		grid.Seeds[i] = int64(i + 1)
	}
	results, err := grid.Run()
	if err != nil {
		return err
	}
	if format == "" || format == "table" {
		fmt.Printf("sweep: %d scenarios x %d policies x %d seeds = %d runs\n\n",
			len(grid.Scenarios), len(grid.Policies), len(grid.Seeds), grid.Size())
	}
	if err := sweep.Write(os.Stdout, format, sweep.Summarize(results)); err != nil {
		return err
	}
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "cell %s/%s seed=%d: %v\n", res.Scenario, res.Policy, res.Seed, res.Err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d cells failed", failed, len(results))
	}
	return nil
}
