package bounds

import (
	"fmt"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Online incrementally maintains the extended bounds graph GE(r, sigma) of
// an online agent as its view grows. A fresh NewExtendedFromView pays the
// full O(V+E) construction at every new local state; Online exploits the
// monotone growth of the view — nodes and deliveries are only ever added —
// to extend the standing vertex and edge tables with just the delta it
// reads off the view's append-only delivery log.
//
// The maintained graph is *answer-equivalent* to a fresh build, not
// byte-identical in layout: vertex ids are assigned in arrival order (the
// auxiliary psi band comes first so its ids never move), and superseded
// boundary edges E' are left in place because a stale boundary edge
// (p,k) --1--> psi_p is dominated by the successor chain to the current
// boundary followed by the fresh boundary edge, so it can change no
// longest-path distance and create no positive cycle. The one edge family
// that genuinely invalidates — E” edges psi_q --(-U)--> sender for leaving
// messages whose delivery later enters the view — is removed on sync.
// KnowledgeWeight/Knows answers therefore coincide exactly with a fresh
// NewExtendedFromView at every state, which TestOnlineMatchesFreshBuild
// asserts differentially.
//
// Beyond-horizon chain vertices are materialized per query exactly as in
// Extended.VertexOfGeneral and rolled back afterwards: a chain vertex's
// edges add no constraint between standing vertices (its only exit edge,
// back to its parent, is dominated by the E” edge that exists whenever the
// chain vertex does), so speculative queries leave no trace and the
// distances cached for RelaxFrom stay valid.
//
// Online is constructed once per agent and is not safe for concurrent use.
type Online struct {
	view *run.View
	g    *graph.Graph
	n    int

	// members[p-1] is the boundary index covered by the last sync (-1 if
	// the process had not entered the view); prev is its scratch copy so
	// the delivery pass can tell new senders from old ones.
	members []int
	prev    []int
	// logMark is the watermark into the view's delivery log.
	logMark int
	// vertexOf[p-1][k] is the vertex id of past node (p, k).
	vertexOf [][]int32
	// outCap/inCap[p-1] are the adjacency capacity hints for process p's
	// node vertices: a node's lifetime degrees are bounded by its process's
	// channel degrees (successor, boundary, per-channel delivery, backward
	// and leaving edges), so presizing makes vertex insertion one
	// allocation instead of per-edge append churn.
	outCap, inCap []int

	// scratch carries the SPFA buffers across queries; between syncs that
	// only ADD edges it still holds the fixpoint distances from cacheSrc,
	// so the next query from the same source re-relaxes only the delta.
	scratch    graph.Scratch
	cacheSrc   int
	cacheValid bool
	// seeds accumulates the sources of edges added since the last full
	// SPFA run from cacheSrc; querySeeds is its per-query working copy
	// (extended with the speculative chain edge sources).
	seeds      []int
	querySeeds []int

	// The reverse cache serves the inverted (Early-kind) query shape —
	// fixed target, moving source — by maintaining longest-path distances
	// INTO revCacheDst over the transposed graph. revSeeds accumulates the
	// HEADS of edges added since the last reverse relaxation; revRetired
	// records a leaving-edge removal since, which can lower reverse
	// distances on the aux band (and only there — node-vertex reverse
	// distances are knowledge weights, which persist), so the next warm
	// reverse run re-derives the band from auxRefresh (DESIGN.md §13).
	revScratch    graph.Scratch
	revCacheDst   int
	revCacheValid bool
	revSeeds      []int
	revQuerySeeds []int
	revRetired    bool
	auxRefresh    []int
	stats         HandleStats

	// Per-query chain-vertex state, rolled back after each query.
	chainKeys []chainKey
	chainIDs  []int
	undo      []chainUndo

	// Reusable QueryBatch working buffers (resolved endpoints and the
	// answered bitmap), kept on the engine so batches allocate nothing.
	batchUs, batchVs []int
	batchDone        []bool
}

// chainUndo records one speculative chain vertex for rollback.
type chainUndo struct {
	parent, eta, aux int
	lower, upper     int
}

// NewOnline wraps a growing view. The engine starts empty and absorbs the
// view's current content on the first query; it must observe every later
// state through the same View value.
func NewOnline(view *run.View) *Online {
	net := view.Net()
	n := net.N()
	o := &Online{
		view:        view,
		g:           graph.New(n),
		n:           n,
		members:     make([]int, n),
		prev:        make([]int, n),
		vertexOf:    make([][]int32, n),
		outCap:      make([]int, n),
		inCap:       make([]int, n),
		cacheSrc:    -1,
		revCacheDst: -1,
		auxRefresh:  make([]int, n),
	}
	for i := range o.members {
		o.members[i] = -1
		o.auxRefresh[i] = i
		p := model.ProcID(i + 1)
		outDeg := len(net.OutArcs(p))
		inDeg := len(net.InIDs(p))
		// Out: successor + boundary + one forward delivery edge per send.
		o.outCap[i] = 2 + outDeg
		// In: successor + one forward edge per in-channel + backward and
		// (transient) leaving edges per out-channel.
		o.inCap[i] = 2 + inDeg + 2*outDeg
	}
	// E''': one psi_to --(-U)--> psi_from edge per channel, fixed for the
	// lifetime of the engine. The auxiliary band occupies ids 0..n-1.
	for _, a := range net.Arcs() {
		o.g.AddEdge(o.aux(a.To), o.aux(a.From), -a.Bounds.Upper)
	}
	return o
}

// View returns the wrapped view.
func (o *Online) View() *run.View { return o.view }

// NumVertices returns the current number of standing vertices.
func (o *Online) NumVertices() int { return o.g.N() }

// NumEdges returns the current number of standing edges.
func (o *Online) NumEdges() int { return o.g.NumEdges() }

// aux returns the vertex id of psi_p.
func (o *Online) aux(p model.ProcID) int { return int(p) - 1 }

// vertex returns the vertex id of a past node known to be in the synced
// view.
func (o *Online) vertex(b run.BasicNode) int {
	return int(o.vertexOf[b.Proc-1][b.Index])
}

// Sync absorbs the view's growth since the last call: new timeline nodes
// (with their successor, boundary and leaving edges) and new deliveries
// (with their lower/upper edges, retiring the leaving edges they satisfy).
// Queries sync implicitly; the method is exposed for callers that want to
// pay the graph maintenance at a specific point.
func (o *Online) Sync() error {
	net := o.view.Net()
	copy(o.prev, o.members)
	grew := false

	// Pass 1: extend the timelines — vertices, successor edges, the fresh
	// boundary edge and leaving edges for the new non-initial nodes. The
	// leaving check consults the fully-updated view, so a send whose
	// delivery arrives within this same sync never becomes leaving.
	for p := model.ProcID(1); int(p) <= o.n; p++ {
		cur := -1
		if bnd, ok := o.view.Boundary(p); ok {
			cur = bnd.Index
		}
		old := o.members[p-1]
		if cur == old {
			continue
		}
		grew = true
		for k := old + 1; k <= cur; k++ {
			vtx := o.g.AddVertexWithCaps(o.outCap[p-1], o.inCap[p-1])
			o.vertexOf[p-1] = append(o.vertexOf[p-1], int32(vtx))
			if o.revCacheValid {
				// Reverse seeds are edge HEADS: the new vertex heads its
				// successor edge and any leaving edges added below.
				o.revSeeds = append(o.revSeeds, vtx)
			}
			if k > 0 {
				prev := int(o.vertexOf[p-1][k-1])
				o.g.AddEdge(prev, vtx, 1)
				o.seeds = append(o.seeds, prev)
			}
		}
		bndV := int(o.vertexOf[p-1][cur])
		o.g.AddEdge(bndV, o.aux(p), 1)
		o.seeds = append(o.seeds, bndV)
		if o.revCacheValid {
			o.revSeeds = append(o.revSeeds, o.aux(p))
		}
		first := old + 1
		if first < 1 {
			first = 1
		}
		for k := first; k <= cur; k++ {
			from := run.BasicNode{Proc: p, Index: k}
			for _, a := range net.OutArcs(p) {
				if _, ok := o.view.DeliveryTo(from, a.To); !ok {
					o.g.AddEdge(o.aux(a.To), int(o.vertexOf[p-1][k]), -a.Bounds.Upper)
					o.seeds = append(o.seeds, o.aux(a.To))
				}
			}
		}
		o.members[p-1] = cur
	}

	// Pass 2: wire the new deliveries. A delivery whose sender predates
	// this sync retires the leaving edge recorded for it earlier.
	//
	// Removal does NOT invalidate the cached distances: per-state fresh
	// distances are pointwise non-decreasing — on node vertices they are,
	// by Theorem 4, exactly the knowledge weights against the (fixed)
	// cached source, and knowledge is persistent; on the auxiliary band
	// every input is a boundary edge whose support only strengthens,
	// propagated through the fixed E''' edges. The cache therefore stays a
	// valid under-approximating warm start, every surviving edge it
	// satisfied remains satisfied, and re-relaxing from the added edges'
	// sources converges to the exact new fixpoint. The differential test
	// pins this equality on every state.
	delta := o.view.DeliveriesSince(o.logMark)
	for i := range delta {
		d := &delta[i]
		if d.Chan == model.NoChan {
			// The watermark stays on this entry, so every retry re-reports
			// the same error — exactly as a fresh build from the same view
			// does at every state.
			ch := d.Channel()
			return fmt.Errorf("%w: %d->%d", model.ErrNoChannel, ch.From, ch.To)
		}
		grew = true
		bd := net.BoundsOf(d.Chan)
		u := o.vertex(d.From)
		v := o.vertex(d.To)
		o.g.AddEdge(u, v, bd.Lower)
		o.g.AddEdge(v, u, -bd.Upper)
		o.seeds = append(o.seeds, u, v)
		if o.revCacheValid {
			o.revSeeds = append(o.revSeeds, u, v)
		}
		if d.From.Index <= o.prev[d.From.Proc-1] {
			if !o.g.RemoveEdge(o.aux(d.To.Proc), u, -bd.Upper) {
				return fmt.Errorf("bounds: online sync lost the leaving edge of %s->%d", d.From, d.To.Proc)
			}
			// The retirement can lower reverse distances on the aux band;
			// the next warm reverse run must re-derive it.
			o.revRetired = o.revRetired || o.revCacheValid
		}
		o.logMark++
	}
	if grew && !o.cacheValid {
		o.seeds = o.seeds[:0]
	}
	return nil
}

// vertexOfGeneral mirrors Extended.VertexOfGeneral on the maintained graph,
// materializing speculative chain vertices recorded in o.undo.
func (o *Online) vertexOfGeneral(theta run.GeneralNode) (int, error) {
	net := o.view.Net()
	if err := theta.Valid(net); err != nil {
		return 0, err
	}
	if !o.view.Contains(theta.Base) {
		return 0, fmt.Errorf("%w: %s", ErrNotRecognized, theta)
	}
	if theta.Path.Hops() == 0 {
		// Basic node: no chain to resolve, no prefix slice to allocate.
		return o.vertex(theta.Base), nil
	}
	prefix, hops := o.view.ResolvePrefix(theta)
	cur := prefix[len(prefix)-1]
	if hops == theta.Path.Hops() {
		return o.vertex(cur), nil
	}
	if cur.IsInitial() {
		return 0, fmt.Errorf("%w: %s stalls at %s", ErrInitialChain, theta, cur)
	}
	curVertex := o.vertex(cur)
	for k := hops + 1; k <= theta.Path.Hops(); k++ {
		from, to := theta.Path[k-1], theta.Path[k]
		key := chainKey{parent: int32(curVertex), to: to}
		next := -1
		for i := range o.chainKeys {
			if o.chainKeys[i] == key {
				next = o.chainIDs[i]
				break
			}
		}
		if next < 0 {
			bd, berr := net.ChanBounds(from, to)
			if berr != nil {
				return 0, berr
			}
			next = o.g.AddVertex()
			o.chainKeys = append(o.chainKeys, key)
			o.chainIDs = append(o.chainIDs, next)
			o.g.AddEdge(curVertex, next, bd.Lower)
			o.g.AddEdge(next, curVertex, -bd.Upper)
			o.g.AddEdge(o.aux(to), next, 0)
			o.undo = append(o.undo, chainUndo{
				parent: curVertex, eta: next, aux: o.aux(to),
				lower: bd.Lower, upper: bd.Upper,
			})
		}
		curVertex = next
	}
	return curVertex, nil
}

// rollback removes the speculative chain vertices of the current query,
// restoring the standing graph (and forgetting their cached distances).
func (o *Online) rollback(base int) {
	for i := len(o.undo) - 1; i >= 0; i-- {
		u := o.undo[i]
		o.g.RemoveEdge(u.aux, u.eta, 0)
		o.g.RemoveEdge(u.eta, u.parent, -u.upper)
		o.g.RemoveEdge(u.parent, u.eta, u.lower)
	}
	for o.g.N() > base {
		o.g.PopVertex()
	}
	o.undo = o.undo[:0]
	o.chainKeys = o.chainKeys[:0]
	o.chainIDs = o.chainIDs[:0]
	o.scratch.Truncate(base)
	o.revScratch.Truncate(base)
}

// KnowledgeWeight computes kw = max{ x : K_sigma(theta1 --x--> theta2) },
// the strongest timed precedence between theta1 and theta2 known at the
// view's current state, agreeing exactly with
// Extended.KnowledgeWeight on a fresh build from the same view. known is
// false — with err == nil — when no bound is known at any x. (Witness
// steps are an offline concern; online agents decide on the weight alone.)
func (o *Online) KnowledgeWeight(theta1, theta2 run.GeneralNode) (kw int, known bool, err error) {
	if err := o.Sync(); err != nil {
		return 0, false, err
	}
	base := o.g.N()
	u, err := o.vertexOfGeneral(theta1)
	if err != nil {
		o.rollback(base)
		return 0, false, err
	}
	v, err := o.vertexOfGeneral(theta2)
	if err != nil {
		o.rollback(base)
		return 0, false, err
	}

	// The chain edges materialized above relax into the standing distances
	// without disturbing them (see the type comment), so a cached run from
	// the same source only needs the accumulated delta seeds.
	var dist []int64
	switch {
	case o.cacheValid && u == o.cacheSrc:
		o.querySeeds = append(o.querySeeds[:0], o.seeds...)
		for i := range o.undo {
			o.querySeeds = append(o.querySeeds, o.undo[i].parent, o.undo[i].aux)
		}
		dist, err = o.g.RelaxFrom(&o.scratch, o.querySeeds)
	case v < base && (o.cacheValid || o.revCacheValid):
		// The forward cache exists but misses (the source moved between
		// queries — the Early shape) or the reverse cache is already warm:
		// answer from distances INTO the standing target instead, reading
		// the source's entry. A cold engine never lands here, so Late-kind
		// agents establish the forward cache as before.
		if o.revCacheValid && v == o.revCacheDst {
			o.revQuerySeeds = append(o.revQuerySeeds[:0], o.revSeeds...)
			for i := range o.undo {
				// The chain vertex heads its parent's exit edge; deeper
				// chain hops cascade from it.
				o.revQuerySeeds = append(o.revQuerySeeds, o.undo[i].parent)
			}
			var refresh []int
			if o.revRetired {
				refresh = o.auxRefresh
				o.stats.BandRefreshes++
			}
			dist, err = o.g.RelaxReverseFrom(&o.revScratch, o.revQuerySeeds, refresh)
			o.stats.RevHits++
		} else {
			dist, err = o.g.LongestIntoWith(&o.revScratch, v)
			o.revCacheDst = v
			o.revCacheValid = true
			o.stats.RevRebuilds++
		}
		o.stats.RevRelaxations += o.revScratch.Relaxations
		o.revScratch.Relaxations = 0
		if err != nil {
			o.revCacheValid = false
			o.rollback(base)
			return 0, false, fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
		}
		o.revSeeds = o.revSeeds[:0]
		o.revRetired = false
		w, reachable := int(dist[u]), dist[u] != graph.NegInf
		o.rollback(base)
		if !reachable {
			return 0, false, nil
		}
		return w, true, nil
	default:
		dist, err = o.g.LongestWith(&o.scratch, u)
		o.cacheSrc = u
		o.cacheValid = u < base
	}
	if err != nil {
		o.cacheValid = false
		o.rollback(base)
		return 0, false, fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
	}
	// Either way the scratch now holds the fixpoint over every standing
	// edge, so the delta restarts empty.
	o.seeds = o.seeds[:0]
	w, reachable := int(dist[v]), dist[v] != graph.NegInf
	o.rollback(base)
	if !reachable {
		return 0, false, nil
	}
	return w, true, nil
}

// Stats returns the engine's cumulative reverse-cache counters.
func (o *Online) Stats() HandleStats { return o.stats }

// Weight is the weight-only query of the batched plane. Online never
// materializes witnesses, so it coincides with KnowledgeWeight; it exists so
// Extended, Online and Handle expose one weight-only contract.
func (o *Online) Weight(theta1, theta2 run.GeneralNode) (kw int, known bool, err error) {
	return o.KnowledgeWeight(theta1, theta2)
}

// Knows reports whether K_sigma(theta1 --x--> theta2) holds at the view's
// current state, agreeing exactly with Extended.Knows on a fresh build.
func (o *Online) Knows(theta1 run.GeneralNode, x int, theta2 run.GeneralNode) (bool, error) {
	kw, known, err := o.KnowledgeWeight(theta1, theta2)
	if err != nil {
		return false, err
	}
	return known && kw >= x, nil
}

// KnowsAt evaluates a threshold grid against one weight computation:
// holds[i] is set to Knows(theta1, xs[i], theta2) for the price of a single
// (possibly cache-warm) SPFA. holds must have at least len(xs) entries. The
// grid answers count as batched queries: len(xs) served, len(xs)-1 of them
// without their own relaxation.
func (o *Online) KnowsAt(theta1 run.GeneralNode, xs []int, theta2 run.GeneralNode, holds []bool) (kw int, known bool, err error) {
	kw, known, err = o.KnowledgeWeight(theta1, theta2)
	if err != nil {
		return 0, false, err
	}
	for i, x := range xs {
		holds[i] = known && kw >= x
	}
	o.stats.BatchQueries += int64(len(xs))
	o.stats.BatchHits += int64(len(xs) - 1)
	return kw, known, nil
}
