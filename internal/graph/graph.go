// Package graph provides the weighted-digraph machinery behind the bounds
// graphs of the paper: longest-path computation with positive-cycle
// detection. In a bounds graph an edge u --w--> v encodes the constraint
// time(v) >= time(u) + w, so the longest path from u to v is the tightest
// provable lower bound on time(v) - time(u); a positive cycle would assert
// that a node occurs strictly after itself, which is absurd, so its
// detection signals an inconsistent (illegal) run.
package graph

import (
	"errors"
	"fmt"
)

// NegInf is the "no path" distance sentinel. It is far enough from the
// representable range that adding edge weights to it cannot wrap.
const NegInf = int64(-1) << 60

// ErrPositiveCycle reports that the graph contains a cycle of positive
// weight reachable in the queried direction, i.e. the constraint system is
// unsatisfiable.
var ErrPositiveCycle = errors.New("graph: positive-weight cycle")

// Edge is a directed weighted edge.
type Edge struct {
	To     int
	Weight int
}

// Graph is a mutable directed graph over vertices 0..n-1 with integer edge
// weights. It is not safe for concurrent mutation.
type Graph struct {
	adj  [][]Edge
	radj [][]Edge
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n), radj: make([][]Edge, n)}
}

// NewWithDegrees returns an empty graph on len(out) == len(in) vertices whose
// per-vertex adjacency slices are carved, with exact capacities, out of two
// shared backing arrays sized by the given out-/in-degree counts. Callers
// that can count edges up front (the bounds-graph constructions do) then add
// every edge without a single adjacency reallocation: the whole graph costs
// O(1) allocations instead of O(V) append churn. AddEdge beyond the declared
// degree of a vertex — and AddVertex — still work; they simply fall back to
// ordinary append growth.
func NewWithDegrees(out, in []int32) *Graph {
	if len(out) != len(in) {
		panic(fmt.Sprintf("graph: degree tables disagree: %d vs %d vertices", len(out), len(in)))
	}
	n := len(out)
	g := &Graph{adj: make([][]Edge, n), radj: make([][]Edge, n)}
	var totalOut, totalIn int32
	for i := 0; i < n; i++ {
		totalOut += out[i]
		totalIn += in[i]
	}
	outBacking := make([]Edge, totalOut)
	inBacking := make([]Edge, totalIn)
	var oOff, iOff int32
	for i := 0; i < n; i++ {
		g.adj[i] = outBacking[oOff : oOff : oOff+out[i]]
		g.radj[i] = inBacking[iOff : iOff : iOff+in[i]]
		oOff += out[i]
		iOff += in[i]
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total
}

// AddVertex appends a fresh isolated vertex and returns its id.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.radj = append(g.radj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the edge u --w--> v. Parallel edges are allowed (only the
// heaviest matters for longest paths). It panics on out-of-range vertices —
// vertex allocation is the caller's structural invariant.
func (g *Graph) AddEdge(u, v, w int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside 0..%d", u, v, len(g.adj)-1))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	g.radj[v] = append(g.radj[v], Edge{To: u, Weight: w})
}

// Out returns the out-edges of u. Callers must not mutate the result.
func (g *Graph) Out(u int) []Edge { return g.adj[u] }

// In returns the in-edges of u, pointing back at the edge sources with the
// same weights. Callers must not mutate the result.
func (g *Graph) In(u int) []Edge { return g.radj[u] }

// Longest computes single-source longest-path distances from src using a
// queue-based Bellman–Ford (SPFA). dist[v] == NegInf means v is unreachable.
// It returns ErrPositiveCycle if a positive cycle is reachable from src.
func (g *Graph) Longest(src int) ([]int64, error) {
	return longest(src, g.adj)
}

// LongestInto computes, for every vertex v, the weight of the longest path
// from v to dst, by running SPFA on the reversed graph. dist[v] == NegInf
// means dst is unreachable from v.
func (g *Graph) LongestInto(dst int) ([]int64, error) {
	return longest(dst, g.radj)
}

func longest(src int, adj [][]Edge) ([]int64, error) {
	n := len(adj)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("graph: source %d outside 0..%d", src, n-1)
	}
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = NegInf
	}
	dist[src] = 0

	inQueue := make([]bool, n)
	relaxed := make([]int, n)
	queue := make([]int, 0, n)
	queue = append(queue, src)
	inQueue[src] = true

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		du := dist[u]
		for _, e := range adj[u] {
			if nd := du + int64(e.Weight); nd > dist[e.To] {
				dist[e.To] = nd
				relaxed[e.To]++
				if relaxed[e.To] > n {
					return nil, ErrPositiveCycle
				}
				if !inQueue[e.To] {
					queue = append(queue, e.To)
					inQueue[e.To] = true
				}
			}
		}
	}
	return dist, nil
}

// LongestPath returns the weight of a longest path from src to dst and a
// vertex sequence realizing it. ok is false if dst is unreachable.
//
// Reconstruction walks backwards from dst over tight edges (edges with
// dist[u] + w == dist[v]) using a depth-first search with a visited set.
// Any simple tight path from src to dst telescopes to dist[dst], and the
// visited set makes the walk immune to zero-weight cycles, which bounds
// graphs contain whenever a channel has L == U.
func (g *Graph) LongestPath(src, dst int) (weight int64, path []int, ok bool, err error) {
	dist, err := g.Longest(src)
	if err != nil {
		return 0, nil, false, err
	}
	if dst < 0 || dst >= len(dist) || dist[dst] == NegInf {
		return 0, nil, false, nil
	}
	// Iterative DFS from dst backwards over tight edges.
	visited := make([]bool, len(dist))
	from := make([]int, len(dist)) // tight-walk successor towards dst
	for i := range from {
		from[i] = -1
	}
	stack := []int{dst}
	visited[dst] = true
	found := dst == src
	for len(stack) > 0 && !found {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.radj[v] {
			u := e.To
			if visited[u] || dist[u] == NegInf {
				continue
			}
			if dist[u]+int64(e.Weight) != dist[v] {
				continue // not tight: not on any maximal path through v
			}
			visited[u] = true
			from[u] = v
			if u == src {
				found = true
				break
			}
			stack = append(stack, u)
		}
	}
	if !found {
		// dst is reachable, so a fully tight optimal path exists; not
		// finding one indicates internal inconsistency.
		return 0, nil, false, fmt.Errorf("graph: no tight path %d->%d despite dist %d", src, dst, dist[dst])
	}
	path = append(path, src)
	for at := src; at != dst; {
		at = from[at]
		path = append(path, at)
	}
	return dist[dst], path, true, nil
}

// Reachable reports whether dst is reachable from src.
func (g *Graph) Reachable(src, dst int) bool {
	seen := make([]bool, len(g.adj))
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			return true
		}
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// ReachSet returns the set of vertices from which dst is reachable
// (including dst itself): the sigma-precedence set V_sigma of Definition 12
// when applied to a bounds graph.
func (g *Graph) ReachSet(dst int) []bool {
	seen := make([]bool, len(g.adj))
	seen[dst] = true
	stack := []int{dst}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.radj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}
