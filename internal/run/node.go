// Package run models executions of the bounded communication model: basic
// nodes (process, local state), general nodes <sigma, p>, message deliveries,
// external inputs, Lamport's happens-before relation and the causal past.
//
// A local state in a flooding full-information protocol (FFIP) is an initial
// state followed by the sequence of receive batches the process has absorbed,
// so a basic node is identified by (process, batch index): index 0 is the
// initial state and index k is the state after the k-th batch of deliveries.
// The payload of every FFIP message is the sender's full history; here that
// history is represented structurally — it is exactly past(r, sender).
package run

import (
	"fmt"

	"github.com/clockless/zigzag/internal/model"
)

// BasicNode is a pair (process, local state) — an i-node in the paper's
// terminology. Index 0 denotes the initial state; index k >= 1 the state
// reached after the k-th receive batch.
type BasicNode struct {
	Proc  model.ProcID
	Index int
}

// IsInitial reports whether the node is an initial node (time-0 state).
// Initial nodes never send messages: processes act only upon receipt.
func (b BasicNode) IsInitial() bool { return b.Index == 0 }

// Predecessor returns the node's predecessor on its timeline and false if
// the node is initial.
func (b BasicNode) Predecessor() (BasicNode, bool) {
	if b.Index == 0 {
		return BasicNode{}, false
	}
	return BasicNode{Proc: b.Proc, Index: b.Index - 1}, true
}

// Successor returns the next node on the same timeline. Whether it appears
// in a given run is a separate question.
func (b BasicNode) Successor() BasicNode {
	return BasicNode{Proc: b.Proc, Index: b.Index + 1}
}

// String renders the node as "p3#2" (process 3, state index 2).
func (b BasicNode) String() string { return fmt.Sprintf("p%d#%d", b.Proc, b.Index) }

// GeneralNode is the paper's <sigma, p>: the basic node at the end of the
// FFIP message chain that leaves sigma and travels along path p. Path must
// begin at sigma's process; a singleton path denotes sigma itself.
type GeneralNode struct {
	Base BasicNode
	Path model.Path
}

// At returns the general node <sigma, [proc(sigma)]>, denoting sigma itself.
func At(sigma BasicNode) GeneralNode {
	return GeneralNode{Base: sigma, Path: model.SingletonPath(sigma.Proc)}
}

// Via returns the general node <sigma, p>.
func Via(sigma BasicNode, p model.Path) GeneralNode {
	return GeneralNode{Base: sigma, Path: p}
}

// IsBasic reports whether the node denotes its base directly (singleton
// path).
func (g GeneralNode) IsBasic() bool { return g.Path.IsSingleton() }

// Proc returns the process on whose timeline the node lies: the last
// process of the chain path.
func (g GeneralNode) Proc() model.ProcID { return g.Path.Last() }

// Extend returns <sigma, p . q'> where the node's path is extended by the
// hops of q (q must start at the node's process).
func (g GeneralNode) Extend(q model.Path) (GeneralNode, error) {
	p, err := g.Path.Compose(q)
	if err != nil {
		return GeneralNode{}, err
	}
	return GeneralNode{Base: g.Base, Path: p}, nil
}

// Hop returns the node extended by the single channel to proc j.
func (g GeneralNode) Hop(j model.ProcID) GeneralNode {
	return GeneralNode{Base: g.Base, Path: g.Path.Append(j)}
}

// Valid reports whether the node is well-formed relative to net: non-empty
// path starting at the base's process and following channels of net.
func (g GeneralNode) Valid(net *model.Network) error {
	if len(g.Path) == 0 {
		return model.ErrEmptyPath
	}
	if g.Path.First() != g.Base.Proc {
		return fmt.Errorf("run: general node path %s does not start at base process %d",
			g.Path, g.Base.Proc)
	}
	return g.Path.ValidIn(net)
}

// Equal reports structural equality of two general nodes.
func (g GeneralNode) Equal(h GeneralNode) bool {
	return g.Base == h.Base && g.Path.Equal(h.Path)
}

// String renders the node as "<p3#2, 3>1>4>".
func (g GeneralNode) String() string {
	if g.IsBasic() {
		return g.Base.String()
	}
	return fmt.Sprintf("<%s,%s>", g.Base, g.Path)
}
