package model

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	p := Path{1, 2, 3}
	if p.First() != 1 || p.Last() != 3 || p.Hops() != 2 || p.IsSingleton() {
		t.Error("path accessors wrong")
	}
	s := SingletonPath(7)
	if !s.IsSingleton() || s.Hops() != 0 {
		t.Error("singleton wrong")
	}
	if got := p.String(); got != "1>2>3" {
		t.Errorf("String = %q", got)
	}
}

func TestPathClone(t *testing.T) {
	p := Path{1, 2, 3}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestPathCompose(t *testing.T) {
	p := Path{1, 2, 3}
	q := Path{3, 4}
	r, err := p.Compose(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(Path{1, 2, 3, 4}) {
		t.Errorf("compose = %v", r)
	}
	if _, err := p.Compose(Path{9, 1}); err == nil {
		t.Error("mismatched compose succeeded")
	}
	if _, err := (Path{}).Compose(q); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("empty compose: %v", err)
	}
	// Singleton identity: p ∘ [last(p)] == p.
	r, err = p.Compose(SingletonPath(3))
	if err != nil || !r.Equal(p) {
		t.Errorf("identity compose = %v, %v", r, err)
	}
}

func TestPathPrefix(t *testing.T) {
	p := Path{1, 2, 3, 4}
	if !p.HasPrefix(Path{1, 2}) || !p.HasPrefix(p) || p.HasPrefix(Path{2}) {
		t.Error("HasPrefix wrong")
	}
	if p.HasPrefix(Path{1, 2, 3, 4, 5}) {
		t.Error("longer prefix accepted")
	}
}

func TestPathValidIn(t *testing.T) {
	net := MustLine(4, 1, 2)
	if err := (Path{1, 2, 3}).ValidIn(net); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (Path{1, 3}).ValidIn(net); !errors.Is(err, ErrBrokenPath) {
		t.Errorf("broken path: %v", err)
	}
	if err := (Path{}).ValidIn(net); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("empty path: %v", err)
	}
	if err := (Path{1, 9}).ValidIn(net); !errors.Is(err, ErrBadProc) {
		t.Errorf("bad proc: %v", err)
	}
}

func TestPathSums(t *testing.T) {
	net := NewBuilder(3).Chan(1, 2, 2, 5).Chan(2, 3, 3, 7).MustBuild()
	p := Path{1, 2, 3}
	if l := net.MustLowerSum(p); l != 5 {
		t.Errorf("L(p) = %d, want 5", l)
	}
	if u := net.MustUpperSum(p); u != 12 {
		t.Errorf("U(p) = %d, want 12", u)
	}
	if l := net.MustLowerSum(SingletonPath(1)); l != 0 {
		t.Errorf("L(singleton) = %d, want 0", l)
	}
	if _, err := net.LowerSum(Path{3, 1}); err == nil {
		t.Error("sum over missing channel succeeded")
	}
}

// TestComposeSumAdditivity: L and U are additive under composition.
func TestComposeSumAdditivity(t *testing.T) {
	net := MustComplete(5, 2, 6)
	f := func(a, b, c uint8) bool {
		p := Path{ProcID(a%5 + 1), ProcID(b%5 + 1)}
		if p[0] == p[1] {
			return true
		}
		q := Path{p[1], ProcID(c%5 + 1)}
		if q[0] == q[1] {
			return true
		}
		pq, err := p.Compose(q)
		if err != nil {
			return false
		}
		return net.MustLowerSum(pq) == net.MustLowerSum(p)+net.MustLowerSum(q) &&
			net.MustUpperSum(pq) == net.MustUpperSum(p)+net.MustUpperSum(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHopsAppend: Append never mutates its receiver and extends hops.
func TestHopsAppend(t *testing.T) {
	p := Path{1, 2}
	q := p.Append(3)
	if p.Hops() != 1 || q.Hops() != 2 || !q.Equal(Path{1, 2, 3}) {
		t.Errorf("append: p=%v q=%v", p, q)
	}
}
