package live

import (
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

// TestLiveMatchesSimulator: the live engine's ground-truth recording is
// structurally identical to the lockstep simulator's for the same
// configuration and policy.
func TestLiveMatchesSimulator(t *testing.T) {
	sc := scenario.Figure2b(scenario.DefaultFigure2())
	// Policies are stateful (Random consumes its generator), so each engine
	// gets a fresh instance from a factory.
	factories := []func() sim.Policy{
		func() sim.Policy { return sim.Eager{} },
		func() sim.Policy { return sim.Lazy{} },
		func() sim.Policy { return sim.NewRandom(8) },
	}
	for _, mk := range factories {
		pol := mk()
		res, err := Run(Config{
			Net: sc.Net, Horizon: sc.Horizon, Policy: pol, Externals: sc.Externals,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := res.Run.Validate(); err != nil {
			t.Fatalf("%s: live run invalid: %v", pol.Name(), err)
		}
		want, err := sc.Simulate(mk())
		if err != nil {
			t.Fatal(err)
		}
		d1, d2 := res.Run.Deliveries(), want.Deliveries()
		if len(d1) != len(d2) {
			t.Fatalf("%s: deliveries %d vs %d", pol.Name(), len(d1), len(d2))
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("%s: delivery %d: %v vs %v", pol.Name(), i, d1[i], d2[i])
			}
		}
	}
}

// TestOnlineProtocol2MatchesOffline is the library's honesty theorem: the
// online agent — deciding inside its goroutine from its view alone, with no
// clock — acts at exactly the node and time the offline analysis of the
// recorded run says the optimal protocol acts.
func TestOnlineProtocol2MatchesOffline(t *testing.T) {
	scenarios := []*scenario.Scenario{
		scenario.Figure1(scenario.DefaultFigure1()),
		scenario.Figure2b(scenario.DefaultFigure2()),
		scenario.Figure4(scenario.DefaultFigure4()),
		scenario.Trains(3),
		scenario.Takeoff(4),
		scenario.Circuits(6),
	}
	for _, sc := range scenarios {
		for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(4)} {
			agent := &Protocol2{Task: *sc.Task}
			res, err := Run(Config{
				Net: sc.Net, Horizon: sc.Horizon, Policy: pol, Externals: sc.Externals,
				Agents: map[model.ProcID]Agent{sc.Task.B: agent},
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, pol.Name(), err)
			}
			if err := agent.Err(); err != nil {
				t.Fatalf("%s/%s: agent: %v", sc.Name, pol.Name(), err)
			}
			offline, err := sc.Task.RunOptimal(res.Run)
			if err != nil {
				t.Fatalf("%s/%s: offline: %v", sc.Name, pol.Name(), err)
			}
			var online *Action
			for i := range res.Actions {
				if res.Actions[i].Label == "b" {
					online = &res.Actions[i]
					break
				}
			}
			if offline.Acted != (online != nil) {
				t.Fatalf("%s/%s: offline acted=%v, online acted=%v",
					sc.Name, pol.Name(), offline.Acted, online != nil)
			}
			if online == nil {
				continue
			}
			if online.Node != offline.ActNode || online.Time != offline.ActTime {
				t.Errorf("%s/%s: online %s@%d vs offline %s@%d",
					sc.Name, pol.Name(), online.Node, online.Time, offline.ActNode, offline.ActTime)
			}
		}
	}
}

// TestOnlineNeverActsWhenInfeasible: the online agent stays silent when the
// bound is not knowable.
func TestOnlineNeverActsWhenInfeasible(t *testing.T) {
	p := scenario.DefaultFigure1()
	p.X = p.LCB - p.UCA + 1
	sc := scenario.Figure1(p)
	agent := &Protocol2{Task: *sc.Task}
	res, err := Run(Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: sim.Lazy{}, Externals: sc.Externals,
		Agents: map[model.ProcID]Agent{sc.Task.B: agent},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Actions {
		if a.Label == "b" {
			t.Fatalf("online agent acted at %s for an infeasible bound", a.Node)
		}
	}
}

// TestLiveViewsAreStructureOnly: views accumulated online agree exactly
// with views extracted from the recorded run at the same nodes.
func TestLiveViewsAreStructureOnly(t *testing.T) {
	sc := scenario.Figure2b(scenario.DefaultFigure2())
	type seen struct {
		node run.BasicNode
		size int
	}
	var got []seen
	probe := AgentFunc(func(v *run.View, _ []string) []string {
		got = append(got, seen{node: v.Origin(), size: v.Size()})
		return nil
	})
	res, err := Run(Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: sim.Eager{}, Externals: sc.Externals,
		Agents: map[model.ProcID]Agent{sc.Proc("B"): probe},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("probe never ran")
	}
	for _, s := range got {
		want, err := run.ViewOf(res.Run, s.node)
		if err != nil {
			t.Fatal(err)
		}
		if s.size != want.Size() {
			t.Errorf("node %s: online view size %d, offline %d", s.node, s.size, want.Size())
		}
	}
}

// TestLiveCustomAgentActions: multiple agents, multiple actions, recorded
// in deterministic order.
func TestLiveCustomAgentActions(t *testing.T) {
	net := model.MustComplete(3, 1, 2)
	echo := AgentFunc(func(v *run.View, ext []string) []string {
		if len(ext) > 0 {
			return []string{"heard:" + ext[0]}
		}
		return nil
	})
	res, err := Run(Config{
		Net: net, Horizon: 20, Policy: sim.Eager{},
		Externals: []run.ExternalEvent{{Proc: 1, Time: 1, Label: "ping"}},
		Agents:    map[model.ProcID]Agent{1: echo, 2: echo},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Actions {
		if a.Proc == 1 && a.Label == "heard:ping" && a.Time == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("external-triggered action missing: %v", res.Actions)
	}
}
