// Package bounds builds the paper's weighted constraint graphs over runs:
//
//   - the basic bounds graph GB(r) of Definition 8, whose longest paths are
//     the tightest provable timed-precedence bounds between basic nodes
//     (Lemma 1), and which underlies Theorem 2;
//   - the extended bounds graph GE(r, sigma) of Definition 16, which captures
//     exactly the timing information available to a node sigma from its
//     subjective view of the run, including per-process auxiliary "horizon"
//     vertices psi_i;
//   - the knowledge query graph: GE(r, sigma) augmented with chain vertices
//     for queried general nodes, whose simple paths are the constraint paths
//     of Definitions 17-22 and whose longest paths compute knowledge of
//     timed precedence (Theorem 4).
//
// Paths through these graphs are reported as []Step so that
// internal/pattern can translate them into (sigma-visible) zigzag patterns,
// following Lemmas 5 and 10-16 constructively.
package bounds

import (
	"fmt"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// StepKind classifies one edge of a constraint path.
type StepKind int

// The step kinds. Succ/Lower/Upper occur in GB(r); the Aux kinds only in
// extended graphs.
const (
	// StepSucc is a timeline-successor edge (weight 1): consecutive nodes
	// of one process are at least one time unit apart.
	StepSucc StepKind = iota + 1
	// StepLower follows a message (or FFIP chain hop) from its send node to
	// its delivery node; weight L of the channel.
	StepLower
	// StepUpper walks backwards from a delivery node to its sender; weight
	// -U of the channel.
	StepUpper
	// StepAuxEnter goes from a boundary node of the past to its process's
	// auxiliary horizon vertex (E' of Definition 16); weight 1.
	StepAuxEnter
	// StepAuxHop moves between auxiliary vertices psi_i -> psi_j along
	// channel (j, i) (E''' of Definition 16); weight -U_ji. It encodes the
	// beyond-horizon FFIP hop j -> i walked in reverse.
	StepAuxHop
	// StepAuxExit goes from an auxiliary vertex psi_i to a past node sigma_j
	// that sent a message to i which was not received inside the past
	// (E'' of Definition 16); weight -U_ji.
	StepAuxExit
	// StepAuxChain goes from psi_j to a beyond-horizon chain vertex on
	// process j (weight 0): every beyond-horizon delivery at j occurs no
	// earlier than psi_j.
	StepAuxChain
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepSucc:
		return "succ"
	case StepLower:
		return "lower"
	case StepUpper:
		return "upper"
	case StepAuxEnter:
		return "aux-enter"
	case StepAuxHop:
		return "aux-hop"
	case StepAuxExit:
		return "aux-exit"
	case StepAuxChain:
		return "aux-chain"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Point is a vertex of a constraint path: either a general node of the run
// (a basic node of the past appears as its singleton general node; chain
// vertices beyond the horizon appear with their defining chain) or an
// auxiliary horizon vertex psi_p.
type Point struct {
	Aux  bool
	Proc model.ProcID    // the process, for auxiliary points
	Node run.GeneralNode // the node, for non-auxiliary points
}

// AuxPoint returns the auxiliary point psi_p.
func AuxPoint(p model.ProcID) Point { return Point{Aux: true, Proc: p} }

// NodePoint returns the point for a general node.
func NodePoint(g run.GeneralNode) Point { return Point{Node: g} }

// ProcOf returns the process the point lives on.
func (pt Point) ProcOf() model.ProcID {
	if pt.Aux {
		return pt.Proc
	}
	return pt.Node.Proc()
}

// String implements fmt.Stringer.
func (pt Point) String() string {
	if pt.Aux {
		return fmt.Sprintf("psi_%d", pt.Proc)
	}
	return pt.Node.String()
}

// Step is one edge of a constraint path, carrying enough semantics for the
// zigzag translation of internal/pattern.
type Step struct {
	Kind   StepKind
	From   Point
	To     Point
	Weight int
}

// String implements fmt.Stringer.
func (s Step) String() string {
	return fmt.Sprintf("%s --%s(%+d)--> %s", s.From, s.Kind, s.Weight, s.To)
}

// PathWeight sums the weights of a step sequence.
func PathWeight(steps []Step) int {
	total := 0
	for _, s := range steps {
		total += s.Weight
	}
	return total
}
