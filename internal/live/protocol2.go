package live

import (
	"errors"
	"fmt"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// errDifferentView reports a Protocol2 agent driven with a view other than
// the one its incremental engine was built on.
var errDifferentView = errors.New("live: Protocol2 observed a different view than its engine was built on")

// Protocol2 is the knowledge-optimal coordination agent for B, running
// online inside B's process goroutine. At every new local state it looks
// for C's go node in its view, consults the extended bounds graph of the
// view (structure only — the agent cannot read any clock), and performs b
// the first time the required precedence is known. It is the live
// counterpart of (coord.Task).RunOptimal, and the two must agree exactly.
//
// By default the agent maintains the graph incrementally across states with
// a private bounds.Online engine, paying only for the view's growth per
// state. When a run hosts many knowledge-based agents, setting Shared (or
// Config.Shared, which Run hands to every subscribing agent) moves the
// standing graph into one per-run bounds.Shared engine and leaves the agent
// only a lightweight handle — its frontier, E” overlay and leased scratch.
// All three engines' answers coincide exactly with a fresh per-state build,
// so the agreement theorem is engine-independent.
type Protocol2 struct {
	Task coord.Task
	// ActLabel is the action recorded when b is performed ("b" if empty).
	ActLabel string
	// Rebuild forces a fresh NewExtendedFromView at every state instead of
	// the incremental engine — the rebuild-per-state baseline that
	// benchmarks and differential tests compare against.
	Rebuild bool
	// Shared subscribes the agent to a per-run shared knowledge engine
	// instead of a private bounds.Online; it takes precedence over Rebuild.
	Shared *bounds.Shared
	// XGrid, when non-empty, switches the agent into batched x-fanout mode:
	// at every state it computes the knowledge weight ONCE (the weight-only
	// plane, KnowsAt) and evaluates every threshold of the grid against it,
	// recording per threshold the first state at which the required
	// precedence became known (XDecisions). The agent emits no actions in
	// this mode — its recorded decision trajectory stands in for the acts of
	// one dedicated agent per grid entry, which is sound exactly when acting
	// cannot feed back into the delivery schedule (terminal acts; see
	// scenario.Scenario.ActFeedback). Knowledge gain is monotone, so the
	// recorded state for threshold x is precisely where a dedicated agent
	// with Task.X = x would have acted.
	XGrid []int

	acted    bool
	err      error
	degraded bool
	reason   error
	engine   *bounds.Online
	handle   *bounds.Handle

	// goFound memoizes the resolution of C's go node: the view's external
	// log is append-only, so once found neither sigmaC nor the derived chain
	// node at A can move, and re-running FindExternal per state is waste.
	goFound bool
	aNode   run.GeneralNode

	// Batched x-fanout working state: per-grid-entry decisions, the count of
	// still-undecided entries, and the reusable KnowsAt verdict buffer.
	xDecided []XDecision
	xLeft    int
	holds    []bool
}

// XDecision records, for one XGrid threshold, the first agent state at which
// the required precedence became known. Node identifies that state's origin
// on the agent's timeline; the agent is clockless, so harvesters derive the
// act TIME from the recording (run.Run.Time), never from the agent.
type XDecision struct {
	Decided bool
	Node    run.BasicNode
}

// XDecisions returns the agent's per-threshold decision trajectory, indexed
// like XGrid (nil before the first state of a batched run).
func (p *Protocol2) XDecisions() []XDecision { return p.xDecided }

// TaskLabel is the canonical act label of the i-th task of a multi-agent
// harness ("b1", "b2", ...). Sweep live cells, the CLI cross-check and the
// differential tests all record and look actions up by it, so the format
// lives in exactly one place.
func TaskLabel(i int) string { return fmt.Sprintf("b%d", i+1) }

// NewTaskAgents builds the canonical multi-agent wiring: one Protocol2
// agent per task, acting with TaskLabel(i), plus the process-keyed map
// Config.Agents wants. Tasks must target distinct B processes (as
// scenario.CoordinationTasks guarantees).
func NewTaskAgents(tasks []coord.Task) ([]*Protocol2, map[model.ProcID]Agent) {
	agents := make([]*Protocol2, len(tasks))
	byProc := make(map[model.ProcID]Agent, len(tasks))
	for i := range tasks {
		agents[i] = &Protocol2{Task: tasks[i], ActLabel: TaskLabel(i)}
		byProc[tasks[i].B] = agents[i]
	}
	return agents, byProc
}

// UseShared implements SharedUser: Run hands the Config-owned engine to the
// agent before the first state. An engine set directly on the struct wins.
func (p *Protocol2) UseShared(s *bounds.Shared) {
	if p.Shared == nil {
		p.Shared = s
	}
}

// Err reports the first internal error the agent encountered (knowledge
// queries are total on well-formed views, so this is nil in practice).
func (p *Protocol2) Err() error { return p.err }

// Degrade implements Degradable: the environment notifies the agent that
// its knowledge may rest on a violated communication bound (or that a
// promised delivery verifiably missed its deadline). From then on the agent
// withholds its action permanently — acting on corrupted knowledge could
// break the very precedence it exists to guarantee — and reports Degraded
// instead. The first reason sticks; degrading an agent that already acted
// only releases its engine resources (the act itself was sound: it happened
// strictly before the agent's taint frontier).
func (p *Protocol2) Degrade(reason error) {
	if !p.degraded {
		p.degraded = true
		p.reason = reason
	}
	if p.handle != nil {
		p.handle.Release()
	}
}

// Degraded reports whether the agent has withheld its action after a
// detected model violation.
func (p *Protocol2) Degraded() bool { return p.degraded }

// DegradeReason returns the typed error (wrapping faults.ErrBoundViolation)
// the agent was degraded with, or nil.
func (p *Protocol2) DegradeReason() error { return p.reason }

// HandleStats returns the agent's reverse-cache counters, whichever engine
// served it (zero for the rebuild baseline). The counters survive the
// handle's Release, so post-run harvesting — sweep cells, the CLI footer —
// works after the agent acted.
func (p *Protocol2) HandleStats() bounds.HandleStats {
	if p.handle != nil {
		return p.handle.Stats()
	}
	if p.engine != nil {
		return p.engine.Stats()
	}
	return bounds.HandleStats{}
}

// engineFor resolves the engine serving this state — shared handle,
// rebuild-per-state baseline, or the default private incremental engine.
// Exactly one of the returns is non-nil on success. Every execution mode
// (goroutine and replay alike) funnels through this one dispatch, so adding
// a mode never copies the engine selection.
func (p *Protocol2) engineFor(v *run.View) (*bounds.Handle, *bounds.Online, *bounds.Extended, error) {
	switch {
	case p.Shared != nil:
		if p.handle == nil {
			h, err := p.Shared.NewHandle(v)
			if err != nil {
				return nil, nil, nil, err
			}
			p.handle = h
		} else if p.handle.View() != v {
			return nil, nil, nil, errDifferentView
		}
		return p.handle, nil, nil, nil
	case p.Rebuild:
		ext, err := bounds.NewExtendedFromView(v)
		if err != nil {
			return nil, nil, nil, err
		}
		return nil, nil, ext, nil
	default:
		if p.engine == nil {
			p.engine = bounds.NewOnline(v)
		} else if p.engine.View() != v {
			// The incremental engine is bound to the view it was built on; a
			// harness that hands one agent two different views would
			// otherwise get silently stale answers.
			return nil, nil, nil, errDifferentView
		}
		return nil, p.engine, nil, nil
	}
}

// knows answers the agent's single-threshold knowledge query.
func (p *Protocol2) knows(v *run.View, theta1, theta2 run.GeneralNode) (bool, error) {
	h, o, ext, err := p.engineFor(v)
	if err != nil {
		return false, err
	}
	switch {
	case h != nil:
		return h.Knows(theta1, p.Task.X, theta2)
	case ext != nil:
		return ext.Knows(theta1, p.Task.X, theta2)
	default:
		return o.Knows(theta1, p.Task.X, theta2)
	}
}

// knowsAt answers the whole XGrid against one weight computation, filling
// p.holds.
func (p *Protocol2) knowsAt(v *run.View, theta1, theta2 run.GeneralNode) error {
	h, o, ext, err := p.engineFor(v)
	if err != nil {
		return err
	}
	switch {
	case h != nil:
		_, _, err = h.KnowsAt(theta1, p.XGrid, theta2, p.holds)
	case ext != nil:
		_, _, err = ext.KnowsAt(theta1, p.XGrid, theta2, p.holds)
	default:
		_, _, err = o.KnowsAt(theta1, p.XGrid, theta2, p.holds)
	}
	return err
}

// noteQueryErr absorbs a knowledge-query error: an ErrPositiveCycle means
// the engine refuted a communication bound from the view's own structure —
// some promised delivery verifiably failed to arrive in its window. That is
// the agent DETECTING a model violation, not an internal failure — degrade
// exactly as if the environment had flagged it. (The injector's taint
// frontier normally flags the agent first; this is the belt-and-braces path
// for violation shapes the agent can refute by inference alone.) Any other
// error is internal and sticks in p.err.
func (p *Protocol2) noteQueryErr(err error) {
	if errors.Is(err, graph.ErrPositiveCycle) {
		p.Degrade(fmt.Errorf("%w: agent's knowledge graph refutes a channel bound: %v",
			faults.ErrBoundViolation, err))
		return
	}
	p.err = err
}

// OnState implements Agent.
func (p *Protocol2) OnState(v *run.View, _ []string) []string {
	done := p.acted
	if len(p.XGrid) > 0 {
		done = p.xDecided != nil && p.xLeft == 0
	}
	if done || p.err != nil || p.degraded {
		return nil
	}
	if !p.goFound {
		label := p.Task.GoLabel
		if label == "" {
			label = "go"
		}
		sigmaC, ok := v.FindExternal(p.Task.C, label)
		if !ok {
			return nil // C's send is not yet in B's past
		}
		// The external log is append-only: once found, the go node and the
		// chain node it induces at A are fixed for the rest of the run.
		p.goFound = true
		p.aNode = run.At(sigmaC).Hop(p.Task.A)
	}
	sigma := run.At(v.Origin())
	var theta1, theta2 run.GeneralNode
	if p.Task.Kind == coord.Late {
		theta1, theta2 = p.aNode, sigma
	} else {
		theta1, theta2 = sigma, p.aNode
	}
	if len(p.XGrid) > 0 {
		return p.onStateGrid(v, theta1, theta2)
	}
	knows, err := p.knows(v, theta1, theta2)
	if err != nil {
		p.noteQueryErr(err)
		return nil
	}
	if !knows {
		return nil
	}
	p.acted = true
	if p.handle != nil {
		// The agent never queries again: return the leased scratch to the
		// engine pool for later subscribers.
		p.handle.Release()
	}
	if p.ActLabel == "" {
		return []string{"b"}
	}
	return []string{p.ActLabel}
}

// onStateGrid is the batched x-fanout state step: one weight computation,
// every grid threshold compared against it, newly satisfied thresholds
// stamped with this state. The agent acts for no threshold — the decision
// trajectory IS the deliverable — and keeps querying until the whole grid is
// decided (or the run ends with part of it open).
func (p *Protocol2) onStateGrid(v *run.View, theta1, theta2 run.GeneralNode) []string {
	if p.xDecided == nil {
		p.xDecided = make([]XDecision, len(p.XGrid))
		p.holds = make([]bool, len(p.XGrid))
		p.xLeft = len(p.XGrid)
	}
	if err := p.knowsAt(v, theta1, theta2); err != nil {
		p.noteQueryErr(err)
		return nil
	}
	node := v.Origin()
	for i := range p.XGrid {
		if !p.xDecided[i].Decided && p.holds[i] {
			p.xDecided[i] = XDecision{Decided: true, Node: node}
			p.xLeft--
		}
	}
	if p.xLeft == 0 && p.handle != nil {
		p.handle.Release()
	}
	return nil
}
