package scenario

import (
	"testing"

	"github.com/clockless/zigzag/internal/sim"
)

func TestWithChannel(t *testing.T) {
	sc := Figure2b(DefaultFigure2())
	mod, err := sc.WithChannel("A", "B", 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !mod.Net.HasChan(sc.Proc("A"), sc.Proc("B")) {
		t.Fatal("added channel missing")
	}
	if mod.Net.NumChannels() != sc.Net.NumChannels()+1 {
		t.Errorf("channels %d, want %d", mod.Net.NumChannels(), sc.Net.NumChannels()+1)
	}
	// The original is untouched.
	if sc.Net.HasChan(sc.Proc("A"), sc.Proc("B")) {
		t.Error("original scenario mutated")
	}
	// Duplicates and unknown roles are rejected.
	if _, err := mod.WithChannel("A", "B", 1, 6); err == nil {
		t.Error("duplicate channel accepted")
	}
	if _, err := sc.WithChannel("NOPE", "B", 1, 6); err == nil {
		t.Error("unknown role accepted")
	}
	// The modified scenario still simulates and solves its task.
	r, err := mod.Simulate(sim.Lazy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.Task.RunOptimal(r); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicsOnUnknownRole(t *testing.T) {
	sc := Figure1(DefaultFigure1())
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown role")
		}
	}()
	sc.Proc("NOPE")
}

func TestSimulateDefaultPolicy(t *testing.T) {
	sc := Figure1(DefaultFigure1())
	r, err := sc.Simulate(nil) // nil selects the scenario default (Eager)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r2 := sc.MustSimulate(nil)
	if r2.NumNodes() != r.NumNodes() {
		t.Error("MustSimulate differs from Simulate")
	}
}

func TestAllScenariosSimulateAndValidate(t *testing.T) {
	all := []*Scenario{
		Figure1(DefaultFigure1()),
		Figure2a(DefaultFigure2()),
		Figure2b(DefaultFigure2()),
		Figure3(DefaultFigure3()),
		Figure4(DefaultFigure4()),
		Figure6(2, 5),
		Trains(3),
		Takeoff(4),
		Circuits(6),
	}
	for _, sc := range all {
		for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(1)} {
			r, err := sc.Simulate(pol)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, pol.Name(), err)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, pol.Name(), err)
			}
		}
	}
}
