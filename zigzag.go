package zigzag

import (
	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/timing"
)

// Core model types.
type (
	// ProcID identifies a process (1..n).
	ProcID = model.ProcID
	// Time is a point on the global timeline (processes cannot read it).
	Time = model.Time
	// Bounds is a channel's [L, U] transmission-time window.
	Bounds = model.Bounds
	// Channel is a directed channel between two processes.
	Channel = model.Channel
	// Network is an immutable time-bounded communication network.
	Network = model.Network
	// NetworkBuilder accumulates channels and produces a Network.
	NetworkBuilder = model.Builder
	// Path is a sequence of processes describing a walk in the network.
	Path = model.Path
)

// Run types.
type (
	// BasicNode is a (process, local state) pair.
	BasicNode = run.BasicNode
	// GeneralNode is <sigma, p>: the node at the end of the FFIP chain
	// leaving sigma along path p.
	GeneralNode = run.GeneralNode
	// Run is a recorded execution.
	Run = run.Run
	// RunBuilder assembles runs from raw timed events.
	RunBuilder = run.Builder
	// Delivery is one recorded message delivery.
	Delivery = run.Delivery
	// External is one spontaneous environment input.
	External = run.External
	// ExternalEvent schedules an external input for the simulator.
	ExternalEvent = run.ExternalEvent
	// PastSet is past(r, sigma), the causal past of a node.
	PastSet = run.PastSet
)

// Simulation types.
type (
	// Policy chooses message latencies within channel bounds.
	Policy = sim.Policy
	// SimConfig parametrizes one simulation.
	SimConfig = sim.Config
	// Send identifies one FFIP message for policies.
	Send = sim.Send
	// EagerPolicy delivers at lower bounds.
	EagerPolicy = sim.Eager
	// LazyPolicy delivers at upper bounds (the deadline).
	LazyPolicy = sim.Lazy
	// RandomPolicy draws latencies uniformly with a seed.
	RandomPolicy = sim.Random
	// PolicyFunc adapts a function to a Policy.
	PolicyFunc = sim.Func
)

// Analysis types.
type (
	// BasicGraph is the basic bounds graph GB(r) (Definition 8).
	BasicGraph = bounds.Basic
	// ExtendedGraph is the extended bounds graph GE(r, sigma)
	// (Definition 16), the seat of knowledge computation.
	ExtendedGraph = bounds.Extended
	// Step is one edge of a constraint path.
	Step = bounds.Step
	// Fork is a two-legged fork (Definition 5).
	Fork = pattern.Fork
	// Zigzag is a zigzag pattern (Definition 6).
	Zigzag = pattern.Zigzag
	// VisibleZigzag is a sigma-visible zigzag pattern (Definition 7).
	VisibleZigzag = pattern.Visible
	// SlowRun is the Lemma 8 tightness construction for Theorem 2.
	SlowRun = timing.Slow
	// FastRun is the Definition 24 tightness construction for Theorem 4.
	FastRun = timing.Fast
)

// Coordination types.
type (
	// Task is a timed coordination task (Definition 1).
	Task = coord.Task
	// TaskKind selects Late or Early.
	TaskKind = coord.Kind
	// Outcome reports a protocol's behaviour on one run.
	Outcome = coord.Outcome
	// Wiring locates a task's fixed nodes in a run.
	Wiring = coord.Wiring
)

// Task kinds.
const (
	// Late is Late<a --x--> b>: b at least x time units after a.
	Late = coord.Late
	// Early is Early<b --x--> a>: b at least x time units before a.
	Early = coord.Early
)

// NewNetwork returns a builder for a network over processes 1..n.
func NewNetwork(n int) *NetworkBuilder { return model.NewBuilder(n) }

// At returns the general node denoting sigma itself.
func At(sigma BasicNode) GeneralNode { return run.At(sigma) }

// Via returns the general node <sigma, p>.
func Via(sigma BasicNode, p Path) GeneralNode { return run.Via(sigma, p) }

// Simulate executes the FFIP over the configured network and returns the
// recorded run. See sim.Simulate.
func Simulate(cfg SimConfig) (*Run, error) { return sim.Simulate(cfg) }

// NewRandomPolicy returns a seeded uniform-latency policy.
func NewRandomPolicy(seed int64) *RandomPolicy { return sim.NewRandom(seed) }

// NewBasicGraph constructs GB(r).
func NewBasicGraph(r *Run) *BasicGraph { return bounds.NewBasic(r) }

// NewExtendedGraph constructs GE(r, sigma) over sigma's causal past.
func NewExtendedGraph(r *Run, sigma BasicNode) (*ExtendedGraph, error) {
	return bounds.NewExtended(r, sigma)
}

// SupportedBound returns the tightest x such that the run's communication
// pattern guarantees sigma1 --x--> sigma2 in every run with the same
// structure, together with the witnessing zigzag (Lemma 5 / Theorem 2).
// found is false when no bound is supported at all.
func SupportedBound(g *BasicGraph, sigma1, sigma2 BasicNode) (x int, z *Zigzag, found bool, err error) {
	z, x, found, err = pattern.ExtractBasic(g, sigma1, sigma2)
	return x, z, found, err
}

// KnowledgeWeight returns the strongest bound x for which
// K_sigma(theta1 --x--> theta2) holds, with the sigma-visible zigzag
// witnessing it (Theorem 4). known is false when nothing is known.
func KnowledgeWeight(g *ExtendedGraph, theta1, theta2 GeneralNode) (x int, w *VisibleZigzag, known bool, err error) {
	w, x, known, err = pattern.KnowledgeWitness(g, theta1, theta2)
	return x, w, known, err
}

// Knows reports whether K_sigma(theta1 --x--> theta2) holds at the graph's
// origin node.
func Knows(g *ExtendedGraph, theta1 GeneralNode, x int, theta2 GeneralNode) (bool, error) {
	return g.Knows(theta1, x, theta2)
}

// BuildSlowRun synthesizes the Lemma 8 slow run targeted at sigma2,
// certifying tightness of GB longest paths (Theorem 2).
func BuildSlowRun(g *BasicGraph, sigma2 BasicNode, extra Time) (*SlowRun, error) {
	return timing.BuildSlow(g, sigma2, extra)
}

// BuildFastRun synthesizes the Definition 24 fast run of theta1 with respect
// to sigma, certifying tightness of knowledge weights (Theorem 4).
func BuildFastRun(r *Run, sigma BasicNode, theta1 GeneralNode, gamma int, horizon Time) (*FastRun, error) {
	return timing.BuildFast(r, sigma, theta1, gamma, horizon)
}

// SameView reports whether two runs are indistinguishable at sigma
// (r1 ~sigma r2); a nil error means they are.
func SameView(r1, r2 *Run, sigma BasicNode) error { return run.SameView(r1, r2, sigma) }

// GoAt returns a one-input external schedule (the mu_go trigger of the
// coordination tasks).
func GoAt(proc ProcID, t Time, label string) []ExternalEvent { return sim.GoAt(proc, t, label) }
