package sweep_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/sweep"
)

// chaosGrid is the chaos sweep of the tests: every coord-faulty scenario
// (both sizes, all four plan families) crossed with the eager policy and a
// couple of seeds, run live-only.
func chaosGrid(mode string, workers int) sweep.Grid {
	return sweep.Grid{
		Live:     scenario.FaultyFamily(),
		LiveMode: mode,
		Policies: []sweep.PolicySpec{
			{Name: "eager", New: func(int64) sim.Policy { return sim.Eager{} }, Deterministic: true},
		},
		Seeds:   []int64{1, 2},
		Workers: workers,
	}
}

// TestChaosSweep pins the chaos sweep's acceptance bar: across the whole
// coord-faulty family not one cell errors or panics (injected violations
// are data, not errors), the plans actually fire, and degradation reaches
// agents somewhere in the grid.
func TestChaosSweep(t *testing.T) {
	results, err := chaosGrid(sweep.ModeReplay, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	violations, degraded, crashed := 0, 0, 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s/%s seed %d: cell error: %v", r.Scenario, r.Policy, r.Seed, r.Err)
		}
		if r.Mode != sweep.ModeReplay {
			t.Fatalf("%s: faulted cell ran in mode %q", r.Scenario, r.Mode)
		}
		violations += r.Violations
		degraded += r.Degraded
		crashed += r.Crashed
	}
	if violations == 0 || degraded == 0 || crashed == 0 {
		t.Fatalf("chaos sweep toothless: %d violations, %d degraded, %d crashed",
			violations, degraded, crashed)
	}

	aggs := sweep.Summarize(results)
	table := sweep.Table(aggs)
	if !strings.Contains(table, "degr") {
		t.Fatalf("sweep table lost the degradation column:\n%s", table)
	}
	var sb strings.Builder
	if err := sweep.Write(&sb, "csv", aggs); err != nil {
		t.Fatal(err)
	}
	head := sb.String()[:strings.Index(sb.String(), "\n")]
	for _, col := range []string{"degraded", "crashed", "violations", "err"} {
		if !strings.Contains(head, col) {
			t.Fatalf("CSV header lost %q column: %s", col, head)
		}
	}
}

// TestChaosSweepDeterministic pins scheduling-independence: the same chaos
// grid run serially, with parallel workers, and through the goroutine live
// mode yields identical per-cell results (modulo the Mode tag).
func TestChaosSweepDeterministic(t *testing.T) {
	serial, err := chaosGrid(sweep.ModeReplay, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := chaosGrid(sweep.ModeReplay, 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	goroutine, err := chaosGrid(sweep.ModeLive, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != len(goroutine) {
		t.Fatalf("result counts differ: %d serial, %d parallel, %d goroutine",
			len(serial), len(parallel), len(goroutine))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("cell %d differs across worker counts:\n serial   %+v\n parallel %+v",
				i, serial[i], parallel[i])
		}
		g := goroutine[i]
		if g.Mode != sweep.ModeLive {
			t.Fatalf("cell %d: goroutine sweep ran in mode %q", i, g.Mode)
		}
		g.Mode = serial[i].Mode
		// Replay counts batches and chunks the goroutine mode doesn't have.
		g.ReplayBatches, g.ReplayChunks = serial[i].ReplayBatches, serial[i].ReplayChunks
		if !reflect.DeepEqual(serial[i], g) {
			t.Fatalf("cell %d differs across live modes:\n replay    %+v\n goroutine %+v",
				i, serial[i], g)
		}
	}
}
