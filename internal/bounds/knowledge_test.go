package bounds

import (
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// TestSection51WorkedExample reproduces the inference the paper uses to
// motivate the extended graph (Section 5.1): sigma_i and sigma_j are both in
// past(r, sigma); a message sent at sigma_i to process j is NOT received at
// any node of the past. Then the receipt must land after sigma_j (strictly),
// and it lands within U_ij of sigma_i, so
//
//	K_sigma( sigma_j --(1 - U_ij)--> sigma_i ).
//
// This precedence corresponds to no path in GB(r, sigma) — only the
// auxiliary vertex psi_j supplies it.
func TestSection51WorkedExample(t *testing.T) {
	// Network: 1 -> 2 (the i -> j channel under test, U = 4), 1 -> 3 and
	// 2 -> 3 so that a collector process sees both timelines.
	const (
		i   = model.ProcID(1)
		j   = model.ProcID(2)
		sig = model.ProcID(3)
	)
	net := model.NewBuilder(3).
		Chan(i, j, 2, 4).
		Chan(i, sig, 1, 2).
		Chan(j, sig, 1, 2).
		MustBuild()
	// Trigger i at t=1 and j independently at t=2. The collector hears
	// both quickly; i's message to j (sent at 1, delivered by 5) is NOT yet
	// in the collector's past at its second node.
	r, err := sim.Simulate(sim.Config{
		Net:     net,
		Horizon: 40,
		Policy: sim.Func{ID: "s51", F: func(s sim.Send, b model.Bounds) int {
			if s.From == i && s.To == j {
				return b.Upper // delay the i->j message to the horizon edge
			}
			return b.Lower
		}},
		Externals: []run.ExternalEvent{
			{Proc: i, Time: 1, Label: "tick-i"},
			{Proc: j, Time: 2, Label: "tick-j"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sigmaI := run.BasicNode{Proc: i, Index: 1} // t=1
	sigmaJ := run.BasicNode{Proc: j, Index: 1} // t=2 (external only)
	// The collector's node that has heard both sigma_i and sigma_j but not
	// the i->j delivery (which happens at t=5 at j's second node).
	sigma := run.BasicNode{Proc: sig, Index: 2}
	if !r.Appears(sigma) {
		t.Fatal("collector never reached its second state")
	}
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Past().Contains(run.BasicNode{Proc: j, Index: 2}) {
		t.Fatal("fixture broken: the i->j delivery leaked into the past")
	}
	// The paper's conclusion: sigma_j --(1 - U_ij)--> sigma_i is known.
	kw, steps, known, err := ext.KnowledgeWeight(run.At(sigmaJ), run.At(sigmaI))
	if err != nil {
		t.Fatal(err)
	}
	if !known {
		t.Fatal("the Section 5.1 inference is not available")
	}
	if want := 1 - 4; kw != want {
		t.Errorf("kw = %d, want 1 - U_ij = %d", kw, want)
	}
	// The constraint path must pass through the auxiliary vertex psi_j.
	viaAux := false
	for _, s := range steps {
		if s.Kind == StepAuxEnter || s.Kind == StepAuxExit {
			viaAux = true
		}
	}
	if !viaAux {
		t.Errorf("inference did not use the auxiliary vertices: %v", steps)
	}
	// And GB(r, sigma) alone must NOT support it (that is the point).
	_, localKnown, err := ext.LocalWeight(sigmaJ, sigmaI)
	if err != nil {
		t.Fatal(err)
	}
	if localKnown {
		t.Error("local bounds graph claims the Section 5.1 bound without auxiliary vertices")
	}
}

// TestKnowledgeMonotoneAlongTimeline: knowledge can only grow as a process
// observes more. For fixed theta1, theta2 recognized at consecutive nodes of
// the same process, kw at the later node is >= kw at the earlier one (more
// information excludes more runs, so the supported minimum gap rises).
func TestKnowledgeMonotoneAlongTimeline(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed * 29))
		if err != nil {
			t.Fatal(err)
		}
		window := in.WindowNodes(r)
		if len(window) < 2 {
			continue
		}
		last := window[len(window)-1]
		proc := last.Proc
		// Candidates: nodes recognized already at the process's FIRST
		// non-initial state, so they are queryable at every later state.
		first := run.BasicNode{Proc: proc, Index: 1}
		firstPast, err := r.Past(first)
		if err != nil {
			t.Fatal(err)
		}
		var cands []run.BasicNode
		for _, n := range window {
			if firstPast.Contains(n) && !n.IsInitial() {
				cands = append(cands, n)
			}
		}
		if len(cands) < 2 {
			continue
		}
		theta1, theta2 := run.At(cands[0]), run.At(cands[len(cands)-1])
		prevKW, prevKnown := 0, false
		for k := 1; k <= last.Index; k++ {
			sigma := run.BasicNode{Proc: proc, Index: k}
			ext, err := NewExtended(r, sigma)
			if err != nil {
				t.Fatal(err)
			}
			kw, _, known, err := ext.KnowledgeWeight(theta1, theta2)
			if err != nil {
				t.Fatal(err)
			}
			if prevKnown {
				if !known {
					t.Fatalf("seed %d: knowledge lost at %s", seed, sigma)
				}
				if kw < prevKW {
					t.Fatalf("seed %d: kw dropped %d -> %d at %s", seed, prevKW, kw, sigma)
				}
			}
			prevKW, prevKnown = kw, known
		}
	}
}

// TestKnowledgeSoundnessSweep: kw never exceeds the realized gap in any run
// indistinguishable at sigma — approximated by re-simulating the same
// instance under many policies and checking every run in which sigma's view
// is unchanged.
func TestKnowledgeSoundnessSweep(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(5))
	r, err := in.Simulate(sim.NewRandom(41))
	if err != nil {
		t.Fatal(err)
	}
	window := in.WindowNodes(r)
	sigma := window[len(window)-1]
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	ps := ext.Past()
	var cands []run.BasicNode
	for _, n := range window {
		if ps.Contains(n) && !n.IsInitial() {
			cands = append(cands, n)
		}
	}
	if len(cands) > 4 {
		cands = cands[len(cands)-4:]
	}
	type claim struct {
		t1, t2 run.BasicNode
		kw     int
	}
	var claims []claim
	for _, s1 := range cands {
		for _, s2 := range cands {
			kw, _, known, err := ext.KnowledgeWeight(run.At(s1), run.At(s2))
			if err != nil {
				t.Fatal(err)
			}
			if known {
				claims = append(claims, claim{t1: s1, t2: s2, kw: kw})
			}
		}
	}
	if len(claims) == 0 {
		t.Skip("no known pairs in this instance")
	}
	checked := 0
	for s := int64(0); s < 30; s++ {
		r2, err := in.Simulate(sim.NewRandom(s))
		if err != nil {
			t.Fatal(err)
		}
		if !r2.Appears(sigma) {
			continue
		}
		if run.SameView(r, r2, sigma) != nil {
			continue // distinguishable: the claims need not apply
		}
		for _, c := range claims {
			g1, err1 := r2.Time(c.t1)
			g2, err2 := r2.Time(c.t2)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if g2-g1 < c.kw {
				t.Fatalf("policy seed %d: claim %s --%d--> %s violated (gap %d)",
					s, c.t1, c.kw, c.t2, g2-g1)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Log("no indistinguishable policy variations found (claims vacuously sound)")
	}
}
