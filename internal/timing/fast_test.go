package timing

import (
	"errors"
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// pickSigma returns a node with a rich past: the last window node whose
// past contains nodes of at least half the processes.
func pickSigma(t *testing.T, r *run.Run, window []run.BasicNode) run.BasicNode {
	t.Helper()
	for i := len(window) - 1; i >= 0; i-- {
		ps, err := r.Past(window[i])
		if err != nil {
			t.Fatal(err)
		}
		procs := 0
		for _, p := range r.Net().Procs() {
			if b, ok := ps.Boundary(p); ok && !b.IsInitial() {
				procs++
			}
		}
		if procs*2 >= r.Net().N() {
			return window[i]
		}
	}
	return window[len(window)-1]
}

// TestFastRunTightness is the executable content of Theorem 4's necessity
// direction: for sigma-recognized theta1, theta2, the knowledge weight
// computed on the extended bounds graph is realized with equality by the
// 0-fast run — a legal run indistinguishable from r at sigma. Hence no
// stronger bound is known, and the witness zigzag extracted from the
// constraint path is the heaviest sigma-visible one.
func TestFastRunTightness(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed * 17))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		window := in.WindowNodes(r)
		if len(window) == 0 {
			continue
		}
		sigma := pickSigma(t, r, window)
		ps, err := r.Past(sigma)
		if err != nil {
			t.Fatal(err)
		}
		// Candidate theta1/theta2: non-initial past nodes in the window.
		var candidates []run.BasicNode
		for _, n := range window {
			if ps.Contains(n) && !n.IsInitial() {
				candidates = append(candidates, n)
			}
		}
		if len(candidates) < 2 {
			continue
		}
		if len(candidates) > 5 {
			candidates = candidates[len(candidates)-5:]
		}
		pairs, equalities := 0, 0
		for _, s1 := range candidates {
			theta1 := run.At(s1)
			var fast *Fast
			for _, s2 := range candidates {
				theta2 := run.At(s2)
				ext, err := bounds.NewExtended(r, sigma)
				if err != nil {
					t.Fatal(err)
				}
				witness, kw, known, err := pattern.KnowledgeWitness(ext, theta1, theta2)
				if err != nil {
					t.Fatalf("seed %d: kw(%s,%s): %v", seed, theta1, theta2, err)
				}
				if !known {
					continue
				}
				pairs++
				// Soundness: the bound holds in the recorded run itself.
				gapHere := r.MustTime(s2) - r.MustTime(s1)
				if gapHere < kw {
					t.Errorf("seed %d: kw(%s,%s)=%d but realized gap in r is %d",
						seed, theta1, theta2, kw, gapHere)
				}
				// The witness verifies as a sigma-visible zigzag.
				if err := witness.VerifyVisible(r); err != nil &&
					!errors.Is(err, pattern.ErrUnresolvable) {
					t.Errorf("seed %d: witness(%s,%s): %v", seed, theta1, theta2, err)
				}
				// Tightness: the fast run achieves the bound with equality.
				if fast == nil {
					fast, err = BuildFast(r, sigma, theta1, 0, 0)
					if err != nil {
						t.Fatalf("seed %d: BuildFast(%s): %v", seed, theta1, err)
					}
					if err := run.SameView(r, fast.Run, sigma); err != nil {
						t.Fatalf("seed %d: fast run view: %v", seed, err)
					}
				}
				gap, err := fast.Gap(theta2)
				if err != nil {
					t.Fatalf("seed %d: fast gap(%s): %v", seed, theta2, err)
				}
				if gap != kw {
					t.Errorf("seed %d: sigma=%s theta1=%s theta2=%s: kw=%d fast gap=%d",
						seed, sigma, theta1, theta2, kw, gap)
				} else {
					equalities++
				}
			}
		}
		if pairs == 0 {
			t.Logf("seed %d: no known pairs (sparse instance)", seed)
		}
	}
}

// TestFastRunGeneralNodes repeats the tightness check with genuine general
// nodes: theta1 and theta2 carry one- and two-hop chains off past nodes.
func TestFastRunGeneralNodes(t *testing.T) {
	for seed := int64(2); seed <= 8; seed += 3 {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		window := in.WindowNodes(r)
		if len(window) == 0 {
			continue
		}
		sigma := pickSigma(t, r, window)
		ps, err := r.Past(sigma)
		if err != nil {
			t.Fatal(err)
		}
		net := r.Net()
		// Build general nodes: for past nodes, extend by one or two hops.
		var generals []run.GeneralNode
		for _, n := range window {
			if !ps.Contains(n) || n.IsInitial() {
				continue
			}
			generals = append(generals, run.At(n))
			for _, q := range net.Out(n.Proc) {
				g := run.At(n).Hop(q)
				generals = append(generals, g)
				if outs := net.Out(q); len(outs) > 0 {
					generals = append(generals, g.Hop(outs[0]))
				}
				break
			}
		}
		if len(generals) > 8 {
			generals = generals[len(generals)-8:]
		}
		for _, theta1 := range generals {
			var fast *Fast
			for _, theta2 := range generals {
				ext, err := bounds.NewExtended(r, sigma)
				if err != nil {
					t.Fatal(err)
				}
				kw, _, known, err := ext.KnowledgeWeight(theta1, theta2)
				if err != nil {
					t.Fatalf("seed %d: kw(%s,%s): %v", seed, theta1, theta2, err)
				}
				if !known {
					continue
				}
				if fast == nil {
					fast, err = BuildFast(r, sigma, theta1, 0, 0)
					if err != nil {
						t.Fatalf("seed %d: BuildFast(%s): %v", seed, theta1, err)
					}
				}
				gap, err := fast.Gap(theta2)
				if err != nil {
					continue // theta2's chain may outrun even the padded horizon
				}
				if gap != kw {
					t.Errorf("seed %d: sigma=%s theta1=%s theta2=%s: kw=%d fast gap=%d",
						seed, sigma, theta1, theta2, kw, gap)
				}
			}
		}
	}
}

// TestFastRunSeparation checks Definition 23's gamma: nodes with no
// constraint path from theta1 are pushed at least gamma+1 time units before
// theta1's base — so for any x, a large enough gamma exhibits an
// indistinguishable run violating theta1 --x--> theta2, proving no bound is
// known (the "no path, no knowledge" half of Theorem 4).
func TestFastRunSeparation(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(3))
	r, err := in.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	window := in.WindowNodes(r)
	sigma := pickSigma(t, r, window)
	ps, err := r.Past(sigma)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := bounds.NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	var theta1 run.GeneralNode
	var unreachable []run.BasicNode
	found := false
	for _, s1 := range window {
		if !ps.Contains(s1) || s1.IsInitial() {
			continue
		}
		for _, s2 := range window {
			if !ps.Contains(s2) || s2.IsInitial() || s1 == s2 {
				continue
			}
			_, _, known, err := ext.KnowledgeWeight(run.At(s1), run.At(s2))
			if err != nil {
				t.Fatal(err)
			}
			if !known {
				theta1 = run.At(s1)
				unreachable = append(unreachable, s2)
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("instance has constraint paths between all past pairs")
	}
	const gamma = 50
	fast, err := BuildFast(r, sigma, theta1, gamma, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s2 := range unreachable {
		gap, err := fast.Gap(run.At(s2))
		if err != nil {
			t.Fatal(err)
		}
		if gap > -gamma {
			t.Errorf("unreachable %s: gap %d, want <= -gamma = %d", s2, gap, -gamma)
		}
	}
}

// TestFastRunRejectsInitialTheta: Theorem 4 requires time(theta1) > 0; the
// construction must refuse initial nodes.
func TestFastRunRejectsInitialTheta(t *testing.T) {
	net := model.MustComplete(3, 1, 2)
	r, err := sim.Simulate(sim.Config{
		Net: net, Horizon: 30, Policy: sim.Eager{},
		Externals: sim.GoAt(1, 1, "go"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sigma := run.BasicNode{Proc: 2, Index: 1}
	if !r.Appears(sigma) {
		t.Fatal("flood never reached process 2")
	}
	_, err = BuildFast(r, sigma, run.At(run.BasicNode{Proc: 2, Index: 0}), 0, 0)
	if !errors.Is(err, ErrInitialTheta) {
		t.Errorf("got %v, want ErrInitialTheta", err)
	}
}

// TestFastRunGammaPreservesKnownGaps: for pairs with a constraint path, the
// realized gap is gamma-independent (the base offset shifts every reachable
// node uniformly), so tightness holds at any separation parameter.
func TestFastRunGammaPreservesKnownGaps(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(7))
	r, err := in.Simulate(sim.NewRandom(70))
	if err != nil {
		t.Fatal(err)
	}
	window := in.WindowNodes(r)
	sigma := pickSigma(t, r, window)
	ps, err := r.Past(sigma)
	if err != nil {
		t.Fatal(err)
	}
	var theta1 run.GeneralNode
	found := false
	for _, n := range window {
		if ps.Contains(n) && !n.IsInitial() {
			theta1 = run.At(n)
			found = true
			break
		}
	}
	if !found {
		t.Skip("no usable theta1")
	}
	ext, err := bounds.NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	kw, _, known, err := ext.KnowledgeWeight(theta1, run.At(sigma))
	if err != nil || !known {
		t.Skip("sigma not reachable from theta1")
	}
	for _, gamma := range []int{0, 3, 25} {
		fast, err := BuildFast(r, sigma, theta1, gamma, 0)
		if err != nil {
			t.Fatalf("gamma=%d: %v", gamma, err)
		}
		gap, err := fast.Gap(run.At(sigma))
		if err != nil {
			t.Fatal(err)
		}
		if gap != kw {
			t.Errorf("gamma=%d: gap %d != kw %d", gamma, gap, kw)
		}
	}
}
