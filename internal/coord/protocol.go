package coord

import (
	"fmt"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
)

// Outcome reports how a protocol for B fared on one run.
type Outcome struct {
	// Acted reports whether B performed b within the horizon.
	Acted bool
	// ActNode is B's local state when it acted.
	ActNode run.BasicNode
	// ActTime is when it acted.
	ActTime model.Time
	// ATime is when a was performed.
	ATime model.Time
	// Gap is ActTime - ATime: >= X certifies Late, <= -X certifies Early.
	Gap int
	// KnownBound is the knowledge weight at the action node (optimal
	// protocol only): the strongest bound B knew when acting.
	KnownBound int
	// Witness is the sigma-visible zigzag justifying the action (optimal
	// protocol only).
	Witness *pattern.Visible
	// NodesExamined counts B's local states inspected before acting.
	NodesExamined int
}

// RunOptimal executes Protocol 2 for B offline over a recorded run: it
// scans B's local states in order and acts at the first state sigma that
// recognizes sigma_C and knows the required precedence — computed, per
// Theorem 4, as a knowledge-weight query on GE(r, sigma). The returned
// outcome carries the witnessing sigma-visible zigzag.
//
// The scan is exactly what an online B would do: everything consulted is
// inside past(r, sigma).
func (t Task) RunOptimal(r *run.Run) (*Outcome, error) {
	w, err := t.Wire(r)
	if err != nil {
		return nil, err
	}
	out := &Outcome{ATime: w.ATime}
	for k := 1; k <= r.LastIndex(t.B); k++ {
		sigma := run.BasicNode{Proc: t.B, Index: k}
		out.NodesExamined++
		ext, err := bounds.NewExtended(r, sigma)
		if err != nil {
			return nil, err
		}
		if !ext.Past().Contains(w.SigmaC) {
			continue // B has not heard (transitively) from sigma_C yet
		}
		var theta1, theta2 run.GeneralNode
		if t.Kind == Late {
			theta1, theta2 = w.ANode, run.At(sigma)
		} else {
			theta1, theta2 = run.At(sigma), w.ANode
		}
		witness, kw, known, err := pattern.KnowledgeWitness(ext, theta1, theta2)
		if err != nil {
			return nil, err
		}
		if !known || kw < t.X {
			continue
		}
		actTime, err := r.Time(sigma)
		if err != nil {
			return nil, err
		}
		out.Acted = true
		out.ActNode = sigma
		out.ActTime = actTime
		out.Gap = actTime - w.ATime
		out.KnownBound = kw
		out.Witness = witness
		return out, t.checkSpec(out)
	}
	return out, nil
}

// RunBaseline executes the asynchronous-reasoning baseline for B: it uses
// only happened-before information (message chains and their lower bounds),
// never upper bounds — the best any protocol can do in Lamport's
// asynchronous model, transplanted to bcm.
//
// For Late, B acts at the first state sigma such that a's node is in
// past(r, sigma) and the heaviest forward chain a -> sigma has total lower
// bound >= X. For Early, the baseline never acts (without upper bounds
// nothing guarantees that a future event is at least x away).
func (t Task) RunBaseline(r *run.Run) (*Outcome, error) {
	w, err := t.Wire(r)
	if err != nil {
		return nil, err
	}
	out := &Outcome{ATime: w.ATime}
	if t.Kind == Early {
		return out, nil
	}
	for k := 1; k <= r.LastIndex(t.B); k++ {
		sigma := run.BasicNode{Proc: t.B, Index: k}
		out.NodesExamined++
		ps, err := r.Past(sigma)
		if err != nil {
			return nil, err
		}
		if !ps.Contains(w.ABasic) {
			continue
		}
		bound, err := causalLowerBound(r, ps, w.ABasic, sigma)
		if err != nil {
			return nil, err
		}
		if bound < t.X {
			continue
		}
		actTime, err := r.Time(sigma)
		if err != nil {
			return nil, err
		}
		out.Acted = true
		out.ActNode = sigma
		out.ActTime = actTime
		out.Gap = actTime - w.ATime
		out.KnownBound = bound
		return out, t.checkSpec(out)
	}
	return out, nil
}

// checkSpec audits an action against the specification: the realized gap in
// the actual run must satisfy the bound (soundness re-check against ground
// truth the protocols never saw).
func (t Task) checkSpec(out *Outcome) error {
	if !out.Acted {
		return nil
	}
	switch t.Kind {
	case Late:
		if out.Gap < t.X {
			return fmt.Errorf("%w: Late gap %d < x=%d", ErrSpecViolated, out.Gap, t.X)
		}
	case Early:
		if -out.Gap < t.X {
			return fmt.Errorf("%w: Early lead %d < x=%d", ErrSpecViolated, -out.Gap, t.X)
		}
	}
	return nil
}

// causalLowerBound computes the heaviest happened-before chain from src to
// dst using only forward edges (successor steps of weight 1 and message
// deliveries at their lower bound), restricted to past(r, dst). This is all
// the timing an asynchronous reasoner can certify.
func causalLowerBound(r *run.Run, ps *run.PastSet, src, dst run.BasicNode) (int, error) {
	// Map past nodes to dense vertices.
	nodes := ps.Nodes()
	index := make(map[run.BasicNode]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}
	g := graphForward(r, nodes, index)
	u, okU := index[src]
	v, okV := index[dst]
	if !okU || !okV {
		return 0, fmt.Errorf("coord: causal bound endpoints outside past")
	}
	dist, err := g.Longest(u)
	if err != nil {
		return 0, err
	}
	if dist[v] == negInf {
		return 0, fmt.Errorf("coord: %s not causally before %s despite past membership", src, dst)
	}
	return int(dist[v]), nil
}
