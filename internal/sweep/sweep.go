// Package sweep runs scenario × policy × seed grids of FFIP simulations
// concurrently and aggregates their outcomes. It is the batch engine behind
// `zigzag-sim -sweep`: a worker pool sized to GOMAXPROCS executes every cell
// of the grid, while results and aggregates are reported in the grid's
// deterministic enumeration order (scenario-major, then policy, then seed)
// regardless of the number of workers.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/live"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/stats"
)

// ErrEmptyGrid reports a grid with no cells to run.
var ErrEmptyGrid = errors.New("sweep: empty grid")

// Cell execution modes: offline simulation plus paper analysis, or the
// goroutine-per-process live environment with one Protocol2 agent per task
// subscribing to a per-network knowledge engine.
const (
	ModeSim  = "sim"
	ModeLive = "live"
)

// PolicySpec names a delivery-policy family and constructs a fresh instance
// per cell. Stateful policies (sim.Random) must not be shared across cells,
// so the grid carries factories rather than policy values.
type PolicySpec struct {
	Name string
	New  func(seed int64) sim.Policy
}

// DefaultPolicies returns the canonical policy families: the two latency
// extremes and the seeded uniform-random environment.
func DefaultPolicies() []PolicySpec {
	return []PolicySpec{
		{Name: "eager", New: func(int64) sim.Policy { return sim.Eager{} }},
		{Name: "lazy", New: func(int64) sim.Policy { return sim.Lazy{} }},
		{Name: "random", New: func(seed int64) sim.Policy { return sim.NewRandom(seed) }},
	}
}

// Grid is a scenario × policy × seed sweep specification, with an optional
// live dimension: scenarios listed in Live run through the live environment
// (one Protocol2 agent per coordination task) instead of the offline
// simulate-and-analyze path.
type Grid struct {
	Scenarios []*scenario.Scenario
	// Live lists scenarios additionally executed as live cells: the
	// goroutine-per-process environment drives one live.Protocol2 agent per
	// task, all subscribing (through per-run bounds.Shared handles) to ONE
	// bounds.NetworkEngine per distinct network — built once by Run and
	// reused across every policy and seed of that network, which is the
	// cross-run amortization the engine tier exists for. Live cells
	// enumerate after the sim cells, scenario-major, then policy, then
	// seed, and report under Mode "live".
	Live     []*scenario.Scenario
	Policies []PolicySpec
	Seeds    []int64
	// Workers bounds concurrent cells; <= 0 means GOMAXPROCS.
	Workers int
}

// Size returns the number of cells in the grid.
func (g Grid) Size() int {
	return (len(g.Scenarios) + len(g.Live)) * len(g.Policies) * len(g.Seeds)
}

// Result records the outcome of one grid cell. A cell that fails to
// simulate (or whose protocol run fails) carries the error in Err with the
// remaining metric fields zero.
type Result struct {
	Scenario string
	Policy   string
	Seed     int64
	// Mode is ModeSim or ModeLive (empty results from older callers mean
	// sim).
	Mode string
	Err  error

	// Run shape.
	Nodes      int
	Deliveries int
	Pending    int

	// Coordination outcome, when the scenario poses a task (sim cells).
	HasTask    bool
	Acted      bool
	ActTime    int
	Gap        int
	KnownBound int

	// Live-cell outcome: how many Protocol2 agents ran and how many acted
	// within the horizon; ActTime carries the earliest act when any did.
	Agents      int
	AgentsActed int
}

// Run executes every cell of the grid across a worker pool and returns the
// results in enumeration order: scenario-major, then policy, then seed. The
// output is deterministic in the grid (worker count and scheduling do not
// affect it); per-cell failures are recorded in Result.Err rather than
// aborting the sweep.
func (g Grid) Run() ([]Result, error) {
	if g.Size() == 0 {
		return nil, ErrEmptyGrid
	}
	for _, sc := range g.Scenarios {
		if sc == nil {
			return nil, fmt.Errorf("sweep: nil scenario in grid")
		}
	}
	for _, sc := range g.Live {
		if sc == nil {
			return nil, fmt.Errorf("sweep: nil live scenario in grid")
		}
	}
	// ONE knowledge engine per distinct network serves every live cell of
	// that topology: the aux band, presizing hints and scratch pool are
	// derived once here and amortized across all policies and seeds
	// (engines are safe for concurrent runs, so workers share them freely).
	engines := make(map[*model.Network]*bounds.NetworkEngine)
	for _, sc := range g.Live {
		if engines[sc.Net] == nil {
			engines[sc.Net] = bounds.NewNetworkEngine(sc.Net)
		}
	}
	workers := g.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.Size() {
		workers = g.Size()
	}

	results := make([]Result, g.Size())
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = g.cell(i, engines)
			}
		}()
	}
	for i := range results {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, nil
}

// cell runs the i-th cell of the enumeration: sim cells first, then live
// cells, each block scenario-major, then policy, then seed.
func (g Grid) cell(i int, engines map[*model.Network]*bounds.NetworkEngine) Result {
	nSeeds, nPols := len(g.Seeds), len(g.Policies)
	scIdx := i / (nPols * nSeeds)
	spec := g.Policies[(i/nSeeds)%nPols]
	seed := g.Seeds[i%nSeeds]
	if scIdx >= len(g.Scenarios) {
		sc := g.Live[scIdx-len(g.Scenarios)]
		return liveCell(sc, spec, seed, engines[sc.Net])
	}
	sc := g.Scenarios[scIdx]

	res := Result{Scenario: sc.Name, Policy: spec.Name, Seed: seed, Mode: ModeSim}
	r, err := sc.Simulate(spec.New(seed))
	if err != nil {
		res.Err = err
		return res
	}
	res.Nodes = r.NumNodes()
	res.Deliveries = len(r.Deliveries())
	res.Pending = len(r.PendingMessages())
	if sc.Task == nil {
		return res
	}
	res.HasTask = true
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		res.Err = err
		return res
	}
	res.Acted = out.Acted
	if out.Acted {
		res.ActTime = int(out.ActTime)
		res.Gap = out.Gap
		res.KnownBound = out.KnownBound
	}
	return res
}

// liveCell executes one live-mode cell: the scenario's tasks become
// live.Protocol2 agents (one per task, acting with labels b1, b2, ...), the
// run subscribes to the network's shared engine, and the cell reports the
// recorded run's shape plus how many agents acted. Scenarios without tasks
// still execute (pure FFIP relay runs) and report shape only.
func liveCell(sc *scenario.Scenario, spec PolicySpec, seed int64, eng *bounds.NetworkEngine) Result {
	res := Result{Scenario: sc.Name, Policy: spec.Name, Seed: seed, Mode: ModeLive}
	tasks := sc.TaskList()
	agents, agentMap := live.NewTaskAgents(tasks)
	out, err := live.Run(live.Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: spec.New(seed),
		Externals: sc.Externals, Agents: agentMap, Engine: eng,
	})
	if err != nil {
		res.Err = err
		return res
	}
	for i := range agents {
		if aerr := agents[i].Err(); aerr != nil {
			res.Err = fmt.Errorf("agent %s: %w", live.TaskLabel(i), aerr)
			return res
		}
	}
	res.Nodes = out.Run.NumNodes()
	res.Deliveries = len(out.Run.Deliveries())
	res.Pending = len(out.Run.PendingMessages())
	res.Agents = len(tasks)
	res.AgentsActed = len(out.Actions) // each Protocol2 acts at most once
	if len(out.Actions) > 0 {
		// Actions are recorded in (time, process) order.
		res.ActTime = int(out.Actions[0].Time)
	}
	return res
}

// Aggregate summarizes all cells of one (scenario, policy, mode) triple.
type Aggregate struct {
	Scenario string
	Policy   string
	// Mode is ModeSim or ModeLive (empty from pre-mode results means sim).
	Mode   string
	Runs   int
	Errors int

	Nodes      stats.Summary
	Deliveries stats.Summary

	// Coordination tallies over the sim cells that pose a task.
	TaskRuns int
	Acted    int
	Gap      stats.Summary // over acted cells

	// Live tallies: agents hosted and agents acted, summed over cells.
	AgentRuns   int
	AgentsActed int
}

// Summarize groups results by (scenario, policy, mode) in first-appearance
// order — for Grid.Run output, the grid's enumeration order — and computes
// the per-group aggregates.
func Summarize(results []Result) []Aggregate {
	type key struct{ sc, pol, mode string }
	idx := make(map[key]int)
	var aggs []Aggregate
	samples := make(map[key]*struct{ nodes, deliveries, gaps []float64 })
	for _, res := range results {
		k := key{res.Scenario, res.Policy, res.Mode}
		i, ok := idx[k]
		if !ok {
			i = len(aggs)
			idx[k] = i
			aggs = append(aggs, Aggregate{Scenario: res.Scenario, Policy: res.Policy, Mode: res.Mode})
			samples[k] = &struct{ nodes, deliveries, gaps []float64 }{}
		}
		a, s := &aggs[i], samples[k]
		a.Runs++
		if res.Err != nil {
			a.Errors++
			continue
		}
		s.nodes = append(s.nodes, float64(res.Nodes))
		s.deliveries = append(s.deliveries, float64(res.Deliveries))
		if res.HasTask {
			a.TaskRuns++
			if res.Acted {
				a.Acted++
				s.gaps = append(s.gaps, float64(res.Gap))
			}
		}
		a.AgentRuns += res.Agents
		a.AgentsActed += res.AgentsActed
	}
	for i := range aggs {
		s := samples[key{aggs[i].Scenario, aggs[i].Policy, aggs[i].Mode}]
		aggs[i].Nodes = stats.Summarize(s.nodes)
		aggs[i].Deliveries = stats.Summarize(s.deliveries)
		aggs[i].Gap = stats.Summarize(s.gaps)
	}
	return aggs
}

// Table renders aggregates as an aligned text table, one row per
// (scenario, policy, mode) triple, in the given order. The acted column
// reads acted/posed: task cells over task runs for sim rows, agents acted
// over agents hosted for live rows.
func Table(aggs []Aggregate) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tmode\tpolicy\truns\terrs\tnodes\tdeliveries\tacted\tgap(mean)\tgap[min,max]")
	for _, a := range aggs {
		acted := "-"
		gapMean := "-"
		gapRange := "-"
		if a.TaskRuns > 0 {
			acted = fmt.Sprintf("%d/%d", a.Acted, a.TaskRuns)
			if a.Acted > 0 {
				gapMean = fmt.Sprintf("%+.2f", a.Gap.Mean)
				gapRange = fmt.Sprintf("[%+.0f,%+.0f]", a.Gap.Min, a.Gap.Max)
			}
		}
		if a.AgentRuns > 0 {
			acted = fmt.Sprintf("%d/%d", a.AgentsActed, a.AgentRuns)
		}
		mode := a.Mode
		if mode == "" {
			mode = ModeSim
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.1f\t%.1f\t%s\t%s\t%s\n",
			a.Scenario, mode, a.Policy, a.Runs, a.Errors, a.Nodes.Mean, a.Deliveries.Mean,
			acted, gapMean, gapRange)
	}
	tw.Flush()
	return b.String()
}
