package pattern

import (
	"errors"
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

func forkNet(t *testing.T) *model.Network {
	t.Helper()
	return model.NewBuilder(3).Chan(1, 2, 1, 3).Chan(1, 3, 8, 12).MustBuild()
}

func forkRun(t *testing.T) *run.Run {
	t.Helper()
	r, err := sim.Simulate(sim.Config{
		Net: forkNet(t), Horizon: 40, Policy: sim.Lazy{}, Externals: sim.GoAt(1, 1, "go"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestForkWeightAndAccessors(t *testing.T) {
	net := forkNet(t)
	base := run.At(run.BasicNode{Proc: 1, Index: 1})
	f := Fork{Base: base, HeadPath: model.Path{1, 3}, TailPath: model.Path{1, 2}}
	w, err := f.Weight(net)
	if err != nil {
		t.Fatal(err)
	}
	if w != 8-3 {
		t.Errorf("wt = %d, want 5", w)
	}
	head, err := f.Head()
	if err != nil || head.Proc() != 3 {
		t.Errorf("head = %v, %v", head, err)
	}
	tail, err := f.Tail()
	if err != nil || tail.Proc() != 2 {
		t.Errorf("tail = %v, %v", tail, err)
	}
	if err := f.Check(net); err != nil {
		t.Errorf("check: %v", err)
	}
}

func TestForkCheckErrors(t *testing.T) {
	net := forkNet(t)
	base := run.At(run.BasicNode{Proc: 1, Index: 1})
	// Leg not starting at the base process.
	bad := Fork{Base: base, HeadPath: model.Path{2, 1}, TailPath: model.Path{1}}
	if err := bad.Check(net); !errors.Is(err, ErrMalformedFork) {
		t.Errorf("got %v, want ErrMalformedFork", err)
	}
	// Leg over a missing channel.
	bad2 := Fork{Base: base, HeadPath: model.Path{1, 2, 3}, TailPath: model.Path{1}}
	if err := bad2.Check(net); !errors.Is(err, ErrMalformedFork) {
		t.Errorf("got %v, want ErrMalformedFork", err)
	}
	if _, err := bad2.Weight(net); err == nil {
		t.Error("weight over missing channel succeeded")
	}
}

func TestTrivialFork(t *testing.T) {
	theta := run.At(run.BasicNode{Proc: 2, Index: 1})
	f := TrivialFork(theta)
	w, err := f.Weight(forkNet(t))
	if err != nil || w != 0 {
		t.Errorf("trivial weight = %d, %v", w, err)
	}
	h, _ := f.Head()
	tl, _ := f.Tail()
	if !h.Equal(theta) || !tl.Equal(theta) {
		t.Error("trivial fork legs wrong")
	}
}

func TestZigzagWeightWithJoins(t *testing.T) {
	net := forkNet(t)
	base := run.At(run.BasicNode{Proc: 1, Index: 1})
	f1 := Fork{Base: base, HeadPath: model.Path{1, 3}, TailPath: model.Path{1, 2}} // +5
	f2 := TrivialFork(run.At(run.BasicNode{Proc: 3, Index: 1}))                    // 0
	z := &Zigzag{Forks: []Fork{f1, f2}, NonJoined: []bool{true}}
	w, err := z.Weight(net)
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 {
		t.Errorf("weight = %d, want 5 + 1 (non-joined)", w)
	}
	z.NonJoined[0] = false
	if w, _ := z.Weight(net); w != 5 {
		t.Errorf("joined weight = %d, want 5", w)
	}
}

func TestZigzagWeightErrors(t *testing.T) {
	net := forkNet(t)
	empty := &Zigzag{}
	if _, err := empty.Weight(net); !errors.Is(err, ErrNotAZigzag) {
		t.Errorf("empty: %v", err)
	}
	mismatched := &Zigzag{
		Forks:     []Fork{TrivialFork(run.At(run.BasicNode{Proc: 1, Index: 1}))},
		NonJoined: []bool{true},
	}
	if _, err := mismatched.Weight(net); !errors.Is(err, ErrNotAZigzag) {
		t.Errorf("mismatched flags: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	r := forkRun(t)
	gb := bounds.NewBasic(r)
	a := run.BasicNode{Proc: 2, Index: 1}
	b := run.BasicNode{Proc: 3, Index: 1}
	z, _, found, err := ExtractBasic(gb, a, b)
	if err != nil || !found {
		t.Fatalf("extract: %v", err)
	}
	if err := z.Verify(r); err != nil {
		t.Fatalf("genuine pattern rejected: %v", err)
	}
	// Tamper: claim an extra non-joined unit that the run does not contain.
	if len(z.NonJoined) > 0 {
		orig := z.NonJoined[0]
		z.NonJoined[0] = !orig
		if err := z.Verify(r); err == nil {
			t.Error("flipped join flag accepted")
		}
		z.NonJoined[0] = orig
	}
	// Tamper: extend the head leg beyond what the run supports, inflating
	// the claimed weight without a corresponding message chain... the chain
	// exists under FFIP, so instead make the pattern end elsewhere and
	// check endpoint verification catches it.
	if err := z.VerifyEndpoints(r, run.At(a), run.At(b)); err != nil {
		t.Errorf("endpoints: %v", err)
	}
	if err := z.VerifyEndpoints(r, run.At(b), run.At(a)); err == nil {
		t.Error("swapped endpoints accepted")
	}
}

func TestVerifyPrecedenceViolation(t *testing.T) {
	r := forkRun(t)
	net := r.Net()
	// A fabricated fork claiming B's receipt precedes A's by 20: the legs
	// are structurally fine but the weight claim fails in the run.
	base := run.At(run.BasicNode{Proc: 1, Index: 1})
	f := Fork{Base: base, HeadPath: model.Path{1, 2}, TailPath: model.Path{1, 3}}
	w, err := f.Weight(net)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1-12 {
		t.Fatalf("fabricated weight = %d", w)
	}
	z := &Zigzag{Forks: []Fork{f}}
	// L_CA - U_CB = -11: tail(B at 13) + (-11) = 2 <= head(A at 4): holds.
	if err := z.Verify(r); err != nil {
		t.Errorf("legitimate negative-weight fork rejected: %v", err)
	}
	// Now fabricate a positive bound B -> A that cannot hold.
	f2 := Fork{Base: base, HeadPath: model.Path{1, 2, 2}[:2], TailPath: model.Path{1, 3}}
	// Head leg L = 1; claim wt = +5 by lying about the tail: shrink tail to
	// singleton so wt = L(head) - 0 = 1 and tail resolves to C... the
	// cleanest fabrication: tail = base (C#1 at t=1), head = A#1 at t=4,
	// wt = 1 — holds. Make it fail by using head leg to B instead:
	f3 := Fork{Base: base, HeadPath: model.Path{1, 2}, TailPath: model.Path{1}}
	z3 := &Zigzag{Forks: []Fork{f2, f3}, NonJoined: []bool{true}}
	// f2 head = A-node, f3 tail = C-node: different processes — malformed.
	if err := z3.Verify(r); err == nil {
		t.Error("cross-process junction accepted")
	}
}

func TestFromStepsRejectsMalformedPaths(t *testing.T) {
	net := forkNet(t)
	theta := run.At(run.BasicNode{Proc: 1, Index: 1})
	// An aux hop outside a segment.
	bad := []bounds.Step{{
		Kind: bounds.StepAuxHop, From: bounds.AuxPoint(1), To: bounds.AuxPoint(2), Weight: -3,
	}}
	if _, err := FromSteps(net, theta, bad); err == nil {
		t.Error("aux hop outside segment accepted")
	}
	// A path ending inside an aux segment.
	bad2 := []bounds.Step{{
		Kind: bounds.StepAuxEnter, From: bounds.NodePoint(theta), To: bounds.AuxPoint(1), Weight: 1,
	}}
	if _, err := FromSteps(net, theta, bad2); err == nil {
		t.Error("path ending in aux segment accepted")
	}
}

func TestFromStepsEmptyPath(t *testing.T) {
	net := forkNet(t)
	theta := run.At(run.BasicNode{Proc: 1, Index: 1})
	z, err := FromSteps(net, theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 1 {
		t.Errorf("forks = %d, want 1 trivial", z.Len())
	}
	w, err := z.Weight(net)
	if err != nil || w != 0 {
		t.Errorf("weight = %d, %v", w, err)
	}
}

func TestVisibleVerify(t *testing.T) {
	r := forkRun(t)
	sigma := run.BasicNode{Proc: 3, Index: 1}
	ext, err := bounds.NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	aNode := run.Via(run.BasicNode{Proc: 1, Index: 1}, model.Path{1, 2})
	v, kw, known, err := KnowledgeWitness(ext, aNode, run.At(sigma))
	if err != nil || !known {
		t.Fatalf("known=%v err=%v", known, err)
	}
	if kw != 5 {
		t.Errorf("kw = %d, want 5", kw)
	}
	if err := v.VerifyVisible(r); err != nil {
		t.Errorf("visible verify: %v", err)
	}
	// A visible zigzag claimed at a node that never saw the base must fail:
	// B's initial node has an empty past.
	v.Sigma = run.BasicNode{Proc: 3, Index: 0}
	if err := v.VerifyVisible(r); err == nil {
		t.Error("visibility at a blind node accepted")
	}
}

func TestZigzagString(t *testing.T) {
	theta := run.At(run.BasicNode{Proc: 1, Index: 1})
	z := &Zigzag{Forks: []Fork{TrivialFork(theta), TrivialFork(theta)}, NonJoined: []bool{true}}
	s := z.String()
	if s == "" {
		t.Error("empty render")
	}
}

// TestAuxSegmentExtraction drives FromSteps through a genuine auxiliary
// segment: an adversary delays a delivery so that sigma's knowledge rests
// on the horizon inference (E' + E” edges), and the extracted witness must
// contain a fork whose tail leg retraces the beyond-horizon chain.
func TestAuxSegmentExtraction(t *testing.T) {
	const (
		i   = model.ProcID(1)
		j   = model.ProcID(2)
		sig = model.ProcID(3)
	)
	net := model.NewBuilder(3).
		Chan(i, j, 2, 4).
		Chan(i, sig, 1, 2).
		Chan(j, sig, 1, 2).
		MustBuild()
	r, err := sim.Simulate(sim.Config{
		Net:     net,
		Horizon: 40,
		Policy: sim.Func{ID: "delay-ij", F: func(s sim.Send, b model.Bounds) int {
			if s.From == i && s.To == j {
				return b.Upper
			}
			return b.Lower
		}},
		Externals: []run.ExternalEvent{
			{Proc: i, Time: 1, Label: "tick-i"},
			{Proc: j, Time: 2, Label: "tick-j"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sigma := run.BasicNode{Proc: sig, Index: 2}
	ext, err := bounds.NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	sigmaI := run.BasicNode{Proc: i, Index: 1}
	sigmaJ := run.BasicNode{Proc: j, Index: 1}
	witness, kw, known, err := KnowledgeWitness(ext, run.At(sigmaJ), run.At(sigmaI))
	if err != nil || !known {
		t.Fatalf("known=%v err=%v", known, err)
	}
	if kw != 1-4 {
		t.Errorf("kw = %d, want -3", kw)
	}
	// The witness must contain a fork with a non-trivial tail leg (the
	// beyond-horizon chain i -> j retraced from the sender).
	hasChainTail := false
	for _, f := range witness.Forks {
		if f.TailPath.Hops() >= 1 && f.HeadPath.IsSingleton() {
			hasChainTail = true
		}
	}
	if !hasChainTail {
		t.Errorf("no aux-derived fork in witness:\n%s", witness.Zigzag.String())
	}
	if err := witness.VerifyVisible(r); err != nil {
		t.Errorf("witness: %v", err)
	}
}
