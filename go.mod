module github.com/clockless/zigzag

go 1.21
