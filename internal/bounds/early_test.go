package bounds

import (
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// earlyTargets picks the fixed query targets an Early-kind agent keeps
// asking about: node vertices of OTHER processes (an Early agent watches
// KW(sigma, aNode) for a's node on C/A, never its own origin), so the
// reverse per-target cache is the natural servant of every query.
func earlyTargets(v *run.View) []run.GeneralNode {
	net := v.Net()
	var out []run.GeneralNode
	for p := model.ProcID(1); int(p) <= net.N() && len(out) < 2; p++ {
		if p == v.Origin().Proc {
			continue
		}
		if bnd, ok := v.Boundary(p); ok && !bnd.IsInitial() {
			out = append(out, run.At(bnd))
		}
	}
	return out
}

// TestOnlineEarlyMatchesFreshBuild is the reverse cache's differential
// acceptance test on the private engine: on every state of random
// scenarios, Early-pattern queries — moving source sigma (and its
// chain-crossing neighbours), fixed targets — through the incrementally
// maintained reverse distances are identical to a fresh
// NewExtendedFromView of the same view. Interleaved forward queries pin
// that the two caches coexist without cross-talk, and the stats assert
// the reverse path actually served (this test would be vacuous if the
// selection policy quietly routed everything forward).
func TestOnlineEarlyMatchesFreshBuild(t *testing.T) {
	var served HandleStats
	for seed := int64(1); seed <= 6; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Procs = 4 + int(seed%3)
		in := workload.MustGenerate(cfg)
		r, err := in.Simulate(sim.NewRandom(seed * 13))
		if err != nil {
			t.Fatal(err)
		}
		procs := in.Net.Procs()
		p := procs[int(seed)%len(procs)]
		if r.LastIndex(p) == 0 {
			continue
		}
		var eng *Online
		replayViews(t, r, p, func(k int, v *run.View) {
			if eng == nil {
				eng = NewOnline(v)
			}
			fresh, err := NewExtendedFromView(v)
			if err != nil {
				t.Fatal(err)
			}
			targets := earlyTargets(v)
			sources := queryNodes(v)
			for _, t2 := range targets {
				for _, t1 := range sources {
					wantKW, _, wantKnown, wantErr := fresh.KnowledgeWeight(t1, t2)
					gotKW, gotKnown, gotErr := eng.KnowledgeWeight(t1, t2)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("seed %d p%d#%d %s->%s: err fresh=%v online=%v",
							seed, p, k, t1, t2, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if wantKnown != gotKnown || (wantKnown && wantKW != gotKW) {
						t.Fatalf("seed %d p%d#%d %s->%s: fresh (%d,%v) online (%d,%v)",
							seed, p, k, t1, t2, wantKW, wantKnown, gotKW, gotKnown)
					}
				}
				// A forward-path query (chain-vertex target, so the selector
				// cannot route it through the reverse cache) between reverse
				// queries must neither be corrupted by nor corrupt that cache.
				sigma := run.At(v.Origin())
				for _, chain := range sources {
					if chain.IsBasic() {
						continue
					}
					wantKW, _, wantKnown, wantErr := fresh.KnowledgeWeight(sigma, chain)
					gotKW, gotKnown, gotErr := eng.KnowledgeWeight(sigma, chain)
					if (wantErr == nil) != (gotErr == nil) ||
						(wantErr == nil && (wantKnown != gotKnown || (wantKnown && wantKW != gotKW))) {
						t.Fatalf("seed %d p%d#%d forward %s->%s: fresh (%d,%v,%v) online (%d,%v,%v)",
							seed, p, k, sigma, chain, wantKW, wantKnown, wantErr, gotKW, gotKnown, gotErr)
					}
					break
				}
			}
		})
		if eng != nil {
			served.Add(eng.Stats())
		}
	}
	if served.RevHits == 0 || served.RevRebuilds == 0 {
		t.Fatalf("reverse cache never exercised: %+v", served)
	}
}

// TestSharedEarlyMatchesFreshBuild is the same differential through the
// shared engine's restricted handles: several agents interleaved on ONE
// standing graph, each repeatedly asking Early-pattern questions about a
// fixed target, must answer byte-identically to fresh builds at every
// state — pinning the reverse relaxation over frontier masks, per-handle
// E″ transposes, reverse virtual boundary edges and the aux-band refresh
// after E″ retirement.
func TestSharedEarlyMatchesFreshBuild(t *testing.T) {
	var served HandleStats
	for seed := int64(1); seed <= 4; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Procs = 4 + int(seed%3)
		in := workload.MustGenerate(cfg)
		r, err := in.Simulate(sim.NewRandom(seed * 13))
		if err != nil {
			t.Fatal(err)
		}
		procs := in.Net.Procs()
		observers := map[model.ProcID]bool{
			procs[int(seed)%len(procs)]:     true,
			procs[(int(seed)+1)%len(procs)]: true,
			procs[(int(seed)+3)%len(procs)]: true,
		}
		eng := NewShared(in.Net)
		handles := make(map[model.ProcID]*Handle)
		replayAll(t, r, observers, func(p model.ProcID, k int, v *run.View) {
			h, ok := handles[p]
			if !ok {
				h = mustHandle(t, eng, v)
				handles[p] = h
			}
			fresh, err := NewExtendedFromView(v)
			if err != nil {
				t.Fatal(err)
			}
			for _, t2 := range earlyTargets(v) {
				for _, t1 := range queryNodes(v) {
					wantKW, _, wantKnown, wantErr := fresh.KnowledgeWeight(t1, t2)
					gotKW, gotKnown, gotErr := h.KnowledgeWeight(t1, t2)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("seed %d p%d#%d %s->%s: err fresh=%v shared=%v",
							seed, p, k, t1, t2, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if wantKnown != gotKnown || (wantKnown && wantKW != gotKW) {
						t.Fatalf("seed %d p%d#%d %s->%s: fresh (%d,%v) shared (%d,%v)",
							seed, p, k, t1, t2, wantKW, wantKnown, gotKW, gotKnown)
					}
				}
			}
		})
		for _, h := range handles {
			served.Add(h.Stats())
		}
	}
	if served.RevHits == 0 || served.RevRebuilds == 0 {
		t.Fatalf("reverse cache never exercised: %+v", served)
	}
}

// TestSharedEarlyAllocationGuard is the Early-kind twin of
// TestSharedAllocationGuard: once a handle's reverse cache is warm for a
// fixed target, a repeated Early-pattern query (moving source, same
// target) must allocate at most the same small constant — the reverse
// restriction is assembled on the stack and relaxation runs in the
// leased reverse scratch.
func TestSharedEarlyAllocationGuard(t *testing.T) {
	net := model.MustComplete(4, 1, 5)
	r := sim.MustSimulate(sim.Config{
		Net: net, Horizon: 40, Policy: sim.Lazy{}, Externals: sim.GoAt(1, 1, "go"),
	})
	eng := NewShared(net)
	var h *Handle
	var view *run.View
	observers := map[model.ProcID]bool{2: true}
	replayAll(t, r, observers, func(p model.ProcID, k int, v *run.View) {
		if h == nil {
			h = mustHandle(t, eng, v)
			view = v
		}
	})
	if h == nil {
		t.Fatal("observer never moves")
	}
	// Early shape: moving source = the observer's own origin, fixed target
	// = another process's node (the aNode stand-in).
	target, ok := view.Boundary(1)
	if !ok || target.IsInitial() {
		t.Fatal("no boundary node on proc 1")
	}
	theta2 := run.At(target)
	// An Early agent's source MOVES between queries of the same target — a
	// source matching the forward cache would be served forward. Warm up
	// with two older sources (the first establishes the forward cache, the
	// second misses it and builds the reverse cache for theta2), then
	// measure with a third: every measured query is a reverse warm hit.
	first := run.At(run.BasicNode{Proc: 2, Index: 1})
	second := run.At(run.BasicNode{Proc: 2, Index: 2})
	sigma := run.At(view.Origin())
	if _, known, err := h.KnowledgeWeight(first, theta2); err != nil || !known {
		t.Fatalf("forward warmup: known=%v err=%v", known, err)
	}
	if _, known, err := h.KnowledgeWeight(second, theta2); err != nil || !known {
		t.Fatalf("reverse warmup: known=%v err=%v", known, err)
	}
	base := h.Stats()
	const limit = 4
	got := testing.AllocsPerRun(50, func() {
		if _, _, err := h.KnowledgeWeight(sigma, theta2); err != nil {
			t.Fatal(err)
		}
	})
	if got > limit {
		t.Errorf("warm Early query allocates %.0f times per run, want <= %d", got, limit)
	}
	if after := h.Stats(); after.RevHits <= base.RevHits {
		t.Fatalf("measured queries were not reverse warm hits: %+v -> %+v", base, after)
	}
}
