// Package viz renders runs, bounds graphs and zigzag patterns as ASCII
// diagrams, regenerating the paper's figures from actual executions. The
// renderings are deterministic, making them usable as golden test outputs.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
)

// Timeline renders per-process timelines of a run: one row per process,
// one column per time step, with node markers and delivery annotations.
// roleOf maps process ids to display names (nil uses "p<i>").
func Timeline(r *run.Run, roleOf map[model.ProcID]string, upTo model.Time) string {
	if upTo <= 0 || upTo > r.Horizon() {
		upTo = r.Horizon()
	}
	name := func(p model.ProcID) string {
		if roleOf != nil {
			if s, ok := roleOf[p]; ok {
				return s
			}
		}
		return fmt.Sprintf("p%d", p)
	}
	width := 0
	for _, p := range r.Net().Procs() {
		if w := len(name(p)); w > width {
			width = w
		}
	}
	var sb strings.Builder
	// Header ruler.
	fmt.Fprintf(&sb, "%*s |", width, "t")
	for t := model.Time(0); t <= upTo; t++ {
		if t%5 == 0 {
			fmt.Fprintf(&sb, "%-5d", t)
		}
	}
	sb.WriteString("\n")
	for _, p := range r.Net().Procs() {
		fmt.Fprintf(&sb, "%*s |", width, name(p))
		line := make([]byte, upTo+1)
		for i := range line {
			line[i] = '-'
		}
		for k := 0; k <= r.LastIndex(p); k++ {
			t := r.MustTime(run.BasicNode{Proc: p, Index: k})
			if t <= upTo {
				line[t] = '*'
			}
		}
		sb.Write(line)
		sb.WriteString("\n")
	}
	// Event legend.
	var events []string
	for _, e := range r.Externals() {
		if e.Time <= upTo {
			events = append(events, fmt.Sprintf("  t=%-3d ext %q -> %s", e.Time, e.Label, name(e.To.Proc)))
		}
	}
	for _, d := range r.Deliveries() {
		if d.RecvTime <= upTo {
			events = append(events, fmt.Sprintf("  t=%-3d %s@%d => %s@%d",
				d.RecvTime, name(d.From.Proc), d.SendTime, name(d.To.Proc), d.RecvTime))
		}
	}
	sort.Strings(events)
	if len(events) > 0 {
		sb.WriteString("events:\n")
		sb.WriteString(strings.Join(events, "\n"))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Steps renders a constraint path with per-step weights and a running
// total — the textual form of Figure 7.
func Steps(steps []bounds.Step) string {
	var sb strings.Builder
	total := 0
	for i, s := range steps {
		total += s.Weight
		fmt.Fprintf(&sb, "%2d. %-60s (sum %+d)\n", i+1, s.String(), total)
	}
	fmt.Fprintf(&sb, "    total weight %+d\n", total)
	return sb.String()
}

// Zigzag renders a zigzag pattern fork by fork with weights.
func Zigzag(net *model.Network, z *pattern.Zigzag) string {
	var sb strings.Builder
	total := 0
	for i, f := range z.Forks {
		w, err := f.Weight(net)
		if err != nil {
			fmt.Fprintf(&sb, "F%d: %s  <error: %v>\n", i+1, f, err)
			continue
		}
		total += w
		// Weight succeeded, so both path sums are defined — but render, don't
		// panic, if a hand-built pattern slips a broken path past it.
		headL, errL := net.LowerSum(f.HeadPath)
		tailU, errU := net.UpperSum(f.TailPath)
		if errL != nil || errU != nil {
			fmt.Fprintf(&sb, "F%d: %s  <broken path: %v%v>\n", i+1, f, errL, errU)
			continue
		}
		fmt.Fprintf(&sb, "F%d: base=%s  head+%s (L=%d)  tail+%s (U=%d)  wt=%+d\n",
			i+1, f.Base, f.HeadPath, headL,
			f.TailPath, tailU, w)
		if i < len(z.NonJoined) {
			if z.NonJoined[i] {
				total++
				sb.WriteString("    -- non-joined (+1) --\n")
			} else {
				sb.WriteString("    -- joined --\n")
			}
		}
	}
	fmt.Fprintf(&sb, "wt(Z) = %+d over %d forks\n", total, len(z.Forks))
	return sb.String()
}

// ExtendedStats summarizes an extended bounds graph: the textual form of
// Figure 8.
func ExtendedStats(e *bounds.Extended) string {
	g := e.Graph()
	kinds := map[bounds.StepKind]int{}
	for u := 0; u < g.N(); u++ {
		from := e.PointOf(u)
		for _, edge := range g.Out(u) {
			to := e.PointOf(edge.To)
			switch {
			case from.Aux && to.Aux:
				kinds[bounds.StepAuxHop]++
			case from.Aux && !to.Aux:
				kinds[bounds.StepAuxExit]++ // includes aux->chain 0-edges
			case !from.Aux && to.Aux:
				kinds[bounds.StepAuxEnter]++
			case edge.Weight == 1 && from.Node.Proc() == to.Node.Proc():
				kinds[bounds.StepSucc]++
			case edge.Weight > 0:
				kinds[bounds.StepLower]++
			default:
				kinds[bounds.StepUpper]++
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "GE(r, %s): %d vertices (%d past nodes + %d auxiliary), %d edges\n",
		e.Past().Origin(), g.N(), e.Past().Size(), e.Net().N(), g.NumEdges())
	for _, k := range []bounds.StepKind{
		bounds.StepSucc, bounds.StepLower, bounds.StepUpper,
		bounds.StepAuxEnter, bounds.StepAuxHop, bounds.StepAuxExit,
	} {
		fmt.Fprintf(&sb, "  %-10s %d\n", k.String(), kinds[k])
	}
	return sb.String()
}
