// Command zigzag-sim runs one of the canonical scenarios and prints its
// timeline, the coordination outcome and the justifying zigzag pattern.
// With -sweep it instead runs the full scenario registry as a
// scenario × policy × seed grid across a worker pool and prints the
// aggregates — as an aligned table by default, or as CSV/JSON via -format
// for feeding figure scripts.
//
// Usage:
//
//	zigzag-sim [-scenario name] [-policy eager|lazy|random|heavy] [-seed n]
//	           [-x n] [-coord-m m] [-timeline n] [-list] [-dump file]
//	           [-engine offline|rebuild|online|shared] [-kind late|early|mixed]
//	           [-faults crash|link|deadline|chaos]
//	           [-cpuprofile file] [-memprofile file]
//	zigzag-sim -sweep [-seeds n] [-workers n] [-x n] [-coord-m m] [-live]
//	           [-live-mode replay|goroutine] [-sweep-faults] [-format table|csv|json]
//	           [-sweep-x 0,2,4] [-sweep-scale 1,1.5,2] [-sweep-rand 8:12:1,12:20:2]
//	           [-cpuprofile file] [-memprofile file]
//
// -engine picks the Protocol2 knowledge engine for a single-scenario run:
// the default "offline" keeps the recorded-run analysis, while rebuild,
// online and shared execute the scenario's tasks live — one agent goroutine
// per task — on the chosen engine and cross-check every act against the
// offline optimum. -kind overrides every task's coordination kind for such
// a run (late, early, or the default mixed which keeps the scenario's own
// kinds) — handy for driving the Early-kind reverse query cache end to
// end. -coord-m raises the registry's multi-agent family
// ceiling (coord-m8/coord-m16 enter at 8/16). With -sweep, -live adds the
// registry's multi-agent scenarios as live grid cells driven through ONE
// shared knowledge engine per network; -live-mode picks their execution
// engine — "replay" (the goroutine-free single-threaded drive, the default)
// additionally opens the replay-only coord-heavy-m family (long-horizon
// heavy-tail runs), while "goroutine" keeps the goroutine-per-process
// environment as the differential oracle. -sweep-faults (with -sweep -live)
// additionally opens the chaos axis: the coord-faulty family — seeded crash,
// link-failure, deadline and chaos plans injected per cell — whose agents
// must degrade gracefully (typed errors, withheld actions) rather than act
// early or panic. The other -sweep-* flags add grid
// axes beyond the registry: task-separation overrides, channel-bound
// scaling factors and extra random-topology shapes (procs:extra:seed).
// -faults injects a seeded fault plan of the named family into a
// single-scenario -engine run; the offline cross-check then becomes a
// safety audit (every act must satisfy its task on the faulted run) and the
// report lists the injected violations and degraded agents.
// -cpuprofile/-memprofile write pprof profiles of whatever the invocation
// ran, so the hot-path claims in DESIGN.md are reproducible with
// `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/live"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/sweep"
	"github.com/clockless/zigzag/internal/trace"
	"github.com/clockless/zigzag/internal/viz"
)

func main() {
	var (
		name     = flag.String("scenario", "figure2b", "scenario to run")
		policy   = flag.String("policy", "lazy", "delivery policy: eager, lazy, random or heavy (heavy-tailed)")
		seed     = flag.Int64("seed", 1, "seed for the random policy")
		x        = flag.Int("x", 0, "override the task's required separation (0 keeps the default)")
		coordM   = flag.Int("coord-m", scenario.DefaultCoordM, "multi-agent family ceiling: include coord-m scenarios up to this many agents")
		engine   = flag.String("engine", "offline", "Protocol2 engine for a single-scenario run: offline (recorded-run analysis), rebuild, online or shared (live execution)")
		kind     = flag.String("kind", "mixed", "with -engine: override every task's kind — late, early or mixed (keep scenario defaults)")
		timeline = flag.Int("timeline", 32, "timeline window to render")
		list     = flag.Bool("list", false, "list scenarios and exit")
		dump     = flag.String("dump", "", "write the recorded run as JSON to this file")
		doSweep  = flag.Bool("sweep", false, "sweep the full registry under every policy and print the aggregate table")
		seeds    = flag.Int("seeds", 8, "number of seeds per (scenario, policy) cell in a sweep")
		workers  = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS)")
		format   = flag.String("format", "table", "sweep output format: table, csv or json")
		doLive   = flag.Bool("live", false, "with -sweep: add the multi-agent scenarios as live grid cells (Protocol2 agents on one shared engine per network)")
		liveMode = flag.String("live-mode", "replay", "with -sweep -live: live cell execution — replay (goroutine-free, opens the coord-heavy-m family) or goroutine (the differential oracle)")
		doFaults = flag.Bool("sweep-faults", false, "with -sweep -live: add the coord-faulty chaos family (seeded crash/link/deadline/chaos plans per cell)")
		faultFam = flag.String("faults", "", "with -engine: inject a seeded fault plan of this family (crash, link, deadline or chaos) into the run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with go tool pprof)")
		sweepX   = flag.String("sweep-x", "", "comma-separated task-separation overrides as a sweep axis (e.g. 0,2,4; overrides -x for the sweep)")
		noXBatch = flag.Bool("no-xbatch", false, "with -sweep -sweep-x: run every per-x live cell as its own execution instead of collapsing the x axis onto batched executions")
		sweepSc  = flag.String("sweep-scale", "", "comma-separated channel-bound scaling factors as a sweep axis (e.g. 1,1.5,2)")
		sweepRnd = flag.String("sweep-rand", "", "extra random topologies as procs:extra:seed triples, comma-separated (e.g. 8:12:1,12:20:2)")
	)
	flag.Parse()
	all := scenario.RegistrySized(*x, *coordM)
	if *list {
		for _, n := range scenario.Names(all) {
			fmt.Printf("%-9s %s\n", n, all[n].Description)
		}
		return
	}
	if *doSweep && *engine != "offline" {
		fmt.Fprintln(os.Stderr, "-engine applies to single-scenario runs; use -live for engine-backed sweep cells")
		os.Exit(2)
	}
	if !*doSweep && *doLive {
		fmt.Fprintln(os.Stderr, "-live needs -sweep (single scenarios run live via -engine)")
		os.Exit(2)
	}
	if *doFaults && (!*doSweep || !*doLive) {
		fmt.Fprintln(os.Stderr, "-sweep-faults needs -sweep -live (faulted cells are live-only)")
		os.Exit(2)
	}
	if *faultFam != "" {
		if *doSweep {
			fmt.Fprintln(os.Stderr, "-faults applies to single-scenario -engine runs; use -sweep-faults for the chaos grid")
			os.Exit(2)
		}
		if *engine == "offline" {
			fmt.Fprintln(os.Stderr, "-faults needs a live engine (-engine rebuild|online|shared): the offline analysis assumes an honest run")
			os.Exit(2)
		}
		if !faults.ValidFamily(*faultFam) {
			fmt.Fprintf(os.Stderr, "unknown fault family %q (want crash, link, deadline or chaos)\n", *faultFam)
			os.Exit(2)
		}
	}
	// Profiling wraps everything that does real work; exit replaces os.Exit
	// below so error paths still flush the profiles.
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProfiles()
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}
	if *doSweep {
		if !sweep.ValidFormat(*format) {
			fmt.Fprintf(os.Stderr, "unknown output format %q (want table, csv or json)\n", *format)
			exit(2)
		}
		if *liveMode != "replay" && *liveMode != "goroutine" {
			fmt.Fprintf(os.Stderr, "unknown live mode %q (want replay or goroutine)\n", *liveMode)
			exit(2)
		}
		axes, err := parseAxes(*x, *coordM, *sweepX, *sweepSc, *sweepRnd)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		if err := runSweep(axes, *seeds, *workers, *format, *doLive, *liveMode, *doFaults, *noXBatch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	}
	sc, ok := all[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (use -list)\n", *name)
		exit(2)
	}
	var pol sim.Policy
	switch *policy {
	case "eager":
		pol = sim.Eager{}
	case "lazy":
		pol = sim.Lazy{}
	case "random":
		pol = sim.NewRandom(*seed)
	case "heavy":
		pol = sim.NewHeavyTail(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		exit(2)
	}
	if *engine != "offline" {
		if err := runLiveScenario(sc, pol, *engine, *kind, *timeline, *dump, *faultFam, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	}

	r, err := sc.Simulate(pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if err := trace.WriteRun(f, r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Printf("run written to %s\n", *dump)
	}
	fmt.Printf("scenario %s under policy %s\n%s\n\n", sc.Name, pol.Name(), sc.Description)
	names := make(map[model.ProcID]string, len(sc.Roles))
	for role, p := range sc.Roles {
		names[p] = role
	}
	fmt.Println(viz.Timeline(r, names, model.Time(*timeline)))

	if sc.Task == nil {
		return
	}
	fmt.Printf("task: %s with x=%d (A=%s, B=%s, C=%s)\n",
		sc.Task.Kind, sc.Task.X, names[sc.Task.A], names[sc.Task.B], names[sc.Task.C])
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if !out.Acted {
		fmt.Println("Protocol 2: B cannot act — the required bound is not knowable on this network.")
		return
	}
	fmt.Printf("Protocol 2: B acted at t=%d (a at t=%d, gap %+d), knowing a bound of %d\n",
		out.ActTime, out.ATime, out.Gap, out.KnownBound)
	fmt.Println("justifying sigma-visible zigzag:")
	fmt.Print(viz.Zigzag(r.Net(), &out.Witness.Zigzag))
	if err := out.Witness.VerifyVisible(r); err != nil {
		fmt.Fprintf(os.Stderr, "witness verification failed: %v\n", err)
		exit(1)
	}
	fmt.Println("witness verified ✔")

	ext, err := bounds.NewExtended(r, out.ActNode)
	if err == nil {
		fmt.Println()
		fmt.Print(viz.ExtendedStats(ext))
	}

	base, err := sc.Task.RunBaseline(r)
	if err == nil {
		if base.Acted {
			fmt.Printf("asynchronous baseline: acted at t=%d (%+d vs optimal)\n",
				base.ActTime, base.ActTime-out.ActTime)
		} else {
			fmt.Println("asynchronous baseline: never acts on this network")
		}
	}
}

// startProfiles begins CPU profiling and arranges a heap profile at stop,
// per the -cpuprofile/-memprofile flags (empty means off). The returned stop
// function must run before the process exits for either file to be complete;
// it is safe to call more than once only via the exit wrapper in main (the
// process is gone before a second call could happen).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}, nil
}

// runLiveScenario executes a single scenario through the live environment
// with one Protocol2 agent per coordination task on the chosen engine —
// rebuild (fresh extended graph per state), online (private incremental
// engine) or shared (one per-network knowledge engine, per-run standing
// graph, per-agent frontier handles) — and cross-checks every agent's act
// against the offline optimum on the recorded run, which dump (when
// non-empty) archives as JSON exactly like the offline path does.
//
// With faultFam a seeded fault plan is injected. The offline-optimum
// comparison would then falsely flag every degraded agent (an omniscient
// analyzer of the recording is not bound by in-run detection), so the
// cross-check becomes the chaos safety audit instead: every act an agent
// DID perform must satisfy its task on the faulted run that actually
// happened, and the report lists the injected violations, crashed
// processes and degraded agents.
func runLiveScenario(sc *scenario.Scenario, pol sim.Policy, engine, kind string, timeline int, dump, faultFam string, seed int64) error {
	switch engine {
	case "rebuild", "online", "shared":
	default:
		return fmt.Errorf("unknown engine %q (want offline, rebuild, online or shared)", engine)
	}
	tasks := sc.TaskList()
	if len(tasks) == 0 {
		return fmt.Errorf("scenario %s poses no coordination task; -engine needs one (try coord-m4)", sc.Name)
	}
	switch kind {
	case "mixed":
	case "late":
		for i := range tasks {
			tasks[i].Kind = coord.Late
		}
	case "early":
		for i := range tasks {
			tasks[i].Kind = coord.Early
		}
	default:
		return fmt.Errorf("unknown kind %q (want late, early or mixed)", kind)
	}
	agents, agentMap := live.NewTaskAgents(tasks)
	cfg := live.Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: pol, Externals: sc.Externals,
		Agents: agentMap,
	}
	if faultFam != "" {
		plan, err := faults.NewPlan(faultFam, sc.Net, sc.Horizon, seed)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}
	switch engine {
	case "rebuild":
		for _, a := range agents {
			a.Rebuild = true
		}
	case "online":
		// Protocol2's default: a private incremental engine per agent.
	case "shared":
		cfg.Engine = bounds.NewNetworkEngine(sc.Net)
	}
	res, err := live.Run(cfg)
	if err != nil {
		return err
	}
	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		if err := trace.WriteRun(f, res.Run); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("run written to %s\n", dump)
	}
	faulted := ""
	if faultFam != "" {
		faulted = fmt.Sprintf(", faults=%s-s%d", faultFam, seed)
	}
	fmt.Printf("scenario %s under policy %s — live, engine=%s%s, %d agent(s)\n%s\n\n",
		sc.Name, pol.Name(), engine, faulted, len(tasks), sc.Description)
	names := make(map[model.ProcID]string, len(sc.Roles))
	for role, p := range sc.Roles {
		names[p] = role
	}
	fmt.Println(viz.Timeline(res.Run, names, model.Time(timeline)))
	acts := make(map[string]live.Action, len(res.Actions))
	for _, a := range res.Actions {
		acts[a.Label] = a
	}
	if faultFam != "" {
		return reportFaultedRun(tasks, agents, res, acts)
	}
	disagree := 0
	for i := range tasks {
		if err := agents[i].Err(); err != nil {
			return fmt.Errorf("agent %s: %w", live.TaskLabel(i), err)
		}
		offline, err := tasks[i].RunOptimal(res.Run)
		if err != nil {
			return fmt.Errorf("task %d offline analysis: %w", i+1, err)
		}
		act, acted := acts[live.TaskLabel(i)]
		agrees := acted == offline.Acted && (!acted || (act.Node == offline.ActNode && act.Time == offline.ActTime))
		verdict := "agrees with offline ✔"
		if !agrees {
			verdict = fmt.Sprintf("DISAGREES with offline (acted=%v t=%d)", offline.Acted, offline.ActTime)
			disagree++
		}
		if acted {
			fmt.Printf("agent %s (%s, x=%d, B=%d): acted at t=%d — %s\n",
				live.TaskLabel(i), tasks[i].Kind, tasks[i].X, tasks[i].B, act.Time, verdict)
		} else {
			fmt.Printf("agent %s (%s, x=%d, B=%d): never acted — %s\n",
				live.TaskLabel(i), tasks[i].Kind, tasks[i].X, tasks[i].B, verdict)
		}
	}
	if disagree > 0 {
		return fmt.Errorf("%d agent(s) disagree with the offline analysis", disagree)
	}
	return nil
}

// reportFaultedRun prints the chaos report of a fault-injected -engine run
// and audits safety: every act performed must satisfy its task on the
// faulted run (coord.Task.AuditAct), every internal agent error is fatal,
// and the injected violations, crashed processes and degraded agents are
// listed. Degraded agents withholding their action is the CORRECT outcome,
// not a failure.
func reportFaultedRun(tasks []coord.Task, agents []*live.Protocol2, res *live.Result, acts map[string]live.Action) error {
	early := 0
	for i := range tasks {
		label := live.TaskLabel(i)
		if err := agents[i].Err(); err != nil {
			return fmt.Errorf("agent %s: %w", label, err)
		}
		act, acted := acts[label]
		switch {
		case acted:
			verdict := "sound ✔"
			if err := tasks[i].AuditAct(res.Run, act.Time); err != nil {
				verdict = fmt.Sprintf("EARLY: %v", err)
				early++
			}
			fmt.Printf("agent %s (%s, x=%d, B=%d): acted at t=%d — %s\n",
				label, tasks[i].Kind, tasks[i].X, tasks[i].B, act.Time, verdict)
		case agents[i].Degraded():
			fmt.Printf("agent %s (%s, x=%d, B=%d): degraded, action withheld — %v\n",
				label, tasks[i].Kind, tasks[i].X, tasks[i].B, agents[i].DegradeReason())
		default:
			fmt.Printf("agent %s (%s, x=%d, B=%d): never acted (condition not knowable before the horizon)\n",
				label, tasks[i].Kind, tasks[i].X, tasks[i].B)
		}
	}
	fmt.Printf("\nfaults: %d violation(s) injected, %d process(es) crashed, %d agent(s) degraded\n",
		len(res.Violations), len(res.Crashed), len(res.Degraded))
	for _, v := range res.Violations {
		fmt.Printf("  %v\n", v)
	}
	if early > 0 {
		return fmt.Errorf("%d agent(s) acted early on the faulted run — SAFETY VIOLATION", early)
	}
	return nil
}

// parseAxes assembles the sweep's scenario axes from the CLI flags: the
// x list (falling back to the single -x override), the bound-scale list
// and the extra random shapes, plus the multi-agent family ceiling.
func parseAxes(x, coordM int, xsFlag, scalesFlag, randFlag string) (sweep.Axes, error) {
	axes := sweep.Axes{MaxCoordM: coordM}
	if xsFlag == "" {
		axes.Xs = []int{x}
	} else {
		for _, tok := range strings.Split(xsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return axes, fmt.Errorf("bad -sweep-x entry %q: %v", tok, err)
			}
			axes.Xs = append(axes.Xs, v)
		}
	}
	if scalesFlag != "" {
		for _, tok := range strings.Split(scalesFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return axes, fmt.Errorf("bad -sweep-scale entry %q: %v", tok, err)
			}
			axes.Scales = append(axes.Scales, v)
		}
	}
	if randFlag != "" {
		for _, tok := range strings.Split(randFlag, ",") {
			parts := strings.Split(strings.TrimSpace(tok), ":")
			if len(parts) != 3 {
				return axes, fmt.Errorf("bad -sweep-rand entry %q (want procs:extra:seed)", tok)
			}
			procs, err1 := strconv.Atoi(parts[0])
			extra, err2 := strconv.Atoi(parts[1])
			seed, err3 := strconv.ParseInt(parts[2], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return axes, fmt.Errorf("bad -sweep-rand entry %q (want procs:extra:seed)", tok)
			}
			axes.Random = append(axes.Random, sweep.RandomShape{Procs: procs, Extra: extra, Seed: seed})
		}
	}
	return axes, nil
}

// runSweep expands the axes into the scenario × policy × seed grid —
// optionally adding the multi-agent scenarios as live cells driven through
// one knowledge engine per network — and prints the aggregates in
// deterministic order, in the requested format. liveMode picks the live
// cells' execution engine: "replay" (default) runs them goroutine-free and
// additionally opens the replay-only long-horizon heavy-tail family;
// "goroutine" keeps the goroutine-per-process oracle. doFaults adds the
// coord-faulty chaos family: live-only cells that inject a seeded fault
// plan per cell and must come back with typed violations and degraded
// agents, never a cell error. The banner is only
// printed for the human-readable table so that csv/json output can be piped
// straight into figure scripts.
func runSweep(axes sweep.Axes, seeds, workers int, format string, doLive bool, liveMode string, doFaults, noXBatch bool) error {
	if seeds < 1 {
		return fmt.Errorf("sweep needs at least one seed, got %d", seeds)
	}
	scs, err := axes.Scenarios()
	if err != nil {
		return err
	}
	grid := sweep.Grid{
		Scenarios: scs,
		Policies:  sweep.DefaultPolicies(),
		Seeds:     make([]int64, seeds),
		Workers:   workers,
		NoXBatch:  noXBatch,
	}
	switch liveMode {
	case "replay":
		grid.LiveMode = sweep.ModeReplay
	case "goroutine":
		grid.LiveMode = sweep.ModeLive
	default:
		return fmt.Errorf("unknown live mode %q (want replay or goroutine)", liveMode)
	}
	if doLive {
		// The multi-agent scenarios (the only ones carrying concurrent
		// Tasks) form the live dimension: every policy and seed of one
		// topology shares a single bounds.NetworkEngine inside Grid.Run.
		for _, sc := range scs {
			if len(sc.Tasks) > 0 {
				grid.Live = append(grid.Live, sc)
			}
		}
		if len(grid.Live) == 0 {
			return fmt.Errorf("sweep: -live found no multi-agent scenarios in the grid")
		}
		if grid.LiveMode == sweep.ModeReplay {
			// Replay headroom opens the replay-only family: long-horizon
			// heavy-tail coordination the goroutine mode can't afford.
			grid.Live = append(grid.Live, scenario.ReplayFamily()...)
		}
		if doFaults {
			// The chaos axis: every cell of these scenarios derives a fault
			// plan from (family, seed) and injects it identically in every
			// execution mode. Faulted cells bypass the prefix cache.
			grid.Live = append(grid.Live, scenario.FaultyFamily()...)
		}
	}
	for i := range grid.Seeds {
		grid.Seeds[i] = int64(i + 1)
	}
	results, report, err := grid.RunWithEngines()
	if err != nil {
		return err
	}
	if format == "" || format == "table" {
		fmt.Printf("sweep: (%d sim + %d live scenarios) x %d policies x %d seeds = %d runs\n\n",
			len(grid.Scenarios), len(grid.Live), len(grid.Policies), len(grid.Seeds), grid.Size())
	}
	if err := sweep.Write(os.Stdout, format, sweep.Summarize(results)); err != nil {
		return err
	}
	if (format == "" || format == "table") && report.Networks > 0 {
		st := report.Stats
		fmt.Printf("\nengines: %d network(s), %d run(s) stamped; prefix cache %d hit / %d miss / %d evicted; %d clone bytes, %d relaxations\n",
			report.Networks, st.Runs, st.PrefixHits, st.PrefixMisses, st.PrefixEvictions,
			st.CloneBytes, st.Relaxations)
		fmt.Printf("reverse cache: %d warm hit(s) / %d rebuild(s), %d band refresh(es), %d reverse relaxations\n",
			st.RevHits, st.RevRebuilds, st.BandRefreshes, st.RevRelaxations)
		if st.ReplayBatches > 0 {
			fmt.Printf("replay: %d batch(es) driven through %d streamed chunk(s), goroutine-free\n",
				st.ReplayBatches, st.ReplayChunks)
		}
		if st.BatchQueries > 0 || st.XFanout > 0 {
			fmt.Printf("batched queries: %d answered, %d for free from an already-computed distance array; x-fanout saved %d execution(s)\n",
				st.BatchQueries, st.BatchHits, st.XFanout)
		}
	}
	if format == "" || format == "table" {
		violations, degraded, crashed := 0, 0, 0
		for _, res := range results {
			violations += res.Violations
			degraded += res.Degraded
			crashed += res.Crashed
		}
		if violations+degraded+crashed > 0 {
			fmt.Printf("faults: %d violation(s) injected, %d process(es) crashed, %d agent(s) degraded — all typed, zero panics\n",
				violations, crashed, degraded)
		}
	}
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "cell %s/%s seed=%d: %v\n", res.Scenario, res.Policy, res.Seed, res.Err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d cells failed", failed, len(results))
	}
	return nil
}
