// Package live executes the bounded communication model with one goroutine
// per process, exchanging FFIP messages over Go channels under a lockstep
// virtual-time environment. It exists to demonstrate — and test — that
// every decision in this library is honestly clockless: an agent goroutine
// receives only run.View values (the structure of its causal past) and has
// no access whatsoever to the environment's clock; its decisions must
// therefore coincide exactly with the offline analysis, which the tests
// assert.
//
// The environment goroutine owns virtual time: at each tick it delivers the
// messages the Policy scheduled, waits for every receiving process to
// absorb its batch and answer with its actions, and floods the new states
// onward. Processes never see the tick value.
//
// The environment mirrors the simulator's allocation profile: arrivals and
// externals live in horizon-indexed slice buckets (recycled through a
// freelist) instead of per-tick maps, per-process delivery slabs replace
// per-tick grouping maps and their sort, message payloads are immutable
// run.Snapshot values shared by every out-arc of a state, and the receipt
// and reply plumbing is reused across batches.
package live

import (
	"errors"
	"fmt"
	"sync"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// Agent is the application logic of one process. OnState is called from the
// process's own goroutine at every new local state, with the process's
// current view (structure only — no times) and the external labels absorbed
// in the creating batch. The externals slice is reused between batches;
// agents must not retain it. The returned labels are recorded as actions
// performed at that state.
type Agent interface {
	OnState(v *run.View, externals []string) (actions []string)
}

// AgentFunc adapts a function to an Agent.
type AgentFunc func(v *run.View, externals []string) []string

// OnState implements Agent.
func (f AgentFunc) OnState(v *run.View, externals []string) []string { return f(v, externals) }

// Action records one action an agent performed.
type Action struct {
	Proc  model.ProcID
	Node  run.BasicNode
	Time  model.Time
	Label string
}

// SharedUser is implemented by agents that can subscribe to a per-run
// shared knowledge engine (bounds.Shared). Run hands Config.Shared to every
// such agent before its first state.
type SharedUser interface {
	UseShared(*bounds.Shared)
}

// Degradable is implemented by agents that support graceful degradation
// under fault injection. When the environment determines that a process's
// knowledge may rest on a violated communication bound — a claim about a
// dropped, late or discarded message, or a promised delivery verifiably
// past its deadline — it calls Degrade (from the process's own goroutine,
// before OnState) with the typed reason, a faults.ErrBoundViolation wrap.
// A degraded agent is expected to withhold further actions; Protocol2 does.
// Degrade may be called repeatedly as the condition persists.
type Degradable interface {
	Degrade(reason error)
}

// Config parametrizes a live execution.
type Config struct {
	Net       *model.Network
	Horizon   model.Time
	Policy    sim.Policy
	Externals []run.ExternalEvent
	// Agents maps processes to their application logic; processes without
	// an agent still flood (they are pure FFIP relays).
	Agents map[model.ProcID]Agent
	// Shared, when non-nil, is the run-owned knowledge engine handed to
	// every agent implementing SharedUser: all of them then share one
	// standing bounds graph instead of maintaining one each. It must have
	// been built for Net.
	Shared *bounds.Shared
	// Engine, when non-nil (and Shared is nil), is the network-lifetime
	// knowledge engine this execution subscribes to: Run stamps a fresh
	// per-run Shared out of it (bounds.NetworkEngine.NewRun) and hands that
	// to every SharedUser agent. Harnesses running many executions of one
	// network — sweeps, benchmarks — build the engine once and put it here,
	// so the aux band, presizing hints and scratch pool amortize across
	// runs. It must have been built for Net or a content-equal network.
	Engine *bounds.NetworkEngine
	// Fingerprint, when nonzero (and Engine is set), is the content
	// fingerprint (run.Run.Fingerprint) this execution is expected to
	// record — known up front for deterministic policies by pre-simulating
	// once, or from an earlier recording. Run then stamps the per-run
	// engine through the network engine's standing-prefix cache
	// (bounds.NetworkEngine.NewRunAt): a cached identical run's standing
	// graph is reused outright, and on a miss the completed run is frozen
	// into the cache for the executions that follow. Run fails if the
	// recording's fingerprint comes out different — a wrong prediction
	// must surface, not poison the cache.
	Fingerprint uint64
	// ReplayChunk bounds how many receive batches the replay mode buffers
	// between its recorder and its driver (Replay only; zero means the
	// package default). Long-horizon runs stream through a chunk this size
	// instead of materializing the whole schedule in memory.
	ReplayChunk int
	// Faults optionally injects a deterministic fault plan (crashes, dead
	// links, missed deadlines) into the environment. Both execution modes
	// apply the plan at identical hook points, so the recording, actions and
	// degradation outcomes stay byte-identical between them — and identical
	// to sim.Simulate with the same plan. Nil means the fault-free
	// environment of the paper. Faulted executions should leave Fingerprint
	// zero: their recordings are not legal runs and must bypass the
	// standing-prefix cache.
	Faults *faults.Plan
}

// Result is the outcome of a live execution.
type Result struct {
	// Run is the environment-side ground-truth recording; it validates as a
	// legal run and is byte-identical in structure to what sim.Simulate
	// produces for the same configuration.
	Run *run.Run
	// Actions lists agent actions in (time, process) order.
	Actions []Action
	// PrefixHit reports that the run's knowledge engine was stamped from a
	// frozen standing prefix of an identical earlier run
	// (Config.Fingerprint hit the network engine's prefix cache).
	PrefixHit bool
	// ReplayBatches / ReplayChunks count the receive batches driven and the
	// chunk buffers streamed by the goroutine-free replay mode (both zero
	// for goroutine executions).
	ReplayBatches int
	ReplayChunks  int
	// Violations lists every communication-bound violation the fault plan
	// injected, as typed errors in canonical order (Config.Faults only).
	Violations []*faults.Violation
	// Degraded lists the agent-bearing processes that ended the run
	// degraded — withholding actions because their knowledge may rest on a
	// violated bound — in id order (Config.Faults only).
	Degraded []model.ProcID
	// Crashed lists the processes the plan halted within the horizon, in id
	// order (Config.Faults only).
	Crashed []model.ProcID
}

// execState is the engine wiring both execution modes share: Run and Replay
// prepare it before their first tick and settle it after the recording is
// built.
type execState struct {
	policy    sim.Policy
	shared    *bounds.Shared
	stamped   bool // this execution stamped shared itself, so it commits it
	prefixHit bool
	inj       *faults.Injector // nil for fault-free executions
}

// prepare validates the configuration, resolves the policy, stamps the
// per-run knowledge engine (when Config.Engine is set) and hands the shared
// engine to every SharedUser agent. Both execution modes — the
// goroutine-per-process environment (Run) and the goroutine-free replay
// drive (Replay) — start here, so the engine lifecycle cannot drift between
// them.
func prepare(cfg Config) (*execState, error) {
	if cfg.Net == nil || cfg.Horizon < 1 {
		return nil, errors.New("live: bad configuration")
	}
	st := &execState{policy: cfg.Policy, shared: cfg.Shared}
	if st.policy == nil {
		st.policy = sim.Eager{}
	}
	if cfg.Faults != nil {
		inj, err := faults.NewInjector(cfg.Faults, cfg.Net, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		st.inj = inj
	}
	if st.shared == nil && cfg.Engine != nil {
		if en := cfg.Engine.Net(); en != cfg.Net && en.Fingerprint() != cfg.Net.Fingerprint() {
			return nil, errors.New("live: Config.Engine was built for a different network")
		}
		st.shared, st.prefixHit = cfg.Engine.NewRunAt(cfg.Fingerprint)
		st.stamped = true
	}
	if st.shared != nil {
		if sn := st.shared.Net(); sn != cfg.Net && sn.Fingerprint() != cfg.Net.Fingerprint() {
			return nil, errors.New("live: Config.Shared was built for a different network")
		}
		for _, agent := range cfg.Agents {
			if su, ok := agent.(SharedUser); ok {
				su.UseShared(st.shared)
			}
		}
	}
	return st, nil
}

// extTimetable validates the external schedule and slots it into
// horizon-indexed buckets, exactly as sim.Simulate does. Externals bound
// for a process the fault plan has crashed by their delivery time are
// skipped — they reach a halted process and create no batch in any mode.
func extTimetable(cfg Config, st *execState) ([][]run.ExternalEvent, error) {
	extAt := make([][]run.ExternalEvent, cfg.Horizon+1)
	for _, e := range cfg.Externals {
		if !cfg.Net.ValidProc(e.Proc) || e.Time < 1 || e.Time > cfg.Horizon {
			return nil, fmt.Errorf("live: bad external %q to %d at %d", e.Label, e.Proc, e.Time)
		}
		if st.inj != nil && st.inj.Dead(e.Proc, e.Time) {
			continue
		}
		extAt[e.Time] = append(extAt[e.Time], e)
	}
	return extAt, nil
}

// finish builds the recording, enforces the predicted run fingerprint and —
// when this execution stamped its engine itself — freezes the fully-absorbed
// standing state for identical later runs.
func finish(cfg Config, st *execState, bl *run.Builder, res *Result) error {
	r, err := bl.Build()
	if err != nil {
		return err
	}
	if cfg.Fingerprint != 0 && r.Fingerprint() != cfg.Fingerprint {
		return fmt.Errorf("live: recorded run fingerprint %#x differs from Config.Fingerprint %#x",
			r.Fingerprint(), cfg.Fingerprint)
	}
	if st.stamped {
		// No-op unless NewRunAt missed; the fingerprint check above keeps
		// mispredicted runs out of the cache.
		st.shared.CommitPrefix()
		res.PrefixHit = st.prefixHit
	}
	if st.inj != nil {
		rep := st.inj.Report()
		res.Violations = rep.Violations
		res.Crashed = rep.Crashed
		// Result.Degraded is about withheld actions, so restrict the
		// injector's process-level frontier (already in id order) to the
		// agent-bearing processes.
		for _, p := range rep.Degraded {
			if cfg.Agents[p] != nil {
				res.Degraded = append(res.Degraded, p)
			}
		}
	}
	res.Run = r
	return nil
}

// batch is what the environment hands a process goroutine at one tick. The
// receipts and externals slices are owned by the environment and reused
// between batches; the process must be done with them when it replies.
type batch struct {
	receipts  []run.Receipt
	externals []string
	// degrade, when non-nil, tells the process its knowledge may rest on a
	// violated bound: it is handed to a Degradable agent before OnState.
	degrade error
	reply   chan<- procReply
}

// procReply is what the process goroutine answers with.
type procReply struct {
	node    run.BasicNode
	payload *run.Snapshot // frozen history, shared by every out-arc flood
	actions []string
	err     error
}

// arrival is one scheduled delivery: the sender's node and frozen history,
// bound for toProc.
type arrival struct {
	from    run.BasicNode
	payload *run.Snapshot
	toProc  model.ProcID
	send    model.Time
}

// Run executes the configuration. It is deterministic for deterministic
// policies: goroutine scheduling cannot influence outcomes because the
// environment synchronizes on every delivery batch.
func Run(cfg Config) (*Result, error) {
	st, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	policy := st.policy
	net := cfg.Net
	n := net.N()

	// Spawn one goroutine per process, each owning its View and Agent.
	inboxes := make([]chan batch, n)
	var wg sync.WaitGroup
	for _, p := range net.Procs() {
		ch := make(chan batch) // unbuffered: lockstep with the environment
		inboxes[p-1] = ch
		wg.Add(1)
		go func(p model.ProcID, ch <-chan batch) {
			defer wg.Done()
			view := run.NewLocalView(net, p)
			agent := cfg.Agents[p]
			for b := range ch {
				node, err := view.Absorb(b.receipts, b.externals)
				if err != nil {
					b.reply <- procReply{err: err}
					continue
				}
				if b.degrade != nil {
					if d, ok := agent.(Degradable); ok {
						d.Degrade(b.degrade)
					}
				}
				var actions []string
				if agent != nil {
					actions = agent.OnState(view, b.externals)
				}
				b.reply <- procReply{
					node:    node,
					payload: view.Snapshot(),
					actions: actions,
				}
			}
		}(p, ch)
	}
	defer func() {
		for _, ch := range inboxes {
			close(ch)
		}
		wg.Wait()
	}()

	// Environment state: horizon-indexed arrival buckets (with consumed
	// bucket backing recycled through a freelist) and the external
	// timetable, mirroring sim.Simulate.
	arrivals := make([][]arrival, cfg.Horizon+1)
	var free [][]arrival
	extAt, err := extTimetable(cfg, st)
	if err != nil {
		return nil, err
	}
	inj := st.inj

	bl := run.NewBuilder(net, cfg.Horizon)
	if inj != nil {
		bl.Tolerate()
	}
	res := &Result{}

	// Per-process slabs for the current tick, reused across ticks: the
	// arrivals grouped by receiver and the external labels. Iterating
	// processes in id order replaces the per-tick map + sort of the old
	// environment loop.
	procArr := make([][]arrival, n)
	procExt := make([][]string, n)
	receipts := make([]run.Receipt, 0, 8)
	reply := make(chan procReply, 1)

	for t := model.Time(1); t <= cfg.Horizon; t++ {
		if arrivals[t] == nil && extAt[t] == nil {
			continue
		}
		for _, a := range arrivals[t] {
			procArr[a.toProc-1] = append(procArr[a.toProc-1], a)
		}
		if arrivals[t] != nil {
			free = append(free, arrivals[t][:0])
			arrivals[t] = nil
		}
		// Record the tick's externals up front in configuration order —
		// exactly as sim.Simulate does, so the recordings stay
		// byte-identical — while slotting the labels into per-process slabs
		// for the batches.
		for _, e := range extAt[t] {
			bl.External(run.ExternalEvent{Proc: e.Proc, Time: t, Label: e.Label})
			procExt[e.Proc-1] = append(procExt[e.Proc-1], e.Label)
		}

		for p := model.ProcID(1); int(p) <= n; p++ {
			arr := procArr[p-1]
			ext := procExt[p-1]
			if len(arr) == 0 && len(ext) == 0 {
				continue
			}
			procArr[p-1] = arr[:0]
			procExt[p-1] = ext[:0]
			receipts = receipts[:0]
			for _, a := range arr {
				receipts = append(receipts, run.Receipt{From: a.from, Payload: a.payload})
				bl.Message(run.MessageEvent{
					FromProc: a.from.Proc, ToProc: p, SendTime: a.send, RecvTime: t,
				})
				if inj != nil {
					inj.Deliver(net.ChanIDOf(a.from.Proc, p), a.from.Proc, p, a.send, t)
				}
			}
			var degrade error
			if inj != nil && inj.DegradedAt(p, t) {
				degrade = inj.DegradeReason(p, t)
			}
			inboxes[p-1] <- batch{receipts: receipts, externals: ext, degrade: degrade, reply: reply}
			pr := <-reply
			if pr.err != nil {
				return nil, fmt.Errorf("live: process %d: %w", p, pr.err)
			}
			for _, label := range pr.actions {
				res.Actions = append(res.Actions, Action{Proc: p, Node: pr.node, Time: t, Label: label})
			}
			// FFIP flood: schedule the new state's messages straight off the
			// dense out-arc slice, every one sharing the state's snapshot.
			for _, a := range net.OutArcs(p) {
				if inj != nil && inj.SendDrop(a.ID, p, a.To, t) {
					continue
				}
				s := sim.Send{From: p, To: a.To, SendTime: t}
				lat := policy.Latency(s, a.Bounds)
				if lat < a.Bounds.Lower || lat > a.Bounds.Upper {
					return nil, fmt.Errorf("live: policy %q chose latency %d outside %s", policy.Name(), lat, a.Bounds)
				}
				if inj != nil {
					lat = inj.Delay(a.ID, p, a.To, t, lat)
				}
				if t+lat > cfg.Horizon {
					continue
				}
				if inj != nil && inj.Dead(a.To, t+lat) {
					// The crash schedule is static, so the discard is known
					// at flood time: no mode ever materializes an arrival at
					// a dead process.
					inj.Discard(a.ID, p, a.To, t, t+lat)
					continue
				}
				if arrivals[t+lat] == nil {
					if len(free) > 0 {
						arrivals[t+lat] = free[len(free)-1]
						free = free[:len(free)-1]
					} else {
						arrivals[t+lat] = make([]arrival, 0, len(net.OutArcs(p)))
					}
				}
				arrivals[t+lat] = append(arrivals[t+lat], arrival{
					from:    pr.node,
					payload: pr.payload,
					toProc:  a.To,
					send:    t,
				})
			}
		}
	}
	if err := finish(cfg, st, bl, res); err != nil {
		return nil, err
	}
	return res, nil
}
