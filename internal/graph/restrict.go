package graph

import (
	"errors"
	"fmt"
	"math"
)

// AlwaysVisible is the Restriction.Idx value of vertices that never carry a
// virtual boundary edge (auxiliary bands, speculative query vertices): it
// is below any representable limit.
const AlwaysVisible = int32(math.MinInt32)

// posInf is the "masked vertex" distance sentinel of restricted
// relaxation: no real path weight can exceed it, so an edge into a masked
// vertex never passes the improvement test. It is as far from the
// representable range as NegInf, so adding edge weights cannot wrap.
const posInf = int64(1) << 60

// Restriction masks a graph down to a prefix-closed subgraph and overlays
// caller-private edges, so that one standing graph can serve many
// subscribers whose vertex sets are per-band prefixes of it (bounds.Shared
// amortizes the extended bounds graph across every live agent of a run this
// way: vertex ids are arrival-ordered, so an agent's view is exactly a
// prefix mask per process band).
//
// Visible is the authoritative mask, one bool per vertex: relaxation never
// leaves the visible set — invisible seeds are dropped and edges into
// invisible targets are rejected. The rejection costs NOTHING per edge:
// invisible vertices carry the posInf distance sentinel, so the ordinary
// "does this edge improve the target" test fails for them and the masked
// relaxation loop is byte-for-byte the unrestricted spfa body (the mask is
// consulted only when initializing distances, filtering seeds and placing
// the per-dequeue virtual edges). Since subscriber frontiers only ever
// grow, the distances a Scratch accumulates for one subscriber remain
// valid warm starts under that subscriber's later (larger) visible sets —
// the subscriber passes the vertices that just became visible as
// `admitted` so their sentinels are dropped.
//
// Two virtual edge families complete the masked subgraph without touching
// the standing edge tables:
//
//   - Overlay[u] lists caller-private out-edges of u, for u < len(Overlay).
//     (bounds.Shared keeps each agent's E” horizon edges here: they depend
//     on which deliveries the agent has seen, so they cannot be standing.)
//   - Every vertex v with Idx[v] == Limit[Band[v]] — the band's boundary
//     under this restriction — gets the edge
//     v --BoundaryWeight--> BoundaryTo[Band[v]] when BoundaryTo is non-nil
//     and the target is >= 0. (The E' boundary edge of an extended bounds
//     graph is a function of the frontier alone, so it lives here rather
//     than being rewritten per agent.) This check runs once per dequeued
//     vertex, so the indirect (band, idx, limit) form is fine here.
type Restriction struct {
	Visible []bool

	Band  []int32
	Idx   []int32
	Limit []int32

	Overlay [][]Edge

	// ROverlay is Overlay transposed, for the reverse (into-destination)
	// queries: ROverlay[v] lists {To: u, Weight: w} for every overlay edge
	// u --w--> v, keyed by the edge HEAD. Callers using the reverse queries
	// must keep it in mirror-sync with Overlay (append together, swap-delete
	// together); forward-only callers leave it nil.
	ROverlay [][]Edge

	BoundaryTo     []int32
	BoundaryWeight int

	// BoundaryFrom is the reverse counterpart of the virtual boundary
	// edges: BoundaryFrom[b] names the vertex currently at band b's
	// boundary under this restriction (the unique visible v with
	// Idx[v] == Limit[b]), or -1 when the band has none. Reverse relaxation
	// consults it when dequeuing a band anchor, which requires the anchors
	// to be self-indexed (BoundaryTo[b] == b — the bounds engines guarantee
	// this: aux band vertex ids equal band ids). Forward-only callers leave
	// it nil.
	BoundaryFrom []int32
}

// LongestRestricted is LongestWith confined to the restriction's visible
// subgraph (plus its overlay and virtual boundary edges). Entries for
// invisible vertices hold the masking sentinel and must not be read as
// distances. The returned slice aliases s and stays valid only until s is
// used again.
func (g *Graph) LongestRestricted(s *Scratch, src int, r *Restriction) ([]int64, error) {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("graph: source %d outside 0..%d", src, n-1)
	}
	if len(r.Visible) < n || len(r.Band) < n || len(r.Idx) < n {
		return nil, fmt.Errorf("graph: restriction covers %d of %d vertices", len(r.Visible), n)
	}
	if !r.Visible[src] {
		return nil, fmt.Errorf("graph: source %d outside the restriction", src)
	}
	s.ensure(n)
	dist := s.dist
	vis := r.Visible
	for i := range dist {
		if vis[i] {
			dist[i] = NegInf
		} else {
			dist[i] = posInf
		}
		s.inQueue[i] = false
		s.pathLen[i] = 0
	}
	dist[src] = 0
	s.queue[0] = src
	s.inQueue[src] = true
	s.n = n
	return dist, spfaRestricted(g.adj, s, 1, r)
}

// RelaxRestrictedFrom is RelaxFrom confined to a restriction: it resumes a
// prior LongestRestricted/RelaxRestrictedFrom run from the same source and
// the same subscriber, after the graph and the subscriber's visible set
// grew monotonically. seeds must list the sources of every edge that became
// visible to this subscriber since the prior run (newly standing edges
// inside the frontier, overlay additions, and the moved virtual boundary
// edges); invisible or unreachable seeds are skipped. admitted must list
// every vertex of the prior run's range that has become visible since, so
// its masked-distance sentinel is dropped (vertices beyond the prior range
// are initialized straight off the mask).
func (g *Graph) RelaxRestrictedFrom(s *Scratch, seeds, admitted []int, r *Restriction) ([]int64, error) {
	n := len(g.adj)
	if s.n == 0 {
		return nil, errors.New("graph: RelaxRestrictedFrom without a prior computation")
	}
	if s.n > n {
		return nil, fmt.Errorf("graph: RelaxRestrictedFrom after shrink: %d vertices, scratch covers %d", n, s.n)
	}
	if len(r.Visible) < n || len(r.Band) < n || len(r.Idx) < n {
		return nil, fmt.Errorf("graph: restriction covers %d of %d vertices", len(r.Visible), n)
	}
	old := s.n
	s.ensure(n)
	dist := s.dist
	for i := old; i < n; i++ {
		if r.Visible[i] {
			dist[i] = NegInf
		} else {
			dist[i] = posInf
		}
	}
	for _, v := range admitted {
		if v < 0 || v >= n || !r.Visible[v] {
			return nil, fmt.Errorf("graph: admitted vertex %d invalid", v)
		}
		if v < old {
			dist[v] = NegInf
		}
	}
	for i := range s.inQueue {
		s.inQueue[i] = false
		s.pathLen[i] = 0
	}
	count := 0
	for _, v := range seeds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: seed %d outside 0..%d", v, n-1)
		}
		if !s.inQueue[v] && dist[v] != NegInf && r.Visible[v] {
			s.queue[count] = v
			count++
			s.inQueue[v] = true
		}
	}
	s.n = n
	return dist, spfaRestricted(g.adj, s, count, r)
}

// LongestIntoRestricted is LongestIntoWith confined to the restriction's
// visible subgraph: it computes, for every visible vertex v, the weight of
// the longest path from v INTO dst through visible vertices only, including
// the overlay and virtual boundary edges (consulted through ROverlay and
// BoundaryFrom, which reverse callers must populate). Entries for invisible
// vertices hold the masking sentinel and must not be read as distances. The
// returned slice aliases s and stays valid only until s is used again.
func (g *Graph) LongestIntoRestricted(s *Scratch, dst int, r *Restriction) ([]int64, error) {
	n := len(g.adj)
	if dst < 0 || dst >= n {
		return nil, fmt.Errorf("graph: destination %d outside 0..%d", dst, n-1)
	}
	if len(r.Visible) < n || len(r.Band) < n || len(r.Idx) < n {
		return nil, fmt.Errorf("graph: restriction covers %d of %d vertices", len(r.Visible), n)
	}
	if !r.Visible[dst] {
		return nil, fmt.Errorf("graph: destination %d outside the restriction", dst)
	}
	s.ensure(n)
	dist := s.dist
	vis := r.Visible
	for i := range dist {
		if vis[i] {
			dist[i] = NegInf
		} else {
			dist[i] = posInf
		}
		s.inQueue[i] = false
		s.pathLen[i] = 0
	}
	dist[dst] = 0
	s.queue[0] = dst
	s.inQueue[dst] = true
	s.n = n
	return dist, spfaReverseRestricted(g.radj, s, 1, r)
}

// RelaxReverseRestrictedFrom resumes a prior LongestIntoRestricted /
// RelaxReverseRestrictedFrom run toward the same destination and for the
// same subscriber, after the graph and the subscriber's visible set grew
// monotonically. Reverse relaxation propagates head -> tail, so seeds must
// list the HEADS of every edge that became visible since the prior run
// (newly standing edges, overlay additions, and the band anchors whose
// virtual boundary edge moved); invisible or unreachable seeds are skipped.
// admitted lists every vertex of the prior run's range that became visible
// since, so its masked-distance sentinel is dropped.
//
// Edge removal can LOWER a reverse distance, which a max-only warm restart
// would never discover: refresh must list every vertex whose distance
// toward the destination may have decreased since the prior run. Refresh
// vertices have their distances reset to unreachable and are re-derived
// from the heads of their surviving out-edges (standing, overlay and
// boundary); a refresh vertex whose derivation routes through other refresh
// vertices re-enters the queue as they improve, so a closed family (the
// bounds engines refresh the whole auxiliary band — node-vertex reverse
// distances are knowledge weights, which persist) re-derives to its exact
// fixpoint. refresh must not contain the destination, and refresh vertices
// must be visible.
func (g *Graph) RelaxReverseRestrictedFrom(s *Scratch, seeds, admitted, refresh []int, r *Restriction) ([]int64, error) {
	n := len(g.adj)
	if s.n == 0 {
		return nil, errors.New("graph: RelaxReverseRestrictedFrom without a prior computation")
	}
	if s.n > n {
		return nil, fmt.Errorf("graph: RelaxReverseRestrictedFrom after shrink: %d vertices, scratch covers %d", n, s.n)
	}
	if len(r.Visible) < n || len(r.Band) < n || len(r.Idx) < n {
		return nil, fmt.Errorf("graph: restriction covers %d of %d vertices", len(r.Visible), n)
	}
	old := s.n
	s.ensure(n)
	dist := s.dist
	for i := old; i < n; i++ {
		if r.Visible[i] {
			dist[i] = NegInf
		} else {
			dist[i] = posInf
		}
	}
	for _, v := range admitted {
		if v < 0 || v >= n || !r.Visible[v] {
			return nil, fmt.Errorf("graph: admitted vertex %d invalid", v)
		}
		if v < old {
			dist[v] = NegInf
		}
	}
	for _, v := range refresh {
		if v < 0 || v >= n || !r.Visible[v] {
			return nil, fmt.Errorf("graph: refresh vertex %d invalid", v)
		}
		dist[v] = NegInf
	}
	for i := range s.inQueue {
		s.inQueue[i] = false
		s.pathLen[i] = 0
	}
	count := 0
	for _, v := range seeds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: seed %d outside 0..%d", v, n-1)
		}
		if !s.inQueue[v] && dist[v] != NegInf && r.Visible[v] {
			s.queue[count] = v
			count++
			s.inQueue[v] = true
		}
	}
	// Re-deriving a refresh vertex means re-popping the heads of its
	// surviving out-edges: each head, when dequeued, re-relaxes its in-edges
	// — among them the refresh vertex's. Heads that are themselves
	// refresh-reset are skipped here (unreachable seeds are useless) and
	// re-enter the queue once a neighbor with a valid distance improves
	// them, so a whole band re-derives to its fixpoint through the queue.
	for _, v := range refresh {
		for _, e := range g.adj[v] {
			if h := e.To; !s.inQueue[h] && dist[h] != NegInf && r.Visible[h] {
				s.queue[count] = h
				count++
				s.inQueue[h] = true
			}
		}
		if v < len(r.Overlay) {
			for _, e := range r.Overlay[v] {
				if h := e.To; !s.inQueue[h] && dist[h] != NegInf && r.Visible[h] {
					s.queue[count] = h
					count++
					s.inQueue[h] = true
				}
			}
		}
		if r.BoundaryTo != nil && r.Idx[v] == r.Limit[r.Band[v]] {
			if h := int(r.BoundaryTo[r.Band[v]]); h >= 0 && !s.inQueue[h] && dist[h] != NegInf {
				s.queue[count] = h
				count++
				s.inQueue[h] = true
			}
		}
	}
	s.n = n
	return dist, spfaReverseRestricted(g.radj, s, count, r)
}

// spfaRestricted is spfa over the visible subgraph: the overlay
// contributes extra out-edges and band-boundary vertices relax their
// virtual boundary edge, both once per dequeued vertex. Standing edges
// need no mask work at all — masked targets hold the posInf sentinel, so
// the improvement test rejects them — and the queue only ever holds
// visible vertices (seeds are filtered, masked vertices are never
// improved). The relaxation body is spelled out three times rather than
// closed over — this loop is the hot path of every shared-engine query,
// and a closure call per edge costs ~15% of the whole query.
func spfaRestricted(adj [][]Edge, s *Scratch, count int, r *Restriction) error {
	n := len(adj)
	dist, inQueue, pathLen, queue := s.dist, s.inQueue, s.pathLen, s.queue
	band, idx, limit := r.Band, r.Idx, r.Limit
	head := 0
	var relaxed int64
	for count > 0 {
		u := queue[head]
		head++
		if head == n {
			head = 0
		}
		count--
		inQueue[u] = false
		du := dist[u]
		for _, e := range adj[u] {
			if nd := du + int64(e.Weight); nd > dist[e.To] {
				dist[e.To] = nd
				relaxed++
				pathLen[e.To] = pathLen[u] + 1
				if int(pathLen[e.To]) >= n {
					s.Relaxations += relaxed
					return ErrPositiveCycle
				}
				if !inQueue[e.To] {
					tail := head + count
					if tail >= n {
						tail -= n
					}
					queue[tail] = e.To
					count++
					inQueue[e.To] = true
				}
			}
		}
		if u < len(r.Overlay) {
			for _, e := range r.Overlay[u] {
				if nd := du + int64(e.Weight); nd > dist[e.To] {
					dist[e.To] = nd
					relaxed++
					pathLen[e.To] = pathLen[u] + 1
					if int(pathLen[e.To]) >= n {
						s.Relaxations += relaxed
						return ErrPositiveCycle
					}
					if !inQueue[e.To] {
						tail := head + count
						if tail >= n {
							tail -= n
						}
						queue[tail] = e.To
						count++
						inQueue[e.To] = true
					}
				}
			}
		}
		if r.BoundaryTo != nil && idx[u] == limit[band[u]] {
			// Boundary targets are the restriction's own always-visible band
			// anchors.
			if to := int(r.BoundaryTo[band[u]]); to >= 0 {
				if nd := du + int64(r.BoundaryWeight); nd > dist[to] {
					dist[to] = nd
					relaxed++
					pathLen[to] = pathLen[u] + 1
					if int(pathLen[to]) >= n {
						s.Relaxations += relaxed
						return ErrPositiveCycle
					}
					if !inQueue[to] {
						tail := head + count
						if tail >= n {
							tail -= n
						}
						queue[tail] = to
						count++
						inQueue[to] = true
					}
				}
			}
		}
	}
	s.Relaxations += relaxed
	return nil
}

// spfaReverseRestricted is spfaRestricted over the transposed graph:
// dequeuing a vertex relaxes its IN-edges (improving the distances of edge
// tails toward the fixed destination), the reverse overlay contributes the
// caller-private in-edges, and dequeuing a band anchor relaxes the band's
// virtual boundary edge backwards onto the vertex BoundaryFrom names. The
// masking works unchanged: invisible tails hold the posInf sentinel, so the
// improvement test rejects them for free. The relaxation body is spelled
// out three times for the same reason as in spfaRestricted.
func spfaReverseRestricted(radj [][]Edge, s *Scratch, count int, r *Restriction) error {
	n := len(radj)
	dist, inQueue, pathLen, queue := s.dist, s.inQueue, s.pathLen, s.queue
	head := 0
	var relaxed int64
	for count > 0 {
		u := queue[head]
		head++
		if head == n {
			head = 0
		}
		count--
		inQueue[u] = false
		du := dist[u]
		for _, e := range radj[u] {
			if nd := du + int64(e.Weight); nd > dist[e.To] {
				dist[e.To] = nd
				relaxed++
				pathLen[e.To] = pathLen[u] + 1
				if int(pathLen[e.To]) >= n {
					s.Relaxations += relaxed
					return ErrPositiveCycle
				}
				if !inQueue[e.To] {
					tail := head + count
					if tail >= n {
						tail -= n
					}
					queue[tail] = e.To
					count++
					inQueue[e.To] = true
				}
			}
		}
		if u < len(r.ROverlay) {
			for _, e := range r.ROverlay[u] {
				if nd := du + int64(e.Weight); nd > dist[e.To] {
					dist[e.To] = nd
					relaxed++
					pathLen[e.To] = pathLen[u] + 1
					if int(pathLen[e.To]) >= n {
						s.Relaxations += relaxed
						return ErrPositiveCycle
					}
					if !inQueue[e.To] {
						tail := head + count
						if tail >= n {
							tail -= n
						}
						queue[tail] = e.To
						count++
						inQueue[e.To] = true
					}
				}
			}
		}
		if u < len(r.BoundaryFrom) && r.BoundaryTo[u] == int32(u) {
			// u is a band anchor: the band's boundary vertex carries the
			// virtual edge INTO u, so relax it backwards.
			if from := int(r.BoundaryFrom[u]); from >= 0 {
				if nd := du + int64(r.BoundaryWeight); nd > dist[from] {
					dist[from] = nd
					relaxed++
					pathLen[from] = pathLen[u] + 1
					if int(pathLen[from]) >= n {
						s.Relaxations += relaxed
						return ErrPositiveCycle
					}
					if !inQueue[from] {
						tail := head + count
						if tail >= n {
							tail -= n
						}
						queue[tail] = from
						count++
						inQueue[from] = true
					}
				}
			}
		}
	}
	s.Relaxations += relaxed
	return nil
}
