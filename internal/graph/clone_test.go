package graph

import "testing"

// dists computes fresh longest-path distances from src, failing the test on
// error.
func dists(t *testing.T, g *Graph, src int) []int64 {
	t.Helper()
	d, err := g.Longest(src)
	if err != nil {
		t.Fatal(err)
	}
	return append([]int64(nil), d...)
}

// TestCloneFreezeAndExtendChain exercises the composed Clone contract along
// the chain prototype -> extended run -> frozen prefix -> stamped runs: a
// clone that has itself been extended is cloned again, both sides keep
// growing, the donor removes only post-freeze edges, and no side ever
// observes another's mutations.
func TestCloneFreezeAndExtendChain(t *testing.T) {
	// Prototype: 3 vertices, one edge.
	proto := New(3)
	proto.AddEdge(0, 1, 2)

	// Tier 2: a run stamped from the prototype, extended with a vertex and
	// edges of its own.
	runA := proto.Clone()
	v3 := runA.AddVertex()
	runA.AddEdge(1, 2, 3)
	runA.AddEdge(2, v3, 1)
	wantA := dists(t, runA, 0)

	// Tier 3: freeze the extended run and stamp two siblings from it.
	frozen := runA.Clone()
	s1 := frozen.Clone()
	s2 := frozen.Clone()

	// The donor keeps living past the freeze: it appends speculative
	// material and removes exactly what it added (post-freeze edges only).
	runA.AddEdge(0, 2, 50)
	spec := runA.AddVertex()
	runA.AddEdge(v3, spec, 7)
	if !runA.RemoveEdge(0, 2, 50) {
		t.Fatal("donor lost its own speculative edge")
	}
	if !runA.RemoveEdge(v3, spec, 7) {
		t.Fatal("donor lost its own chain edge")
	}
	runA.PopVertex()

	// Each sibling extends independently.
	s1.AddEdge(0, 2, 10)
	s2.AddEdge(1, v3, 20)

	for i, got := range dists(t, runA, 0) {
		if got != wantA[i] {
			t.Fatalf("donor dist[%d] = %d after freeze+rollback, want %d", i, got, wantA[i])
		}
	}
	for i, got := range dists(t, frozen, 0) {
		if got != wantA[i] {
			t.Fatalf("frozen dist[%d] = %d, want donor's %d", i, got, wantA[i])
		}
	}
	d1 := dists(t, s1, 0)
	if d1[2] != 10 || d1[v3] != 11 {
		t.Fatalf("sibling 1 dists %v, want 0->2 = 10, 0->%d = 11", d1, v3)
	}
	d2 := dists(t, s2, 0)
	if d2[2] != 5 || d2[v3] != 22 {
		t.Fatalf("sibling 2 dists %v, want 0->2 = 5, 0->%d = 22", d2, v3)
	}
	// Sibling extensions must not leak into each other or back up the chain.
	if d1[v3] == d2[v3] {
		t.Fatal("sibling extensions aliased")
	}
	if n := frozen.NumEdges(); n != 3 {
		t.Fatalf("frozen prefix has %d edges, want 3", n)
	}
}
