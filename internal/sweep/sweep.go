// Package sweep runs scenario × policy × seed grids of FFIP simulations
// concurrently and aggregates their outcomes. It is the batch engine behind
// `zigzag-sim -sweep`: a worker pool sized to GOMAXPROCS executes every cell
// of the grid, while results and aggregates are reported in the grid's
// deterministic enumeration order (scenario-major, then policy, then seed)
// regardless of the number of workers.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"

	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/stats"
)

// ErrEmptyGrid reports a grid with no cells to run.
var ErrEmptyGrid = errors.New("sweep: empty grid")

// PolicySpec names a delivery-policy family and constructs a fresh instance
// per cell. Stateful policies (sim.Random) must not be shared across cells,
// so the grid carries factories rather than policy values.
type PolicySpec struct {
	Name string
	New  func(seed int64) sim.Policy
}

// DefaultPolicies returns the canonical policy families: the two latency
// extremes and the seeded uniform-random environment.
func DefaultPolicies() []PolicySpec {
	return []PolicySpec{
		{Name: "eager", New: func(int64) sim.Policy { return sim.Eager{} }},
		{Name: "lazy", New: func(int64) sim.Policy { return sim.Lazy{} }},
		{Name: "random", New: func(seed int64) sim.Policy { return sim.NewRandom(seed) }},
	}
}

// Grid is a scenario × policy × seed sweep specification.
type Grid struct {
	Scenarios []*scenario.Scenario
	Policies  []PolicySpec
	Seeds     []int64
	// Workers bounds concurrent cells; <= 0 means GOMAXPROCS.
	Workers int
}

// Size returns the number of cells in the grid.
func (g Grid) Size() int { return len(g.Scenarios) * len(g.Policies) * len(g.Seeds) }

// Result records the outcome of one grid cell. A cell that fails to
// simulate (or whose protocol run fails) carries the error in Err with the
// remaining metric fields zero.
type Result struct {
	Scenario string
	Policy   string
	Seed     int64
	Err      error

	// Run shape.
	Nodes      int
	Deliveries int
	Pending    int

	// Coordination outcome, when the scenario poses a task.
	HasTask    bool
	Acted      bool
	ActTime    int
	Gap        int
	KnownBound int
}

// Run executes every cell of the grid across a worker pool and returns the
// results in enumeration order: scenario-major, then policy, then seed. The
// output is deterministic in the grid (worker count and scheduling do not
// affect it); per-cell failures are recorded in Result.Err rather than
// aborting the sweep.
func (g Grid) Run() ([]Result, error) {
	if g.Size() == 0 {
		return nil, ErrEmptyGrid
	}
	for _, sc := range g.Scenarios {
		if sc == nil {
			return nil, fmt.Errorf("sweep: nil scenario in grid")
		}
	}
	workers := g.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.Size() {
		workers = g.Size()
	}

	results := make([]Result, g.Size())
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = g.cell(i)
			}
		}()
	}
	for i := range results {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, nil
}

// cell runs the i-th cell of the enumeration.
func (g Grid) cell(i int) Result {
	nSeeds, nPols := len(g.Seeds), len(g.Policies)
	sc := g.Scenarios[i/(nPols*nSeeds)]
	spec := g.Policies[(i/nSeeds)%nPols]
	seed := g.Seeds[i%nSeeds]

	res := Result{Scenario: sc.Name, Policy: spec.Name, Seed: seed}
	r, err := sc.Simulate(spec.New(seed))
	if err != nil {
		res.Err = err
		return res
	}
	res.Nodes = r.NumNodes()
	res.Deliveries = len(r.Deliveries())
	res.Pending = len(r.PendingMessages())
	if sc.Task == nil {
		return res
	}
	res.HasTask = true
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		res.Err = err
		return res
	}
	res.Acted = out.Acted
	if out.Acted {
		res.ActTime = int(out.ActTime)
		res.Gap = out.Gap
		res.KnownBound = out.KnownBound
	}
	return res
}

// Aggregate summarizes all cells of one (scenario, policy) pair.
type Aggregate struct {
	Scenario string
	Policy   string
	Runs     int
	Errors   int

	Nodes      stats.Summary
	Deliveries stats.Summary

	// Coordination tallies over the cells that pose a task.
	TaskRuns int
	Acted    int
	Gap      stats.Summary // over acted cells
}

// Summarize groups results by (scenario, policy) in first-appearance order
// — for Grid.Run output, the grid's enumeration order — and computes the
// per-group aggregates.
func Summarize(results []Result) []Aggregate {
	type key struct{ sc, pol string }
	idx := make(map[key]int)
	var aggs []Aggregate
	samples := make(map[key]*struct{ nodes, deliveries, gaps []float64 })
	for _, res := range results {
		k := key{res.Scenario, res.Policy}
		i, ok := idx[k]
		if !ok {
			i = len(aggs)
			idx[k] = i
			aggs = append(aggs, Aggregate{Scenario: res.Scenario, Policy: res.Policy})
			samples[k] = &struct{ nodes, deliveries, gaps []float64 }{}
		}
		a, s := &aggs[i], samples[k]
		a.Runs++
		if res.Err != nil {
			a.Errors++
			continue
		}
		s.nodes = append(s.nodes, float64(res.Nodes))
		s.deliveries = append(s.deliveries, float64(res.Deliveries))
		if res.HasTask {
			a.TaskRuns++
			if res.Acted {
				a.Acted++
				s.gaps = append(s.gaps, float64(res.Gap))
			}
		}
	}
	for i := range aggs {
		s := samples[key{aggs[i].Scenario, aggs[i].Policy}]
		aggs[i].Nodes = stats.Summarize(s.nodes)
		aggs[i].Deliveries = stats.Summarize(s.deliveries)
		aggs[i].Gap = stats.Summarize(s.gaps)
	}
	return aggs
}

// Table renders aggregates as an aligned text table, one row per
// (scenario, policy) pair, in the given order.
func Table(aggs []Aggregate) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tpolicy\truns\terrs\tnodes\tdeliveries\tacted\tgap(mean)\tgap[min,max]")
	for _, a := range aggs {
		acted := "-"
		gapMean := "-"
		gapRange := "-"
		if a.TaskRuns > 0 {
			acted = fmt.Sprintf("%d/%d", a.Acted, a.TaskRuns)
			if a.Acted > 0 {
				gapMean = fmt.Sprintf("%+.2f", a.Gap.Mean)
				gapRange = fmt.Sprintf("[%+.0f,%+.0f]", a.Gap.Min, a.Gap.Max)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%.1f\t%s\t%s\t%s\n",
			a.Scenario, a.Policy, a.Runs, a.Errors, a.Nodes.Mean, a.Deliveries.Mean,
			acted, gapMean, gapRange)
	}
	tw.Flush()
	return b.String()
}
