package timing

import (
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// TestSlowRunTightness is the executable content of Theorem 2: for random
// instances and policies, the slow run r[T] targeted at sigma2 is a legal
// run in which every node with a path to sigma2 in GB(r) occurs exactly its
// longest-path weight before sigma2 — so the longest-path bound is tight,
// and by Lemma 5 the extracted zigzag pattern of the same weight is the
// heaviest one the communication structure supports.
func TestSlowRunTightness(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(seed * 31)} {
			r, err := in.Simulate(pol)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, pol.Name(), err)
			}
			window := in.WindowNodes(r)
			if len(window) == 0 {
				t.Fatalf("seed %d %s: empty window", seed, pol.Name())
			}
			gb := bounds.NewBasic(r)
			// Target the last window node (richest precedence set).
			sigma2 := window[len(window)-1]
			slow, err := BuildSlow(gb, sigma2, 0)
			if err != nil {
				t.Fatalf("seed %d %s: BuildSlow(%s): %v", seed, pol.Name(), sigma2, err)
			}
			if err := slow.Run.Validate(); err != nil {
				t.Fatalf("seed %d %s: slow run invalid: %v", seed, pol.Name(), err)
			}
			dist, err := gb.DistancesInto(sigma2)
			if err != nil {
				t.Fatal(err)
			}
			checked := 0
			for _, sigma1 := range window {
				v, err := gb.Vertex(sigma1)
				if err != nil {
					t.Fatal(err)
				}
				if dist[v] == graph.NegInf {
					continue
				}
				gap, err := slow.Gap(sigma1)
				if err != nil {
					// Window nodes with positive distance are always kept;
					// only negative-distance nodes can spill past the
					// horizon, and extra=0 drops them.
					if dist[v] < 0 {
						continue
					}
					t.Fatalf("seed %d %s: Gap(%s): %v", seed, pol.Name(), sigma1, err)
				}
				if int64(gap) != dist[v] {
					t.Errorf("seed %d %s: gap(%s -> %s) = %d, longest path %d",
						seed, pol.Name(), sigma1, sigma2, gap, dist[v])
				}
				checked++
				// Lemma 5: the extracted zigzag verifies at that weight.
				if checked <= 6 {
					z, w, found, err := pattern.ExtractBasic(gb, sigma1, sigma2)
					if err != nil {
						t.Fatalf("extract(%s): %v", sigma1, err)
					}
					if !found || int64(w) != dist[v] {
						t.Errorf("seed %d: extract weight %d (found=%v), want %d", seed, w, found, dist[v])
						continue
					}
					if err := z.Verify(r); err != nil {
						t.Errorf("seed %d: zigzag verify: %v", seed, err)
					}
					if err := z.VerifyEndpoints(r, run.At(sigma1), run.At(sigma2)); err != nil {
						t.Errorf("seed %d: endpoints: %v", seed, err)
					}
				}
			}
			if checked == 0 {
				t.Errorf("seed %d %s: no pairs checked", seed, pol.Name())
			}
		}
	}
}

// TestSlowRunNegativeGaps exercises the extra-horizon variant: nodes that
// occur after the target (negative longest-path weight) are retained and
// still land exactly at their distance.
func TestSlowRunNegativeGaps(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(42))
	r, err := in.Simulate(sim.NewRandom(7))
	if err != nil {
		t.Fatal(err)
	}
	window := in.WindowNodes(r)
	gb := bounds.NewBasic(r)
	sigma2 := window[0] // early target: most other nodes come after it
	slow, err := BuildSlow(gb, sigma2, in.Window)
	if err != nil {
		t.Fatalf("BuildSlow with extra horizon: %v", err)
	}
	if err := slow.Run.Validate(); err != nil {
		t.Fatalf("slow run invalid: %v", err)
	}
	dist, err := gb.DistancesInto(sigma2)
	if err != nil {
		t.Fatal(err)
	}
	negatives := 0
	for _, sigma1 := range window {
		v, _ := gb.Vertex(sigma1)
		if dist[v] == graph.NegInf || dist[v] >= 0 {
			continue
		}
		gap, err := slow.Gap(sigma1)
		if err != nil {
			continue // beyond even the extended horizon
		}
		if int64(gap) != dist[v] {
			t.Errorf("gap(%s) = %d, want %d", sigma1, gap, dist[v])
		}
		negatives++
	}
	if negatives == 0 {
		t.Skip("instance produced no negative-distance window pairs")
	}
}

// TestSlowRunPreservesIdentity: kept nodes keep their (process, index)
// identity and their inbox wiring — r[T] really is "the same run, slower".
func TestSlowRunPreservesIdentity(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(5))
	r, err := in.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	window := in.WindowNodes(r)
	gb := bounds.NewBasic(r)
	sigma2 := window[len(window)-1]
	slow, err := BuildSlow(gb, sigma2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range window {
		if _, ok := slow.Time(n); !ok {
			continue
		}
		if !slow.Run.Appears(n) {
			t.Fatalf("kept node %s missing from slow run", n)
		}
		src := r.Inbox(n)
		dst := slow.Run.Inbox(n)
		if len(src) != len(dst) {
			t.Errorf("node %s inbox %d vs %d", n, len(src), len(dst))
			continue
		}
		for i := range src {
			if src[i].From != dst[i].From {
				t.Errorf("node %s delivery %d from %s vs %s", n, i, src[i].From, dst[i].From)
			}
		}
	}
}
