package run_test

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// fuzzState is one interpreter execution: the per-process views of a fixed
// 3-ring plus a decoy view over a different network for cross-network
// payloads.
type fuzzState struct {
	views [3]*run.View
	decoy *run.View
}

func newFuzzState() *fuzzState {
	ring := model.NewBuilder(3).Chan(1, 2, 1, 2).Chan(2, 3, 1, 2).Chan(3, 1, 1, 2).MustBuild()
	other := model.NewBuilder(4).Chan(1, 2, 1, 1).MustBuild()
	st := &fuzzState{decoy: run.NewLocalView(other, 1)}
	for p := model.ProcID(1); p <= 3; p++ {
		st.views[p-1] = run.NewLocalView(ring, p)
	}
	return st
}

// step interprets one (op, arg) byte pair against the state and returns a
// digest line of what happened — including any Absorb error text — so a
// replay can be compared step for step.
func (st *fuzzState) step(op, arg byte) string {
	switch op % 4 {
	case 0:
		// Spontaneous state: absorb nothing but an external label.
		v := st.views[int(arg)%3]
		node, err := v.Absorb(nil, []string{fmt.Sprintf("e%d", arg%5)})
		return fmt.Sprintf("ext %v %v", node, err)
	case 1:
		// Legitimate FFIP delivery along a ring arc: the sender's boundary
		// state with its honest frozen snapshot.
		from := int(arg)%3 + 1
		to := from%3 + 1
		sender := st.views[from-1]
		bnd, ok := sender.Boundary(model.ProcID(from))
		if !ok {
			return "no boundary"
		}
		node, err := st.views[to-1].Absorb(
			[]run.Receipt{{From: bnd, Payload: sender.Snapshot()}}, nil)
		return fmt.Sprintf("legit %v %v", node, err)
	case 2:
		// Forged receipt: a From node the payload does not cover (or no
		// payload at all, or an out-of-range process). Absorb must reject it
		// with an error — never panic.
		v := st.views[int(arg)%3]
		forged := run.BasicNode{Proc: model.ProcID(int(arg)%5 - 1), Index: int(arg%7) + 50}
		var payload *run.Snapshot
		if arg%2 == 0 {
			payload = st.views[(int(arg)+1)%3].Snapshot()
		}
		node, err := v.Absorb([]run.Receipt{{From: forged, Payload: payload}}, nil)
		return fmt.Sprintf("forged %v %v", node, err)
	default:
		// Cross-network payload: a snapshot whose member vector has the
		// wrong shape. merge must reject it.
		v := st.views[int(arg)%3]
		node, err := v.Absorb([]run.Receipt{{From: run.BasicNode{Proc: 1, Index: 0},
			Payload: st.decoy.Snapshot()}}, nil)
		return fmt.Sprintf("xnet %v %v", node, err)
	}
}

// digest summarizes the observable state of every view.
func (st *fuzzState) digest() string {
	out := ""
	for i, v := range st.views {
		out += fmt.Sprintf("view%d origin=%v size=%d deliveries=%d;", i, v.Origin(), v.Size(), v.DeliveryCount())
	}
	return out
}

// FuzzViewAbsorb drives View.Absorb with an arbitrary interleaving of
// legitimate deliveries, forged receipts and cross-network payloads. Two
// invariants: no input may panic the view (malformed receipts are typed
// errors), and the interpreter is deterministic — replaying the same ops on
// fresh views reproduces every step digest and the final state exactly.
func FuzzViewAbsorb(f *testing.F) {
	f.Add([]byte{0, 1, 4, 2, 8, 3, 1, 0, 2, 2, 3, 9})
	f.Add([]byte{1, 0, 1, 1, 1, 2, 0, 0, 0, 1, 0, 2})
	f.Add([]byte{2, 0, 2, 3, 2, 6, 3, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			return // keep individual executions cheap
		}
		a, b := newFuzzState(), newFuzzState()
		for i := 0; i+1 < len(data); i += 2 {
			ra := a.step(data[i], data[i+1])
			rb := b.step(data[i], data[i+1])
			if ra != rb {
				t.Fatalf("step %d diverged:\n %s\n %s", i/2, ra, rb)
			}
		}
		if da, db := a.digest(), b.digest(); da != db {
			t.Fatalf("final state diverged:\n %s\n %s", da, db)
		}
	})
}
