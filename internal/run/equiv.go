package run

import (
	"fmt"
	"sort"
)

// SameView checks indistinguishability at sigma: r1 ~sigma r2 (Section 4.1).
// Under an FFIP, sigma's local state is determined by the structure of its
// causal past — which nodes it contains, which deliveries wired them
// together and which external inputs arrived — independent of real time.
// SameView verifies that sigma appears in both runs with structurally
// identical pasts and returns a descriptive error at the first difference.
func SameView(r1, r2 *Run, sigma BasicNode) error {
	if !r1.Appears(sigma) {
		return fmt.Errorf("run: %s does not appear in first run", sigma)
	}
	if !r2.Appears(sigma) {
		return fmt.Errorf("run: %s does not appear in second run", sigma)
	}
	p1, err := r1.Past(sigma)
	if err != nil {
		return err
	}
	p2, err := r2.Past(sigma)
	if err != nil {
		return err
	}
	if !p1.Equal(p2) {
		return fmt.Errorf("run: past(%s) differs: %d vs %d nodes", sigma, p1.Size(), p2.Size())
	}
	for _, node := range p1.Nodes() {
		in1 := senders(r1, node)
		in2 := senders(r2, node)
		if len(in1) != len(in2) {
			return fmt.Errorf("run: node %s inbox size differs: %d vs %d", node, len(in1), len(in2))
		}
		for i := range in1 {
			if in1[i] != in2[i] {
				return fmt.Errorf("run: node %s inbox differs: %s vs %s", node, in1[i], in2[i])
			}
		}
		ex1 := labels(r1, node)
		ex2 := labels(r2, node)
		if len(ex1) != len(ex2) {
			return fmt.Errorf("run: node %s externals differ: %v vs %v", node, ex1, ex2)
		}
		for i := range ex1 {
			if ex1[i] != ex2[i] {
				return fmt.Errorf("run: node %s externals differ: %v vs %v", node, ex1, ex2)
			}
		}
	}
	return nil
}

func senders(r *Run, node BasicNode) []BasicNode {
	ds := r.Inbox(node)
	out := make([]BasicNode, len(ds))
	for i, d := range ds {
		out[i] = d.From
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Index < out[j].Index
	})
	return out
}

func labels(r *Run, node BasicNode) []string {
	es := r.ExternalsAt(node)
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Label
	}
	sort.Strings(out)
	return out
}
