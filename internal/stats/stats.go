// Package stats provides the small summary-statistics helpers used by the
// experiment harness to report sweep results.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Stddev  float64
	P50, P90, P99 float64
}

// Summarize computes a Summary; it returns a zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SummarizeInts is Summarize over integer samples.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f p50=%.1f mean=%.2f p90=%.1f max=%.1f sd=%.2f",
		s.N, s.Min, s.P50, s.Mean, s.P90, s.Max, s.Stddev)
}

// Counter tallies labelled outcomes.
type Counter struct {
	counts map[string]int
	order  []string
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Add increments a label.
func (c *Counter) Add(label string) {
	if _, ok := c.counts[label]; !ok {
		c.order = append(c.order, label)
	}
	c.counts[label]++
}

// Get returns a label's count.
func (c *Counter) Get(label string) int { return c.counts[label] }

// Total returns the sum of all counts.
func (c *Counter) Total() int {
	t := 0
	for _, v := range c.counts {
		t += v
	}
	return t
}

// String renders counts in first-seen order.
func (c *Counter) String() string {
	parts := make([]string, 0, len(c.order))
	for _, l := range c.order {
		parts = append(parts, fmt.Sprintf("%s=%d", l, c.counts[l]))
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += " " + p
	}
	return out
}
