package sweep

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

func fullGrid(workers int) Grid {
	return Grid{
		Scenarios: scenario.All(scenario.Registry(0)),
		Policies:  DefaultPolicies(),
		Seeds:     []int64{1, 2, 3},
		Workers:   workers,
	}
}

// TestRunReproducibleAcrossWorkerCounts pins the sweep contract: the result
// slice over the full registry is identical whether cells run sequentially
// or across GOMAXPROCS workers.
func TestRunReproducibleAcrossWorkerCounts(t *testing.T) {
	seq, err := fullGrid(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := fullGrid(runtime.GOMAXPROCS(0)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("cell %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("cell %d differs:\n  1 worker:  %+v\n  parallel:  %+v", i, seq[i], par[i])
		}
	}
	if !reflect.DeepEqual(Summarize(seq), Summarize(par)) {
		t.Error("aggregates differ across worker counts")
	}
}

// TestRunEnumerationOrder checks results come back scenario-major, then
// policy, then seed, independent of scheduling.
func TestRunEnumerationOrder(t *testing.T) {
	g := fullGrid(0)
	results, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != g.Size() {
		t.Fatalf("got %d results, want %d", len(results), g.Size())
	}
	i := 0
	for _, sc := range g.Scenarios {
		for _, pol := range g.Policies {
			for _, seed := range g.Seeds {
				res := results[i]
				if res.Scenario != sc.Name || res.Policy != pol.Name || res.Seed != seed {
					t.Fatalf("result %d is (%s,%s,%d), want (%s,%s,%d)",
						i, res.Scenario, res.Policy, res.Seed, sc.Name, pol.Name, seed)
				}
				i++
			}
		}
	}
}

// TestRunOutcomes sanity-checks the aggregated metrics on a known scenario:
// figure2b coordinates under every policy, and lazy delivery acts no
// earlier than eager.
func TestRunOutcomes(t *testing.T) {
	reg := scenario.Registry(0)
	g := Grid{
		Scenarios: []*scenario.Scenario{reg["figure2b"]},
		Policies:  DefaultPolicies(),
		Seeds:     []int64{1, 2, 3, 4},
	}
	results, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	aggs := Summarize(results)
	if len(aggs) != len(g.Policies) {
		t.Fatalf("got %d aggregates, want %d", len(aggs), len(g.Policies))
	}
	byPolicy := make(map[string]Aggregate)
	for _, a := range aggs {
		if a.Errors != 0 {
			t.Fatalf("%s/%s: %d errors", a.Scenario, a.Policy, a.Errors)
		}
		if a.Acted != a.TaskRuns {
			t.Errorf("%s/%s: acted %d/%d, want all", a.Scenario, a.Policy, a.Acted, a.TaskRuns)
		}
		byPolicy[a.Policy] = a
	}
	if e, l := byPolicy["eager"], byPolicy["lazy"]; e.Gap.Mean > l.Gap.Mean {
		t.Errorf("eager gap %.2f > lazy gap %.2f", e.Gap.Mean, l.Gap.Mean)
	}
}

// TestRunLiveCells pins the live grid dimension: live cells enumerate after
// the sim cells (scenario-major, policy, seed), report under the default
// live mode ("replay") with per-agent tallies and streaming counters, and —
// because every Protocol2 agent must agree with the offline analysis — the
// number of acting agents matches RunOptimal on the same recorded runs. The
// whole block runs through ONE NetworkEngine per network, across workers,
// so this also exercises concurrent runs of a shared engine.
func TestRunLiveCells(t *testing.T) {
	reg := scenario.Registry(0)
	g := Grid{
		Scenarios: []*scenario.Scenario{reg["figure2b"]},
		Live:      []*scenario.Scenario{reg["coord-m2"], reg["coord-m4"]},
		Policies:  DefaultPolicies(),
		Seeds:     []int64{1, 2},
		Workers:   4,
	}
	results, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != g.Size() {
		t.Fatalf("got %d results, want %d", len(results), g.Size())
	}
	nSim := len(g.Scenarios) * len(g.Policies) * len(g.Seeds)
	i := nSim
	for _, sc := range g.Live {
		for _, pol := range g.Policies {
			for _, seed := range g.Seeds {
				res := results[i]
				if res.Scenario != sc.Name || res.Policy != pol.Name || res.Seed != seed || res.Mode != ModeReplay {
					t.Fatalf("result %d is (%s,%s,%d,%s), want replay (%s,%s,%d)",
						i, res.Scenario, res.Policy, res.Seed, res.Mode, sc.Name, pol.Name, seed)
				}
				if res.Err != nil {
					t.Fatalf("live cell %d failed: %v", i, res.Err)
				}
				if res.Agents != len(sc.Tasks) {
					t.Fatalf("cell %d hosts %d agents, want %d", i, res.Agents, len(sc.Tasks))
				}
				if res.ReplayBatches == 0 || res.ReplayChunks == 0 {
					t.Fatalf("cell %d reports no replay streaming counters: %d/%d",
						i, res.ReplayBatches, res.ReplayChunks)
				}
				// Cross-check the acting-agent count against the offline
				// optimum on a fresh simulation of the same cell.
				r, err := sc.Simulate(pol.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				wantActed := 0
				for j := range sc.Tasks {
					out, err := sc.Tasks[j].RunOptimal(r)
					if err != nil {
						t.Fatal(err)
					}
					if out.Acted {
						wantActed++
					}
				}
				if res.AgentsActed != wantActed {
					t.Fatalf("cell %d: %d agents acted, offline says %d", i, res.AgentsActed, wantActed)
				}
				i++
			}
		}
	}
	aggs := Summarize(results)
	var liveRows int
	for _, a := range aggs {
		if a.Mode == ModeReplay {
			liveRows++
			if a.AgentRuns == 0 {
				t.Fatalf("live aggregate %s/%s has no agent runs", a.Scenario, a.Policy)
			}
			if a.ReplayBatches == 0 || a.ReplayChunks == 0 {
				t.Fatalf("replay aggregate %s/%s carries no streaming counters", a.Scenario, a.Policy)
			}
		}
	}
	if want := len(g.Live) * len(g.Policies); liveRows != want {
		t.Fatalf("got %d replay aggregate rows, want %d", liveRows, want)
	}
}

// TestRunLiveModesAgree is the sweep-level differential: the same live grid
// run under the goroutine environment and the goroutine-free replay drive
// must produce cell-for-cell identical results — shapes, actions, prefix
// routing, reverse-cache counters — differing only in the reported mode and
// the replay streaming counters. Unknown modes are rejected up front.
func TestRunLiveModesAgree(t *testing.T) {
	reg := scenario.Registry(0)
	mk := func(mode string) Grid {
		return Grid{
			Live:     []*scenario.Scenario{reg["coord-m2"], reg["coord-m4"]},
			LiveMode: mode,
			Policies: DefaultPolicies(),
			Seeds:    []int64{1, 2},
			Workers:  4,
		}
	}
	replay, err := mk("").Run()
	if err != nil {
		t.Fatal(err)
	}
	goroutine, err := mk(ModeLive).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(goroutine) {
		t.Fatalf("result counts differ: %d vs %d", len(replay), len(goroutine))
	}
	for i := range replay {
		r, g := replay[i], goroutine[i]
		if r.Err != nil || g.Err != nil {
			t.Fatalf("cell %d failed: replay=%v goroutine=%v", i, r.Err, g.Err)
		}
		if r.Mode != ModeReplay || g.Mode != ModeLive {
			t.Fatalf("cell %d modes: %q vs %q", i, r.Mode, g.Mode)
		}
		if r.ReplayBatches == 0 || g.ReplayBatches != 0 {
			t.Fatalf("cell %d replay counters: replay=%d goroutine=%d", i, r.ReplayBatches, g.ReplayBatches)
		}
		// Everything else must coincide exactly.
		r.Mode, r.ReplayBatches, r.ReplayChunks = "", 0, 0
		g.Mode, g.ReplayBatches, g.ReplayChunks = "", 0, 0
		if !reflect.DeepEqual(r, g) {
			t.Errorf("cell %d differs:\n  replay:    %+v\n  goroutine: %+v", i, r, g)
		}
	}
	if _, err := mk("threads").Run(); err == nil {
		t.Error("unknown live mode accepted")
	}
}

// TestRunLiveReproducibleAcrossWorkerCounts extends the determinism
// contract to live cells: one shared engine per network must not let worker
// scheduling leak into results.
func TestRunLiveReproducibleAcrossWorkerCounts(t *testing.T) {
	reg := scenario.Registry(0)
	mk := func(workers int) Grid {
		return Grid{
			Live:     []*scenario.Scenario{reg["coord-m2"]},
			Policies: DefaultPolicies(),
			Seeds:    []int64{1, 2, 3},
			Workers:  workers,
		}
	}
	seq, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := mk(runtime.GOMAXPROCS(0)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("live cells differ across worker counts:\n  1 worker: %+v\n  parallel: %+v", seq, par)
	}
}

// TestRunPrefixSharing pins the standing-prefix routing of deterministic
// live cells: per (scenario, deterministic policy), the first seed builds
// and freezes the run's standing graph (miss) and every later seed stamps
// it (hit); seed-sensitive policies bypass the cache; the engine report's
// totals agree with the per-cell tallies; and the aggregates carry the
// group counts.
func TestRunPrefixSharing(t *testing.T) {
	reg := scenario.Registry(0)
	g := Grid{
		Live:     []*scenario.Scenario{reg["coord-m2"], reg["coord-m4"]},
		Policies: DefaultPolicies(),
		Seeds:    []int64{1, 2, 3},
		Workers:  4,
	}
	results, report, err := g.RunWithEngines()
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := 0, 0
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("cell %d failed: %v", i, res.Err)
		}
		_, spec, _, _ := g.decode(i)
		switch {
		case !spec.Deterministic:
			if res.Prefix != "" {
				t.Fatalf("cell %d (%s): seed-sensitive policy reports prefix %q", i, res.Policy, res.Prefix)
			}
		case i%len(g.Seeds) == 0:
			// First seed of each (scenario, policy): distinct runs per
			// deterministic policy on these scenarios, so each builds afresh.
			if res.Prefix != PrefixMiss {
				t.Fatalf("cell %d (%s/%s seed %d): prefix %q, want miss",
					i, res.Scenario, res.Policy, res.Seed, res.Prefix)
			}
			misses++
		default:
			if res.Prefix != PrefixHit {
				t.Fatalf("cell %d (%s/%s seed %d): prefix %q, want hit",
					i, res.Scenario, res.Policy, res.Seed, res.Prefix)
			}
			hits++
		}
	}
	if report.Networks != 2 {
		t.Fatalf("report covers %d networks, want 2", report.Networks)
	}
	if int(report.Stats.PrefixHits) != hits || int(report.Stats.PrefixMisses) != misses {
		t.Fatalf("report %d/%d hits/misses, cells say %d/%d",
			report.Stats.PrefixHits, report.Stats.PrefixMisses, hits, misses)
	}
	if report.Stats.PrefixEvictions != 0 {
		t.Fatalf("%d evictions on a small grid", report.Stats.PrefixEvictions)
	}
	if want := int64(g.Size()); report.Stats.Runs != want {
		t.Fatalf("report stamped %d runs, want %d", report.Stats.Runs, want)
	}
	if report.Stats.Relaxations == 0 || report.Stats.CloneBytes == 0 {
		t.Fatal("work counters stayed zero across a live sweep")
	}
	for _, a := range Summarize(results) {
		if a.Mode != ModeReplay {
			continue
		}
		if a.Policy == "random" || a.Policy == "heavy" {
			if a.PrefixHits != 0 || a.PrefixMisses != 0 {
				t.Fatalf("%s/%s: seed-sensitive aggregate counts cache traffic", a.Scenario, a.Policy)
			}
			continue
		}
		if a.PrefixMisses != 1 || a.PrefixHits != len(g.Seeds)-1 {
			t.Fatalf("%s/%s: %d hits / %d misses, want %d/1",
				a.Scenario, a.Policy, a.PrefixHits, a.PrefixMisses, len(g.Seeds)-1)
		}
	}
}

func TestRunEmptyGrid(t *testing.T) {
	if _, err := (Grid{}).Run(); !errors.Is(err, ErrEmptyGrid) {
		t.Errorf("got %v, want ErrEmptyGrid", err)
	}
}

func TestRunRejectsNilScenario(t *testing.T) {
	g := Grid{
		Scenarios: []*scenario.Scenario{nil},
		Policies:  DefaultPolicies(),
		Seeds:     []int64{1},
	}
	if _, err := g.Run(); err == nil {
		t.Error("nil scenario accepted")
	}
}

// TestCellRecordsErrors checks a failing cell is reported in-place instead
// of aborting the sweep.
func TestCellRecordsErrors(t *testing.T) {
	reg := scenario.Registry(0)
	bad := Grid{
		Scenarios: []*scenario.Scenario{reg["figure1"]},
		Policies: []PolicySpec{{
			Name: "broken",
			New: func(int64) sim.Policy {
				return sim.Func{ID: "broken", F: func(sim.Send, model.Bounds) int { return -1 }}
			},
		}},
		Seeds: []int64{1},
	}
	results, err := bad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("broken policy not reported: %+v", results)
	}
	aggs := Summarize(results)
	if len(aggs) != 1 || aggs[0].Errors != 1 {
		t.Errorf("aggregate errors = %+v, want 1", aggs)
	}
}

func TestTableDeterministic(t *testing.T) {
	results, err := fullGrid(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	tab := Table(Summarize(results))
	if !strings.Contains(tab, "figure2b") || !strings.Contains(tab, "lazy") {
		t.Fatalf("table missing expected rows:\n%s", tab)
	}
	results2, err := fullGrid(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if tab2 := Table(Summarize(results2)); tab != tab2 {
		t.Error("two sweeps rendered different tables")
	}
}
