// Package coord implements the paper's timed coordination tasks
// (Definition 1) and their solutions:
//
//   - Late<a --x--> b>: B performs b at least x time units after A performs
//     a; Early<b --x--> a>: B performs b at least x time units before.
//     In both, A acts unconditionally when it receives the "go" message
//     that C sends upon a spontaneous external input, and B may act only
//     in runs where a is performed.
//   - Protocol 2, the knowledge-optimal protocol for B: act at the first
//     local state sigma that recognizes C's send node and knows the
//     required timed precedence — equivalently (Theorem 4), at the first
//     sigma from which a sigma-visible zigzag pattern of sufficient weight
//     exists.
//   - An asynchronous baseline that reasons with happened-before only
//     (message-chain lower bounds, no upper bounds): the strongest protocol
//     available in Lamport's asynchronous model. It solves Late only by
//     waiting for a message chain from a, and can never solve Early.
package coord

import (
	"errors"
	"fmt"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// Kind selects between the two coordination problems of Definition 1.
type Kind int

// The coordination task kinds.
const (
	// Late is Late<a --x--> b>: b at least x after a.
	Late Kind = iota + 1
	// Early is Early<b --x--> a>: b at least x before a.
	Early
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Late:
		return "Late"
	case Early:
		return "Early"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Task is one instance of a coordination problem.
type Task struct {
	Kind Kind
	// X is the required separation in time units (may be negative: a
	// negative bound expresses an upper bound on how much later/earlier).
	X int
	// A performs a upon receiving C's "go" message; B decides when (and
	// whether) to perform b; C spontaneously sends "go" to A.
	A, B, C model.ProcID
	// GoTime is when the external mu_go input reaches C.
	GoTime model.Time
	// GoLabel names the external input (defaults to "go").
	GoLabel string
}

// Errors reported by task evaluation.
var (
	ErrNoGo         = errors.New("coord: C never receives the go input")
	ErrNoA          = errors.New("coord: go message never delivered to A within horizon")
	ErrSpecViolated = errors.New("coord: action violates the task specification")
)

func (t Task) label() string {
	if t.GoLabel == "" {
		return "go"
	}
	return t.GoLabel
}

// Wiring locates the task's fixed points in a run: the node sigma_C at
// which C receives mu_go (and floods, in particular sending "go" to A), the
// general node sigma_C . A at which A receives it and performs a, and a's
// basic node and time.
type Wiring struct {
	SigmaC run.BasicNode
	ANode  run.GeneralNode
	ABasic run.BasicNode
	ATime  model.Time
}

// Wire resolves the task against a run.
func (t Task) Wire(r *run.Run) (*Wiring, error) {
	var sigmaC run.BasicNode
	found := false
	for _, e := range r.Externals() {
		if e.To.Proc == t.C && e.Time == t.GoTime && e.Label == t.label() {
			sigmaC = e.To
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %q at %d", ErrNoGo, t.label(), t.GoTime)
	}
	if !r.Net().HasChan(t.C, t.A) {
		return nil, fmt.Errorf("coord: no channel C=%d -> A=%d", t.C, t.A)
	}
	aNode := run.At(sigmaC).Hop(t.A)
	aBasic, err := r.Resolve(aNode)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoA, err)
	}
	aTime, err := r.Time(aBasic)
	if err != nil {
		return nil, err
	}
	return &Wiring{SigmaC: sigmaC, ANode: aNode, ABasic: aBasic, ATime: aTime}, nil
}

// AuditAct checks, after the fact, that performing b at actTime satisfied
// the task specification on the (possibly fault-injected) run that actually
// happened. It is the safety oracle of the chaos sweeps: an agent whose
// knowledge engine is sound never fails the audit, even when the
// environment violated its bounds — a degraded-mode agent withholds instead
// of acting, and an act that did happen was decided strictly before the
// agent's taint frontier, where its view contained honest material only.
func (t Task) AuditAct(r *run.Run, actTime model.Time) error {
	w, err := t.Wire(r)
	if err != nil {
		return fmt.Errorf("%w: b performed but a's wiring failed: %v", ErrSpecViolated, err)
	}
	gap := int(actTime - w.ATime)
	switch t.Kind {
	case Late:
		if gap < t.X {
			return fmt.Errorf("%w: %v requires b >= a+%d, got gap %d (a at %d, b at %d)",
				ErrSpecViolated, t.Kind, t.X, gap, w.ATime, actTime)
		}
	case Early:
		if -gap < t.X {
			return fmt.Errorf("%w: %v requires b <= a-%d, got gap %d (a at %d, b at %d)",
				ErrSpecViolated, t.Kind, t.X, gap, w.ATime, actTime)
		}
	default:
		return fmt.Errorf("coord: unknown task kind %d", int(t.Kind))
	}
	return nil
}

// Simulate runs the task's scenario: the configured network under the given
// policy, with mu_go as the only external input.
func (t Task) Simulate(net *model.Network, policy sim.Policy, horizon model.Time) (*run.Run, error) {
	return sim.Simulate(sim.Config{
		Net:       net,
		Horizon:   horizon,
		Policy:    policy,
		Externals: sim.GoAt(t.C, t.GoTime, t.label()),
	})
}
