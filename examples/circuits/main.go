// Command circuits reproduces the paper's self-timed VLSI discussion
// (Section 6): an asynchronous pipeline with no clock, where wire and gate
// delay bounds sequence a datapath latch (A) before an output mux (B). It
// sweeps the required hold time and prints where coordination becomes
// infeasible — the crossover is exactly the fork weight
// L(logic cone) - U(latch wire).
package main

import (
	"fmt"
	"log"

	zigzag "github.com/clockless/zigzag"
)

func main() {
	const (
		ctrl   = zigzag.ProcID(1) // request source
		latch  = zigzag.ProcID(2) // datapath latch (A)
		stage1 = zigzag.ProcID(3) // gate stage
		stage2 = zigzag.ProcID(4) // gate stage
		mux    = zigzag.ProcID(5) // output mux (B)
	)
	net, err := zigzag.NewNetwork(5).
		Chan(ctrl, latch, 1, 2).    // latch-enable wire: delay in [1,2]
		Chan(ctrl, stage1, 2, 3).   // wire into the logic cone
		Chan(stage1, stage2, 3, 4). // gate delay
		Chan(stage2, mux, 3, 4).    // gate delay
		Build()
	if err != nil {
		log.Fatal(err)
	}
	coneLower := 2 + 3 + 3
	latchUpper := 2
	fmt.Printf("logic cone lower bound L = %d, latch wire upper bound U = %d\n", coneLower, latchUpper)
	fmt.Printf("fork weight (guaranteed hold) = %d\n\n", coneLower-latchUpper)
	fmt.Println("hold | eager | lazy | random | verdict")
	fmt.Println("-----+-------+------+--------+--------")
	for hold := 1; hold <= coneLower-latchUpper+2; hold++ {
		task := zigzag.Task{Kind: zigzag.Late, X: hold, A: latch, B: mux, C: ctrl, GoTime: 1}
		verdictByPolicy := make([]string, 0, 3)
		feasible := true
		for _, policy := range []zigzag.Policy{zigzag.EagerPolicy{}, zigzag.LazyPolicy{}, zigzag.NewRandomPolicy(3)} {
			r, err := task.Simulate(net, policy, 48)
			if err != nil {
				log.Fatal(err)
			}
			out, err := task.RunOptimal(r)
			if err != nil {
				log.Fatal(err)
			}
			if out.Acted {
				verdictByPolicy = append(verdictByPolicy, fmt.Sprintf("t=%d", out.ActTime))
			} else {
				verdictByPolicy = append(verdictByPolicy, "-")
				feasible = false
			}
		}
		verdict := "mux switches"
		if !feasible {
			verdict = "INFEASIBLE (hold exceeds fork weight)"
		}
		fmt.Printf("%4d | %-5s | %-4s | %-6s | %s\n",
			hold, verdictByPolicy[0], verdictByPolicy[1], verdictByPolicy[2], verdict)
	}
	fmt.Println("\nSelf-timed design uses exactly such forks in place of a clock tree;")
	fmt.Println("the paper asks whether richer zigzags could sequence circuits too (Section 6).")
}
