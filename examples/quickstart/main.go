// Command quickstart is the smallest end-to-end tour of the library: build
// the two-legged fork of the paper's Figure 1, simulate it, and watch B
// coordinate an action with A using nothing but channel bounds — no clocks,
// no A<->B communication.
package main

import (
	"fmt"
	"log"

	zigzag "github.com/clockless/zigzag"
)

func main() {
	// Processes: 1 = C (coordinator), 2 = A, 3 = B.
	const (
		c = zigzag.ProcID(1)
		a = zigzag.ProcID(2)
		b = zigzag.ProcID(3)
	)
	// C -> A is fast-ish (delivers within [1,3]); C -> B is slow (within
	// [8,12]). The gap L_CB - U_CA = 8 - 3 = 5 is timing information that
	// exists with no clock anywhere.
	net, err := zigzag.NewNetwork(3).
		Chan(c, a, 1, 3).
		Chan(c, b, 8, 12).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// The task: B must act at least 5 time units AFTER A (Late<a -5-> b>).
	task := zigzag.Task{Kind: zigzag.Late, X: 5, A: a, B: b, C: c, GoTime: 1}

	// Simulate under an adversarial environment (all deliveries as late as
	// allowed). Any policy within bounds gives the same guarantees.
	r, err := task.Simulate(net, zigzag.LazyPolicy{}, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(zigzag.RenderTimeline(r, map[zigzag.ProcID]string{c: "C", a: "A", b: "B"}, 20))

	// Run the knowledge-optimal protocol for B (Protocol 2 of the paper).
	out, err := task.RunOptimal(r)
	if err != nil {
		log.Fatal(err)
	}
	if !out.Acted {
		log.Fatal("B could not act — bounds too weak for x")
	}
	fmt.Printf("A acted at t=%d; B acted at t=%d (gap %d >= x=%d)\n",
		out.ATime, out.ActTime, out.Gap, task.X)
	fmt.Printf("B's knowledge at decision time: a happened at least %d units earlier.\n",
		out.KnownBound)
	fmt.Println("\nThe sigma-visible zigzag pattern justifying the action:")
	fmt.Print(zigzag.RenderZigzag(net, &out.Witness.Zigzag))

	// The witness is machine-checkable against the run.
	if err := out.Witness.VerifyVisible(r); err != nil {
		log.Fatalf("witness failed verification: %v", err)
	}
	fmt.Println("witness verified against the run ✔")
}
