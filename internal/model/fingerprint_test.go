package model

import "testing"

// TestNetworkFingerprint pins the content-hash contract behind the engine
// and prefix cache keys: structurally equal networks agree regardless of
// builder insertion order, any content change — size, wiring, either bound —
// separates the hashes, and no network hashes to the reserved 0.
func TestNetworkFingerprint(t *testing.T) {
	base, err := NewBuilder(3).Chan(1, 2, 1, 4).Chan(2, 3, 2, 5).Chan(3, 1, 1, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == 0 {
		t.Fatal("zero fingerprint")
	}
	reordered, err := NewBuilder(3).Chan(3, 1, 1, 1).Chan(1, 2, 1, 4).Chan(2, 3, 2, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != reordered.Fingerprint() {
		t.Fatal("insertion order changed the fingerprint")
	}
	variants := map[string]*Builder{
		"extra process":   NewBuilder(4).Chan(1, 2, 1, 4).Chan(2, 3, 2, 5).Chan(3, 1, 1, 1),
		"rewired channel": NewBuilder(3).Chan(1, 2, 1, 4).Chan(2, 3, 2, 5).Chan(3, 2, 1, 1),
		"lower changed":   NewBuilder(3).Chan(1, 2, 2, 4).Chan(2, 3, 2, 5).Chan(3, 1, 1, 1),
		"upper changed":   NewBuilder(3).Chan(1, 2, 1, 4).Chan(2, 3, 2, 6).Chan(3, 1, 1, 1),
		"extra channel":   NewBuilder(3).Chan(1, 2, 1, 4).Chan(2, 3, 2, 5).Chan(3, 1, 1, 1).Chan(1, 3, 1, 2),
	}
	for what, vb := range variants {
		v, err := vb.Build()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint did not change", what)
		}
	}
	if MustComplete(6, 1, 5).Fingerprint() != MustComplete(6, 1, 5).Fingerprint() {
		t.Error("equal canonical builds disagree")
	}
}
