// Package model defines the static substrate of the bounded communication
// model (bcm) of Dan, Manohar and Moses (PODC 2017): a directed communication
// network whose channels carry integer lower and upper bounds on message
// transmission time. Time is identified with the natural numbers; a single
// time step is the minimal relevant unit of time.
//
// The package is purely structural: it knows nothing about runs, protocols
// or schedulers. Those live in internal/run and internal/sim.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ProcID identifies a process. Processes are numbered 1..n as in the paper
// (Procs = {1, ..., n}); 0 is never a valid process.
type ProcID int

// Time is a point on the global (external) timeline. Processes in the bcm
// model have no access to it; it exists only for the environment, the
// analyst and the proofs.
type Time = int

// Infinity is a sentinel "no bound / unreachable" time value. It is chosen
// so that Infinity+Infinity does not overflow int64 arithmetic.
const Infinity = int(1) << 40

// Channel is a directed communication channel (i, j) in Chans.
type Channel struct {
	From ProcID
	To   ProcID
}

// String renders the channel as "i->j".
func (c Channel) String() string { return fmt.Sprintf("%d->%d", c.From, c.To) }

// Bounds is the pair (L, U) of transmission-time bounds for one channel,
// satisfying 1 <= L <= U < Infinity.
type Bounds struct {
	Lower int
	Upper int
}

// Valid reports whether the bounds satisfy the bcm requirement
// 1 <= L <= U < Infinity.
func (b Bounds) Valid() bool {
	return 1 <= b.Lower && b.Lower <= b.Upper && b.Upper < Infinity
}

// String renders the bounds as "[L,U]".
func (b Bounds) String() string { return fmt.Sprintf("[%d,%d]", b.Lower, b.Upper) }

// ChanID is the dense integer id of a channel. Once a network is built its
// channels are numbered 0..NumChannels()-1 in (From, To) lexicographic order;
// the ids are stable for the network's lifetime and index flat per-channel
// tables (BoundsOf, ChannelOf), so hot loops resolve channel metadata with an
// O(1) slice load instead of a map probe.
type ChanID int32

// NoChan is the "no such channel" sentinel id.
const NoChan ChanID = -1

// Arc is one directed channel in dense form: its id, endpoints and bounds.
// The per-process arc slices returned by OutArcs carry everything the
// simulator's flooding loop needs in one contiguous read.
type Arc struct {
	ID     ChanID
	From   ProcID
	To     ProcID
	Bounds Bounds
}

// Network is a time-bounded communication network Net = (Procs, Chans)
// together with the bound functions L, U : Chans -> N. It is immutable once
// built via a Builder (or the convenience constructors); all accessors are
// safe for concurrent use.
//
// Internally the network is a dense, channel-indexed structure: arcs holds
// every channel sorted by (From, To) — so a channel's ChanID doubles as its
// index — and outOff/inOff are CSR-style offset tables slicing the flat
// adjacency arrays per process. The historical map-flavoured API (HasChan,
// ChanBounds, Lower, Upper) is retained as thin wrappers over ChanIDOf.
type Network struct {
	n    int
	arcs []Arc // sorted by (From, To); arcs[id].ID == ChanID(id)

	// CSR out-adjacency: process p's arcs are arcs[outOff[p-1]:outOff[p]],
	// and outTo is the aligned destination column (sorted per process).
	outOff []int32
	outTo  []ProcID

	// CSR in-adjacency: process p's incoming arc ids are
	// inIDs[inOff[p-1]:inOff[p]], with inFrom the aligned source column
	// (sorted per process).
	inOff  []int32
	inIDs  []ChanID
	inFrom []ProcID

	channels []Channel // aligned with arcs, for Channels()
	maxUpper int
	minLower int

	// fingerprint is the content hash of the network (see Fingerprint).
	fingerprint uint64
}

// FNV-1a parameters of the content fingerprints. The same mixing constants
// are used by internal/run's event fingerprints, so the two hash families
// compose into the content-addressed prefix keys of bounds.NewRunAt.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a hash, byte by byte.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// Errors returned by network construction and path queries.
var (
	ErrNoChannel   = errors.New("model: no such channel")
	ErrBadBounds   = errors.New("model: bounds must satisfy 1 <= L <= U")
	ErrBadProc     = errors.New("model: process ids must lie in 1..n")
	ErrSelfLoop    = errors.New("model: self-loop channels are not allowed")
	ErrDupChannel  = errors.New("model: duplicate channel")
	ErrEmptyPath   = errors.New("model: path must contain at least one process")
	ErrBrokenPath  = errors.New("model: path uses a non-existent channel")
	ErrNoProcesses = errors.New("model: network needs at least one process")
)

// Builder accumulates processes and channels and produces an immutable
// Network. The zero value is not usable; call NewBuilder.
type Builder struct {
	n     int
	chans map[Channel]Bounds
	err   error
}

// NewBuilder returns a Builder for a network over processes 1..n.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, chans: make(map[Channel]Bounds)}
}

// Chan adds the directed channel from -> to with bounds [lower, upper].
// Errors are latched and reported by Build.
func (b *Builder) Chan(from, to ProcID, lower, upper int) *Builder {
	if b.err != nil {
		return b
	}
	switch {
	case from < 1 || int(from) > b.n || to < 1 || int(to) > b.n:
		b.err = fmt.Errorf("%w: channel %d->%d in network of size %d", ErrBadProc, from, to, b.n)
	case from == to:
		b.err = fmt.Errorf("%w: %d->%d", ErrSelfLoop, from, to)
	default:
		ch := Channel{From: from, To: to}
		if _, dup := b.chans[ch]; dup {
			b.err = fmt.Errorf("%w: %s", ErrDupChannel, ch)
			return b
		}
		bd := Bounds{Lower: lower, Upper: upper}
		if !bd.Valid() {
			b.err = fmt.Errorf("%w: channel %s has %s", ErrBadBounds, ch, bd)
			return b
		}
		b.chans[ch] = bd
	}
	return b
}

// BiChan adds both directions with the same bounds.
func (b *Builder) BiChan(p, q ProcID, lower, upper int) *Builder {
	return b.Chan(p, q, lower, upper).Chan(q, p, lower, upper)
}

// Build finalizes the network: channels are sorted by (From, To), assigned
// their dense ChanIDs and laid out into the flat arc and CSR offset tables.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.n < 1 {
		return nil, ErrNoProcesses
	}
	n := b.n
	m := len(b.chans)
	net := &Network{
		n:        n,
		arcs:     make([]Arc, 0, m),
		outOff:   make([]int32, n+1),
		outTo:    make([]ProcID, m),
		inOff:    make([]int32, n+1),
		inIDs:    make([]ChanID, m),
		inFrom:   make([]ProcID, m),
		channels: make([]Channel, 0, m),
		minLower: Infinity,
	}
	for ch, bd := range b.chans {
		net.arcs = append(net.arcs, Arc{From: ch.From, To: ch.To, Bounds: bd})
		if bd.Upper > net.maxUpper {
			net.maxUpper = bd.Upper
		}
		if bd.Lower < net.minLower {
			net.minLower = bd.Lower
		}
	}
	sort.Slice(net.arcs, func(i, j int) bool {
		if net.arcs[i].From != net.arcs[j].From {
			return net.arcs[i].From < net.arcs[j].From
		}
		return net.arcs[i].To < net.arcs[j].To
	})
	// Assign ids, fill the aligned columns and count degrees.
	inDeg := make([]int32, n+1)
	for i := range net.arcs {
		a := &net.arcs[i]
		a.ID = ChanID(i)
		net.outTo[i] = a.To
		net.channels = append(net.channels, Channel{From: a.From, To: a.To})
		net.outOff[a.From]++
		inDeg[a.To]++
	}
	for p := 1; p <= n; p++ {
		net.outOff[p] += net.outOff[p-1]
		net.inOff[p] = net.inOff[p-1] + inDeg[p]
	}
	// Fill in-adjacency. Arcs are From-major with ascending To, so for a
	// fixed destination the sources arrive in ascending order and each
	// per-process segment of inFrom ends up sorted.
	next := make([]int32, n)
	copy(next, net.inOff[:n])
	for i := range net.arcs {
		a := &net.arcs[i]
		slot := next[a.To-1]
		next[a.To-1]++
		net.inIDs[slot] = a.ID
		net.inFrom[slot] = a.From
	}
	// Content fingerprint over the canonical (sorted) arc list: two Build
	// calls over equal topologies produce equal fingerprints no matter how
	// the channels were declared.
	h := fnvMix(fnvOffset, uint64(n))
	for _, a := range net.arcs {
		h = fnvMix(h, uint64(a.From))
		h = fnvMix(h, uint64(a.To))
		h = fnvMix(h, uint64(a.Bounds.Lower))
		h = fnvMix(h, uint64(a.Bounds.Upper))
	}
	if h == 0 {
		h = 1 // 0 is the "no fingerprint" sentinel of the consumers
	}
	net.fingerprint = h
	return net, nil
}

// MustBuild is Build that panics on error; intended for tests and fixtures.
func (b *Builder) MustBuild() *Network {
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	return net
}

// N returns the number of processes.
func (net *Network) N() int { return net.n }

// Fingerprint returns the network's content hash: a 64-bit FNV-1a digest of
// the process count and every channel's (from, to, lower, upper) in canonical
// ChanID order. Structurally equal networks — however and whenever they were
// built — share a fingerprint, so caches keyed by it (the sweep engine map,
// the prefix hash's network component in bounds) deduplicate topologies that
// pointer identity would miss. It is never zero.
func (net *Network) Fingerprint() uint64 { return net.fingerprint }

// Procs returns the process ids 1..n in order.
func (net *Network) Procs() []ProcID {
	ps := make([]ProcID, net.n)
	for i := range ps {
		ps[i] = ProcID(i + 1)
	}
	return ps
}

// ValidProc reports whether p is a process of this network.
func (net *Network) ValidProc(p ProcID) bool { return p >= 1 && int(p) <= net.n }

// ChanIDOf returns the dense id of channel from -> to, or NoChan if the
// channel (or either process) does not exist. The lookup is a binary search
// over the process's sorted out-arc segment — no map, no allocation.
func (net *Network) ChanIDOf(from, to ProcID) ChanID {
	if !net.ValidProc(from) || !net.ValidProc(to) {
		return NoChan
	}
	lo, hi := net.outOff[from-1], net.outOff[from]
	seg := net.outTo[lo:hi]
	i := sort.Search(len(seg), func(k int) bool { return seg[k] >= to })
	if i < len(seg) && seg[i] == to {
		return ChanID(lo + int32(i))
	}
	return NoChan
}

// BoundsOf returns the bounds of a channel by id. The id must be valid
// (obtained from ChanIDOf, OutArcs or a Run's deliveries).
func (net *Network) BoundsOf(id ChanID) Bounds { return net.arcs[id].Bounds }

// ChannelOf returns the (from, to) pair of a channel by id.
func (net *Network) ChannelOf(id ChanID) Channel { return net.channels[id] }

// Arcs returns every channel in dense form, ordered by id (equivalently by
// (From, To)). The returned slice is shared; callers must not mutate it.
func (net *Network) Arcs() []Arc { return net.arcs }

// OutArcs returns process p's outgoing channels as a contiguous arc slice,
// sorted by destination. The returned slice is shared; callers must not
// mutate it.
func (net *Network) OutArcs(p ProcID) []Arc {
	if !net.ValidProc(p) {
		return nil
	}
	return net.arcs[net.outOff[p-1]:net.outOff[p]]
}

// InIDs returns the ids of process p's incoming channels, sorted by source.
// The returned slice is shared; callers must not mutate it.
func (net *Network) InIDs(p ProcID) []ChanID {
	if !net.ValidProc(p) {
		return nil
	}
	return net.inIDs[net.inOff[p-1]:net.inOff[p]]
}

// HasChan reports whether the directed channel from -> to exists.
func (net *Network) HasChan(from, to ProcID) bool {
	return net.ChanIDOf(from, to) != NoChan
}

// ChanBounds returns the bounds of channel from -> to.
func (net *Network) ChanBounds(from, to ProcID) (Bounds, error) {
	id := net.ChanIDOf(from, to)
	if id == NoChan {
		return Bounds{}, fmt.Errorf("%w: %d->%d", ErrNoChannel, from, to)
	}
	return net.arcs[id].Bounds, nil
}

// Lower returns L_{from,to}; it panics if the channel does not exist.
// Channel existence is a structural invariant the caller must hold — the
// in-tree callers all read bounds of deliveries a validated run or view
// already proved exist. Code handling unvalidated input (user-supplied
// plans, decoded traces, fuzzed paths) must use ChanBounds, which returns
// ErrNoChannel instead.
func (net *Network) Lower(from, to ProcID) int {
	bd, err := net.ChanBounds(from, to)
	if err != nil {
		panic(err)
	}
	return bd.Lower
}

// Upper returns U_{from,to}; it panics if the channel does not exist — the
// same invariant contract as Lower. ChanBounds is the error-returning API
// for unvalidated input.
func (net *Network) Upper(from, to ProcID) int {
	bd, err := net.ChanBounds(from, to)
	if err != nil {
		panic(err)
	}
	return bd.Upper
}

// Out returns the out-neighbours of p in ascending order. The returned slice
// is shared; callers must not mutate it.
func (net *Network) Out(p ProcID) []ProcID {
	if !net.ValidProc(p) {
		return nil
	}
	return net.outTo[net.outOff[p-1]:net.outOff[p]]
}

// In returns the in-neighbours of p in ascending order. The returned slice
// is shared; callers must not mutate it.
func (net *Network) In(p ProcID) []ProcID {
	if !net.ValidProc(p) {
		return nil
	}
	return net.inFrom[net.inOff[p-1]:net.inOff[p]]
}

// Channels returns all channels in deterministic (From, To) order, i.e. by
// ChanID. The returned slice is shared; callers must not mutate it.
func (net *Network) Channels() []Channel { return net.channels }

// NumChannels returns |Chans|.
func (net *Network) NumChannels() int { return len(net.arcs) }

// MaxUpper returns the largest upper bound over all channels (0 if none).
func (net *Network) MaxUpper() int { return net.maxUpper }

// MinLower returns the smallest lower bound over all channels
// (Infinity if the network has no channels).
func (net *Network) MinLower() int { return net.minLower }

// String renders a compact description such as
// "Net(n=3; 1->2[1,4] 1->3[2,2])".
func (net *Network) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Net(n=%d;", net.n)
	for _, a := range net.arcs {
		fmt.Fprintf(&sb, " %s%s", Channel{From: a.From, To: a.To}, a.Bounds)
	}
	sb.WriteString(")")
	return sb.String()
}
