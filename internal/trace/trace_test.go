package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

func TestNetworkRoundTrip(t *testing.T) {
	net := model.NewBuilder(3).Chan(1, 2, 2, 5).Chan(2, 3, 1, 1).Chan(3, 1, 4, 9).MustBuild()
	back, err := DecodeNetwork(EncodeNetwork(net))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != net.String() {
		t.Errorf("round trip: %s vs %s", back, net)
	}
}

func TestRunRoundTrip(t *testing.T) {
	sc := scenario.Figure2b(scenario.DefaultFigure2())
	r := sc.MustSimulate(sim.NewRandom(6))
	var buf bytes.Buffer
	if err := WriteRun(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structural identity: same deliveries, same node times, same verdicts.
	d1, d2 := r.Deliveries(), back.Deliveries()
	if len(d1) != len(d2) {
		t.Fatalf("deliveries %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("delivery %d: %v vs %v", i, d1[i], d2[i])
		}
	}
	// The loaded run supports the same coordination outcome.
	out1, err := sc.Task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := sc.Task.RunOptimal(back)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Acted != out2.Acted || out1.ActNode != out2.ActNode || out1.ActTime != out2.ActTime {
		t.Errorf("outcomes differ: %+v vs %+v", out1, out2)
	}
}

func TestDecodeRejectsIllegal(t *testing.T) {
	// Latency below the channel's lower bound.
	bad := `{
	  "network": {"procs": 2, "channels": [{"from":1,"to":2,"lower":3,"upper":5}]},
	  "horizon": 10,
	  "messages": [{"from":1,"to":2,"sent":1,"recv":2}],
	  "externals": [{"proc":1,"time":1,"label":"go"}]
	}`
	if _, err := ReadRun(strings.NewReader(bad)); err == nil {
		t.Fatal("illegal trace accepted")
	}
	// Missed deadline: node at 1 must flood by 6 within horizon 10.
	bad2 := `{
	  "network": {"procs": 2, "channels": [{"from":1,"to":2,"lower":3,"upper":5}]},
	  "horizon": 10,
	  "messages": [],
	  "externals": [{"proc":1,"time":1,"label":"go"}]
	}`
	if _, err := ReadRun(strings.NewReader(bad2)); err == nil {
		t.Fatal("deadline-violating trace accepted")
	}
	if _, err := ReadRun(strings.NewReader("{nonsense")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestEmptyRunRoundTrip(t *testing.T) {
	net := model.MustComplete(2, 1, 2)
	r, err := sim.Simulate(sim.Config{Net: net, Horizon: 5, Policy: sim.Eager{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRun(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 2 {
		t.Errorf("nodes = %d, want 2 initial", back.NumNodes())
	}
	if !back.Appears(run.BasicNode{Proc: 1, Index: 0}) {
		t.Error("initial node missing")
	}
}
