package sweep

import (
	"fmt"

	"github.com/clockless/zigzag/internal/scenario"
)

// RandomShape is one point of the random-topology axis: the size/density
// knobs of a generated scenario (scenario.Random).
type RandomShape struct {
	Procs, Extra int
	Seed         int64
}

// Axes parametrizes the scenario dimension of a sweep grid beyond the
// plain registry: required-separation overrides, channel-bound scaling
// factors and extra random-topology shapes. The zero value expands to the
// default registry — each axis left empty contributes its identity point.
// `zigzag-sim -sweep` surfaces the axes as -sweep-x, -sweep-scale and
// -sweep-rand.
type Axes struct {
	// Xs are task-separation overrides passed to scenario.Registry; 0 keeps
	// every scenario's default. Scenario copies for x != 0 are suffixed
	// "@x=<x>" so grid rows stay distinguishable.
	Xs []int
	// Scales are channel-bound scaling factors applied via
	// (*scenario.Scenario).ScaleBounds; 1 is the identity. Scaled copies
	// are suffixed "@s=<factor>".
	Scales []float64
	// Random appends generated topologies beyond the registry's canonical
	// random family.
	Random []RandomShape
	// MaxCoordM raises the registry's multi-agent coordination family
	// ceiling (scenario.RegistrySized); 0 keeps scenario.DefaultCoordM.
	MaxCoordM int
}

// Scenarios expands the axes into the grid's scenario list, in
// deterministic order: x-major, then the registry's sorted-name order plus
// the extra random shapes, then scale.
func (a Axes) Scenarios() ([]*scenario.Scenario, error) {
	xs := a.Xs
	if len(xs) == 0 {
		xs = []int{0}
	}
	scales := a.Scales
	if len(scales) == 0 {
		scales = []float64{1}
	}
	var out []*scenario.Scenario
	// Aggregation groups grid rows by scenario name, so a duplicate name —
	// e.g. a -sweep-rand triple repeating a canonical registry shape —
	// would silently pool two scenarios into one row. Reject it instead.
	seen := make(map[string]bool)
	for _, x := range xs {
		// MaxCoordM <= 0 means the default ceiling (RegistrySized).
		base := scenario.All(scenario.RegistrySized(x, a.MaxCoordM))
		for _, sh := range a.Random {
			if sh.Procs < 2 {
				return nil, fmt.Errorf("sweep: random shape needs >= 2 processes, got %d", sh.Procs)
			}
			base = append(base, scenario.Random(sh.Procs, sh.Extra, sh.Seed))
		}
		for _, sc := range base {
			for _, f := range scales {
				cell, err := sc.ScaleBounds(f)
				if err != nil {
					return nil, err
				}
				// A single-point x axis keeps the plain names (matching the
				// historical `-sweep -x n` output); rows only need the suffix
				// when several x values share one grid. XBase/XValue mark the
				// variant family so the grid can collapse the x axis of live
				// cells onto one batched execution per base scenario.
				if len(xs) > 1 {
					cp := *cell
					cp.Name = fmt.Sprintf("%s@x=%d", cell.Name, x)
					cp.XBase = cell.Name
					cp.XValue = x
					cell = &cp
				}
				if seen[cell.Name] {
					return nil, fmt.Errorf("sweep: duplicate grid scenario %q (random shapes must differ from the registry and each other)", cell.Name)
				}
				seen[cell.Name] = true
				out = append(out, cell)
			}
		}
	}
	return out, nil
}
