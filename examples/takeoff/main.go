// Command takeoff reproduces the paper's takeoff-scheduling motivation as an
// Early coordination instance: a feeder strip must launch its light aircraft
// at least x time units BEFORE a heavy jet rolls, to escape its wake. Acting
// before a future event is impossible in the asynchronous model; with
// transmission bounds it is a one-fork zigzag.
package main

import (
	"flag"
	"fmt"
	"log"

	zigzag "github.com/clockless/zigzag"
)

func main() {
	lead := flag.Int("lead", 4, "required lead x (launch at least x before the heavy rolls)")
	flag.Parse()

	const (
		tower  = zigzag.ProcID(1)
		heavy  = zigzag.ProcID(2)
		feeder = zigzag.ProcID(3)
	)
	// The tower's clearance reaches the heavy over a slow voice loop
	// ([9,14]) and the feeder over a fast teletype ([1,3]).
	net, err := zigzag.NewNetwork(3).
		Chan(tower, heavy, 9, 14).
		Chan(tower, feeder, 1, 3).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	names := map[zigzag.ProcID]string{tower: "TOWER", heavy: "HEAVY", feeder: "FEEDER"}
	task := zigzag.Task{Kind: zigzag.Early, X: *lead, A: heavy, B: feeder, C: tower, GoTime: 1}

	fmt.Printf("feasible lead = L_tower->heavy - U_tower->feeder = %d\n\n", 9-3)
	for _, policy := range []zigzag.Policy{zigzag.EagerPolicy{}, zigzag.LazyPolicy{}, zigzag.NewRandomPolicy(7)} {
		r, err := task.Simulate(net, policy, 40)
		if err != nil {
			log.Fatal(err)
		}
		out, err := task.RunOptimal(r)
		if err != nil {
			log.Fatal(err)
		}
		if !out.Acted {
			fmt.Printf("%-8s feeder cannot certify a %d-unit lead\n", policy.Name()+":", *lead)
			continue
		}
		fmt.Printf("%-8s feeder launched at t=%d, heavy rolled at t=%d — lead %d >= %d ✔\n",
			policy.Name()+":", out.ActTime, out.ATime, -out.Gap, *lead)
		base, err := task.RunBaseline(r)
		if err != nil {
			log.Fatal(err)
		}
		if base.Acted {
			log.Fatal("asynchronous baseline launched before a future event?!")
		}
	}
	fmt.Println("\nasynchronous baseline: never launches — without upper bounds, no protocol")
	fmt.Println("can guarantee acting BEFORE an event that has not happened yet (Section 1).")

	r, err := task.Simulate(net, zigzag.LazyPolicy{}, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(zigzag.RenderTimeline(r, names, 20))
}
