package bounds_test

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/bench"
	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

// driveRun replays the whole recorded run through a prefix-aware engine
// stamp: every observer state is differentially checked against a fresh
// build, exactly as the NetworkEngine acceptance test does.
func driveRun(t *testing.T, tag string, shared *bounds.Shared, r *run.Run, observers map[model.ProcID]bool, maxQueries int) {
	t.Helper()
	handles := make(map[model.ProcID]*bounds.Handle)
	d := newBatchDriver(t, r, observers)
	for {
		p, k, v, ok := d.step(t)
		if !ok {
			break
		}
		h := handles[p]
		if h == nil {
			h = mustHandle(t, shared, v)
			handles[p] = h
		}
		diffAgainstFresh(t, fmt.Sprintf("%s p%d#%d", tag, p, k), h, v, maxQueries)
	}
	for _, h := range handles {
		h.Release()
	}
}

// TestPrefixEngineMatchesFreshBuild is the standing-prefix tier's
// differential acceptance test: for EVERY scenario of the full registry
// (multi-agent family included up to m=16), a first run is stamped through
// NewRunAt on a cache miss, fully absorbed, and frozen with CommitPrefix;
// a second identical run then stamps the frozen prefix (cache hit) and is
// driven by a DIFFERENT observer set, so standing material beyond each
// agent's frontier — now present from the very first sync — must stay
// hidden behind the visibility masks. Every knowledge answer of both runs
// must match a fresh NewExtendedFromView build of the agent's own view at
// every state.
func TestPrefixEngineMatchesFreshBuild(t *testing.T) {
	reg := scenario.RegistrySized(0, 16)
	for _, name := range scenario.Names(reg) {
		sc := reg[name]
		if testing.Short() && sc.Net.N() > 8 {
			continue
		}
		maxQueries := 5
		if sc.Net.N() > 8 {
			maxQueries = 3
		}
		r, err := sc.Simulate(nil) // deterministic (eager) schedule
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fp := r.Fingerprint()
		if fp == 0 {
			t.Fatalf("%s: zero run fingerprint", name)
		}
		eng := bounds.NewNetworkEngine(sc.Net)
		procs := sc.Net.Procs()

		shared, hit := eng.NewRunAt(fp)
		if hit || shared.FromPrefix() {
			t.Fatalf("%s: first stamp reported a prefix hit", name)
		}
		missObservers := map[model.ProcID]bool{procs[0]: true, procs[len(procs)/2]: true}
		driveRun(t, name+" miss-run", shared, r, missObservers, maxQueries)
		if !shared.CommitPrefix() {
			t.Fatalf("%s: CommitPrefix did not commit after a miss", name)
		}
		if shared.CommitPrefix() {
			t.Fatalf("%s: second CommitPrefix committed again", name)
		}
		if !eng.Prefixes().Contains(fp) {
			t.Fatalf("%s: committed prefix not cached", name)
		}

		hitShared, hit := eng.NewRunAt(fp)
		if !hit || !hitShared.FromPrefix() {
			t.Fatalf("%s: second stamp missed the committed prefix", name)
		}
		hitObservers := map[model.ProcID]bool{procs[len(procs)-1]: true, procs[len(procs)/3]: true}
		driveRun(t, name+" hit-run", hitShared, r, hitObservers, maxQueries)
		if hitShared.CommitPrefix() {
			t.Fatalf("%s: a cache-hit run committed a prefix", name)
		}

		st := eng.Stats()
		if st.PrefixHits != 1 || st.PrefixMisses != 1 || st.Runs != 2 {
			t.Fatalf("%s: stats %+v, want 1 hit / 1 miss / 2 runs", name, st)
		}
	}
}

// TestPrefixEngineDonorSurvivesFreeze drives the DONOR run after its
// standing state was frozen and a sibling was stamped from the snapshot,
// interleaving both runs state by state. The donor keeps growing (new
// observers force chain vertices to be appended and rolled back above the
// frozen lengths) while the stamped sibling reads the frozen prefix — the
// freeze-and-extend aliasing must keep both byte-identical to fresh builds.
func TestPrefixEngineDonorSurvivesFreeze(t *testing.T) {
	sc := scenario.MultiAgent(4)
	r, err := sc.Simulate(nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := bounds.NewNetworkEngine(sc.Net)
	donor, hit := eng.NewRunAt(r.Fingerprint())
	if hit {
		t.Fatal("empty cache reported a hit")
	}
	procs := sc.Net.Procs()
	// Absorb only part of the run before freezing: the donor's later growth
	// and the stamped run's extension both exercise the aliased tables.
	partial := map[model.ProcID]bool{procs[0]: true}
	dh := make(map[model.ProcID]*bounds.Handle)
	d := newBatchDriver(t, r, partial)
	for {
		p, _, v, ok := d.step(t)
		if !ok {
			break
		}
		h := dh[p]
		if h == nil {
			h = mustHandle(t, donor, v)
			dh[p] = h
		}
		if err := h.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if !donor.CommitPrefix() {
		t.Fatal("CommitPrefix did not commit")
	}
	stamped, hit := eng.NewRunAt(r.Fingerprint())
	if !hit {
		t.Fatal("stamp after commit missed")
	}

	// Interleave: donor absorbs more observers (growing past the freeze)
	// while the stamped sibling extends the frozen prefix independently.
	donorObs := map[model.ProcID]bool{procs[1]: true, procs[2]: true}
	stampObs := map[model.ProcID]bool{procs[3]: true, procs[0]: true}
	type side struct {
		d       *batchDriver
		shared  *bounds.Shared
		handles map[model.ProcID]*bounds.Handle
	}
	sides := []*side{
		{d: newBatchDriver(t, r, donorObs), shared: donor, handles: dh},
		{d: newBatchDriver(t, r, stampObs), shared: stamped, handles: make(map[model.ProcID]*bounds.Handle)},
	}
	for live := 1; live > 0; {
		live = 0
		for i, s := range sides {
			p, k, v, ok := s.d.step(t)
			if !ok {
				continue
			}
			live++
			h := s.handles[p]
			if h == nil {
				h = mustHandle(t, s.shared, v)
				s.handles[p] = h
			}
			diffAgainstFresh(t, fmt.Sprintf("side %d p%d#%d", i, p, k), h, v, 4)
		}
	}
}

// TestPrefixEngineLRUEviction pins the cache policy: capacity bounds the
// retained prefixes, the least recently used entry is evicted first, and a
// lookup refreshes recency.
func TestPrefixEngineLRUEviction(t *testing.T) {
	sc := scenario.MultiAgent(2)
	eng := bounds.NewNetworkEngine(sc.Net)
	eng.Prefixes().SetCapacity(2)

	policies := []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(11)}
	fps := make([]uint64, len(policies))
	for i, pol := range policies {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = r.Fingerprint()
	}
	if fps[0] == fps[1] || fps[1] == fps[2] || fps[0] == fps[2] {
		t.Fatalf("test needs three distinct runs, got fingerprints %#x %#x %#x", fps[0], fps[1], fps[2])
	}

	commit := func(fp uint64) {
		t.Helper()
		s, hit := eng.NewRunAt(fp)
		if hit {
			t.Fatalf("unexpected hit for %#x", fp)
		}
		if !s.CommitPrefix() {
			t.Fatalf("commit failed for %#x", fp)
		}
	}
	commit(fps[0])
	commit(fps[1])
	if n := eng.Prefixes().Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// Touch fps[0] so fps[1] becomes the LRU victim of the next insert.
	if _, hit := eng.NewRunAt(fps[0]); !hit {
		t.Fatal("recency touch missed")
	}
	commit(fps[2])
	if n := eng.Prefixes().Len(); n != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", n)
	}
	if !eng.Prefixes().Contains(fps[0]) || !eng.Prefixes().Contains(fps[2]) {
		t.Fatal("eviction removed the wrong entry")
	}
	if eng.Prefixes().Contains(fps[1]) {
		t.Fatal("LRU entry survived over-capacity insert")
	}
	if ev := eng.Stats().PrefixEvictions; ev != 1 {
		t.Fatalf("stats report %d evictions, want 1", ev)
	}

	// NewRunAt(0) bypasses the cache entirely: no lookup, nothing to commit.
	before := eng.Stats()
	s, hit := eng.NewRunAt(0)
	if hit || s.FromPrefix() || s.CommitPrefix() {
		t.Fatal("NewRunAt(0) touched the prefix cache")
	}
	after := eng.Stats()
	if after.PrefixHits != before.PrefixHits || after.PrefixMisses != before.PrefixMisses {
		t.Fatal("NewRunAt(0) counted cache traffic")
	}
}

// TestPrefixEngineAllocationGuard pins the saving the prefix tier buys: a
// full absorption pass (stamp + every observer handle syncing the whole
// run) out of a warm prefix cache must allocate well under half of what the
// same pass costs building the standing graph from scratch.
func TestPrefixEngineAllocationGuard(t *testing.T) {
	sc := scenario.MultiAgent(4)
	r, err := sc.Simulate(nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := r.Fingerprint()
	eng := bounds.NewNetworkEngine(sc.Net)
	procs := sc.Net.Procs()
	observers := map[model.ProcID]bool{procs[0]: true, procs[len(procs)/2]: true}
	batches, _ := bench.ReplayBatches(r, observers)

	absorb := func(shared *bounds.Shared) {
		views := make(map[model.ProcID]*run.View, len(observers))
		handles := make(map[model.ProcID]*bounds.Handle, len(observers))
		for _, b := range batches {
			v := views[b.Proc]
			if v == nil {
				v = run.NewLocalView(sc.Net, b.Proc)
				views[b.Proc] = v
				handles[b.Proc] = mustHandle(t, shared, v)
			}
			if _, err := v.Absorb(b.Receipts, b.Externals); err != nil {
				t.Fatal(err)
			}
			if err := handles[b.Proc].Sync(); err != nil {
				t.Fatal(err)
			}
		}
		for _, h := range handles {
			h.Release()
		}
	}

	// Warm the cache (and the scratch pool, so both measurements lease
	// rather than make their scratches).
	warmup, hit := eng.NewRunAt(fp)
	if hit {
		t.Fatal("cold cache reported a hit")
	}
	absorb(warmup)
	if !warmup.CommitPrefix() {
		t.Fatal("warmup commit failed")
	}

	cold := testing.AllocsPerRun(20, func() {
		absorb(eng.NewRun())
	})
	warm := testing.AllocsPerRun(20, func() {
		s, hit := eng.NewRunAt(fp)
		if !hit {
			t.Fatal("warm cache missed")
		}
		absorb(s)
	})
	if warm*2 >= cold {
		t.Errorf("warm prefix absorption allocates %.0f times per run, cold %.0f — want warm*2 < cold", warm, cold)
	}
}
