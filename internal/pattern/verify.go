package pattern

import (
	"fmt"

	"github.com/clockless/zigzag/internal/run"
)

// Verify checks that z is a zigzag pattern in r per Definition 6 and that
// the guarantee of Theorem 1 holds numerically in r:
//
//  1. every fork is structurally well-formed and its base, head and tail
//     resolve to basic nodes of r;
//  2. for consecutive forks, head(F_k) and tail(F_{k+1}) correspond to
//     nodes of the same process, with time(head) <= time(tail); they are
//     the same basic node exactly when NonJoined[k] is false;
//  3. time(tail(F_1)) + wt(Z) <= time(head(F_c)).
//
// Verification requires the relevant chains to resolve within the run's
// recorded horizon; ErrUnresolvable is returned (wrapped) otherwise, which
// callers with short recordings may choose to tolerate.
func (z *Zigzag) Verify(r *run.Run) error {
	net := r.Net()
	if len(z.Forks) == 0 || len(z.NonJoined) != len(z.Forks)-1 {
		return ErrNotAZigzag
	}
	type resolved struct {
		head, tail run.BasicNode
	}
	res := make([]resolved, len(z.Forks))
	for i, f := range z.Forks {
		if err := f.Check(net); err != nil {
			return err
		}
		head, err := f.Head()
		if err != nil {
			return err
		}
		tail, err := f.Tail()
		if err != nil {
			return err
		}
		hb, err := r.Resolve(head)
		if err != nil {
			return fmt.Errorf("%w: head of fork %d: %v", ErrUnresolvable, i, err)
		}
		tb, err := r.Resolve(tail)
		if err != nil {
			return fmt.Errorf("%w: tail of fork %d: %v", ErrUnresolvable, i, err)
		}
		res[i] = resolved{head: hb, tail: tb}
	}
	for k := 0; k+1 < len(z.Forks); k++ {
		h, t := res[k].head, res[k+1].tail
		if h.Proc != t.Proc {
			return fmt.Errorf("%w: head(F_%d) on process %d, tail(F_%d) on %d",
				ErrNotAZigzag, k+1, h.Proc, k+2, t.Proc)
		}
		th := r.MustTime(h)
		tt := r.MustTime(t)
		if th > tt {
			return fmt.Errorf("%w: time(head(F_%d))=%d > time(tail(F_%d))=%d",
				ErrNotAZigzag, k+1, th, k+2, tt)
		}
		joined := h == t
		if joined == z.NonJoined[k] {
			return fmt.Errorf("%w: forks %d,%d joined=%v but NonJoined=%v",
				ErrWeightMismatch, k+1, k+2, joined, z.NonJoined[k])
		}
	}
	wt, err := z.Weight(net)
	if err != nil {
		return err
	}
	t1 := r.MustTime(res[0].tail)
	t2 := r.MustTime(res[len(res)-1].head)
	if t1+wt > t2 {
		return fmt.Errorf("%w: time(tail)=%d + wt=%d > time(head)=%d", ErrPrecedence, t1, wt, t2)
	}
	return nil
}

// VerifyEndpoints additionally checks that the pattern runs from theta1 to
// theta2: tail(F_1) and head(F_c) correspond to the same basic nodes as
// theta1 and theta2 respectively. (Constructions extend endpoint legs by
// composition — Lemma 5 case 2 — so correspondence, not syntactic equality,
// is the meaningful condition.)
func (z *Zigzag) VerifyEndpoints(r *run.Run, theta1, theta2 run.GeneralNode) error {
	tail, err := z.Tail()
	if err != nil {
		return err
	}
	head, err := z.Head()
	if err != nil {
		return err
	}
	tb, err := r.Resolve(tail)
	if err != nil {
		return fmt.Errorf("%w: tail: %v", ErrUnresolvable, err)
	}
	hb, err := r.Resolve(head)
	if err != nil {
		return fmt.Errorf("%w: head: %v", ErrUnresolvable, err)
	}
	b1, err := r.Resolve(theta1)
	if err != nil {
		return fmt.Errorf("%w: theta1: %v", ErrUnresolvable, err)
	}
	b2, err := r.Resolve(theta2)
	if err != nil {
		return fmt.Errorf("%w: theta2: %v", ErrUnresolvable, err)
	}
	if tb != b1 {
		return fmt.Errorf("%w: tail resolves to %s, theta1 to %s", ErrEndpoint, tb, b1)
	}
	if hb != b2 {
		return fmt.Errorf("%w: head resolves to %s, theta2 to %s", ErrEndpoint, hb, b2)
	}
	return nil
}

// Visible is a sigma-visible zigzag pattern (Definition 7): a zigzag all of
// whose non-final fork heads are in past(r, sigma), and whose final fork's
// base is a general node rooted in past(r, sigma). A process at sigma can
// deduce, from its local state alone, that the pattern exists in the current
// run — and hence that the timed precedence it implies holds (Theorem 4).
type Visible struct {
	Zigzag
	Sigma run.BasicNode
}

// VerifyVisible checks Definition 7 against the run, on top of the plain
// zigzag checks. Non-final heads must lie inside past(r, sigma); every
// fork's base must be rooted at a past node.
func (v *Visible) VerifyVisible(r *run.Run) error {
	if err := v.Verify(r); err != nil {
		return err
	}
	ps, err := r.Past(v.Sigma)
	if err != nil {
		return err
	}
	for i, f := range v.Forks {
		if !ps.Contains(f.Base.Base) {
			return fmt.Errorf("%w: base of fork %d rooted at %s outside past(%s)",
				ErrNotVisible, i+1, f.Base.Base, v.Sigma)
		}
		if i == len(v.Forks)-1 {
			break // condition (i) constrains only non-final forks
		}
		head, err := f.Head()
		if err != nil {
			return err
		}
		hb, err := r.Resolve(head)
		if err != nil {
			return fmt.Errorf("%w: head of fork %d: %v", ErrUnresolvable, i+1, err)
		}
		if !ps.Contains(hb) {
			return fmt.Errorf("%w: head(F_%d)=%s outside past(%s)", ErrNotVisible, i+1, hb, v.Sigma)
		}
	}
	return nil
}
