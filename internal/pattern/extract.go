package pattern

import (
	"fmt"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// FromSteps translates a constraint path (a path in a bounds graph, reported
// as bounds.Step values) into a zigzag pattern from theta1 to the path's
// final node, with wt(Z) equal to the path's weight. It is the constructive
// content of Lemma 5 (for basic-graph paths) and of Lemmas 10-16 (for
// extended-graph constraint paths, where the result is sigma-visible).
//
// The translation maintains one open fork whose head tracks the current
// position along the path:
//
//   - a successor step closes the fork and opens a trivial one (the pair is
//     non-joined: +1, matching the edge weight);
//   - a lower step (message or chain hop) extends the open fork's head leg;
//   - an upper step with an empty head leg refolds the fork around the
//     sender (Lemma 5 case 2): the base moves to the sender and the hop is
//     prepended to the tail leg;
//   - an upper step with a non-empty head leg closes the fork and opens a
//     joined fork at the sender whose tail leg is the single hop back;
//   - an auxiliary segment (enter, hops, exit) opens a non-joined fork at
//     the exit node whose tail leg retraces the beyond-horizon chain the
//     auxiliary vertices stand for (Lemmas 11-12).
func FromSteps(net *model.Network, theta1 run.GeneralNode, steps []bounds.Step) (*Zigzag, error) {
	z := &Zigzag{}
	cur := TrivialFork(theta1)
	var auxProcs []model.ProcID // processes of the current auxiliary segment

	closeFork := func(nonJoined bool) {
		z.Forks = append(z.Forks, cur)
		z.NonJoined = append(z.NonJoined, nonJoined)
	}
	headEmpty := func() bool { return cur.HeadPath.IsSingleton() }

	for i, s := range steps {
		inAux := auxProcs != nil
		switch s.Kind {
		case bounds.StepSucc:
			if inAux {
				return nil, fmt.Errorf("pattern: step %d: successor edge inside auxiliary segment", i)
			}
			closeFork(true)
			cur = TrivialFork(s.To.Node)

		case bounds.StepLower:
			if inAux {
				return nil, fmt.Errorf("pattern: step %d: lower edge inside auxiliary segment", i)
			}
			cur.HeadPath = cur.HeadPath.Append(s.To.Node.Proc())

		case bounds.StepUpper:
			if inAux {
				return nil, fmt.Errorf("pattern: step %d: upper edge inside auxiliary segment", i)
			}
			sender := s.To.Node
			if headEmpty() {
				// Refold: base moves to the sender, hop prepends to tail.
				tail := model.SingletonPath(sender.Proc()).Append(cur.TailPath...)
				cur = Fork{
					Base:     sender,
					HeadPath: model.SingletonPath(sender.Proc()),
					TailPath: tail,
				}
			} else {
				closeFork(false)
				cur = Fork{
					Base:     sender,
					HeadPath: model.SingletonPath(sender.Proc()),
					TailPath: model.Path{sender.Proc(), s.From.Node.Proc()},
				}
			}

		case bounds.StepAuxEnter:
			if inAux {
				return nil, fmt.Errorf("pattern: step %d: nested auxiliary segment", i)
			}
			closeFork(true)
			auxProcs = []model.ProcID{s.To.Proc}

		case bounds.StepAuxHop:
			if !inAux {
				return nil, fmt.Errorf("pattern: step %d: auxiliary hop outside segment", i)
			}
			auxProcs = append(auxProcs, s.To.Proc)

		case bounds.StepAuxExit:
			if !inAux {
				return nil, fmt.Errorf("pattern: step %d: auxiliary exit outside segment", i)
			}
			// The segment stands for the chain sender -> l_k -> ... -> l_1;
			// the tail leg retraces it from the exit node.
			exit := s.To.Node
			tail := model.SingletonPath(exit.Proc())
			for j := len(auxProcs) - 1; j >= 0; j-- {
				tail = tail.Append(auxProcs[j])
			}
			cur = Fork{Base: exit, HeadPath: model.SingletonPath(exit.Proc()), TailPath: tail}
			auxProcs = nil

		case bounds.StepAuxChain:
			if !inAux {
				return nil, fmt.Errorf("pattern: step %d: auxiliary chain edge outside segment", i)
			}
			eta := s.To.Node
			if auxProcs[len(auxProcs)-1] != eta.Proc() {
				return nil, fmt.Errorf("pattern: step %d: chain vertex on %d but segment ends at %d",
					i, eta.Proc(), auxProcs[len(auxProcs)-1])
			}
			tail := model.SingletonPath(eta.Proc())
			for j := len(auxProcs) - 2; j >= 0; j-- {
				tail = tail.Append(auxProcs[j])
			}
			cur = Fork{Base: eta, HeadPath: model.SingletonPath(eta.Proc()), TailPath: tail}
			auxProcs = nil

		default:
			return nil, fmt.Errorf("pattern: step %d: unknown kind %v", i, s.Kind)
		}
	}
	if auxProcs != nil {
		return nil, fmt.Errorf("pattern: constraint path ends inside auxiliary segment")
	}
	z.Forks = append(z.Forks, cur)

	// Defence in depth: the translation must preserve weight exactly.
	want := bounds.PathWeight(steps)
	got, err := z.Weight(net)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("%w: path weight %d, zigzag weight %d", ErrWeightMismatch, want, got)
	}
	return z, nil
}

// ExtractBasic finds the heaviest zigzag pattern from sigma1 to sigma2
// supported by the run's communication structure: the longest path in GB(r)
// translated through Lemma 5. found is false when GB(r) has no path between
// the nodes (no precedence bound is supported; Theorem 2's counterfactual
// run applies).
func ExtractBasic(b *bounds.Basic, sigma1, sigma2 run.BasicNode) (z *Zigzag, weight int, found bool, err error) {
	w, steps, ok, err := b.LongestBetween(sigma1, sigma2)
	if err != nil || !ok {
		return nil, 0, false, err
	}
	z, err = FromSteps(b.Run().Net(), run.At(sigma1), steps)
	if err != nil {
		return nil, 0, false, err
	}
	return z, w, true, nil
}

// KnowledgeWitness computes kw(sigma, theta1, theta2) and extracts the
// sigma-visible zigzag witnessing it (the constructive half of Theorem 4).
// known is false when sigma knows no bound at all.
func KnowledgeWitness(e *bounds.Extended, theta1, theta2 run.GeneralNode) (v *Visible, kw int, known bool, err error) {
	w, steps, ok, err := e.KnowledgeWeight(theta1, theta2)
	if err != nil || !ok {
		return nil, 0, false, err
	}
	z, err := FromSteps(e.Net(), theta1, steps)
	if err != nil {
		return nil, 0, false, err
	}
	return &Visible{Zigzag: *z, Sigma: e.Past().Origin()}, w, true, nil
}
