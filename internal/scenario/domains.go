package scenario

import (
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Trains builds the paper's single-track dispatch motivation as a Late
// instance: a dispatcher (C) clears train A onto the shared section; the
// signal box B must switch the points at least x time units AFTER A enters,
// so the points never move under the train. The dispatcher's clearance
// floods the interlocking network; B coordinates off the bounds alone —
// there is no channel from the track section (A) back to the signal box.
//
// Roles: DISPATCH (C), TRACK (A), SIGNALBOX (B), RELAY (an intermediate
// interlocking node whose ordering information makes the zigzag visible).
func Trains(x int) *Scenario {
	const (
		dispatch = model.ProcID(1) // C
		yard     = model.ProcID(2) // second controller, base of fork 2
		relay    = model.ProcID(3) // D-like junction
		track    = model.ProcID(4) // A
		signal   = model.ProcID(5) // B
	)
	net := model.NewBuilder(5).
		Chan(dispatch, track, 2, 3). // clearance reaches the track fast
		Chan(dispatch, relay, 6, 8). // paperwork path to the junction
		Chan(yard, relay, 2, 3).     // yard report to the junction
		Chan(yard, signal, 7, 9).    // yard report to the signal box
		Chan(relay, signal, 1, 2).   // junction floods the signal box
		MustBuild()
	task := &coord.Task{Kind: coord.Late, X: x, A: track, B: signal, C: dispatch, GoTime: 1}
	return &Scenario{
		Name: "trains",
		Description: "Single-track dispatch: the signal box switches points " +
			"at least x after the train enters, with no track-to-box channel.",
		Net: net,
		Externals: []run.ExternalEvent{
			{Proc: dispatch, Time: 1, Label: "go"},
			{Proc: yard, Time: 10, Label: "yard-report"},
		},
		Horizon: 64,
		Roles: map[string]model.ProcID{
			"DISPATCH": dispatch, "YARD": yard, "RELAY": relay,
			"TRACK": track, "SIGNALBOX": signal,
		},
		Task: task,
	}
}

// Takeoff builds the plane-takeoff motivation as an Early instance: tower C
// clears the heavy jet A for takeoff; the feeder strip B must launch its
// light aircraft at least x time units BEFORE the heavy rolls, or wake
// turbulence grounds it. B hears the clearance on a fast teletype channel,
// A on a slow voice loop — the bound gap alone lets B launch early, which
// no asynchronous protocol can ever do.
func Takeoff(x int) *Scenario {
	const (
		tower  = model.ProcID(1) // C
		heavy  = model.ProcID(2) // A
		feeder = model.ProcID(3) // B
	)
	net := model.NewBuilder(3).
		Chan(tower, heavy, 9, 14). // slow voice confirmation loop
		Chan(tower, feeder, 1, 3). // fast teletype
		MustBuild()
	task := &coord.Task{Kind: coord.Early, X: x, A: heavy, B: feeder, C: tower, GoTime: 1}
	return &Scenario{
		Name: "takeoff",
		Description: "Takeoff spacing: the feeder strip launches at least x " +
			"before the heavy rolls, exploiting only the bound gap.",
		Net:       net,
		Externals: []run.ExternalEvent{{Proc: tower, Time: 1, Label: "go"}},
		Horizon:   48,
		Roles:     map[string]model.ProcID{"TOWER": tower, "HEAVY": heavy, "FEEDER": feeder},
		Task:      task,
	}
}

// Circuits builds the self-timed VLSI motivation of Section 6: a request
// fork in an asynchronous pipeline. The controller (C) raises a request
// that reaches a datapath latch (A) and, through a chain of two gate stages,
// an output mux (B). Wire and gate delays are the channel bounds. The mux
// may switch only after the latch has captured (Late with x = hold time):
// exactly the fork that self-timed design uses in place of a clock tree.
func Circuits(holdTime int) *Scenario {
	const (
		ctrl   = model.ProcID(1) // C: request source
		latch  = model.ProcID(2) // A: datapath latch
		stage1 = model.ProcID(3) // gate stage
		stage2 = model.ProcID(4) // gate stage
		mux    = model.ProcID(5) // B: output mux
	)
	net := model.NewBuilder(5).
		Chan(ctrl, latch, 1, 2).    // short wire to the latch enable
		Chan(ctrl, stage1, 2, 3).   // wire into the logic cone
		Chan(stage1, stage2, 3, 4). // gate delay
		Chan(stage2, mux, 3, 4).    // gate delay
		MustBuild()
	task := &coord.Task{Kind: coord.Late, X: holdTime, A: latch, B: mux, C: ctrl, GoTime: 1}
	return &Scenario{
		Name: "circuits",
		Description: "Self-timed pipeline: the output mux switches only " +
			"after the latch hold time, guaranteed by wire/gate delay bounds.",
		Net:       net,
		Externals: []run.ExternalEvent{{Proc: ctrl, Time: 1, Label: "go"}},
		Horizon:   48,
		Roles: map[string]model.ProcID{
			"CTRL": ctrl, "LATCH": latch, "STAGE1": stage1, "STAGE2": stage2, "MUX": mux,
		},
		Task: task,
	}
}
