package bounds

import (
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// batchXs is the threshold grid the weight-plane differentials sweep:
// negative, zero and positive thresholds around the small knowledge weights
// random workload runs produce.
var batchXs = []int{-2, 0, 1, 3}

// TestWeightPlaneMatchesWitnessPath pins the weight-only fast path to the
// witness-bearing query it replaced: on every state of random scenarios,
// Extended.Weight and Extended.KnowsAt agree with KnowledgeWeight and
// per-threshold Knows on weight, knownness, error class and every verdict
// of the threshold grid.
func TestWeightPlaneMatchesWitnessPath(t *testing.T) {
	holds := make([]bool, len(batchXs))
	for seed := int64(1); seed <= 3; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Procs = 4 + int(seed%3)
		in := workload.MustGenerate(cfg)
		r, err := in.Simulate(sim.NewRandom(seed * 19))
		if err != nil {
			t.Fatal(err)
		}
		procs := in.Net.Procs()
		p := procs[int(seed)%len(procs)]
		if r.LastIndex(p) == 0 {
			continue
		}
		replayViews(t, r, p, func(k int, v *run.View) {
			fresh, err := NewExtendedFromView(v)
			if err != nil {
				t.Fatal(err)
			}
			qs := queryNodes(v)
			for i, t1 := range qs {
				for j, t2 := range qs {
					if i == j && t1.IsBasic() {
						continue
					}
					wantKW, _, wantKnown, wantErr := fresh.KnowledgeWeight(t1, t2)
					gotKW, gotKnown, gotErr := fresh.Weight(t1, t2)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("seed %d p%d#%d %s->%s: err witness=%v weight=%v",
							seed, p, k, t1, t2, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if wantKnown != gotKnown || (wantKnown && wantKW != gotKW) {
						t.Fatalf("seed %d p%d#%d %s->%s: witness (%d,%v) weight (%d,%v)",
							seed, p, k, t1, t2, wantKW, wantKnown, gotKW, gotKnown)
					}
					// The grid evaluation is one more SPFA per pair times the
					// per-threshold Knows oracle; a few pairs per state supply
					// plenty of coverage without a quadratic blowup.
					if i > 1 {
						continue
					}
					kw, known, err := fresh.KnowsAt(t1, batchXs, t2, holds)
					if err != nil {
						t.Fatal(err)
					}
					if known != wantKnown || (known && kw != wantKW) {
						t.Fatalf("seed %d p%d#%d %s->%s: KnowsAt (%d,%v) want (%d,%v)",
							seed, p, k, t1, t2, kw, known, wantKW, wantKnown)
					}
					for xi, x := range batchXs {
						want, err := fresh.Knows(t1, x, t2)
						if err != nil {
							t.Fatal(err)
						}
						if holds[xi] != want {
							t.Fatalf("seed %d p%d#%d %s->%s x=%d: KnowsAt %v, Knows %v",
								seed, p, k, t1, t2, x, holds[xi], want)
						}
					}
				}
			}
		})
	}
}

// batchOf builds a query batch over every ordered pair of the state's query
// nodes, cycling thresholds so groups mix holding and failing verdicts. The
// pair enumeration repeats each source len(qs)-1 times, so the batch
// genuinely exercises source grouping.
func batchOf(nodes []run.GeneralNode) []Query {
	var qs []Query
	for i, t1 := range nodes {
		for j, t2 := range nodes {
			if i == j && t1.IsBasic() {
				continue
			}
			qs = append(qs, Query{Theta1: t1, X: batchXs[(i+j)%len(batchXs)], Theta2: t2})
		}
	}
	return qs
}

// TestQueryBatchMatchesSingleQueries is the batch plane's differential
// acceptance test: on every state of a random scenario, QueryBatch on all
// three engines — offline Extended, private Online, shared Handle — returns
// exactly the answers the single-query path gives, the batch leaves the
// incremental engines' caches consistent (a fresh single query after the
// batch still agrees with the oracle), and the engines report the batch
// savings: at most one SPFA per distinct source.
func TestQueryBatchMatchesSingleQueries(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(5))
	r, err := in.Simulate(sim.NewRandom(23))
	if err != nil {
		t.Fatal(err)
	}
	procs := in.Net.Procs()
	p := procs[1%len(procs)]
	if r.LastIndex(p) == 0 {
		t.Fatal("observer has no states")
	}
	eng := NewShared(in.Net)
	var online *Online
	var h *Handle
	replayViews(t, r, p, func(k int, v *run.View) {
		if online == nil {
			online = NewOnline(v)
			h = mustHandle(t, eng, v)
		}
		fresh, err := NewExtendedFromView(v)
		if err != nil {
			t.Fatal(err)
		}
		nodes := queryNodes(v)
		qs := batchOf(nodes)
		if len(qs) == 0 {
			return
		}

		// Oracle answers from the offline engine's single-query path.
		want := make([]Answer, len(qs))
		sources := map[string]bool{}
		for i, q := range qs {
			kw, known, err := fresh.Weight(q.Theta1, q.Theta2)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = Answer{Known: known}
			if known {
				want[i].Kw = kw
				want[i].Holds = kw >= q.X
			}
			sources[q.Theta1.String()] = true
		}

		check := func(engine string, got []Answer) {
			t.Helper()
			for i := range qs {
				if got[i] != want[i] {
					t.Fatalf("p%d#%d %s query %d (%s -> %s at x=%d): got %+v want %+v",
						p, k, engine, i, qs[i].Theta1, qs[i].Theta2, qs[i].X, got[i], want[i])
				}
			}
		}

		got := make([]Answer, len(qs))
		if err := fresh.QueryBatch(qs, got); err != nil {
			t.Fatal(err)
		}
		check("extended", got)

		beforeO := online.Stats()
		gotO := make([]Answer, len(qs))
		if err := online.QueryBatch(qs, gotO); err != nil {
			t.Fatal(err)
		}
		check("online", gotO)
		dO := online.Stats()
		if n := dO.BatchQueries - beforeO.BatchQueries; n != int64(len(qs)) {
			t.Fatalf("p%d#%d: online batch counted %d queries, want %d", p, k, n, len(qs))
		}
		// One SPFA per distinct source: everything else is a free lookup.
		if free := dO.BatchHits - beforeO.BatchHits; free < int64(len(qs)-len(sources)) {
			t.Fatalf("p%d#%d: online batch served %d of %d queries for free, want >= %d",
				p, k, free, len(qs), len(qs)-len(sources))
		}

		beforeH := h.Stats()
		gotH := make([]Answer, len(qs))
		if err := h.QueryBatch(qs, gotH); err != nil {
			t.Fatal(err)
		}
		check("handle", gotH)
		if n := h.Stats().BatchQueries - beforeH.BatchQueries; n != int64(len(qs)) {
			t.Fatalf("p%d#%d: handle batch counted %d queries, want %d", p, k, n, len(qs))
		}

		// The batch must leave the incremental engines able to answer a fresh
		// single query — the forward cache it left behind is either valid or
		// correctly invalidated.
		q0 := qs[len(qs)/2]
		wantKW, wantKnown, err := fresh.Weight(q0.Theta1, q0.Theta2)
		if err != nil {
			t.Fatal(err)
		}
		for engine, w := range map[string]func(run.GeneralNode, run.GeneralNode) (int, bool, error){
			"online": online.Weight, "handle": h.Weight,
		} {
			kw, known, err := w(q0.Theta1, q0.Theta2)
			if err != nil {
				t.Fatal(err)
			}
			if known != wantKnown || (known && kw != wantKW) {
				t.Fatalf("p%d#%d: %s single query after batch (%d,%v), want (%d,%v)",
					p, k, engine, kw, known, wantKW, wantKnown)
			}
		}
	})
}

// TestKnowsAllocationGuard pins the satellite the weight-only rewrite
// bought: a warmed-up Extended.Knows builds no witness path, so after the
// first query of a source has sized the SPFA scratch, further threshold
// queries allocate nothing at all.
func TestKnowsAllocationGuard(t *testing.T) {
	net := model.MustComplete(6, 1, 5)
	r := sim.MustSimulate(sim.Config{
		Net: net, Horizon: 60, Policy: sim.Lazy{}, Externals: sim.GoAt(1, 1, "go"),
	})
	sigma := run.BasicNode{Proc: 1, Index: r.LastIndex(1)}
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	ps := ext.Past()
	var cands []run.BasicNode
	for p := model.ProcID(1); int(p) <= net.N(); p++ {
		for k := 1; k <= r.LastIndex(p); k++ {
			n := run.BasicNode{Proc: p, Index: k}
			if ps.Contains(n) {
				cands = append(cands, n)
			}
		}
	}
	if len(cands) < 2 {
		t.Fatal("fixture has too few past nodes")
	}
	theta1 := run.At(cands[0])
	theta2 := run.At(cands[len(cands)-1])
	// Warm-up sizes the scratch arrays and materializes nothing further:
	// both endpoints are basic nodes of the past, already vertices.
	if _, err := ext.Knows(theta1, 1, theta2); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(50, func() {
		if _, err := ext.Knows(theta1, 1, theta2); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("warmed-up Knows allocates %.0f times per query, want 0", got)
	}
}
