package run

import (
	"testing"

	"github.com/clockless/zigzag/internal/model"
)

// TestSnapshotIsImmutable: a snapshot frozen before further growth keeps
// reporting the old content — the property that lets the live engine share
// one payload across every out-arc (and across goroutines) without deep
// copies.
func TestSnapshotIsImmutable(t *testing.T) {
	net := model.MustComplete(3, 1, 2)
	v1 := NewLocalView(net, 1)
	n1, err := v1.Absorb(nil, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	snap := v1.Snapshot()
	// Grow the source past the snapshot: new state, new delivery, new
	// external.
	v2 := NewLocalView(net, 2)
	n2, err := v2.Absorb([]Receipt{{From: n1, Payload: snap}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v1.Absorb([]Receipt{{From: n2, Payload: v2.Snapshot()}}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if snap.Contains(BasicNode{Proc: 1, Index: 2}) {
		t.Error("snapshot sees membership growth after freeze")
	}
	if len(snap.log) != 0 || len(snap.extLog) != 1 {
		t.Errorf("snapshot logs grew: %d deliveries, %d externals", len(snap.log), len(snap.extLog))
	}
	if snap.Origin() != n1 {
		t.Errorf("snapshot origin = %s, want %s", snap.Origin(), n1)
	}
}

// TestViewDeltaAPI: DeliveryCount watermarks plus DeliveriesSince partition
// the delivery log exactly — the contract bounds.Online relies on to pay
// only for growth.
func TestViewDeltaAPI(t *testing.T) {
	net := model.MustComplete(3, 1, 2)
	sender1 := NewLocalView(net, 1)
	s1, err := sender1.Absorb(nil, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	v := NewLocalView(net, 3)
	if v.DeliveryCount() != 0 {
		t.Fatalf("fresh view has %d deliveries", v.DeliveryCount())
	}
	if _, err := v.Absorb([]Receipt{{From: s1, Payload: sender1.Snapshot()}}, nil); err != nil {
		t.Fatal(err)
	}
	mark := v.DeliveryCount()
	if mark != 1 {
		t.Fatalf("after one receipt: %d deliveries", mark)
	}
	d := v.DeliveriesSince(0)[0]
	if d.From != s1 || d.To.Proc != 3 || d.Chan == model.NoChan {
		t.Errorf("first delivery = %+v", d)
	}
	// A second batch relayed through process 2 adds its deliveries after
	// the watermark; nothing before the watermark changes.
	sender2 := NewLocalView(net, 2)
	s2, err := sender2.Absorb([]Receipt{{From: s1, Payload: sender1.Snapshot()}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Absorb([]Receipt{{From: s2, Payload: sender2.Snapshot()}}, nil); err != nil {
		t.Fatal(err)
	}
	delta := v.DeliveriesSince(mark)
	if len(delta) == 0 {
		t.Fatal("no delta after second batch")
	}
	for _, d := range delta {
		if d.From == s1 && d.To.Proc == 3 {
			t.Errorf("delta re-reports pre-watermark delivery %v", d)
		}
	}
	if got := v.DeliveriesSince(0); len(got) != v.DeliveryCount() {
		t.Errorf("full log %d vs count %d", len(got), v.DeliveryCount())
	}
	// The sorted Deliveries view agrees with the log contents.
	if len(v.Deliveries()) != v.DeliveryCount() {
		t.Errorf("Deliveries() %d vs count %d", len(v.Deliveries()), v.DeliveryCount())
	}
}

// TestMergeWatermarkSkipsPrefixes: merging successive snapshots of one
// source only scans each suffix, yet out-of-order (non-FIFO) older
// snapshots still merge correctly and never regress the watermark.
func TestMergeWatermarkSkipsPrefixes(t *testing.T) {
	net := model.MustComplete(3, 1, 4)
	sender := NewLocalView(net, 1)
	s1, err := sender.Absorb(nil, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	early := sender.Snapshot() // frozen at state 1
	relay := NewLocalView(net, 2)
	r1, err := relay.Absorb([]Receipt{{From: s1, Payload: early}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sender.Absorb([]Receipt{{From: r1, Payload: relay.Snapshot()}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	late := sender.Snapshot() // frozen at state 2, strictly more content

	v := NewLocalView(net, 3)
	// Newer snapshot first, older second (non-FIFO channel).
	if _, err := v.Absorb([]Receipt{{From: s2, Payload: late}}, nil); err != nil {
		t.Fatal(err)
	}
	sizeAfterLate := v.Size()
	logAfterLate := v.DeliveryCount()
	if _, err := v.Absorb([]Receipt{{From: s1, Payload: early}}, nil); err != nil {
		t.Fatal(err)
	}
	if v.Size() != sizeAfterLate+1 { // +1: v's own new state only
		t.Errorf("old snapshot changed membership: %d -> %d", sizeAfterLate, v.Size())
	}
	if v.DeliveryCount() != logAfterLate+1 { // +1: the s1 -> v receipt itself
		t.Errorf("old snapshot re-recorded deliveries: %d -> %d", logAfterLate, v.DeliveryCount())
	}
	// And everything the late snapshot carried is present.
	if _, ok := v.DeliveryTo(s1, 2); !ok {
		t.Error("delivery s1->2 lost")
	}
	if _, ok := v.DeliveryTo(r1, 1); !ok {
		t.Error("delivery r1->1 lost")
	}
}
