package main

import (
	"fmt"

	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

// expLate sweeps x on a network where both the optimal protocol and the
// asynchronous baseline can act — a Figure 2b variant with a feedback
// channel A -> B so the baseline has a chain to wait for. The shape: the
// optimal protocol acts no later than the baseline everywhere, strictly
// earlier once x exceeds what the direct chain's prefix certifies, and
// keeps acting for x beyond the baseline's reach.
func expLate(cfg config) error {
	fmt.Println("  x | optimal acts at | baseline acts at | optimal wins by")
	p := scenario.DefaultFigure2()
	for x := 1; x <= p.EquationOne()+2; x++ {
		px := p
		px.X = x
		sc := scenario.Figure2b(px)
		// Feedback channel from A to B gives the baseline a chain to use —
		// but a weak one (L=1), so chains certify far less than zigzags.
		nb, err := sc.WithChannel("A", "B", 1, 6)
		if err != nil {
			return err
		}
		r, err := nb.Simulate(sim.Lazy{})
		if err != nil {
			return err
		}
		opt, err := nb.Task.RunOptimal(r)
		if err != nil {
			return err
		}
		base, err := nb.Task.RunBaseline(r)
		if err != nil {
			return err
		}
		optAt, baseAt, wins := "-", "-", "-"
		if opt.Acted {
			optAt = fmt.Sprintf("t=%d", opt.ActTime)
		}
		if base.Acted {
			baseAt = fmt.Sprintf("t=%d", base.ActTime)
		}
		if opt.Acted && base.Acted {
			wins = fmt.Sprintf("%d", base.ActTime-opt.ActTime)
			if opt.ActTime > base.ActTime {
				return fmt.Errorf("x=%d: optimal acted after the baseline", x)
			}
		}
		if base.Acted && !opt.Acted {
			return fmt.Errorf("x=%d: baseline acted but optimal did not", x)
		}
		fmt.Printf("%3d | %-15s | %-16s | %s\n", x, optAt, baseAt, wins)
	}
	fmt.Println("shape: optimal acts no later than the baseline and covers larger x.")
	return nil
}

// expEarly sweeps x on the takeoff scenario: the optimal protocol acts up
// to the fork weight; the baseline can never act.
func expEarly(cfg config) error {
	fmt.Println("  x | optimal acts | lead (lazy) | baseline")
	for x := 1; x <= 8; x++ {
		sc := scenario.Takeoff(x)
		acted := true
		lead := "-"
		for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(3)} {
			r, err := sc.Simulate(pol)
			if err != nil {
				return err
			}
			out, err := sc.Task.RunOptimal(r)
			if err != nil {
				return err
			}
			if !out.Acted {
				acted = false
				continue
			}
			if pol.Name() == "lazy" {
				lead = fmt.Sprintf("%d", -out.Gap)
			}
			base, err := sc.Task.RunBaseline(r)
			if err != nil {
				return err
			}
			if base.Acted {
				return fmt.Errorf("x=%d: baseline solved Early", x)
			}
		}
		want := x <= 9-3 // L_CA - U_CB
		if acted != want {
			return fmt.Errorf("x=%d: acted=%v, want %v", x, acted, want)
		}
		mark := "no"
		if acted {
			mark = "yes"
		}
		fmt.Printf("%3d | %-12s | %-11s | never\n", x, mark, lead)
	}
	fmt.Println("shape: Early feasible exactly up to the fork weight; impossible asynchronously.")
	return nil
}
