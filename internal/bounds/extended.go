package bounds

import (
	"fmt"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Extended is the extended local bounds graph GE(r, sigma) of Definition 16.
// Its vertices are the nodes of past(r, sigma) plus one auxiliary vertex
// psi_i per process, standing for the earliest "over the horizon" delivery
// on i's timeline. Everything sigma can deduce about relative timing — in
// any run indistinguishable from r at sigma — corresponds to a path here.
//
// The graph is built from a run.View, i.e. from the *structure* of sigma's
// causal past alone: no real-time information enters, which is what makes
// the construction legitimate in the clockless model and usable by online
// agents (internal/live) exactly as by offline analysis.
//
// Extended is also the construction site for knowledge queries:
// VertexOfGeneral adds chain vertices for general nodes whose FFIP chains
// leave the past, so that the constraint paths of Definitions 17-22 become
// ordinary graph paths.
type Extended struct {
	view *run.View
	past *run.PastSet
	g    *graph.Graph

	offset  []int // offset[p-1]: first vertex id of p's past nodes
	auxBase int   // vertex id of psi_1
	meta    map[edgeKey]Step

	// chainVertices memoizes beyond-horizon chain vertices by their general
	// node identity so that queried nodes sharing chain prefixes share
	// vertices (required for the type-4 constraint paths of Definition 20).
	chainVertices map[string]int
	chainNodes    map[int]run.GeneralNode
	extraVerts    int
}

// NewExtended constructs GE(r, sigma) from a recorded run.
func NewExtended(r *run.Run, sigma run.BasicNode) (*Extended, error) {
	view, err := run.ViewOf(r, sigma)
	if err != nil {
		return nil, err
	}
	return NewExtendedFromView(view)
}

// NewExtendedFromView constructs the extended bounds graph from a subjective
// view — the entry point for online (clockless) agents.
func NewExtendedFromView(view *run.View) (*Extended, error) {
	net := view.Net()
	e := &Extended{
		view:          view,
		past:          view.PastSet(),
		offset:        make([]int, net.N()),
		meta:          make(map[edgeKey]Step),
		chainVertices: make(map[string]int),
		chainNodes:    make(map[int]run.GeneralNode),
	}
	total := 0
	for _, p := range net.Procs() {
		e.offset[p-1] = total
		if bnd, ok := view.Boundary(p); ok {
			total += bnd.Index + 1
		}
	}
	e.auxBase = total
	total += net.N()
	e.g = graph.New(total)

	// Induced GB(r, sigma) edges (Definition 14).
	for _, p := range net.Procs() {
		bnd, ok := view.Boundary(p)
		if !ok {
			continue
		}
		for k := 0; k < bnd.Index; k++ {
			u := run.BasicNode{Proc: p, Index: k}
			e.addEdge(StepSucc, NodePoint(run.At(u)), NodePoint(run.At(u.Successor())), 1)
		}
	}
	for _, d := range view.Deliveries() {
		// p-closedness of the past: the sender of a message received inside
		// the past is inside the past.
		ch := d.Channel()
		bd, err := net.ChanBounds(ch.From, ch.To)
		if err != nil {
			return nil, err
		}
		e.addEdge(StepLower, NodePoint(run.At(d.From)), NodePoint(run.At(d.To)), bd.Lower)
		e.addEdge(StepUpper, NodePoint(run.At(d.To)), NodePoint(run.At(d.From)), -bd.Upper)
	}

	// E': boundary_i -> psi_i, weight 1.
	for _, p := range net.Procs() {
		if bnd, ok := view.Boundary(p); ok {
			e.addEdge(StepAuxEnter, NodePoint(run.At(bnd)), AuxPoint(p), 1)
		}
	}
	// E'': psi_j -> sigma_i for messages leaving the past, weight -U_ij.
	for _, pend := range view.Leaving() {
		u := net.Upper(pend.From.Proc, pend.To)
		e.addEdge(StepAuxExit, AuxPoint(pend.To), NodePoint(run.At(pend.From)), -u)
	}
	// E''': psi_j -> psi_i for every channel (i, j), weight -U_ij.
	for _, ch := range net.Channels() {
		u := net.Upper(ch.From, ch.To)
		e.addEdge(StepAuxHop, AuxPoint(ch.To), AuxPoint(ch.From), -u)
	}
	return e, nil
}

func (e *Extended) addEdge(kind StepKind, from, to Point, w int) {
	u := e.mustVertexOfPoint(from)
	v := e.mustVertexOfPoint(to)
	e.g.AddEdge(u, v, w)
	e.meta[edgeKey{u, v, w}] = Step{Kind: kind, From: from, To: to, Weight: w}
}

func (e *Extended) mustVertexOfPoint(pt Point) int {
	if pt.Aux {
		return e.auxBase + int(pt.Proc) - 1
	}
	v, err := e.VertexOfPast(pt.Node.Base)
	if err != nil {
		panic(err)
	}
	return v
}

// Net returns the network.
func (e *Extended) Net() *model.Network { return e.view.Net() }

// View returns the subjective view the graph was built from.
func (e *Extended) View() *run.View { return e.view }

// Past returns past(r, sigma) as a set.
func (e *Extended) Past() *run.PastSet { return e.past }

// Graph exposes the raw weighted graph.
func (e *Extended) Graph() *graph.Graph { return e.g }

// NumVertices returns the current number of vertices (past nodes, auxiliary
// vertices and any chain vertices added by queries).
func (e *Extended) NumVertices() int { return e.g.N() }

// NumEdges returns the current number of edges.
func (e *Extended) NumEdges() int { return e.g.NumEdges() }

// VertexOfPast returns the vertex id of a past basic node.
func (e *Extended) VertexOfPast(n run.BasicNode) (int, error) {
	if !e.past.Contains(n) {
		return 0, fmt.Errorf("%w: %s not in past(%s)", ErrNotInGraph, n, e.past.Origin())
	}
	return e.offset[n.Proc-1] + n.Index, nil
}

// AuxVertex returns the vertex id of psi_p.
func (e *Extended) AuxVertex(p model.ProcID) int { return e.auxBase + int(p) - 1 }

// PointOf inverts vertex ids back to Points (for introspection and the
// figure renderings).
func (e *Extended) PointOf(v int) Point {
	if v >= e.auxBase && v < e.auxBase+e.view.Net().N() {
		return AuxPoint(model.ProcID(v - e.auxBase + 1))
	}
	if g, ok := e.chainNodes[v]; ok {
		return NodePoint(g)
	}
	for i := len(e.offset) - 1; i >= 0; i-- {
		if v >= e.offset[i] {
			return NodePoint(run.At(run.BasicNode{Proc: model.ProcID(i + 1), Index: v - e.offset[i]}))
		}
	}
	panic(fmt.Sprintf("bounds: vertex %d out of range", v))
}
