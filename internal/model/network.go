// Package model defines the static substrate of the bounded communication
// model (bcm) of Dan, Manohar and Moses (PODC 2017): a directed communication
// network whose channels carry integer lower and upper bounds on message
// transmission time. Time is identified with the natural numbers; a single
// time step is the minimal relevant unit of time.
//
// The package is purely structural: it knows nothing about runs, protocols
// or schedulers. Those live in internal/run and internal/sim.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ProcID identifies a process. Processes are numbered 1..n as in the paper
// (Procs = {1, ..., n}); 0 is never a valid process.
type ProcID int

// Time is a point on the global (external) timeline. Processes in the bcm
// model have no access to it; it exists only for the environment, the
// analyst and the proofs.
type Time = int

// Infinity is a sentinel "no bound / unreachable" time value. It is chosen
// so that Infinity+Infinity does not overflow int64 arithmetic.
const Infinity = int(1) << 40

// Channel is a directed communication channel (i, j) in Chans.
type Channel struct {
	From ProcID
	To   ProcID
}

// String renders the channel as "i->j".
func (c Channel) String() string { return fmt.Sprintf("%d->%d", c.From, c.To) }

// Bounds is the pair (L, U) of transmission-time bounds for one channel,
// satisfying 1 <= L <= U < Infinity.
type Bounds struct {
	Lower int
	Upper int
}

// Valid reports whether the bounds satisfy the bcm requirement
// 1 <= L <= U < Infinity.
func (b Bounds) Valid() bool {
	return 1 <= b.Lower && b.Lower <= b.Upper && b.Upper < Infinity
}

// String renders the bounds as "[L,U]".
func (b Bounds) String() string { return fmt.Sprintf("[%d,%d]", b.Lower, b.Upper) }

// Network is a time-bounded communication network Net = (Procs, Chans)
// together with the bound functions L, U : Chans -> N. It is immutable once
// built via a Builder (or the convenience constructors); all accessors are
// safe for concurrent use.
type Network struct {
	n        int
	chans    map[Channel]Bounds
	outAdj   map[ProcID][]ProcID // sorted
	inAdj    map[ProcID][]ProcID // sorted
	channels []Channel           // sorted, for deterministic iteration
	maxUpper int
	minLower int
}

// Errors returned by network construction and path queries.
var (
	ErrNoChannel   = errors.New("model: no such channel")
	ErrBadBounds   = errors.New("model: bounds must satisfy 1 <= L <= U")
	ErrBadProc     = errors.New("model: process ids must lie in 1..n")
	ErrSelfLoop    = errors.New("model: self-loop channels are not allowed")
	ErrDupChannel  = errors.New("model: duplicate channel")
	ErrEmptyPath   = errors.New("model: path must contain at least one process")
	ErrBrokenPath  = errors.New("model: path uses a non-existent channel")
	ErrNoProcesses = errors.New("model: network needs at least one process")
)

// Builder accumulates processes and channels and produces an immutable
// Network. The zero value is not usable; call NewBuilder.
type Builder struct {
	n     int
	chans map[Channel]Bounds
	err   error
}

// NewBuilder returns a Builder for a network over processes 1..n.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, chans: make(map[Channel]Bounds)}
}

// Chan adds the directed channel from -> to with bounds [lower, upper].
// Errors are latched and reported by Build.
func (b *Builder) Chan(from, to ProcID, lower, upper int) *Builder {
	if b.err != nil {
		return b
	}
	switch {
	case from < 1 || int(from) > b.n || to < 1 || int(to) > b.n:
		b.err = fmt.Errorf("%w: channel %d->%d in network of size %d", ErrBadProc, from, to, b.n)
	case from == to:
		b.err = fmt.Errorf("%w: %d->%d", ErrSelfLoop, from, to)
	default:
		ch := Channel{From: from, To: to}
		if _, dup := b.chans[ch]; dup {
			b.err = fmt.Errorf("%w: %s", ErrDupChannel, ch)
			return b
		}
		bd := Bounds{Lower: lower, Upper: upper}
		if !bd.Valid() {
			b.err = fmt.Errorf("%w: channel %s has %s", ErrBadBounds, ch, bd)
			return b
		}
		b.chans[ch] = bd
	}
	return b
}

// BiChan adds both directions with the same bounds.
func (b *Builder) BiChan(p, q ProcID, lower, upper int) *Builder {
	return b.Chan(p, q, lower, upper).Chan(q, p, lower, upper)
}

// Build finalizes the network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.n < 1 {
		return nil, ErrNoProcesses
	}
	net := &Network{
		n:        b.n,
		chans:    make(map[Channel]Bounds, len(b.chans)),
		outAdj:   make(map[ProcID][]ProcID),
		inAdj:    make(map[ProcID][]ProcID),
		minLower: Infinity,
	}
	for ch, bd := range b.chans {
		net.chans[ch] = bd
		net.outAdj[ch.From] = append(net.outAdj[ch.From], ch.To)
		net.inAdj[ch.To] = append(net.inAdj[ch.To], ch.From)
		net.channels = append(net.channels, ch)
		if bd.Upper > net.maxUpper {
			net.maxUpper = bd.Upper
		}
		if bd.Lower < net.minLower {
			net.minLower = bd.Lower
		}
	}
	for _, adj := range net.outAdj {
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	for _, adj := range net.inAdj {
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	sort.Slice(net.channels, func(i, j int) bool {
		if net.channels[i].From != net.channels[j].From {
			return net.channels[i].From < net.channels[j].From
		}
		return net.channels[i].To < net.channels[j].To
	})
	return net, nil
}

// MustBuild is Build that panics on error; intended for tests and fixtures.
func (b *Builder) MustBuild() *Network {
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	return net
}

// N returns the number of processes.
func (net *Network) N() int { return net.n }

// Procs returns the process ids 1..n in order.
func (net *Network) Procs() []ProcID {
	ps := make([]ProcID, net.n)
	for i := range ps {
		ps[i] = ProcID(i + 1)
	}
	return ps
}

// ValidProc reports whether p is a process of this network.
func (net *Network) ValidProc(p ProcID) bool { return p >= 1 && int(p) <= net.n }

// HasChan reports whether the directed channel from -> to exists.
func (net *Network) HasChan(from, to ProcID) bool {
	_, ok := net.chans[Channel{From: from, To: to}]
	return ok
}

// ChanBounds returns the bounds of channel from -> to.
func (net *Network) ChanBounds(from, to ProcID) (Bounds, error) {
	bd, ok := net.chans[Channel{From: from, To: to}]
	if !ok {
		return Bounds{}, fmt.Errorf("%w: %d->%d", ErrNoChannel, from, to)
	}
	return bd, nil
}

// Lower returns L_{from,to}; it panics if the channel does not exist
// (channel existence is a structural invariant the caller must hold).
func (net *Network) Lower(from, to ProcID) int {
	bd, err := net.ChanBounds(from, to)
	if err != nil {
		panic(err)
	}
	return bd.Lower
}

// Upper returns U_{from,to}; it panics if the channel does not exist.
func (net *Network) Upper(from, to ProcID) int {
	bd, err := net.ChanBounds(from, to)
	if err != nil {
		panic(err)
	}
	return bd.Upper
}

// Out returns the out-neighbours of p in ascending order. The returned slice
// is shared; callers must not mutate it.
func (net *Network) Out(p ProcID) []ProcID { return net.outAdj[p] }

// In returns the in-neighbours of p in ascending order. The returned slice
// is shared; callers must not mutate it.
func (net *Network) In(p ProcID) []ProcID { return net.inAdj[p] }

// Channels returns all channels in deterministic order. The returned slice
// is shared; callers must not mutate it.
func (net *Network) Channels() []Channel { return net.channels }

// NumChannels returns |Chans|.
func (net *Network) NumChannels() int { return len(net.channels) }

// MaxUpper returns the largest upper bound over all channels (0 if none).
func (net *Network) MaxUpper() int { return net.maxUpper }

// MinLower returns the smallest lower bound over all channels
// (Infinity if the network has no channels).
func (net *Network) MinLower() int { return net.minLower }

// String renders a compact description such as
// "Net(n=3; 1->2[1,4] 1->3[2,2])".
func (net *Network) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Net(n=%d;", net.n)
	for _, ch := range net.channels {
		fmt.Fprintf(&sb, " %s%s", ch, net.chans[ch])
	}
	sb.WriteString(")")
	return sb.String()
}
