package bounds

import (
	"errors"
	"fmt"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/run"
)

// Knowledge query errors.
var (
	ErrNotRecognized = errors.New("bounds: general node not sigma-recognized")
	ErrInitialChain  = errors.New("bounds: message chain cannot leave an initial node")
	ErrNoKnowledge   = errors.New("bounds: no bound is known (no constraint path)")
)

// VertexOfGeneral returns the query-graph vertex representing the general
// node theta = <sigma', p'>. theta must be sigma-recognized (sigma' in
// past(r, sigma)). The chain is resolved against the run while it stays
// inside the past; the suffix beyond the horizon is materialized as fresh
// chain vertices carrying the constraint edges
//
//	prev --L--> eta,  eta --(-U)--> prev,  psi_proc(eta) --0--> eta,
//
// deduplicated across queries by the integer pair (parent vertex, next
// process) — a complete identity for the delivery the vertex denotes — so
// that nodes sharing chain prefixes share vertices (Definition 20's type-4
// constraint paths need this).
func (e *Extended) VertexOfGeneral(theta run.GeneralNode) (int, error) {
	if err := theta.Valid(e.view.Net()); err != nil {
		return 0, err
	}
	if !e.past.Recognized(theta) {
		return 0, fmt.Errorf("%w: %s", ErrNotRecognized, theta)
	}
	if theta.Path.Hops() == 0 {
		// Basic node: no chain to resolve, and no prefix slice to build —
		// this keeps the weight-only threshold query allocation-free.
		return e.VertexOfPast(theta.Base)
	}
	prefix, hops := e.view.ResolvePrefix(theta)
	cur := prefix[len(prefix)-1]
	if hops == theta.Path.Hops() {
		return e.VertexOfPast(cur)
	}
	if cur.IsInitial() {
		// The chain stalled because an initial node never sends; such a
		// general node denotes nothing in any run containing sigma.
		return 0, fmt.Errorf("%w: %s stalls at %s", ErrInitialChain, theta, cur)
	}
	curVertex, err := e.VertexOfPast(cur)
	if err != nil {
		return 0, err
	}
	net := e.view.Net()
	for k := hops + 1; k <= theta.Path.Hops(); k++ {
		from, to := theta.Path[k-1], theta.Path[k]
		key := chainKey{parent: int32(curVertex), to: to}
		next, ok := e.chainVertices[key]
		if !ok {
			next = e.g.AddVertex()
			e.chainVertices[key] = next
			e.chainNodes = append(e.chainNodes, run.Via(theta.Base, theta.Path[:k+1].Clone()))
			bd, berr := net.ChanBounds(from, to)
			if berr != nil {
				return 0, berr
			}
			e.g.AddEdge(curVertex, next, bd.Lower)
			e.g.AddEdge(next, curVertex, -bd.Upper)
			e.g.AddEdge(e.AuxVertex(to), next, 0)
		}
		curVertex = next
	}
	return curVertex, nil
}

// stepAt materializes the Step semantics of the query-graph edge (u, v, w),
// verifying that such an edge exists. The classification is forced by the
// vertex classes: edges between auxiliary vertices are horizon hops, edges
// into/out of the auxiliary band are the E'/E”/chain-anchor families, and
// the remaining node-to-node edges follow the basic-graph rules (same
// process: successor; otherwise the sign of the weight separates forward
// message edges from backward ones).
func (e *Extended) stepAt(u, v, w int) (Step, bool) {
	exists := false
	for _, ed := range e.g.Out(u) {
		if ed.To == v && ed.Weight == w {
			exists = true
			break
		}
	}
	if !exists {
		return Step{}, false
	}
	from, to := e.PointOf(u), e.PointOf(v)
	var kind StepKind
	switch {
	case from.Aux && to.Aux:
		kind = StepAuxHop
	case from.Aux && e.isChain(v):
		kind = StepAuxChain
	case from.Aux:
		kind = StepAuxExit
	case to.Aux:
		kind = StepAuxEnter
	case !e.isChain(u) && !e.isChain(v) && from.Node.Proc() == to.Node.Proc():
		kind = StepSucc
	case w > 0:
		kind = StepLower
	default:
		kind = StepUpper
	}
	return Step{Kind: kind, From: from, To: to, Weight: w}, true
}

// stepsOf reconstructs Step metadata for a vertex path of the query graph.
func (e *Extended) stepsOf(path []int, dist []int64) ([]Step, error) {
	steps := make([]Step, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		w := int(dist[v] - dist[u])
		st, ok := e.stepAt(u, v, w)
		if !ok {
			return nil, fmt.Errorf("bounds: missing edge metadata %d->%d (w=%d)", u, v, w)
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// KnowledgeWeight computes kw = max{ x : K_sigma(theta1 --x--> theta2) },
// the strongest timed precedence between theta1 and theta2 known at sigma
// (Theorem 4), as the longest constraint path from theta1 to theta2 in the
// query graph. It returns the realizing constraint path for witness
// extraction. known is false — with err == nil — when no bound is known at
// any x (no constraint path exists; the fast-run construction of Definition
// 24 can then delay theta1 arbitrarily past theta2).
//
// The query runs one SPFA pass over the graph's scratch buffers and
// reconstructs the path from its distances, so repeated queries on one
// Extended allocate only their result steps.
func (e *Extended) KnowledgeWeight(theta1, theta2 run.GeneralNode) (kw int, steps []Step, known bool, err error) {
	u, err := e.VertexOfGeneral(theta1)
	if err != nil {
		return 0, nil, false, err
	}
	v, err := e.VertexOfGeneral(theta2)
	if err != nil {
		return 0, nil, false, err
	}
	dist, err := e.g.LongestWith(&e.scratch, u)
	if err != nil {
		return 0, nil, false, fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
	}
	path, ok, err := e.g.PathFrom(&e.scratch, dist, u, v)
	if err != nil {
		return 0, nil, false, err
	}
	if !ok {
		return 0, nil, false, nil
	}
	steps, err = e.stepsOf(path, dist)
	if err != nil {
		return 0, nil, false, err
	}
	return int(dist[v]), steps, true, nil
}

// Weight computes kw = max{ x : K_sigma(theta1 --x--> theta2) } without
// reconstructing the realizing constraint path: one SPFA pass over the
// scratch buffers, one distance lookup, no witness Steps. It is the
// weight-only fast path behind Knows and KnowsAt — boolean threshold
// queries never pay for witness materialization. KnowledgeWeight remains
// the witness-bearing variant for extraction consumers.
func (e *Extended) Weight(theta1, theta2 run.GeneralNode) (kw int, known bool, err error) {
	u, err := e.VertexOfGeneral(theta1)
	if err != nil {
		return 0, false, err
	}
	v, err := e.VertexOfGeneral(theta2)
	if err != nil {
		return 0, false, err
	}
	dist, err := e.g.LongestWith(&e.scratch, u)
	if err != nil {
		return 0, false, fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
	}
	if dist[v] == graph.NegInf {
		return 0, false, nil
	}
	return int(dist[v]), true, nil
}

// Knows reports whether K_sigma(theta1 --x--> theta2) holds: whether sigma,
// in its current local state, knows that theta1 occurs at least x time units
// before theta2 in every indistinguishable run. It runs weight-only — the
// witness path a KnowledgeWeight call would materialize is never built.
func (e *Extended) Knows(theta1 run.GeneralNode, x int, theta2 run.GeneralNode) (bool, error) {
	kw, known, err := e.Weight(theta1, theta2)
	if err != nil {
		return false, err
	}
	return known && kw >= x, nil
}

// KnowsAt evaluates a whole threshold grid against one weight computation:
// holds[i] is set to Knows(theta1, xs[i], theta2). The knowledge operator is
// threshold-shaped (Theorem 4), so after the single SPFA every extra
// threshold is one comparison. holds must have at least len(xs) entries (a
// caller-owned buffer keeps the grid query allocation-free).
func (e *Extended) KnowsAt(theta1 run.GeneralNode, xs []int, theta2 run.GeneralNode, holds []bool) (kw int, known bool, err error) {
	kw, known, err = e.Weight(theta1, theta2)
	if err != nil {
		return 0, false, err
	}
	for i, x := range xs {
		holds[i] = known && kw >= x
	}
	return kw, known, nil
}
