package bounds

import (
	"fmt"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/run"
)

// The batched knowledge-query plane. Knows(theta1, x, theta2) is exactly
// KnowledgeWeight(theta1, theta2) >= x (Theorem 4), and one SPFA from a
// source already prices every target, so a batch of (theta1, x, theta2)
// triples needs one relaxation per DISTINCT source: the queries of a source
// group — every target, every threshold — are O(1) lookups into that group's
// distance array. QueryBatch implements the grouping on all three engines;
// it is the server-side hot path a knowledge daemon answers request batches
// through.

// Query is one (theta1, x, theta2) knowledge question of a batch: does the
// agent know that Theta1 occurs at least X time units before Theta2?
type Query struct {
	Theta1 run.GeneralNode
	X      int
	Theta2 run.GeneralNode
}

// Answer is the verdict of one batch query: the knowledge weight between its
// endpoints (Known false when no bound is known at any x) and the threshold
// verdict Holds = Known && Kw >= X.
type Answer struct {
	Kw    int
	Known bool
	Holds bool
}

// QueryBatch answers a batch of knowledge queries, one SPFA per distinct
// source node. Queries sharing Theta1 — whatever their targets and
// thresholds — are answered from a single longest-path computation; when the
// engine's forward cache matches a source, that group relaxes warm and is
// served first (later full runs overwrite the scratch). out must have at
// least len(qs) entries. An unresolvable endpoint fails the whole batch, as
// the single-query path would have failed that query.
func (o *Online) QueryBatch(qs []Query, out []Answer) error {
	if len(out) < len(qs) {
		return fmt.Errorf("bounds: QueryBatch needs %d answer slots, got %d", len(qs), len(out))
	}
	if err := o.Sync(); err != nil {
		return err
	}
	base := o.g.N()
	o.batchUs, o.batchVs, o.batchDone = o.batchUs[:0], o.batchVs[:0], o.batchDone[:0]
	for i := range qs {
		u, err := o.vertexOfGeneral(qs[i].Theta1)
		if err != nil {
			o.rollback(base)
			return err
		}
		v, err := o.vertexOfGeneral(qs[i].Theta2)
		if err != nil {
			o.rollback(base)
			return err
		}
		o.batchUs = append(o.batchUs, u)
		o.batchVs = append(o.batchVs, v)
		o.batchDone = append(o.batchDone, false)
	}

	runs := 0
	// Pass 0 serves the group matching the warm forward cache (its delta
	// relaxation must happen before any full run resets the scratch); pass 1
	// runs the remaining groups full, leaving the cache on the last source.
	for pass := 0; pass < 2; pass++ {
		for i := range qs {
			if o.batchDone[i] {
				continue
			}
			u := o.batchUs[i]
			warm := o.cacheValid && u == o.cacheSrc
			if (pass == 0) != warm {
				continue
			}
			var dist []int64
			var err error
			if warm {
				o.querySeeds = append(o.querySeeds[:0], o.seeds...)
				for j := range o.undo {
					o.querySeeds = append(o.querySeeds, o.undo[j].parent, o.undo[j].aux)
				}
				dist, err = o.g.RelaxFrom(&o.scratch, o.querySeeds)
			} else {
				dist, err = o.g.LongestWith(&o.scratch, u)
				o.cacheSrc = u
				o.cacheValid = u < base
			}
			if err != nil {
				o.cacheValid = false
				o.rollback(base)
				return fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
			}
			runs++
			o.seeds = o.seeds[:0]
			for j := i; j < len(qs); j++ {
				if o.batchDone[j] || o.batchUs[j] != u {
					continue
				}
				w := dist[o.batchVs[j]]
				a := Answer{Known: w != graph.NegInf}
				if a.Known {
					a.Kw = int(w)
					a.Holds = a.Kw >= qs[j].X
				}
				out[j] = a
				o.batchDone[j] = true
			}
		}
	}
	o.stats.BatchQueries += int64(len(qs))
	o.stats.BatchHits += int64(len(qs) - runs)
	o.rollback(base)
	return nil
}

// QueryBatch answers a batch of knowledge queries against the offline
// extended graph, one SPFA per distinct source node (see Online.QueryBatch).
// out must have at least len(qs) entries.
func (e *Extended) QueryBatch(qs []Query, out []Answer) error {
	if len(out) < len(qs) {
		return fmt.Errorf("bounds: QueryBatch needs %d answer slots, got %d", len(qs), len(out))
	}
	us := make([]int, len(qs))
	vs := make([]int, len(qs))
	done := make([]bool, len(qs))
	for i := range qs {
		u, err := e.VertexOfGeneral(qs[i].Theta1)
		if err != nil {
			return err
		}
		v, err := e.VertexOfGeneral(qs[i].Theta2)
		if err != nil {
			return err
		}
		us[i], vs[i] = u, v
	}
	for i := range qs {
		if done[i] {
			continue
		}
		u := us[i]
		dist, err := e.g.LongestWith(&e.scratch, u)
		if err != nil {
			return fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
		}
		for j := i; j < len(qs); j++ {
			if done[j] || us[j] != u {
				continue
			}
			w := dist[vs[j]]
			a := Answer{Known: w != graph.NegInf}
			if a.Known {
				a.Kw = int(w)
				a.Holds = a.Kw >= qs[j].X
			}
			out[j] = a
			done[j] = true
		}
	}
	return nil
}

// QueryBatch answers a batch of knowledge queries under the handle's
// frontier restriction, one restricted SPFA per distinct source node (see
// Online.QueryBatch). The whole batch holds the engine lock once. out must
// have at least len(qs) entries.
func (h *Handle) QueryBatch(qs []Query, out []Answer) error {
	if len(out) < len(qs) {
		return fmt.Errorf("bounds: QueryBatch needs %d answer slots, got %d", len(qs), len(out))
	}
	s := h.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := h.sync(); err != nil {
		return err
	}
	if h.scratch == nil {
		h.scratch = s.eng.leaseScratch()
	}
	base := s.g.N()
	h.batchUs, h.batchVs, h.batchDone = h.batchUs[:0], h.batchVs[:0], h.batchDone[:0]
	for i := range qs {
		u, err := h.vertexOfGeneral(qs[i].Theta1)
		if err != nil {
			h.rollback(base)
			return err
		}
		v, err := h.vertexOfGeneral(qs[i].Theta2)
		if err != nil {
			h.rollback(base)
			return err
		}
		h.batchUs = append(h.batchUs, u)
		h.batchVs = append(h.batchVs, v)
		h.batchDone = append(h.batchDone, false)
	}

	// Built after every chain vertex is materialized: vis may reallocate
	// while endpoints resolve.
	r := graph.Restriction{
		Visible: h.vis,
		Band:    s.band, Idx: s.idx, Limit: h.limit,
		Overlay: h.overlay, ROverlay: h.roverlay,
		BoundaryTo: s.eng.boundaryTo, BoundaryWeight: 1,
		BoundaryFrom: h.bfrom,
	}
	runs := 0
	for pass := 0; pass < 2; pass++ {
		for i := range qs {
			if h.batchDone[i] {
				continue
			}
			u := h.batchUs[i]
			warm := h.cacheValid && u == h.cacheSrc
			if (pass == 0) != warm {
				continue
			}
			var dist []int64
			var err error
			if warm {
				h.querySeeds = append(h.querySeeds[:0], h.seeds...)
				for j := range h.undo {
					h.querySeeds = append(h.querySeeds, h.undo[j].parent, h.undo[j].aux)
				}
				dist, err = s.g.RelaxRestrictedFrom(h.scratch, h.querySeeds, h.admitted, &r)
			} else {
				dist, err = s.g.LongestRestricted(h.scratch, u, &r)
				h.cacheSrc = u
				h.cacheValid = u < base
			}
			if err != nil {
				if h.scratch.Relaxations != 0 {
					s.eng.stats.relaxations.Add(h.scratch.Relaxations)
					h.scratch.Relaxations = 0
				}
				h.cacheValid = false
				h.rollback(base)
				return fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
			}
			runs++
			h.seeds = h.seeds[:0]
			h.admitted = h.admitted[:0]
			for j := i; j < len(qs); j++ {
				if h.batchDone[j] || h.batchUs[j] != u {
					continue
				}
				w := dist[h.batchVs[j]]
				a := Answer{Known: w != graph.NegInf}
				if a.Known {
					a.Kw = int(w)
					a.Holds = a.Kw >= qs[j].X
				}
				out[j] = a
				h.batchDone[j] = true
			}
		}
	}
	if h.scratch.Relaxations != 0 {
		s.eng.stats.relaxations.Add(h.scratch.Relaxations)
		h.scratch.Relaxations = 0
	}
	h.stats.BatchQueries += int64(len(qs))
	h.stats.BatchHits += int64(len(qs) - runs)
	s.eng.stats.batchQueries.Add(int64(len(qs)))
	s.eng.stats.batchHits.Add(int64(len(qs) - runs))
	h.rollback(base)
	return nil
}
