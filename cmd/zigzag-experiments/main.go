// Command zigzag-experiments regenerates every experiment in EXPERIMENTS.md:
// the paper's figures (1, 2a, 2b, 3, 4/5, 6, 7, 8), theorems (1-4) and the
// coordination-protocol comparisons. Run with -exp to select one experiment,
// or with no flags for the full suite.
//
// Usage:
//
//	zigzag-experiments [-exp name] [-seeds n] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

type experiment struct {
	name string
	desc string
	run  func(cfg config) error
}

type config struct {
	seeds   int
	verbose bool
}

var experiments = []experiment{
	{"fig1", "Figure 1: two-legged fork coordination sweep", expFigure1},
	{"fig2a", "Figure 2a: zigzag pattern and Equation (1)", expFigure2a},
	{"fig2b", "Figure 2b: visible zigzag coordination", expFigure2b},
	{"fig3", "Figure 3: multi-hop fork weights", expFigure3},
	{"fig4", "Figures 4/5: three-fork sigma-visible zigzag", expFigure4},
	{"fig6", "Figure 6: bound edges of a single delivery", expFigure6},
	{"fig7", "Figure 7: bounds-graph path behind Equation (1)", expFigure7},
	{"fig8", "Figure 8: extended bounds graph anatomy", expFigure8},
	{"thm1", "Theorem 1: zigzag sufficiency (randomized)", expTheorem1},
	{"thm2", "Theorem 2: zigzag necessity / slow-run tightness", expTheorem2},
	{"thm3", "Theorem 3: knowledge precondition audit", expTheorem3},
	{"thm4", "Theorem 4: visible zigzag <=> knowledge / fast-run tightness", expTheorem4},
	{"ablation", "Ablation: extended graph vs local graph (no auxiliary vertices)", expAblation},
	{"late", "Protocols: Late<a-x->b> optimal vs asynchronous baseline", expLate},
	{"early", "Protocols: Early<b-x->a> optimal vs (impossible) baseline", expEarly},
	{"scale", "Scaling: graph sizes and query costs vs n", expScale},
}

func main() {
	var (
		expName = flag.String("exp", "", "run a single experiment (default: all)")
		seeds   = flag.Int("seeds", 10, "number of random seeds for randomized experiments")
		verbose = flag.Bool("v", false, "verbose output")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-7s %s\n", e.name, e.desc)
		}
		return
	}
	cfg := config{seeds: *seeds, verbose: *verbose}
	names := map[string]experiment{}
	for _, e := range experiments {
		names[e.name] = e
	}
	var toRun []experiment
	if *expName != "" {
		e, ok := names[*expName]
		if !ok {
			keys := make([]string, 0, len(names))
			for k := range names {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", *expName, keys)
			os.Exit(2)
		}
		toRun = []experiment{e}
	} else {
		toRun = experiments
	}
	failures := 0
	for _, e := range toRun {
		fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
		if err := e.run(cfg); err != nil {
			failures++
			fmt.Printf("FAIL %s: %v\n\n", e.name, err)
			continue
		}
		fmt.Printf("PASS %s\n\n", e.name)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
