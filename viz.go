package zigzag

import (
	"github.com/clockless/zigzag/internal/viz"
)

// RenderTimeline renders per-process timelines of a run as ASCII art, with
// optional role names per process. upTo limits the rendered window (0 means
// the whole recording).
func RenderTimeline(r *Run, names map[ProcID]string, upTo Time) string {
	return viz.Timeline(r, names, upTo)
}

// RenderSteps renders a constraint path with running weights (the textual
// form of the paper's Figure 7).
func RenderSteps(steps []Step) string { return viz.Steps(steps) }

// RenderZigzag renders a zigzag pattern fork by fork with leg weights.
func RenderZigzag(net *Network, z *Zigzag) string { return viz.Zigzag(net, z) }

// RenderExtendedStats summarizes an extended bounds graph (the textual form
// of the paper's Figure 8).
func RenderExtendedStats(g *ExtendedGraph) string { return viz.ExtendedStats(g) }
