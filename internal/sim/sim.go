package sim

import (
	"errors"
	"fmt"

	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Config parametrizes one simulation.
type Config struct {
	// Net is the time-bounded network (required).
	Net *model.Network
	// Horizon is the last simulated time step (required, >= 1).
	Horizon model.Time
	// Policy chooses delivery instants; defaults to Eager if nil.
	Policy Policy
	// Externals is the schedule of spontaneous external inputs. Each is
	// delivered to its process at its time (time >= 1).
	Externals []run.ExternalEvent
	// Faults optionally injects a fault plan (crashes, dead links, missed
	// deadlines) into the environment. The recorded run then reflects the
	// violated model — use SimulateFaulty to also obtain the violation
	// report. Nil means the fault-free environment of the paper.
	Faults *faults.Plan
}

// ErrBadConfig reports an unusable simulation configuration.
var ErrBadConfig = errors.New("sim: bad configuration")

// Simulate executes the FFIP over cfg.Net up to cfg.Horizon and returns the
// recorded run. The dynamics follow Section 2.1 of the paper:
//
//   - processes are event-driven: a process moves only when it receives at
//     least one message (external or internal) and then, being an FFIP,
//     immediately sends its full history on every outgoing channel;
//   - the environment delivers each message within its channel's [L, U]
//     window, at the instant chosen by the Policy;
//   - initial nodes never act, so with no externals nothing ever happens.
//
// Without cfg.Faults the returned run always passes (*run.Run).Validate.
// With a fault plan the environment deviates exactly as the plan dictates
// and the recording reflects the violated model; use SimulateFaulty for the
// accompanying violation report.
func Simulate(cfg Config) (*run.Run, error) {
	r, _, err := simulate(cfg)
	return r, err
}

// SimulateFaulty is Simulate for fault-injected configurations: alongside
// the recorded run it returns the injector's settled report — every bound
// violation as a typed error plus the crashed and degraded process sets.
// With a nil cfg.Faults the report is empty but non-nil.
func SimulateFaulty(cfg Config) (*run.Run, *faults.Report, error) {
	r, inj, err := simulate(cfg)
	if err != nil {
		return nil, nil, err
	}
	if inj == nil {
		return r, &faults.Report{}, nil
	}
	return r, inj.Report(), nil
}

func simulate(cfg Config) (*run.Run, *faults.Injector, error) {
	if cfg.Net == nil {
		return nil, nil, fmt.Errorf("%w: nil network", ErrBadConfig)
	}
	if cfg.Horizon < 1 {
		return nil, nil, fmt.Errorf("%w: horizon %d < 1", ErrBadConfig, cfg.Horizon)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = Eager{}
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		var err error
		if inj, err = faults.NewInjector(cfg.Faults, cfg.Net, cfg.Horizon); err != nil {
			return nil, nil, err
		}
	}

	// arrivals[t] lists internal messages scheduled to arrive at time t:
	// horizon-indexed slice buckets rather than a map, with consumed bucket
	// backing recycled through a freelist to keep the hot loop allocation-
	// light.
	arrivals := make([][]Send, cfg.Horizon+1)
	extAt := make([][]run.ExternalEvent, cfg.Horizon+1)
	for _, ev := range cfg.Externals {
		if !cfg.Net.ValidProc(ev.Proc) {
			return nil, nil, fmt.Errorf("%w: external %q to process %d", ErrBadConfig, ev.Label, ev.Proc)
		}
		if ev.Time < 1 || ev.Time > cfg.Horizon {
			return nil, nil, fmt.Errorf("%w: external %q at time %d outside [1,%d]",
				ErrBadConfig, ev.Label, ev.Time, cfg.Horizon)
		}
		if inj != nil && inj.Dead(ev.Proc, ev.Time) {
			continue // delivered into a crashed process: no batch, no node
		}
		extAt[ev.Time] = append(extAt[ev.Time], ev)
	}

	bl := run.NewBuilder(cfg.Net, cfg.Horizon)
	if inj != nil {
		bl.Tolerate()
	}
	n := cfg.Net.N()
	var free [][]Send

	// send floods the history of process p at time t on all outgoing
	// channels, scheduling each delivery per the policy. The per-process arc
	// slice carries destination and bounds together, so the loop is one
	// contiguous read with no per-channel lookups. The fault hooks mirror
	// the live environment loops exactly: dead-link drops and deadline
	// delays act on the policy's schedule, and messages to destinations the
	// (static) plan has crashed by arrival are discarded here at flood time,
	// so no mode ever materializes an arrival at a dead process.
	send := func(p model.ProcID, t model.Time) error {
		arcs := cfg.Net.OutArcs(p)
		for _, a := range arcs {
			if inj != nil && inj.SendDrop(a.ID, p, a.To, t) {
				continue
			}
			s := Send{From: p, To: a.To, SendTime: t}
			lat := policy.Latency(s, a.Bounds)
			if err := validateLatency(policy, s, a.Bounds, lat); err != nil {
				return err
			}
			if inj != nil {
				lat = inj.Delay(a.ID, p, a.To, t, lat)
			}
			rt := t + lat
			if rt > cfg.Horizon {
				continue // in transit at the horizon; recorded as pending
			}
			if inj != nil && inj.Dead(a.To, rt) {
				inj.Discard(a.ID, p, a.To, t, rt)
				continue
			}
			if arrivals[rt] == nil {
				if len(free) > 0 {
					arrivals[rt] = free[len(free)-1]
					free = free[:len(free)-1]
				} else {
					arrivals[rt] = make([]Send, 0, len(arcs))
				}
			}
			arrivals[rt] = append(arrivals[rt], s)
		}
		return nil
	}

	// received[p] marks processes that got something this tick; reused
	// across ticks and cleared entry by entry in the flooding pass.
	received := make([]bool, n+1)
	for t := model.Time(1); t <= cfg.Horizon; t++ {
		active := false
		for _, s := range arrivals[t] {
			bl.Message(run.MessageEvent{
				FromProc: s.From,
				ToProc:   s.To,
				SendTime: s.SendTime,
				RecvTime: t,
			})
			if inj != nil {
				inj.Deliver(cfg.Net.ChanIDOf(s.From, s.To), s.From, s.To, s.SendTime, t)
			}
			received[s.To] = true
			active = true
		}
		if arrivals[t] != nil {
			free = append(free, arrivals[t][:0])
			arrivals[t] = nil
		}
		for _, ev := range extAt[t] {
			bl.External(ev)
			received[ev.Proc] = true
			active = true
		}
		if !active {
			continue
		}
		// Every process that received something transitions to a new node
		// and floods. Iterate in process order for determinism.
		for p := model.ProcID(1); int(p) <= n; p++ {
			if received[p] {
				received[p] = false
				if err := send(p, t); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	r, err := bl.Build()
	if err != nil {
		return nil, nil, err
	}
	return r, inj, nil
}

// MustSimulate is Simulate that panics on error; intended for fixtures.
func MustSimulate(cfg Config) *run.Run {
	r, err := Simulate(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// GoAt returns an external schedule consisting of a single input labelled
// label delivered to proc at time t. It is the common trigger in the
// coordination scenarios: the spontaneous mu_go message of Definition 1.
func GoAt(proc model.ProcID, t model.Time, label string) []run.ExternalEvent {
	return []run.ExternalEvent{{Proc: proc, Time: t, Label: label}}
}
