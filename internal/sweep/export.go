package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export formats for sweep aggregates, used by `zigzag-sim -sweep -format`.
// The text table (Table) is for eyes; CSV and JSON are for feeding figure
// scripts and downstream analysis.

// csvHeader is the column schema of WriteCSV, one row per
// (scenario, policy, mode) aggregate. Gap columns are empty when no cell of
// the group acted; the agent columns are zero for sim rows.
var csvHeader = []string{
	"scenario", "mode", "policy", "runs", "errors",
	"nodes_mean", "nodes_min", "nodes_p50", "nodes_p90", "nodes_max",
	"deliveries_mean", "deliveries_min", "deliveries_p50", "deliveries_p90", "deliveries_max",
	"task_runs", "acted",
	"gap_mean", "gap_min", "gap_p50", "gap_p90", "gap_max", "gap_stddev",
	"agents", "agents_acted",
	"prefix_hits", "prefix_misses",
	"rev_hits", "rev_rebuilds", "band_refreshes", "rev_relaxations",
	"replay_batches", "replay_chunks",
	"batch_queries", "batch_hits", "x_fanout",
	"degraded", "crashed", "violations", "err",
}

// WriteCSV renders aggregates as CSV in the given order, one row per
// (scenario, policy, mode) aggregate, with a header row.
func WriteCSV(w io.Writer, aggs []Aggregate) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, a := range aggs {
		mode := a.Mode
		if mode == "" {
			mode = ModeSim
		}
		row := []string{
			a.Scenario, mode, a.Policy, strconv.Itoa(a.Runs), strconv.Itoa(a.Errors),
			f(a.Nodes.Mean), f(a.Nodes.Min), f(a.Nodes.P50), f(a.Nodes.P90), f(a.Nodes.Max),
			f(a.Deliveries.Mean), f(a.Deliveries.Min), f(a.Deliveries.P50), f(a.Deliveries.P90), f(a.Deliveries.Max),
			strconv.Itoa(a.TaskRuns), strconv.Itoa(a.Acted),
			"", "", "", "", "", "",
			strconv.Itoa(a.AgentRuns), strconv.Itoa(a.AgentsActed),
			strconv.Itoa(a.PrefixHits), strconv.Itoa(a.PrefixMisses),
			strconv.FormatInt(a.Rev.RevHits, 10), strconv.FormatInt(a.Rev.RevRebuilds, 10),
			strconv.FormatInt(a.Rev.BandRefreshes, 10), strconv.FormatInt(a.Rev.RevRelaxations, 10),
			strconv.Itoa(a.ReplayBatches), strconv.Itoa(a.ReplayChunks),
			strconv.FormatInt(a.Rev.BatchQueries, 10), strconv.FormatInt(a.Rev.BatchHits, 10),
			strconv.Itoa(a.XFanout),
			strconv.Itoa(a.Degraded), strconv.Itoa(a.Crashed), strconv.Itoa(a.Violations), a.FirstErr,
		}
		if a.Acted > 0 {
			row[17] = f(a.Gap.Mean)
			row[18] = f(a.Gap.Min)
			row[19] = f(a.Gap.P50)
			row[20] = f(a.Gap.P90)
			row[21] = f(a.Gap.Max)
			row[22] = f(a.Gap.Stddev)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders aggregates as an indented JSON array in the given order.
func WriteJSON(w io.Writer, aggs []Aggregate) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(aggs)
}

// ErrBadFormat reports an output format Write does not understand.
var ErrBadFormat = fmt.Errorf("sweep: unknown output format (want table, csv or json)")

// ValidFormat reports whether Write understands the named format, so
// front ends can fail fast before running a grid. The empty string means
// the default ("table").
func ValidFormat(format string) bool {
	switch format {
	case "", "table", "csv", "json":
		return true
	}
	return false
}

// Write renders aggregates in the named format: "table" (the aligned text
// table), "csv" or "json".
func Write(w io.Writer, format string, aggs []Aggregate) error {
	switch format {
	case "", "table":
		_, err := io.WriteString(w, Table(aggs))
		return err
	case "csv":
		return WriteCSV(w, aggs)
	case "json":
		return WriteJSON(w, aggs)
	default:
		return fmt.Errorf("%w: %q", ErrBadFormat, format)
	}
}
