// Package graph provides the weighted-digraph machinery behind the bounds
// graphs of the paper: longest-path computation with positive-cycle
// detection. In a bounds graph an edge u --w--> v encodes the constraint
// time(v) >= time(u) + w, so the longest path from u to v is the tightest
// provable lower bound on time(v) - time(u); a positive cycle would assert
// that a node occurs strictly after itself, which is absurd, so its
// detection signals an inconsistent (illegal) run.
package graph

import (
	"errors"
	"fmt"
)

// NegInf is the "no path" distance sentinel. It is far enough from the
// representable range that adding edge weights to it cannot wrap.
const NegInf = int64(-1) << 60

// ErrPositiveCycle reports that the graph contains a cycle of positive
// weight reachable in the queried direction, i.e. the constraint system is
// unsatisfiable.
var ErrPositiveCycle = errors.New("graph: positive-weight cycle")

// Edge is a directed weighted edge.
type Edge struct {
	To     int
	Weight int
}

// Graph is a mutable directed graph over vertices 0..n-1 with integer edge
// weights. It is not safe for concurrent mutation.
type Graph struct {
	adj  [][]Edge
	radj [][]Edge
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n), radj: make([][]Edge, n)}
}

// NewWithDegrees returns an empty graph on len(out) == len(in) vertices whose
// per-vertex adjacency slices are carved, with exact capacities, out of two
// shared backing arrays sized by the given out-/in-degree counts. Callers
// that can count edges up front (the bounds-graph constructions do) then add
// every edge without a single adjacency reallocation: the whole graph costs
// O(1) allocations instead of O(V) append churn. AddEdge beyond the declared
// degree of a vertex — and AddVertex — still work; they simply fall back to
// ordinary append growth.
func NewWithDegrees(out, in []int32) *Graph {
	if len(out) != len(in) {
		panic(fmt.Sprintf("graph: degree tables disagree: %d vs %d vertices", len(out), len(in)))
	}
	n := len(out)
	g := &Graph{adj: make([][]Edge, n), radj: make([][]Edge, n)}
	var totalOut, totalIn int32
	for i := 0; i < n; i++ {
		totalOut += out[i]
		totalIn += in[i]
	}
	outBacking := make([]Edge, totalOut)
	inBacking := make([]Edge, totalIn)
	var oOff, iOff int32
	for i := 0; i < n; i++ {
		g.adj[i] = outBacking[oOff : oOff : oOff+out[i]]
		g.radj[i] = inBacking[iOff : iOff : iOff+in[i]]
		oOff += out[i]
		iOff += in[i]
	}
	return g
}

// Clone returns a graph with this graph's vertices and edges whose
// per-vertex adjacency slices alias the original's backing arrays with zero
// spare capacity: cloning costs O(1) allocations (the struct and the two
// header arrays) regardless of edge count, and any append in the clone
// (AddVertex, AddEdge) copies on growth instead of writing into shared
// memory. The contract mirrors three-index slicing: a clone may freely add
// vertices and edges, and remove edges it added itself, but removing an edge
// that was present at clone time would mutate the shared backing and corrupt
// the original and every sibling clone.
//
// The contract is freeze-and-extend and composes along chains: a clone that
// has itself been extended may be cloned again, freezing ITS state as the
// new baseline, and so on (prototype -> run graph -> frozen prefix ->
// stamped run ...). Two aliasing rules make every link of such a chain
// safe, including concurrently:
//
//   - A donor that keeps growing after being cloned never invalidates the
//     clone. In-place appends write only at indices at or beyond the
//     clone-time lengths — addresses no reader of the frozen prefix ever
//     touches — and appends beyond capacity relocate the donor's slice
//     entirely. Each side reads and writes a disjoint region of any shared
//     backing, so donor and clone need no synchronization between them.
//   - A donor may remove edges it added after the most recent freeze (its
//     own speculative material): swap-deletion moves entries only within
//     the post-freeze tail, indices the frozen prefix capped away. Edges
//     that predate the freeze are immutable forever.
//
// Restriction coordinates kept alongside a graph (band/idx tables, see
// Restriction) follow the same discipline: they are append-only, so a
// frozen prefix can alias them with zero spare capacity and both sides stay
// valid across any number of re-stampings.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Edge, len(g.adj)), radj: make([][]Edge, len(g.radj))}
	for i, es := range g.adj {
		c.adj[i] = es[:len(es):len(es)]
	}
	for i, es := range g.radj {
		c.radj[i] = es[:len(es):len(es)]
	}
	return c
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// CloneBytes returns the approximate number of bytes one Clone of this graph
// copies: the two adjacency header arrays (three words per vertex each).
// Engine tiers use it to meter stamping cost without instrumenting Clone
// itself.
func (g *Graph) CloneBytes() int64 {
	const sliceHeader = 24 // unsafe.Sizeof([]Edge{}) on 64-bit targets
	return int64(len(g.adj)+len(g.radj)) * sliceHeader
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total
}

// AddVertex appends a fresh isolated vertex and returns its id.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.radj = append(g.radj, nil)
	return len(g.adj) - 1
}

// AddVertexWithCaps is AddVertex with adjacency capacity hints: both lists
// are carved out of one backing allocation, so a vertex whose eventual
// degrees stay within the hints costs a single allocation no matter how its
// edges trickle in (incremental callers add them one sync at a time).
// Exceeding a hint falls back to ordinary append growth.
func (g *Graph) AddVertexWithCaps(outCap, inCap int) int {
	backing := make([]Edge, outCap+inCap)
	g.adj = append(g.adj, backing[0:0:outCap])
	g.radj = append(g.radj, backing[outCap:outCap:outCap+inCap])
	return len(g.adj) - 1
}

// AddEdge inserts the edge u --w--> v. Parallel edges are allowed (only the
// heaviest matters for longest paths). It panics on out-of-range vertices —
// vertex allocation is the caller's structural invariant.
func (g *Graph) AddEdge(u, v, w int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside 0..%d", u, v, len(g.adj)-1))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	g.radj[v] = append(g.radj[v], Edge{To: u, Weight: w})
}

// Out returns the out-edges of u. Callers must not mutate the result.
func (g *Graph) Out(u int) []Edge { return g.adj[u] }

// In returns the in-edges of u, pointing back at the edge sources with the
// same weights. Callers must not mutate the result.
func (g *Graph) In(u int) []Edge { return g.radj[u] }

// Scratch holds the reusable working buffers of the longest-path queries:
// distances, queue membership, relaxation counters, the SPFA ring queue and
// the tight-path reconstruction state. A zero Scratch is ready to use; the
// buffers grow to the largest graph queried and are then reused, so repeated
// queries on a (growing) graph stop allocating O(V) per call. A Scratch is
// owned by one querier at a time — it is not safe for concurrent use.
type Scratch struct {
	// Relaxations accumulates the number of successful SPFA relaxations
	// (distance improvements) across the queries run through this scratch —
	// a cheap work meter. Owners read and reset it at whatever granularity
	// they aggregate (bounds harvests it per query into engine counters).
	Relaxations int64

	// n is the vertex count covered by the most recent completed
	// computation; RelaxFrom uses it to initialize vertices added since.
	n int

	dist    []int64
	inQueue []bool
	pathLen []int32
	queue   []int // ring buffer: at most one entry per vertex

	visited []bool
	from    []int
	stack   []int
}

// ensure grows the buffers to cover n vertices, preserving existing
// contents (RelaxFrom resumes from the distances of the previous run).
func (s *Scratch) ensure(n int) {
	if n > cap(s.dist) {
		c := 2 * cap(s.dist)
		if c < n {
			c = n
		}
		dist := make([]int64, c)
		copy(dist, s.dist)
		s.dist = dist
		s.inQueue = make([]bool, c)
		s.pathLen = make([]int32, c)
		s.queue = make([]int, c)
		s.visited = make([]bool, c)
		s.from = make([]int, c)
	}
	s.dist = s.dist[:n]
	s.inQueue = s.inQueue[:n]
	s.pathLen = s.pathLen[:n]
	s.queue = s.queue[:n]
	s.visited = s.visited[:n]
	s.from = s.from[:n]
}

// Truncate forgets distances of vertices >= n, so that a subsequent
// RelaxFrom treats re-allocated vertex ids (after PopVertex) as fresh. It
// never grows the covered range.
func (s *Scratch) Truncate(n int) {
	if n < s.n {
		s.n = n
	}
}

// Longest computes single-source longest-path distances from src using a
// queue-based Bellman–Ford (SPFA). dist[v] == NegInf means v is unreachable.
// It returns ErrPositiveCycle if a positive cycle is reachable from src.
func (g *Graph) Longest(src int) ([]int64, error) {
	return longest(src, g.adj, new(Scratch))
}

// LongestWith is Longest with caller-provided working buffers: the returned
// slice aliases s and stays valid only until s is used again.
func (g *Graph) LongestWith(s *Scratch, src int) ([]int64, error) {
	return longest(src, g.adj, s)
}

// LongestInto computes, for every vertex v, the weight of the longest path
// from v to dst, by running SPFA on the reversed graph. dist[v] == NegInf
// means dst is unreachable from v.
func (g *Graph) LongestInto(dst int) ([]int64, error) {
	return longest(dst, g.radj, new(Scratch))
}

// LongestIntoWith is LongestInto with caller-provided working buffers: the
// returned slice aliases s and stays valid only until s is used again.
func (g *Graph) LongestIntoWith(s *Scratch, dst int) ([]int64, error) {
	return longest(dst, g.radj, s)
}

func longest(src int, adj [][]Edge, s *Scratch) ([]int64, error) {
	n := len(adj)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("graph: source %d outside 0..%d", src, n-1)
	}
	s.ensure(n)
	dist := s.dist
	for i := range dist {
		dist[i] = NegInf
		s.inQueue[i] = false
		s.pathLen[i] = 0
	}
	dist[src] = 0
	s.queue[0] = src
	s.inQueue[src] = true
	s.n = n
	return dist, spfa(adj, s, 1)
}

// RelaxFrom resumes a longest-path computation after monotone growth of the
// graph: s must hold the distances of a prior Longest/LongestWith run on
// this graph from the same source, before vertices and edges were ADDED
// (adding an edge or vertex never invalidates a longest-path distance
// downward, so the old fixpoint is a valid starting point; edge removal is
// not supported — recompute from scratch after one). Vertices appended since
// the prior run start unreachable; seeds must list the sources of every
// edge added since. The returned slice aliases s, as with LongestWith.
func (g *Graph) RelaxFrom(s *Scratch, seeds []int) ([]int64, error) {
	n := len(g.adj)
	if s.n == 0 {
		return nil, errors.New("graph: RelaxFrom without a prior computation")
	}
	if s.n > n {
		return nil, fmt.Errorf("graph: RelaxFrom after shrink: %d vertices, scratch covers %d", n, s.n)
	}
	old := s.n
	s.ensure(n)
	dist := s.dist
	for i := old; i < n; i++ {
		dist[i] = NegInf
	}
	for i := range s.inQueue {
		s.inQueue[i] = false
		s.pathLen[i] = 0
	}
	count := 0
	for _, v := range seeds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: seed %d outside 0..%d", v, n-1)
		}
		// Unreachable seeds cannot improve anything (and must not leak
		// NegInf+w pseudo-distances into the relaxation).
		if !s.inQueue[v] && dist[v] != NegInf {
			s.queue[count] = v
			count++
			s.inQueue[v] = true
		}
	}
	s.n = n
	return dist, spfa(g.adj, s, count)
}

// RelaxReverseFrom resumes a reverse longest-path computation after
// monotone growth of the graph: s must hold the distances of a prior
// LongestInto/LongestIntoWith run toward the same destination. Adding a
// vertex or an edge never lowers any distance INTO the destination, so the
// prior fixpoint is a valid starting point. Reverse relaxation propagates
// head -> tail, so seeds must list the HEADS of every edge added since the
// prior run. Edge removal can lower a reverse distance, which a max-only
// restart would never discover: refresh must list every vertex whose
// distance toward the destination may have DECREASED since the prior run
// (see RelaxReverseRestrictedFrom for the re-derivation mechanics); refresh
// must not contain the destination itself. The returned slice aliases s, as
// with LongestIntoWith.
func (g *Graph) RelaxReverseFrom(s *Scratch, seeds, refresh []int) ([]int64, error) {
	n := len(g.adj)
	if s.n == 0 {
		return nil, errors.New("graph: RelaxReverseFrom without a prior computation")
	}
	if s.n > n {
		return nil, fmt.Errorf("graph: RelaxReverseFrom after shrink: %d vertices, scratch covers %d", n, s.n)
	}
	old := s.n
	s.ensure(n)
	dist := s.dist
	for i := old; i < n; i++ {
		dist[i] = NegInf
	}
	for _, v := range refresh {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: refresh vertex %d outside 0..%d", v, n-1)
		}
		dist[v] = NegInf
	}
	for i := range s.inQueue {
		s.inQueue[i] = false
		s.pathLen[i] = 0
	}
	count := 0
	for _, v := range seeds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: seed %d outside 0..%d", v, n-1)
		}
		if !s.inQueue[v] && dist[v] != NegInf {
			s.queue[count] = v
			count++
			s.inQueue[v] = true
		}
	}
	// Re-deriving a refresh vertex means re-popping the heads of its
	// surviving out-edges; heads that are themselves refresh-reset re-enter
	// the queue once a neighbor with a valid distance improves them.
	for _, v := range refresh {
		for _, e := range g.adj[v] {
			if h := e.To; !s.inQueue[h] && dist[h] != NegInf {
				s.queue[count] = h
				count++
				s.inQueue[h] = true
			}
		}
	}
	s.n = n
	return dist, spfa(g.radj, s, count)
}

// spfa drains the ring queue holding count seeded vertices. The queue holds
// at most one entry per vertex (inQueue guards every push), so the ring
// never overtakes its head; dequeues are O(1) index moves and the backing
// array is reused across queries instead of leaking capacity the way a
// queue[1:] re-slice does.
//
// Positive cycles are detected exactly, by path edge count: every
// relaxation records that the improving path to e.To is one edge longer
// than the one to u, and a strictly-improving path of n edges must revisit
// a vertex, around a cycle that raised its distance — a positive cycle.
// Conversely, when no positive cycle is reachable every improving path is
// simple (revisiting would imply a distance-raising cycle), so lengths stay
// below n and legal graphs are never misreported, no matter how many times
// a vertex is re-relaxed.
func spfa(adj [][]Edge, s *Scratch, count int) error {
	n := len(adj)
	dist, inQueue, pathLen, queue := s.dist, s.inQueue, s.pathLen, s.queue
	head := 0
	var relaxed int64
	for count > 0 {
		u := queue[head]
		head++
		if head == n {
			head = 0
		}
		count--
		inQueue[u] = false
		du := dist[u]
		for _, e := range adj[u] {
			if nd := du + int64(e.Weight); nd > dist[e.To] {
				dist[e.To] = nd
				relaxed++
				pathLen[e.To] = pathLen[u] + 1
				if int(pathLen[e.To]) >= n {
					s.Relaxations += relaxed
					return ErrPositiveCycle
				}
				if !inQueue[e.To] {
					tail := head + count
					if tail >= n {
						tail -= n
					}
					queue[tail] = e.To
					count++
					inQueue[e.To] = true
				}
			}
		}
	}
	s.Relaxations += relaxed
	return nil
}

// LongestPath returns the weight of a longest path from src to dst and a
// vertex sequence realizing it. ok is false if dst is unreachable.
func (g *Graph) LongestPath(src, dst int) (weight int64, path []int, ok bool, err error) {
	return g.LongestPathWith(new(Scratch), src, dst)
}

// LongestPathWith is LongestPath with caller-provided working buffers; only
// the returned path is freshly allocated.
func (g *Graph) LongestPathWith(s *Scratch, src, dst int) (weight int64, path []int, ok bool, err error) {
	dist, err := g.LongestWith(s, src)
	if err != nil {
		return 0, nil, false, err
	}
	path, ok, err = g.PathFrom(s, dist, src, dst)
	if !ok || err != nil {
		return 0, nil, false, err
	}
	return dist[dst], path, true, nil
}

// PathFrom reconstructs a longest src->dst path from distances previously
// computed by Longest/LongestWith/RelaxFrom from src (callers holding the
// distances already avoid a second SPFA run). ok is false if dst is
// unreachable. The returned path is freshly allocated.
//
// Reconstruction walks backwards from dst over tight edges (edges with
// dist[u] + w == dist[v]) using a depth-first search with a visited set.
// Any simple tight path from src to dst telescopes to dist[dst], and the
// visited set makes the walk immune to zero-weight cycles, which bounds
// graphs contain whenever a channel has L == U.
func (g *Graph) PathFrom(s *Scratch, dist []int64, src, dst int) (path []int, ok bool, err error) {
	if dst < 0 || dst >= len(dist) || dist[dst] == NegInf {
		return nil, false, nil
	}
	s.ensure(len(dist))
	visited := s.visited
	from := s.from // tight-walk successor towards dst
	for i := range visited {
		visited[i] = false
		from[i] = -1
	}
	stack := append(s.stack[:0], dst)
	visited[dst] = true
	found := dst == src
	for len(stack) > 0 && !found {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.radj[v] {
			u := e.To
			if visited[u] || dist[u] == NegInf {
				continue
			}
			if dist[u]+int64(e.Weight) != dist[v] {
				continue // not tight: not on any maximal path through v
			}
			visited[u] = true
			from[u] = v
			if u == src {
				found = true
				break
			}
			stack = append(stack, u)
		}
	}
	s.stack = stack[:0]
	if !found {
		// dst is reachable, so a fully tight optimal path exists; not
		// finding one indicates internal inconsistency.
		return nil, false, fmt.Errorf("graph: no tight path %d->%d despite dist %d", src, dst, dist[dst])
	}
	path = append(path, src)
	for at := src; at != dst; {
		at = from[at]
		path = append(path, at)
	}
	return path, true, nil
}

// RemoveEdge deletes one occurrence of the edge u --w--> v, swapping the
// last entries of the affected adjacency lists into its slots. Adjacency
// ORDER is therefore not preserved — longest-path distances are unaffected,
// but callers relying on insertion-ordered tight-path reconstruction must
// not mix it with removal. It reports whether the edge was found.
func (g *Graph) RemoveEdge(u, v, w int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	if !removeEntry(&g.adj[u], v, w) {
		return false
	}
	if !removeEntry(&g.radj[v], u, w) {
		panic(fmt.Sprintf("graph: edge (%d,%d,%d) present forward but not backward", u, v, w))
	}
	return true
}

func removeEntry(es *[]Edge, to, w int) bool {
	s := *es
	for i := range s {
		if s[i].To == to && s[i].Weight == w {
			last := len(s) - 1
			s[i] = s[last]
			*es = s[:last]
			return true
		}
	}
	return false
}

// PopVertex removes the most recently added vertex, which must be isolated
// (remove its edges first). It is the rollback companion of AddVertex for
// speculative query vertices.
func (g *Graph) PopVertex() {
	last := len(g.adj) - 1
	if last < 0 {
		panic("graph: PopVertex on empty graph")
	}
	if len(g.adj[last]) != 0 || len(g.radj[last]) != 0 {
		panic(fmt.Sprintf("graph: PopVertex on non-isolated vertex %d", last))
	}
	g.adj = g.adj[:last]
	g.radj = g.radj[:last]
}

// Reachable reports whether dst is reachable from src.
func (g *Graph) Reachable(src, dst int) bool {
	seen := make([]bool, len(g.adj))
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			return true
		}
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// ReachSet returns the set of vertices from which dst is reachable
// (including dst itself): the sigma-precedence set V_sigma of Definition 12
// when applied to a bounds graph.
func (g *Graph) ReachSet(dst int) []bool {
	seen := make([]bool, len(g.adj))
	seen[dst] = true
	stack := []int{dst}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.radj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}
