// Package pattern implements the paper's primary contribution: two-legged
// forks (Definition 5), zigzag patterns (Definition 6) and sigma-visible
// zigzag patterns (Definition 7), together with
//
//   - weight computation wt(F) = L(p1) - U(p2) and
//     wt(Z) = sum wt(F_k) + S(Z);
//   - verification of a pattern against a run, which checks the structural
//     conditions of Definition 6 and the timed-precedence guarantee of
//     Theorem 1 (tail --wt(Z)--> head);
//   - constructive extraction of zigzags from constraint paths in the
//     bounds graphs, replaying Lemma 5 (basic graph) and Lemmas 10-16
//     (extended graph, yielding sigma-visible zigzags).
package pattern

import (
	"errors"
	"fmt"
	"strings"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Pattern errors.
var (
	ErrMalformedFork  = errors.New("pattern: malformed fork")
	ErrNotAZigzag     = errors.New("pattern: fork sequence violates Definition 6")
	ErrWeightMismatch = errors.New("pattern: declared weight disagrees with recomputation")
	ErrEndpoint       = errors.New("pattern: zigzag endpoint mismatch")
	ErrNotVisible     = errors.New("pattern: zigzag is not sigma-visible")
	ErrPrecedence     = errors.New("pattern: Theorem 1 precedence violated")
	ErrUnresolvable   = errors.New("pattern: node unresolvable within the run's horizon")
)

// Fork is a two-legged fork F = <theta0, theta0 p1, theta0 p2>: message
// chains from a common base node to a head (the lower-bound leg p1) and a
// tail (the upper-bound leg p2). HeadPath and TailPath start at the base
// node's process; singleton paths denote empty legs.
type Fork struct {
	Base     run.GeneralNode
	HeadPath model.Path
	TailPath model.Path
}

// TrivialFork returns the fork (theta, theta, theta) with empty legs.
func TrivialFork(theta run.GeneralNode) Fork {
	p := model.SingletonPath(theta.Proc())
	return Fork{Base: theta, HeadPath: p, TailPath: p}
}

// Head returns head(F) = base . p1.
func (f Fork) Head() (run.GeneralNode, error) { return f.Base.Extend(f.HeadPath) }

// Tail returns tail(F) = base . p2.
func (f Fork) Tail() (run.GeneralNode, error) { return f.Base.Extend(f.TailPath) }

// Weight returns wt(F) = L(p1) - U(p2).
func (f Fork) Weight(net *model.Network) (int, error) {
	l, err := net.LowerSum(f.HeadPath)
	if err != nil {
		return 0, fmt.Errorf("%w: head leg: %v", ErrMalformedFork, err)
	}
	u, err := net.UpperSum(f.TailPath)
	if err != nil {
		return 0, fmt.Errorf("%w: tail leg: %v", ErrMalformedFork, err)
	}
	return l - u, nil
}

// Check verifies the fork's structural well-formedness in net.
func (f Fork) Check(net *model.Network) error {
	if err := f.Base.Valid(net); err != nil {
		return fmt.Errorf("%w: base %s: %v", ErrMalformedFork, f.Base, err)
	}
	for _, leg := range []model.Path{f.HeadPath, f.TailPath} {
		if len(leg) == 0 || leg.First() != f.Base.Proc() {
			return fmt.Errorf("%w: leg %s does not start at base process %d",
				ErrMalformedFork, leg, f.Base.Proc())
		}
		if err := leg.ValidIn(net); err != nil {
			return fmt.Errorf("%w: leg %s: %v", ErrMalformedFork, leg, err)
		}
	}
	return nil
}

// String renders the fork as "F(base=..., head=..., tail=...)".
func (f Fork) String() string {
	return fmt.Sprintf("F(base=%s head+%s tail+%s)", f.Base, f.HeadPath, f.TailPath)
}

// Zigzag is a zigzag pattern Z = (F_1, ..., F_c): tail(F_1) is the pattern's
// source node theta1, head(F_c) its destination theta2, and for consecutive
// forks head(F_k) and tail(F_{k+1}) lie on the same timeline with
// time(head(F_k)) <= time(tail(F_{k+1})). NonJoined[k] records whether
// head(F_k) and tail(F_{k+1}) are distinct basic nodes, in which case the
// pair contributes +1 to the weight (the S(Z) term of Definition 6).
type Zigzag struct {
	Forks     []Fork
	NonJoined []bool
}

// Len returns c, the number of forks.
func (z *Zigzag) Len() int { return len(z.Forks) }

// Tail returns tail(F_1), the pattern's source node.
func (z *Zigzag) Tail() (run.GeneralNode, error) {
	if len(z.Forks) == 0 {
		return run.GeneralNode{}, ErrNotAZigzag
	}
	return z.Forks[0].Tail()
}

// Head returns head(F_c), the pattern's destination node.
func (z *Zigzag) Head() (run.GeneralNode, error) {
	if len(z.Forks) == 0 {
		return run.GeneralNode{}, ErrNotAZigzag
	}
	return z.Forks[len(z.Forks)-1].Head()
}

// Weight returns wt(Z) = sum wt(F_k) + S(Z).
func (z *Zigzag) Weight(net *model.Network) (int, error) {
	if len(z.Forks) == 0 {
		return 0, ErrNotAZigzag
	}
	if len(z.NonJoined) != len(z.Forks)-1 {
		return 0, fmt.Errorf("%w: %d forks but %d join flags", ErrNotAZigzag, len(z.Forks), len(z.NonJoined))
	}
	total := 0
	for _, f := range z.Forks {
		w, err := f.Weight(net)
		if err != nil {
			return 0, err
		}
		total += w
	}
	for _, nj := range z.NonJoined {
		if nj {
			total++
		}
	}
	return total, nil
}

// String renders a multi-line description.
func (z *Zigzag) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Zigzag(%d forks)", len(z.Forks))
	for i, f := range z.Forks {
		fmt.Fprintf(&sb, "\n  %s", f)
		if i < len(z.NonJoined) {
			if z.NonJoined[i] {
				sb.WriteString("  | non-joined (+1)")
			} else {
				sb.WriteString("  | joined")
			}
		}
	}
	return sb.String()
}
