package run

import (
	"fmt"
	"sort"

	"github.com/clockless/zigzag/internal/model"
)

// MessageEvent describes one delivery for the Builder: the FFIP message sent
// by FromProc at SendTime (i.e. at FromProc's node whose time is exactly
// SendTime) on the channel to ToProc, delivered at RecvTime.
type MessageEvent struct {
	FromProc model.ProcID
	ToProc   model.ProcID
	SendTime model.Time
	RecvTime model.Time
}

// ExternalEvent describes a spontaneous external input for the Builder.
type ExternalEvent struct {
	Proc  model.ProcID
	Time  model.Time
	Label string
}

// Builder assembles a Run from raw timed events. Node indices are derived:
// every distinct time at which a process receives something (messages and/or
// externals) becomes one batch, creating one new basic node. The builder is
// used by the simulator and by the run-synthesis constructions of
// internal/timing (Lemma 8 run-by-timing, Definition 24 fast run).
type Builder struct {
	net      *model.Network
	horizon  model.Time
	messages []MessageEvent
	externs  []ExternalEvent
}

// NewBuilder returns a Builder for runs over net recorded up to horizon.
func NewBuilder(net *model.Network, horizon model.Time) *Builder {
	return &Builder{net: net, horizon: horizon}
}

// Message appends a delivery event.
func (bl *Builder) Message(ev MessageEvent) *Builder {
	bl.messages = append(bl.messages, ev)
	return bl
}

// External appends an external-input event.
func (bl *Builder) External(ev ExternalEvent) *Builder {
	bl.externs = append(bl.externs, ev)
	return bl
}

// Build derives node indices, wires deliveries to nodes and returns the Run.
// It fails if any event is inconsistent (bad channel, bad times, sender has
// no node at the send time, event beyond horizon). Build does NOT check the
// forced-delivery (upper bound deadline) discipline — call Validate on the
// result for full legality checking.
func (bl *Builder) Build() (*Run, error) {
	n := bl.net.N()

	// 1. Collect the receive times of every process.
	recvTimes := make([]map[model.Time]bool, n)
	for i := range recvTimes {
		recvTimes[i] = make(map[model.Time]bool)
	}
	note := func(p model.ProcID, t model.Time, what string) error {
		if !bl.net.ValidProc(p) {
			return fmt.Errorf("%w: %s at process %d", model.ErrBadProc, what, p)
		}
		if t < 1 {
			return fmt.Errorf("run: %s at time %d: receipts start at time 1", what, t)
		}
		if t > bl.horizon {
			return fmt.Errorf("%w: %s at time %d > horizon %d", ErrOutsideHorizon, what, t, bl.horizon)
		}
		recvTimes[p-1][t] = true
		return nil
	}
	for _, ev := range bl.messages {
		if err := note(ev.ToProc, ev.RecvTime, fmt.Sprintf("delivery %d->%d", ev.FromProc, ev.ToProc)); err != nil {
			return nil, err
		}
	}
	for _, ev := range bl.externs {
		if err := note(ev.Proc, ev.Time, fmt.Sprintf("external %q", ev.Label)); err != nil {
			return nil, err
		}
	}

	// 2. Assign node indices per process: index 0 at time 0, then one node
	// per distinct receive time in ascending order.
	r := &Run{
		net:     bl.net,
		horizon: bl.horizon,
		times:   make([][]model.Time, n),
		inbox:   make(map[BasicNode][]int),
		extIn:   make(map[BasicNode][]int),
		sent:    make(map[BasicNode]map[model.ProcID]int),
	}
	nodeOf := make([]map[model.Time]BasicNode, n)
	for i := 0; i < n; i++ {
		ts := make([]model.Time, 0, len(recvTimes[i])+1)
		for t := range recvTimes[i] {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		r.times[i] = append([]model.Time{0}, ts...)
		nodeOf[i] = make(map[model.Time]BasicNode, len(ts))
		for k, t := range ts {
			nodeOf[i][t] = BasicNode{Proc: model.ProcID(i + 1), Index: k + 1}
		}
	}

	// 3. Wire deliveries.
	senderAt := func(p model.ProcID, t model.Time) (BasicNode, error) {
		if t == 0 {
			return BasicNode{}, fmt.Errorf("%w: send at time 0 by process %d", ErrInitialSend, p)
		}
		b, ok := nodeOf[p-1][t]
		if !ok {
			return BasicNode{}, fmt.Errorf("run: process %d has no node at send time %d", p, t)
		}
		return b, nil
	}
	for _, ev := range bl.messages {
		if !bl.net.HasChan(ev.FromProc, ev.ToProc) {
			return nil, fmt.Errorf("%w: %d->%d", ErrChannelMissing, ev.FromProc, ev.ToProc)
		}
		from, err := senderAt(ev.FromProc, ev.SendTime)
		if err != nil {
			return nil, err
		}
		to := nodeOf[ev.ToProc-1][ev.RecvTime]
		d := Delivery{From: from, To: to, SendTime: ev.SendTime, RecvTime: ev.RecvTime}
		bd, _ := bl.net.ChanBounds(ev.FromProc, ev.ToProc)
		lat := ev.RecvTime - ev.SendTime
		if lat < bd.Lower || lat > bd.Upper {
			return nil, fmt.Errorf("%w: %s latency %d outside %s", ErrBadDelivery, d, lat, bd)
		}
		if m := r.sent[from]; m != nil {
			if _, dup := m[ev.ToProc]; dup {
				return nil, fmt.Errorf("%w: %s to %d", ErrDuplicateSend, from, ev.ToProc)
			}
		} else {
			r.sent[from] = make(map[model.ProcID]int)
		}
		idx := len(r.deliveries)
		r.deliveries = append(r.deliveries, d)
		r.sent[from][ev.ToProc] = idx
		r.inbox[to] = append(r.inbox[to], idx)
	}
	for _, ev := range bl.externs {
		to := nodeOf[ev.Proc-1][ev.Time]
		idx := len(r.externals)
		r.externals = append(r.externals, External{To: to, Time: ev.Time, Label: ev.Label})
		r.extIn[to] = append(r.extIn[to], idx)
	}

	// 4. Derive pending messages: every non-initial node sends on every
	// outgoing channel under FFIP; sends without a recorded delivery are
	// still in transit.
	for _, p := range bl.net.Procs() {
		for k := 1; k <= r.LastIndex(p); k++ {
			from := BasicNode{Proc: p, Index: k}
			st := r.times[p-1][k]
			for _, q := range bl.net.Out(p) {
				if _, ok := r.DeliveryFrom(from, q); !ok {
					r.pending = append(r.pending, Pending{From: from, To: q, SendTime: st})
				}
			}
		}
	}
	sort.Slice(r.pending, func(i, j int) bool {
		a, b := r.pending[i], r.pending[j]
		if a.SendTime != b.SendTime {
			return a.SendTime < b.SendTime
		}
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		return a.To < b.To
	})
	sort.Slice(r.deliveries, func(i, j int) bool {
		a, b := r.deliveries[i], r.deliveries[j]
		if a.RecvTime != b.RecvTime {
			return a.RecvTime < b.RecvTime
		}
		if a.To.Proc != b.To.Proc {
			return a.To.Proc < b.To.Proc
		}
		return a.From.Proc < b.From.Proc
	})
	// Re-index after sorting deliveries.
	r.inbox = make(map[BasicNode][]int)
	r.sent = make(map[BasicNode]map[model.ProcID]int)
	for idx, d := range r.deliveries {
		r.inbox[d.To] = append(r.inbox[d.To], idx)
		if r.sent[d.From] == nil {
			r.sent[d.From] = make(map[model.ProcID]int)
		}
		r.sent[d.From][d.To.Proc] = idx
	}
	return r, nil
}

// MustBuild is Build that panics on error.
func (bl *Builder) MustBuild() *Run {
	r, err := bl.Build()
	if err != nil {
		panic(err)
	}
	return r
}
