// Command trains reproduces the paper's train-dispatch motivation: a
// dispatcher clears a train onto a single-track section, and a signal box —
// which never hears from the track itself — must hold its points for x time
// units after the train enters. The guarantee comes from a zigzag pattern
// through an interlocking junction, made visible by the junction's reports.
package main

import (
	"flag"
	"fmt"
	"log"

	zigzag "github.com/clockless/zigzag"
)

func main() {
	hold := flag.Int("hold", 3, "required hold time x (time units after the train enters)")
	seed := flag.Int64("seed", 1, "random delivery seed")
	flag.Parse()

	// Processes: 1 dispatcher (C), 2 yard office, 3 interlocking junction,
	// 4 track section (A), 5 signal box (B).
	const (
		dispatch = zigzag.ProcID(1)
		yard     = zigzag.ProcID(2)
		junction = zigzag.ProcID(3)
		track    = zigzag.ProcID(4)
		signal   = zigzag.ProcID(5)
	)
	net, err := zigzag.NewNetwork(5).
		Chan(dispatch, track, 2, 3).
		Chan(dispatch, junction, 6, 8).
		Chan(yard, junction, 2, 3).
		Chan(yard, signal, 7, 9).
		Chan(junction, signal, 1, 2).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	names := map[zigzag.ProcID]string{
		dispatch: "DISPATCH", yard: "YARD", junction: "JUNC", track: "TRACK", signal: "SIGNAL",
	}

	task := zigzag.Task{Kind: zigzag.Late, X: *hold, A: track, B: signal, C: dispatch, GoTime: 1}
	r, err := zigzag.Simulate(zigzag.SimConfig{
		Net:     net,
		Horizon: 64,
		Policy:  zigzag.NewRandomPolicy(*seed),
		Externals: []zigzag.ExternalEvent{
			{Proc: dispatch, Time: 1, Label: "go"},
			{Proc: yard, Time: 10, Label: "yard-report"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(zigzag.RenderTimeline(r, names, 32))

	out, err := task.RunOptimal(r)
	if err != nil {
		log.Fatal(err)
	}
	if !out.Acted {
		fmt.Printf("signal box could not certify a %d-unit hold on this network\n", *hold)
		return
	}
	fmt.Printf("train entered the section at t=%d\n", out.ATime)
	fmt.Printf("signal box switched at t=%d — hold %d >= %d ✔ (knew >= %d)\n",
		out.ActTime, out.Gap, *hold, out.KnownBound)
	fmt.Println("\njustifying pattern:")
	fmt.Print(zigzag.RenderZigzag(net, &out.Witness.Zigzag))
	if err := out.Witness.VerifyVisible(r); err != nil {
		log.Fatalf("witness failed: %v", err)
	}

	// Contrast with the asynchronous baseline: it needs a message chain
	// from the track, and there is no channel out of the track at all.
	base, err := task.RunBaseline(r)
	if err != nil {
		log.Fatal(err)
	}
	if base.Acted {
		log.Fatal("baseline acted?! there is no track->signal chain")
	}
	fmt.Println("\nasynchronous baseline: never acts (no message chain from the track exists)")
}
