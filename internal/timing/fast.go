package timing

import (
	"fmt"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// Fast is the gamma-fast run fast_gamma_sigma(r, theta1) of Definition 24:
// a run indistinguishable from r at sigma in which theta1 is pushed as late
// as sigma's knowledge permits — its chain is delivered at upper bounds —
// while every node reachable from theta1's base in GE(r, sigma) is placed
// exactly at its longest-path distance, and everything unreachable is pulled
// at least gamma+1 time units earlier. It certifies that knowledge weights
// computed on the extended bounds graph are tight (Theorem 4): the realized
// gap time(theta2) - time(theta1) equals kw(sigma, theta1, theta2).
type Fast struct {
	// Run is the synthesized run; node identities of past nodes coincide
	// with the source run's, and sigma's view is provably identical.
	Run *run.Run
	// Sigma is the knowledge-holding node.
	Sigma run.BasicNode
	// Theta1 is the node being delayed.
	Theta1 run.GeneralNode
	// Theta1Time is time(theta1) in the synthesized run.
	Theta1Time model.Time
	// Gamma is the separation parameter of Definition 23.
	Gamma int

	pastTimes map[run.BasicNode]model.Time
	psiTimes  []model.Time
	src       *run.Run
}

// fastPolicy realizes Definition 24's delivery rules as a simulator policy:
// prescribed latencies for in-past deliveries and theta1's chain; otherwise
// as early as the channel and the auxiliary floor allow.
type fastPolicy struct {
	prescribed map[sim.Send]int
	floor      []model.Time // per process: psi_j time; arrivals beyond the past wait for it
}

func (p *fastPolicy) Latency(s sim.Send, b model.Bounds) int {
	if lat, ok := p.prescribed[s]; ok {
		return lat
	}
	lat := b.Lower
	if f := p.floor[s.To-1]; s.SendTime+lat < f {
		lat = f - s.SendTime
	}
	if lat > b.Upper {
		// Cannot happen for a valid fast timing (the E''/E''' constraints
		// bound every floor by sender time + U); clamping keeps the policy
		// total, and the post-construction SameView audit would expose any
		// resulting corruption.
		lat = b.Upper
	}
	return lat
}

func (p *fastPolicy) Name() string { return "fast-timing" }

// BuildFast constructs the gamma-fast run of theta1 in r with respect to
// sigma. horizon == 0 picks a default generous enough to resolve chains of
// moderate length in the result; pass a larger horizon when measuring nodes
// with long chains.
func BuildFast(r *run.Run, sigma run.BasicNode, theta1 run.GeneralNode, gamma int, horizon model.Time) (*Fast, error) {
	if gamma < 0 {
		return nil, fmt.Errorf("timing: negative gamma %d", gamma)
	}
	ext, err := bounds.NewExtended(r, sigma)
	if err != nil {
		return nil, err
	}
	ps := ext.Past()
	if !ps.Recognized(theta1) {
		return nil, fmt.Errorf("%w: %s", bounds.ErrNotRecognized, theta1)
	}
	if theta1.Base.IsInitial() {
		return nil, fmt.Errorf("%w: %s", ErrInitialTheta, theta1)
	}
	net := r.Net()
	g := ext.Graph()

	srcV, err := ext.VertexOfPast(theta1.Base)
	if err != nil {
		return nil, err
	}
	originV, err := ext.VertexOfPast(sigma)
	if err != nil {
		return nil, err
	}
	d, err := g.Longest(srcV)
	if err != nil {
		return nil, fmt.Errorf("timing: GE inconsistent: %w", err)
	}
	f, err := g.LongestInto(originV)
	if err != nil {
		return nil, fmt.Errorf("timing: GE inconsistent: %w", err)
	}

	// Definition 23's parameters. F1/F2 range over past nodes with no path
	// from theta1's base; D over everything reachable from it.
	var f1, f2 int64
	haveNoPath := false
	for _, n := range ps.Nodes() {
		v, _ := ext.VertexOfPast(n)
		if d[v] != graph.NegInf {
			continue
		}
		if f[v] == graph.NegInf {
			return nil, fmt.Errorf("timing: past node %s cannot reach sigma in GE", n)
		}
		if !haveNoPath || f[v] > f1 {
			f1 = f[v]
		}
		if !haveNoPath || f[v] < f2 {
			f2 = f[v]
		}
		haveNoPath = true
	}
	var dMin int64
	haveD := false
	vertexCount := g.N()
	for v := 0; v < vertexCount; v++ {
		if d[v] == graph.NegInf {
			continue
		}
		if !haveD || d[v] < dMin {
			dMin = d[v]
		}
		haveD = true
	}
	if !haveD {
		return nil, fmt.Errorf("timing: theta1 base unreachable from itself — internal error")
	}
	base := 1 + f1 - f2 + int64(gamma) - dMin

	pastTimes := make(map[run.BasicNode]model.Time, ps.Size())
	var maxT model.Time
	for _, n := range ps.Nodes() {
		v, _ := ext.VertexOfPast(n)
		var t int64
		switch {
		case n.IsInitial():
			// Initial nodes occur at time 0 in every run (r'(0) = r(0) in
			// Definition 24). They have no incoming constraint edges, and
			// their outgoing successor/E' constraints stay satisfied at 0.
			t = 0
		case d[v] != graph.NegInf:
			t = base + d[v]
		default:
			t = f1 - f[v]
		}
		if t < 0 {
			return nil, fmt.Errorf("timing: negative fast time %d for %s", t, n)
		}
		pastTimes[n] = model.Time(t)
		if model.Time(t) > maxT {
			maxT = model.Time(t)
		}
	}
	psiTimes := make([]model.Time, net.N())
	for _, p := range net.Procs() {
		v := ext.AuxVertex(p)
		if d[v] != graph.NegInf {
			psiTimes[p-1] = model.Time(base + d[v])
		} else {
			psiTimes[p-1] = 0
		}
	}

	// Lemma 17 audit: the fast timing must be a valid timing for GE.
	timeOfVertex := func(v int) (model.Time, bool) {
		pt := ext.PointOf(v)
		if pt.Aux {
			return psiTimes[pt.Proc-1], true
		}
		t, ok := pastTimes[pt.Node.Base]
		return t, ok
	}
	for u := 0; u < vertexCount; u++ {
		tu, ok := timeOfVertex(u)
		if !ok {
			continue
		}
		// Unreachable auxiliary vertices are pinned to 0 and exempt from
		// incoming constraints (Definition 23); everything else must obey
		// every edge.
		for _, e := range g.Out(u) {
			tv, ok := timeOfVertex(e.To)
			if !ok {
				continue
			}
			pt := ext.PointOf(e.To)
			if pt.Aux && d[e.To] == graph.NegInf {
				continue
			}
			if int64(tu)+int64(e.Weight) > int64(tv) {
				return nil, fmt.Errorf("timing: fast timing violates edge %s -> %s (w=%d): %d, %d",
					ext.PointOf(u), pt, e.Weight, tu, tv)
			}
		}
	}

	// Prescribed latencies: in-past deliveries replay at their fast times.
	prescribed := make(map[sim.Send]int, len(r.Deliveries()))
	for _, del := range r.Deliveries() {
		if !ps.Contains(del.To) {
			continue
		}
		tFrom, tTo := pastTimes[del.From], pastTimes[del.To]
		prescribed[sim.Send{From: del.From.Proc, To: del.To.Proc, SendTime: tFrom}] = tTo - tFrom
	}
	// Theta1's chain beyond the past travels at upper bounds.
	prefix, hops := r.ChainPrefix(ps, theta1)
	cur := prefix[len(prefix)-1]
	if cur.IsInitial() && hops < theta1.Path.Hops() {
		return nil, fmt.Errorf("%w: chain of %s stalls at %s", bounds.ErrInitialChain, theta1, cur)
	}
	theta1Time := pastTimes[cur]
	for k := hops + 1; k <= theta1.Path.Hops(); k++ {
		from, to := theta1.Path[k-1], theta1.Path[k]
		u := net.Upper(from, to)
		prescribed[sim.Send{From: from, To: to, SendTime: theta1Time}] = u
		theta1Time += u
	}

	if horizon == 0 {
		horizon = maxT + model.Time((net.N()+2)*net.MaxUpper()) + 1
		if theta1Time >= horizon {
			horizon = theta1Time + model.Time((net.N()+2)*net.MaxUpper()) + 1
		}
	}

	var externals []run.ExternalEvent
	for _, e := range r.Externals() {
		if ps.Contains(e.To) {
			externals = append(externals, run.ExternalEvent{
				Proc: e.To.Proc, Time: pastTimes[e.To], Label: e.Label,
			})
		}
	}

	out, err := sim.Simulate(sim.Config{
		Net:       net,
		Horizon:   horizon,
		Policy:    &fastPolicy{prescribed: prescribed, floor: psiTimes},
		Externals: externals,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRun, err)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRun, err)
	}
	// Audit: sigma's subjective view is unchanged, and every past node sits
	// exactly at its fast time.
	if err := run.SameView(r, out, sigma); err != nil {
		return nil, fmt.Errorf("%w: view changed: %v", ErrInvalidRun, err)
	}
	for n, want := range pastTimes {
		got, terr := out.Time(n)
		if terr != nil {
			return nil, fmt.Errorf("%w: past node %s missing: %v", ErrInvalidRun, n, terr)
		}
		if got != want {
			return nil, fmt.Errorf("%w: past node %s at %d, fast timing says %d", ErrInvalidRun, n, got, want)
		}
	}
	return &Fast{
		Run:        out,
		Sigma:      sigma,
		Theta1:     theta1,
		Theta1Time: theta1Time,
		Gamma:      gamma,
		pastTimes:  pastTimes,
		psiTimes:   psiTimes,
		src:        r,
	}, nil
}

// PastTime returns the fast time of a past node.
func (fr *Fast) PastTime(n run.BasicNode) (model.Time, bool) {
	t, ok := fr.pastTimes[n]
	return t, ok
}

// PsiTime returns the auxiliary horizon time of process p in the fast run.
func (fr *Fast) PsiTime(p model.ProcID) model.Time { return fr.psiTimes[p-1] }

// Gap returns time(theta2) - time(theta1) in the fast run. For theta2 with
// a constraint path from theta1, this equals kw(sigma, theta1, theta2)
// (Lemma 18 / Corollary 1); for unreachable theta2 it is at most -gamma
// plus chain slack, witnessing that no bound is known.
func (fr *Fast) Gap(theta2 run.GeneralNode) (int, error) {
	t2, err := fr.Run.TimeOf(theta2)
	if err != nil {
		return 0, err
	}
	return t2 - fr.Theta1Time, nil
}
