package bounds

import (
	"testing"

	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// TestLocalNeverExceedsExtended: ablating the auxiliary vertices can only
// weaken knowledge — GB(r, sigma) is a subgraph of GE(r, sigma).
func TestLocalNeverExceedsExtended(t *testing.T) {
	improvements := 0
	for seed := int64(1); seed <= 8; seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed * 3))
		if err != nil {
			t.Fatal(err)
		}
		window := in.WindowNodes(r)
		if len(window) < 2 {
			continue
		}
		sigma := window[len(window)-1]
		ext, err := NewExtended(r, sigma)
		if err != nil {
			t.Fatal(err)
		}
		ps := ext.Past()
		var cands []run.BasicNode
		for _, n := range window {
			if ps.Contains(n) && !n.IsInitial() {
				cands = append(cands, n)
			}
		}
		if len(cands) > 5 {
			cands = cands[len(cands)-5:]
		}
		for _, s1 := range cands {
			for _, s2 := range cands {
				fullKW, _, fullKnown, err := ext.KnowledgeWeight(run.At(s1), run.At(s2))
				if err != nil {
					t.Fatal(err)
				}
				localKW, localKnown, err := ext.LocalWeight(s1, s2)
				if err != nil {
					t.Fatal(err)
				}
				if localKnown && !fullKnown {
					t.Fatalf("seed %d: local knows (%d) but extended does not", seed, localKW)
				}
				if localKnown && fullKnown {
					if localKW > fullKW {
						t.Fatalf("seed %d: local %d > extended %d", seed, localKW, fullKW)
					}
					if localKW < fullKW {
						improvements++
					}
				}
				if !localKnown && fullKnown {
					improvements++
				}
			}
		}
	}
	if improvements == 0 {
		t.Log("no pairs where the auxiliary vertices added strength (possible but unusual)")
	}
}

// TestLocalMissesHorizonInference reproduces the paper's Section 5.1
// example in miniature: on the Figure-1 fork, B's knowledge of the bound
// depends entirely on the auxiliary vertex of A's timeline — A's receipt is
// beyond B's horizon, so GB(r, sigma) alone supports nothing about it.
func TestLocalMissesHorizonInference(t *testing.T) {
	// Reuse the fork fixture from bounds_test.go.
	r := forkRun(t, sim.Eager{})
	sigma := run.BasicNode{Proc: 3, Index: 1}
	ext, err := NewExtended(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	sigmaC := run.BasicNode{Proc: 1, Index: 1}
	// Extended: K(sigma_C -> sigma) via the direct L edge: both graphs
	// agree on in-past constraints.
	fullKW, _, known, err := ext.KnowledgeWeight(run.At(sigmaC), run.At(sigma))
	if err != nil || !known {
		t.Fatal(err)
	}
	localKW, localKnown, err := ext.LocalWeight(sigmaC, sigma)
	if err != nil || !localKnown {
		t.Fatal(err)
	}
	if localKW != fullKW {
		t.Errorf("in-past bound: local %d != extended %d", localKW, fullKW)
	}
	// But the a-node (A's receipt) is beyond B's horizon: without auxiliary
	// vertices, no bound about it can even be expressed, while the extended
	// graph knows L_CB - U_CA = 5.
	aNode := run.At(sigmaC).Hop(2)
	kw, _, known, err := ext.KnowledgeWeight(aNode, run.At(sigma))
	if err != nil || !known || kw != 5 {
		t.Errorf("extended: kw=%d known=%v err=%v, want 5", kw, known, err)
	}
}
