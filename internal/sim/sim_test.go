package sim

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

func TestSimulateLegalityAcrossPolicies(t *testing.T) {
	net := model.MustComplete(4, 1, 5)
	for _, pol := range []Policy{Eager{}, Lazy{}, NewRandom(3), NewRandom(1234)} {
		r, err := Simulate(Config{
			Net:       net,
			Horizon:   40,
			Policy:    pol,
			Externals: GoAt(1, 1, "go"),
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		// The flood reaches everyone.
		for _, p := range net.Procs() {
			if r.LastIndex(p) == 0 {
				t.Errorf("%s: process %d never received anything", pol.Name(), p)
			}
		}
	}
}

func TestSimulateNothingWithoutExternals(t *testing.T) {
	net := model.MustComplete(3, 1, 2)
	r, err := Simulate(Config{Net: net, Horizon: 20, Policy: Eager{}})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3 initial only (no spontaneous actions)", r.NumNodes())
	}
	if len(r.Deliveries()) != 0 {
		t.Error("messages without any trigger")
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	net := model.MustComplete(4, 1, 6)
	cfg := Config{Net: net, Horizon: 30, Externals: GoAt(2, 3, "go")}
	cfg.Policy = NewRandom(77)
	r1, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = NewRandom(77)
	r2, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := r1.Deliveries(), r2.Deliveries()
	if len(d1) != len(d2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestSimulateConfigErrors(t *testing.T) {
	net := model.MustComplete(2, 1, 2)
	cases := []Config{
		{Net: nil, Horizon: 10},
		{Net: net, Horizon: 0},
		{Net: net, Horizon: 10, Externals: []run.ExternalEvent{{Proc: 9, Time: 1}}},
		{Net: net, Horizon: 10, Externals: []run.ExternalEvent{{Proc: 1, Time: 0}}},
		{Net: net, Horizon: 10, Externals: []run.ExternalEvent{{Proc: 1, Time: 99}}},
	}
	for i, cfg := range cases {
		if _, err := Simulate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: got %v, want ErrBadConfig", i, err)
		}
	}
}

func TestPolicyOutOfBoundsRejected(t *testing.T) {
	net := model.MustComplete(2, 2, 4)
	bad := Func{ID: "bad", F: func(Send, model.Bounds) int { return 1 }}
	_, err := Simulate(Config{Net: net, Horizon: 20, Policy: bad, Externals: GoAt(1, 1, "go")})
	if err == nil {
		t.Fatal("out-of-bounds latency accepted")
	}
}

func TestEagerLazyExtremes(t *testing.T) {
	net := model.NewBuilder(2).Chan(1, 2, 3, 9).MustBuild()
	rE, err := Simulate(Config{Net: net, Horizon: 30, Policy: Eager{}, Externals: GoAt(1, 1, "go")})
	if err != nil {
		t.Fatal(err)
	}
	rL, err := Simulate(Config{Net: net, Horizon: 30, Policy: Lazy{}, Externals: GoAt(1, 1, "go")})
	if err != nil {
		t.Fatal(err)
	}
	if got := rE.MustTime(run.BasicNode{Proc: 2, Index: 1}); got != 4 {
		t.Errorf("eager arrival %d, want 4", got)
	}
	if got := rL.MustTime(run.BasicNode{Proc: 2, Index: 1}); got != 10 {
		t.Errorf("lazy arrival %d, want 10", got)
	}
}

func TestRandomPolicyWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		p := NewRandom(seed)
		b := model.Bounds{Lower: 2, Upper: 7}
		for i := 0; i < 50; i++ {
			lat := p.Latency(Send{From: 1, To: 2, SendTime: i}, b)
			if lat < 2 || lat > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHeavyTailPolicy pins the heavy-tail family: every latency stays in
// bounds, the same seed reproduces the same schedule, and the distribution
// is actually tail-heavy — most deliveries at or near the lower bound, yet
// some stragglers reach the deadline.
func TestHeavyTailPolicy(t *testing.T) {
	b := model.Bounds{Lower: 2, Upper: 12}
	p1, p2 := NewHeavyTail(9), NewHeavyTail(9)
	const samples = 2000
	fast, deadline := 0, 0
	for i := 0; i < samples; i++ {
		s := Send{From: 1, To: 2, SendTime: i}
		lat := p1.Latency(s, b)
		if lat2 := p2.Latency(s, b); lat2 != lat {
			t.Fatalf("sample %d: same seed gave %d vs %d", i, lat, lat2)
		}
		if lat < b.Lower || lat > b.Upper {
			t.Fatalf("sample %d: latency %d outside %s", i, lat, b)
		}
		if lat <= b.Lower+1 {
			fast++
		}
		if lat == b.Upper {
			deadline++
		}
	}
	if fast < samples/2 {
		t.Errorf("only %d/%d deliveries near the lower bound — not tail-heavy", fast, samples)
	}
	if deadline == 0 {
		t.Error("no delivery ever straggled to the deadline")
	}
	if got := p1.Latency(Send{}, model.Bounds{Lower: 3, Upper: 3}); got != 3 {
		t.Errorf("degenerate window latency %d, want 3", got)
	}
}

func TestTimedPolicyAndReplay(t *testing.T) {
	net := model.MustComplete(3, 1, 6)
	r1, err := Simulate(Config{Net: net, Horizon: 40, Policy: NewRandom(5), Externals: GoAt(1, 2, "go")})
	if err != nil {
		t.Fatal(err)
	}
	// Replaying r1's latencies reproduces its deliveries exactly.
	r2, err := Simulate(Config{Net: net, Horizon: 40, Policy: Replay(r1, Lazy{}), Externals: GoAt(1, 2, "go")})
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := r1.Deliveries(), r2.Deliveries()
	if len(d1) != len(d2) {
		t.Fatalf("deliveries %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delivery %d: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestTimedPolicyFallback(t *testing.T) {
	tp := &Timed{Latencies: map[Send]int{{From: 1, To: 2, SendTime: 5}: 3}}
	b := model.Bounds{Lower: 1, Upper: 4}
	if got := tp.Latency(Send{From: 1, To: 2, SendTime: 5}, b); got != 3 {
		t.Errorf("prescribed latency %d, want 3", got)
	}
	// Default fallback is Lazy.
	if got := tp.Latency(Send{From: 1, To: 2, SendTime: 9}, b); got != 4 {
		t.Errorf("fallback latency %d, want upper=4", got)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{Eager{}, "eager"},
		{Lazy{}, "lazy"},
		{NewRandom(1), "random"},
		{NewHeavyTail(1), "heavy"},
		{Func{}, "func"},
		{Func{ID: "adv"}, "adv"},
		{&Timed{}, "timed"},
	} {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestBatchingUnderSimultaneousArrivals(t *testing.T) {
	// Two senders triggered at the same time on equal-bound channels: their
	// messages reach process 3 simultaneously and form one batch.
	net := model.NewBuilder(3).Chan(1, 3, 4, 4).Chan(2, 3, 4, 4).MustBuild()
	r, err := Simulate(Config{
		Net: net, Horizon: 20, Policy: Eager{},
		Externals: []run.ExternalEvent{
			{Proc: 1, Time: 2, Label: "a"},
			{Proc: 2, Time: 2, Label: "b"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.LastIndex(3) != 1 {
		t.Fatalf("process 3 has %d nodes, want one batch", r.LastIndex(3))
	}
	if got := len(r.Inbox(run.BasicNode{Proc: 3, Index: 1})); got != 2 {
		t.Errorf("batch size %d, want 2", got)
	}
}
