package faults

import (
	"errors"
	"reflect"
	"testing"

	"github.com/clockless/zigzag/internal/model"
)

// testNet is a 3-process ring: 1->2->3->1, bounds [1,2] each.
func testNet(t *testing.T) *model.Network {
	t.Helper()
	return model.NewBuilder(3).Chan(1, 2, 1, 2).Chan(2, 3, 1, 2).Chan(3, 1, 1, 2).MustBuild()
}

func TestPlanConstructors(t *testing.T) {
	p := &Plan{Name: "manual", Faults: []Fault{
		Crash(2, 5),
		LinkDown(1, 2, 3, 7),
		Deadline(2, 3, 2),
		DeadlineDuring(3, 1, 1, 4, 6),
	}}
	if p.Faults[0].Kind != KindCrash || p.Faults[0].Proc != 2 || p.Faults[0].A != 5 {
		t.Fatalf("Crash built %+v", p.Faults[0])
	}
	if p.Faults[1].Kind != KindLinkDown || p.Faults[1].A != 3 || p.Faults[1].B != 7 {
		t.Fatalf("LinkDown built %+v", p.Faults[1])
	}
	if p.Faults[2].B != 0 {
		t.Fatalf("Deadline should leave B zero (to horizon), got %+v", p.Faults[2])
	}
	for _, f := range p.Faults {
		if f.String() == "" {
			t.Fatalf("empty String for %+v", f)
		}
	}
	if p.String() == "" {
		t.Fatal("empty plan String")
	}
}

func TestNewPlanDeterministicAndDistinct(t *testing.T) {
	net := testNet(t)
	for _, fam := range Families() {
		if !ValidFamily(fam) {
			t.Fatalf("family %q not valid", fam)
		}
		a, err := NewPlan(fam, net, 50, 7)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		b, err := NewPlan(fam, net, 50, 7)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed, different plans:\n%v\n%v", fam, a, b)
		}
		c, err := NewPlan(fam, net, 50, 8)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if reflect.DeepEqual(a.Faults, c.Faults) {
			t.Fatalf("%s: seeds 7 and 8 drew identical faults %v", fam, a.Faults)
		}
		if len(a.Faults) == 0 {
			t.Fatalf("%s: empty plan", fam)
		}
		// Every generated plan must compile against its own network.
		if _, err := NewInjector(a, net, 50); err != nil {
			t.Fatalf("%s: generated plan rejected: %v", fam, err)
		}
	}
	if ValidFamily("bogus") {
		t.Fatal("bogus family accepted")
	}
	if _, err := NewPlan("bogus", net, 50, 1); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("bogus family error = %v", err)
	}
}

func TestNewInjectorValidation(t *testing.T) {
	net := testNet(t)
	bad := []struct {
		name string
		plan *Plan
	}{
		{"nil plan", nil},
		{"unknown proc", &Plan{Faults: []Fault{Crash(9, 5)}}},
		{"crash at zero", &Plan{Faults: []Fault{Crash(1, 0)}}},
		{"no such channel", &Plan{Faults: []Fault{LinkDown(1, 3, 2, 4)}}},
		{"empty window", &Plan{Faults: []Fault{LinkDown(1, 2, 5, 4)}}},
		{"zero slack", &Plan{Faults: []Fault{DeadlineDuring(1, 2, 0, 2, 4)}}},
		{"unknown kind", &Plan{Faults: []Fault{{Kind: FaultKind(99)}}}},
	}
	for _, tc := range bad {
		if _, err := NewInjector(tc.plan, net, 20); !errors.Is(err, ErrBadPlan) {
			t.Fatalf("%s: error = %v, want ErrBadPlan", tc.name, err)
		}
	}
	if _, err := NewInjector(&Plan{Faults: []Fault{Crash(1, 5)}}, nil, 20); !errors.Is(err, ErrBadPlan) {
		t.Fatal("nil network accepted")
	}
	if _, err := NewInjector(&Plan{Faults: []Fault{Crash(1, 5)}}, net, 0); !errors.Is(err, ErrBadPlan) {
		t.Fatal("zero horizon accepted")
	}
}

func TestInjectorTaintSeeding(t *testing.T) {
	net := testNet(t)
	// Crash 2 at tick 10: in-neighbor 1 (channel 1->2, U=2) is tainted from
	// 10-2=8 — its sends from 8 on may never be received.
	inj, err := NewInjector(&Plan{Faults: []Fault{Crash(2, 10)}}, net, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Dead(2, 10) || inj.Dead(2, 9) || inj.Dead(1, 20) {
		t.Fatal("crash schedule wrong")
	}
	if inj.DegradedAt(1, 7) {
		t.Fatal("in-neighbor tainted too early")
	}
	if !inj.DegradedAt(1, 8) {
		t.Fatal("in-neighbor of crashed proc not tainted from c-U")
	}
	if inj.DegradedAt(3, 20) {
		t.Fatal("process 3 has no channel into 2, must stay clean")
	}

	// LinkDown 1->2 over [5,8]: sender 1 clairvoyantly tainted from 5.
	inj2, err := NewInjector(&Plan{Faults: []Fault{LinkDown(1, 2, 5, 8)}}, net, 20)
	if err != nil {
		t.Fatal(err)
	}
	if inj2.DegradedAt(1, 4) || !inj2.DegradedAt(1, 5) {
		t.Fatal("link-down sender taint window wrong")
	}
}

func TestInjectorHooks(t *testing.T) {
	net := testNet(t)
	id12 := net.ChanIDOf(1, 2)
	id23 := net.ChanIDOf(2, 3)

	// In-window send on the dead link drops and silences the receiver from
	// the missed deadline t+U+1 = 5+2+1.
	injL, err := NewInjector(&Plan{Faults: []Fault{LinkDown(1, 2, 5, 8)}}, net, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !injL.SendDrop(id12, 1, 2, 5) {
		t.Fatal("in-window send not dropped")
	}
	if injL.SendDrop(id12, 1, 2, 9) {
		t.Fatal("post-window send dropped")
	}
	if injL.DegradedAt(2, 7) || !injL.DegradedAt(2, 8) {
		t.Fatal("dropped delivery must silence receiver from t+U+1")
	}

	// In-window send on the deadline channel stretches to U+slack = 5 and
	// silences the receiver from t+U+1 = 4+2+1.
	inj, err := NewInjector(&Plan{Faults: []Fault{DeadlineDuring(2, 3, 3, 4, 6)}}, net, 30)
	if err != nil {
		t.Fatal(err)
	}
	if lat := inj.Delay(id23, 2, 3, 4, 1); lat != 5 {
		t.Fatalf("delayed latency = %d, want 5", lat)
	}
	if lat := inj.Delay(id23, 2, 3, 7, 1); lat != 1 {
		t.Fatalf("post-window latency = %d, want the policy's 1", lat)
	}
	if inj.DegradedAt(3, 6) || !inj.DegradedAt(3, 7) {
		t.Fatal("delayed delivery must silence receiver from t+U+1")
	}
	if inj.MaxSlack() != 3 {
		t.Fatalf("MaxSlack = %d, want 3", inj.MaxSlack())
	}

	// The late delivery itself records the Late violation; the dropped link
	// send recorded a Dropped one. Every violation is a typed error wrapping
	// ErrBoundViolation and renders a message.
	inj.Deliver(id23, 2, 3, 4, 9)
	all := append(inj.Report().Violations, injL.Report().Violations...)
	var kinds []ViolationKind
	for _, v := range all {
		kinds = append(kinds, v.Kind)
		if !errors.Is(v, ErrBoundViolation) {
			t.Fatalf("violation %v does not wrap ErrBoundViolation", v)
		}
		if v.Error() == "" || v.Kind.String() == "" {
			t.Fatalf("violation %v renders empty", v)
		}
	}
	if len(kinds) != 2 || kinds[0] != Late || kinds[1] != Dropped {
		t.Fatalf("violations = %v, want one Late then one Dropped", all)
	}
}

func TestViolationSorting(t *testing.T) {
	vs := []*Violation{
		{Kind: Late, At: 9, SendTime: 4, From: 2, To: 3},
		{Kind: Dropped, At: 8, SendTime: 5, From: 1, To: 2},
		{Kind: Discarded, At: 8, SendTime: 4, From: 1, To: 2},
		{Kind: Discarded, At: 8, SendTime: 4, From: 1, To: 3},
	}
	sortViolations(vs)
	want := []struct {
		at, send model.Time
		to       model.ProcID
	}{{8, 4, 2}, {8, 4, 3}, {8, 5, 2}, {9, 4, 3}}
	for i, w := range want {
		if vs[i].At != w.at || vs[i].SendTime != w.send || vs[i].To != w.to {
			t.Fatalf("position %d: got %+v, want %+v", i, vs[i], w)
		}
	}
}

func TestReportSets(t *testing.T) {
	net := testNet(t)
	inj, err := NewInjector(&Plan{Faults: []Fault{Crash(2, 10)}}, net, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep := inj.Report()
	if !reflect.DeepEqual(rep.Crashed, []model.ProcID{2}) {
		t.Fatalf("Crashed = %v", rep.Crashed)
	}
	// Proc 1 is tainted (in-neighbor), proc 3 clean; a crashed proc is never
	// also listed degraded.
	if !reflect.DeepEqual(rep.Degraded, []model.ProcID{1}) {
		t.Fatalf("Degraded = %v", rep.Degraded)
	}
	if reason := inj.DegradeReason(1, 9); !errors.Is(reason, ErrBoundViolation) {
		t.Fatalf("DegradeReason = %v", reason)
	}
}
