package live

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// requireIdenticalRuns asserts that two recordings are byte-identical:
// same deliveries (with times and channels), externals, pending messages
// and node times.
func requireIdenticalRuns(t *testing.T, label string, got, want *run.Run) {
	t.Helper()
	d1, d2 := got.Deliveries(), want.Deliveries()
	if len(d1) != len(d2) {
		t.Fatalf("%s: deliveries %d vs %d", label, len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("%s: delivery %d: %v vs %v", label, i, d1[i], d2[i])
		}
	}
	e1, e2 := got.Externals(), want.Externals()
	if len(e1) != len(e2) {
		t.Fatalf("%s: externals %d vs %d", label, len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("%s: external %d: %v vs %v", label, i, e1[i], e2[i])
		}
	}
	p1, p2 := got.PendingMessages(), want.PendingMessages()
	if len(p1) != len(p2) {
		t.Fatalf("%s: pending %d vs %d", label, len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("%s: pending %d: %v vs %v", label, i, p1[i], p2[i])
		}
	}
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("%s: nodes %d vs %d", label, got.NumNodes(), want.NumNodes())
	}
	for _, p := range want.Net().Procs() {
		if got.LastIndex(p) != want.LastIndex(p) {
			t.Fatalf("%s: proc %d last index %d vs %d", label, p, got.LastIndex(p), want.LastIndex(p))
		}
		for k := 0; k <= want.LastIndex(p); k++ {
			b := run.BasicNode{Proc: p, Index: k}
			if got.MustTime(b) != want.MustTime(b) {
				t.Fatalf("%s: time of %s: %d vs %d", label, b, got.MustTime(b), want.MustTime(b))
			}
		}
	}
}

// TestLiveMatchesSimulatorOnRandomFamily extends the Figure-2b-sized
// equivalence to the registry's random-topology family: the rebuilt live
// environment must record byte-identical runs to sim.Simulate on every
// random-n{6,8,10} scenario under every policy.
func TestLiveMatchesSimulatorOnRandomFamily(t *testing.T) {
	factories := []func() sim.Policy{
		func() sim.Policy { return sim.Eager{} },
		func() sim.Policy { return sim.Lazy{} },
		func() sim.Policy { return sim.NewRandom(31) },
	}
	for _, sc := range scenario.RandomFamily() {
		for _, mk := range factories {
			pol := mk()
			label := fmt.Sprintf("%s/%s", sc.Name, pol.Name())
			res, err := Run(Config{
				Net: sc.Net, Horizon: sc.Horizon, Policy: pol, Externals: sc.Externals,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := res.Run.Validate(); err != nil {
				t.Fatalf("%s: live run invalid: %v", label, err)
			}
			want, err := sc.Simulate(mk())
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalRuns(t, label, res.Run, want)
		}
	}
}

// TestLiveAllocationGuard keeps the rebuilt environment loop
// allocation-light: arrivals and externals live in horizon-indexed slice
// buckets, per-process slabs replace the per-tick grouping maps and their
// sort, payloads are O(n) snapshots instead of deep view clones, and the
// receipt/reply plumbing is reused. The bound has slack over the measured
// count (which includes the per-process goroutines and their growing
// views) but sits far below the per-tick map churn of the old loop.
func TestLiveAllocationGuard(t *testing.T) {
	net := model.MustComplete(4, 1, 5)
	cfg := Config{Net: net, Horizon: 40, Policy: sim.Lazy{}, Externals: sim.GoAt(1, 1, "go")}
	const limit = 400
	got := testing.AllocsPerRun(10, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if got > limit {
		t.Errorf("live.Run allocates %.0f times per run, want <= %d", got, limit)
	}
}

// randomTask synthesizes a coordination task on a generated instance: C and
// A are the endpoints of one of the network's channels (so C's go message
// has a direct channel, as Definition 1 requires) and B is another process.
func randomTask(in *workload.Instance, seed int64) (coord.Task, bool) {
	arcs := in.Net.Arcs()
	if len(arcs) == 0 || in.Net.N() < 3 {
		return coord.Task{}, false
	}
	a := arcs[int(seed)%len(arcs)]
	task := coord.Task{C: a.From, A: a.To, GoTime: 1, X: 1 + int(seed%3)}
	if seed%2 == 0 {
		task.Kind = coord.Late
	} else {
		task.Kind = coord.Early
	}
	for _, p := range in.Net.Procs() {
		if p != task.A && p != task.C {
			task.B = p
			break
		}
	}
	return task, task.B != 0
}

// TestProtocol2EnginesMatchOfflineOnRandomScenarios is the satellite
// property test: across random scenarios and policy seeds, the online
// agent acts at exactly the same state (and time) as the offline
// (coord.Task).RunOptimal over the recorded run — under both the
// rebuild-per-state baseline and the incremental bounds.Online engine,
// which must also agree with each other.
func TestProtocol2EnginesMatchOfflineOnRandomScenarios(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Procs = 4 + int(seed%3)
		in := workload.MustGenerate(cfg)
		task, ok := randomTask(in, seed)
		if !ok {
			continue
		}
		type outcome struct {
			acted bool
			node  run.BasicNode
			time  model.Time
		}
		var results [2]outcome
		var recordings [2]*run.Run
		for e, rebuild := range []bool{true, false} {
			agent := &Protocol2{Task: task, Rebuild: rebuild}
			res, err := Run(Config{
				Net: in.Net, Horizon: in.Horizon, Policy: sim.NewRandom(seed * 7),
				Externals: sim.GoAt(task.C, task.GoTime, "go"),
				Agents:    map[model.ProcID]Agent{task.B: agent},
			})
			if err != nil {
				t.Fatalf("seed %d rebuild=%v: %v", seed, rebuild, err)
			}
			if err := agent.Err(); err != nil {
				t.Fatalf("seed %d rebuild=%v: agent: %v", seed, rebuild, err)
			}
			recordings[e] = res.Run
			for i := range res.Actions {
				if res.Actions[i].Label == "b" {
					results[e] = outcome{acted: true, node: res.Actions[i].Node, time: res.Actions[i].Time}
					break
				}
			}
			offline, err := task.RunOptimal(res.Run)
			if err != nil {
				t.Fatalf("seed %d rebuild=%v: offline: %v", seed, rebuild, err)
			}
			if offline.Acted != results[e].acted {
				t.Fatalf("seed %d rebuild=%v: offline acted=%v online acted=%v",
					seed, rebuild, offline.Acted, results[e].acted)
			}
			if offline.Acted && (results[e].node != offline.ActNode || results[e].time != offline.ActTime) {
				t.Fatalf("seed %d rebuild=%v: online %s@%d vs offline %s@%d",
					seed, rebuild, results[e].node, results[e].time, offline.ActNode, offline.ActTime)
			}
		}
		// Same deterministic policy seed => same run => the two engines are
		// directly comparable.
		requireIdenticalRuns(t, fmt.Sprintf("seed %d engines", seed), recordings[1], recordings[0])
		if results[0] != results[1] {
			t.Fatalf("seed %d: engines disagree: rebuild %+v online %+v", seed, results[0], results[1])
		}
	}
}
