// Package zigzag implements the theory of "On Using Time Without Clocks via
// Zigzag Causality" (Dan, Manohar, Moses — PODC 2017): coordination in the
// bounded communication model (bcm), where processes have no clocks or
// timers, yet every channel carries known lower and upper bounds on message
// transmission time.
//
// # The model
//
// A Network is a directed graph of processes with per-channel bounds
// 1 <= L <= U. Processes are event-driven and follow a flooding
// full-information protocol (FFIP): whenever a process receives anything it
// immediately sends its entire history to every neighbour. The environment
// (a Policy) chooses each message's latency within [L, U] and must deliver
// by U. Simulate produces a Run: the recorded timelines, deliveries and
// external inputs.
//
// # Zigzag causality
//
// A two-legged Fork is a pair of message chains out of one node; a Zigzag
// chains forks so that each fork's head precedes the next fork's tail on a
// shared timeline. Zigzag patterns are exactly the communication structures
// that guarantee timed precedence between events (Theorems 1 and 2): the
// pattern's weight — lower bounds up the head legs, minus upper bounds down
// the tail legs, plus one per strict junction — bounds how much later the
// head occurs than the tail.
//
// The package computes the tightest supported bound between any two nodes as
// a longest path in the basic bounds graph (BasicGraph), extracts the
// witnessing zigzag (Lemma 5), and certifies tightness by synthesizing the
// slow run of Lemma 8 in which the bound is achieved with equality.
//
// # Knowledge and coordination
//
// What a single process can *know* about timing from its own observations is
// captured by the extended bounds graph (ExtendedGraph) over its causal
// past, with auxiliary horizon vertices standing for the earliest unseen
// events on each timeline. K_sigma(theta1 --x--> theta2) holds exactly when
// a constraint path of weight >= x exists — equivalently (Theorem 4), when a
// sigma-visible zigzag of that weight exists; KnowledgeWeight computes the
// strongest known bound and the witness pattern, and the fast run of
// Definition 24 certifies its tightness.
//
// On top sit the timed coordination tasks of Definition 1 — Late<a --x--> b>
// and Early<b --x--> a> — with the knowledge-optimal Protocol 2 for the
// acting process and an asynchronous (happened-before only) baseline for
// comparison. Early coordination is impossible asynchronously; in the bcm it
// is routine.
//
// # Scenarios and sweeps
//
// The canonical instances — the paper's figures, the trains, takeoff and
// circuits domains, and a seeded family of random topologies — live in
// internal/scenario and are enumerated by its Registry (the multi-agent
// coordination family behind a -coord-m size knob). internal/sweep runs
// scenario × policy × seed grids of simulations across a GOMAXPROCS worker
// pool and aggregates run shapes and coordination outcomes deterministically
// (results are independent of the worker count); `zigzag-sim -sweep` is the
// CLI front end, with -format table|csv|json for feeding figure scripts and
// -live for a second grid dimension of live multi-agent cells, every cell of
// one topology sharing a single per-network knowledge engine.
//
// The hot paths are dense and allocation-light: networks index their
// channels by integer ChanID with flat arc tables and CSR-style adjacency,
// the simulator's and the live engine's event schedules and the run indexes
// are horizon-indexed slices rather than maps, and the bounds graphs are
// built over exact degree counts with no per-edge metadata — all guarded by
// allocation-budget tests in internal/sim, internal/bounds and
// internal/live. Online agents keep an incremental knowledge engine
// (bounds.Online) that extends a standing extended bounds graph with each
// state's delta — read off the view's append-only delivery log — and
// re-relaxes longest paths from only the new edges, answering exactly as a
// fresh per-state build would at a small fraction of the cost. Knowledge
// state is stratified by lifetime into a three-tier hierarchy:
// bounds.NetworkEngine owns the network-derived structure (aux band
// prototype, presizing hints, scratch pool) shared by every run of a
// topology, bounds.Shared is the per-run standing graph stamped out of it,
// and bounds.Handle carries one agent's frontier over that graph.
//
// The implementation details live in internal packages; this package
// re-exports the stable API. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-artifact reproductions.
package zigzag
