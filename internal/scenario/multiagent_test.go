package scenario

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/workload"
)

func TestCoordinationTasksShape(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(1))
	tasks := CoordinationTasks(in, 3)
	if len(tasks) != 3 {
		t.Fatalf("got %d tasks, want 3", len(tasks))
	}
	seenB := map[int]bool{}
	for i, task := range tasks {
		if task.C != tasks[0].C || task.A != tasks[0].A || task.GoTime != tasks[0].GoTime {
			t.Fatalf("task %d does not share the go event: %+v", i, task)
		}
		if task.B == task.A || task.B == task.C || seenB[int(task.B)] {
			t.Fatalf("task %d reuses a process: %+v", i, task)
		}
		seenB[int(task.B)] = true
		if !in.Net.HasChan(task.C, task.A) {
			t.Fatalf("no channel C->A for %+v", task)
		}
		wantKind := coord.Late
		if i%2 == 1 {
			wantKind = coord.Early
		}
		if task.Kind != wantKind {
			t.Fatalf("task %d kind = %v, want %v", i, task.Kind, wantKind)
		}
	}
	// Asking for more agents than the network can host truncates.
	if got := CoordinationTasks(in, 100); len(got) != in.Net.N()-2 {
		t.Fatalf("oversubscribed: got %d tasks, want %d", len(got), in.Net.N()-2)
	}
}

func TestMultiAgentFamilyInRegistry(t *testing.T) {
	fam := MultiAgentFamily()
	if len(fam) != len(MultiAgentSizes) {
		t.Fatalf("family size %d", len(fam))
	}
	for i, sc := range fam {
		if len(sc.Tasks) != MultiAgentSizes[i] {
			t.Fatalf("%s has %d tasks", sc.Name, len(sc.Tasks))
		}
		if sc.Task != &sc.Tasks[0] {
			t.Fatalf("%s: Task does not alias Tasks[0]", sc.Name)
		}
		if sc.Net.N() != MultiAgentSizes[i]+2 {
			t.Fatalf("%s: n = %d", sc.Name, sc.Net.N())
		}
	}
	reg := Registry(0)
	for _, name := range []string{"coord-m2", "coord-m4"} {
		if reg[name] == nil {
			t.Fatalf("registry missing %s", name)
		}
	}
	if reg["coord-m16"] != nil {
		t.Fatal("coord-m16 leaked into the default registry (DefaultCoordM)")
	}
	// The x override reaches every concurrent task.
	if reg2 := Registry(9); reg2["coord-m4"].Tasks[2].X != 9 {
		t.Fatalf("x override not applied: %+v", reg2["coord-m4"].Tasks[2])
	}
}

// TestReplayFamilyShape pins the replay-only heavy-tail family: same
// topology and tasks as the coord-m members, the horizon stretched by
// ReplayHorizonFactor, no default policy (sweeps supply the axis), and —
// deliberately — no presence in the registry at any size ceiling: the
// family exists for the goroutine-free replay live mode and is appended to
// live grids explicitly.
func TestReplayFamilyShape(t *testing.T) {
	fam := ReplayFamily()
	if len(fam) != 2 {
		t.Fatalf("family size %d, want 2", len(fam))
	}
	for _, sc := range fam {
		m := len(sc.Tasks)
		base := MultiAgent(m)
		if sc.Name != fmt.Sprintf("coord-heavy-m%d", m) {
			t.Fatalf("unexpected name %s", sc.Name)
		}
		if sc.Horizon != base.Horizon*ReplayHorizonFactor {
			t.Fatalf("%s: horizon %d, want %d x %d", sc.Name, sc.Horizon, base.Horizon, ReplayHorizonFactor)
		}
		if sc.Net.Fingerprint() != base.Net.Fingerprint() {
			t.Fatalf("%s: network differs from %s", sc.Name, base.Name)
		}
		if len(sc.Tasks) != len(base.Tasks) {
			t.Fatalf("%s: %d tasks, want %d", sc.Name, len(sc.Tasks), len(base.Tasks))
		}
		if sc.DefaultPolicy != nil {
			t.Fatalf("%s: unexpected default policy %q", sc.Name, sc.DefaultPolicy.Name())
		}
		if RegistrySized(0, 16)[sc.Name] != nil {
			t.Fatalf("%s leaked into the registry", sc.Name)
		}
	}
}

// TestRegistrySizedKnob pins the multi-agent size ceiling: raising it pulls
// the large-m scenarios into the catalogue (with the x override applied),
// lowering it below the family floor drops the family, and the default knob
// equals Registry.
func TestRegistrySizedKnob(t *testing.T) {
	big := RegistrySized(0, 16)
	for _, m := range MultiAgentSizes {
		name := MultiAgent(m).Name
		if big[name] == nil {
			t.Fatalf("RegistrySized(0, 16) missing %s", name)
		}
		if got := len(big[name].Tasks); got != m {
			t.Fatalf("%s has %d tasks, want %d", name, got, m)
		}
	}
	if withX := RegistrySized(7, 8); withX["coord-m8"].Tasks[5].X != 7 {
		t.Fatalf("x override skipped the knob-admitted sizes: %+v", withX["coord-m8"].Tasks[5])
	}
	none := RegistrySized(0, 1)
	for _, m := range MultiAgentSizes {
		if none[MultiAgent(m).Name] != nil {
			t.Fatalf("maxM=1 still admits coord-m%d", m)
		}
	}
	reg := Registry(0)
	for _, maxM := range []int{DefaultCoordM, 0, -3} {
		def := RegistrySized(0, maxM)
		if len(def) != len(reg) {
			t.Fatalf("RegistrySized(0, %d) has %d scenarios, Registry(0) %d", maxM, len(def), len(reg))
		}
	}
}
