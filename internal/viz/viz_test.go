package viz

import (
	"strings"
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

func demoRun(t *testing.T) *run.Run {
	t.Helper()
	net := model.NewBuilder(3).Chan(1, 2, 1, 3).Chan(1, 3, 8, 12).MustBuild()
	r, err := sim.Simulate(sim.Config{
		Net: net, Horizon: 30, Policy: sim.Eager{}, Externals: sim.GoAt(1, 1, "go"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTimelineDeterministic(t *testing.T) {
	r := demoRun(t)
	names := map[model.ProcID]string{1: "C", 2: "A", 3: "B"}
	a := Timeline(r, names, 15)
	b := Timeline(r, names, 15)
	if a != b {
		t.Error("timeline rendering not deterministic")
	}
	for _, want := range []string{"C |", "A |", "B |", `ext "go" -> C`, "C@1 => A@2", "C@1 => B@9"} {
		if !strings.Contains(a, want) {
			t.Errorf("timeline missing %q:\n%s", want, a)
		}
	}
	// Node markers: C has 2 nodes, so two stars on its line.
	cLine := strings.SplitN(a, "\n", 3)[1]
	if strings.Count(cLine, "*") != 2 {
		t.Errorf("C line %q has wrong marker count", cLine)
	}
}

func TestTimelineDefaultNames(t *testing.T) {
	r := demoRun(t)
	out := Timeline(r, nil, 0)
	if !strings.Contains(out, "p1 |") {
		t.Errorf("default names missing:\n%s", out)
	}
}

func TestStepsRender(t *testing.T) {
	r := demoRun(t)
	gb := bounds.NewBasic(r)
	_, steps, ok, err := gb.LongestBetween(
		run.BasicNode{Proc: 2, Index: 1}, run.BasicNode{Proc: 3, Index: 1})
	if err != nil || !ok {
		t.Fatal(err)
	}
	out := Steps(steps)
	if !strings.Contains(out, "total weight +5") {
		t.Errorf("steps render:\n%s", out)
	}
	if !strings.Contains(out, "upper") || !strings.Contains(out, "lower") {
		t.Errorf("step kinds missing:\n%s", out)
	}
}

func TestZigzagRender(t *testing.T) {
	r := demoRun(t)
	gb := bounds.NewBasic(r)
	z, _, found, err := pattern.ExtractBasic(gb,
		run.BasicNode{Proc: 2, Index: 1}, run.BasicNode{Proc: 3, Index: 1})
	if err != nil || !found {
		t.Fatal(err)
	}
	out := Zigzag(r.Net(), z)
	if !strings.Contains(out, "wt(Z) = +5") {
		t.Errorf("zigzag render:\n%s", out)
	}
}

func TestExtendedStatsRender(t *testing.T) {
	r := demoRun(t)
	ext, err := bounds.NewExtended(r, run.BasicNode{Proc: 3, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := ExtendedStats(ext)
	for _, want := range []string{"GE(r, p3#1)", "aux-enter", "succ"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}
