package live

import (
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

// TestLiveFingerprintMatchesSim pins the identity the prefix cache keys on:
// a live execution and sim.Simulate of the same configuration record runs
// with the same (nonzero) content fingerprint, under every policy family.
func TestLiveFingerprintMatchesSim(t *testing.T) {
	sc := scenario.Figure2b(scenario.DefaultFigure2())
	factories := []func() sim.Policy{
		func() sim.Policy { return sim.Eager{} },
		func() sim.Policy { return sim.Lazy{} },
		func() sim.Policy { return sim.NewRandom(8) },
	}
	for _, mk := range factories {
		offline, err := sc.Simulate(mk())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Net: sc.Net, Horizon: sc.Horizon, Policy: mk(), Externals: sc.Externals,
		})
		if err != nil {
			t.Fatalf("%s: %v", mk().Name(), err)
		}
		if got, want := res.Run.Fingerprint(), offline.Fingerprint(); got == 0 || got != want {
			t.Fatalf("%s: live fingerprint %#x, sim %#x", mk().Name(), got, want)
		}
	}
}

// TestLivePrefixRoundTrip drives two identical executions through one
// network engine with a pre-simulated Config.Fingerprint: the first run
// misses and freezes the standing prefix, the second hits it, and both
// record the same run with the same agent actions. A mispredicted
// fingerprint must fail the run instead of poisoning the cache.
func TestLivePrefixRoundTrip(t *testing.T) {
	sc := scenario.MultiAgent(2)
	offline, err := sc.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	fp := offline.Fingerprint()
	eng := bounds.NewNetworkEngine(sc.Net)

	exec := func() *Result {
		t.Helper()
		agents, agentMap := NewTaskAgents(sc.TaskList())
		res, err := Run(Config{
			Net: sc.Net, Horizon: sc.Horizon, Policy: sim.Eager{},
			Externals: sc.Externals, Agents: agentMap,
			Engine: eng, Fingerprint: fp,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range agents {
			if aerr := agents[i].Err(); aerr != nil {
				t.Fatalf("agent %s: %v", TaskLabel(i), aerr)
			}
		}
		return res
	}

	first := exec()
	if first.PrefixHit {
		t.Fatal("first execution reported a prefix hit")
	}
	second := exec()
	if !second.PrefixHit {
		t.Fatal("second identical execution missed the frozen prefix")
	}
	if first.Run.Fingerprint() != fp || second.Run.Fingerprint() != fp {
		t.Fatal("recorded fingerprints diverge from the prediction")
	}
	if len(first.Actions) != len(second.Actions) {
		t.Fatalf("action counts diverge: %d vs %d", len(first.Actions), len(second.Actions))
	}
	for i := range first.Actions {
		if first.Actions[i] != second.Actions[i] {
			t.Fatalf("action %d diverges: %+v vs %+v", i, first.Actions[i], second.Actions[i])
		}
	}

	_, agentMap := NewTaskAgents(sc.TaskList())
	if _, err := Run(Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: sim.Lazy{},
		Externals: sc.Externals, Agents: agentMap,
		Engine: eng, Fingerprint: fp,
	}); err == nil {
		t.Fatal("mispredicted fingerprint did not fail the run")
	}
	// The mispredicted run stamped the cached prefix (a hit) before the
	// recording check rejected it, so the tally reads 2 hits / 1 miss.
	st := eng.Stats()
	if st.PrefixHits != 2 || st.PrefixMisses != 1 {
		t.Fatalf("engine stats %+v, want 2 hits / 1 miss", st)
	}
}
