package scenario

import (
	"testing"

	"github.com/clockless/zigzag/internal/sim"
)

// TestTrainsLate: the signal box acts with the required hold after the
// train enters, under every policy, and the witness verifies.
func TestTrainsLate(t *testing.T) {
	sc := Trains(3)
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(21)} {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if !out.Acted {
			t.Fatalf("%s: signal box never switched", pol.Name())
		}
		if out.Gap < sc.Task.X {
			t.Errorf("%s: gap %d < hold %d", pol.Name(), out.Gap, sc.Task.X)
		}
		if err := out.Witness.VerifyVisible(r); err != nil {
			t.Errorf("%s: witness: %v", pol.Name(), err)
		}
	}
}

// TestTakeoffEarly: the feeder launches at least x before the heavy, while
// the asynchronous baseline cannot launch at all.
func TestTakeoffEarly(t *testing.T) {
	sc := Takeoff(4)
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(2)} {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if !out.Acted {
			t.Fatalf("%s: feeder never launched (L_CA - U_CB = %d >= x = %d)",
				pol.Name(), 9-3, sc.Task.X)
		}
		if -out.Gap < sc.Task.X {
			t.Errorf("%s: lead %d < x %d", pol.Name(), -out.Gap, sc.Task.X)
		}
		base, err := sc.Task.RunBaseline(r)
		if err != nil {
			t.Fatal(err)
		}
		if base.Acted {
			t.Errorf("%s: asynchronous baseline launched early — impossible", pol.Name())
		}
	}
}

// TestTakeoffInfeasible: a lead beyond the bound gap must never be promised.
func TestTakeoffInfeasible(t *testing.T) {
	sc := Takeoff(9 - 3 + 1) // one beyond L_CA - U_CB
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		t.Fatalf("feeder launched with known bound %d for infeasible x", out.KnownBound)
	}
}

// TestCircuitsHold: the mux respects the latch hold time; the guaranteed
// bound equals L(cone path) - U(latch wire) computed over the fork.
func TestCircuitsHold(t *testing.T) {
	// Cone lower bound 2+3+3 = 8; latch wire upper 2; guaranteed gap 6.
	sc := Circuits(6)
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(5)} {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if !out.Acted {
			t.Fatalf("%s: mux never switched", pol.Name())
		}
		if out.KnownBound != 6 {
			t.Errorf("%s: known bound %d, want 6", pol.Name(), out.KnownBound)
		}
	}
	// Hold time beyond the cone guarantee must not be promised.
	sc = Circuits(7)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		t.Errorf("mux switched for hold=7 with only 6 guaranteed")
	}
}
