package coord

import (
	"errors"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/sim"
)

// chainNet is C=1 -> A=2 -> B=3: the baseline has a message chain from a.
func chainNet(t *testing.T) *model.Network {
	t.Helper()
	return model.NewBuilder(3).Chan(1, 2, 2, 4).Chan(2, 3, 3, 6).MustBuild()
}

func TestWireLocatesGoAndA(t *testing.T) {
	task := Task{Kind: Late, X: 1, A: 2, B: 3, C: 1, GoTime: 2}
	r, err := task.Simulate(chainNet(t), sim.Eager{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	w, err := task.Wire(r)
	if err != nil {
		t.Fatal(err)
	}
	if w.SigmaC.Proc != 1 || w.SigmaC.Index != 1 {
		t.Errorf("sigmaC = %s", w.SigmaC)
	}
	if w.ATime != 2+2 {
		t.Errorf("aTime = %d, want 4", w.ATime)
	}
	if w.ABasic.Proc != 2 {
		t.Errorf("aBasic = %s", w.ABasic)
	}
}

func TestWireErrors(t *testing.T) {
	task := Task{Kind: Late, X: 1, A: 2, B: 3, C: 1, GoTime: 2}
	net := chainNet(t)
	// No external at all.
	r, err := sim.Simulate(sim.Config{Net: net, Horizon: 30, Policy: sim.Eager{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.Wire(r); !errors.Is(err, ErrNoGo) {
		t.Errorf("got %v, want ErrNoGo", err)
	}
	// Missing C -> A channel.
	task2 := Task{Kind: Late, X: 1, A: 3, B: 2, C: 1, GoTime: 2}
	net2 := model.NewBuilder(3).Chan(1, 2, 1, 2).Chan(2, 3, 1, 2).MustBuild()
	r2, err := task2.Simulate(net2, sim.Eager{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task2.Wire(r2); err == nil {
		t.Error("wire without C->A channel succeeded")
	}
	// Horizon too short for the go delivery.
	r3, err := task.Simulate(net, sim.Lazy{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.Wire(r3); !errors.Is(err, ErrNoA) {
		t.Errorf("got %v, want ErrNoA", err)
	}
}

func TestBaselineActsOnChain(t *testing.T) {
	// Late with x = 3: the chain A -> B certifies L_AB = 3 on receipt.
	task := Task{Kind: Late, X: 3, A: 2, B: 3, C: 1, GoTime: 1}
	r, err := task.Simulate(chainNet(t), sim.Lazy{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	base, err := task.RunBaseline(r)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Acted {
		t.Fatal("baseline never acted despite an A->B chain")
	}
	if base.Gap < 3 {
		t.Errorf("baseline gap %d < 3", base.Gap)
	}
	opt, err := task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Acted {
		t.Fatal("optimal never acted")
	}
	if opt.ActTime > base.ActTime {
		t.Errorf("optimal (%d) acted after baseline (%d)", opt.ActTime, base.ActTime)
	}
}

func TestBaselineNeverEarly(t *testing.T) {
	task := Task{Kind: Early, X: 1, A: 2, B: 3, C: 1, GoTime: 1}
	net := model.NewBuilder(3).Chan(1, 2, 9, 12).Chan(1, 3, 1, 2).MustBuild()
	r, err := task.Simulate(net, sim.Eager{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	base, err := task.RunBaseline(r)
	if err != nil {
		t.Fatal(err)
	}
	if base.Acted {
		t.Error("baseline solved Early")
	}
	opt, err := task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Acted {
		t.Error("optimal failed a feasible Early instance")
	}
}

func TestOptimalDominatesBaselineEverywhere(t *testing.T) {
	// Property: wherever the baseline can act, the optimal protocol acts no
	// later — across x values and policies on the chain network.
	for x := 1; x <= 6; x++ {
		task := Task{Kind: Late, X: x, A: 2, B: 3, C: 1, GoTime: 1}
		for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(int64(x))} {
			r, err := task.Simulate(chainNet(t), pol, 80)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := task.RunOptimal(r)
			if err != nil {
				t.Fatal(err)
			}
			base, err := task.RunBaseline(r)
			if err != nil {
				t.Fatal(err)
			}
			if base.Acted && !opt.Acted {
				t.Errorf("x=%d %s: baseline acted, optimal did not", x, pol.Name())
			}
			if base.Acted && opt.Acted && opt.ActTime > base.ActTime {
				t.Errorf("x=%d %s: optimal %d after baseline %d", x, pol.Name(), opt.ActTime, base.ActTime)
			}
		}
	}
}

func TestSpecCheck(t *testing.T) {
	late := Task{Kind: Late, X: 5}
	if err := late.checkSpec(&Outcome{Acted: true, Gap: 4}); !errors.Is(err, ErrSpecViolated) {
		t.Errorf("late gap 4 < 5: %v", err)
	}
	if err := late.checkSpec(&Outcome{Acted: true, Gap: 5}); err != nil {
		t.Errorf("late gap 5: %v", err)
	}
	early := Task{Kind: Early, X: 5}
	if err := early.checkSpec(&Outcome{Acted: true, Gap: -4}); !errors.Is(err, ErrSpecViolated) {
		t.Errorf("early lead 4 < 5: %v", err)
	}
	if err := early.checkSpec(&Outcome{Acted: true, Gap: -5}); err != nil {
		t.Errorf("early lead 5: %v", err)
	}
	if err := late.checkSpec(&Outcome{}); err != nil {
		t.Errorf("non-action audited: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Late.String() != "Late" || Early.String() != "Early" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestNegativeXLate(t *testing.T) {
	// x = -3 expresses "b at most 3 before a" — trivially satisfiable once
	// B knows a will happen: the knowledge bound must still be computed
	// correctly for negative targets.
	task := Task{Kind: Late, X: -3, A: 2, B: 3, C: 1, GoTime: 1}
	r, err := task.Simulate(chainNet(t), sim.Eager{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	out, err := task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Acted {
		t.Fatal("optimal failed a negative-x instance")
	}
	if out.Gap < -3 {
		t.Errorf("gap %d < -3", out.Gap)
	}
}
