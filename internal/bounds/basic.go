package bounds

import (
	"errors"
	"fmt"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// ErrNotInGraph reports a query about a node that is not a vertex of the
// graph at hand.
var ErrNotInGraph = errors.New("bounds: node not in graph")

// edgeKey disambiguates parallel edges for metadata lookup.
type edgeKey struct {
	u, v, w int
}

// Basic is the basic bounds graph GB(r) of Definition 8: vertices are the
// basic nodes appearing in r; edges are successor edges of weight 1 and, per
// message delivery, a forward edge of weight L and a backward edge of weight
// -U. Every path encodes a sound timed-precedence constraint (Lemma 1), and
// a longest path is the tightest constraint the run's communication pattern
// supports (the heart of Theorem 2).
type Basic struct {
	r      *run.Run
	g      *graph.Graph
	offset []int // offset[p-1]: first vertex id of process p's nodes
	meta   map[edgeKey]Step
}

// NewBasic constructs GB(r).
func NewBasic(r *run.Run) *Basic {
	net := r.Net()
	b := &Basic{r: r, offset: make([]int, net.N()), meta: make(map[edgeKey]Step)}
	total := 0
	for _, p := range net.Procs() {
		b.offset[p-1] = total
		total += r.LastIndex(p) + 1
	}
	b.g = graph.New(total)

	// Successor edges.
	for _, p := range net.Procs() {
		for k := 0; k < r.LastIndex(p); k++ {
			u := run.BasicNode{Proc: p, Index: k}
			v := u.Successor()
			b.addEdge(StepSucc, NodePoint(run.At(u)), NodePoint(run.At(v)), 1)
		}
	}
	// Message edges.
	for _, d := range r.Deliveries() {
		ch := d.Channel()
		bd, _ := net.ChanBounds(ch.From, ch.To)
		b.addEdge(StepLower, NodePoint(run.At(d.From)), NodePoint(run.At(d.To)), bd.Lower)
		b.addEdge(StepUpper, NodePoint(run.At(d.To)), NodePoint(run.At(d.From)), -bd.Upper)
	}
	return b
}

func (b *Basic) addEdge(kind StepKind, from, to Point, w int) {
	u := b.mustVertex(from.Node.Base)
	v := b.mustVertex(to.Node.Base)
	b.g.AddEdge(u, v, w)
	b.meta[edgeKey{u, v, w}] = Step{Kind: kind, From: from, To: to, Weight: w}
}

// Run returns the underlying run.
func (b *Basic) Run() *run.Run { return b.r }

// Graph exposes the raw weighted graph (for scaling benchmarks and tests).
func (b *Basic) Graph() *graph.Graph { return b.g }

// NumVertices returns the number of basic nodes in the graph.
func (b *Basic) NumVertices() int { return b.g.N() }

// NumEdges returns the number of edges.
func (b *Basic) NumEdges() int { return b.g.NumEdges() }

// Vertex returns the vertex id of a basic node.
func (b *Basic) Vertex(n run.BasicNode) (int, error) {
	if !b.r.Appears(n) {
		return 0, fmt.Errorf("%w: %s", ErrNotInGraph, n)
	}
	return b.offset[n.Proc-1] + n.Index, nil
}

func (b *Basic) mustVertex(n run.BasicNode) int {
	v, err := b.Vertex(n)
	if err != nil {
		panic(err)
	}
	return v
}

// NodeOf inverts Vertex.
func (b *Basic) NodeOf(v int) run.BasicNode {
	for i := len(b.offset) - 1; i >= 0; i-- {
		if v >= b.offset[i] {
			return run.BasicNode{Proc: model.ProcID(i + 1), Index: v - b.offset[i]}
		}
	}
	panic(fmt.Sprintf("bounds: vertex %d out of range", v))
}

// stepsOf reconstructs the Step metadata of a vertex path, using the
// distance profile to pick the edge actually used between each pair.
func (b *Basic) stepsOf(path []int, dist []int64) ([]Step, error) {
	steps := make([]Step, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		w := int(dist[v] - dist[u])
		st, ok := b.meta[edgeKey{u, v, w}]
		if !ok {
			// The tight edge may be heavier than the distance delta when a
			// non-tight parallel edge exists; scan the adjacency for a
			// matching recorded edge.
			for _, e := range b.g.Out(u) {
				if e.To == v {
					if s2, ok2 := b.meta[edgeKey{u, v, e.Weight}]; ok2 && e.Weight == w {
						st, ok = s2, true
						break
					}
				}
			}
		}
		if !ok {
			return nil, fmt.Errorf("bounds: missing edge metadata %d->%d (w=%d)", u, v, w)
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// LongestBetween returns the tightest constraint weight x such that the
// communication pattern of r guarantees sigma1 --x--> sigma2, together with
// the constraint path realizing it. ok is false when GB(r) has no path from
// sigma1 to sigma2 (no bound is supported at all).
func (b *Basic) LongestBetween(sigma1, sigma2 run.BasicNode) (x int, steps []Step, ok bool, err error) {
	u, err := b.Vertex(sigma1)
	if err != nil {
		return 0, nil, false, err
	}
	v, err := b.Vertex(sigma2)
	if err != nil {
		return 0, nil, false, err
	}
	dist, err := b.g.Longest(u)
	if err != nil {
		return 0, nil, false, fmt.Errorf("bounds: GB(r) inconsistent: %w", err)
	}
	weight, path, ok, err := b.longestPathWithDist(u, v, dist)
	if err != nil || !ok {
		return 0, nil, ok, err
	}
	steps, err = b.stepsOf(path, dist)
	if err != nil {
		return 0, nil, false, err
	}
	return int(weight), steps, true, nil
}

func (b *Basic) longestPathWithDist(u, v int, dist []int64) (int64, []int, bool, error) {
	if dist[v] == graph.NegInf {
		return 0, nil, false, nil
	}
	// Delegate to the graph's tight-edge reconstruction; recomputing the
	// distances there is acceptable for clarity, but we already have them,
	// so use LongestPath directly.
	return b.longestPathVia(u, v)
}

func (b *Basic) longestPathVia(u, v int) (int64, []int, bool, error) {
	w, path, ok, err := b.g.LongestPath(u, v)
	return w, path, ok, err
}

// DistancesInto returns, for every basic node, the weight of the longest
// path from that node into sigma (NegInf entries mean "no path"). This is
// d(.) of Definition 13 and drives the slow-timing construction.
func (b *Basic) DistancesInto(sigma run.BasicNode) ([]int64, error) {
	v, err := b.Vertex(sigma)
	if err != nil {
		return nil, err
	}
	dist, err := b.g.LongestInto(v)
	if err != nil {
		return nil, fmt.Errorf("bounds: GB(r) inconsistent: %w", err)
	}
	return dist, nil
}

// PrecedenceSet returns V_sigma (Definition 12): the basic nodes with a path
// to sigma in GB(r), as a membership predicate indexed by vertex id. The set
// is p-closed (Lemma 6).
func (b *Basic) PrecedenceSet(sigma run.BasicNode) ([]bool, error) {
	v, err := b.Vertex(sigma)
	if err != nil {
		return nil, err
	}
	return b.g.ReachSet(v), nil
}

// CheckLemma1 verifies, against the run's actual times, that a step path is
// sound: time(first) + sum(weights) <= time(last) and every intermediate
// constraint holds. It returns the total weight.
func (b *Basic) CheckLemma1(steps []Step) (int, error) {
	total := 0
	for _, s := range steps {
		t1, err := b.r.Time(s.From.Node.Base)
		if err != nil {
			return 0, err
		}
		t2, err := b.r.Time(s.To.Node.Base)
		if err != nil {
			return 0, err
		}
		if t1+s.Weight > t2 {
			return 0, fmt.Errorf("bounds: unsound step %s: times %d, %d", s, t1, t2)
		}
		total += s.Weight
	}
	return total, nil
}
