package bounds

import (
	"sync"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
)

// NetworkEngine is the network-lifetime tier of the knowledge engine
// hierarchy
//
//	NetworkEngine (per model.Network)
//	  └── PrefixEngine (frozen standing prefixes, keyed by run content)
//	        └── Shared   (per run, NewRun / NewRunAt)
//	              └── Handle (per agent, Shared.NewHandle)
//
// It owns everything that depends only on the network and is therefore
// shared by every run — every sweep cell, every seed, every policy — of the
// same topology:
//
//   - the auxiliary psi band and its fixed E”' channel edges, kept as an
//     immutable prototype graph that NewRun stamps out per run via
//     graph.Clone (O(1) allocations instead of rebuilding the band and
//     re-adding one edge per channel);
//   - the per-process adjacency capacity hints (outCap/inCap) that presize
//     node vertices, and the restriction coordinates of the aux prefix;
//   - the per-sender channel-bit tables behind delivery deduplication;
//   - the query-scratch pool, so scratch buffers leased by one run's
//     handles are reused by the next run's instead of dying with each
//     Shared.
//
// The prototype graph is never queried or mutated after construction; runs
// only ever append to their clones (and remove edges they added), which the
// Clone contract makes safe — concurrent runs of one engine never write to
// shared memory. All other engine state is immutable after construction
// except the pool, which the engine mutex serializes.
type NetworkEngine struct {
	net *model.Network
	n   int
	// proto holds the aux psi band (vertices 0..n-1) and the E”' edges
	// aux(to) -> aux(from) per channel; NewRun clones it.
	proto *graph.Graph
	// auxBand/auxIdx are the graph.Restriction coordinates of the aux
	// prefix, copied into each run's coordinate tables.
	auxBand, auxIdx []int32
	// boundaryTo maps each band to its psi anchor (aux ids equal band ids).
	boundaryTo []int32
	// auxRefresh lists the aux band's vertex ids (0..n-1), the immutable
	// refresh set reverse queries pass after an E'' retirement.
	auxRefresh []int
	// outCap/inCap are the per-process adjacency capacity hints of node
	// vertices (successor + delivery edge pairs; E'/E'' never enter the
	// standing tables).
	outCap, inCap []int
	// chanBit gives each channel its bit position within the sender's
	// out-arc mask; wide records that some process exceeds one mask word,
	// so runs fall back to a map for delivery dedup.
	chanBit []uint8
	wide    bool

	// prefixes caches frozen standing prefixes of completed runs, keyed by
	// run content fingerprint (NewRunAt / Shared.CommitPrefix); stats holds
	// the engine's cumulative work counters (Stats).
	prefixes *PrefixEngine
	stats    engineStats

	mu   sync.Mutex
	pool []*graph.Scratch
}

// NewNetworkEngine derives the run-independent knowledge structure of one
// network: the auxiliary psi band with its E”' adjacency, the presizing
// hints and the dedup tables. Build it once per network and stamp out runs
// with NewRun.
func NewNetworkEngine(net *model.Network) *NetworkEngine {
	n := net.N()
	e := &NetworkEngine{
		net:        net,
		n:          n,
		auxBand:    make([]int32, n),
		auxIdx:     make([]int32, n),
		boundaryTo: make([]int32, n),
		auxRefresh: make([]int, n),
		outCap:     make([]int, n),
		inCap:      make([]int, n),
		chanBit:    make([]uint8, len(net.Arcs())),
	}
	e.prefixes = newPrefixEngine(&e.stats)
	auxOut := make([]int32, n)
	auxIn := make([]int32, n)
	for i := 0; i < n; i++ {
		e.auxBand[i] = int32(i)
		e.auxIdx[i] = graph.AlwaysVisible
		e.boundaryTo[i] = int32(i)
		e.auxRefresh[i] = i
		p := model.ProcID(i + 1)
		outDeg := len(net.OutArcs(p))
		inDeg := len(net.InIDs(p))
		// Node vertices: successor in/out plus one delivery edge pair per
		// send (out-channel) and per receive (in-channel).
		e.outCap[i] = 1 + outDeg + inDeg
		e.inCap[i] = 1 + inDeg + outDeg
		// Aux band: one E''' edge aux(to) -> aux(from) per channel.
		auxOut[i] = int32(inDeg)
		auxIn[i] = int32(outDeg)
	}
	for _, p := range net.Procs() {
		arcs := net.OutArcs(p)
		if len(arcs) > 64 {
			e.wide = true
		}
		for i := range arcs {
			e.chanBit[arcs[i].ID] = uint8(i)
		}
	}
	e.proto = graph.NewWithDegrees(auxOut, auxIn)
	for _, a := range net.Arcs() {
		e.proto.AddEdge(int(a.To)-1, int(a.From)-1, -a.Bounds.Upper)
	}
	return e
}

// Net returns the network the engine serves.
func (e *NetworkEngine) Net() *model.Network { return e.net }

// Prefixes returns the engine's standing-prefix cache.
func (e *NetworkEngine) Prefixes() *PrefixEngine { return e.prefixes }

// Stats returns a snapshot of the engine's cumulative work counters.
func (e *NetworkEngine) Stats() EngineStats { return e.stats.snapshot() }

// NoteReplay credits a completed goroutine-free replay execution to the
// engine's counters: batches receive batches driven through streamed chunk
// buffers (live.Replay reports them once per execution).
func (e *NetworkEngine) NoteReplay(batches, chunks int64) {
	e.stats.replayBatches.Add(batches)
	e.stats.replayChunks.Add(chunks)
}

// NoteXFanout credits live executions saved by x-axis fanout: a sweep that
// answers saved per-x cells from one batched execution reports them once per
// collapsed group.
func (e *NetworkEngine) NoteXFanout(saved int64) {
	e.stats.xFanout.Add(saved)
}

// NewRun stamps out the run-lifetime tier: a Shared engine whose standing
// graph starts as a clone of the aux prototype, above which the run's node
// vertices and edges are appended as agents subscribe. Runs of one engine
// are independent (safe to drive concurrently); each answers byte-identically
// to fresh NewExtendedFromView builds on its agents' views.
func (e *NetworkEngine) NewRun() *Shared {
	s := &Shared{
		eng:      e,
		n:        e.n,
		g:        e.proto.Clone(),
		members:  make([]int, e.n),
		vertexOf: make([][]int32, e.n),
		band:     make([]int32, e.n, 4*e.n),
		idx:      make([]int32, e.n, 4*e.n),
	}
	copy(s.band, e.auxBand)
	copy(s.idx, e.auxIdx)
	if e.wide {
		s.wide = make(map[int64]struct{})
	}
	for i := range s.members {
		s.members[i] = -1
	}
	e.stats.runs.Add(1)
	e.stats.cloneBytes.Add(e.proto.CloneBytes())
	return s
}

// NewRunAt stamps out the run-lifetime tier for a run whose content
// fingerprint (run.Run.Fingerprint) the caller already knows — a recorded
// run about to be re-executed, or a deterministic execution whose schedule
// was pre-simulated. If the engine holds a frozen standing prefix under fp,
// the returned Shared starts from that snapshot: every timeline, successor
// edge and delivery edge of the identical earlier run is already standing,
// so handle syncs reduce to frontier bookkeeping, and hit is true. Otherwise
// the Shared starts empty exactly as NewRun's would, primed so that
// CommitPrefix — called once the run has been fully absorbed — freezes it
// into the cache under fp for the runs that follow.
//
// NewRunAt(0) (the "no fingerprint" sentinel) degenerates to NewRun: nothing
// is looked up and nothing will be committed. Answers from a prefix-stamped
// Shared are byte-identical to a fresh build's: the cache key pins the exact
// event log, and any standing material an individual agent has not seen yet
// stays hidden behind its handle's frontier mask.
func (e *NetworkEngine) NewRunAt(fp uint64) (s *Shared, hit bool) {
	if fp == 0 {
		return e.NewRun(), false
	}
	if fz, ok := e.prefixes.lookup(fp); ok {
		return e.stampPrefix(fz), true
	}
	s = e.NewRun()
	s.pendingKey = fp
	return s, false
}

// stampPrefix stamps a Shared out of a frozen standing prefix. The standing
// graph and the coordinate tables alias the snapshot (copy-on-grow per the
// graph.Clone contract); frontier and dedup state, which absorption mutates
// in place, are copied.
func (e *NetworkEngine) stampPrefix(fz *frozenPrefix) *Shared {
	s := &Shared{
		eng:        e,
		n:          e.n,
		g:          fz.g.Clone(),
		members:    append([]int(nil), fz.members...),
		vertexOf:   make([][]int32, e.n),
		band:       fz.band,
		idx:        fz.idx,
		delivered:  append([]uint64(nil), fz.delivered...),
		fromPrefix: true,
	}
	copy(s.vertexOf, fz.vertexOf)
	if fz.wide != nil {
		s.wide = make(map[int64]struct{}, len(fz.wide))
		for k := range fz.wide {
			s.wide[k] = struct{}{}
		}
	}
	e.stats.runs.Add(1)
	e.stats.cloneBytes.Add(fz.g.CloneBytes())
	return s
}

// leaseScratch pops a pooled scratch (or makes one).
func (e *NetworkEngine) leaseScratch() *graph.Scratch {
	e.mu.Lock()
	defer e.mu.Unlock()
	if k := len(e.pool); k > 0 {
		sc := e.pool[k-1]
		e.pool = e.pool[:k-1]
		return sc
	}
	return new(graph.Scratch)
}

// releaseScratch returns a scratch to the pool for later handles — of this
// run or any other run of the network.
func (e *NetworkEngine) releaseScratch(sc *graph.Scratch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool = append(e.pool, sc)
}
