package run

import (
	"testing"
	"testing/quick"

	"github.com/clockless/zigzag/internal/model"
)

func TestViewOfMatchesPast(t *testing.T) {
	r := chainRun(t)
	sigma := BasicNode{Proc: 3, Index: 1}
	v, err := ViewOf(r, sigma)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := r.Past(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != ps.Size() {
		t.Errorf("view size %d, past size %d", v.Size(), ps.Size())
	}
	for _, n := range ps.Nodes() {
		if !v.Contains(n) {
			t.Errorf("view missing %s", n)
		}
	}
	if !v.PastSet().Equal(ps) {
		t.Error("PastSet round trip differs")
	}
	if v.Origin() != sigma {
		t.Errorf("origin = %s", v.Origin())
	}
}

func TestViewDeliveriesAndLeaving(t *testing.T) {
	r := chainRun(t)
	// At node 2#1 the message to 3 has left the past.
	v, err := ViewOf(r, BasicNode{Proc: 2, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := v.Deliveries()
	if len(ds) != 1 || ds[0].From.Proc != 1 || ds[0].To.Proc != 2 {
		t.Errorf("deliveries = %v", ds)
	}
	leaving := v.Leaving()
	if len(leaving) != 1 || leaving[0].From.Proc != 2 || leaving[0].To != 3 {
		t.Errorf("leaving = %v", leaving)
	}
	if to, ok := v.DeliveryTo(BasicNode{Proc: 1, Index: 1}, 2); !ok || to.Proc != 2 {
		t.Errorf("DeliveryTo = %v, %v", to, ok)
	}
	if _, ok := v.DeliveryTo(BasicNode{Proc: 2, Index: 1}, 3); ok {
		t.Error("escaped delivery visible inside the view")
	}
}

func TestViewResolvePrefix(t *testing.T) {
	r := chainRun(t)
	v, err := ViewOf(r, BasicNode{Proc: 2, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	theta := Via(BasicNode{Proc: 1, Index: 1}, model.Path{1, 2, 3})
	prefix, hops := v.ResolvePrefix(theta)
	if hops != 1 || len(prefix) != 2 {
		t.Errorf("prefix = %v, hops = %d", prefix, hops)
	}
}

func TestViewExternals(t *testing.T) {
	r := chainRun(t)
	v, err := ViewOf(r, BasicNode{Proc: 3, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	node, ok := v.FindExternal(1, "go")
	if !ok || node != (BasicNode{Proc: 1, Index: 1}) {
		t.Errorf("FindExternal = %v, %v", node, ok)
	}
	if _, ok := v.FindExternal(1, "halt"); ok {
		t.Error("phantom external found")
	}
	if labels := v.ExternalsAt(node); len(labels) != 1 || labels[0] != "go" {
		t.Errorf("ExternalsAt = %v", labels)
	}
}

// TestFindExternalIndexKeepsEarliest pins the indexed FindExternal against
// its old linear-scan semantics: the answer is the earliest node of the
// process carrying the label, even when merge order records a later
// occurrence first, and clones keep an independent index.
func TestFindExternalIndexKeepsEarliest(t *testing.T) {
	net := model.MustComplete(2, 1, 2)
	v := NewLocalView(net, 1)
	v.members[0] = 3
	v.recordExternal(BasicNode{Proc: 1, Index: 3}, "go")
	if n, ok := v.FindExternal(1, "go"); !ok || n.Index != 3 {
		t.Fatalf("FindExternal = %v, %v", n, ok)
	}
	// A merge later surfaces an earlier occurrence of the same label.
	v.recordExternal(BasicNode{Proc: 1, Index: 2}, "go")
	if n, ok := v.FindExternal(1, "go"); !ok || n.Index != 2 {
		t.Fatalf("after earlier record: FindExternal = %v, %v", n, ok)
	}
	// Later occurrences never displace the earliest.
	v.recordExternal(BasicNode{Proc: 1, Index: 3}, "go") // duplicate: ignored
	v.members[1] = 1
	v.recordExternal(BasicNode{Proc: 2, Index: 1}, "go") // other process
	if n, _ := v.FindExternal(1, "go"); n.Index != 2 {
		t.Fatalf("earliest displaced: %v", n)
	}
	if _, ok := v.FindExternal(2, "halt"); ok {
		t.Fatal("phantom label found")
	}
	c := v.Clone()
	v.recordExternal(BasicNode{Proc: 1, Index: 1}, "go")
	if n, _ := c.FindExternal(1, "go"); n.Index != 2 {
		t.Fatalf("clone index aliases the original: %v", n)
	}
	if n, _ := v.FindExternal(1, "go"); n.Index != 1 {
		t.Fatalf("original index stale: %v", n)
	}
}

func TestViewAbsorbMatchesOffline(t *testing.T) {
	// Manually replay the chain run's receipts on local views and compare
	// with ViewOf at every step.
	r := chainRun(t)
	net := r.Net()
	v1 := NewLocalView(net, 1)
	n1, err := v1.Absorb(nil, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != (BasicNode{Proc: 1, Index: 1}) {
		t.Errorf("node = %s", n1)
	}
	v2 := NewLocalView(net, 2)
	if _, err := v2.Absorb([]Receipt{{From: n1, Payload: v1.Snapshot()}}, nil); err != nil {
		t.Fatal(err)
	}
	want, err := ViewOf(r, BasicNode{Proc: 2, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v2.PastSet().Equal(want.PastSet()) {
		t.Error("accumulated view disagrees with extracted view")
	}
	v3 := NewLocalView(net, 3)
	if _, err := v3.Absorb([]Receipt{{From: BasicNode{Proc: 2, Index: 1}, Payload: v2.Snapshot()}}, nil); err != nil {
		t.Fatal(err)
	}
	want3, err := ViewOf(r, BasicNode{Proc: 3, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v3.PastSet().Equal(want3.PastSet()) {
		t.Error("two-hop accumulated view disagrees")
	}
}

func TestAbsorbRejectsUncoveredSender(t *testing.T) {
	net := model.MustComplete(2, 1, 2)
	v := NewLocalView(net, 2)
	// A receipt claiming to come from a node its own payload doesn't cover.
	_, err := v.Absorb([]Receipt{{From: BasicNode{Proc: 1, Index: 5}, Payload: NewLocalView(net, 1).Snapshot()}}, nil)
	if err == nil {
		t.Fatal("uncovered sender accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	net := model.MustComplete(2, 1, 2)
	v := NewLocalView(net, 1)
	if _, err := v.Absorb(nil, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	c := v.Clone()
	if _, err := v.Absorb(nil, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if c.Contains(BasicNode{Proc: 1, Index: 2}) {
		t.Error("clone aliases the original's membership")
	}
	if c.Size() != 2 {
		t.Errorf("clone size = %d, want 2", c.Size())
	}
}

// TestPastIsPClosedProperty: past sets computed on random simulated runs are
// precedence-closed: the sender of every delivery received inside is inside.
func TestPastIsPClosedProperty(t *testing.T) {
	f := func(seed int64) bool {
		net := model.MustComplete(4, 1, 3)
		r, err := buildRandomRun(net, seed)
		if err != nil {
			return false
		}
		for _, p := range net.Procs() {
			k := r.LastIndex(p)
			if k == 0 {
				continue
			}
			ps, err := r.Past(BasicNode{Proc: p, Index: k})
			if err != nil {
				return false
			}
			for _, d := range r.Deliveries() {
				if ps.Contains(d.To) && !ps.Contains(d.From) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
