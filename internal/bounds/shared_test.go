package bounds

import (
	"errors"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// replayAll reconstructs every process's view evolution from a recorded run
// in global time order — the interleaving the live environment produces —
// and calls visit at each new state of an observer process. Payload
// snapshots come from the per-process views themselves, so merges exercise
// the same watermark fast path as live execution.
func replayAll(t *testing.T, r *run.Run, observers map[model.ProcID]bool, visit func(p model.ProcID, k int, v *run.View)) {
	t.Helper()
	net := r.Net()
	views := make([]*run.View, net.N())
	for _, p := range net.Procs() {
		views[p-1] = run.NewLocalView(net, p)
	}
	snaps := make(map[run.BasicNode]*run.Snapshot)
	for tick := model.Time(1); tick <= r.Horizon(); tick++ {
		for _, p := range net.Procs() {
			node := r.NodeAt(p, tick)
			if node.IsInitial() || r.MustTime(node) != tick {
				continue
			}
			var receipts []run.Receipt
			for _, d := range r.Inbox(node) {
				receipts = append(receipts, run.Receipt{From: d.From, Payload: snaps[d.From]})
			}
			var labels []string
			for _, e := range r.ExternalsAt(node) {
				labels = append(labels, e.Label)
			}
			if _, err := views[p-1].Absorb(receipts, labels); err != nil {
				t.Fatal(err)
			}
			snaps[node] = views[p-1].Snapshot()
			if observers[p] {
				visit(p, node.Index, views[p-1])
			}
		}
	}
}

// TestSharedMatchesFreshBuild is the shared engine's differential
// acceptance test: several agents subscribe handles to ONE engine and
// advance interleaved in run order, and at every state of every agent,
// every knowledge answer through its handle — weight, knownness and error
// class, over basic and chain-crossing general node pairs, in both
// directions — is identical to a fresh NewExtendedFromView of that agent's
// own view. This pins the whole restriction machinery: frontier masks over
// vertices other agents forced into the standing graph, per-handle E”
// overlays, virtual boundary edges and per-handle warm-started relaxation.
func TestSharedMatchesFreshBuild(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Procs = 4 + int(seed%3)
		in := workload.MustGenerate(cfg)
		r, err := in.Simulate(sim.NewRandom(seed * 13))
		if err != nil {
			t.Fatal(err)
		}
		procs := in.Net.Procs()
		observers := map[model.ProcID]bool{
			procs[int(seed)%len(procs)]:     true,
			procs[(int(seed)+1)%len(procs)]: true,
			procs[(int(seed)+3)%len(procs)]: true,
		}
		eng := NewShared(in.Net)
		handles := make(map[model.ProcID]*Handle)
		fixed := make(map[model.ProcID]run.GeneralNode)
		replayAll(t, r, observers, func(p model.ProcID, k int, v *run.View) {
			h, ok := handles[p]
			if !ok {
				h = mustHandle(t, eng, v)
				handles[p] = h
				// A source queried both last and first around every state
				// transition, so the warm-started restricted RelaxFrom path is
				// exercised and compared at every state.
				fixed[p] = run.At(run.BasicNode{Proc: p, Index: 1})
			}
			fresh, err := NewExtendedFromView(v)
			if err != nil {
				t.Fatal(err)
			}
			qs := append([]run.GeneralNode{fixed[p]}, queryNodes(v)...)
			qs = append(qs, fixed[p])
			for i, t1 := range qs {
				for j, t2 := range qs {
					if i == j && t1.IsBasic() {
						continue
					}
					wantKW, _, wantKnown, wantErr := fresh.KnowledgeWeight(t1, t2)
					gotKW, gotKnown, gotErr := h.KnowledgeWeight(t1, t2)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("seed %d p%d#%d %s->%s: err fresh=%v shared=%v",
							seed, p, k, t1, t2, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if wantKnown != gotKnown || (wantKnown && wantKW != gotKW) {
						t.Fatalf("seed %d p%d#%d %s->%s: fresh (%d,%v) shared (%d,%v)",
							seed, p, k, t1, t2, wantKW, wantKnown, gotKW, gotKnown)
					}
				}
			}
		})
	}
}

// TestSharedMatchesOnlinePerAgent cross-checks the two incremental engines
// directly: a shared handle and a private bounds.Online engine driven by
// the same view sequence give identical answers at every state. (Both are
// separately pinned to fresh builds; this guards against compensating
// errors in the differential fixtures.)
func TestSharedMatchesOnlinePerAgent(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(7))
	r, err := in.Simulate(sim.NewRandom(17))
	if err != nil {
		t.Fatal(err)
	}
	procs := in.Net.Procs()
	observers := map[model.ProcID]bool{procs[0]: true, procs[2]: true}
	eng := NewShared(in.Net)
	handles := make(map[model.ProcID]*Handle)
	onlines := make(map[model.ProcID]*Online)
	replayAll(t, r, observers, func(p model.ProcID, k int, v *run.View) {
		if handles[p] == nil {
			handles[p] = mustHandle(t, eng, v)
			onlines[p] = NewOnline(v)
		}
		for _, t1 := range queryNodes(v) {
			for _, t2 := range queryNodes(v) {
				kw1, known1, err1 := handles[p].KnowledgeWeight(t1, t2)
				kw2, known2, err2 := onlines[p].KnowledgeWeight(t1, t2)
				if known1 != known2 || (known1 && kw1 != kw2) || (err1 == nil) != (err2 == nil) {
					t.Fatalf("p%d#%d %s->%s: shared (%d,%v,%v) online (%d,%v,%v)",
						p, k, t1, t2, kw1, known1, err1, kw2, known2, err2)
				}
			}
		}
	})
}

// TestSharedQueriesAreRepeatable: speculative chain vertices roll back
// completely even when several handles share the standing graph, so asking
// the same question twice never changes an answer or leaks vertices.
func TestSharedQueriesAreRepeatable(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(3))
	r, err := in.Simulate(sim.NewRandom(5))
	if err != nil {
		t.Fatal(err)
	}
	procs := in.Net.Procs()
	observers := map[model.ProcID]bool{procs[0]: true, procs[1]: true}
	eng := NewShared(in.Net)
	handles := make(map[model.ProcID]*Handle)
	replayAll(t, r, observers, func(p model.ProcID, k int, v *run.View) {
		if handles[p] == nil {
			handles[p] = mustHandle(t, eng, v)
		}
		h := handles[p]
		qs := queryNodes(v)
		for _, t1 := range qs {
			for _, t2 := range qs {
				kw, known, err := h.KnowledgeWeight(t1, t2)
				before := eng.NumVertices()
				kw2, known2, err2 := h.KnowledgeWeight(t1, t2)
				if kw2 != kw || known2 != known || (err2 == nil) != (err == nil) {
					t.Fatalf("p%d#%d: %s->%s not repeatable: (%d,%v,%v) vs (%d,%v,%v)",
						p, k, t1, t2, kw, known, err, kw2, known2, err2)
				}
				if eng.NumVertices() != before {
					t.Fatalf("p%d#%d: query leaked %d vertices", p, k, eng.NumVertices()-before)
				}
			}
		}
	})
}

// TestSharedRejectsUnmodeledChannel mirrors the fresh-build and Online
// error paths: a delivery over a channel the network does not model
// surfaces as model.ErrNoChannel through a shared handle too, stably across
// retries.
func TestSharedRejectsUnmodeledChannel(t *testing.T) {
	net := model.NewBuilder(3).Chan(1, 2, 1, 2).Chan(2, 3, 1, 2).MustBuild()
	sender := run.NewLocalView(net, 3)
	from, err := sender.Absorb(nil, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	receiver := run.NewLocalView(net, 2)
	eng := NewShared(net)
	h := mustHandle(t, eng, receiver)
	if _, err := receiver.Absorb([]run.Receipt{{From: from, Payload: sender.Snapshot()}}, nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := h.Sync(); !errors.Is(err, model.ErrNoChannel) {
			t.Fatalf("round %d: got %v, want model.ErrNoChannel", round, err)
		}
		sigma := run.At(receiver.Origin())
		if _, _, err := h.KnowledgeWeight(sigma, sigma); !errors.Is(err, model.ErrNoChannel) {
			t.Fatalf("round %d: query error = %v, want model.ErrNoChannel", round, err)
		}
	}
}

// TestSharedAllocationGuard keeps the steady-state query path
// allocation-light, in the style of the existing guards: once the engine
// has absorbed the run and a handle's cache is warm, a repeated
// basic-to-basic knowledge query allocates (at most) a small constant —
// the restriction is assembled on the stack, relaxation runs in the leased
// scratch, and the empty delta leaves nothing to sync.
func TestSharedAllocationGuard(t *testing.T) {
	net := model.MustComplete(4, 1, 5)
	r := sim.MustSimulate(sim.Config{
		Net: net, Horizon: 40, Policy: sim.Lazy{}, Externals: sim.GoAt(1, 1, "go"),
	})
	eng := NewShared(net)
	var h *Handle
	var view *run.View
	observers := map[model.ProcID]bool{2: true}
	replayAll(t, r, observers, func(p model.ProcID, k int, v *run.View) {
		if h == nil {
			h = mustHandle(t, eng, v)
			view = v
		}
	})
	if h == nil {
		t.Fatal("observer never moves")
	}
	theta1 := run.At(run.BasicNode{Proc: 2, Index: 1})
	theta2 := run.At(view.Origin())
	// Warm the cache: the first query pays the full restricted relaxation.
	if _, known, err := h.KnowledgeWeight(theta1, theta2); err != nil || !known {
		t.Fatalf("warmup: known=%v err=%v", known, err)
	}
	const limit = 4
	got := testing.AllocsPerRun(50, func() {
		if _, _, err := h.KnowledgeWeight(theta1, theta2); err != nil {
			t.Fatal(err)
		}
	})
	if got > limit {
		t.Errorf("warm shared query allocates %.0f times per run, want <= %d", got, limit)
	}
}

// TestSharedScratchPool: releasing a handle returns its scratch for the
// next subscriber, and a released handle that queries again transparently
// re-leases and answers correctly.
func TestSharedScratchPool(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(2))
	r, err := in.Simulate(sim.NewRandom(3))
	if err != nil {
		t.Fatal(err)
	}
	p := in.Net.Procs()[0]
	if r.LastIndex(p) == 0 {
		t.Skip("process never moves")
	}
	eng := NewShared(in.Net)
	var h *Handle
	replayAll(t, r, map[model.ProcID]bool{p: true}, func(_ model.ProcID, _ int, v *run.View) {
		if h == nil {
			h = mustHandle(t, eng, v)
		}
	})
	sigma := run.At(h.View().Origin())
	theta := run.At(run.BasicNode{Proc: p, Index: 1})
	kw, known, err := h.KnowledgeWeight(theta, sigma)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release() // idempotent
	kw2, known2, err2 := h.KnowledgeWeight(theta, sigma)
	if err2 != nil || known2 != known || kw2 != kw {
		t.Fatalf("after release: (%d,%v,%v) vs (%d,%v,%v)", kw2, known2, err2, kw, known, err)
	}
	h2 := mustHandle(t, eng, h.View())
	if kw3, known3, err3 := h2.KnowledgeWeight(theta, sigma); err3 != nil || known3 != known || kw3 != kw {
		t.Fatalf("second handle: (%d,%v,%v) vs (%d,%v,%v)", kw3, known3, err3, kw, known, err)
	}
}

// mustHandle subscribes a view to a shared engine, failing the test on the
// (programmer-error) network-mismatch path.
func mustHandle(tb testing.TB, s *Shared, v *run.View) *Handle {
	tb.Helper()
	h, err := s.NewHandle(v)
	if err != nil {
		tb.Fatal(err)
	}
	return h
}
