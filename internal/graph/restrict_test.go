package graph

import (
	"errors"
	"testing"
)

// refreshVisible recomputes the bool mask from the (band, idx, limit)
// coordinates — the invariant bounds.Shared handles maintain incrementally.
func refreshVisible(r *Restriction) {
	if r.Visible == nil {
		r.Visible = make([]bool, len(r.Band))
	}
	for v := range r.Band {
		r.Visible[v] = r.Idx[v] == AlwaysVisible || r.Idx[v] <= r.Limit[r.Band[v]]
	}
}

// line builds the shared fixture: two bands of a "timeline" each (band 0:
// vertices 2,3,4; band 1: vertices 5,6,7) over two always-visible anchors
// (0 and 1), successor edges of weight 1 along each band and a cross edge
// 3 --5--> 6.
func line() (*Graph, *Restriction) {
	g := New(8)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(5, 6, 1)
	g.AddEdge(6, 7, 1)
	g.AddEdge(3, 6, 5)
	r := &Restriction{
		Band:  []int32{0, 1, 0, 0, 0, 1, 1, 1},
		Idx:   []int32{AlwaysVisible, AlwaysVisible, 0, 1, 2, 0, 1, 2},
		Limit: []int32{2, 2},
	}
	refreshVisible(r)
	return g, r
}

// TestRestrictedMatchesUnrestricted: with every vertex inside the limits and
// no overlay, the restricted run is plain Longest.
func TestRestrictedMatchesUnrestricted(t *testing.T) {
	g, r := line()
	var s1, s2 Scratch
	want, err := g.LongestWith(&s1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.LongestRestricted(&s2, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("vertex %d: %d vs %d", v, got[v], want[v])
		}
	}
}

// TestRestrictedMasksPrefix: lowering a band's limit hides its suffix and
// every path through it.
func TestRestrictedMasksPrefix(t *testing.T) {
	g, r := line()
	r.Limit = []int32{1, 0} // band 0 up to vertex 3, band 1 up to vertex 5
	refreshVisible(r)
	var s Scratch
	dist, err := g.LongestRestricted(&s, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if dist[3] != 1 {
		t.Fatalf("dist[3] = %d, want 1", dist[3])
	}
	for _, v := range []int{4, 6, 7} {
		if dist[v] != posInf {
			t.Fatalf("masked vertex %d got distance %d, want the mask sentinel", v, dist[v])
		}
	}
}

// TestRestrictedOverlayAndBoundary: overlay edges and the virtual boundary
// edge are relaxed exactly like standing edges, and a warm restart after the
// limit grows matches a fresh restricted run.
func TestRestrictedOverlayAndBoundary(t *testing.T) {
	g, r := line()
	r.Limit = []int32{1, 1}
	refreshVisible(r)
	r.Overlay = make([][]Edge, 2)
	r.Overlay[0] = []Edge{{To: 5, Weight: 7}} // anchor 0 --7--> 5 (visible)
	r.BoundaryTo = []int32{0, 1}              // band boundaries point at their anchors
	r.BoundaryWeight = 1
	var s Scratch
	dist, err := g.LongestRestricted(&s, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// 2 ->1-> 3 (boundary of band 0) ->1-> anchor 0 ->7-> 5 ->1-> 6 (boundary
	// of band 1) ->1-> anchor 1.
	for v, want := range map[int]int64{3: 1, 0: 2, 5: 9, 6: 10, 1: 11} {
		if dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	if dist[4] != posInf || dist[7] != posInf {
		t.Fatalf("masked vertices reached: dist[4]=%d dist[7]=%d", dist[4], dist[7])
	}

	// Grow both limits: vertices 4 and 7 become visible, the boundary edges
	// move. Seeds: the newly visible edges' sources (3->4, 6->7) and the new
	// boundary vertices themselves.
	r.Limit = []int32{2, 2}
	refreshVisible(r)
	warm, err := g.RelaxRestrictedFrom(&s, []int{3, 6, 4, 7}, []int{4, 7}, r)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Scratch
	fresh, err := g.LongestRestricted(&s2, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fresh {
		if warm[v] != fresh[v] {
			t.Fatalf("warm restart diverges at %d: %d vs %d", v, warm[v], fresh[v])
		}
	}
	if warm[0] != 3 {
		t.Fatalf("boundary edge did not move: dist[0] = %d, want 3", warm[0])
	}
}

// TestRestrictedPositiveCycle: a positive cycle inside the visible region is
// still detected; masked out, it is not.
func TestRestrictedPositiveCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 1, 1) // positive cycle 1<->2
	r := &Restriction{
		Band:  []int32{0, 0, 0, 0},
		Idx:   []int32{AlwaysVisible, 0, 1, 2},
		Limit: []int32{2},
	}
	refreshVisible(r)
	var s Scratch
	if _, err := g.LongestRestricted(&s, 0, r); !errors.Is(err, ErrPositiveCycle) {
		t.Fatalf("got %v, want ErrPositiveCycle", err)
	}
	r.Limit[0] = 0 // hide the cycle
	refreshVisible(r)
	if _, err := g.LongestRestricted(&s, 0, r); err != nil {
		t.Fatalf("masked cycle still reported: %v", err)
	}
}
