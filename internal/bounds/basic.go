package bounds

import (
	"errors"
	"fmt"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// ErrNotInGraph reports a query about a node that is not a vertex of the
// graph at hand.
var ErrNotInGraph = errors.New("bounds: node not in graph")

// Basic is the basic bounds graph GB(r) of Definition 8: vertices are the
// basic nodes appearing in r; edges are successor edges of weight 1 and, per
// message delivery, a forward edge of weight L and a backward edge of weight
// -U. Every path encodes a sound timed-precedence constraint (Lemma 1), and
// a longest path is the tightest constraint the run's communication pattern
// supports (the heart of Theorem 2).
//
// The graph is a static structure over a fixed run, so it is built densely:
// vertex ids are precomputed per-process offsets plus node indices, the
// degree of every vertex is counted up front so the adjacency lists are
// carved from shared backing arrays, and no per-edge metadata is stored —
// the Step semantics of an edge (u, v, w) are fully determined by the vertex
// ids and the weight, so they are derived on demand for the (short) queried
// paths instead of being materialized for every edge.
type Basic struct {
	r      *run.Run
	g      *graph.Graph
	offset []int // offset[p-1]: first vertex id of process p's nodes

	// scratch holds the SPFA and path-reconstruction buffers reused across
	// this graph's queries (a Basic is not safe for concurrent use).
	scratch graph.Scratch
}

// NewBasic constructs GB(r) in two passes: an exact degree count, then edge
// insertion into presized adjacency — O(1) allocations beyond the vertex
// tables regardless of run size.
func NewBasic(r *run.Run) *Basic {
	net := r.Net()
	n := net.N()
	b := &Basic{r: r, offset: make([]int, n)}
	total := 0
	for p := model.ProcID(1); int(p) <= n; p++ {
		b.offset[p-1] = total
		total += r.LastIndex(p) + 1
	}

	// Pass 1: count degrees. Each timeline contributes LastIndex successor
	// edges; each delivery contributes one forward and one backward edge.
	out := make([]int32, total)
	in := make([]int32, total)
	for p := model.ProcID(1); int(p) <= n; p++ {
		off := b.offset[p-1]
		for k := 0; k < r.LastIndex(p); k++ {
			out[off+k]++
			in[off+k+1]++
		}
	}
	ds := r.Deliveries()
	for i := range ds {
		u := b.offset[ds[i].From.Proc-1] + ds[i].From.Index
		v := b.offset[ds[i].To.Proc-1] + ds[i].To.Index
		out[u]++
		in[v]++
		out[v]++
		in[u]++
	}
	b.g = graph.NewWithDegrees(out, in)

	// Pass 2: insert edges (successors first, then per-delivery pairs — the
	// same order as the historical construction, preserving adjacency order
	// and hence path reconstruction exactly).
	for p := model.ProcID(1); int(p) <= n; p++ {
		off := b.offset[p-1]
		for k := 0; k < r.LastIndex(p); k++ {
			b.g.AddEdge(off+k, off+k+1, 1)
		}
	}
	for i := range ds {
		u := b.offset[ds[i].From.Proc-1] + ds[i].From.Index
		v := b.offset[ds[i].To.Proc-1] + ds[i].To.Index
		bd := net.BoundsOf(ds[i].Chan)
		b.g.AddEdge(u, v, bd.Lower)
		b.g.AddEdge(v, u, -bd.Upper)
	}
	return b
}

// Run returns the underlying run.
func (b *Basic) Run() *run.Run { return b.r }

// Graph exposes the raw weighted graph (for scaling benchmarks and tests).
func (b *Basic) Graph() *graph.Graph { return b.g }

// NumVertices returns the number of basic nodes in the graph.
func (b *Basic) NumVertices() int { return b.g.N() }

// NumEdges returns the number of edges.
func (b *Basic) NumEdges() int { return b.g.NumEdges() }

// Vertex returns the vertex id of a basic node.
func (b *Basic) Vertex(n run.BasicNode) (int, error) {
	if !b.r.Appears(n) {
		return 0, fmt.Errorf("%w: %s", ErrNotInGraph, n)
	}
	return b.offset[n.Proc-1] + n.Index, nil
}

// NodeOf inverts Vertex.
func (b *Basic) NodeOf(v int) run.BasicNode {
	for i := len(b.offset) - 1; i >= 0; i-- {
		if v >= b.offset[i] {
			return run.BasicNode{Proc: model.ProcID(i + 1), Index: v - b.offset[i]}
		}
	}
	panic(fmt.Sprintf("bounds: vertex %d out of range", v))
}

// stepAt materializes the Step semantics of the edge (u, v, w), verifying
// that such an edge exists. In GB(r) the classification is forced: an edge
// between nodes of one process is a successor edge, and a cross-process edge
// is a forward (message) edge iff its weight is positive.
func (b *Basic) stepAt(u, v, w int) (Step, bool) {
	exists := false
	for _, e := range b.g.Out(u) {
		if e.To == v && e.Weight == w {
			exists = true
			break
		}
	}
	if !exists {
		return Step{}, false
	}
	nu, nv := b.NodeOf(u), b.NodeOf(v)
	var kind StepKind
	switch {
	case nu.Proc == nv.Proc:
		kind = StepSucc
	case w > 0:
		kind = StepLower
	default:
		kind = StepUpper
	}
	return Step{
		Kind:   kind,
		From:   NodePoint(run.At(nu)),
		To:     NodePoint(run.At(nv)),
		Weight: w,
	}, true
}

// stepsOf reconstructs the Step metadata of a vertex path, using the
// distance profile to pick the edge actually used between each pair.
func (b *Basic) stepsOf(path []int, dist []int64) ([]Step, error) {
	steps := make([]Step, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		w := int(dist[v] - dist[u])
		st, ok := b.stepAt(u, v, w)
		if !ok {
			return nil, fmt.Errorf("bounds: missing edge metadata %d->%d (w=%d)", u, v, w)
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// LongestBetween returns the tightest constraint weight x such that the
// communication pattern of r guarantees sigma1 --x--> sigma2, together with
// the constraint path realizing it. ok is false when GB(r) has no path from
// sigma1 to sigma2 (no bound is supported at all).
func (b *Basic) LongestBetween(sigma1, sigma2 run.BasicNode) (x int, steps []Step, ok bool, err error) {
	u, err := b.Vertex(sigma1)
	if err != nil {
		return 0, nil, false, err
	}
	v, err := b.Vertex(sigma2)
	if err != nil {
		return 0, nil, false, err
	}
	dist, err := b.g.LongestWith(&b.scratch, u)
	if err != nil {
		return 0, nil, false, fmt.Errorf("bounds: GB(r) inconsistent: %w", err)
	}
	if dist[v] == graph.NegInf {
		return 0, nil, false, nil
	}
	path, ok, err := b.g.PathFrom(&b.scratch, dist, u, v)
	if err != nil || !ok {
		return 0, nil, ok, err
	}
	steps, err = b.stepsOf(path, dist)
	if err != nil {
		return 0, nil, false, err
	}
	return int(dist[v]), steps, true, nil
}

// DistancesInto returns, for every basic node, the weight of the longest
// path from that node into sigma (NegInf entries mean "no path"). This is
// d(.) of Definition 13 and drives the slow-timing construction.
func (b *Basic) DistancesInto(sigma run.BasicNode) ([]int64, error) {
	v, err := b.Vertex(sigma)
	if err != nil {
		return nil, err
	}
	dist, err := b.g.LongestInto(v)
	if err != nil {
		return nil, fmt.Errorf("bounds: GB(r) inconsistent: %w", err)
	}
	return dist, nil
}

// PrecedenceSet returns V_sigma (Definition 12): the basic nodes with a path
// to sigma in GB(r), as a membership predicate indexed by vertex id. The set
// is p-closed (Lemma 6).
func (b *Basic) PrecedenceSet(sigma run.BasicNode) ([]bool, error) {
	v, err := b.Vertex(sigma)
	if err != nil {
		return nil, err
	}
	return b.g.ReachSet(v), nil
}

// CheckLemma1 verifies, against the run's actual times, that a step path is
// sound: time(first) + sum(weights) <= time(last) and every intermediate
// constraint holds. It returns the total weight.
func (b *Basic) CheckLemma1(steps []Step) (int, error) {
	total := 0
	for _, s := range steps {
		t1, err := b.r.Time(s.From.Node.Base)
		if err != nil {
			return 0, err
		}
		t2, err := b.r.Time(s.To.Node.Base)
		if err != nil {
			return 0, err
		}
		if t1+s.Weight > t2 {
			return 0, fmt.Errorf("bounds: unsound step %s: times %d, %d", s, t1, t2)
		}
		total += s.Weight
	}
	return total, nil
}
