package coord

import (
	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/run"
)

const negInf = graph.NegInf

// graphForward builds the forward-only (asynchronous) constraint graph over
// a past set: successor edges of weight 1 and message edges at their lower
// bounds. No upper-bound edges — this is precisely the information content
// of the happened-before relation plus per-hop minimum latencies.
func graphForward(r *run.Run, nodes []run.BasicNode, index map[run.BasicNode]int) *graph.Graph {
	net := r.Net()
	g := graph.New(len(nodes))
	for _, n := range nodes {
		if succ := n.Successor(); true {
			if j, ok := index[succ]; ok {
				g.AddEdge(index[n], j, 1)
			}
		}
	}
	for _, d := range r.Deliveries() {
		i, okFrom := index[d.From]
		j, okTo := index[d.To]
		if !okFrom || !okTo {
			continue
		}
		g.AddEdge(i, j, net.Lower(d.From.Proc, d.To.Proc))
	}
	return g
}
