package model

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	net, err := NewBuilder(3).
		Chan(1, 2, 2, 5).
		Chan(2, 1, 1, 1).
		Chan(1, 3, 3, 7).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 3 {
		t.Errorf("N = %d, want 3", net.N())
	}
	if net.NumChannels() != 3 {
		t.Errorf("channels = %d, want 3", net.NumChannels())
	}
	if !net.HasChan(1, 2) || net.HasChan(3, 1) {
		t.Error("channel membership wrong")
	}
	if got := net.Lower(1, 2); got != 2 {
		t.Errorf("L(1,2) = %d, want 2", got)
	}
	if got := net.Upper(1, 3); got != 7 {
		t.Errorf("U(1,3) = %d, want 7", got)
	}
	if got := net.MaxUpper(); got != 7 {
		t.Errorf("MaxUpper = %d, want 7", got)
	}
	if got := net.MinLower(); got != 1 {
		t.Errorf("MinLower = %d, want 1", got)
	}
	if out := net.Out(1); len(out) != 2 || out[0] != 2 || out[1] != 3 {
		t.Errorf("Out(1) = %v", out)
	}
	if in := net.In(1); len(in) != 1 || in[0] != 2 {
		t.Errorf("In(1) = %v", in)
	}
}

// TestDenseChannelIndex pins the dense core: ids are assigned in (From, To)
// lexicographic order, the flat tables agree with the map-flavoured API, and
// the CSR adjacency slices are consistent with Out/In.
func TestDenseChannelIndex(t *testing.T) {
	net := NewBuilder(4).
		Chan(2, 1, 1, 1).
		Chan(1, 2, 2, 5).
		Chan(1, 3, 3, 7).
		Chan(3, 4, 1, 2).
		Chan(4, 1, 2, 2).
		MustBuild()
	wantOrder := []Channel{{1, 2}, {1, 3}, {2, 1}, {3, 4}, {4, 1}}
	arcs := net.Arcs()
	if len(arcs) != len(wantOrder) {
		t.Fatalf("arcs = %d, want %d", len(arcs), len(wantOrder))
	}
	for i, a := range arcs {
		if a.ID != ChanID(i) {
			t.Errorf("arc %d has id %d", i, a.ID)
		}
		if (Channel{From: a.From, To: a.To}) != wantOrder[i] {
			t.Errorf("arc %d is %d->%d, want %s", i, a.From, a.To, wantOrder[i])
		}
		if got := net.ChannelOf(a.ID); got != wantOrder[i] {
			t.Errorf("ChannelOf(%d) = %s, want %s", a.ID, got, wantOrder[i])
		}
		if got := net.ChanIDOf(a.From, a.To); got != a.ID {
			t.Errorf("ChanIDOf(%d,%d) = %d, want %d", a.From, a.To, got, a.ID)
		}
		bd, err := net.ChanBounds(a.From, a.To)
		if err != nil || bd != net.BoundsOf(a.ID) {
			t.Errorf("BoundsOf(%d) = %s disagrees with ChanBounds %s (err %v)",
				a.ID, net.BoundsOf(a.ID), bd, err)
		}
	}
	if got := net.ChanIDOf(2, 3); got != NoChan {
		t.Errorf("ChanIDOf(2,3) = %d, want NoChan", got)
	}
	if got := net.ChanIDOf(0, 9); got != NoChan {
		t.Errorf("ChanIDOf(0,9) = %d, want NoChan", got)
	}
	out := net.OutArcs(1)
	if len(out) != 2 || out[0].To != 2 || out[1].To != 3 {
		t.Errorf("OutArcs(1) = %+v", out)
	}
	for _, p := range net.Procs() {
		oa := net.OutArcs(p)
		if len(oa) != len(net.Out(p)) {
			t.Errorf("OutArcs(%d) and Out(%d) disagree", p, p)
		}
		for i, a := range oa {
			if a.From != p || a.To != net.Out(p)[i] {
				t.Errorf("OutArcs(%d)[%d] = %+v", p, i, a)
			}
		}
		ids := net.InIDs(p)
		if len(ids) != len(net.In(p)) {
			t.Errorf("InIDs(%d) and In(%d) disagree", p, p)
		}
		for i, id := range ids {
			if net.ChannelOf(id).From != net.In(p)[i] || net.ChannelOf(id).To != p {
				t.Errorf("InIDs(%d)[%d] = %d (%s)", p, i, id, net.ChannelOf(id))
			}
		}
	}
	if net.OutArcs(99) != nil || net.InIDs(0) != nil {
		t.Error("adjacency of invalid processes should be nil")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
		want error
	}{
		{"bad proc", NewBuilder(2).Chan(1, 5, 1, 2), ErrBadProc},
		{"zero proc", NewBuilder(2).Chan(0, 1, 1, 2), ErrBadProc},
		{"self loop", NewBuilder(2).Chan(1, 1, 1, 2), ErrSelfLoop},
		{"dup", NewBuilder(2).Chan(1, 2, 1, 2).Chan(1, 2, 2, 3), ErrDupChannel},
		{"zero lower", NewBuilder(2).Chan(1, 2, 0, 2), ErrBadBounds},
		{"inverted", NewBuilder(2).Chan(1, 2, 5, 2), ErrBadBounds},
		{"no procs", NewBuilder(0), ErrNoProcesses},
	}
	for _, tc := range cases {
		if _, err := tc.b.Build(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestBoundsValid(t *testing.T) {
	cases := []struct {
		b    Bounds
		want bool
	}{
		{Bounds{1, 1}, true},
		{Bounds{1, 10}, true},
		{Bounds{0, 5}, false},
		{Bounds{3, 2}, false},
		{Bounds{1, Infinity}, false},
	}
	for _, tc := range cases {
		if got := tc.b.Valid(); got != tc.want {
			t.Errorf("%s.Valid() = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestBiChan(t *testing.T) {
	net := NewBuilder(2).BiChan(1, 2, 2, 4).MustBuild()
	if !net.HasChan(1, 2) || !net.HasChan(2, 1) {
		t.Fatal("BiChan missing a direction")
	}
	if net.Lower(2, 1) != 2 || net.Upper(2, 1) != 4 {
		t.Error("reverse bounds wrong")
	}
}

func TestTopologyBuilders(t *testing.T) {
	line := MustLine(4, 1, 2)
	if line.NumChannels() != 6 {
		t.Errorf("line channels = %d, want 6", line.NumChannels())
	}
	ring := MustRing(4, 1, 2)
	if ring.NumChannels() != 8 {
		t.Errorf("ring channels = %d, want 8", ring.NumChannels())
	}
	star := MustStar(5, 1, 2)
	if star.NumChannels() != 8 {
		t.Errorf("star channels = %d, want 8", star.NumChannels())
	}
	complete := MustComplete(4, 1, 2)
	if complete.NumChannels() != 12 {
		t.Errorf("complete channels = %d, want 12", complete.NumChannels())
	}
	// Degenerate rings.
	if MustRing(2, 1, 2).NumChannels() != 2 {
		t.Error("ring(2) should be one bidirectional link")
	}
	if MustRing(1, 1, 2).NumChannels() != 0 {
		t.Error("ring(1) should be empty")
	}
}

func TestShortestHopPath(t *testing.T) {
	net := MustLine(5, 1, 3)
	p := net.ShortestHopPath(1, 5)
	if !p.Equal(Path{1, 2, 3, 4, 5}) {
		t.Errorf("path = %v", p)
	}
	if got := net.ShortestHopPath(3, 3); !got.Equal(Path{3}) {
		t.Errorf("self path = %v", got)
	}
	oneway := NewBuilder(3).Chan(1, 2, 1, 1).Chan(2, 3, 1, 1).MustBuild()
	if p := oneway.ShortestHopPath(3, 1); p != nil {
		t.Errorf("unreachable pair returned %v", p)
	}
	if !oneway.Reachable(1, 3) || oneway.Reachable(3, 1) {
		t.Error("reachability wrong")
	}
}

func TestDiameter(t *testing.T) {
	if d := MustLine(5, 1, 2).Diameter(); d != 4 {
		t.Errorf("line diameter = %d, want 4", d)
	}
	if d := MustComplete(5, 1, 2).Diameter(); d != 1 {
		t.Errorf("complete diameter = %d, want 1", d)
	}
	if d := MustStar(5, 1, 2).Diameter(); d != 2 {
		t.Errorf("star diameter = %d, want 2", d)
	}
}

func TestNetworkString(t *testing.T) {
	net := NewBuilder(2).Chan(1, 2, 1, 4).MustBuild()
	want := "Net(n=2; 1->2[1,4])"
	if got := net.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// TestShortestHopPathIsShortest: property check against BFS levels on
// random networks.
func TestShortestHopPathIsShortest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		nb := NewBuilder(n)
		seen := map[Channel]bool{}
		for i := 0; i < 2*n; i++ {
			from := ProcID(1 + rng.Intn(n))
			to := ProcID(1 + rng.Intn(n))
			ch := Channel{From: from, To: to}
			if from == to || seen[ch] {
				continue
			}
			seen[ch] = true
			nb.Chan(from, to, 1, 2)
		}
		net, err := nb.Build()
		if err != nil {
			return false
		}
		for _, src := range net.Procs() {
			for _, dst := range net.Procs() {
				p := net.ShortestHopPath(src, dst)
				if p == nil {
					continue
				}
				if err := p.ValidIn(net); err != nil {
					return false
				}
				if p.First() != src || p.Last() != dst {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
