// Package sim is the discrete-event simulator for the bounded communication
// model: an environment scheduler that delivers every message within its
// channel's [L, U] window (and *must* deliver once U elapses), driving
// processes that follow the flooding full-information protocol (FFIP). The
// choice of delivery instant within the window is delegated to a Policy,
// which plays the role of the nondeterministic environment of the paper.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Send identifies one FFIP message: the sender process, the destination
// process and the instant it was sent. Under an FFIP each non-initial node
// sends exactly one message per outgoing channel, and a process has at most
// one node per instant, so this triple is a unique message id.
type Send struct {
	From     model.ProcID
	To       model.ProcID
	SendTime model.Time
}

// Policy chooses message latencies for the environment. Implementations
// must return a latency within [b.Lower, b.Upper]; the simulator rejects
// anything else. Policies must be deterministic functions of their own
// state and the Send so that simulations are reproducible.
type Policy interface {
	// Latency returns the transit time for the message s on a channel with
	// bounds b.
	Latency(s Send, b model.Bounds) int
	// Name returns a short identifier for reports.
	Name() string
}

// Eager delivers every message at its lower bound. This is the "fast"
// extreme of the environment.
type Eager struct{}

// Latency implements Policy.
func (Eager) Latency(_ Send, b model.Bounds) int { return b.Lower }

// Name implements Policy.
func (Eager) Name() string { return "eager" }

// Lazy delivers every message at its upper bound (the deadline), the "slow"
// extreme of the environment.
type Lazy struct{}

// Latency implements Policy.
func (Lazy) Latency(_ Send, b model.Bounds) int { return b.Upper }

// Name implements Policy.
func (Lazy) Name() string { return "lazy" }

// Random draws latencies uniformly from [L, U] using a seeded generator; the
// same seed yields the same run. The zero value is not usable; use NewRandom.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Latency implements Policy.
func (r *Random) Latency(_ Send, b model.Bounds) int {
	if b.Upper == b.Lower {
		return b.Lower
	}
	return b.Lower + r.rng.Intn(b.Upper-b.Lower+1)
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// HeavyTail draws latencies from a heavy-tailed distribution over [L, U]:
// most messages arrive at or near the lower bound, but a seeded minority
// straggles all the way to the deadline (extra = floor((span+1)·u³) for
// uniform u, truncated to the window). It models the asymmetric networks the
// paper's bounds are interesting for — fast common case, slow tail — and is
// the first policy family the replay live mode opens at horizons the
// goroutine environment can't afford. The zero value is not usable; use
// NewHeavyTail.
type HeavyTail struct {
	rng *rand.Rand
}

// NewHeavyTail returns a HeavyTail policy with the given seed.
func NewHeavyTail(seed int64) *HeavyTail {
	return &HeavyTail{rng: rand.New(rand.NewSource(seed))}
}

// Latency implements Policy.
func (h *HeavyTail) Latency(_ Send, b model.Bounds) int {
	span := b.Upper - b.Lower
	if span == 0 {
		return b.Lower
	}
	u := h.rng.Float64()
	extra := int(float64(span+1) * u * u * u)
	if extra > span {
		extra = span
	}
	return b.Lower + extra
}

// Name implements Policy.
func (h *HeavyTail) Name() string { return "heavy" }

// Func adapts a function to a Policy; useful for custom adversaries in
// tests and experiments.
type Func struct {
	F  func(s Send, b model.Bounds) int
	ID string
}

// Latency implements Policy.
func (f Func) Latency(s Send, b model.Bounds) int { return f.F(s, b) }

// Name implements Policy.
func (f Func) Name() string {
	if f.ID == "" {
		return "func"
	}
	return f.ID
}

// Timed assigns prescribed latencies to specific messages and defers to a
// fallback policy for the rest. It is the instrument used by the run
// synthesis constructions (slow run of Lemma 8, fast run of Definition 24)
// to realize a valid timing function as an actual simulated run.
type Timed struct {
	// Latencies maps message ids to latencies.
	Latencies map[Send]int
	// Fallback handles messages not in the map; defaults to Lazy if nil.
	Fallback Policy
}

// Latency implements Policy.
func (t *Timed) Latency(s Send, b model.Bounds) int {
	if lat, ok := t.Latencies[s]; ok {
		return lat
	}
	fb := t.Fallback
	if fb == nil {
		fb = Lazy{}
	}
	return fb.Latency(s, b)
}

// Name implements Policy.
func (t *Timed) Name() string { return "timed" }

// Replay reproduces the latencies of an existing run exactly, deferring to
// fallback (Lazy if nil) for messages the original run never delivered.
func Replay(r *run.Run, fallback Policy) *Timed {
	lat := make(map[Send]int, len(r.Deliveries()))
	for _, d := range r.Deliveries() {
		lat[Send{From: d.From.Proc, To: d.To.Proc, SendTime: d.SendTime}] = d.RecvTime - d.SendTime
	}
	return &Timed{Latencies: lat, Fallback: fallback}
}

// validateLatency checks a policy's choice against the channel bounds.
func validateLatency(p Policy, s Send, b model.Bounds, lat int) error {
	if lat < b.Lower || lat > b.Upper {
		return fmt.Errorf("sim: policy %q chose latency %d outside %s for %d->%d at %d",
			p.Name(), lat, b, s.From, s.To, s.SendTime)
	}
	return nil
}
