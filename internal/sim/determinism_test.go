package sim

import (
	"bytes"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/trace"
)

// TestSimulateByteIdenticalPerSeed pins full determinism: two simulations
// from the same seed must serialize to byte-identical recordings — not just
// equal delivery multisets, but identical node tables, orderings and pending
// sets.
func TestSimulateByteIdenticalPerSeed(t *testing.T) {
	net := model.MustComplete(5, 1, 6)
	for _, seed := range []int64{1, 7, 12345} {
		record := func() []byte {
			r, err := Simulate(Config{
				Net: net, Horizon: 40, Policy: NewRandom(seed),
				Externals: GoAt(2, 3, "go"),
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := trace.WriteRun(&buf, r); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if a, b := record(), record(); !bytes.Equal(a, b) {
			t.Errorf("seed %d: two simulations serialized differently", seed)
		}
	}
}

// TestSimulateAllocationGuard keeps the hot loop allocation-light: the
// schedule buckets, received marks and run indexes must not regress to
// per-tick or per-node map churn. The fixture floods a complete 4-process
// network for 40 ticks; the bound has slack over the measured count but sits
// far below the pre-optimization cost (thousands of allocations).
func TestSimulateAllocationGuard(t *testing.T) {
	net := model.MustComplete(4, 1, 5)
	cfg := Config{Net: net, Horizon: 40, Policy: Lazy{}, Externals: GoAt(1, 1, "go")}
	const limit = 100
	got := testing.AllocsPerRun(20, func() {
		if _, err := Simulate(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if got > limit {
		t.Errorf("Simulate allocates %.0f times per run, want <= %d", got, limit)
	}
}
