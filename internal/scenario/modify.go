package scenario

import (
	"fmt"

	"github.com/clockless/zigzag/internal/model"
)

// WithChannel returns a copy of the scenario whose network has one
// additional channel between two roles. It is used by experiments that
// contrast topologies (e.g. giving the asynchronous baseline a feedback
// chain to wait for).
func (s *Scenario) WithChannel(fromRole, toRole string, lower, upper int) (*Scenario, error) {
	from, ok := s.Roles[fromRole]
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown role %q", s.Name, fromRole)
	}
	to, ok := s.Roles[toRole]
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown role %q", s.Name, toRole)
	}
	if s.Net.HasChan(from, to) {
		return nil, fmt.Errorf("scenario %s: channel %s->%s already exists", s.Name, fromRole, toRole)
	}
	nb := model.NewBuilder(s.Net.N())
	for _, ch := range s.Net.Channels() {
		bd, err := s.Net.ChanBounds(ch.From, ch.To)
		if err != nil {
			return nil, err
		}
		nb.Chan(ch.From, ch.To, bd.Lower, bd.Upper)
	}
	nb.Chan(from, to, lower, upper)
	net, err := nb.Build()
	if err != nil {
		return nil, err
	}
	out := *s
	out.Net = net
	out.Name = s.Name + "+" + fromRole + ">" + toRole
	return &out, nil
}
