package bounds

import (
	"errors"
	"fmt"
	"sync"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Shared is the run-lifetime tier of the knowledge engine hierarchy
// (NetworkEngine → PrefixEngine → Shared → Handle): one standing extended
// graph, grown
// over the union of every subscribed agent's view, serving all of them. A
// live run with m knowledge-based agents would otherwise maintain m
// bounds.Online engines whose graphs overlap almost entirely — every agent's
// view is a restriction of the same run — so the standing vertex and edge
// tables are built once here and each agent keeps only what is genuinely
// its own: a Handle with its view frontier, its private E” horizon edges
// and a leased query scratch. Everything that depends only on the network —
// the aux band prototype, presizing hints, dedup tables and the scratch
// pool — lives one tier up in the NetworkEngine, so runs of one topology
// share it instead of re-deriving it (NetworkEngine.NewRun).
//
// The standing graph holds exactly the frontier-independent material of
// Definition 16:
//
//   - node vertices in arrival order (the auxiliary psi band first, at fixed
//     ids 0..n-1, so a handle's frontier is a per-process-band prefix mask),
//   - successor edges and delivery edge pairs (induced GB(r, sigma)),
//   - the fixed E”' psi-to-psi channel edges.
//
// The two frontier-dependent families never enter the standing tables. E'
// boundary edges are a pure function of the frontier, so queries relax them
// virtually (graph.Restriction.BoundaryTo). E” edges — psi_q to the sender
// of a message whose delivery the agent has not seen — differ per agent: a
// delivery inside the run but beyond an agent's frontier must still
// constrain that agent. Each handle therefore maintains its own E” set as
// a per-psi overlay adjacency, retiring entries exactly as bounds.Online
// removes its leaving edges.
//
// A query relaxes the standing graph restricted to the handle's frontier
// (graph.LongestRestricted / RelaxRestrictedFrom), which by construction is
// vertex-for-vertex the extended graph a fresh NewExtendedFromView would
// build on the agent's view — plus dominated stale material outside the
// frontier that the mask hides — so Knows/KnowledgeWeight answers coincide
// exactly with fresh per-view builds at every state
// (TestSharedMatchesFreshBuild asserts this differentially).
//
// Shared is safe for concurrent use by multiple handles: engine growth and
// speculative chain vertices are serialized by one mutex (the live
// environment's lockstep already serializes agents; the lock makes the
// engine honest under any schedule), and the scratch pool is serialized by
// the NetworkEngine's own mutex. A Handle belongs to a single agent
// goroutine. Distinct runs stamped from one NetworkEngine never contend:
// their standing graphs are independent clones of the immutable aux
// prototype.
type Shared struct {
	mu  sync.Mutex
	eng *NetworkEngine
	n   int
	g   *graph.Graph

	// members[p-1] is the highest node index of process p absorbed into the
	// standing graph (-1 if none): the union frontier over all handles.
	members []int
	// vertexOf[p-1][k] is the vertex id of node (p, k).
	vertexOf [][]int32
	// band/idx are the graph.Restriction coordinates, one entry per vertex:
	// aux and chain vertices are always visible, node (p, k) carries
	// (p-1, k).
	band, idx []int32
	// delivered dedupes delivery absorption across handles. Every handle
	// re-reports each delivery out of its own log, so the check runs
	// m times per delivery: it is a per-sender-vertex bitmask over the
	// sender's out-arc positions (the engine's chanBit table), one load and
	// a bit test, rather than a hash lookup. wide falls back to a map for
	// networks with out-degree beyond one mask word.
	delivered []uint64
	wide      map[int64]struct{}

	// pendingKey is the run fingerprint this Shared was stamped towards by
	// NewRunAt on a cache miss: CommitPrefix freezes the standing state into
	// the engine's prefix cache under it. Zero means nothing to commit
	// (plain NewRun, or already committed). fromPrefix records that the
	// standing state started from a frozen prefix rather than empty.
	pendingKey uint64
	fromPrefix bool
}

// NewShared builds the engine for one run over net. It is the compatibility
// constructor from before the network tier existed: it derives a private
// NetworkEngine and stamps one run out of it. Callers running many runs of
// one network (sweeps, the live environment) should build the engine once
// with NewNetworkEngine and call NewRun per run instead.
func NewShared(net *model.Network) *Shared {
	return NewNetworkEngine(net).NewRun()
}

// Net returns the network the engine serves.
func (s *Shared) Net() *model.Network { return s.eng.net }

// FromPrefix reports whether this run's standing state was stamped from a
// frozen prefix (a NewRunAt cache hit) rather than grown from empty.
func (s *Shared) FromPrefix() bool { return s.fromPrefix }

// CommitPrefix freezes the standing state — graph, frontier, vertex and
// coordinate tables, dedup state — into the network engine's prefix cache
// under the fingerprint this Shared was stamped towards by NewRunAt, and
// reports whether it committed. It is a no-op (false) on Shareds with
// nothing pending: plain NewRun stamps, NewRunAt hits, and repeat calls.
//
// Callers commit once the run's material has been fully absorbed (every
// agent synced through its final state), so the frozen snapshot stands in
// for the whole run. Committing earlier is sound but caches less: stamped
// runs absorb the difference through ordinary handle syncs. The freeze
// aliases the graph and coordinate backing per the graph.Clone
// freeze-and-extend contract, so this Shared remains fully usable after
// committing — later appends land beyond the frozen lengths and speculative
// chain material is added and removed strictly above them.
func (s *Shared) CommitPrefix() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingKey == 0 {
		return false
	}
	fz := &frozenPrefix{
		g:         s.g.Clone(),
		members:   append([]int(nil), s.members...),
		vertexOf:  make([][]int32, s.n),
		band:      s.band[:len(s.band):len(s.band)],
		idx:       s.idx[:len(s.idx):len(s.idx)],
		delivered: append([]uint64(nil), s.delivered...),
	}
	for i, vs := range s.vertexOf {
		fz.vertexOf[i] = vs[:len(vs):len(vs)]
	}
	if s.wide != nil {
		fz.wide = make(map[int64]struct{}, len(s.wide))
		for k := range s.wide {
			fz.wide[k] = struct{}{}
		}
	}
	s.eng.stats.cloneBytes.Add(s.g.CloneBytes())
	s.eng.prefixes.insert(s.pendingKey, fz)
	s.pendingKey = 0
	return true
}

// NumVertices returns the current number of standing vertices.
func (s *Shared) NumVertices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.N()
}

// NumEdges returns the current number of standing edges.
func (s *Shared) NumEdges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.NumEdges()
}

// absorbTimeline extends process p's standing vertices (and successor
// edges) through node index cur. Callers hold s.mu.
func (s *Shared) absorbTimeline(p model.ProcID, cur int) {
	for k := s.members[p-1] + 1; k <= cur; k++ {
		vtx := s.g.AddVertexWithCaps(s.eng.outCap[p-1], s.eng.inCap[p-1])
		s.vertexOf[p-1] = append(s.vertexOf[p-1], int32(vtx))
		s.band = append(s.band, int32(p-1))
		s.idx = append(s.idx, int32(k))
		s.delivered = append(s.delivered, 0)
		if k > 0 {
			s.g.AddEdge(int(s.vertexOf[p-1][k-1]), vtx, 1)
		}
	}
	s.members[p-1] = cur
}

// absorbDelivery adds the standing lower/upper edge pair of one delivery,
// once across all handles. Callers hold s.mu and have absorbed both
// endpoint timelines. delivered is indexed past the aux band, so the
// sender vertex u is always >= n.
func (s *Shared) absorbDelivery(u, v int, ch model.ChanID, bd model.Bounds) {
	if s.wide != nil {
		key := int64(u)<<20 | int64(ch)
		if _, ok := s.wide[key]; ok {
			return
		}
		s.wide[key] = struct{}{}
	} else {
		bit := uint64(1) << s.eng.chanBit[ch]
		if s.delivered[u-s.n]&bit != 0 {
			return
		}
		s.delivered[u-s.n] |= bit
	}
	s.g.AddEdge(u, v, bd.Lower)
	s.g.AddEdge(v, u, -bd.Upper)
}

// Handle is one agent's subscription to a Shared engine: the agent's view
// frontier (per-process boundary watermarks doubling as the restriction
// limits), its private E” overlay, its accumulated re-relaxation seeds and
// its leased scratch. A Handle is owned by one goroutine; concurrent
// handles of the same engine are safe against each other.
type Handle struct {
	shared *Shared
	view   *run.View

	// members[p-1] is the boundary index covered by the last sync (-1 if
	// the process had not entered the view); prev is its scratch copy so
	// the delivery pass can tell new senders from old ones; limit mirrors
	// members as the graph.Restriction limits.
	members []int
	prev    []int
	limit   []int32
	// vis is the handle's per-vertex visibility mask over the standing
	// graph (the graph.Restriction.Visible array): true for the aux band
	// and for this agent's in-frontier node vertices, false for vertices
	// other agents forced into the standing graph. Extended on every sync;
	// chain vertices are appended true per query and truncated on rollback.
	vis []bool
	// logMark is the watermark into this agent's view delivery log.
	logMark int
	// overlay[q-1] holds the agent's live E'' edges out of psi_q.
	overlay [][]graph.Edge

	// scratch is leased from the engine pool; between syncs it holds the
	// fixpoint distances from cacheSrc under this handle's frontier, so the
	// next query from the same source re-relaxes only the delta. seeds
	// accumulates the sources of edges that became visible to this handle
	// since; querySeeds is its per-query working copy.
	scratch    *graph.Scratch
	cacheSrc   int
	cacheValid bool
	seeds      []int
	querySeeds []int
	// admitted accumulates the vertices that entered this handle's frontier
	// since the last relaxation, so the warm restart drops their
	// masked-distance sentinels (see graph.RelaxRestrictedFrom).
	admitted []int

	// The reverse cache serves the inverted (Early-kind) query shape: the
	// target is fixed while the source moves with the agent, so u ==
	// cacheSrc never holds and the forward cache is useless. revScratch —
	// leased only once the shape appears, so Late-kind agents never pay for
	// it — holds the fixpoint of longest-path distances INTO revCacheDst
	// under this handle's frontier. The delta lists mirror the forward
	// cache's with reverse orientation: revSeeds accumulates the HEADS of
	// edges that became visible since the last reverse relaxation,
	// revAdmitted the newly admitted vertices. revRetired records that an
	// E'' overlay entry retired since: retirement can LOWER reverse
	// distances on the aux band (and only there — node-vertex reverse
	// distances are knowledge weights, which persist), so the next warm
	// reverse run re-derives the whole band (DESIGN.md §13).
	revScratch    *graph.Scratch
	revCacheDst   int
	revCacheValid bool
	revSeeds      []int
	revQuerySeeds []int
	revAdmitted   []int
	revRetired    bool
	// roverlay mirrors overlay transposed — the agent's E'' edges keyed by
	// their head (sender) vertex — feeding graph.Restriction.ROverlay; bfrom
	// holds the handle's per-band boundary vertex for
	// graph.Restriction.BoundaryFrom. Like the reverse scratch, the mirror is
	// lazy: revEnabled is set by the first reverse query, which transposes the
	// overlay accumulated so far; until then sync skips all reverse
	// bookkeeping, so handles that never see the Early shape pay nothing.
	revEnabled bool
	roverlay   [][]graph.Edge
	bfrom      []int32

	// stats counts this handle's reverse-cache activity for per-cell
	// attribution (the engine's atomic counters aggregate across every
	// concurrent handle of a network, so they cannot be read per agent).
	stats HandleStats

	// Per-query chain-vertex state, rolled back after each query.
	chainKeys []chainKey
	chainIDs  []int
	undo      []chainUndo

	// Reusable QueryBatch working buffers (resolved endpoints and the
	// answered bitmap), kept on the handle so batches allocate nothing.
	batchUs, batchVs []int
	batchDone        []bool
}

// HandleStats counts one handle's (or one Online engine's) reverse-cache
// activity — warm reverse restarts, full reverse rebuilds, aux-band
// refreshes and the SPFA relaxations spent on the reverse side — plus its
// batched-query plane: BatchQueries counts answers served through KnowsAt /
// QueryBatch, BatchHits the subset answered from an already-computed
// distance array (no SPFA of their own). The engine-level EngineStats
// aggregates the same counters across all handles.
type HandleStats struct {
	RevHits        int64
	RevRebuilds    int64
	BandRefreshes  int64
	RevRelaxations int64
	BatchQueries   int64
	BatchHits      int64
}

// Add accumulates other into st.
func (st *HandleStats) Add(other HandleStats) {
	st.RevHits += other.RevHits
	st.RevRebuilds += other.RevRebuilds
	st.BandRefreshes += other.BandRefreshes
	st.RevRelaxations += other.RevRelaxations
	st.BatchQueries += other.BatchQueries
	st.BatchHits += other.BatchHits
}

// Stats returns the handle's cumulative reverse-cache counters. Unlike the
// scratch, they survive Release, so post-run harvesting works on released
// handles.
func (h *Handle) Stats() HandleStats { return h.stats }

// ErrViewMismatch reports a view subscribed to an engine of a structurally
// different network.
var ErrViewMismatch = errors.New("bounds: view of a different network")

// NewHandle subscribes a growing view to the engine. The handle starts
// empty and absorbs the view's current content on the first query; it must
// observe every later state through the same View value. It returns
// ErrViewMismatch if the view lives in a structurally different network
// than the engine (a wiring bug, like adding an edge to a foreign vertex);
// a distinct but content-equal *model.Network value — sweeps rebuild equal
// topologies per scenario variant — is accepted, since every table the
// engine derives (channel ids, bounds, adjacency, dedup bits) is a function
// of the network's content fingerprint.
func (s *Shared) NewHandle(view *run.View) (*Handle, error) {
	if vn := view.Net(); vn != s.eng.net && vn.Fingerprint() != s.eng.net.Fingerprint() {
		return nil, fmt.Errorf("%w: view fingerprint %x, engine fingerprint %x",
			ErrViewMismatch, view.Net().Fingerprint(), s.eng.net.Fingerprint())
	}
	s.mu.Lock()
	standing := s.g.N()
	s.mu.Unlock()
	visCap := 4 * s.n
	if standing > visCap {
		visCap = standing
	}
	h := &Handle{
		shared:      s,
		view:        view,
		members:     make([]int, s.n),
		prev:        make([]int, s.n),
		limit:       make([]int32, s.n),
		overlay:     make([][]graph.Edge, s.n),
		bfrom:       make([]int32, s.n),
		vis:         make([]bool, s.n, visCap),
		cacheSrc:    -1,
		revCacheDst: -1,
	}
	for i := range h.members {
		h.members[i] = -1
		h.limit[i] = -1
		h.bfrom[i] = -1
		h.vis[i] = true // the aux band is visible to every handle
	}
	h.scratch = s.eng.leaseScratch()
	return h, nil
}

// View returns the subscribed view.
func (h *Handle) View() *run.View { return h.view }

// Release returns the handle's scratch to the network engine's pool. An
// agent that has made its last query (Protocol2 after acting) releases so
// later subscribers — of this run or any later run of the network — reuse
// the buffers; a released handle that queries again simply leases a fresh
// scratch and rebuilds its cache.
func (h *Handle) Release() {
	if h.scratch != nil {
		h.shared.eng.releaseScratch(h.scratch)
		h.scratch = nil
	}
	h.cacheValid = false
	if h.revScratch != nil {
		h.shared.eng.releaseScratch(h.revScratch)
		h.revScratch = nil
	}
	h.revCacheValid = false
}

// vertex returns the standing vertex id of a node known to be absorbed.
func (h *Handle) vertex(b run.BasicNode) int {
	return int(h.shared.vertexOf[b.Proc-1][b.Index])
}

// Sync absorbs the view's growth since the last call into the engine (new
// timelines and deliveries become standing material, deduplicated across
// handles) and into the handle (frontier limits, E” overlay, re-relaxation
// seeds). Queries sync implicitly.
func (h *Handle) Sync() error {
	s := h.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.sync()
}

// sync is Sync with s.mu held.
func (h *Handle) sync() error {
	s := h.shared
	net := h.view.Net()
	copy(h.prev, h.members)
	grew := false

	// Pass 1: frontiers. The engine's union frontier grows to cover this
	// view; the handle records its own boundary watermarks, seeds the
	// successor edges that just became visible to it and the moved virtual
	// boundary edge, and adds E'' overlay entries for the new nodes' sends
	// that its view has not seen delivered. The leaving check consults the
	// fully-updated view, so a send whose delivery arrives within this same
	// sync never enters the overlay.
	for p := model.ProcID(1); int(p) <= s.n; p++ {
		cur := -1
		if bnd, ok := h.view.Boundary(p); ok {
			cur = bnd.Index
		}
		old := h.members[p-1]
		if cur == old {
			continue
		}
		grew = true
		if cur > s.members[p-1] {
			s.absorbTimeline(p, cur)
		}
		for len(h.vis) < s.g.N() {
			h.vis = append(h.vis, false)
		}
		for k := old + 1; k <= cur; k++ {
			h.vis[s.vertexOf[p-1][k]] = true
			h.admitted = append(h.admitted, int(s.vertexOf[p-1][k]))
			if k > 0 {
				h.seeds = append(h.seeds, int(s.vertexOf[p-1][k-1]))
			}
			if h.revCacheValid {
				// Reverse seeds are edge HEADS: the new vertex heads its
				// predecessor's successor edge (and its own sends' E''
				// entries).
				h.revAdmitted = append(h.revAdmitted, int(s.vertexOf[p-1][k]))
				h.revSeeds = append(h.revSeeds, int(s.vertexOf[p-1][k]))
			}
		}
		h.seeds = append(h.seeds, int(s.vertexOf[p-1][cur]))
		if h.revCacheValid {
			// The moved virtual boundary edge: its tail is the new boundary
			// vertex (forward seed above), its head the band's psi anchor.
			h.revSeeds = append(h.revSeeds, int(p)-1)
		}
		h.bfrom[p-1] = s.vertexOf[p-1][cur]
		first := old + 1
		if first < 1 {
			first = 1
		}
		for k := first; k <= cur; k++ {
			from := run.BasicNode{Proc: p, Index: k}
			for _, a := range net.OutArcs(p) {
				if _, ok := h.view.DeliveryTo(from, a.To); !ok {
					sender := int(s.vertexOf[p-1][k])
					h.overlay[a.To-1] = append(h.overlay[a.To-1], graph.Edge{
						To: sender, Weight: -a.Bounds.Upper,
					})
					if h.revEnabled {
						h.addROverlay(sender, int(a.To)-1, -a.Bounds.Upper)
					}
					h.seeds = append(h.seeds, int(a.To)-1)
				}
			}
		}
		h.members[p-1] = cur
		h.limit[p-1] = int32(cur)
	}
	// Cover vertices other handles appended since this handle's last sync:
	// they stay invisible here, but the mask must span the standing graph.
	for len(h.vis) < s.g.N() {
		h.vis = append(h.vis, false)
	}

	// Pass 2: wire the new deliveries. The standing edge pair is added once
	// across all handles; a delivery whose sender predates this sync
	// retires the overlay entry recorded for it earlier. As with
	// bounds.Online, retirement does not invalidate the cached distances:
	// per-state fresh distances of this agent are pointwise non-decreasing
	// (knowledge is persistent), so the cache stays a valid
	// under-approximating warm start and re-relaxing from the added edges'
	// sources converges to the exact new fixpoint.
	delta := h.view.DeliveriesSince(h.logMark)
	for i := range delta {
		d := &delta[i]
		if d.Chan == model.NoChan {
			// The watermark stays on this entry, so every retry re-reports
			// the same error — exactly as a fresh build from the same view
			// does at every state.
			ch := d.Channel()
			return fmt.Errorf("%w: %d->%d", model.ErrNoChannel, ch.From, ch.To)
		}
		grew = true
		bd := net.BoundsOf(d.Chan)
		u := h.vertex(d.From)
		v := h.vertex(d.To)
		s.absorbDelivery(u, v, d.Chan, bd)
		h.seeds = append(h.seeds, u, v)
		if h.revCacheValid {
			h.revSeeds = append(h.revSeeds, u, v)
		}
		if d.From.Index <= h.prev[d.From.Proc-1] {
			if !removeOverlayEdge(&h.overlay[d.To.Proc-1], u, -bd.Upper) {
				return fmt.Errorf("bounds: shared handle lost the E'' edge of %s->%d", d.From, d.To.Proc)
			}
			if h.revEnabled {
				if u >= len(h.roverlay) || !removeOverlayEdge(&h.roverlay[u], int(d.To.Proc)-1, -bd.Upper) {
					return fmt.Errorf("bounds: shared handle lost the reverse E'' edge of %s->%d", d.From, d.To.Proc)
				}
			}
			// Retirement can lower reverse distances on the aux band; the
			// next warm reverse run must re-derive it before trusting the
			// cache.
			h.revRetired = h.revRetired || h.revCacheValid
		}
		h.logMark++
	}
	if grew && !h.cacheValid {
		h.seeds = h.seeds[:0]
		h.admitted = h.admitted[:0]
	}
	return nil
}

// addROverlay appends one transposed E” entry (head sender -> psi band
// vertex q) to the reverse overlay, growing the outer table on demand.
func (h *Handle) addROverlay(sender, q, w int) {
	for len(h.roverlay) <= sender {
		h.roverlay = append(h.roverlay, nil)
	}
	h.roverlay[sender] = append(h.roverlay[sender], graph.Edge{To: q, Weight: w})
}

// enableReverse begins reverse bookkeeping on first use: the forward overlay
// accumulated so far is transposed into roverlay, and from now on sync keeps
// the mirror in step.
func (h *Handle) enableReverse() {
	h.revEnabled = true
	for q := range h.overlay {
		for _, e := range h.overlay[q] {
			h.addROverlay(e.To, q, e.Weight)
		}
	}
}

// removeOverlayEdge swap-deletes one overlay entry; order is irrelevant
// (overlays only feed relaxation).
func removeOverlayEdge(es *[]graph.Edge, to, w int) bool {
	s := *es
	for i := range s {
		if s[i].To == to && s[i].Weight == w {
			last := len(s) - 1
			s[i] = s[last]
			*es = s[:last]
			return true
		}
	}
	return false
}

// vertexOfGeneral mirrors Online.vertexOfGeneral on the standing graph,
// materializing speculative chain vertices (always visible, recorded in
// h.undo for rollback) for hops beyond the handle's view.
func (h *Handle) vertexOfGeneral(theta run.GeneralNode) (int, error) {
	s := h.shared
	net := h.view.Net()
	if err := theta.Valid(net); err != nil {
		return 0, err
	}
	if !h.view.Contains(theta.Base) {
		return 0, fmt.Errorf("%w: %s", ErrNotRecognized, theta)
	}
	if theta.Path.Hops() == 0 {
		// Basic node: no chain to resolve, no prefix slice to allocate.
		return h.vertex(theta.Base), nil
	}
	prefix, hops := h.view.ResolvePrefix(theta)
	cur := prefix[len(prefix)-1]
	if hops == theta.Path.Hops() {
		return h.vertex(cur), nil
	}
	if cur.IsInitial() {
		return 0, fmt.Errorf("%w: %s stalls at %s", ErrInitialChain, theta, cur)
	}
	curVertex := h.vertex(cur)
	for k := hops + 1; k <= theta.Path.Hops(); k++ {
		from, to := theta.Path[k-1], theta.Path[k]
		key := chainKey{parent: int32(curVertex), to: to}
		next := -1
		for i := range h.chainKeys {
			if h.chainKeys[i] == key {
				next = h.chainIDs[i]
				break
			}
		}
		if next < 0 {
			bd, berr := net.ChanBounds(from, to)
			if berr != nil {
				return 0, berr
			}
			next = s.g.AddVertex()
			s.band = append(s.band, 0)
			s.idx = append(s.idx, graph.AlwaysVisible)
			h.vis = append(h.vis, true)
			h.chainKeys = append(h.chainKeys, key)
			h.chainIDs = append(h.chainIDs, next)
			s.g.AddEdge(curVertex, next, bd.Lower)
			s.g.AddEdge(next, curVertex, -bd.Upper)
			s.g.AddEdge(int(to)-1, next, 0)
			h.undo = append(h.undo, chainUndo{
				parent: curVertex, eta: next, aux: int(to) - 1,
				lower: bd.Lower, upper: bd.Upper,
			})
		}
		curVertex = next
	}
	return curVertex, nil
}

// rollback removes this query's speculative chain vertices, restoring the
// standing graph and forgetting their cached distances.
func (h *Handle) rollback(base int) {
	s := h.shared
	for i := len(h.undo) - 1; i >= 0; i-- {
		u := h.undo[i]
		s.g.RemoveEdge(u.aux, u.eta, 0)
		s.g.RemoveEdge(u.eta, u.parent, -u.upper)
		s.g.RemoveEdge(u.parent, u.eta, u.lower)
	}
	for s.g.N() > base {
		s.g.PopVertex()
	}
	s.band = s.band[:base]
	s.idx = s.idx[:base]
	h.vis = h.vis[:base]
	h.undo = h.undo[:0]
	h.chainKeys = h.chainKeys[:0]
	h.chainIDs = h.chainIDs[:0]
	h.scratch.Truncate(base)
	if h.revScratch != nil {
		h.revScratch.Truncate(base)
	}
}

// KnowledgeWeight computes kw = max{ x : K_sigma(theta1 --x--> theta2) } at
// the agent's current state, agreeing exactly with
// Extended.KnowledgeWeight on a fresh build from the agent's view (and with
// bounds.Online). known is false — with err == nil — when no bound is known
// at any x.
func (h *Handle) KnowledgeWeight(theta1, theta2 run.GeneralNode) (kw int, known bool, err error) {
	s := h.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := h.sync(); err != nil {
		return 0, false, err
	}
	if h.scratch == nil {
		h.scratch = s.eng.leaseScratch()
	}
	base := s.g.N()
	u, err := h.vertexOfGeneral(theta1)
	if err != nil {
		h.rollback(base)
		return 0, false, err
	}
	v, err := h.vertexOfGeneral(theta2)
	if err != nil {
		h.rollback(base)
		return 0, false, err
	}

	r := graph.Restriction{
		Visible: h.vis,
		Band:    s.band, Idx: s.idx, Limit: h.limit,
		Overlay: h.overlay, ROverlay: h.roverlay,
		BoundaryTo: s.eng.boundaryTo, BoundaryWeight: 1,
		BoundaryFrom: h.bfrom,
	}
	// The chain edges materialized above relax into the standing distances
	// without disturbing them, forward and reverse alike (their exit edges
	// are dominated, exactly as in bounds.Online), so a cached run keyed on
	// the same endpoint only needs the accumulated delta seeds.
	//
	// Which cache serves is decided by the query's shape. A source matching
	// the forward cache relaxes forward warm — the Late-kind steady state.
	// Otherwise a standing target routes through the reverse cache (warm
	// when the target matches, full reverse rebuild when not): the miss
	// means the source moved, which is exactly the Early-kind shape whose
	// next states will keep the target fixed. A cold engine (neither cache
	// valid) or a speculative chain-vertex target relaxes forward full,
	// establishing the forward cache — so a Late-kind agent's very first
	// query never detours through the reverse side.
	var dist []int64
	var answer int64
	switch {
	case h.cacheValid && u == h.cacheSrc:
		h.querySeeds = append(h.querySeeds[:0], h.seeds...)
		for i := range h.undo {
			h.querySeeds = append(h.querySeeds, h.undo[i].parent, h.undo[i].aux)
		}
		dist, err = s.g.RelaxRestrictedFrom(h.scratch, h.querySeeds, h.admitted, &r)
		if err == nil {
			answer = dist[v]
		}
	case v < base && (h.cacheValid || h.revCacheValid):
		if h.revScratch == nil {
			h.revScratch = s.eng.leaseScratch()
		}
		if !h.revEnabled {
			h.enableReverse()
			r.ROverlay = h.roverlay
		}
		if h.revCacheValid && v == h.revCacheDst {
			h.revQuerySeeds = append(h.revQuerySeeds[:0], h.revSeeds...)
			for i := range h.undo {
				h.revQuerySeeds = append(h.revQuerySeeds, h.undo[i].parent)
			}
			var refresh []int
			if h.revRetired {
				refresh = s.eng.auxRefresh
				h.stats.BandRefreshes++
				s.eng.stats.bandRefreshes.Add(1)
			}
			dist, err = s.g.RelaxReverseRestrictedFrom(h.revScratch, h.revQuerySeeds, h.revAdmitted, refresh, &r)
			h.stats.RevHits++
			s.eng.stats.revHits.Add(1)
		} else {
			dist, err = s.g.LongestIntoRestricted(h.revScratch, v, &r)
			h.revCacheDst = v
			h.revCacheValid = true
			h.stats.RevRebuilds++
			s.eng.stats.revRebuilds.Add(1)
		}
		if h.revScratch.Relaxations != 0 {
			h.stats.RevRelaxations += h.revScratch.Relaxations
			s.eng.stats.revRelaxations.Add(h.revScratch.Relaxations)
			h.revScratch.Relaxations = 0
		}
		if err != nil {
			h.revCacheValid = false
			h.rollback(base)
			return 0, false, fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
		}
		// The reverse scratch holds this handle's into-target fixpoint over
		// every visible edge, so the reverse delta restarts empty.
		h.revSeeds = h.revSeeds[:0]
		h.revAdmitted = h.revAdmitted[:0]
		h.revRetired = false
		answer = dist[u]
		w, reachable := int(answer), answer != graph.NegInf
		h.rollback(base)
		if !reachable {
			return 0, false, nil
		}
		return w, true, nil
	default:
		dist, err = s.g.LongestRestricted(h.scratch, u, &r)
		h.cacheSrc = u
		h.cacheValid = u < base
		if err == nil {
			answer = dist[v]
		}
	}
	if h.scratch.Relaxations != 0 {
		s.eng.stats.relaxations.Add(h.scratch.Relaxations)
		h.scratch.Relaxations = 0
	}
	if err != nil {
		h.cacheValid = false
		h.rollback(base)
		return 0, false, fmt.Errorf("bounds: GE(r,sigma) inconsistent: %w", err)
	}
	// Either way the scratch now holds this handle's fixpoint over every
	// visible edge, so the delta restarts empty.
	h.seeds = h.seeds[:0]
	h.admitted = h.admitted[:0]
	w, reachable := int(answer), answer != graph.NegInf
	h.rollback(base)
	if !reachable {
		return 0, false, nil
	}
	return w, true, nil
}

// Weight is the weight-only query of the batched plane. Handle never
// materializes witnesses, so it coincides with KnowledgeWeight; it exists so
// Extended, Online and Handle expose one weight-only contract.
func (h *Handle) Weight(theta1, theta2 run.GeneralNode) (kw int, known bool, err error) {
	return h.KnowledgeWeight(theta1, theta2)
}

// Knows reports whether K_sigma(theta1 --x--> theta2) holds at the agent's
// current state, agreeing exactly with Extended.Knows on a fresh build.
func (h *Handle) Knows(theta1 run.GeneralNode, x int, theta2 run.GeneralNode) (bool, error) {
	kw, known, err := h.KnowledgeWeight(theta1, theta2)
	if err != nil {
		return false, err
	}
	return known && kw >= x, nil
}

// KnowsAt evaluates a threshold grid against one weight computation:
// holds[i] is set to Knows(theta1, xs[i], theta2) for the price of a single
// (possibly cache-warm) restricted SPFA. holds must have at least len(xs)
// entries. The grid answers count as batched queries on both the handle and
// the engine: len(xs) served, len(xs)-1 of them without their own
// relaxation.
func (h *Handle) KnowsAt(theta1 run.GeneralNode, xs []int, theta2 run.GeneralNode, holds []bool) (kw int, known bool, err error) {
	kw, known, err = h.KnowledgeWeight(theta1, theta2)
	if err != nil {
		return 0, false, err
	}
	for i, x := range xs {
		holds[i] = known && kw >= x
	}
	h.stats.BatchQueries += int64(len(xs))
	h.stats.BatchHits += int64(len(xs) - 1)
	h.shared.eng.stats.batchQueries.Add(int64(len(xs)))
	h.shared.eng.stats.batchHits.Add(int64(len(xs) - 1))
	return kw, known, nil
}
