package main

import (
	"fmt"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/stats"
	"github.com/clockless/zigzag/internal/workload"
)

// expAblation quantifies the value of the extended bounds graph's auxiliary
// horizon vertices (the paper's novel structure, Section 5.1) by comparing
// knowledge computed on GE(r, sigma) against knowledge computed on the
// induced local graph GB(r, sigma) alone, over random instances.
func expAblation(cfg config) error {
	pairs, onlyExtended, stronger := 0, 0, 0
	var deltas []int
	for seed := int64(1); seed <= int64(cfg.seeds); seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed * 11))
		if err != nil {
			return err
		}
		window := in.WindowNodes(r)
		if len(window) < 2 {
			continue
		}
		sigma := window[len(window)-1]
		ext, err := bounds.NewExtended(r, sigma)
		if err != nil {
			return err
		}
		ps := ext.Past()
		var cands []run.BasicNode
		for _, n := range window {
			if ps.Contains(n) && !n.IsInitial() {
				cands = append(cands, n)
			}
		}
		if len(cands) > 6 {
			cands = cands[len(cands)-6:]
		}
		for _, s1 := range cands {
			for _, s2 := range cands {
				fullKW, _, fullKnown, err := ext.KnowledgeWeight(run.At(s1), run.At(s2))
				if err != nil {
					return err
				}
				localKW, localKnown, err := ext.LocalWeight(s1, s2)
				if err != nil {
					return err
				}
				if !fullKnown {
					continue
				}
				pairs++
				switch {
				case !localKnown:
					onlyExtended++
				case fullKW > localKW:
					stronger++
					deltas = append(deltas, fullKW-localKW)
				}
			}
		}
	}
	fmt.Printf("known pairs (extended graph): %d\n", pairs)
	fmt.Printf("  bound exists ONLY with auxiliary vertices: %d\n", onlyExtended)
	fmt.Printf("  bound strictly stronger with them:         %d\n", stronger)
	if len(deltas) > 0 {
		fmt.Printf("  improvement when stronger: %s\n", stats.SummarizeInts(deltas))
	}

	// The headline case: Figure 1's coordination bound lives entirely in
	// the auxiliary vertices (A's receipt is beyond B's horizon).
	sc := scenario.Figure1(scenario.DefaultFigure1())
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		return err
	}
	sigma := run.BasicNode{Proc: sc.Proc("B"), Index: 1}
	ext, err := bounds.NewExtended(r, sigma)
	if err != nil {
		return err
	}
	aNode := run.At(run.BasicNode{Proc: sc.Proc("C"), Index: 1}).Hop(sc.Proc("A"))
	kw, _, known, err := ext.KnowledgeWeight(aNode, run.At(sigma))
	if err != nil {
		return err
	}
	fmt.Printf("Figure 1 decision bound: extended kw = %d (known=%v); ", kw, known)
	fmt.Println("without auxiliary vertices the a-node is not even expressible.")
	if !known {
		return fmt.Errorf("figure-1 bound lost")
	}
	return nil
}
