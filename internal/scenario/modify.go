package scenario

import (
	"fmt"
	"math"

	"github.com/clockless/zigzag/internal/model"
)

// WithChannel returns a copy of the scenario whose network has one
// additional channel between two roles. It is used by experiments that
// contrast topologies (e.g. giving the asynchronous baseline a feedback
// chain to wait for).
func (s *Scenario) WithChannel(fromRole, toRole string, lower, upper int) (*Scenario, error) {
	from, ok := s.Roles[fromRole]
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown role %q", s.Name, fromRole)
	}
	to, ok := s.Roles[toRole]
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown role %q", s.Name, toRole)
	}
	if s.Net.HasChan(from, to) {
		return nil, fmt.Errorf("scenario %s: channel %s->%s already exists", s.Name, fromRole, toRole)
	}
	nb := model.NewBuilder(s.Net.N())
	for _, ch := range s.Net.Channels() {
		bd, err := s.Net.ChanBounds(ch.From, ch.To)
		if err != nil {
			return nil, err
		}
		nb.Chan(ch.From, ch.To, bd.Lower, bd.Upper)
	}
	nb.Chan(from, to, lower, upper)
	net, err := nb.Build()
	if err != nil {
		return nil, err
	}
	out := *s
	out.Net = net
	out.Name = s.Name + "+" + fromRole + ">" + toRole
	return &out, nil
}

// ScaleBounds returns a copy of the scenario whose every channel bound is
// scaled by factor: L' = max(1, round(L*factor)) and U' = max(L',
// round(U*factor)). The horizon stretches by the same factor (rounded up)
// so truncation artifacts stay beyond the analysis window, while external
// input times are left alone — the schedule is part of the scenario's
// identity. Scaled copies are the bound-scaling axis of parameter sweeps;
// a factor of 1 returns the scenario unchanged.
func (s *Scenario) ScaleBounds(factor float64) (*Scenario, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("scenario %s: bound scale %g not positive", s.Name, factor)
	}
	if factor == 1 {
		return s, nil
	}
	scale := func(b int) int {
		v := int(math.Round(float64(b) * factor))
		if v < 1 {
			v = 1
		}
		return v
	}
	nb := model.NewBuilder(s.Net.N())
	for _, ch := range s.Net.Channels() {
		bd, err := s.Net.ChanBounds(ch.From, ch.To)
		if err != nil {
			return nil, err
		}
		l := scale(bd.Lower)
		u := scale(bd.Upper)
		if u < l {
			u = l
		}
		nb.Chan(ch.From, ch.To, l, u)
	}
	net, err := nb.Build()
	if err != nil {
		return nil, err
	}
	out := *s
	out.Net = net
	out.Horizon = model.Time(math.Ceil(float64(s.Horizon) * factor))
	out.Name = fmt.Sprintf("%s@s=%g", s.Name, factor)
	return &out, nil
}
