package run

import (
	"errors"
	"testing"

	"github.com/clockless/zigzag/internal/model"
)

// lineNet is 1 -> 2 -> 3 with bounds [2, 4].
func lineNet(t *testing.T) *model.Network {
	t.Helper()
	return model.NewBuilder(3).Chan(1, 2, 2, 4).Chan(2, 3, 2, 4).MustBuild()
}

// chainRun hand-builds: external to 1 at t=1; 1@1 => 2@3; 2@3 => 3@6.
func chainRun(t *testing.T) *Run {
	t.Helper()
	r, err := NewBuilder(lineNet(t), 20).
		External(ExternalEvent{Proc: 1, Time: 1, Label: "go"}).
		Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 1, RecvTime: 3}).
		Message(MessageEvent{FromProc: 2, ToProc: 3, SendTime: 3, RecvTime: 6}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBuilderIndexing(t *testing.T) {
	r := chainRun(t)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for p := model.ProcID(1); p <= 3; p++ {
		if r.LastIndex(p) != 1 {
			t.Errorf("LastIndex(%d) = %d, want 1", p, r.LastIndex(p))
		}
	}
	if got := r.MustTime(BasicNode{Proc: 2, Index: 1}); got != 3 {
		t.Errorf("time(2#1) = %d, want 3", got)
	}
	if got := r.MustTime(BasicNode{Proc: 3, Index: 0}); got != 0 {
		t.Errorf("time(3#0) = %d, want 0", got)
	}
}

func TestBuilderBatching(t *testing.T) {
	// Two messages arriving at one process at the same instant form one
	// batch, hence one new node.
	net := model.NewBuilder(3).Chan(1, 3, 2, 4).Chan(2, 3, 2, 4).MustBuild()
	r, err := NewBuilder(net, 20).
		External(ExternalEvent{Proc: 1, Time: 1, Label: "a"}).
		External(ExternalEvent{Proc: 2, Time: 1, Label: "b"}).
		Message(MessageEvent{FromProc: 1, ToProc: 3, SendTime: 1, RecvTime: 4}).
		Message(MessageEvent{FromProc: 2, ToProc: 3, SendTime: 1, RecvTime: 4}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if r.LastIndex(3) != 1 {
		t.Fatalf("LastIndex(3) = %d, want 1 (one batch)", r.LastIndex(3))
	}
	inbox := r.Inbox(BasicNode{Proc: 3, Index: 1})
	if len(inbox) != 2 {
		t.Errorf("inbox size %d, want 2", len(inbox))
	}
}

func TestBuilderErrors(t *testing.T) {
	net := lineNet(t)
	cases := []struct {
		name string
		bl   *Builder
	}{
		{"bad channel", NewBuilder(net, 20).
			Message(MessageEvent{FromProc: 3, ToProc: 1, SendTime: 1, RecvTime: 3})},
		{"latency under L", NewBuilder(net, 20).
			External(ExternalEvent{Proc: 1, Time: 1, Label: "x"}).
			Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 1, RecvTime: 2})},
		{"latency over U", NewBuilder(net, 20).
			External(ExternalEvent{Proc: 1, Time: 1, Label: "x"}).
			Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 1, RecvTime: 9})},
		{"send from initial", NewBuilder(net, 20).
			Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 0, RecvTime: 3})},
		{"sender has no node", NewBuilder(net, 20).
			Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 5, RecvTime: 8})},
		{"beyond horizon", NewBuilder(net, 4).
			External(ExternalEvent{Proc: 1, Time: 5, Label: "x"})},
		{"duplicate send", NewBuilder(net, 20).
			External(ExternalEvent{Proc: 1, Time: 1, Label: "x"}).
			Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 1, RecvTime: 3}).
			Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 1, RecvTime: 4})},
	}
	for _, tc := range cases {
		if _, err := tc.bl.Build(); err == nil {
			t.Errorf("%s: Build succeeded", tc.name)
		}
	}
}

func TestValidateMissedDeadline(t *testing.T) {
	// 1's node at t=1 must deliver to 2 by t=5 within horizon 20; omitting
	// the delivery is illegal.
	net := lineNet(t)
	r, err := NewBuilder(net, 20).
		External(ExternalEvent{Proc: 1, Time: 1, Label: "go"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); !errors.Is(err, ErrMissedDeadline) {
		t.Errorf("got %v, want ErrMissedDeadline", err)
	}
	// With a short horizon the message may legally still be in transit.
	r2, err := NewBuilder(net, 3).
		External(ExternalEvent{Proc: 1, Time: 1, Label: "go"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Validate(); err != nil {
		t.Errorf("in-transit at horizon flagged: %v", err)
	}
	if len(r2.PendingMessages()) != 1 {
		t.Errorf("pending = %d, want 1", len(r2.PendingMessages()))
	}
}

func TestResolve(t *testing.T) {
	r := chainRun(t)
	sigma := BasicNode{Proc: 1, Index: 1}
	theta := Via(sigma, model.Path{1, 2, 3})
	b, err := r.Resolve(theta)
	if err != nil {
		t.Fatal(err)
	}
	if (b != BasicNode{Proc: 3, Index: 1}) {
		t.Errorf("resolve = %s", b)
	}
	if got := r.MustTimeOf(theta); got != 6 {
		t.Errorf("time of theta = %d, want 6", got)
	}
	// Singleton resolves to itself.
	if b, _ := r.Resolve(At(sigma)); b != sigma {
		t.Errorf("singleton resolve = %s", b)
	}
	// Chains cannot leave initial nodes.
	_, err = r.Resolve(Via(BasicNode{Proc: 1, Index: 0}, model.Path{1, 2}))
	if !errors.Is(err, ErrUnresolvable) {
		t.Errorf("initial chain: %v", err)
	}
	// Invalid path.
	if _, err := r.Resolve(Via(sigma, model.Path{1, 3})); err == nil {
		t.Error("invalid chain path resolved")
	}
	// Wrong base process.
	if _, err := r.Resolve(Via(sigma, model.Path{2, 3})); err == nil {
		t.Error("mismatched base resolved")
	}
}

func TestPrecedes(t *testing.T) {
	r := chainRun(t)
	a := At(BasicNode{Proc: 1, Index: 1}) // t=1
	b := At(BasicNode{Proc: 3, Index: 1}) // t=6
	ok, err := r.Precedes(a, 5, b)
	if err != nil || !ok {
		t.Errorf("Precedes(a,5,b) = %v, %v", ok, err)
	}
	ok, err = r.Precedes(a, 6, b)
	if err != nil || ok {
		t.Errorf("Precedes(a,6,b) = %v, %v", ok, err)
	}
	// Negative bound: b occurs at most 5 after... a -(-10)-> is trivially true.
	ok, err = r.Precedes(b, -10, a)
	if err != nil || !ok {
		t.Errorf("Precedes(b,-10,a) = %v, %v", ok, err)
	}
}

func TestNodeAt(t *testing.T) {
	r := chainRun(t)
	if n := r.NodeAt(2, 2); n.Index != 0 {
		t.Errorf("NodeAt(2,2) = %s, want initial", n)
	}
	if n := r.NodeAt(2, 3); n.Index != 1 {
		t.Errorf("NodeAt(2,3) = %s", n)
	}
	if n := r.NodeAt(2, 19); n.Index != 1 {
		t.Errorf("NodeAt(2,19) = %s", n)
	}
}

func TestPast(t *testing.T) {
	r := chainRun(t)
	sigma := BasicNode{Proc: 3, Index: 1}
	ps, err := r.Past(sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Past contains: 3#0..1, 2#0..1, 1#0..1 — everything here.
	if ps.Size() != 6 {
		t.Errorf("past size = %d, want 6", ps.Size())
	}
	for _, n := range []BasicNode{{1, 1}, {2, 1}, {3, 1}, {1, 0}} {
		if !ps.Contains(n) {
			t.Errorf("past missing %s", n)
		}
	}
	// The middle node's past excludes process 3.
	ps2, err := r.Past(BasicNode{Proc: 2, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Contains(BasicNode{Proc: 3, Index: 0}) {
		t.Error("past(2#1) contains a process-3 node")
	}
	if b, ok := ps2.Boundary(1); !ok || b.Index != 1 {
		t.Errorf("boundary(1) = %v, %v", b, ok)
	}
	if _, ok := ps2.Boundary(3); ok {
		t.Error("boundary(3) exists")
	}
}

func TestHappensBefore(t *testing.T) {
	r := chainRun(t)
	hb, err := r.HappensBefore(BasicNode{Proc: 1, Index: 1}, BasicNode{Proc: 3, Index: 1})
	if err != nil || !hb {
		t.Errorf("1#1 -> 3#1: %v, %v", hb, err)
	}
	hb, err = r.HappensBefore(BasicNode{Proc: 3, Index: 1}, BasicNode{Proc: 1, Index: 1})
	if err != nil || hb {
		t.Errorf("3#1 -> 1#1: %v, %v", hb, err)
	}
	// Locality: same process, lower index.
	hb, err = r.HappensBefore(BasicNode{Proc: 2, Index: 0}, BasicNode{Proc: 2, Index: 1})
	if err != nil || !hb {
		t.Errorf("2#0 -> 2#1: %v, %v", hb, err)
	}
}

func TestChainPrefix(t *testing.T) {
	r := chainRun(t)
	sigma2 := BasicNode{Proc: 2, Index: 1}
	ps, err := r.Past(sigma2)
	if err != nil {
		t.Fatal(err)
	}
	theta := Via(BasicNode{Proc: 1, Index: 1}, model.Path{1, 2, 3})
	prefix, hops := r.ChainPrefix(ps, theta)
	if hops != 1 {
		t.Errorf("hops = %d, want 1 (the 2->3 hop leaves the past)", hops)
	}
	if len(prefix) != 2 || prefix[1] != sigma2 {
		t.Errorf("prefix = %v", prefix)
	}
}

func TestMessagesLeavingPast(t *testing.T) {
	r := chainRun(t)
	ps, err := r.Past(BasicNode{Proc: 2, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	leaving := r.MessagesLeavingPast(ps)
	// 2#1's message to 3 is received outside the past.
	if len(leaving) != 1 || leaving[0].From.Proc != 2 || leaving[0].To != 3 {
		t.Errorf("leaving = %v", leaving)
	}
	if dl := leaving[0].Deadline(r.Net()); dl != 3+4 {
		t.Errorf("deadline = %d, want 7", dl)
	}
}

func TestGeneralNodeHelpers(t *testing.T) {
	sigma := BasicNode{Proc: 1, Index: 2}
	g := At(sigma)
	if !g.IsBasic() || g.Proc() != 1 {
		t.Error("At helpers wrong")
	}
	h := g.Hop(2)
	if h.IsBasic() || h.Proc() != 2 {
		t.Error("Hop wrong")
	}
	ext, err := h.Extend(model.Path{2, 3})
	if err != nil || ext.Proc() != 3 || ext.Path.Hops() != 2 {
		t.Errorf("Extend = %v, %v", ext, err)
	}
	if !h.Equal(Via(sigma, model.Path{1, 2})) {
		t.Error("Equal wrong")
	}
	if s := ext.String(); s != "<p1#2,1>2>3>" {
		t.Errorf("String = %q", s)
	}
	if (BasicNode{Proc: 2, Index: 0}).String() != "p2#0" {
		t.Error("BasicNode String wrong")
	}
	if pred, ok := sigma.Predecessor(); !ok || pred.Index != 1 {
		t.Error("Predecessor wrong")
	}
	if _, ok := (BasicNode{Proc: 1, Index: 0}).Predecessor(); ok {
		t.Error("initial has a predecessor")
	}
}

func TestSameView(t *testing.T) {
	r1 := chainRun(t)
	// A retimed but structurally identical run.
	r2, err := NewBuilder(lineNet(t), 20).
		External(ExternalEvent{Proc: 1, Time: 2, Label: "go"}).
		Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 2, RecvTime: 6}).
		Message(MessageEvent{FromProc: 2, ToProc: 3, SendTime: 6, RecvTime: 8}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sigma := BasicNode{Proc: 3, Index: 1}
	if err := SameView(r1, r2, sigma); err != nil {
		t.Errorf("identical views differ: %v", err)
	}
	// A run with a different external label is distinguishable.
	r3, err := NewBuilder(lineNet(t), 20).
		External(ExternalEvent{Proc: 1, Time: 1, Label: "stop"}).
		Message(MessageEvent{FromProc: 1, ToProc: 2, SendTime: 1, RecvTime: 3}).
		Message(MessageEvent{FromProc: 2, ToProc: 3, SendTime: 3, RecvTime: 6}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := SameView(r1, r3, sigma); err == nil {
		t.Error("different external labels considered indistinguishable")
	}
}
