// Package scenario encodes the paper's figures and motivating examples as
// concrete, runnable bcm instances: a network with bounds, a schedule of
// spontaneous external inputs, named process roles and (where applicable) a
// coordination task. The experiment harness (cmd/zigzag-experiments and the
// repository benchmarks) regenerates each figure from these.
package scenario

import (
	"fmt"

	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// Scenario is one self-contained bcm instance.
type Scenario struct {
	Name        string
	Description string
	Net         *model.Network
	Externals   []run.ExternalEvent
	Horizon     model.Time
	// Roles maps role names ("A", "B", "C", ...) to process ids.
	Roles map[string]model.ProcID
	// Task is the coordination task the scenario poses, if any.
	Task *coord.Task
	// Tasks lists the concurrent coordination tasks of a multi-agent
	// scenario (one Protocol2 agent per task on the same run); when set,
	// Task points at its first element so single-task harnesses keep
	// working.
	Tasks []coord.Task
	// DefaultPolicy drives the canonical run of the figure; nil means Eager.
	DefaultPolicy sim.Policy
	// FaultFamily, when non-empty, names the faults.NewPlan family a sweep
	// cell injects into this scenario's executions (the plan itself is
	// derived per seed, so one scenario covers the whole seed axis). Faulted
	// cells run live-only and bypass the standing-prefix cache — their
	// recordings are not legal runs.
	FaultFamily string
	// XBase and XValue mark this scenario as one variant of an x-override
	// axis: XBase names the base scenario (identical network, externals and
	// horizon across the whole family — only task thresholds differ) and
	// XValue is the applied override. sweep.Axes sets both when it expands a
	// multi-x grid; sweeps use them to collapse the x axis of live cells,
	// since variants differing only in task X record identical runs and one
	// batched execution can answer the whole family.
	XBase  string
	XValue int
	// ActFeedback declares that agent actions feed back into the delivery
	// schedule (a chained-coordination family, where one agent's act
	// triggers another's go, would set it). Recordings are then no longer
	// act-independent, so x-batched sweep cells must fall back to dedicated
	// per-x executions. Every current family is terminal-act: the flag
	// stays false.
	ActFeedback bool
}

// TaskList returns the scenario's concurrent coordination tasks, falling
// back to the single Task for single-task scenarios. Empty means the
// scenario poses no coordination task. Multi-agent harnesses (live sweep
// cells, `zigzag-sim -engine`) index agents by position in this list.
func (s *Scenario) TaskList() []coord.Task {
	if len(s.Tasks) > 0 {
		return s.Tasks
	}
	if s.Task != nil {
		return []coord.Task{*s.Task}
	}
	return nil
}

// Proc returns the process playing a role; it panics on unknown roles
// (scenario definitions are static fixtures).
func (s *Scenario) Proc(role string) model.ProcID {
	p, ok := s.Roles[role]
	if !ok {
		panic(fmt.Sprintf("scenario %s: unknown role %q", s.Name, role))
	}
	return p
}

// Simulate produces a run of the scenario under the given policy (nil means
// the scenario's default).
func (s *Scenario) Simulate(policy sim.Policy) (*run.Run, error) {
	if policy == nil {
		policy = s.DefaultPolicy
	}
	return sim.Simulate(sim.Config{
		Net:       s.Net,
		Horizon:   s.Horizon,
		Policy:    policy,
		Externals: s.Externals,
	})
}

// MustSimulate is Simulate that panics on error.
func (s *Scenario) MustSimulate(policy sim.Policy) *run.Run {
	r, err := s.Simulate(policy)
	if err != nil {
		panic(err)
	}
	return r
}
