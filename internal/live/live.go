// Package live executes the bounded communication model with one goroutine
// per process, exchanging FFIP messages over Go channels under a lockstep
// virtual-time environment. It exists to demonstrate — and test — that
// every decision in this library is honestly clockless: an agent goroutine
// receives only run.View values (the structure of its causal past) and has
// no access whatsoever to the environment's clock; its decisions must
// therefore coincide exactly with the offline analysis, which the tests
// assert.
//
// The environment goroutine owns virtual time: at each tick it delivers the
// messages the Policy scheduled, waits for every receiving process to
// absorb its batch and answer with its actions, and floods the new states
// onward. Processes never see the tick value.
package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// Agent is the application logic of one process. OnState is called from the
// process's own goroutine at every new local state, with the process's
// current view (structure only — no times) and the external labels absorbed
// in the creating batch. The returned labels are recorded as actions
// performed at that state.
type Agent interface {
	OnState(v *run.View, externals []string) (actions []string)
}

// AgentFunc adapts a function to an Agent.
type AgentFunc func(v *run.View, externals []string) []string

// OnState implements Agent.
func (f AgentFunc) OnState(v *run.View, externals []string) []string { return f(v, externals) }

// Action records one action an agent performed.
type Action struct {
	Proc  model.ProcID
	Node  run.BasicNode
	Time  model.Time
	Label string
}

// Config parametrizes a live execution.
type Config struct {
	Net       *model.Network
	Horizon   model.Time
	Policy    sim.Policy
	Externals []run.ExternalEvent
	// Agents maps processes to their application logic; processes without
	// an agent still flood (they are pure FFIP relays).
	Agents map[model.ProcID]Agent
}

// Result is the outcome of a live execution.
type Result struct {
	// Run is the environment-side ground-truth recording; it validates as a
	// legal run and is byte-identical in structure to what sim.Simulate
	// produces for the same configuration.
	Run *run.Run
	// Actions lists agent actions in (time, process) order.
	Actions []Action
}

// batch is what the environment hands a process goroutine at one tick.
type batch struct {
	receipts  []run.Receipt
	externals []string
	reply     chan<- procReply
}

// procReply is what the process goroutine answers with.
type procReply struct {
	node    run.BasicNode
	payload *run.View // frozen history, flooded to all out-neighbours
	actions []string
	err     error
}

// Run executes the configuration. It is deterministic for deterministic
// policies: goroutine scheduling cannot influence outcomes because the
// environment synchronizes on every delivery batch.
func Run(cfg Config) (*Result, error) {
	if cfg.Net == nil || cfg.Horizon < 1 {
		return nil, errors.New("live: bad configuration")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = sim.Eager{}
	}
	net := cfg.Net

	// Spawn one goroutine per process, each owning its View and Agent.
	inboxes := make([]chan batch, net.N())
	var wg sync.WaitGroup
	for _, p := range net.Procs() {
		ch := make(chan batch) // unbuffered: lockstep with the environment
		inboxes[p-1] = ch
		wg.Add(1)
		go func(p model.ProcID, ch <-chan batch) {
			defer wg.Done()
			view := run.NewLocalView(net, p)
			agent := cfg.Agents[p]
			for b := range ch {
				node, err := view.Absorb(b.receipts, b.externals)
				if err != nil {
					b.reply <- procReply{err: err}
					continue
				}
				var actions []string
				if agent != nil {
					actions = agent.OnState(view, b.externals)
				}
				b.reply <- procReply{
					node:    node,
					payload: view.Clone(),
					actions: actions,
				}
			}
		}(p, ch)
	}
	defer func() {
		for _, ch := range inboxes {
			close(ch)
		}
		wg.Wait()
	}()

	// Environment state: scheduled arrivals and the external timetable.
	type arrival struct {
		from    run.BasicNode
		payload *run.View
		toProc  model.ProcID
		send    model.Time
	}
	arrivals := make(map[model.Time][]arrival)
	extAt := make(map[model.Time]map[model.ProcID][]string)
	for _, e := range cfg.Externals {
		if !net.ValidProc(e.Proc) || e.Time < 1 || e.Time > cfg.Horizon {
			return nil, fmt.Errorf("live: bad external %q to %d at %d", e.Label, e.Proc, e.Time)
		}
		if extAt[e.Time] == nil {
			extAt[e.Time] = make(map[model.ProcID][]string)
		}
		extAt[e.Time][e.Proc] = append(extAt[e.Time][e.Proc], e.Label)
	}

	bl := run.NewBuilder(net, cfg.Horizon)
	res := &Result{}

	for t := model.Time(1); t <= cfg.Horizon; t++ {
		// Group this tick's deliveries per process.
		byProc := make(map[model.ProcID][]arrival)
		for _, a := range arrivals[t] {
			byProc[a.toProc] = append(byProc[a.toProc], a)
		}
		delete(arrivals, t)
		for p := range extAt[t] {
			if _, ok := byProc[p]; !ok {
				byProc[p] = nil
			}
		}
		// Deterministic process order.
		procs := make([]model.ProcID, 0, len(byProc))
		for p := range byProc {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

		for _, p := range procs {
			var receipts []run.Receipt
			for _, a := range byProc[p] {
				receipts = append(receipts, run.Receipt{From: a.from, Payload: a.payload})
				bl.Message(run.MessageEvent{
					FromProc: a.from.Proc, ToProc: p, SendTime: a.send, RecvTime: t,
				})
			}
			for _, l := range extAt[t][p] {
				bl.External(run.ExternalEvent{Proc: p, Time: t, Label: l})
			}
			reply := make(chan procReply, 1)
			inboxes[p-1] <- batch{receipts: receipts, externals: extAt[t][p], reply: reply}
			pr := <-reply
			if pr.err != nil {
				return nil, fmt.Errorf("live: process %d: %w", p, pr.err)
			}
			for _, label := range pr.actions {
				res.Actions = append(res.Actions, Action{Proc: p, Node: pr.node, Time: t, Label: label})
			}
			// FFIP flood: schedule the new state's messages straight off the
			// dense out-arc slice, mirroring the simulator's hot loop.
			for _, a := range net.OutArcs(p) {
				s := sim.Send{From: p, To: a.To, SendTime: t}
				lat := policy.Latency(s, a.Bounds)
				if lat < a.Bounds.Lower || lat > a.Bounds.Upper {
					return nil, fmt.Errorf("live: policy %q chose latency %d outside %s", policy.Name(), lat, a.Bounds)
				}
				if t+lat > cfg.Horizon {
					continue
				}
				arrivals[t+lat] = append(arrivals[t+lat], arrival{
					from:    pr.node,
					payload: pr.payload,
					toProc:  a.To,
					send:    t,
				})
			}
		}
	}
	r, err := bl.Build()
	if err != nil {
		return nil, err
	}
	res.Run = r
	return res, nil
}
