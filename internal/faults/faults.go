// Package faults defines deterministic, seeded fault plans for the bounded
// communication model and the typed errors a violated model surfaces as.
//
// The paper's environment always delivers within each channel's [L, U]
// window; a production deployment faces environments that break that
// promise. A Plan describes, ahead of a run, exactly how the environment
// will lie: processes that crash (stop receiving, acting and sending at a
// tick), links that silently drop every message sent during a window, and
// channels whose deliveries land past their upper bound. Plans are pure
// data — the same plan threaded through sim.Simulate, the goroutine live
// environment and live.Replay yields byte-identical recordings, which the
// differential tests pin.
//
// Every injected violation is reported as a *Violation, a typed error
// wrapping ErrBoundViolation with channel and tick context — never a panic.
// The Injector additionally maintains the taint frontier the degraded mode
// is built on: a process is degraded at tick t when its causal past could
// contain material invalidated by the plan (a claim about a dropped, late
// or discarded message), computed conservatively so that an agent that is
// NOT degraded provably decided over honest material only — which is why
// safety (no early act) survives bound violations.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/clockless/zigzag/internal/model"
)

// ErrBoundViolation is the sentinel every injected model violation wraps:
// errors.Is(err, faults.ErrBoundViolation) identifies "the environment broke
// the [L, U] promise" across all violation kinds and degraded-agent reasons.
var ErrBoundViolation = errors.New("faults: communication bound violated")

// ErrBadPlan reports a plan that does not fit the network or horizon it is
// injected into.
var ErrBadPlan = errors.New("faults: bad plan")

// FaultKind enumerates the fault primitives a Plan composes.
type FaultKind int

// The fault primitives.
const (
	// KindCrash halts a process at a tick: from then on it absorbs nothing
	// (arrivals are discarded by the environment), creates no states and
	// sends nothing. Messages it sent before crashing stay in flight,
	// governed by the rest of the plan.
	KindCrash FaultKind = iota + 1
	// KindLinkDown kills one directed channel for a window of SEND times:
	// every message sent on it during [A, B] is silently dropped.
	KindLinkDown
	// KindDeadline delays one directed channel's deliveries past the upper
	// bound: every message sent during [A, B] arrives Slack ticks after its
	// deadline (latency U+Slack) — a direct bound violation — or never, if
	// that lands beyond the horizon.
	KindDeadline
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindLinkDown:
		return "linkdown"
	case KindDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one fault primitive in a plan. Which fields matter depends on
// Kind; the constructors below build well-formed values.
type Fault struct {
	Kind FaultKind
	// Proc is the crashing process (KindCrash).
	Proc model.ProcID
	// From, To name the directed channel (KindLinkDown, KindDeadline).
	From, To model.ProcID
	// A, B bound the fault's window: crash tick (A only) for KindCrash,
	// the send-time window [A, B] for the channel faults. B == 0 means
	// "to the horizon".
	A, B model.Time
	// Slack is how far past the upper bound deliveries land (KindDeadline).
	Slack int
}

// String renders the fault compactly ("crash(3@t17)", "linkdown(2->5,[10,20])").
func (f Fault) String() string {
	switch f.Kind {
	case KindCrash:
		return fmt.Sprintf("crash(%d@t%d)", f.Proc, f.A)
	case KindLinkDown:
		return fmt.Sprintf("linkdown(%d->%d,[%d,%d])", f.From, f.To, f.A, f.B)
	case KindDeadline:
		return fmt.Sprintf("deadline(%d->%d,[%d,%d],+%d)", f.From, f.To, f.A, f.B, f.Slack)
	default:
		return fmt.Sprintf("fault(%d)", int(f.Kind))
	}
}

// Crash builds a crash fault: p halts at tick t.
func Crash(p model.ProcID, t model.Time) Fault {
	return Fault{Kind: KindCrash, Proc: p, A: t}
}

// LinkDown builds a link failure: messages sent from -> to during [a, b]
// are dropped.
func LinkDown(from, to model.ProcID, a, b model.Time) Fault {
	return Fault{Kind: KindLinkDown, From: from, To: to, A: a, B: b}
}

// Deadline builds a deadline fault: every message sent from -> to is
// delivered slack ticks past the channel's upper bound. DeadlineDuring
// limits it to a send-time window.
func Deadline(from, to model.ProcID, slack int) Fault {
	return Fault{Kind: KindDeadline, From: from, To: to, A: 1, Slack: slack}
}

// DeadlineDuring is Deadline restricted to sends during [a, b].
func DeadlineDuring(from, to model.ProcID, slack int, a, b model.Time) Fault {
	return Fault{Kind: KindDeadline, From: from, To: to, A: a, B: b, Slack: slack}
}

// Plan is a named, immutable set of faults. A Plan is safe to share across
// executions (the Injector owns all per-run state).
type Plan struct {
	Name   string
	Faults []Fault
}

// String renders the plan's name and fault count.
func (p *Plan) String() string {
	return fmt.Sprintf("%s(%d faults)", p.Name, len(p.Faults))
}

// Plan families NewPlan generates, and the chaos sweep axis enumerates.
const (
	FamilyCrash    = "crash"
	FamilyLink     = "link"
	FamilyDeadline = "deadline"
	FamilyChaos    = "chaos"
)

// Families lists the seeded plan families in canonical order: single-kind
// plans for each primitive plus the combined chaos family.
func Families() []string {
	return []string{FamilyCrash, FamilyLink, FamilyDeadline, FamilyChaos}
}

// ValidFamily reports whether NewPlan understands the named family.
func ValidFamily(family string) bool {
	switch family {
	case FamilyCrash, FamilyLink, FamilyDeadline, FamilyChaos:
		return true
	}
	return false
}

// NewPlan deterministically derives a plan of the named family for a
// network and horizon from a seed: the same inputs always yield the same
// plan, so every execution mode of a sweep cell injects identical faults.
// Fault windows land in the middle of the horizon, where the FFIP flood is
// busiest, so plans reliably fire on the registry scenarios.
func NewPlan(family string, net *model.Network, horizon model.Time, seed int64) (*Plan, error) {
	if net == nil || net.N() == 0 || horizon < 1 {
		return nil, fmt.Errorf("%w: need a network and a positive horizon", ErrBadPlan)
	}
	// Mix the family name into the seed (FNV-1a) so "crash" and "link"
	// plans of one seed are independent draws.
	h := int64(1469598103934665603)
	for _, c := range family {
		h = (h ^ int64(c)) * 1099511628211
	}
	rng := rand.New(rand.NewSource(seed ^ h))
	procs := net.Procs()
	arcs := net.Arcs()
	if len(arcs) == 0 {
		return nil, fmt.Errorf("%w: network has no channels", ErrBadPlan)
	}

	span := func(lo, hi model.Time) model.Time { // uniform in [lo, hi], clamped to [1, horizon]
		if hi < lo {
			hi = lo
		}
		t := lo + model.Time(rng.Intn(int(hi-lo)+1))
		if t < 1 {
			t = 1
		}
		if t > horizon {
			t = horizon
		}
		return t
	}
	window := func() (model.Time, model.Time) {
		a := span(horizon/4, horizon/2)
		b := span(a, a+horizon/4)
		return a, b
	}
	crashes := func(fs []Fault) []Fault {
		k := 1 + rng.Intn(1+len(procs)/6)
		for i := 0; i < k; i++ {
			p := procs[rng.Intn(len(procs))]
			fs = append(fs, Crash(p, span(horizon/3, 2*horizon/3)))
		}
		return fs
	}
	links := func(fs []Fault) []Fault {
		k := 1 + rng.Intn(2)
		for i := 0; i < k; i++ {
			a := arcs[rng.Intn(len(arcs))]
			w0, w1 := window()
			fs = append(fs, LinkDown(a.From, a.To, w0, w1))
		}
		return fs
	}
	deadlines := func(fs []Fault) []Fault {
		k := 1 + rng.Intn(2)
		for i := 0; i < k; i++ {
			a := arcs[rng.Intn(len(arcs))]
			w0, w1 := window()
			fs = append(fs, DeadlineDuring(a.From, a.To, 1+rng.Intn(3), w0, w1))
		}
		return fs
	}

	var fs []Fault
	switch family {
	case FamilyCrash:
		fs = crashes(fs)
	case FamilyLink:
		fs = links(fs)
	case FamilyDeadline:
		fs = deadlines(fs)
	case FamilyChaos:
		fs = crashes(fs)
		fs = links(fs)
		fs = deadlines(fs)
	default:
		return nil, fmt.Errorf("%w: unknown family %q (want %v)", ErrBadPlan, family, Families())
	}
	return &Plan{Name: fmt.Sprintf("%s-s%d", family, seed), Faults: fs}, nil
}

// ViolationKind classifies how an obligation was broken.
type ViolationKind int

// The violation kinds.
const (
	// Dropped: the message was never delivered inside its window — a dead
	// link swallowed it, or a deadline fault pushed it past the horizon.
	Dropped ViolationKind = iota + 1
	// Late: the message was delivered after its upper-bound deadline.
	Late
	// Discarded: the message reached a crashed process and was thrown away.
	Discarded
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case Dropped:
		return "dropped"
	case Late:
		return "late"
	case Discarded:
		return "discarded"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation is one broken delivery obligation, as a typed error: it wraps
// ErrBoundViolation and carries the channel, the send time and the tick the
// violation materialized at. The injector records one per affected message;
// Report returns them in canonical (At, SendTime, From, To) order, so all
// execution modes agree on the list byte for byte.
type Violation struct {
	Kind     ViolationKind
	Chan     model.ChanID
	From, To model.ProcID
	SendTime model.Time
	// At is when the violation materialized: the missed deadline + 1 for
	// Dropped (possibly past the horizon), the delivery instant for Late
	// and Discarded.
	At model.Time
	// Bounds are the violated channel's declared bounds.
	Bounds model.Bounds
	// Latency is the achieved latency (Late only).
	Latency int
}

// Error implements error.
func (v *Violation) Error() string {
	switch v.Kind {
	case Late:
		return fmt.Sprintf("faults: message %d->%d sent at %d delivered at %d: latency %d outside %s",
			v.From, v.To, v.SendTime, v.At, v.Latency, v.Bounds)
	case Discarded:
		return fmt.Sprintf("faults: message %d->%d sent at %d discarded at %d: receiver crashed",
			v.From, v.To, v.SendTime, v.At)
	default:
		return fmt.Sprintf("faults: message %d->%d sent at %d dropped: undelivered past deadline %d",
			v.From, v.To, v.SendTime, v.SendTime+model.Time(v.Bounds.Upper))
	}
}

// Unwrap makes errors.Is(v, ErrBoundViolation) true.
func (v *Violation) Unwrap() error { return ErrBoundViolation }

// Report is the settled outcome of a faulted execution: every injected
// violation plus the processes the plan crashed and the taint frontier
// flagged as degraded by the horizon. All three execution modes produce
// identical reports for one (plan, configuration) pair.
type Report struct {
	// Violations lists every broken obligation in canonical order.
	Violations []*Violation
	// Degraded lists the (non-crashed) processes whose causal past could
	// contain plan-invalidated material by the horizon, in id order.
	Degraded []model.ProcID
	// Crashed lists the processes the plan halted within the horizon, in
	// id order.
	Crashed []model.ProcID
}

func sortViolations(vs []*Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.SendTime != b.SendTime {
			return a.SendTime < b.SendTime
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
}
