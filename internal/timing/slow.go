// Package timing implements the paper's run-synthesis machinery: valid
// timing functions over bounds graphs (Definitions 9-10), the slow timing
// and run-by-timing construction r[T] of Definition 13 / Lemma 8 (the
// tightness half of Theorem 2), and the fast timing and fast run of
// Definitions 23-24 (the tightness half of Theorem 4).
//
// Both constructions take a recorded run, retime a precedence-closed portion
// of it, and emit a new run that (a) validates as a legal execution and
// (b) realizes the extremal time gap that the corresponding bounds graph
// promises. They are the executable counterexamples of the paper's
// necessity proofs: no protocol can guarantee a bound tighter than the
// graph's longest path, because these runs achieve it with equality.
package timing

import (
	"errors"
	"fmt"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Construction errors.
var (
	ErrNoPath       = errors.New("timing: node has no path to the target in the bounds graph")
	ErrNotKept      = errors.New("timing: node falls beyond the synthesized horizon")
	ErrInvalidRun   = errors.New("timing: synthesized run failed validation")
	ErrInitialTheta = errors.New("timing: construction requires a non-initial node")
)

// Slow is the slow run r[T] of Lemma 8 built from the slow timing of
// Definition 13: every node that can causally constrain the target is
// delayed as much as the bounds graph permits, so that the target occurs
// exactly at its longest-path distance after each of them. It certifies
// that longest-path bounds in GB(r) are tight (Theorem 2).
type Slow struct {
	// Run is the synthesized run. Node identities (process, index) of kept
	// nodes coincide with those of the source run.
	Run *run.Run
	// Target is sigma2, the node everything is timed against.
	Target run.BasicNode
	// D is the weight of the longest path in GB(r) ending at the target;
	// the target occurs at time D in the slow run.
	D int
	// Source is the run the construction started from.
	Source *run.Run

	dist []int64 // longest-path weight into the target, per GB vertex
	b    *bounds.Basic
}

// BuildSlow constructs the slow run for target sigma2 over GB(r).
//
// The synthesized horizon is D + extra: kept nodes are those with a path to
// the target in GB(r) whose slow time D - d lands within the horizon. A
// positive extra retains nodes that occur after the target (negative d),
// which Theorem 2 queries with negative bounds need. extra must stay well
// below the source run's recording slack (see DESIGN.md §4); the
// construction fails with ErrInvalidRun if truncation artefacts would make
// the synthesized run illegal, rather than ever emitting a bogus run.
func BuildSlow(b *bounds.Basic, sigma2 run.BasicNode, extra model.Time) (*Slow, error) {
	src := b.Run()
	if !src.Appears(sigma2) {
		return nil, fmt.Errorf("%w: %s", run.ErrNoNode, sigma2)
	}
	dist, err := b.DistancesInto(sigma2)
	if err != nil {
		return nil, err
	}
	// D = max_{sigma'} d(sigma') over nodes with a path to the target.
	var d64 int64
	for _, dv := range dist {
		if dv != graph.NegInf && dv > d64 {
			d64 = dv
		}
	}
	d := int(d64)
	horizon := model.Time(d) + extra

	slowTime := func(n run.BasicNode) (model.Time, bool) {
		v, verr := b.Vertex(n)
		if verr != nil {
			return 0, false
		}
		if dist[v] == graph.NegInf {
			return 0, false
		}
		t := model.Time(int64(d) - dist[v])
		if t > horizon {
			return 0, false
		}
		return t, true
	}

	bl := run.NewBuilder(src.Net(), horizon)
	for _, del := range src.Deliveries() {
		tTo, ok := slowTime(del.To)
		if !ok {
			continue
		}
		tFrom, ok := slowTime(del.From)
		if !ok {
			// The sender of a kept delivery is always kept: GB has an edge
			// To -> From, so From inherits the path, and its slow time
			// precedes tTo. Anything else is an internal inconsistency.
			return nil, fmt.Errorf("timing: kept delivery %s with dropped sender", del)
		}
		bl.Message(run.MessageEvent{
			FromProc: del.From.Proc,
			ToProc:   del.To.Proc,
			SendTime: tFrom,
			RecvTime: tTo,
		})
	}
	for _, ext := range src.Externals() {
		if t, ok := slowTime(ext.To); ok {
			bl.External(run.ExternalEvent{Proc: ext.To.Proc, Time: t, Label: ext.Label})
		}
	}
	out, err := bl.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRun, err)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRun, err)
	}
	return &Slow{Run: out, Target: sigma2, D: d, Source: src, dist: dist, b: b}, nil
}

// Time returns the slow time of a source-run node, i.e. its time in the
// synthesized run. ok is false for nodes without a path to the target or
// beyond the synthesized horizon.
func (s *Slow) Time(n run.BasicNode) (model.Time, bool) {
	v, err := s.b.Vertex(n)
	if err != nil || s.dist[v] == graph.NegInf {
		return 0, false
	}
	t := model.Time(int64(s.D) - s.dist[v])
	if t > s.Run.Horizon() {
		return 0, false
	}
	return t, true
}

// Gap returns time(target) - time(sigma1) in the slow run, which equals the
// longest-path weight d(sigma1) by construction — the tightness witness of
// Theorem 2.
func (s *Slow) Gap(sigma1 run.BasicNode) (int, error) {
	t1, ok := s.Time(sigma1)
	if !ok {
		v, err := s.b.Vertex(sigma1)
		if err != nil {
			return 0, err
		}
		if s.dist[v] == graph.NegInf {
			return 0, fmt.Errorf("%w: %s", ErrNoPath, sigma1)
		}
		return 0, fmt.Errorf("%w: %s", ErrNotKept, sigma1)
	}
	tt, err := s.Run.Time(s.Target)
	if err != nil {
		return 0, err
	}
	return tt - t1, nil
}
