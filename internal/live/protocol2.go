package live

import (
	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/run"
)

// Protocol2 is the knowledge-optimal coordination agent for B, running
// online inside B's process goroutine. At every new local state it looks
// for C's go node in its view, builds the extended bounds graph from the
// view (structure only — the agent cannot read any clock), and performs b
// the first time the required precedence is known. It is the live
// counterpart of (coord.Task).RunOptimal, and the two must agree exactly.
type Protocol2 struct {
	Task coord.Task
	// ActLabel is the action recorded when b is performed ("b" if empty).
	ActLabel string

	acted bool
	err   error
}

// Err reports the first internal error the agent encountered (knowledge
// queries are total on well-formed views, so this is nil in practice).
func (p *Protocol2) Err() error { return p.err }

// OnState implements Agent.
func (p *Protocol2) OnState(v *run.View, _ []string) []string {
	if p.acted || p.err != nil {
		return nil
	}
	label := p.Task.GoLabel
	if label == "" {
		label = "go"
	}
	sigmaC, ok := v.FindExternal(p.Task.C, label)
	if !ok {
		return nil // C's send is not yet in B's past
	}
	aNode := run.At(sigmaC).Hop(p.Task.A)
	ext, err := bounds.NewExtendedFromView(v)
	if err != nil {
		p.err = err
		return nil
	}
	sigma := run.At(v.Origin())
	var theta1, theta2 run.GeneralNode
	if p.Task.Kind == coord.Late {
		theta1, theta2 = aNode, sigma
	} else {
		theta1, theta2 = sigma, aNode
	}
	knows, err := ext.Knows(theta1, p.Task.X, theta2)
	if err != nil {
		p.err = err
		return nil
	}
	if !knows {
		return nil
	}
	p.acted = true
	if p.ActLabel == "" {
		return []string{"b"}
	}
	return []string{p.ActLabel}
}
