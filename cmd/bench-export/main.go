// Command bench-export runs the repository's scaling benchmark suite
// programmatically (the same bodies go test -bench runs, via internal/bench)
// and writes the results as a JSON perf-trajectory snapshot, by default to
// BENCH_<date>.json in the current directory. Committing one snapshot per
// perf-relevant change turns the benchmark numbers quoted in commit
// messages into a queryable series; EXPERIMENTS.md documents the workflow.
//
// With -compare the freshly measured results are additionally diffed
// against a previously committed snapshot, reporting per-benchmark deltas
// in ns/op and allocs/op (and flagging cells that appear or disappear), so
// CI and reviewers can read a perf change without opening two JSON files.
// -max-regress turns the report into a gate: any benchmark whose ns/op
// regresses beyond the given percentage fails the run.
//
// Usage:
//
//	bench-export [-out file] [-benchtime 1x|100ms|...] [-filter substr] [-list]
//	             [-compare old.json] [-max-regress pct]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/clockless/zigzag/internal/bench"
)

// result is one benchmark cell of the exported snapshot.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// snapshot is the exported file layout.
type snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

// matchFilter reports whether a case name passes the -filter flag: empty
// matches everything, otherwise any of the |-separated substrings may hit
// (so one invocation can select benchmark pairs, e.g.
// "Protocol2Shared|Protocol2MultiOnline").
func matchFilter(name, filter string) bool {
	if filter == "" {
		return true
	}
	for _, sub := range strings.Split(filter, "|") {
		if sub != "" && strings.Contains(name, sub) {
			return true
		}
	}
	return false
}

func main() {
	testing.Init() // registers -test.* flags: required to Benchmark outside go test
	var (
		out        = flag.String("out", "", "output file (default BENCH_<date>.json)")
		benchtime  = flag.String("benchtime", "1x", "per-benchmark budget, as go test -benchtime (e.g. 1x, 100ms)")
		filter     = flag.String("filter", "", "only run cases whose name contains one of these |-separated substrings")
		list       = flag.Bool("list", false, "list case names and exit")
		compare    = flag.String("compare", "", "diff the fresh results against this committed snapshot")
		maxRegress = flag.Float64("max-regress", 0, "with -compare: fail if any ns/op delta exceeds this percentage (0 = report only)")
	)
	flag.Parse()
	cases := bench.ExportCases()
	if *list {
		for _, c := range cases {
			fmt.Println(c.Name)
		}
		return
	}
	// testing.Benchmark honors the -test.benchtime flag; set it explicitly
	// so the export is self-contained.
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}
	snap := snapshot{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
	}
	for _, c := range cases {
		if !matchFilter(c.Name, *filter) {
			continue
		}
		br := testing.Benchmark(c.Run)
		r := result{
			Name:        c.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		fmt.Printf("%-28s %12.0f ns/op %10d allocs/op %12d B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		snap.Results = append(snap.Results, r)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark cases matched")
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("perf snapshot written to %s (%d cells)\n", path, len(snap.Results))

	if *compare != "" {
		regressed, err := compareSnapshots(os.Stdout, *compare, snap, *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if regressed {
			fmt.Fprintf(os.Stderr, "ns/op regressions beyond %.1f%% against %s\n", *maxRegress, *compare)
			os.Exit(3)
		}
	}
}

// compareSnapshots loads the old snapshot and prints per-benchmark deltas
// of the fresh results against it: ns/op and allocs/op with percentages,
// plus markers for cells without a baseline (new benchmarks) and baseline
// cells the fresh run did not cover (filtered out or removed). It reports
// whether any ns/op regression exceeded maxRegress (when > 0).
func compareSnapshots(w io.Writer, oldPath string, fresh snapshot, maxRegress float64) (regressed bool, err error) {
	raw, err := os.ReadFile(oldPath)
	if err != nil {
		return false, err
	}
	var old snapshot
	if err := json.Unmarshal(raw, &old); err != nil {
		return false, fmt.Errorf("%s: %v", oldPath, err)
	}
	base := make(map[string]result, len(old.Results))
	for _, r := range old.Results {
		base[r.Name] = r
	}
	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			return "    n/a"
		}
		return fmt.Sprintf("%+6.1f%%", 100*(newV-oldV)/oldV)
	}
	fmt.Fprintf(w, "\ncomparison against %s (%s, benchtime %s):\n", oldPath, old.Date, old.Benchtime)
	covered := make(map[string]bool, len(fresh.Results))
	for _, r := range fresh.Results {
		covered[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			fmt.Fprintf(w, "  %-28s %12.0f ns/op %10d allocs/op   (new benchmark, no baseline)\n",
				r.Name, r.NsPerOp, r.AllocsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		if maxRegress > 0 && delta > maxRegress {
			regressed = true
		}
		fmt.Fprintf(w, "  %-28s ns/op %12.0f -> %12.0f (%s)   allocs/op %8d -> %8d (%s)\n",
			r.Name, b.NsPerOp, r.NsPerOp, pct(b.NsPerOp, r.NsPerOp),
			b.AllocsPerOp, r.AllocsPerOp, pct(float64(b.AllocsPerOp), float64(r.AllocsPerOp)))
	}
	missing := 0
	for _, b := range old.Results {
		if !covered[b.Name] {
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(w, "  (%d baseline cells not measured in this run)\n", missing)
	}
	return regressed, nil
}
