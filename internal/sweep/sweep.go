// Package sweep runs scenario × policy × seed grids of FFIP simulations
// concurrently and aggregates their outcomes. It is the batch engine behind
// `zigzag-sim -sweep`: a worker pool sized to GOMAXPROCS executes every cell
// of the grid, while results and aggregates are reported in the grid's
// deterministic enumeration order (scenario-major, then policy, then seed)
// regardless of the number of workers.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/live"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/stats"
)

// ErrEmptyGrid reports a grid with no cells to run.
var ErrEmptyGrid = errors.New("sweep: empty grid")

// Cell execution modes: offline simulation plus paper analysis, or a live
// execution with one Protocol2 agent per task subscribing to a per-network
// knowledge engine — either the goroutine-per-process environment (ModeLive)
// or the goroutine-free single-threaded replay drive (ModeReplay, the
// default live mode; the goroutine environment is kept as its differential
// oracle).
const (
	ModeSim    = "sim"
	ModeLive   = "live"
	ModeReplay = "replay"
)

// PolicySpec names a delivery-policy family and constructs a fresh instance
// per cell. Stateful policies (sim.Random) must not be shared across cells,
// so the grid carries factories rather than policy values.
//
// Deterministic declares that the family's schedule ignores the seed: every
// seed of a deterministic policy produces the identical run, so its live
// cells share one run content fingerprint and route through the network
// engine's standing-prefix cache (the first cell of each distinct run builds
// the standing graph, every other cell stamps it). Leave it false for
// seed-sensitive families.
type PolicySpec struct {
	Name          string
	New           func(seed int64) sim.Policy
	Deterministic bool
}

// DefaultPolicies returns the canonical policy families: the two latency
// extremes, the seeded uniform-random environment and the seeded
// heavy-tailed environment (fast common case, stragglers to the deadline).
func DefaultPolicies() []PolicySpec {
	return []PolicySpec{
		{Name: "eager", New: func(int64) sim.Policy { return sim.Eager{} }, Deterministic: true},
		{Name: "lazy", New: func(int64) sim.Policy { return sim.Lazy{} }, Deterministic: true},
		{Name: "random", New: func(seed int64) sim.Policy { return sim.NewRandom(seed) }},
		{Name: "heavy", New: func(seed int64) sim.Policy { return sim.NewHeavyTail(seed) }},
	}
}

// Grid is a scenario × policy × seed sweep specification, with an optional
// live dimension: scenarios listed in Live run through the live environment
// (one Protocol2 agent per coordination task) instead of the offline
// simulate-and-analyze path.
type Grid struct {
	Scenarios []*scenario.Scenario
	// Live lists scenarios additionally executed as live cells: the
	// goroutine-per-process environment drives one live.Protocol2 agent per
	// task, all subscribing (through per-run bounds.Shared handles) to ONE
	// bounds.NetworkEngine per distinct network content — built once by Run,
	// keyed by the network's fingerprint, and reused across every policy and
	// seed of that topology, which is the cross-run amortization the engine
	// tier exists for. Cells of Deterministic policies additionally share
	// their standing run material through the engine's prefix cache (see
	// RunWithEngines). Live cells enumerate after the sim cells,
	// scenario-major, then policy, then seed, and report under the grid's
	// live mode (LiveMode).
	Live []*scenario.Scenario
	// LiveMode selects how live cells execute: ModeReplay (goroutine-free
	// single-threaded replay, the default when empty) or ModeLive (the
	// goroutine-per-process environment, kept as the replay mode's
	// differential oracle). Both record byte-identical runs; cells report
	// under the chosen mode.
	LiveMode string
	Policies []PolicySpec
	Seeds    []int64
	// Workers bounds concurrent cells; <= 0 means GOMAXPROCS.
	Workers int
	// NoXBatch disables the x-axis collapse of live cells: every per-x
	// variant runs its own dedicated execution, as before the batched
	// knowledge-query plane. The differential tests and the per-x baseline
	// benchmark run with it set; sweeps leave it false.
	NoXBatch bool
}

// xBatchable reports whether a live cell may join an x-batched group: it
// must be a marked x-axis variant (sweep.Axes sets XBase), fault-free (a
// faulted execution's degradation timing may depend on when agents stop
// querying, which differs per x) and terminal-act (an ActFeedback scenario's
// recordings depend on the acts themselves, so per-x runs genuinely differ).
func (g Grid) xBatchable(sc *scenario.Scenario) bool {
	return !g.NoXBatch && sc.XBase != "" && sc.FaultFamily == "" && !sc.ActFeedback
}

// xJoinable reports whether two x-axis variants of one base scenario record
// the identical run: same network content, externals and horizon, and task
// vectors equal modulo the per-task separation X — the one field the x axis
// is allowed to move. An axis point whose override leaked further (a
// scenario builder deriving bounds or schedules from x, like the domain
// scenarios' hold times) must not share an execution; its variants fall
// back to dedicated cells.
func xJoinable(a, b *scenario.Scenario) bool {
	if a.Net.Fingerprint() != b.Net.Fingerprint() || a.Horizon != b.Horizon {
		return false
	}
	if len(a.Externals) != len(b.Externals) {
		return false
	}
	for i := range a.Externals {
		if a.Externals[i] != b.Externals[i] {
			return false
		}
	}
	ta, tb := a.TaskList(), b.TaskList()
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		t := ta[i]
		t.X = tb[i].X
		if t != tb[i] {
			return false
		}
	}
	return true
}

// liveMode resolves the grid's live execution mode, defaulting to replay.
func (g Grid) liveMode() string {
	if g.LiveMode == "" {
		return ModeReplay
	}
	return g.LiveMode
}

// Size returns the number of cells in the grid.
func (g Grid) Size() int {
	return (len(g.Scenarios) + len(g.Live)) * len(g.Policies) * len(g.Seeds)
}

// Result records the outcome of one grid cell. A cell that fails to
// simulate (or whose protocol run fails) carries the error in Err with the
// remaining metric fields zero.
type Result struct {
	Scenario string
	Policy   string
	Seed     int64
	// Mode is ModeSim, ModeLive or ModeReplay (empty results from older
	// callers mean sim).
	Mode string
	Err  error

	// Run shape.
	Nodes      int
	Deliveries int
	Pending    int

	// Coordination outcome, when the scenario poses a task (sim cells).
	HasTask    bool
	Acted      bool
	ActTime    int
	Gap        int
	KnownBound int

	// Live-cell outcome: how many Protocol2 agents ran and how many acted
	// within the horizon; ActTime carries the earliest act when any did.
	Agents      int
	AgentsActed int

	// Prefix reports how a deterministic live cell met the network engine's
	// standing-prefix cache: PrefixHit when the cell stamped its knowledge
	// engine from a frozen identical run, PrefixMiss when it built (and
	// froze) the standing graph itself. Empty for sim cells and
	// seed-sensitive policies, which bypass the cache.
	Prefix string

	// Rev sums the reverse-cache counters of the cell's agents (zero for sim
	// cells and for live cells whose agents never hit the Early query shape):
	// warm reverse restarts, full reverse rebuilds, aux-band refreshes and
	// reverse SPFA relaxations.
	Rev bounds.HandleStats

	// ReplayBatches / ReplayChunks count the receive batches driven and the
	// chunk buffers streamed by a replay-mode cell (zero for sim and
	// goroutine-mode cells).
	ReplayBatches int
	ReplayChunks  int

	// Fault-injected cell outcome (scenarios with a FaultFamily): agents
	// that ended the run degraded (withholding their action after a detected
	// bound violation), processes the plan crashed, and the injected
	// violations — every one a typed error, recovered into the cell result
	// rather than aborting the sweep.
	Degraded   int
	Crashed    int
	Violations int

	// XFanout, on the primary row of an x-batched group, is the number of
	// per-x result rows answered by this cell's single execution (its own
	// included); zero on fanned-out rows and in dedicated mode. Execution
	// attribution — prefix traffic, replay streaming, agent counters — also
	// lands on the primary row: the fanned rows ran no execution of their
	// own.
	XFanout int
}

// Result.Prefix values.
const (
	PrefixHit  = "hit"
	PrefixMiss = "miss"
)

// EngineReport summarizes the knowledge-engine work behind a sweep's live
// cells: how many distinct networks (by content fingerprint) were served and
// the engines' cumulative counters summed — runs stamped, standing-prefix
// cache traffic, bytes copied stamping standing graphs, and SPFA relaxations
// across every knowledge query.
type EngineReport struct {
	Networks int
	Stats    bounds.EngineStats
}

// Run executes every cell of the grid across a worker pool and returns the
// results in enumeration order: scenario-major, then policy, then seed. The
// output is deterministic in the grid (worker count and scheduling do not
// affect it); per-cell failures are recorded in Result.Err rather than
// aborting the sweep.
func (g Grid) Run() ([]Result, error) {
	results, _, err := g.RunWithEngines()
	return results, err
}

// RunWithEngines is Run, additionally reporting the knowledge-engine work
// behind the grid's live cells.
//
// ONE knowledge engine per distinct network CONTENT serves every live cell
// of that topology: engines are keyed by the network's content fingerprint,
// so scenario families that rebuild structurally equal *model.Network values
// (axis sweeps re-deriving the registry per variant) still share one engine.
// Each engine's standing-prefix cache then shares run material across cells:
// cells of seed-independent (Deterministic) policies pre-simulate once per
// (scenario, policy) to learn their run fingerprint and stamp their per-run
// engines through bounds.NetworkEngine.NewRunAt — the first cell of each
// distinct run freezes the standing graph it built, every later identical
// cell (other seeds, or another deterministic policy that happens to produce
// the same schedule) reuses it. To keep the hit/miss accounting
// deterministic under any worker count, all deterministic live cells of one
// network run as a single sequential job in enumeration order; every other
// cell is its own job.
func (g Grid) RunWithEngines() ([]Result, EngineReport, error) {
	if g.Size() == 0 {
		return nil, EngineReport{}, ErrEmptyGrid
	}
	if m := g.liveMode(); m != ModeReplay && m != ModeLive {
		return nil, EngineReport{}, fmt.Errorf("sweep: unknown live mode %q", g.LiveMode)
	}
	for _, sc := range g.Scenarios {
		if sc == nil {
			return nil, EngineReport{}, fmt.Errorf("sweep: nil scenario in grid")
		}
	}
	for _, sc := range g.Live {
		if sc == nil {
			return nil, EngineReport{}, fmt.Errorf("sweep: nil live scenario in grid")
		}
	}
	engines := make(map[uint64]*bounds.NetworkEngine)
	for _, sc := range g.Live {
		if fp := sc.Net.Fingerprint(); engines[fp] == nil {
			engines[fp] = bounds.NewNetworkEngine(sc.Net)
		}
	}

	// Group the cells into units first: an x-batched group (every per-x
	// variant of one base scenario under one policy and seed — their
	// recordings are identical, so ONE execution answers all of them) or a
	// single cell. Variants enumerate scenario-major, so the group's cells
	// accumulate in x-axis order with the first variant as the primary.
	nSeeds, nPols := len(g.Seeds), len(g.Policies)
	type unit struct{ cells []int }
	type xkey struct {
		base      string
		pol, seed int
	}
	var units []unit
	groupOf := make(map[xkey]int)
	for i := 0; i < g.Size(); i++ {
		sc, _, _, isLive := g.decode(i)
		if isLive && g.xBatchable(sc) {
			k := xkey{base: sc.XBase, pol: (i / nSeeds) % nPols, seed: i % nSeeds}
			if ui, ok := groupOf[k]; ok {
				first, _, _, _ := g.decode(units[ui].cells[0])
				if xJoinable(first, sc) {
					units[ui].cells = append(units[ui].cells, i)
					continue
				}
			} else {
				groupOf[k] = len(units)
			}
		}
		units = append(units, unit{cells: []int{i}})
	}

	// Carve the units into jobs: one sequential block per network holding its
	// deterministic live units, singleton jobs for everything else.
	blocks := make(map[uint64][]unit)
	var blockOrder []uint64
	var jobList [][]unit
	for _, u := range units {
		// Faulted cells never join a deterministic block: their recordings
		// are not legal runs and must bypass the standing-prefix cache.
		if sc, spec, _, isLive := g.decode(u.cells[0]); isLive && spec.Deterministic && sc.FaultFamily == "" {
			fp := sc.Net.Fingerprint()
			if blocks[fp] == nil {
				blockOrder = append(blockOrder, fp)
			}
			blocks[fp] = append(blocks[fp], u)
		} else {
			jobList = append(jobList, []unit{u})
		}
	}
	for _, fp := range blockOrder {
		jobList = append(jobList, blocks[fp])
	}

	workers := g.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobList) {
		workers = len(jobList)
	}

	memo := &fpMemo{m: make(map[fpMemoKey]uint64)}
	results := make([]Result, g.Size())
	jobs := make(chan []unit)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for job := range jobs {
				for _, u := range job {
					if len(u.cells) == 1 {
						results[u.cells[0]] = g.cell(u.cells[0], engines, memo)
					} else {
						g.xBatch(u.cells, engines, memo, results)
					}
				}
			}
		}()
	}
	for _, job := range jobList {
		jobs <- job
	}
	close(jobs)
	wg.Wait()

	var rep EngineReport
	rep.Networks = len(engines)
	for _, eng := range engines {
		st := eng.Stats()
		rep.Stats.Runs += st.Runs
		rep.Stats.PrefixHits += st.PrefixHits
		rep.Stats.PrefixMisses += st.PrefixMisses
		rep.Stats.PrefixEvictions += st.PrefixEvictions
		rep.Stats.CloneBytes += st.CloneBytes
		rep.Stats.Relaxations += st.Relaxations
		rep.Stats.RevHits += st.RevHits
		rep.Stats.RevRebuilds += st.RevRebuilds
		rep.Stats.BandRefreshes += st.BandRefreshes
		rep.Stats.RevRelaxations += st.RevRelaxations
		rep.Stats.ReplayBatches += st.ReplayBatches
		rep.Stats.ReplayChunks += st.ReplayChunks
		rep.Stats.BatchQueries += st.BatchQueries
		rep.Stats.BatchHits += st.BatchHits
		rep.Stats.XFanout += st.XFanout
	}
	return results, rep, nil
}

// decode maps the i-th cell of the enumeration to its coordinates: sim cells
// first, then live cells, each block scenario-major, then policy, then seed.
func (g Grid) decode(i int) (sc *scenario.Scenario, spec PolicySpec, seed int64, isLive bool) {
	nSeeds, nPols := len(g.Seeds), len(g.Policies)
	scIdx := i / (nPols * nSeeds)
	spec = g.Policies[(i/nSeeds)%nPols]
	seed = g.Seeds[i%nSeeds]
	if scIdx >= len(g.Scenarios) {
		return g.Live[scIdx-len(g.Scenarios)], spec, seed, true
	}
	return g.Scenarios[scIdx], spec, seed, false
}

// fpMemoKey identifies the one run every seed of a deterministic policy
// produces on a scenario.
type fpMemoKey struct{ sc, pol string }

// fpMemo caches pre-simulated run fingerprints per (scenario, policy), so
// only the first cell of a deterministic block pays the extra simulation.
type fpMemo struct {
	mu sync.Mutex
	m  map[fpMemoKey]uint64
}

// fingerprint returns the run content fingerprint of the scenario under the
// (deterministic) policy family, pre-simulating on first use. Concurrent
// first calls may both simulate; deterministic policies make the results
// identical, so last-write-wins is harmless.
func (fm *fpMemo) fingerprint(sc *scenario.Scenario, spec PolicySpec, seed int64) (uint64, error) {
	k := fpMemoKey{sc: sc.Name, pol: spec.Name}
	fm.mu.Lock()
	fp, ok := fm.m[k]
	fm.mu.Unlock()
	if ok {
		return fp, nil
	}
	r, err := sc.Simulate(spec.New(seed))
	if err != nil {
		return 0, err
	}
	fp = r.Fingerprint()
	fm.mu.Lock()
	fm.m[k] = fp
	fm.mu.Unlock()
	return fp, nil
}

// cell runs the i-th cell of the enumeration. A panic escaping the cell —
// a malformed scenario, a bug surfaced by an adversarial fault plan — is
// recovered into the cell's Err, so one bad cell degrades one row of the
// grid instead of killing the whole sweep.
func (g Grid) cell(i int, engines map[uint64]*bounds.NetworkEngine, memo *fpMemo) (res Result) {
	sc, spec, seed, isLive := g.decode(i)
	defer func() {
		if r := recover(); r != nil {
			mode := ModeSim
			if isLive {
				mode = g.liveMode()
			}
			res = Result{Scenario: sc.Name, Policy: spec.Name, Seed: seed,
				Mode: mode, Err: fmt.Errorf("sweep: cell panicked: %v", r)}
		}
	}()
	if isLive {
		return liveCell(sc, spec, seed, g.liveMode(), engines[sc.Net.Fingerprint()], memo)
	}

	res = Result{Scenario: sc.Name, Policy: spec.Name, Seed: seed, Mode: ModeSim}
	r, err := sc.Simulate(spec.New(seed))
	if err != nil {
		res.Err = err
		return res
	}
	res.Nodes = r.NumNodes()
	res.Deliveries = len(r.Deliveries())
	res.Pending = len(r.PendingMessages())
	if sc.Task == nil {
		return res
	}
	res.HasTask = true
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		res.Err = err
		return res
	}
	res.Acted = out.Acted
	if out.Acted {
		res.ActTime = int(out.ActTime)
		res.Gap = out.Gap
		res.KnownBound = out.KnownBound
	}
	return res
}

// liveCell executes one live-mode cell: the scenario's tasks become
// live.Protocol2 agents (one per task, acting with labels b1, b2, ...), the
// run subscribes to the network's shared engine, and the cell reports the
// recorded run's shape plus how many agents acted. Scenarios without tasks
// still execute (pure FFIP relay runs) and report shape only. Cells of
// deterministic policies learn their run fingerprint up front (memoized
// pre-simulation) and route their per-run engine through the network
// engine's standing-prefix cache. mode picks the execution engine —
// live.Replay (ModeReplay) or live.Run (ModeLive); both produce identical
// recordings and actions, so everything below the dispatch is shared.
func liveCell(sc *scenario.Scenario, spec PolicySpec, seed int64, mode string, eng *bounds.NetworkEngine, memo *fpMemo) Result {
	res := Result{Scenario: sc.Name, Policy: spec.Name, Seed: seed, Mode: mode}
	var plan *faults.Plan
	if sc.FaultFamily != "" {
		p, err := faults.NewPlan(sc.FaultFamily, sc.Net, sc.Horizon, seed)
		if err != nil {
			res.Err = err
			return res
		}
		plan = p
	}
	var runFP uint64
	if spec.Deterministic && plan == nil {
		fp, err := memo.fingerprint(sc, spec, seed)
		if err != nil {
			res.Err = err
			return res
		}
		runFP = fp
	}
	tasks := sc.TaskList()
	agents, agentMap := live.NewTaskAgents(tasks)
	exec := live.Run
	if mode == ModeReplay {
		exec = live.Replay
	}
	out, err := exec(live.Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: spec.New(seed),
		Externals: sc.Externals, Agents: agentMap, Engine: eng,
		Fingerprint: runFP, Faults: plan,
	})
	if err != nil {
		res.Err = err
		return res
	}
	res.Degraded = len(out.Degraded)
	res.Crashed = len(out.Crashed)
	res.Violations = len(out.Violations)
	res.ReplayBatches = out.ReplayBatches
	res.ReplayChunks = out.ReplayChunks
	if runFP != 0 {
		if out.PrefixHit {
			res.Prefix = PrefixHit
		} else {
			res.Prefix = PrefixMiss
		}
	}
	for i := range agents {
		if aerr := agents[i].Err(); aerr != nil {
			res.Err = fmt.Errorf("agent %s: %w", live.TaskLabel(i), aerr)
			return res
		}
		res.Rev.Add(agents[i].HandleStats())
	}
	res.Nodes = out.Run.NumNodes()
	res.Deliveries = len(out.Run.Deliveries())
	res.Pending = len(out.Run.PendingMessages())
	res.Agents = len(tasks)
	res.AgentsActed = len(out.Actions) // each Protocol2 acts at most once
	if len(out.Actions) > 0 {
		// Actions are recorded in (time, process) order.
		res.ActTime = int(out.Actions[0].Time)
	}
	return res
}

// xBatch executes one x-batched group of live cells — every per-x variant of
// one base scenario under one (policy, seed) — through a single execution,
// scattering one Result per cell into results. Panics are recovered into
// every cell of the group, mirroring Grid.cell.
func (g Grid) xBatch(cells []int, engines map[uint64]*bounds.NetworkEngine, memo *fpMemo, results []Result) {
	scs := make([]*scenario.Scenario, len(cells))
	var spec PolicySpec
	var seed int64
	for j, i := range cells {
		scs[j], spec, seed, _ = g.decode(i)
	}
	mode := g.liveMode()
	defer func() {
		if r := recover(); r != nil {
			for j, i := range cells {
				results[i] = Result{Scenario: scs[j].Name, Policy: spec.Name, Seed: seed,
					Mode: mode, Err: fmt.Errorf("sweep: cell panicked: %v", r)}
			}
		}
	}()
	rs := xBatchCells(scs, spec, seed, mode, engines[scs[0].Net.Fingerprint()], memo)
	for j, i := range cells {
		results[i] = rs[j]
	}
}

// xBatchCells is the batched counterpart of liveCell. The group's variants
// differ only in task thresholds, and acts are terminal in x-batchable
// scenarios (no feedback into the delivery schedule), so every variant
// records the identical run: ONE execution is driven with each agent in
// batched x-fanout mode (live.Protocol2.XGrid holding its per-variant
// thresholds), and the per-variant act rows are derived from the agents'
// decision trajectories — knowledge gain is monotone, so the state at which
// threshold x became known is exactly where a dedicated agent with that
// threshold acts. Execution-level attribution (run shape is shared; prefix,
// replay streaming and agent counters are real once) lands on the primary
// (first) variant row, which also carries XFanout = group size.
func xBatchCells(scs []*scenario.Scenario, spec PolicySpec, seed int64, mode string, eng *bounds.NetworkEngine, memo *fpMemo) []Result {
	rs := make([]Result, len(scs))
	for j := range rs {
		rs[j] = Result{Scenario: scs[j].Name, Policy: spec.Name, Seed: seed, Mode: mode}
	}
	fail := func(err error) []Result {
		for j := range rs {
			rs[j].Err = err
		}
		return rs
	}
	sc0 := scs[0]
	var runFP uint64
	if spec.Deterministic {
		fp, err := memo.fingerprint(sc0, spec, seed)
		if err != nil {
			return fail(err)
		}
		runFP = fp
	}
	tasks := sc0.TaskList()
	agents, agentMap := live.NewTaskAgents(tasks)
	for j := range agents {
		grid := make([]int, len(scs))
		for v := range scs {
			grid[v] = scs[v].TaskList()[j].X
		}
		agents[j].XGrid = grid
	}
	exec := live.Run
	if mode == ModeReplay {
		exec = live.Replay
	}
	out, err := exec(live.Config{
		Net: sc0.Net, Horizon: sc0.Horizon, Policy: spec.New(seed),
		Externals: sc0.Externals, Agents: agentMap, Engine: eng,
		Fingerprint: runFP,
	})
	if err != nil {
		return fail(err)
	}
	for j := range agents {
		if aerr := agents[j].Err(); aerr != nil {
			return fail(fmt.Errorf("agent %s: %w", live.TaskLabel(j), aerr))
		}
	}
	for v := range rs {
		res := &rs[v]
		res.Nodes = out.Run.NumNodes()
		res.Deliveries = len(out.Run.Deliveries())
		res.Pending = len(out.Run.PendingMessages())
		res.Agents = len(tasks)
		actTime := -1
		for j := range agents {
			d := agents[j].XDecisions()
			if d == nil || !d[v].Decided {
				continue
			}
			res.AgentsActed++
			t, terr := out.Run.Time(d[v].Node)
			if terr != nil {
				return fail(terr)
			}
			if actTime < 0 || int(t) < actTime {
				actTime = int(t)
			}
		}
		if actTime >= 0 {
			res.ActTime = actTime
		}
	}
	res0 := &rs[0]
	res0.ReplayBatches = out.ReplayBatches
	res0.ReplayChunks = out.ReplayChunks
	if runFP != 0 {
		if out.PrefixHit {
			res0.Prefix = PrefixHit
		} else {
			res0.Prefix = PrefixMiss
		}
	}
	for j := range agents {
		res0.Rev.Add(agents[j].HandleStats())
	}
	res0.XFanout = len(scs)
	if eng != nil {
		eng.NoteXFanout(int64(len(scs) - 1))
	}
	return rs
}

// Aggregate summarizes all cells of one (scenario, policy, mode) triple.
type Aggregate struct {
	Scenario string
	Policy   string
	// Mode is ModeSim, ModeLive or ModeReplay (empty from pre-mode results
	// means sim).
	Mode   string
	Runs   int
	Errors int

	Nodes      stats.Summary
	Deliveries stats.Summary

	// Coordination tallies over the sim cells that pose a task.
	TaskRuns int
	Acted    int
	Gap      stats.Summary // over acted cells

	// Live tallies: agents hosted and agents acted, summed over cells.
	AgentRuns   int
	AgentsActed int

	// Standing-prefix cache tallies over the group's deterministic live
	// cells (both zero when the group bypasses the cache).
	PrefixHits   int
	PrefixMisses int

	// Rev sums the reverse-cache counters over the group's live cells.
	Rev bounds.HandleStats

	// ReplayBatches / ReplayChunks sum the replay-mode streaming counters
	// over the group's cells (zero for sim and goroutine-mode groups).
	ReplayBatches int
	ReplayChunks  int

	// Fault-injection tallies summed over the group's cells: degraded
	// agents, crashed processes and injected bound violations.
	Degraded   int
	Crashed    int
	Violations int

	// XFanout sums the per-x rows answered by the group's x-batched
	// executions (zero in dedicated mode).
	XFanout int

	// FirstErr is the first cell error of the group in enumeration order
	// ("" when every cell succeeded) — the chaos sweep's machine-checkable
	// err column.
	FirstErr string
}

// Summarize groups results by (scenario, policy, mode) in first-appearance
// order — for Grid.Run output, the grid's enumeration order — and computes
// the per-group aggregates.
func Summarize(results []Result) []Aggregate {
	type key struct{ sc, pol, mode string }
	idx := make(map[key]int)
	var aggs []Aggregate
	samples := make(map[key]*struct{ nodes, deliveries, gaps []float64 })
	for _, res := range results {
		k := key{res.Scenario, res.Policy, res.Mode}
		i, ok := idx[k]
		if !ok {
			i = len(aggs)
			idx[k] = i
			aggs = append(aggs, Aggregate{Scenario: res.Scenario, Policy: res.Policy, Mode: res.Mode})
			samples[k] = &struct{ nodes, deliveries, gaps []float64 }{}
		}
		a, s := &aggs[i], samples[k]
		a.Runs++
		if res.Err != nil {
			a.Errors++
			if a.FirstErr == "" {
				a.FirstErr = res.Err.Error()
			}
			continue
		}
		a.Degraded += res.Degraded
		a.Crashed += res.Crashed
		a.Violations += res.Violations
		s.nodes = append(s.nodes, float64(res.Nodes))
		s.deliveries = append(s.deliveries, float64(res.Deliveries))
		if res.HasTask {
			a.TaskRuns++
			if res.Acted {
				a.Acted++
				s.gaps = append(s.gaps, float64(res.Gap))
			}
		}
		a.AgentRuns += res.Agents
		a.AgentsActed += res.AgentsActed
		switch res.Prefix {
		case PrefixHit:
			a.PrefixHits++
		case PrefixMiss:
			a.PrefixMisses++
		}
		a.Rev.Add(res.Rev)
		a.ReplayBatches += res.ReplayBatches
		a.ReplayChunks += res.ReplayChunks
		a.XFanout += res.XFanout
	}
	for i := range aggs {
		s := samples[key{aggs[i].Scenario, aggs[i].Policy, aggs[i].Mode}]
		aggs[i].Nodes = stats.Summarize(s.nodes)
		aggs[i].Deliveries = stats.Summarize(s.deliveries)
		aggs[i].Gap = stats.Summarize(s.gaps)
	}
	return aggs
}

// Table renders aggregates as an aligned text table, one row per
// (scenario, policy, mode) triple, in the given order. The acted column
// reads acted/posed: task cells over task runs for sim rows, agents acted
// over agents hosted for live rows. The prefix column reads hits/routed
// over the group's standing-prefix cache traffic ("-" when the group
// bypasses the cache); the rev column reads warm-hits/reverse-queries over
// the group's reverse-cache traffic ("-" when no agent hit the Early
// shape); the replay column reads batches/chunks streamed by replay-mode
// cells ("-" for sim and goroutine-mode rows); the batch column reads
// free-hits/answers over the group's batched knowledge queries with the
// x-fanout row count in parentheses on primary rows ("-" when the group ran
// nothing batched). Fault-injected groups fill the degr column (degraded
// agents / agents hosted, plus the group's injected violations) and the err
// column carries the group's first cell error, truncated — "-" everywhere
// for clean groups.
func Table(aggs []Aggregate) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tmode\tpolicy\truns\terrs\tnodes\tdeliveries\tacted\tgap(mean)\tgap[min,max]\tprefix\trev\treplay\tbatch\tdegr\terr")
	for _, a := range aggs {
		acted := "-"
		gapMean := "-"
		gapRange := "-"
		if a.TaskRuns > 0 {
			acted = fmt.Sprintf("%d/%d", a.Acted, a.TaskRuns)
			if a.Acted > 0 {
				gapMean = fmt.Sprintf("%+.2f", a.Gap.Mean)
				gapRange = fmt.Sprintf("[%+.0f,%+.0f]", a.Gap.Min, a.Gap.Max)
			}
		}
		if a.AgentRuns > 0 {
			acted = fmt.Sprintf("%d/%d", a.AgentsActed, a.AgentRuns)
		}
		prefix := "-"
		if cached := a.PrefixHits + a.PrefixMisses; cached > 0 {
			prefix = fmt.Sprintf("%d/%d", a.PrefixHits, cached)
		}
		rev := "-"
		if q := a.Rev.RevHits + a.Rev.RevRebuilds; q > 0 {
			rev = fmt.Sprintf("%d/%d", a.Rev.RevHits, q)
		}
		replay := "-"
		if a.ReplayBatches > 0 {
			replay = fmt.Sprintf("%d/%d", a.ReplayBatches, a.ReplayChunks)
		}
		batch := "-"
		if a.Rev.BatchQueries > 0 || a.XFanout > 0 {
			batch = fmt.Sprintf("%d/%d", a.Rev.BatchHits, a.Rev.BatchQueries)
			if a.XFanout > 0 {
				batch += fmt.Sprintf(" (x%d)", a.XFanout)
			}
		}
		degr := "-"
		if a.Degraded > 0 || a.Crashed > 0 || a.Violations > 0 {
			degr = fmt.Sprintf("%d/%d (%dv)", a.Degraded, a.AgentRuns, a.Violations)
		}
		errCol := "-"
		if a.FirstErr != "" {
			errCol = a.FirstErr
			if len(errCol) > 48 {
				errCol = errCol[:45] + "..."
			}
		}
		mode := a.Mode
		if mode == "" {
			mode = ModeSim
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.1f\t%.1f\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			a.Scenario, mode, a.Policy, a.Runs, a.Errors, a.Nodes.Mean, a.Deliveries.Mean,
			acted, gapMean, gapRange, prefix, rev, replay, batch, degr, errCol)
	}
	tw.Flush()
	return b.String()
}
