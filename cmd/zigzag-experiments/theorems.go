package main

import (
	"errors"
	"fmt"
	"time"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/stats"
	"github.com/clockless/zigzag/internal/timing"
	"github.com/clockless/zigzag/internal/workload"
)

// expTheorem1 samples random instances, extracts zigzag patterns between
// window node pairs, verifies each against its run, and re-checks the
// implied precedence in a second environment with the same communication
// structure: the slow run, where every retained node keeps its identity but
// moves to the most adversarial time the bounds allow. A pattern whose
// weight claim survived only by accident of the original timing would fail
// there.
func expTheorem1(cfg config) error {
	patterns, slowChecks := 0, 0
	for seed := int64(1); seed <= int64(cfg.seeds); seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed * 13))
		if err != nil {
			return err
		}
		gb := bounds.NewBasic(r)
		window := in.WindowNodes(r)
		for i := 0; i < len(window) && i < 4; i++ {
			for j := 0; j < len(window) && j < 4; j++ {
				s1, s2 := window[i], window[len(window)-1-j]
				z, _, found, err := pattern.ExtractBasic(gb, s1, s2)
				if err != nil {
					return err
				}
				if !found {
					continue
				}
				patterns++
				if err := z.Verify(r); err != nil {
					return fmt.Errorf("seed %d (%s -> %s): %w", seed, s1, s2, err)
				}
				slow, err := timing.BuildSlow(gb, s2, in.Window)
				if err != nil {
					return err
				}
				err = z.Verify(slow.Run)
				switch {
				case err == nil:
					slowChecks++
				case errors.Is(err, pattern.ErrUnresolvable):
					// A fork leg outruns the slow run's shorter horizon.
				default:
					return fmt.Errorf("seed %d slow run (%s -> %s): %w", seed, s1, s2, err)
				}
			}
		}
	}
	fmt.Printf("zigzag patterns extracted & verified: %d; re-verified in slow runs: %d\n",
		patterns, slowChecks)
	if patterns == 0 {
		return fmt.Errorf("no patterns extracted")
	}
	if slowChecks == 0 {
		return fmt.Errorf("no slow-run checks completed")
	}
	return nil
}

// expTheorem2 measures slow-run tightness: over random instances, the gap
// realized in r[T] equals the GB longest path for every reachable pair.
func expTheorem2(cfg config) error {
	pairs, exact := 0, 0
	var weights []int
	for seed := int64(1); seed <= int64(cfg.seeds); seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed * 7))
		if err != nil {
			return err
		}
		gb := bounds.NewBasic(r)
		window := in.WindowNodes(r)
		if len(window) == 0 {
			continue
		}
		sigma2 := window[len(window)-1]
		slow, err := timing.BuildSlow(gb, sigma2, 0)
		if err != nil {
			return err
		}
		dist, err := gb.DistancesInto(sigma2)
		if err != nil {
			return err
		}
		for _, sigma1 := range window {
			v, err := gb.Vertex(sigma1)
			if err != nil {
				return err
			}
			if dist[v] == graph.NegInf || dist[v] < 0 {
				continue
			}
			gap, err := slow.Gap(sigma1)
			if err != nil {
				return err
			}
			pairs++
			weights = append(weights, gap)
			if int64(gap) == dist[v] {
				exact++
			}
		}
	}
	fmt.Printf("pairs: %d; slow-run gap == longest path: %d (must be all)\n", pairs, exact)
	fmt.Printf("bound weights: %s\n", stats.SummarizeInts(weights))
	if pairs == 0 || exact != pairs {
		return fmt.Errorf("tightness failed: %d/%d", exact, pairs)
	}
	return nil
}

// expTheorem3 audits Protocol 2 decisions: at every action node the
// required knowledge held, and at no earlier node did it hold (the protocol
// is optimal by construction; the audit recomputes both sides).
func expTheorem3(cfg config) error {
	scenarios := []*scenario.Scenario{
		scenario.Figure1(scenario.DefaultFigure1()),
		scenario.Figure2b(scenario.DefaultFigure2()),
		scenario.Figure4(scenario.DefaultFigure4()),
		scenario.Trains(3),
		scenario.Takeoff(4),
		scenario.Circuits(6),
	}
	audited := 0
	for _, sc := range scenarios {
		for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(5)} {
			r, err := sc.Simulate(pol)
			if err != nil {
				return err
			}
			out, err := sc.Task.RunOptimal(r)
			if err != nil {
				return err
			}
			if !out.Acted {
				return fmt.Errorf("%s/%s: protocol never acted", sc.Name, pol.Name())
			}
			w, err := sc.Task.Wire(r)
			if err != nil {
				return err
			}
			// Knowledge of the precedence held at the action node
			// (Theorem 3's necessary condition) and the realized gap obeys
			// the spec in the ground-truth run.
			ext, err := bounds.NewExtended(r, out.ActNode)
			if err != nil {
				return err
			}
			var t1, t2 run.GeneralNode
			if sc.Task.Kind.String() == "Late" {
				t1, t2 = w.ANode, run.At(out.ActNode)
			} else {
				t1, t2 = run.At(out.ActNode), w.ANode
			}
			ok, err := ext.Knows(t1, sc.Task.X, t2)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("%s/%s: acted without knowledge", sc.Name, pol.Name())
			}
			// Optimality: no earlier node of B knew enough.
			for k := 1; k < out.ActNode.Index; k++ {
				earlier := run.BasicNode{Proc: out.ActNode.Proc, Index: k}
				extE, err := bounds.NewExtended(r, earlier)
				if err != nil {
					return err
				}
				if !extE.Past().Contains(w.SigmaC) {
					continue
				}
				var e1, e2 run.GeneralNode
				if sc.Task.Kind.String() == "Late" {
					e1, e2 = w.ANode, run.At(earlier)
				} else {
					e1, e2 = run.At(earlier), w.ANode
				}
				okE, err := extE.Knows(e1, sc.Task.X, e2)
				if err != nil {
					return err
				}
				if okE {
					return fmt.Errorf("%s/%s: node %s already knew", sc.Name, pol.Name(), earlier)
				}
			}
			audited++
		}
	}
	fmt.Printf("scenario/policy decisions audited: %d (knowledge held at action, never earlier)\n", audited)
	return nil
}

// expTheorem4 measures fast-run tightness: kw(sigma, theta1, theta2) equals
// the realized gap in the 0-fast run for every known pair, and witnesses
// verify as sigma-visible zigzags.
func expTheorem4(cfg config) error {
	pairs, exact, witnesses := 0, 0, 0
	for seed := int64(1); seed <= int64(cfg.seeds); seed++ {
		in := workload.MustGenerate(workload.DefaultConfig(seed))
		r, err := in.Simulate(sim.NewRandom(seed * 17))
		if err != nil {
			return err
		}
		window := in.WindowNodes(r)
		if len(window) == 0 {
			continue
		}
		sigma := window[len(window)-1]
		ps, err := r.Past(sigma)
		if err != nil {
			return err
		}
		var cands []run.BasicNode
		for _, n := range window {
			if ps.Contains(n) && !n.IsInitial() {
				cands = append(cands, n)
			}
		}
		if len(cands) > 4 {
			cands = cands[len(cands)-4:]
		}
		for _, s1 := range cands {
			var fast *timing.Fast
			for _, s2 := range cands {
				ext, err := bounds.NewExtended(r, sigma)
				if err != nil {
					return err
				}
				witness, kw, known, err := pattern.KnowledgeWitness(ext, run.At(s1), run.At(s2))
				if err != nil {
					return err
				}
				if !known {
					continue
				}
				pairs++
				if err := witness.VerifyVisible(r); err == nil {
					witnesses++
				} else if !errors.Is(err, pattern.ErrUnresolvable) {
					return fmt.Errorf("seed %d witness(%s,%s): %w", seed, s1, s2, err)
				}
				if fast == nil {
					fast, err = timing.BuildFast(r, sigma, run.At(s1), 0, 0)
					if err != nil {
						return fmt.Errorf("seed %d fast(%s): %w", seed, s1, err)
					}
				}
				gap, err := fast.Gap(run.At(s2))
				if err != nil {
					return err
				}
				if gap == kw {
					exact++
				} else {
					return fmt.Errorf("seed %d: kw(%s,%s)=%d but fast gap=%d", seed, s1, s2, kw, gap)
				}
			}
		}
	}
	fmt.Printf("known pairs: %d; fast-run gap == knowledge weight: %d; visible witnesses verified: %d\n",
		pairs, exact, witnesses)
	if pairs == 0 {
		return fmt.Errorf("no pairs")
	}
	return nil
}

// expScale reports graph sizes and query costs against network size.
func expScale(cfg config) error {
	fmt.Println("    n | nodes |  GB edges |  GE edges | kw query")
	for _, n := range []int{4, 8, 16, 32} {
		wcfg := workload.DefaultConfig(int64(n))
		wcfg.Procs = n
		wcfg.ExtraChannels = 2 * n
		in := workload.MustGenerate(wcfg)
		r, err := in.Simulate(sim.NewRandom(int64(n)))
		if err != nil {
			return err
		}
		gb := bounds.NewBasic(r)
		window := in.WindowNodes(r)
		if len(window) < 2 {
			continue
		}
		sigma := window[len(window)-1]
		start := time.Now()
		ext, err := bounds.NewExtended(r, sigma)
		if err != nil {
			return err
		}
		theta1 := run.At(window[0])
		var kwDur time.Duration
		if ps := ext.Past(); ps.Contains(window[0]) && !window[0].IsInitial() {
			t0 := time.Now()
			if _, _, _, err := ext.KnowledgeWeight(theta1, run.At(sigma)); err != nil {
				return err
			}
			kwDur = time.Since(t0)
		}
		fmt.Printf("%5d | %5d | %9d | %9d | %8s (build+query %s)\n",
			n, r.NumNodes(), gb.NumEdges(), ext.NumEdges(), kwDur, time.Since(start))
	}
	return nil
}
