package main

import (
	"fmt"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/viz"
)

// expFigure1 sweeps the fork margin L_CB - (U_CA + x): B must act exactly
// when the margin is non-negative, under every policy, while the baseline
// never acts (there is no A->B chain).
func expFigure1(cfg config) error {
	base := scenario.DefaultFigure1()
	fmt.Println("margin = L_CB - U_CA - x | optimal acts | act time (lazy) | baseline")
	for margin := -2; margin <= 3; margin++ {
		p := base
		p.X = p.LCB - p.UCA - margin
		sc := scenario.Figure1(p)
		actedAll, actTime := true, 0
		for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(4)} {
			r, err := sc.Simulate(pol)
			if err != nil {
				return err
			}
			out, err := sc.Task.RunOptimal(r)
			if err != nil {
				return err
			}
			if !out.Acted {
				actedAll = false
			} else if pol.Name() == "lazy" {
				actTime = out.ActTime
			}
			if out.Acted != (margin >= 0) {
				return fmt.Errorf("margin %d, policy %s: acted=%v", margin, pol.Name(), out.Acted)
			}
		}
		rLazy, err := sc.Simulate(sim.Lazy{})
		if err != nil {
			return err
		}
		baseOut, err := sc.Task.RunBaseline(rLazy)
		if err != nil {
			return err
		}
		mark, at := "no", "-"
		if actedAll {
			mark, at = "yes", fmt.Sprintf("t=%d", actTime)
		}
		fmt.Printf("%24d | %-12s | %-15s | acts=%v\n", margin, mark, at, baseOut.Acted)
	}
	fmt.Println("shape: B acts iff margin >= 0; asynchronous baseline never acts.")
	return nil
}

// expFigure2a verifies Equation (1): the heaviest zigzag from a to b weighs
// exactly Eq1 + 1, holds in every run, and the slow run meets it exactly.
func expFigure2a(cfg config) error {
	p := scenario.DefaultFigure2()
	sc := scenario.Figure2a(p)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		return err
	}
	w, err := sc.Task.Wire(r)
	if err != nil {
		return err
	}
	bNode := run.BasicNode{Proc: sc.Proc("B"), Index: 1}
	gb := bounds.NewBasic(r)
	z, weight, found, err := pattern.ExtractBasic(gb, w.ABasic, bNode)
	if err != nil || !found {
		return fmt.Errorf("extract: found=%v err=%v", found, err)
	}
	fmt.Printf("Equation (1): -U_CA + L_CD - U_ED + L_EB = %d\n", p.EquationOne())
	fmt.Printf("heaviest zigzag a -> b: wt = %d (= Eq1 + 1 from the strict junction at D)\n", weight)
	if weight != p.EquationOne()+1 {
		return fmt.Errorf("weight %d != Eq1+1 = %d", weight, p.EquationOne()+1)
	}
	if err := z.Verify(r); err != nil {
		return fmt.Errorf("zigzag verify: %w", err)
	}
	fmt.Print(viz.Zigzag(r.Net(), z))
	// Realized gaps across policies never undercut the zigzag weight.
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(9)} {
		r2, err := sc.Simulate(pol)
		if err != nil {
			return err
		}
		w2, err := sc.Task.Wire(r2)
		if err != nil {
			return err
		}
		gap := r2.MustTime(run.BasicNode{Proc: sc.Proc("B"), Index: 1}) - r2.MustTime(w2.ABasic)
		fmt.Printf("policy %-7s realized gap t_b - t_a = %d (>= %d)\n", pol.Name(), gap, weight)
		if gap < weight {
			return fmt.Errorf("policy %s: gap %d < %d", pol.Name(), gap, weight)
		}
	}
	return nil
}

// expFigure2b runs Protocol 2 on the visible-zigzag scenario.
func expFigure2b(cfg config) error {
	p := scenario.DefaultFigure2()
	sc := scenario.Figure2b(p)
	fmt.Printf("x = %d; Equation(1)+1 = %d; relay fork alone = %d (too weak)\n",
		p.X, p.EquationOne()+1, p.LCD+p.LDB-p.UCA)
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(11)} {
		r, err := sc.Simulate(pol)
		if err != nil {
			return err
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			return err
		}
		if !out.Acted {
			return fmt.Errorf("policy %s: B never acted", pol.Name())
		}
		if err := out.Witness.VerifyVisible(r); err != nil {
			return fmt.Errorf("policy %s: witness: %w", pol.Name(), err)
		}
		fmt.Printf("policy %-7s a at t=%d, b at t=%d, gap %d >= x; knew %d via %d-fork zigzag\n",
			pol.Name(), out.ATime, out.ActTime, out.Gap, out.KnownBound, out.Witness.Len())
	}
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		return err
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		return err
	}
	fmt.Println("witness pattern (eager run):")
	fmt.Print(viz.Zigzag(r.Net(), &out.Witness.Zigzag))
	return nil
}

// expFigure3 sweeps fork leg lengths and checks wt(F) = L(p1) - U(p2).
func expFigure3(cfg config) error {
	fmt.Println("head hops | tail hops | L(head) | U(tail) | extracted wt | match")
	for _, hh := range []int{1, 2, 3} {
		for _, th := range []int{1, 2, 3} {
			p := scenario.Figure3Params{HeadHops: hh, TailHops: th, L: 2, U: 5, GoTime: 1}
			sc := scenario.Figure3(p)
			r, err := sc.Simulate(sim.Eager{})
			if err != nil {
				return err
			}
			gb := bounds.NewBasic(r)
			head := run.BasicNode{Proc: sc.Proc("HEAD"), Index: 1}
			tail := run.BasicNode{Proc: sc.Proc("TAIL"), Index: 1}
			if !r.Appears(head) || !r.Appears(tail) {
				return fmt.Errorf("hh=%d th=%d: chain did not complete", hh, th)
			}
			_, weight, found, err := pattern.ExtractBasic(gb, tail, head)
			if err != nil || !found {
				return fmt.Errorf("hh=%d th=%d: extract: %v", hh, th, err)
			}
			want := 2*hh - 5*th
			ok := weight == want
			fmt.Printf("%9d | %9d | %7d | %7d | %12d | %v\n", hh, th, 2*hh, 5*th, weight, ok)
			if !ok {
				return fmt.Errorf("hh=%d th=%d: wt %d != %d", hh, th, weight, want)
			}
		}
	}
	return nil
}

// expFigure4 reproduces the three-fork sigma-visible zigzag.
func expFigure4(cfg config) error {
	p := scenario.DefaultFigure4()
	sc := scenario.Figure4(p)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		return err
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		return err
	}
	if !out.Acted {
		return fmt.Errorf("B never acted")
	}
	if err := out.Witness.VerifyVisible(r); err != nil {
		return fmt.Errorf("witness: %w", err)
	}
	fmt.Printf("B acted at t=%d (a at t=%d), knowing a bound of %d\n", out.ActTime, out.ATime, out.KnownBound)
	fmt.Println("sigma-visible witness:")
	fmt.Print(viz.Zigzag(r.Net(), &out.Witness.Zigzag))
	if out.Witness.Len() < 2 {
		return fmt.Errorf("witness has %d forks, want a multi-fork pattern", out.Witness.Len())
	}
	return nil
}

// expFigure6 prints the bounds-graph edges induced by one delivery.
func expFigure6(cfg config) error {
	sc := scenario.Figure6(2, 5)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		return err
	}
	gb := bounds.NewBasic(r)
	send := run.BasicNode{Proc: 1, Index: 1}
	recv := run.BasicNode{Proc: 2, Index: 1}
	wf, sf, _, err := gb.LongestBetween(send, recv)
	if err != nil {
		return err
	}
	wb, sb, _, err := gb.LongestBetween(recv, send)
	if err != nil {
		return err
	}
	fmt.Printf("delivery i@%d => j@%d on channel [2,5]\n", r.MustTime(send), r.MustTime(recv))
	fmt.Printf("forward constraint (weight L): %+d\n%s", wf, viz.Steps(sf))
	fmt.Printf("backward constraint (weight -U): %+d\n%s", wb, viz.Steps(sb))
	if wf != 2 || wb != -5 {
		return fmt.Errorf("edges (%d, %d) != (2, -5)", wf, wb)
	}
	return nil
}

// expFigure7 prints the GB path that justifies Equation (1).
func expFigure7(cfg config) error {
	p := scenario.DefaultFigure2()
	sc := scenario.Figure2a(p)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		return err
	}
	w, err := sc.Task.Wire(r)
	if err != nil {
		return err
	}
	bNode := run.BasicNode{Proc: sc.Proc("B"), Index: 1}
	gb := bounds.NewBasic(r)
	weight, steps, found, err := gb.LongestBetween(w.ABasic, bNode)
	if err != nil || !found {
		return fmt.Errorf("no path: %v", err)
	}
	names := map[model.ProcID]string{
		sc.Proc("C"): "C", sc.Proc("E"): "E", sc.Proc("D"): "D",
		sc.Proc("A"): "A", sc.Proc("B"): "B",
	}
	fmt.Println(viz.Timeline(r, names, 16))
	fmt.Printf("longest GB path a -> b (weight %+d):\n%s", weight, viz.Steps(steps))
	return nil
}

// expFigure8 prints the anatomy of the extended bounds graph at B's
// decision node in the Figure 2b run.
func expFigure8(cfg config) error {
	p := scenario.DefaultFigure2()
	sc := scenario.Figure2b(p)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		return err
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		return err
	}
	if !out.Acted {
		return fmt.Errorf("B never acted")
	}
	ext, err := bounds.NewExtended(r, out.ActNode)
	if err != nil {
		return err
	}
	fmt.Print(viz.ExtendedStats(ext))
	return nil
}
