// Command zigzag-sim runs one of the canonical scenarios and prints its
// timeline, the coordination outcome and the justifying zigzag pattern.
//
// Usage:
//
//	zigzag-sim [-scenario name] [-policy eager|lazy|random] [-seed n]
//	           [-x n] [-timeline n] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/trace"
	"github.com/clockless/zigzag/internal/viz"
)

func scenarios(x int) map[string]*scenario.Scenario {
	f1 := scenario.DefaultFigure1()
	f2 := scenario.DefaultFigure2()
	f4 := scenario.DefaultFigure4()
	if x != 0 {
		f1.X, f2.X, f4.X = x, x, x
	}
	hold := 3
	lead := 4
	holdCirc := 6
	if x != 0 {
		hold, lead, holdCirc = x, x, x
	}
	return map[string]*scenario.Scenario{
		"figure1":  scenario.Figure1(f1),
		"figure2a": scenario.Figure2a(f2),
		"figure2b": scenario.Figure2b(f2),
		"figure3":  scenario.Figure3(scenario.DefaultFigure3()),
		"figure4":  scenario.Figure4(f4),
		"figure6":  scenario.Figure6(2, 5),
		"trains":   scenario.Trains(hold),
		"takeoff":  scenario.Takeoff(lead),
		"circuits": scenario.Circuits(holdCirc),
	}
}

func main() {
	var (
		name     = flag.String("scenario", "figure2b", "scenario to run")
		policy   = flag.String("policy", "lazy", "delivery policy: eager, lazy or random")
		seed     = flag.Int64("seed", 1, "seed for the random policy")
		x        = flag.Int("x", 0, "override the task's required separation (0 keeps the default)")
		timeline = flag.Int("timeline", 32, "timeline window to render")
		list     = flag.Bool("list", false, "list scenarios and exit")
		dump     = flag.String("dump", "", "write the recorded run as JSON to this file")
	)
	flag.Parse()
	all := scenarios(*x)
	if *list {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-9s %s\n", n, all[n].Description)
		}
		return
	}
	sc, ok := all[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (use -list)\n", *name)
		os.Exit(2)
	}
	var pol sim.Policy
	switch *policy {
	case "eager":
		pol = sim.Eager{}
	case "lazy":
		pol = sim.Lazy{}
	case "random":
		pol = sim.NewRandom(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	r, err := sc.Simulate(pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.WriteRun(f, r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("run written to %s\n", *dump)
	}
	fmt.Printf("scenario %s under policy %s\n%s\n\n", sc.Name, pol.Name(), sc.Description)
	names := make(map[model.ProcID]string, len(sc.Roles))
	for role, p := range sc.Roles {
		names[p] = role
	}
	fmt.Println(viz.Timeline(r, names, model.Time(*timeline)))

	if sc.Task == nil {
		return
	}
	fmt.Printf("task: %s with x=%d (A=%s, B=%s, C=%s)\n",
		sc.Task.Kind, sc.Task.X, names[sc.Task.A], names[sc.Task.B], names[sc.Task.C])
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !out.Acted {
		fmt.Println("Protocol 2: B cannot act — the required bound is not knowable on this network.")
		return
	}
	fmt.Printf("Protocol 2: B acted at t=%d (a at t=%d, gap %+d), knowing a bound of %d\n",
		out.ActTime, out.ATime, out.Gap, out.KnownBound)
	fmt.Println("justifying sigma-visible zigzag:")
	fmt.Print(viz.Zigzag(r.Net(), &out.Witness.Zigzag))
	if err := out.Witness.VerifyVisible(r); err != nil {
		fmt.Fprintf(os.Stderr, "witness verification failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("witness verified ✔")

	ext, err := bounds.NewExtended(r, out.ActNode)
	if err == nil {
		fmt.Println()
		fmt.Print(viz.ExtendedStats(ext))
	}

	base, err := sc.Task.RunBaseline(r)
	if err == nil {
		if base.Acted {
			fmt.Printf("asynchronous baseline: acted at t=%d (%+d vs optimal)\n",
				base.ActTime, base.ActTime-out.ActTime)
		} else {
			fmt.Println("asynchronous baseline: never acts on this network")
		}
	}
}
