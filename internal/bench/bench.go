// Package bench defines the repository's scaling benchmark bodies once, so
// that the root benchmark suite (go test -bench) and the perf-trajectory
// exporter (cmd/bench-export, which runs them via testing.Benchmark and
// writes BENCH_<date>.json) measure exactly the same workloads.
package bench

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/live"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/sweep"
	"github.com/clockless/zigzag/internal/workload"
)

// Case is one benchmark cell: a name like "ScalingLive/n=16" and a body
// runnable both under go test -bench and testing.Benchmark.
type Case struct {
	Name string
	Run  func(b *testing.B)
}

// instance generates the standard scaling workload for n processes.
func instance(n int) *workload.Instance {
	cfg := workload.DefaultConfig(int64(n))
	cfg.Procs = n
	cfg.ExtraChannels = 2 * n
	return workload.MustGenerate(cfg)
}

// ScalingLive measures the goroutine-per-process live engine (no agents —
// the environment and FFIP relay cost alone) on the standard scaling
// workload.
func ScalingLive(n int) Case {
	return Case{
		Name: fmt.Sprintf("ScalingLive/n=%d", n),
		Run: func(b *testing.B) {
			in := instance(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := live.Run(live.Config{
					Net: in.Net, Horizon: in.Horizon,
					Policy: sim.NewRandom(int64(i)), Externals: in.Externals,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Run.NumNodes() == 0 {
					b.Fatal("empty run")
				}
			}
		},
	}
}

// protocol2Task wires the standard coordination task for the Protocol2
// scaling benchmarks: C triggers A over the instance's first channel and B
// (a third process) watches for an unattainably large separation — so the
// agent re-queries its growing view at every single state, which is
// exactly the per-state engine cost the benchmark isolates.
func protocol2Task(in *workload.Instance) coord.Task {
	a := in.Net.Arcs()[0]
	task := coord.Task{Kind: coord.Late, X: 1 << 20, C: a.From, A: a.To, GoTime: 1}
	for _, p := range in.Net.Procs() {
		if p != task.A && p != task.C {
			task.B = p
			break
		}
	}
	return task
}

// StateBatch is one recorded receive batch of an observed process: the
// receipts and external labels whose absorption creates one new state of
// its view. Payload snapshots are immutable and shared with the
// capture-time evolution, so recorded batches can be re-absorbed into
// fresh views any number of times — the replay fixture behind the
// Protocol2 benchmark bodies and the engine-tier differential tests
// (internal/bounds's external test package imports it rather than keeping
// its own copy of the replay loop).
type StateBatch struct {
	Proc      model.ProcID
	Receipts  []run.Receipt
	Externals []string
}

// ReplayBatches reconstructs the receive batches of every observed process
// from a recorded run, in global (time, process) order, with payload
// snapshots taken from per-process views evolved in lockstep — the exact
// payload structure (shared source identities, prefix-extending logs) the
// live engine produces, so view merges hit the same watermark fast path.
// It also returns the observed processes' fully-evolved views, for
// harnesses that subscribe fresh engines to a finished run.
func ReplayBatches(r *run.Run, observed map[model.ProcID]bool) ([]StateBatch, map[model.ProcID]*run.View) {
	net := r.Net()
	views := make([]*run.View, net.N())
	for _, p := range net.Procs() {
		views[p-1] = run.NewLocalView(net, p)
	}
	snaps := make(map[run.BasicNode]*run.Snapshot)
	var out []StateBatch
	for t := model.Time(1); t <= r.Horizon(); t++ {
		for _, p := range net.Procs() {
			node := r.NodeAt(p, t)
			if node.IsInitial() || r.MustTime(node) != t {
				continue
			}
			var receipts []run.Receipt
			for _, d := range r.Inbox(node) {
				receipts = append(receipts, run.Receipt{From: d.From, Payload: snaps[d.From]})
			}
			var externals []string
			for _, e := range r.ExternalsAt(node) {
				externals = append(externals, e.Label)
			}
			if _, err := views[p-1].Absorb(receipts, externals); err != nil {
				panic(err)
			}
			snaps[node] = views[p-1].Snapshot()
			if observed[p] {
				out = append(out, StateBatch{Proc: p, Receipts: receipts, Externals: externals})
			}
		}
	}
	final := make(map[model.ProcID]*run.View, len(observed))
	for p := range observed {
		final[p] = views[p-1]
	}
	return out, final
}

// replayBatches is ReplayBatches for a single benchmarked process.
func replayBatches(r *run.Run, bproc model.ProcID) []StateBatch {
	batches, _ := ReplayBatches(r, map[model.ProcID]bool{bproc: true})
	return batches
}

// protocol2 measures the per-state online decision loop of Protocol 2 for
// B over a recorded scaling run: absorb each receive batch into B's view
// and let the agent decide, under the selected engine. Only the engines
// differ between the Online and Rebuild variants; the replayed view
// maintenance is identical.
func protocol2(n int, name string, rebuild bool) Case {
	return Case{
		Name: fmt.Sprintf("%s/n=%d", name, n),
		Run: func(b *testing.B) {
			in := instance(n)
			task := protocol2Task(in)
			r, err := sim.Simulate(sim.Config{
				Net: in.Net, Horizon: in.Horizon, Policy: sim.NewRandom(11),
				Externals: sim.GoAt(task.C, task.GoTime, "go"),
			})
			if err != nil {
				b.Fatal(err)
			}
			batches := replayBatches(r, task.B)
			if len(batches) == 0 {
				b.Fatal("B never moves")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent := &live.Protocol2{Task: task, Rebuild: rebuild}
				view := run.NewLocalView(in.Net, task.B)
				for bi := range batches {
					if _, err := view.Absorb(batches[bi].Receipts, batches[bi].Externals); err != nil {
						b.Fatal(err)
					}
					agent.OnState(view, batches[bi].Externals)
				}
				if err := agent.Err(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(batches)), "states")
		},
	}
}

// protocol2Early measures the per-state decision loop of an EARLY-kind
// Protocol2 agent over the same recorded scaling run as protocol2: the
// query source is B's moving state while the target stays fixed on A's
// node, so the forward (fixed-source) cache misses at every state and the
// engines' reverse (fixed-target) caches carry the load. rebuild selects
// the fresh-build-per-state baseline; shared routes the agent through a
// bounds.Shared handle instead of a private bounds.Online.
func protocol2Early(n int, name string, rebuild, shared bool) Case {
	return Case{
		Name: fmt.Sprintf("%s/n=%d", name, n),
		Run: func(b *testing.B) {
			in := instance(n)
			task := protocol2Task(in)
			task.Kind = coord.Early
			r, err := sim.Simulate(sim.Config{
				Net: in.Net, Horizon: in.Horizon, Policy: sim.NewRandom(11),
				Externals: sim.GoAt(task.C, task.GoTime, "go"),
			})
			if err != nil {
				b.Fatal(err)
			}
			batches := replayBatches(r, task.B)
			if len(batches) == 0 {
				b.Fatal("B never moves")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent := &live.Protocol2{Task: task, Rebuild: rebuild}
				if shared {
					agent.Shared = bounds.NewShared(in.Net)
				}
				view := run.NewLocalView(in.Net, task.B)
				for bi := range batches {
					if _, err := view.Absorb(batches[bi].Receipts, batches[bi].Externals); err != nil {
						b.Fatal(err)
					}
					agent.OnState(view, batches[bi].Externals)
				}
				if err := agent.Err(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(batches)), "states")
		},
	}
}

// protocol2Multi measures m concurrent Protocol2 agents deciding over ONE
// recorded multi-agent run — the workload the shared per-run engine
// amortizes. Every agent's required separation is raised beyond
// knowability, so each re-queries its growing view at every one of its
// states; only the engine configuration differs between the variants:
// shared=true subscribes every agent to one bounds.Shared engine (one
// standing graph, per-agent frontier handles), shared=false gives each
// agent its own incremental bounds.Online engine (the PR-3 configuration
// the acceptance criterion compares against).
func protocol2Multi(m int, name string, shared bool) Case {
	return Case{
		Name: fmt.Sprintf("%s/m=%d", name, m),
		Run: func(b *testing.B) {
			sc := scenario.MultiAgent(m)
			tasks := append([]coord.Task(nil), sc.Tasks...)
			observed := make(map[model.ProcID]bool, m)
			for i := range tasks {
				tasks[i].X = 1 << 20 // unknowable: query at every state
				observed[tasks[i].B] = true
			}
			r, err := sim.Simulate(sim.Config{
				Net: sc.Net, Horizon: sc.Horizon, Policy: sim.NewRandom(11),
				Externals: sc.Externals,
			})
			if err != nil {
				b.Fatal(err)
			}
			batches, _ := ReplayBatches(r, observed)
			if len(batches) == 0 {
				b.Fatal("no agent ever moves")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var eng *bounds.Shared
				if shared {
					eng = bounds.NewShared(sc.Net)
				}
				agents := make(map[model.ProcID]*live.Protocol2, m)
				views := make(map[model.ProcID]*run.View, m)
				for j := range tasks {
					agents[tasks[j].B] = &live.Protocol2{Task: tasks[j], Shared: eng}
					views[tasks[j].B] = run.NewLocalView(sc.Net, tasks[j].B)
				}
				for bi := range batches {
					p := batches[bi].Proc
					if _, err := views[p].Absorb(batches[bi].Receipts, batches[bi].Externals); err != nil {
						b.Fatal(err)
					}
					agents[p].OnState(views[p], batches[bi].Externals)
				}
				for _, agent := range agents {
					if err := agent.Err(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(batches)), "states")
		},
	}
}

// sweepNetwork measures the knowledge-layer cost of a block of live
// multi-agent sweep cells over ONE topology — the workload the
// network-lifetime engine tier (bounds.NetworkEngine) amortizes. Each cell
// stamps out a per-run Shared engine, subscribes one handle per agent to
// that agent's fully-grown view, absorbs the run and answers a knowledge
// query, then releases the handle. With shared=true all cells go through
// one NetworkEngine, as sweep.Grid arranges: the aux psi band and its E”'
// adjacency are cloned rather than rebuilt, presizing hints are shared, and
// released scratches are re-leased by the next cell. With shared=false
// every cell re-derives the network tier — what NewShared cost before the
// hierarchy existed, and the rebuild-per-cell baseline the acceptance
// criterion compares against.
func sweepNetwork(m int, name string, shared bool) Case {
	const cells = 6
	return Case{
		Name: fmt.Sprintf("%s/m=%d", name, m),
		Run: func(b *testing.B) {
			sc := scenario.MultiAgent(m)
			observed := make(map[model.ProcID]bool, len(sc.Tasks))
			for i := range sc.Tasks {
				observed[sc.Tasks[i].B] = true
			}
			r, err := sim.Simulate(sim.Config{
				Net: sc.Net, Horizon: sc.Horizon, Policy: sim.NewRandom(11),
				Externals: sc.Externals,
			})
			if err != nil {
				b.Fatal(err)
			}
			_, views := ReplayBatches(r, observed)
			var eng *bounds.NetworkEngine
			if shared {
				eng = bounds.NewNetworkEngine(sc.Net)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < cells; c++ {
					cellEng := eng
					if !shared {
						cellEng = bounds.NewNetworkEngine(sc.Net)
					}
					s := cellEng.NewRun()
					for j := range sc.Tasks {
						v := views[sc.Tasks[j].B]
						h, err := s.NewHandle(v)
						if err != nil {
							b.Fatal(err)
						}
						sigma := run.At(v.Origin())
						if _, _, err := h.KnowledgeWeight(sigma, sigma); err != nil {
							b.Fatal(err)
						}
						h.Release()
					}
				}
			}
			b.ReportMetric(cells, "cells")
		},
	}
}

// sweepSeeded measures a seed-scaling block of live multi-agent sweep cells
// under a DETERMINISTIC policy: every seed records the identical run, which
// is exactly the redundancy the content-addressed standing-prefix tier
// (bounds.PrefixEngine) collapses. Each cell stamps a per-run Shared,
// subscribes one handle per agent to that agent's fully-grown view, answers
// a knowledge query per task, and releases. With prefix=true the cells route
// through NewRunAt with the pre-simulated run fingerprint, as sweep.Grid
// arranges for deterministic live cells: the first seed misses and freezes
// the fully-absorbed standing graph, every later seed stamps the frozen
// prefix instead of re-absorbing the run. With prefix=false every cell
// absorbs from scratch through NewRun — the shared-network baseline the
// acceptance criterion compares against. The engine is rebuilt every
// iteration so one op prices a complete block: network-tier build plus one
// miss plus seeds-1 hits (or seeds full absorptions for the baseline).
func sweepSeeded(m, seeds int, name string, prefix bool) Case {
	return Case{
		Name: fmt.Sprintf("%s/m=%d/seeds=%d", name, m, seeds),
		Run: func(b *testing.B) {
			sc := scenario.MultiAgent(m)
			observed := make(map[model.ProcID]bool, len(sc.Tasks))
			for i := range sc.Tasks {
				observed[sc.Tasks[i].B] = true
			}
			r, err := sc.Simulate(nil)
			if err != nil {
				b.Fatal(err)
			}
			_, views := ReplayBatches(r, observed)
			fp := r.Fingerprint()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := bounds.NewNetworkEngine(sc.Net)
				for c := 0; c < seeds; c++ {
					var s *bounds.Shared
					if prefix {
						s, _ = eng.NewRunAt(fp)
					} else {
						s = eng.NewRun()
					}
					for j := range sc.Tasks {
						v := views[sc.Tasks[j].B]
						h, err := s.NewHandle(v)
						if err != nil {
							b.Fatal(err)
						}
						sigma := run.At(v.Origin())
						if _, _, err := h.KnowledgeWeight(sigma, sigma); err != nil {
							b.Fatal(err)
						}
						h.Release()
					}
					if prefix {
						s.CommitPrefix()
					}
				}
			}
			b.ReportMetric(float64(seeds), "cells")
		},
	}
}

// sweepLive measures one COMPLETE live sweep cell end to end — the
// policy-driven environment, FFIP flooding, every process's view
// maintenance and every Protocol2 decision — through the selected execution
// engine: the goroutine-free replay drive (recorded batches, no channels)
// or the goroutine-per-process environment it replaces as the sweep
// default. The NetworkEngine is built outside the timer, as sweep.Grid
// amortizes it across a block; each iteration is one full cell under a
// fresh seeded random policy, so the pair prices exactly what the sweep's
// live grid dimension pays per cell.
func sweepLive(m int, name string, replay bool) Case {
	return Case{
		Name: fmt.Sprintf("%s/m=%d", name, m),
		Run: func(b *testing.B) {
			sc := scenario.MultiAgent(m)
			eng := bounds.NewNetworkEngine(sc.Net)
			exec := live.Run
			if replay {
				exec = live.Replay
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agents, agentMap := live.NewTaskAgents(sc.TaskList())
				res, err := exec(live.Config{
					Net: sc.Net, Horizon: sc.Horizon, Policy: sim.NewRandom(int64(i)),
					Externals: sc.Externals, Agents: agentMap, Engine: eng,
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := range agents {
					if err := agents[j].Err(); err != nil {
						b.Fatal(err)
					}
				}
				if res.Run.NumNodes() == 0 {
					b.Fatal("empty run")
				}
			}
		},
	}
}

// SweepReplayLive is one goroutine-free replay live cell per op: the
// execution mode full-registry live sweeps run under by default.
func SweepReplayLive(m int) Case { return sweepLive(m, "SweepReplayLive", true) }

// SweepGoroutineLive is the goroutine-per-process cell recorded alongside
// SweepReplayLive: the identical workload through the channel-synchronized
// environment, kept as the replay mode's differential oracle.
func SweepGoroutineLive(m int) Case { return sweepLive(m, "SweepGoroutineLive", false) }

// SweepSharedNetwork is the cross-run amortization benchmark: a block of
// live-style multi-agent sweep cells all served by one per-network
// knowledge engine.
func SweepSharedNetwork(m int) Case { return sweepNetwork(m, "SweepSharedNetwork", true) }

// SweepPrefixShared is the seed-scaling benchmark of the standing-prefix
// tier: seeds deterministic cells over one network, the first freezing the
// absorbed standing graph and the rest stamping the frozen prefix.
func SweepPrefixShared(m, seeds int) Case { return sweepSeeded(m, seeds, "SweepPrefixShared", true) }

// SweepSharedNetworkSeeds is the prefix-blind baseline recorded alongside
// SweepPrefixShared: identical deterministic cells, each absorbing the run
// from scratch through the shared network engine.
func SweepSharedNetworkSeeds(m, seeds int) Case {
	return sweepSeeded(m, seeds, "SweepSharedNetwork", false)
}

// SweepRebuildNetwork is the rebuild-per-cell baseline recorded alongside
// SweepSharedNetwork: identical cells, each re-deriving the network tier.
func SweepRebuildNetwork(m int) Case { return sweepNetwork(m, "SweepRebuildNetwork", false) }

// Protocol2Shared is the shared-engine multi-agent decision loop: one
// bounds.Shared standing graph serves all m agents.
func Protocol2Shared(m int) Case { return protocol2Multi(m, "Protocol2Shared", true) }

// Protocol2MultiOnline is the per-agent-engine baseline recorded alongside
// Protocol2Shared: identical workload, m independent bounds.Online engines.
func Protocol2MultiOnline(m int) Case { return protocol2Multi(m, "Protocol2MultiOnline", false) }

// Protocol2Online is the end-to-end online coordination decision with the
// incremental bounds.Online engine: every state of B pays only for the
// view's growth.
func Protocol2Online(n int) Case { return protocol2(n, "Protocol2Online", false) }

// Protocol2Rebuild is the rebuild-per-state baseline recorded alongside
// Protocol2Online: identical workload, but B reconstructs GE(r, sigma)
// from scratch at every state.
func Protocol2Rebuild(n int) Case { return protocol2(n, "Protocol2Rebuild", true) }

// Protocol2EarlyOnline is the Early-kind online decision loop with the
// incremental bounds.Online engine: the moving-source query shape served by
// the engine's reverse (fixed-target) cache.
func Protocol2EarlyOnline(n int) Case { return protocol2Early(n, "Protocol2EarlyOnline", false, false) }

// Protocol2EarlyShared is the Early-kind decision loop through a
// bounds.Shared handle — the reverse cache under the restricted standing
// graph.
func Protocol2EarlyShared(n int) Case { return protocol2Early(n, "Protocol2EarlyShared", false, true) }

// Protocol2EarlyRebuild is the fresh-build-per-state baseline recorded
// alongside the Early variants.
func Protocol2EarlyRebuild(n int) Case {
	return protocol2Early(n, "Protocol2EarlyRebuild", true, false)
}

// ScalingSimulate measures lockstep simulator throughput (the B1 row). The
// nodes metric is the determinism guard: it must stay identical across
// perf-only changes.
func ScalingSimulate(n int) Case {
	return Case{
		Name: fmt.Sprintf("ScalingSimulate/n=%d", n),
		Run: func(b *testing.B) {
			in := instance(n)
			var nodes int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := in.Simulate(sim.NewRandom(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				nodes = r.NumNodes()
			}
			b.ReportMetric(float64(nodes), "nodes")
		},
	}
}

// ScalingBasicGraph measures dense GB(r) construction (the B1 row).
func ScalingBasicGraph(n int) Case {
	return Case{
		Name: fmt.Sprintf("ScalingBasicGraph/n=%d", n),
		Run: func(b *testing.B) {
			in := instance(n)
			r, err := in.Simulate(sim.NewRandom(5))
			if err != nil {
				b.Fatal(err)
			}
			var edges int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				edges = bounds.NewBasic(r).NumEdges()
			}
			if edges == 0 {
				b.Fatal("no edges")
			}
			b.ReportMetric(float64(edges), "edges")
		},
	}
}

// ScalingKnowledge measures one extended-graph build plus knowledge query —
// the per-decision cost of offline Protocol 2.
func ScalingKnowledge(n int) Case {
	return Case{
		Name: fmt.Sprintf("ScalingKnowledge/n=%d", n),
		Run: func(b *testing.B) {
			in := instance(n)
			r, err := in.Simulate(sim.NewRandom(5))
			if err != nil {
				b.Fatal(err)
			}
			window := in.WindowNodes(r)
			sigma := window[len(window)-1]
			ps, err := r.Past(sigma)
			if err != nil {
				b.Fatal(err)
			}
			var theta1 run.GeneralNode
			for _, node := range window {
				if ps.Contains(node) && !node.IsInitial() {
					theta1 = run.At(node)
					break
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ext, err := bounds.NewExtended(r, sigma)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, _, err := ext.KnowledgeWeight(theta1, run.At(sigma)); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
}

// knowsCase measures a page of threshold knowledge queries against a
// standing extended graph — the query shape Protocol2 issues at every
// state — through the weight-only fast path (Knows: one SPFA, one
// comparison, no witness) or the witness-bearing KnowledgeWeight it
// replaced as the threshold-query engine.
func knowsCase(n int, name string, weightOnly bool) Case {
	return Case{
		Name: fmt.Sprintf("%s/n=%d", name, n),
		Run: func(b *testing.B) {
			in := instance(n)
			r, err := in.Simulate(sim.NewRandom(int64(n) * 7))
			if err != nil {
				b.Fatal(err)
			}
			window := in.WindowNodes(r)
			sigma := window[len(window)-1]
			ext, err := bounds.NewExtended(r, sigma)
			if err != nil {
				b.Fatal(err)
			}
			ps := ext.Past()
			var cands []run.GeneralNode
			for _, node := range window {
				if ps.Contains(node) && !node.IsInitial() {
					cands = append(cands, run.At(node))
				}
			}
			if len(cands) > 8 {
				cands = cands[len(cands)-8:]
			}
			if len(cands) < 2 {
				b.Fatal("no query candidates in window")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for ci, t1 := range cands {
					for cj, t2 := range cands {
						if ci == cj {
							continue
						}
						if weightOnly {
							if _, err := ext.Knows(t1, 1, t2); err != nil {
								b.Fatal(err)
							}
						} else {
							_, _, known, err := ext.KnowledgeWeight(t1, t2)
							if err != nil {
								b.Fatal(err)
							}
							_ = known
						}
					}
				}
			}
			b.ReportMetric(float64(len(cands)*(len(cands)-1)), "queries")
		},
	}
}

// KnowsWeightOnly prices the threshold query as Protocol2 now issues it:
// weight-only, zero witness allocation.
func KnowsWeightOnly(n int) Case { return knowsCase(n, "KnowsWeightOnly", true) }

// KnowsWitnessPath is the witness-bearing baseline recorded alongside
// KnowsWeightOnly: the identical queries through KnowledgeWeight, paying
// for predecessor tracking and Step materialization nobody reads.
func KnowsWitnessPath(n int) Case { return knowsCase(n, "KnowsWitnessPath", false) }

// xVariants expands one multi-agent coordination scenario across nx
// separation thresholds, marked as an x-axis family the way sweep.Axes
// marks them (XBase/XValue plus per-task X overrides).
func xVariants(m, nx int) []*scenario.Scenario {
	base := scenario.MultiAgent(m)
	out := make([]*scenario.Scenario, 0, nx)
	for x := 0; x < nx; x++ {
		cp := *base
		cp.Name = fmt.Sprintf("%s@x=%d", base.Name, x)
		cp.XBase = base.Name
		cp.XValue = x
		cp.Tasks = append([]coord.Task(nil), base.Tasks...)
		for j := range cp.Tasks {
			cp.Tasks[j].X = x
		}
		cp.Task = &cp.Tasks[0]
		out = append(out, &cp)
	}
	return out
}

// sweepX measures a complete live sweep over an nx-point x axis of one
// coordination scenario — the grid carve, every execution, agent decisions
// and result assembly — either batched (one execution per (policy, seed)
// answering every x row through KnowsAt grids and fanned results) or
// dedicated (one execution per x, what every multi-x sweep paid before the
// batched knowledge-query plane).
func sweepX(m, nx int, name string, noXBatch bool) Case {
	return Case{
		Name: fmt.Sprintf("%s/m=%d/xs=%d", name, m, nx),
		Run: func(b *testing.B) {
			g := sweep.Grid{
				Live: xVariants(m, nx),
				Policies: []sweep.PolicySpec{
					{Name: "lazy", New: func(int64) sim.Policy { return sim.Lazy{} }, Deterministic: true},
				},
				Seeds:    []int64{1},
				Workers:  1,
				NoXBatch: noXBatch,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := g.Run()
				if err != nil {
					b.Fatal(err)
				}
				for j := range results {
					if results[j].Err != nil {
						b.Fatal(results[j].Err)
					}
				}
			}
			b.ReportMetric(float64(nx), "cells")
		},
	}
}

// SweepBatchedX is the x-collapsed live sweep: one execution answers the
// whole x axis. Acceptance: >= 4x fewer allocs/op and >= 3x lower ns/op
// than SweepPerX at m=16, xs=8.
func SweepBatchedX(m, nx int) Case { return sweepX(m, nx, "SweepBatchedX", false) }

// SweepPerX is the dedicated per-x baseline recorded alongside
// SweepBatchedX: identical grid, one full execution per x value.
func SweepPerX(m, nx int) Case { return sweepX(m, nx, "SweepPerX", true) }

// ExportCases is the perf-trajectory suite written by cmd/bench-export:
// every scaling family at its standard sizes.
func ExportCases() []Case {
	var cases []Case
	for _, n := range []int{4, 8, 16, 32} {
		cases = append(cases, ScalingSimulate(n))
	}
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		cases = append(cases, ScalingBasicGraph(n))
	}
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		cases = append(cases, ScalingKnowledge(n))
	}
	for _, n := range []int{8, 16, 32, 64} {
		cases = append(cases, ScalingLive(n))
	}
	// The rebuild baseline stops at n=32: at n=64 a single rebuild-per-state
	// run takes over a minute, which is exactly the point of the online
	// engine — the online variant covers n=64 on its own.
	for _, n := range []int{8, 16, 32} {
		cases = append(cases, Protocol2Rebuild(n))
	}
	for _, n := range []int{8, 16, 32, 64} {
		cases = append(cases, Protocol2Online(n))
	}
	for _, n := range []int{8, 16, 32} {
		cases = append(cases, Protocol2EarlyRebuild(n))
	}
	for _, n := range []int{8, 16, 32, 64} {
		cases = append(cases, Protocol2EarlyOnline(n))
	}
	for _, n := range []int{8, 16, 32, 64} {
		cases = append(cases, Protocol2EarlyShared(n))
	}
	for _, m := range scenario.MultiAgentSizes {
		cases = append(cases, Protocol2MultiOnline(m))
	}
	for _, m := range scenario.MultiAgentSizes {
		cases = append(cases, Protocol2Shared(m))
	}
	for _, m := range []int{4, 8} {
		cases = append(cases, SweepRebuildNetwork(m))
	}
	for _, m := range []int{4, 8} {
		cases = append(cases, SweepSharedNetwork(m))
	}
	for _, seeds := range []int{4, 16, 64} {
		cases = append(cases, SweepSharedNetworkSeeds(4, seeds))
		cases = append(cases, SweepPrefixShared(4, seeds))
	}
	// The live-cell execution pair is interleaved per m — oracle then
	// replay back to back — so each comparison's two cells run under the
	// same heap and machine conditions.
	for _, m := range scenario.MultiAgentSizes {
		cases = append(cases, SweepGoroutineLive(m))
		cases = append(cases, SweepReplayLive(m))
	}
	// The threshold-query and x-axis pairs are interleaved the same way:
	// baseline then fast path back to back.
	for _, n := range []int{8, 16, 32, 64} {
		cases = append(cases, KnowsWitnessPath(n))
		cases = append(cases, KnowsWeightOnly(n))
	}
	for _, nx := range []int{4, 8} {
		cases = append(cases, SweepPerX(16, nx))
		cases = append(cases, SweepBatchedX(16, nx))
	}
	return cases
}
