package faults

import (
	"fmt"

	"github.com/clockless/zigzag/internal/model"
)

// window is an inclusive send-time interval a channel fault applies to.
type window struct {
	a, b model.Time
}

func (w window) contains(t model.Time) bool { return w.a <= t && t <= w.b }

// dlRule is a deadline fault compiled onto one channel.
type dlRule struct {
	window
	slack int
}

// Injector executes one Plan against one (network, horizon) pair. It is the
// single source of truth all three execution modes consult at identical hook
// points — schedule time (Dead destinations, SendDrop, Delay), delivery time
// (Deliver, Discard) and state time (DegradedAt) — so the modes cannot drift.
//
// Besides applying the plan it maintains the conservative taint frontier:
// taintedAt[p] is the earliest tick at which p's causal past may include a
// claim about a message the plan invalidated, and silencedAt[p] the earliest
// tick at which p has provably NOT received something the bounds promised it
// by. A process is degraded once either frontier has passed. The frontiers
// are seeded clairvoyantly from the static plan (a sender is tainted from
// the start of any window in which its sends can be dropped, delayed or
// discarded) and then propagated causally along real deliveries, which makes
// them monotone min-updates — commutative, hence order-independent across
// the modes' different per-tick processing orders.
//
// An Injector is single-run, single-goroutine state: create one per
// execution via NewInjector and do not share it.
type Injector struct {
	net *model.Network
	hor model.Time

	// Per-process frontiers; model.Infinity = never.
	crashAt    []model.Time
	taintedAt  []model.Time
	silencedAt []model.Time

	// Per-channel compiled rules, indexed by ChanID.
	link [][]window
	dl   [][]dlRule

	violations []*Violation
}

// NewInjector validates the plan against the network and horizon, compiles
// its channel rules and seeds the taint frontier. A plan naming an unknown
// process or channel, or carrying an empty window or non-positive slack,
// yields an ErrBadPlan-wrapped error.
func NewInjector(p *Plan, net *model.Network, hor model.Time) (*Injector, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil plan", ErrBadPlan)
	}
	if net == nil || hor < 1 {
		return nil, fmt.Errorf("%w: need a network and a positive horizon", ErrBadPlan)
	}
	n := net.N()
	inj := &Injector{
		net:        net,
		hor:        hor,
		crashAt:    make([]model.Time, n+1),
		taintedAt:  make([]model.Time, n+1),
		silencedAt: make([]model.Time, n+1),
		link:       make([][]window, len(net.Arcs())),
		dl:         make([][]dlRule, len(net.Arcs())),
	}
	// Process ids are 1-based; index 0 stays at its zero value unused.
	for i := 0; i <= n; i++ {
		inj.crashAt[i] = model.Infinity
		inj.taintedAt[i] = model.Infinity
		inj.silencedAt[i] = model.Infinity
	}
	minT := func(dst *model.Time, t model.Time) {
		if t < *dst {
			*dst = t
		}
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case KindCrash:
			if !net.ValidProc(f.Proc) {
				return nil, fmt.Errorf("%w: %s: unknown process", ErrBadPlan, f)
			}
			if f.A < 1 {
				return nil, fmt.Errorf("%w: %s: crash tick must be >= 1", ErrBadPlan, f)
			}
			minT(&inj.crashAt[f.Proc], f.A)
		case KindLinkDown, KindDeadline:
			id := net.ChanIDOf(f.From, f.To)
			if id == model.NoChan {
				return nil, fmt.Errorf("%w: %s: no such channel", ErrBadPlan, f)
			}
			a, b := f.A, f.B
			if b == 0 {
				b = hor
			}
			if a < 1 || b < a {
				return nil, fmt.Errorf("%w: %s: empty window", ErrBadPlan, f)
			}
			if f.Kind == KindLinkDown {
				inj.link[id] = append(inj.link[id], window{a, b})
			} else {
				if f.Slack < 1 {
					return nil, fmt.Errorf("%w: %s: slack must be >= 1", ErrBadPlan, f)
				}
				inj.dl[id] = append(inj.dl[id], dlRule{window{a, b}, f.Slack})
			}
			// Clairvoyant seed: from the window's start the sender may be
			// building knowledge claims on sends the plan will invalidate.
			minT(&inj.taintedAt[f.From], a)
		default:
			return nil, fmt.Errorf("%w: unknown fault kind %d", ErrBadPlan, int(f.Kind))
		}
	}
	// A crash at c invalidates every in-flight message to the crashed
	// process; its senders may have claimed those deliveries as early as
	// send time c-U, so taint each in-neighbor from max(1, c-U).
	arcs := net.Arcs()
	for q := 1; q <= n; q++ {
		c := inj.crashAt[q]
		if c >= model.Infinity {
			continue
		}
		for _, id := range net.InIDs(model.ProcID(q)) {
			a := arcs[id]
			from := c - model.Time(a.Bounds.Upper)
			if from < 1 {
				from = 1
			}
			minT(&inj.taintedAt[a.From], from)
		}
	}
	return inj, nil
}

// Active reports whether the plan carries any fault at all.
func (inj *Injector) Active() bool { return inj != nil }

// MaxSlack returns the largest deadline slack any rule of the plan can add
// on top of a channel's upper bound — the amount by which an injected
// delivery may outlive the network's own latency ceiling. Replay sizes its
// snapshot rings by maxUpper+MaxSlack so late deliveries stay resolvable.
func (inj *Injector) MaxSlack() int {
	max := 0
	for _, rules := range inj.dl {
		for _, r := range rules {
			if r.slack > max {
				max = r.slack
			}
		}
	}
	return max
}

// Dead reports whether process p has crashed at or before tick t. Execution
// modes consult it when scheduling (a message to a dead destination is
// discarded at flood time, identically in all modes) and when recording
// externals.
func (inj *Injector) Dead(p model.ProcID, t model.Time) bool {
	return inj.crashAt[p] <= t
}

// SendDrop reports whether a message sent on channel id at tick t falls in
// a dead-link window. If so it records the Dropped violation (materializing
// at the missed deadline t+U+1) and silences the receiver from that tick —
// the receiver can then prove, once the deadline passes, that the bound was
// broken.
func (inj *Injector) SendDrop(id model.ChanID, from, to model.ProcID, t model.Time) bool {
	for _, w := range inj.link[id] {
		if w.contains(t) {
			bd := inj.net.BoundsOf(id)
			deadline := t + model.Time(bd.Upper)
			inj.violations = append(inj.violations, &Violation{
				Kind: Dropped, Chan: id, From: from, To: to,
				SendTime: t, At: deadline + 1, Bounds: bd,
			})
			if deadline+1 <= inj.hor && deadline+1 < inj.silencedAt[to] {
				inj.silencedAt[to] = deadline + 1
			}
			return true
		}
	}
	return false
}

// Delay returns the latency a message sent on channel id at tick t actually
// achieves: the policy's choice lat, or U+slack if a deadline fault covers
// the send. A delayed delivery silences the receiver from the missed
// deadline t+U+1 — the earliest tick any engine can structurally refute the
// bound (a proof needs a lower-bound path exceeding U, and lower bounds
// never outrun real time), so silencing there guarantees the receiver
// withholds before its knowledge graph turns inconsistent. When the delayed
// delivery would land past the horizon the message is effectively dropped
// and the violation is recorded here (the delivery hook will never see it).
func (inj *Injector) Delay(id model.ChanID, from, to model.ProcID, t model.Time, lat int) int {
	for _, r := range inj.dl[id] {
		if r.contains(t) {
			bd := inj.net.BoundsOf(id)
			lat = bd.Upper + r.slack
			deadline := t + model.Time(bd.Upper)
			if deadline+1 <= inj.hor && deadline+1 < inj.silencedAt[to] {
				inj.silencedAt[to] = deadline + 1
			}
			if t+model.Time(lat) > inj.hor {
				inj.violations = append(inj.violations, &Violation{
					Kind: Dropped, Chan: id, From: from, To: to,
					SendTime: t, At: deadline + 1, Bounds: bd,
				})
			}
			return lat
		}
	}
	return lat
}

// Discard records that a message scheduled to arrive at a crashed process
// was thrown away at recv. Execution modes call it from the flood loop (the
// crash schedule is static, so the discard is known at send time) so the
// arrival never materializes in any mode.
func (inj *Injector) Discard(id model.ChanID, from, to model.ProcID, send, recv model.Time) {
	bd := inj.net.BoundsOf(id)
	inj.violations = append(inj.violations, &Violation{
		Kind: Discarded, Chan: id, From: from, To: to,
		SendTime: send, At: recv, Bounds: bd,
	})
}

// Deliver observes a real delivery: it propagates taint causally (a message
// sent at or after the sender's taint carries the taint to the receiver at
// recv) and, when the delivery itself broke the upper bound, records the
// Late violation, taints the receiver immediately and marks it silenced
// from the missed deadline (it verifiably waited past U).
func (inj *Injector) Deliver(id model.ChanID, from, to model.ProcID, send, recv model.Time) {
	if inj.taintedAt[from] <= send && recv < inj.taintedAt[to] {
		inj.taintedAt[to] = recv
	}
	bd := inj.net.BoundsOf(id)
	if lat := int(recv - send); lat > bd.Upper {
		inj.violations = append(inj.violations, &Violation{
			Kind: Late, Chan: id, From: from, To: to,
			SendTime: send, At: recv, Bounds: bd, Latency: lat,
		})
		if recv < inj.taintedAt[to] {
			inj.taintedAt[to] = recv
		}
		deadline := send + model.Time(bd.Upper)
		if deadline+1 <= inj.hor && deadline+1 < inj.silencedAt[to] {
			inj.silencedAt[to] = deadline + 1
		}
	}
}

// DegradedAt reports whether process p must withhold actions at tick t:
// its causal past may contain plan-invalidated material (tainted), or it
// can prove a promised delivery never came (silenced). Crashing is not
// degradation — a crashed process does not act at all.
func (inj *Injector) DegradedAt(p model.ProcID, t model.Time) bool {
	return inj.taintedAt[p] <= t || inj.silencedAt[p] <= t
}

// DegradeReason builds the typed error a degraded agent reports, wrapping
// ErrBoundViolation with the process and the tick degradation began.
func (inj *Injector) DegradeReason(p model.ProcID, t model.Time) error {
	since, why := inj.taintedAt[p], "knowledge may rest on a violated bound"
	if inj.silencedAt[p] < since {
		since, why = inj.silencedAt[p], "a promised delivery missed its deadline"
	}
	return fmt.Errorf("%w: process %d degraded at tick %d (since tick %d: %s)",
		ErrBoundViolation, p, t, since, why)
}

// Report settles the execution's outcome: violations in canonical order,
// crashed processes, and the processes left degraded (but not crashed) at
// the horizon. Call it once, after the run's final tick.
func (inj *Injector) Report() *Report {
	r := &Report{}
	if len(inj.violations) > 0 {
		r.Violations = make([]*Violation, len(inj.violations))
		copy(r.Violations, inj.violations)
		sortViolations(r.Violations)
	}
	for p := 1; p <= inj.net.N(); p++ {
		if inj.crashAt[p] <= inj.hor {
			r.Crashed = append(r.Crashed, model.ProcID(p))
		} else if inj.DegradedAt(model.ProcID(p), inj.hor) {
			r.Degraded = append(r.Degraded, model.ProcID(p))
		}
	}
	return r
}
