package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMatchFilter(t *testing.T) {
	cases := []struct {
		name, filter string
		want         bool
	}{
		{"Protocol2Shared/m=8", "", true},
		{"Protocol2Shared/m=8", "Protocol2Shared", true},
		{"Protocol2Shared/m=8", "Protocol2MultiOnline", false},
		// The |-alternation: any substring may hit.
		{"Protocol2Shared/m=8", "Protocol2Shared|Protocol2MultiOnline", true},
		{"Protocol2MultiOnline/m=8", "Protocol2Shared|Protocol2MultiOnline", true},
		{"ScalingLive/n=16", "Protocol2Shared|Protocol2MultiOnline", false},
		// Empty alternatives are ignored rather than matching everything.
		{"ScalingLive/n=16", "|", false},
		{"ScalingLive/n=16", "Scaling|", true},
		{"SweepSharedNetwork/m=4", "Sweep", true},
	}
	for _, c := range cases {
		if got := matchFilter(c.name, c.filter); got != c.want {
			t.Errorf("matchFilter(%q, %q) = %v, want %v", c.name, c.filter, got, c.want)
		}
	}
}

// writeSnapshot writes a snapshot JSON the way main does, into dir.
func writeSnapshot(t *testing.T, dir string, snap snapshot) string {
	t.Helper()
	path := filepath.Join(dir, "old.json")
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareSnapshotsDeltas(t *testing.T) {
	old := snapshot{
		Date: "2026-01-01", Benchtime: "1x",
		Results: []result{
			{Name: "A/n=8", NsPerOp: 1000, AllocsPerOp: 100},
			{Name: "B/n=8", NsPerOp: 2000, AllocsPerOp: 50},
			{Name: "Gone/n=8", NsPerOp: 500, AllocsPerOp: 10},
		},
	}
	fresh := snapshot{
		Results: []result{
			{Name: "A/n=8", NsPerOp: 1500, AllocsPerOp: 80}, // +50% ns, -20% allocs
			{Name: "B/n=8", NsPerOp: 1000, AllocsPerOp: 50}, // -50% ns
			{Name: "New/n=8", NsPerOp: 42, AllocsPerOp: 1},  // no baseline
		},
	}
	path := writeSnapshot(t, t.TempDir(), old)

	var buf bytes.Buffer
	regressed, err := compareSnapshots(&buf, path, fresh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("maxRegress=0 must be report-only, got regressed=true")
	}
	out := buf.String()
	for _, want := range []string{
		"comparison against " + path,
		"+50.0%", // A's ns/op delta
		"-20.0%", // A's allocs/op delta
		"-50.0%", // B's ns/op delta
		"(new benchmark, no baseline)",
		"(1 baseline cells not measured in this run)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareSnapshotsMaxRegress(t *testing.T) {
	old := snapshot{Results: []result{
		{Name: "A/n=8", NsPerOp: 1000},
		{Name: "B/n=8", NsPerOp: 1000},
	}}
	fresh := snapshot{Results: []result{
		{Name: "A/n=8", NsPerOp: 1049}, // +4.9%: under the gate
		{Name: "B/n=8", NsPerOp: 900},
	}}
	path := writeSnapshot(t, t.TempDir(), old)

	var buf bytes.Buffer
	if regressed, err := compareSnapshots(&buf, path, fresh, 5); err != nil || regressed {
		t.Fatalf("under-threshold run: regressed=%v err=%v", regressed, err)
	}
	// Push A beyond the gate: the failure path must trip.
	fresh.Results[0].NsPerOp = 1200 // +20%
	buf.Reset()
	regressed, err := compareSnapshots(&buf, path, fresh, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("+20%% ns/op with -max-regress 5 not flagged:\n%s", buf.String())
	}
	// Improvements alone never trip the gate, whatever the threshold.
	fresh.Results[0].NsPerOp = 100
	buf.Reset()
	if regressed, err := compareSnapshots(&buf, path, fresh, 0.001); err != nil || regressed {
		t.Fatalf("improvement flagged as regression: regressed=%v err=%v", regressed, err)
	}
}

func TestCompareSnapshotsBadInput(t *testing.T) {
	if _, err := compareSnapshots(&bytes.Buffer{}, filepath.Join(t.TempDir(), "missing.json"), snapshot{}, 0); err == nil {
		t.Error("missing baseline file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := compareSnapshots(&bytes.Buffer{}, path, snapshot{}, 0); err == nil {
		t.Error("corrupt baseline accepted")
	}
}
