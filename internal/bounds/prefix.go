package bounds

import (
	"sync"
	"sync/atomic"

	"github.com/clockless/zigzag/internal/graph"
)

// DefaultPrefixCapacity is the number of frozen standing prefixes a
// PrefixEngine retains before evicting least-recently-used entries. Sweeps
// touch a handful of distinct runs per network (one per deterministic policy
// class times a few scenario variants), so a small cache already captures
// every cross-seed hit.
const DefaultPrefixCapacity = 32

// EngineStats is a point-in-time snapshot of a NetworkEngine's cheap work
// counters. All counters are cumulative since the engine was built; they are
// maintained with atomic adds on paths that already pay a lock or a graph
// relaxation, so keeping them costs nothing measurable.
type EngineStats struct {
	// Runs counts the Shared engines stamped out (NewRun and NewRunAt both
	// count; prefix hits and misses are disjoint subsets of it).
	Runs int64
	// PrefixHits / PrefixMisses count NewRunAt calls that found / did not
	// find a frozen standing prefix under the requested fingerprint.
	// NewRunAt(0) counts as neither (no fingerprint, nothing to look up).
	PrefixHits   int64
	PrefixMisses int64
	// PrefixEvictions counts frozen prefixes dropped by the LRU cache.
	PrefixEvictions int64
	// CloneBytes approximates the bytes copied stamping standing graphs
	// (adjacency header arrays of every Clone, per graph.CloneBytes).
	CloneBytes int64
	// Relaxations counts successful SPFA relaxations across every knowledge
	// query answered through the engine's handles — the work metric the
	// standing tiers exist to amortize.
	Relaxations int64
	// RevHits / RevRebuilds count reverse-cache (fixed-target, Early-kind)
	// queries served by a warm reverse restart versus a full reverse SPFA
	// over the restricted standing graph.
	RevHits     int64
	RevRebuilds int64
	// BandRefreshes counts auxiliary-band refreshes: reverse relaxations
	// that had to re-derive the psi band because an E'' retirement since the
	// last reverse run may have lowered its distances.
	BandRefreshes int64
	// RevRelaxations counts successful SPFA relaxations spent in reverse
	// (into-target) queries, disjoint from Relaxations.
	RevRelaxations int64
	// ReplayBatches / ReplayChunks count the receive batches driven and the
	// chunk buffers streamed by goroutine-free replay executions subscribed
	// to this engine (live.Replay with Config.Engine set).
	ReplayBatches int64
	ReplayChunks  int64
	// BatchQueries / BatchHits count the batched knowledge-query plane:
	// answers served through handle KnowsAt/QueryBatch grids, and the subset
	// answered from an already-computed distance array (no SPFA of their
	// own). XFanout counts live executions SAVED by x-axis fanout — sweep
	// cells whose per-x rows were derived from another cell's single
	// execution (NoteXFanout).
	BatchQueries int64
	BatchHits    int64
	XFanout      int64
}

// engineStats is the mutable counter block behind EngineStats.
type engineStats struct {
	runs            atomic.Int64
	prefixHits      atomic.Int64
	prefixMisses    atomic.Int64
	prefixEvictions atomic.Int64
	cloneBytes      atomic.Int64
	relaxations     atomic.Int64
	revHits         atomic.Int64
	revRebuilds     atomic.Int64
	bandRefreshes   atomic.Int64
	revRelaxations  atomic.Int64
	replayBatches   atomic.Int64
	replayChunks    atomic.Int64
	batchQueries    atomic.Int64
	batchHits       atomic.Int64
	xFanout         atomic.Int64
}

func (st *engineStats) snapshot() EngineStats {
	return EngineStats{
		Runs:            st.runs.Load(),
		PrefixHits:      st.prefixHits.Load(),
		PrefixMisses:    st.prefixMisses.Load(),
		PrefixEvictions: st.prefixEvictions.Load(),
		CloneBytes:      st.cloneBytes.Load(),
		Relaxations:     st.relaxations.Load(),
		RevHits:         st.revHits.Load(),
		RevRebuilds:     st.revRebuilds.Load(),
		BandRefreshes:   st.bandRefreshes.Load(),
		RevRelaxations:  st.revRelaxations.Load(),
		ReplayBatches:   st.replayBatches.Load(),
		ReplayChunks:    st.replayChunks.Load(),
		BatchQueries:    st.batchQueries.Load(),
		BatchHits:       st.batchHits.Load(),
		XFanout:         st.xFanout.Load(),
	}
}

// frozenPrefix is an immutable snapshot of a Shared engine's standing state:
// the standing graph (aux band, node vertices, successor and delivery edges,
// E”' channel edges), the union frontier, the vertex and restriction
// coordinate tables, and the delivery-dedup state. Per the graph.Clone
// freeze-and-extend contract the graph and the coordinate tables alias the
// donor's backing arrays with zero spare capacity: freezing costs O(n)
// regardless of how many deliveries the run absorbed, the donor may keep
// growing (it only ever appends past the frozen lengths), and every Shared
// later stamped from the snapshot copies on growth instead of writing into
// shared memory.
type frozenPrefix struct {
	g        *graph.Graph
	members  []int
	vertexOf [][]int32
	band     []int32
	idx      []int32
	// delivered and wide are deep copies: absorbDelivery mutates them in
	// place, and a stamped run that absorbs material beyond the frozen
	// prefix (distinct agent sets over an identical run) must not poison
	// its siblings.
	delivered []uint64
	wide      map[int64]struct{}
}

// PrefixEngine is the content-addressed tier between NetworkEngine and
// Shared in the knowledge engine hierarchy
//
//	NetworkEngine (per network topology)
//	  └── PrefixEngine (frozen standing prefixes, keyed by run content)
//	        └── Shared  (per run)
//	              └── Handle (per agent)
//
// It caches frozen standing-prefix snapshots keyed by run fingerprint
// (run.Run.Fingerprint: network content + horizon + the timed event log).
// Identical runs — every seed of a deterministic policy, every policy pair
// that happens to produce the same schedule, re-plays of a recorded run —
// share one fingerprint, so the second and later runs stamp their standing
// graphs from the frozen snapshot (NetworkEngine.NewRunAt) instead of
// re-absorbing every timeline and delivery through handle syncs.
//
// Entries are retained with least-recently-used eviction up to a fixed
// capacity (SetCapacity; DefaultPrefixCapacity initially). The engine is
// safe for concurrent use.
type PrefixEngine struct {
	mu       sync.Mutex
	stats    *engineStats
	capacity int
	entries  map[uint64]*prefixEntry
	// head is the most recently used entry, tail the least.
	head, tail *prefixEntry
}

type prefixEntry struct {
	fp         uint64
	fz         *frozenPrefix
	prev, next *prefixEntry
}

func newPrefixEngine(stats *engineStats) *PrefixEngine {
	return &PrefixEngine{
		stats:    stats,
		capacity: DefaultPrefixCapacity,
		entries:  make(map[uint64]*prefixEntry),
	}
}

// Len returns the number of frozen prefixes currently cached.
func (pe *PrefixEngine) Len() int {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return len(pe.entries)
}

// SetCapacity bounds the cache at capacity entries, evicting
// least-recently-used prefixes immediately if it already holds more.
// Capacities below 1 are treated as 1.
func (pe *PrefixEngine) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	pe.mu.Lock()
	defer pe.mu.Unlock()
	pe.capacity = capacity
	pe.evictOver()
}

// Contains reports whether a prefix is cached under fp, without touching
// recency or the hit/miss counters.
func (pe *PrefixEngine) Contains(fp uint64) bool {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	_, ok := pe.entries[fp]
	return ok
}

// lookup returns the frozen prefix cached under fp, marking it most
// recently used, and counts the hit or miss.
func (pe *PrefixEngine) lookup(fp uint64) (*frozenPrefix, bool) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	en, ok := pe.entries[fp]
	if !ok {
		pe.stats.prefixMisses.Add(1)
		return nil, false
	}
	pe.stats.prefixHits.Add(1)
	pe.unlink(en)
	pe.pushFront(en)
	return en.fz, true
}

// insert caches fz under fp as the most recently used entry, evicting from
// the LRU end if the cache is over capacity. A prefix already cached under
// fp is kept (first writer wins: both snapshots freeze the same run).
func (pe *PrefixEngine) insert(fp uint64, fz *frozenPrefix) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if en, ok := pe.entries[fp]; ok {
		pe.unlink(en)
		pe.pushFront(en)
		return
	}
	en := &prefixEntry{fp: fp, fz: fz}
	pe.entries[fp] = en
	pe.pushFront(en)
	pe.evictOver()
}

// evictOver drops LRU entries until the cache fits. Callers hold pe.mu.
func (pe *PrefixEngine) evictOver() {
	for len(pe.entries) > pe.capacity {
		victim := pe.tail
		pe.unlink(victim)
		delete(pe.entries, victim.fp)
		pe.stats.prefixEvictions.Add(1)
	}
}

func (pe *PrefixEngine) pushFront(en *prefixEntry) {
	en.prev = nil
	en.next = pe.head
	if pe.head != nil {
		pe.head.prev = en
	}
	pe.head = en
	if pe.tail == nil {
		pe.tail = en
	}
}

func (pe *PrefixEngine) unlink(en *prefixEntry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else if pe.head == en {
		pe.head = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else if pe.tail == en {
		pe.tail = en.prev
	}
	en.prev, en.next = nil, nil
}
