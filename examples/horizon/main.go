// Command horizon demonstrates the subtlest inference in the paper — the
// one the extended bounds graph exists for (Section 5.1): a process can
// bound the timing of an event it has NEVER heard about, purely because the
// event is missing from its causal past.
//
// Setup: process I sends J a message on a channel with upper bound U. A
// collector process SIGMA has heard from both I and J — but NOT about the
// delivery of that message. Then the delivery must come after everything
// SIGMA saw of J's timeline, and it comes within U of I's send, so SIGMA
// knows: J's last observed state happened at most U-1 after I's send. No
// message chain carries this fact; it flows through absence.
package main

import (
	"fmt"
	"log"

	zigzag "github.com/clockless/zigzag"
)

func main() {
	const (
		procI = zigzag.ProcID(1)
		procJ = zigzag.ProcID(2)
		sigma = zigzag.ProcID(3)
	)
	net, err := zigzag.NewNetwork(3).
		Chan(procI, procJ, 2, 4). // the channel whose silence is informative
		Chan(procI, sigma, 1, 2).
		Chan(procJ, sigma, 1, 2).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// The adversary delays I's message to J as long as the bounds allow, so
	// the collector provably cannot have heard about its delivery.
	adversary := zigzag.PolicyFunc{ID: "stall-ij", F: func(s zigzag.Send, b zigzag.Bounds) int {
		if s.From == procI && s.To == procJ {
			return b.Upper
		}
		return b.Lower
	}}
	r, err := zigzag.Simulate(zigzag.SimConfig{
		Net:     net,
		Horizon: 40,
		Policy:  adversary,
		Externals: []zigzag.ExternalEvent{
			{Proc: procI, Time: 1, Label: "tick-i"},
			{Proc: procJ, Time: 2, Label: "tick-j"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(zigzag.RenderTimeline(r, map[zigzag.ProcID]string{
		procI: "I", procJ: "J", sigma: "SIGMA",
	}, 12))

	// SIGMA's second state has heard tick-i and tick-j but not the I->J
	// delivery (stalled until t=5).
	node := zigzag.BasicNode{Proc: sigma, Index: 2}
	view, err := zigzag.ViewOf(r, node)
	if err != nil {
		log.Fatal(err)
	}
	ge, err := zigzag.NewExtendedGraphFromView(view) // structure only, no clock
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(zigzag.RenderExtendedStats(ge))

	sigmaI := zigzag.At(zigzag.BasicNode{Proc: procI, Index: 1})
	sigmaJ := zigzag.At(zigzag.BasicNode{Proc: procJ, Index: 1})
	kw, witness, known, err := zigzag.KnowledgeWeight(ge, sigmaJ, sigmaI)
	if err != nil {
		log.Fatal(err)
	}
	if !known {
		log.Fatal("the horizon inference is unavailable?!")
	}
	fmt.Printf("\nSIGMA knows: sigma_J --(%d)--> sigma_I\n", kw)
	fmt.Printf("i.e. J's observed state follows I's send by AT MOST %d time units\n", -kw)
	fmt.Println("(time(sigma_J) <= time(sigma_I) + U - 1), although no message chain")
	fmt.Println("relates the two events in SIGMA's past — the bound flows through absence.")
	fmt.Println("\nwitness (note the fork whose tail retraces the unheard-of delivery):")
	fmt.Print(zigzag.RenderZigzag(net, &witness.Zigzag))
	if err := witness.VerifyVisible(r); err != nil {
		log.Fatalf("witness failed: %v", err)
	}
	fmt.Println("witness verified against the run ✔")
}
