package workload

import (
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DefaultConfig(9))
	b := MustGenerate(DefaultConfig(9))
	if a.Net.String() != b.Net.String() {
		t.Error("same seed produced different networks")
	}
	if len(a.Externals) != len(b.Externals) {
		t.Fatal("external counts differ")
	}
	for i := range a.Externals {
		if a.Externals[i] != b.Externals[i] {
			t.Errorf("external %d differs", i)
		}
	}
}

func TestGenerateStronglyConnected(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		in := MustGenerate(DefaultConfig(seed))
		for _, src := range in.Net.Procs() {
			for _, dst := range in.Net.Procs() {
				if !in.Net.Reachable(src, dst) {
					t.Fatalf("seed %d: %d cannot reach %d", seed, src, dst)
				}
			}
		}
	}
}

func TestGenerateBoundsValid(t *testing.T) {
	in := MustGenerate(DefaultConfig(4))
	for _, ch := range in.Net.Channels() {
		bd, err := in.Net.ChanBounds(ch.From, ch.To)
		if err != nil {
			t.Fatal(err)
		}
		if !bd.Valid() {
			t.Errorf("channel %s has invalid bounds %s", ch, bd)
		}
	}
}

func TestGenerateRejectsTiny(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Procs = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("single-process instance accepted")
	}
}

func TestWindowNodes(t *testing.T) {
	in := MustGenerate(DefaultConfig(2))
	r, err := in.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := in.WindowNodes(r)
	if len(nodes) == 0 {
		t.Fatal("empty window")
	}
	for _, n := range nodes {
		if n.IsInitial() {
			t.Errorf("initial node %s in window", n)
		}
		if tm := r.MustTime(n); tm > in.Window {
			t.Errorf("node %s at %d beyond window %d", n, tm, in.Window)
		}
	}
}

func TestHorizonHasSlack(t *testing.T) {
	in := MustGenerate(DefaultConfig(3))
	minSlack := model.Time((in.Net.N() + 3) * in.Net.MaxUpper())
	if in.Horizon < in.Window+minSlack {
		t.Errorf("horizon %d lacks slack beyond window %d", in.Horizon, in.Window)
	}
}
