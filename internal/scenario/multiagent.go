package scenario

import (
	"fmt"

	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// CoordinationTasks derives up to m concurrent coordination tasks from a
// generated instance, all triggered by ONE go event: C and A are the
// endpoints of the network's first channel (so C's go message has the
// direct channel Definition 1 requires), and each task gives the part of B
// to a different remaining process. Kinds alternate Late/Early and the
// required separations cycle over small values, so a multi-agent run
// exercises both query directions against one shared history. At most
// Procs-2 tasks exist; fewer than m are returned when the network is too
// small. (It lives here rather than in workload because tasks pull in
// coord, which internal/bounds test fixtures must stay below.)
func CoordinationTasks(in *workload.Instance, m int) []coord.Task {
	arcs := in.Net.Arcs()
	if len(arcs) == 0 {
		return nil
	}
	a := arcs[0]
	out := make([]coord.Task, 0, m)
	for _, p := range in.Net.Procs() {
		if len(out) == m {
			break
		}
		if p == a.From || p == a.To {
			continue
		}
		i := len(out)
		task := coord.Task{C: a.From, A: a.To, B: p, GoTime: 1, X: 1 + i%4}
		if i%2 == 0 {
			task.Kind = coord.Late
		} else {
			task.Kind = coord.Early
		}
		out = append(out, task)
	}
	return out
}

// MultiAgentSizes are the agent counts of the multi-agent coordination
// family: the axis of the shared-engine benchmarks and differential tests.
var MultiAgentSizes = []int{2, 4, 8, 16}

// MultiAgent builds the coord-m<m> scenario: a random strongly-connected
// network with m+2 processes, one go event at C, and m concurrent
// coordination tasks — one Protocol2 agent per remaining process, Late and
// Early alternating — all deciding over the same run. It is the workload of
// the shared per-run knowledge engine (bounds.Shared): every agent's view
// is a restriction of one history, so the standing bounds graph is built
// once and each agent pays only its frontier.
func MultiAgent(m int) *Scenario {
	cfg := workload.DefaultConfig(int64(100 + m))
	cfg.Procs = m + 2
	cfg.ExtraChannels = 2 * (m + 2)
	in := workload.MustGenerate(cfg)
	tasks := CoordinationTasks(in, m)
	if len(tasks) != m {
		panic(fmt.Sprintf("scenario: coord-m%d: derived %d tasks", m, len(tasks)))
	}
	roles := map[string]model.ProcID{"C": tasks[0].C, "A": tasks[0].A}
	for i := range tasks {
		roles[fmt.Sprintf("B%d", i+1)] = tasks[i].B
	}
	sc := &Scenario{
		Name: fmt.Sprintf("coord-m%d", m),
		Description: fmt.Sprintf(
			"multi-agent coordination: %d concurrent Protocol2 agents (n=%d, %d channels) on one run",
			m, in.Net.N(), in.Net.NumChannels()),
		Net:       in.Net,
		Externals: sim.GoAt(tasks[0].C, tasks[0].GoTime, "go"),
		Horizon:   in.Horizon,
		Roles:     roles,
		Tasks:     tasks,
	}
	sc.Task = &sc.Tasks[0]
	return sc
}

// MultiAgentFamily returns the full coord-m{2,4,8,16} family.
func MultiAgentFamily() []*Scenario {
	out := make([]*Scenario, 0, len(MultiAgentSizes))
	for _, m := range MultiAgentSizes {
		out = append(out, MultiAgent(m))
	}
	return out
}

// MultiAgentEarly builds the coord-early-m<m> scenario: the same topology
// and run as MultiAgent(m), but every coordination task is Early-kind, so
// all m agents query with a moving source against a fixed target — the
// inverted shape served by the engines' reverse caches. The mixed coord-m
// family keeps both directions in one run; this family isolates the Early
// steady state for benchmarks and differential tests.
func MultiAgentEarly(m int) *Scenario {
	sc := MultiAgent(m)
	sc.Name = fmt.Sprintf("coord-early-m%d", m)
	sc.Description = fmt.Sprintf(
		"multi-agent coordination, all Early-kind: %d concurrent Protocol2 agents (n=%d, %d channels) on one run",
		m, sc.Net.N(), sc.Net.NumChannels())
	for i := range sc.Tasks {
		sc.Tasks[i].Kind = coord.Early
	}
	return sc
}

// MultiAgentEarlyFamily returns the full coord-early-m{2,4,8,16} family.
func MultiAgentEarlyFamily() []*Scenario {
	out := make([]*Scenario, 0, len(MultiAgentSizes))
	for _, m := range MultiAgentSizes {
		out = append(out, MultiAgentEarly(m))
	}
	return out
}

// ReplayHorizonFactor stretches the horizon of the replay-only heavy-tail
// family past the multi-agent baseline. Replay cells stream the schedule in
// bounded chunks, so the factor costs memory nothing; the goroutine
// environment would pay it in channel handshakes per tick.
const ReplayHorizonFactor = 8

// MultiAgentHeavy builds the coord-heavy-m<m> scenario: the topology and
// tasks of MultiAgent(m) at ReplayHorizonFactor times the horizon, made for
// heavy-tailed latency policies (sim.HeavyTail) whose straggler deliveries
// need the longer window to resolve. DefaultPolicy stays nil (sweeps supply
// the policy axis; canonical single runs fall back to Eager). The family is
// deliberately NOT in the registry: it exists for the goroutine-free replay
// live mode, at horizons the goroutine environment can't afford, and the CLI
// appends it to the live grid only when replay mode is selected.
func MultiAgentHeavy(m int) *Scenario {
	sc := MultiAgent(m)
	sc.Name = fmt.Sprintf("coord-heavy-m%d", m)
	sc.Description = fmt.Sprintf(
		"long-horizon heavy-tail coordination: %d concurrent Protocol2 agents (n=%d, %d channels), horizon x%d",
		m, sc.Net.N(), sc.Net.NumChannels(), ReplayHorizonFactor)
	sc.Horizon *= ReplayHorizonFactor
	return sc
}

// ReplayFamily returns the replay-only scenario family: long-horizon
// heavy-tail coordination at a small and a large agent count.
func ReplayFamily() []*Scenario {
	return []*Scenario{MultiAgentHeavy(4), MultiAgentHeavy(16)}
}

// MultiAgentFaulty builds the coord-faulty-m<m>-<family> scenario: the
// topology and tasks of MultiAgent(m) with a fault plan of the named
// faults.NewPlan family injected per seed. Sweep cells running it exercise
// graceful degradation: crashed processes go silent, Protocol2 agents
// behind the taint frontier withhold their action and report Degraded, and
// every injected bound violation surfaces as a typed error in the cell
// result — never a panic, never an early act.
func MultiAgentFaulty(m int, family string) *Scenario {
	sc := MultiAgent(m)
	sc.Name = fmt.Sprintf("coord-faulty-m%d-%s", m, family)
	sc.Description = fmt.Sprintf(
		"fault-injected coordination (%s plans): %d concurrent Protocol2 agents (n=%d, %d channels) under graceful degradation",
		family, m, sc.Net.N(), sc.Net.NumChannels())
	sc.FaultFamily = family
	return sc
}

// FaultyFamily returns the chaos-sweep scenario family: fault-injected
// coordination at a small and a large agent count, across every seeded plan
// family (crash, link, deadline, chaos). Like ReplayFamily it is NOT in the
// registry — faulted cells are live-only and the CLI appends the family to
// the live grid under -sweep-faults.
func FaultyFamily() []*Scenario {
	out := make([]*Scenario, 0, 2*len(faults.Families()))
	for _, m := range []int{4, 16} {
		for _, fam := range faults.Families() {
			out = append(out, MultiAgentFaulty(m, fam))
		}
	}
	return out
}
