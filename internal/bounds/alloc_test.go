package bounds

import (
	"errors"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// TestNewBasicAllocationGuard keeps the dense GB(r) construction
// allocation-light, mirroring sim.TestSimulateAllocationGuard: the graph is
// built in two passes over precomputed degree tables, so the allocation
// count must stay a small constant — vertex/degree tables plus the two
// adjacency backing arrays — independent of how many edges the run
// produces. A regression to per-edge metadata maps or adjacency append
// churn trips this immediately.
func TestNewBasicAllocationGuard(t *testing.T) {
	net := model.MustComplete(6, 1, 5)
	r := sim.MustSimulate(sim.Config{
		Net: net, Horizon: 60, Policy: sim.Lazy{}, Externals: sim.GoAt(1, 1, "go"),
	})
	if len(r.Deliveries()) == 0 {
		t.Fatal("fixture run has no deliveries")
	}
	const limit = 16
	got := testing.AllocsPerRun(20, func() {
		gb := NewBasic(r)
		if gb.NumEdges() == 0 {
			t.Fatal("no edges")
		}
	})
	if got > limit {
		t.Errorf("NewBasic allocates %.0f times per run, want <= %d", got, limit)
	}
}

// TestNewBasicAllocationsFlatInRunSize pins the stronger property behind the
// scaling benchmarks: the allocation count does not grow with the run.
func TestNewBasicAllocationsFlatInRunSize(t *testing.T) {
	alloc := func(n int, horizon model.Time) float64 {
		net := model.MustComplete(n, 1, 4)
		r := sim.MustSimulate(sim.Config{
			Net: net, Horizon: horizon, Policy: sim.Lazy{}, Externals: sim.GoAt(1, 1, "go"),
		})
		return testing.AllocsPerRun(10, func() { NewBasic(r) })
	}
	small := alloc(3, 20)
	large := alloc(8, 80)
	if large > small+4 {
		t.Errorf("allocations grow with run size: %.0f (n=3,h=20) vs %.0f (n=8,h=80)", small, large)
	}
}

// TestExtendedRejectsUnmodeledChannel pins the error path the dense
// construction must preserve: a view assembled online that records a
// receipt over a channel the network does not model yields ErrNoChannel
// from NewExtendedFromView, not a panic.
func TestExtendedRejectsUnmodeledChannel(t *testing.T) {
	// No channel 3->2.
	net := model.NewBuilder(3).Chan(1, 2, 1, 2).Chan(2, 3, 1, 2).MustBuild()
	sender := run.NewLocalView(net, 3)
	from, err := sender.Absorb(nil, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	receiver := run.NewLocalView(net, 2)
	if _, err := receiver.Absorb([]run.Receipt{{From: from, Payload: sender.Snapshot()}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExtendedFromView(receiver); !errors.Is(err, model.ErrNoChannel) {
		t.Fatalf("got %v, want model.ErrNoChannel", err)
	}
}
