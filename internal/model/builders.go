package model

// Convenience constructors for common topologies. All of them produce
// bidirectional channels with uniform bounds [lower, upper] unless noted
// otherwise; they are used by tests, examples and the workload generator.

// Line returns a path network 1 - 2 - ... - n with bidirectional channels.
func Line(n, lower, upper int) (*Network, error) {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.BiChan(ProcID(i), ProcID(i+1), lower, upper)
	}
	return b.Build()
}

// Ring returns a cycle network 1 - 2 - ... - n - 1 with bidirectional
// channels. For n == 2 it degenerates to a single bidirectional link, and
// for n == 1 it has no channels.
func Ring(n, lower, upper int) (*Network, error) {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.BiChan(ProcID(i), ProcID(i+1), lower, upper)
	}
	if n > 2 {
		b.BiChan(ProcID(n), 1, lower, upper)
	}
	return b.Build()
}

// Star returns a star network with process 1 at the centre, connected
// bidirectionally to 2..n.
func Star(n, lower, upper int) (*Network, error) {
	b := NewBuilder(n)
	for i := 2; i <= n; i++ {
		b.BiChan(1, ProcID(i), lower, upper)
	}
	return b.Build()
}

// Complete returns the complete bidirectional network on n processes.
func Complete(n, lower, upper int) (*Network, error) {
	b := NewBuilder(n)
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			b.BiChan(ProcID(i), ProcID(j), lower, upper)
		}
	}
	return b.Build()
}

// MustLine is Line that panics on error.
func MustLine(n, lower, upper int) *Network {
	net, err := Line(n, lower, upper)
	if err != nil {
		panic(err)
	}
	return net
}

// MustRing is Ring that panics on error.
func MustRing(n, lower, upper int) *Network {
	net, err := Ring(n, lower, upper)
	if err != nil {
		panic(err)
	}
	return net
}

// MustStar is Star that panics on error.
func MustStar(n, lower, upper int) *Network {
	net, err := Star(n, lower, upper)
	if err != nil {
		panic(err)
	}
	return net
}

// MustComplete is Complete that panics on error.
func MustComplete(n, lower, upper int) *Network {
	net, err := Complete(n, lower, upper)
	if err != nil {
		panic(err)
	}
	return net
}
