package run

import (
	"sort"

	"github.com/clockless/zigzag/internal/model"
)

// PastSet is past(r, sigma): the set of basic nodes sigma' with
// sigma' happens-before sigma (Definition 2), including sigma itself. Under
// an FFIP the set is exactly the information content of sigma's local state.
type PastSet struct {
	origin BasicNode
	// members[p-1] is the largest index k such that (p, k) is in the set,
	// or -1 if the process contributes no node. Locality makes the past a
	// per-process prefix of the timeline, so one integer per process
	// represents the whole set.
	members []int
}

// Origin returns the node whose past this is.
func (ps *PastSet) Origin() BasicNode { return ps.origin }

// Contains reports whether sigma' is in past(r, sigma).
func (ps *PastSet) Contains(b BasicNode) bool {
	if b.Proc < 1 || int(b.Proc) > len(ps.members) || b.Index < 0 {
		return false
	}
	return b.Index <= ps.members[b.Proc-1]
}

// Boundary returns the boundary node of process p (Definition 15): the last
// p-node in the past. ok is false if p contributes no node at all.
func (ps *PastSet) Boundary(p model.ProcID) (BasicNode, bool) {
	if p < 1 || int(p) > len(ps.members) {
		return BasicNode{}, false
	}
	k := ps.members[p-1]
	if k < 0 {
		return BasicNode{}, false
	}
	return BasicNode{Proc: p, Index: k}, true
}

// Size returns the number of nodes in the set.
func (ps *PastSet) Size() int {
	total := 0
	for _, k := range ps.members {
		total += k + 1
	}
	return total
}

// Nodes returns all members sorted by (process, index).
func (ps *PastSet) Nodes() []BasicNode {
	out := make([]BasicNode, 0, ps.Size())
	for i, k := range ps.members {
		for idx := 0; idx <= k; idx++ {
			out = append(out, BasicNode{Proc: model.ProcID(i + 1), Index: idx})
		}
	}
	return out
}

// Equal reports whether two past sets contain exactly the same nodes.
func (ps *PastSet) Equal(qs *PastSet) bool {
	if len(ps.members) != len(qs.members) {
		return false
	}
	for i := range ps.members {
		if ps.members[i] != qs.members[i] {
			return false
		}
	}
	return true
}

// Past computes past(r, sigma) by a reverse breadth-first search over
// locality and delivery edges.
func (r *Run) Past(sigma BasicNode) (*PastSet, error) {
	if !r.Appears(sigma) {
		return nil, ErrNoNode
	}
	ps := &PastSet{origin: sigma, members: make([]int, r.net.N())}
	for i := range ps.members {
		ps.members[i] = -1
	}
	// Work queue of per-process frontier indices: processing node (p, k)
	// marks the whole prefix 0..k of p and enqueues the senders of every
	// delivery into each prefix node not yet covered.
	type item struct{ b BasicNode }
	queue := []item{{b: sigma}}
	for len(queue) > 0 {
		cur := queue[0].b
		queue = queue[1:]
		already := ps.members[cur.Proc-1]
		if cur.Index <= already {
			continue
		}
		ps.members[cur.Proc-1] = cur.Index
		// Newly covered nodes are (cur.Proc, already+1 .. cur.Index); their
		// inboxes pull sender nodes into the past.
		for k := already + 1; k <= cur.Index; k++ {
			node := BasicNode{Proc: cur.Proc, Index: k}
			sp := r.inbox[r.flat(node)]
			for _, d := range r.deliveries[sp.lo:sp.hi] {
				from := d.From
				if from.Index > ps.members[from.Proc-1] {
					queue = append(queue, item{b: from})
				}
			}
		}
	}
	return ps, nil
}

// HappensBefore reports whether a happens-before b in r (a ≼ b), i.e.
// a ∈ past(r, b). Both nodes must appear in the run.
func (r *Run) HappensBefore(a, b BasicNode) (bool, error) {
	if !r.Appears(a) || !r.Appears(b) {
		return false, ErrNoNode
	}
	ps, err := r.Past(b)
	if err != nil {
		return false, err
	}
	return ps.Contains(a), nil
}

// Recognized reports whether theta = <sigma', p'> is sigma-recognized:
// sigma' is in past(r, sigma). Under an FFIP, sigma then knows that theta
// appears in the run (Section 2.2).
func (ps *PastSet) Recognized(theta GeneralNode) bool { return ps.Contains(theta.Base) }

// ChainPrefix resolves theta's chain against the run while it remains inside
// the past set: it returns the basic nodes of the resolved prefix (starting
// with theta.Base) and the number of hops resolved. If hops < theta.Path.Hops(),
// the (hops+1)-th chain node lies beyond the horizon of the past — either
// the delivery left the past or is unrecorded. Once a chain leaves the past
// it can never re-enter: a receipt inside the past would drag the sender in.
func (r *Run) ChainPrefix(ps *PastSet, theta GeneralNode) (prefix []BasicNode, hops int) {
	cur := theta.Base
	if !ps.Contains(cur) {
		return nil, 0
	}
	prefix = append(prefix, cur)
	for _, next := range theta.Path[1:] {
		if cur.IsInitial() {
			return prefix, hops
		}
		d, ok := r.DeliveryFrom(cur, next)
		if !ok || !ps.Contains(d.To) {
			return prefix, hops
		}
		cur = d.To
		prefix = append(prefix, cur)
		hops++
	}
	return prefix, hops
}

// MessagesLeavingPast returns, in deterministic order, the (sender node,
// destination process) pairs for messages sent at nodes of the past set and
// not received inside it — the E” generators of the extended bounds graph
// (Definition 16). This includes messages whose delivery is recorded beyond
// the past and messages still pending at the horizon.
func (r *Run) MessagesLeavingPast(ps *PastSet) []Pending {
	var out []Pending
	for i, k := range ps.members {
		p := model.ProcID(i + 1)
		for idx := 1; idx <= k; idx++ {
			from := BasicNode{Proc: p, Index: idx}
			st := r.times[p-1][idx]
			for _, a := range r.net.OutArcs(p) {
				d, ok := r.DeliveryFrom(from, a.To)
				if ok && ps.Contains(d.To) {
					continue
				}
				out = append(out, Pending{From: from, To: a.To, SendTime: st, Chan: a.ID})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		if a.From.Index != b.From.Index {
			return a.From.Index < b.From.Index
		}
		return a.To < b.To
	})
	return out
}
