package bounds

import (
	"fmt"

	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// Extended is the extended local bounds graph GE(r, sigma) of Definition 16.
// Its vertices are the nodes of past(r, sigma) plus one auxiliary vertex
// psi_i per process, standing for the earliest "over the horizon" delivery
// on i's timeline. Everything sigma can deduce about relative timing — in
// any run indistinguishable from r at sigma — corresponds to a path here.
//
// The graph is built from a run.View, i.e. from the *structure* of sigma's
// causal past alone: no real-time information enters, which is what makes
// the construction legitimate in the clockless model and usable by online
// agents (internal/live) exactly as by offline analysis.
//
// Extended is also the construction site for knowledge queries:
// VertexOfGeneral adds chain vertices for general nodes whose FFIP chains
// leave the past, so that the constraint paths of Definitions 17-22 become
// ordinary graph paths.
//
// Like Basic, the construction is dense: vertex ids come from precomputed
// per-process offsets, adjacency is presized by an exact degree count, and
// edge Step metadata is derived on demand from the vertex classes (past
// node / auxiliary / chain) rather than stored per edge.
type Extended struct {
	view *run.View
	past *run.PastSet
	g    *graph.Graph

	offset    []int // offset[p-1]: first vertex id of p's past nodes
	auxBase   int   // vertex id of psi_1
	chainBase int   // vertex id of the first beyond-horizon chain vertex

	// chainVertices memoizes beyond-horizon chain vertices by (parent
	// vertex, destination process). A chain vertex stands for the delivery,
	// at the destination process, of the unique FFIP message sent at its
	// parent, so the integer pair is a complete identity: queried nodes
	// sharing chain prefixes share vertices (required for the type-4
	// constraint paths of Definition 20) without building any string keys.
	chainVertices map[chainKey]int

	// chainNodes[v-chainBase] names chain vertex v by the general node of
	// the first query that reached it; every query reaching the vertex
	// denotes the same node in all runs indistinguishable at sigma.
	chainNodes []run.GeneralNode

	// scratch holds the SPFA and path-reconstruction buffers reused across
	// this graph's knowledge queries (like the graph itself, an Extended is
	// not safe for concurrent use).
	scratch graph.Scratch
}

// chainKey identifies a beyond-horizon chain vertex by integers alone.
type chainKey struct {
	parent int32
	to     model.ProcID
}

// NewExtended constructs GE(r, sigma) from a recorded run.
func NewExtended(r *run.Run, sigma run.BasicNode) (*Extended, error) {
	view, err := run.ViewOf(r, sigma)
	if err != nil {
		return nil, err
	}
	return NewExtendedFromView(view)
}

// NewExtendedFromView constructs the extended bounds graph from a subjective
// view — the entry point for online (clockless) agents.
func NewExtendedFromView(view *run.View) (*Extended, error) {
	net := view.Net()
	n := net.N()
	e := &Extended{
		view:          view,
		past:          view.PastSet(),
		offset:        make([]int, n),
		chainVertices: make(map[chainKey]int),
	}
	total := 0
	boundary := make([]int, n) // boundary index of p, or -1 if absent
	for p := model.ProcID(1); int(p) <= n; p++ {
		e.offset[p-1] = total
		boundary[p-1] = -1
		if bnd, ok := view.Boundary(p); ok {
			boundary[p-1] = bnd.Index
			total += bnd.Index + 1
		}
	}
	e.auxBase = total
	total += n
	e.chainBase = total

	deliveries := view.Deliveries()
	leaving := view.Leaving()
	arcs := net.Arcs()

	// Pass 1: exact degree counts for the four edge families of
	// Definition 16 — induced GB(r, sigma) (successors + per-delivery
	// pairs), E' (boundary -> psi), E'' (psi -> leaving sender) and E'''
	// (psi -> psi per channel).
	out := make([]int32, total)
	in := make([]int32, total)
	for p := 1; p <= n; p++ {
		off := e.offset[p-1]
		for k := 0; k < boundary[p-1]; k++ {
			out[off+k]++
			in[off+k+1]++
		}
	}
	for i := range deliveries {
		if deliveries[i].Chan == model.NoChan {
			// A view assembled online can record a receipt over a channel
			// the network does not model; surface it as the error the
			// map-based construction used to return.
			ch := deliveries[i].Channel()
			return nil, fmt.Errorf("%w: %d->%d", model.ErrNoChannel, ch.From, ch.To)
		}
		u := e.offset[deliveries[i].From.Proc-1] + deliveries[i].From.Index
		v := e.offset[deliveries[i].To.Proc-1] + deliveries[i].To.Index
		out[u]++
		in[v]++
		out[v]++
		in[u]++
	}
	for p := 1; p <= n; p++ {
		if k := boundary[p-1]; k >= 0 {
			out[e.offset[p-1]+k]++
			in[e.auxBase+p-1]++
		}
	}
	for i := range leaving {
		out[e.auxBase+int(leaving[i].To)-1]++
		in[e.offset[leaving[i].From.Proc-1]+leaving[i].From.Index]++
	}
	for i := range arcs {
		out[e.auxBase+int(arcs[i].To)-1]++
		in[e.auxBase+int(arcs[i].From)-1]++
	}
	e.g = graph.NewWithDegrees(out, in)

	// Pass 2: insert edges in the historical order (induced successors,
	// induced message pairs, E', E'', E''') so adjacency order — and hence
	// path reconstruction — is unchanged.
	for p := 1; p <= n; p++ {
		off := e.offset[p-1]
		for k := 0; k < boundary[p-1]; k++ {
			e.g.AddEdge(off+k, off+k+1, 1)
		}
	}
	for i := range deliveries {
		// p-closedness of the past: the sender of a message received inside
		// the past is inside the past.
		u := e.offset[deliveries[i].From.Proc-1] + deliveries[i].From.Index
		v := e.offset[deliveries[i].To.Proc-1] + deliveries[i].To.Index
		bd := net.BoundsOf(deliveries[i].Chan)
		e.g.AddEdge(u, v, bd.Lower)
		e.g.AddEdge(v, u, -bd.Upper)
	}
	for p := 1; p <= n; p++ {
		if k := boundary[p-1]; k >= 0 {
			e.g.AddEdge(e.offset[p-1]+k, e.auxBase+p-1, 1)
		}
	}
	for i := range leaving {
		u := net.BoundsOf(leaving[i].Chan).Upper
		e.g.AddEdge(e.auxBase+int(leaving[i].To)-1,
			e.offset[leaving[i].From.Proc-1]+leaving[i].From.Index, -u)
	}
	for i := range arcs {
		e.g.AddEdge(e.auxBase+int(arcs[i].To)-1, e.auxBase+int(arcs[i].From)-1,
			-arcs[i].Bounds.Upper)
	}
	return e, nil
}

// Net returns the network.
func (e *Extended) Net() *model.Network { return e.view.Net() }

// View returns the subjective view the graph was built from.
func (e *Extended) View() *run.View { return e.view }

// Past returns past(r, sigma) as a set.
func (e *Extended) Past() *run.PastSet { return e.past }

// Graph exposes the raw weighted graph.
func (e *Extended) Graph() *graph.Graph { return e.g }

// NumVertices returns the current number of vertices (past nodes, auxiliary
// vertices and any chain vertices added by queries).
func (e *Extended) NumVertices() int { return e.g.N() }

// NumEdges returns the current number of edges.
func (e *Extended) NumEdges() int { return e.g.NumEdges() }

// VertexOfPast returns the vertex id of a past basic node.
func (e *Extended) VertexOfPast(n run.BasicNode) (int, error) {
	if !e.past.Contains(n) {
		return 0, fmt.Errorf("%w: %s not in past(%s)", ErrNotInGraph, n, e.past.Origin())
	}
	return e.offset[n.Proc-1] + n.Index, nil
}

// AuxVertex returns the vertex id of psi_p.
func (e *Extended) AuxVertex(p model.ProcID) int { return e.auxBase + int(p) - 1 }

// isAux reports whether v is an auxiliary horizon vertex.
func (e *Extended) isAux(v int) bool { return v >= e.auxBase && v < e.chainBase }

// isChain reports whether v is a beyond-horizon chain vertex.
func (e *Extended) isChain(v int) bool { return v >= e.chainBase }

// PointOf inverts vertex ids back to Points (for introspection and the
// figure renderings).
func (e *Extended) PointOf(v int) Point {
	if e.isAux(v) {
		return AuxPoint(model.ProcID(v - e.auxBase + 1))
	}
	if e.isChain(v) {
		return NodePoint(e.chainNodes[v-e.chainBase])
	}
	for i := len(e.offset) - 1; i >= 0; i-- {
		if v >= e.offset[i] {
			return NodePoint(run.At(run.BasicNode{Proc: model.ProcID(i + 1), Index: v - e.offset[i]}))
		}
	}
	panic(fmt.Sprintf("bounds: vertex %d out of range", v))
}
