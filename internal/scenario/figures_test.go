package scenario

import (
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/pattern"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// TestFigure1ForkCoordination checks the paper's opening example: with
// L_CB >= U_CA + x, B acting upon receipt of C's message satisfies
// Late<a --x--> b> under every delivery policy, with no A<->B channel.
func TestFigure1ForkCoordination(t *testing.T) {
	p := DefaultFigure1()
	sc := Figure1(p)
	policies := []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(7), sim.NewRandom(99)}
	for _, pol := range policies {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatalf("%s: simulate: %v", pol.Name(), err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", pol.Name(), err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			t.Fatalf("%s: protocol: %v", pol.Name(), err)
		}
		if !out.Acted {
			t.Fatalf("%s: B never acted although L_CB - U_CA = %d >= x = %d",
				pol.Name(), p.LCB-p.UCA, p.X)
		}
		if out.Gap < p.X {
			t.Errorf("%s: gap %d < x %d", pol.Name(), out.Gap, p.X)
		}
		if out.KnownBound != p.LCB-p.UCA {
			t.Errorf("%s: known bound %d, want L_CB - U_CA = %d",
				pol.Name(), out.KnownBound, p.LCB-p.UCA)
		}
		if err := out.Witness.VerifyVisible(r); err != nil {
			t.Errorf("%s: witness: %v", pol.Name(), err)
		}
	}
}

// TestFigure1Unsatisfiable checks that when L_CB < U_CA + x, the optimal
// protocol refuses to act on receipt of C's message — there is nothing else
// to know in this network.
func TestFigure1Unsatisfiable(t *testing.T) {
	p := DefaultFigure1()
	p.X = p.LCB - p.UCA + 1 // just out of reach
	sc := Figure1(p)
	r, err := sc.Simulate(sim.Lazy{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		t.Fatalf("B acted with known bound %d although no protocol can guarantee x=%d",
			out.KnownBound, p.X)
	}
}

// TestFigure2aEquationOne traces the zigzag of Figure 2a and checks that
// the longest GB path from the a-node to the b-node carries exactly the
// Equation (1) weight plus the one-unit non-joined bonus, and that Lemma 5
// extraction yields a verifying zigzag of that weight.
func TestFigure2aEquationOne(t *testing.T) {
	p := DefaultFigure2()
	sc := Figure2a(p)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := sc.Task.Wire(r)
	if err != nil {
		t.Fatal(err)
	}
	// b's node: B's receipt of E's direct message.
	bNode := run.BasicNode{Proc: sc.Proc("B"), Index: 1}
	if !r.Appears(bNode) {
		t.Fatal("B never received E's message")
	}
	gb := bounds.NewBasic(r)
	z, weight, found, err := pattern.ExtractBasic(gb, w.ABasic, bNode)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no GB path from a to b: zigzag missing")
	}
	want := p.EquationOne() + 1 // the non-joined forks at D buy one unit
	if weight < want {
		t.Errorf("zigzag weight %d < Equation(1)+1 = %d", weight, want)
	}
	if err := z.Verify(r); err != nil {
		t.Errorf("extracted zigzag: %v", err)
	}
	if err := z.VerifyEndpoints(r, run.At(w.ABasic), run.At(bNode)); err != nil {
		t.Errorf("endpoints: %v", err)
	}
	// The precedence must hold numerically in every policy's run.
	for _, pol := range []sim.Policy{sim.Lazy{}, sim.NewRandom(3)} {
		r2, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := sc.Task.Wire(r2)
		if err != nil {
			t.Fatal(err)
		}
		b2 := run.BasicNode{Proc: sc.Proc("B"), Index: 1}
		ta := r2.MustTime(w2.ABasic)
		tb := r2.MustTime(b2)
		if tb-ta < want {
			t.Errorf("%s: realized gap %d < guaranteed %d", pol.Name(), tb-ta, want)
		}
	}
}

// TestFigure2aInvisible: without the D->B relay, B must not act — the
// zigzag exists but is not sigma-visible at any of B's states.
func TestFigure2aInvisible(t *testing.T) {
	p := DefaultFigure2()
	sc := Figure2a(p)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		t.Fatalf("B acted at %s (known bound %d) although the zigzag is invisible",
			out.ActNode, out.KnownBound)
	}
}

// TestFigure2bVisibleCoordination: with the D->B relay, Protocol 2 acts,
// knows at least the Equation (1)+1 bound, and its witness is a verifying
// sigma-visible zigzag.
func TestFigure2bVisibleCoordination(t *testing.T) {
	p := DefaultFigure2()
	sc := Figure2b(p)
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(11)} {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if !out.Acted {
			t.Fatalf("%s: B never acted despite visible zigzag (Eq1+1 = %d >= x = %d)",
				pol.Name(), p.EquationOne()+1, p.X)
		}
		if out.Gap < p.X {
			t.Errorf("%s: realized gap %d < x %d", pol.Name(), out.Gap, p.X)
		}
		if out.KnownBound < p.X {
			t.Errorf("%s: known bound %d < x = %d", pol.Name(), out.KnownBound, p.X)
		}
		// The relay fork alone certifies only L_CD + L_DB - U_CA < x, so
		// the action must rest on a genuine multi-fork zigzag.
		if got := out.Witness.Len(); got < 2 {
			t.Errorf("%s: witness has %d forks, want >= 2", pol.Name(), got)
		}
		if err := out.Witness.VerifyVisible(r); err != nil {
			t.Errorf("%s: witness: %v", pol.Name(), err)
		}
		// The baseline needs a message chain from a to B; there is none
		// (no channel out of A), so it can never act.
		base, err := sc.Task.RunBaseline(r)
		if err != nil {
			t.Fatal(err)
		}
		if base.Acted {
			t.Errorf("%s: baseline acted without any A->B chain", pol.Name())
		}
	}
}

// TestFigure2bHorizonReasoning forces the paper's subtlest inference: the
// adversary delays D's second flood so that B receives E's direct message
// while D's receipt of E is still beyond B's horizon. B must act anyway:
// the auxiliary vertex psi_D certifies that wherever E's message lands on
// D's timeline, it lands after the boundary node — so the zigzag order
// holds in every indistinguishable run (the E” edge of Definition 16).
func TestFigure2bHorizonReasoning(t *testing.T) {
	p := DefaultFigure2()
	sc := Figure2b(p)
	d := sc.Proc("D")
	b := sc.Proc("B")
	adversary := sim.Func{
		ID: "delay-d2-relay",
		F: func(s sim.Send, bd model.Bounds) int {
			if s.From == d && s.To == b && s.SendTime >= 8 {
				return bd.Upper // hold back the flood that would reveal d2
			}
			return bd.Lower
		},
	}
	r, err := sc.Simulate(adversary)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Task.RunOptimal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Acted {
		t.Fatal("B never acted despite the psi_D inference being available")
	}
	// Eager elsewhere: E's direct message reaches B at time 10, before the
	// delayed d2 flood at 11; B must decide at 10 via the horizon argument.
	if out.ActTime != 10 {
		t.Errorf("B acted at %d, want 10 (on E's direct message)", out.ActTime)
	}
	if out.KnownBound < p.X {
		t.Errorf("known bound %d < x %d", out.KnownBound, p.X)
	}
	if err := out.Witness.VerifyVisible(r); err != nil {
		t.Errorf("witness: %v", err)
	}
}

// TestFigure4ThreeForkZigzag drives the Figures 4/5 scenario: Protocol 2
// must act using the full three-fork zigzag: x is set to exactly its
// weight, so no weaker sub-pattern suffices, and all junction orderings are
// relayed to B.
func TestFigure4ThreeForkZigzag(t *testing.T) {
	p := DefaultFigure4()
	sc := Figure4(p)
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(13)} {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Acted {
			t.Fatalf("%s: B never acted in the three-fork scenario", pol.Name())
		}
		if err := out.Witness.VerifyVisible(r); err != nil {
			t.Errorf("%s: witness: %v", pol.Name(), err)
		}
		if got := out.Witness.Len(); got != 3 {
			t.Errorf("%s: witness has %d forks, want the full three-fork pattern", pol.Name(), got)
		}
		if out.KnownBound != p.ThreeForkWeight() {
			t.Errorf("%s: known bound %d, want 3*(HeadL-TailU)+2 = %d",
				pol.Name(), out.KnownBound, p.ThreeForkWeight())
		}
	}
}

// TestFigure6BoundEdges checks the minimal GB shape of Figure 6.
func TestFigure6BoundEdges(t *testing.T) {
	sc := Figure6(2, 5)
	r, err := sc.Simulate(sim.Eager{})
	if err != nil {
		t.Fatal(err)
	}
	gb := bounds.NewBasic(r)
	send := run.BasicNode{Proc: 1, Index: 1}
	recv := run.BasicNode{Proc: 2, Index: 1}
	w, _, ok, err := gb.LongestBetween(send, recv)
	if err != nil || !ok {
		t.Fatalf("forward bound: ok=%v err=%v", ok, err)
	}
	if w != 2 {
		t.Errorf("forward bound %d, want L=2", w)
	}
	w, _, ok, err = gb.LongestBetween(recv, send)
	if err != nil || !ok {
		t.Fatalf("backward bound: ok=%v err=%v", ok, err)
	}
	if w != -5 {
		t.Errorf("backward bound %d, want -U=-5", w)
	}
}

// TestCoordinationAcrossTaskKinds exercises Early on Figure 1 with the
// roles of A and B swapped in the bound sense: B (the far process) cannot
// act early, but A-side early action is achievable by making B the
// recipient of the short channel.
func TestEarlyCoordination(t *testing.T) {
	// Early<b --x--> a>: B must act at least x before a. Flip the channel
	// bounds: B gets the fast channel, A the slow one.
	p := Figure1Params{LCA: 8, UCA: 12, LCB: 1, UCB: 3, X: 5, GoTime: 1}
	sc := Figure1(p)
	sc.Task.Kind = coord.Early
	for _, pol := range []sim.Policy{sim.Eager{}, sim.Lazy{}, sim.NewRandom(5)} {
		r, err := sc.Simulate(pol)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sc.Task.RunOptimal(r)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Acted {
			t.Fatalf("%s: B never acted although L_CA - U_CB = %d >= x = %d",
				pol.Name(), p.LCA-p.UCB, p.X)
		}
		if -out.Gap < p.X {
			t.Errorf("%s: lead %d < x %d", pol.Name(), -out.Gap, p.X)
		}
		// The asynchronous baseline can never solve Early.
		base, err := sc.Task.RunBaseline(r)
		if err != nil {
			t.Fatal(err)
		}
		if base.Acted {
			t.Errorf("%s: baseline solved Early", pol.Name())
		}
	}
}
