package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSafeGraph builds a random graph with no positive cycles (forward
// edges non-negative, back edges more negative than any forward gain) and
// returns it with its edge list.
func randomSafeGraph(rng *rand.Rand, n, m int) (*Graph, [][3]int) {
	g := New(n)
	var edges [][3]int
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		var w int
		if u < v {
			w = rng.Intn(6)
		} else {
			w = -(5*n + 1 + rng.Intn(6))
		}
		g.AddEdge(u, v, w)
		edges = append(edges, [3]int{u, v, w})
	}
	return g, edges
}

// TestScratchReuseMatchesFresh: one Scratch reused across many queries (on
// many graphs, growing and shrinking the covered range) answers every query
// exactly as a fresh computation does.
func TestScratchReuseMatchesFresh(t *testing.T) {
	s := new(Scratch)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		g, _ := randomSafeGraph(rng, n, 3*n)
		src := rng.Intn(n)
		want, err1 := g.Longest(src)
		got, err2 := g.LongestWith(s, src)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: dist[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
		wi, err1 := g.LongestInto(src)
		gi, err2 := g.LongestIntoWith(s, src)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d (into): %v / %v", trial, err1, err2)
		}
		for v := range wi {
			if gi[v] != wi[v] {
				t.Fatalf("trial %d: into-dist[%d] = %d, want %d", trial, v, gi[v], wi[v])
			}
		}
		for dst := 0; dst < n; dst++ {
			w1, p1, ok1, e1 := g.LongestPath(src, dst)
			w2, p2, ok2, e2 := g.LongestPathWith(s, src, dst)
			if (e1 == nil) != (e2 == nil) || ok1 != ok2 || w1 != w2 {
				t.Fatalf("trial %d: LongestPath(%d,%d) disagrees", trial, src, dst)
			}
			if ok1 {
				if len(p1) != len(p2) {
					t.Fatalf("trial %d: path lengths differ: %v vs %v", trial, p1, p2)
				}
				for i := range p1 {
					if p1[i] != p2[i] {
						t.Fatalf("trial %d: paths differ: %v vs %v", trial, p1, p2)
					}
				}
			}
		}
	}
}

// TestScratchDetectsPositiveCycle: cycle detection survives buffer reuse
// (stale relaxation counters must not mask or fake a cycle).
func TestScratchDetectsPositiveCycle(t *testing.T) {
	s := new(Scratch)
	good := New(3)
	good.AddEdge(0, 1, 5)
	good.AddEdge(1, 2, 5)
	if _, err := good.LongestWith(s, 0); err != nil {
		t.Fatal(err)
	}
	bad := New(3)
	bad.AddEdge(0, 1, 1)
	bad.AddEdge(1, 0, 1)
	if _, err := bad.LongestWith(s, 0); err != ErrPositiveCycle {
		t.Fatalf("got %v, want ErrPositiveCycle", err)
	}
	// And the scratch is still usable afterwards.
	d, err := good.LongestWith(s, 0)
	if err != nil || d[2] != 10 {
		t.Fatalf("post-cycle reuse: dist=%v err=%v", d, err)
	}
}

// TestRelaxFromMatchesFresh is the incremental contract: growing a graph by
// random monotone batches (new vertices and edges) and re-relaxing from
// only the new edges' sources gives exactly the distances of a fresh
// computation after every batch.
func TestRelaxFromMatchesFresh(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g, _ := randomSafeGraph(rng, n, 2*n)
		src := rng.Intn(n)
		s := new(Scratch)
		if _, err := g.LongestWith(s, src); err != nil {
			return false
		}
		for batch := 0; batch < 4; batch++ {
			var seeds []int
			// Sometimes grow the vertex set.
			for grow := rng.Intn(3); grow > 0; grow-- {
				g.AddVertex()
			}
			nn := g.N()
			for i := 0; i < 1+rng.Intn(4); i++ {
				u := rng.Intn(nn)
				v := rng.Intn(nn)
				if u == v {
					continue
				}
				// More negative than the total positive weight the base
				// graph can carry, so every cycle through a new edge stays
				// negative regardless of the existing structure.
				w := -(200 + rng.Intn(8))
				g.AddEdge(u, v, w)
				seeds = append(seeds, u)
			}
			got, err := g.RelaxFrom(s, seeds)
			if err != nil {
				return false
			}
			want, err := g.Longest(src)
			if err != nil {
				return false
			}
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRelaxFromRequiresPriorRun(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	if _, err := g.RelaxFrom(new(Scratch), []int{0}); err == nil {
		t.Error("RelaxFrom accepted an empty scratch")
	}
}

// TestRemoveEdge: removal deletes exactly one occurrence from both
// adjacency directions and longest paths reroute accordingly.
func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 1, 3) // parallel, lighter
	g.AddEdge(1, 2, 1)
	if !g.RemoveEdge(0, 1, 10) {
		t.Fatal("edge (0,1,10) not found")
	}
	if g.RemoveEdge(0, 1, 10) {
		t.Fatal("edge (0,1,10) removed twice")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	d, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	if d[2] != 4 {
		t.Errorf("dist to 2 after removal = %d, want 4 via the parallel edge", d[2])
	}
	// Reverse adjacency shrank in step.
	if len(g.In(1)) != 1 {
		t.Errorf("in-degree of 1 = %d, want 1", len(g.In(1)))
	}
	if g.RemoveEdge(0, 2, 1) {
		t.Error("nonexistent edge reported removed")
	}
}

// TestPopVertexRollback: the AddVertex/AddEdge/RemoveEdge/PopVertex cycle
// used for speculative query vertices restores the graph exactly.
func TestPopVertexRollback(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	before, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	eta := g.AddVertex()
	g.AddEdge(1, eta, 5)
	g.AddEdge(eta, 1, -5)
	g.RemoveEdge(eta, 1, -5)
	g.RemoveEdge(1, eta, 5)
	g.PopVertex()
	if g.N() != 3 || g.NumEdges() != 2 {
		t.Fatalf("rollback left N=%d edges=%d", g.N(), g.NumEdges())
	}
	after, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range before {
		if before[v] != after[v] {
			t.Errorf("dist[%d] changed across rollback: %d vs %d", v, before[v], after[v])
		}
	}
}

func TestPopVertexPanicsOnNonIsolated(t *testing.T) {
	g := New(1)
	eta := g.AddVertex()
	g.AddEdge(0, eta, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic popping a wired vertex")
		}
	}()
	g.PopVertex()
}

// TestRingQueueChurn forces heavy re-queueing (long negative chains with a
// shortcut relaxed late) so the ring wraps many times; the dequeue head
// must never overtake pending entries.
func TestRingQueueChurn(t *testing.T) {
	const n = 200
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0)
	}
	// Shortcuts from 0 deep into the chain with increasing weights: each
	// relaxation re-floods the suffix.
	for i := 2; i < n; i += 3 {
		g.AddEdge(0, i, i)
	}
	dist, err := g.Longest(0)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteLongest(n, collectEdges(g), 0)
	for v := range dist {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func collectEdges(g *Graph) [][3]int {
	var out [][3]int
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(u) {
			out = append(out, [3]int{u, e.To, e.Weight})
		}
	}
	return out
}
