// The engine-tier acceptance tests live in an external test package: they
// drive bounds.NetworkEngine through the real scenario.Registry catalogue,
// and scenario imports coord which imports bounds. The replay fixture is
// bench.ReplayBatches — shared with the benchmark bodies — rather than a
// third copy of the view-evolution loop.
package bounds_test

import (
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/bench"
	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
)

// batchDriver re-absorbs recorded receive batches into fresh per-process
// views, one state at a time — the incremental growth an agent's engine
// sees live.
type batchDriver struct {
	net     *model.Network
	batches []bench.StateBatch
	views   map[model.ProcID]*run.View
	next    int
}

func newBatchDriver(t *testing.T, r *run.Run, observers map[model.ProcID]bool) *batchDriver {
	t.Helper()
	batches, _ := bench.ReplayBatches(r, observers)
	return &batchDriver{
		net:     r.Net(),
		batches: batches,
		views:   make(map[model.ProcID]*run.View, len(observers)),
	}
}

// step absorbs the next recorded batch and returns the new state's process,
// node index and view; ok is false once the run is exhausted.
func (d *batchDriver) step(t *testing.T) (p model.ProcID, k int, v *run.View, ok bool) {
	t.Helper()
	if d.next >= len(d.batches) {
		return 0, 0, nil, false
	}
	b := d.batches[d.next]
	d.next++
	v = d.views[b.Proc]
	if v == nil {
		v = run.NewLocalView(d.net, b.Proc)
		d.views[b.Proc] = v
	}
	node, err := v.Absorb(b.Receipts, b.Externals)
	if err != nil {
		t.Fatal(err)
	}
	return b.Proc, node.Index, v, true
}

// registryQueryNodes picks up to max query nodes from a view: the origin,
// its chain hops over the last out-channel, and earlier boundary nodes of
// other processes — basic and chain-crossing general nodes in both roles.
func registryQueryNodes(v *run.View, max int) []run.GeneralNode {
	net := v.Net()
	var out []run.GeneralNode
	add := func(b run.BasicNode) {
		out = append(out, run.At(b))
		if arcs := net.OutArcs(b.Proc); len(arcs) > 0 && len(out) < max {
			out = append(out, run.At(b).Hop(arcs[len(arcs)-1].To))
		}
	}
	add(v.Origin())
	for p := model.ProcID(1); int(p) <= net.N() && len(out) < max; p++ {
		if bnd, ok := v.Boundary(p); ok && !bnd.IsInitial() && bnd != v.Origin() {
			add(bnd)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// diffAgainstFresh compares every query-pair answer of a handle at its
// view's current state against a fresh NewExtendedFromView build.
func diffAgainstFresh(t *testing.T, tag string, h *bounds.Handle, v *run.View, maxQueries int) {
	t.Helper()
	fresh, err := bounds.NewExtendedFromView(v)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	qs := registryQueryNodes(v, maxQueries)
	for i, t1 := range qs {
		for j, t2 := range qs {
			if i == j && t1.IsBasic() {
				continue
			}
			wantKW, _, wantKnown, wantErr := fresh.KnowledgeWeight(t1, t2)
			gotKW, gotKnown, gotErr := h.KnowledgeWeight(t1, t2)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s %s->%s: err fresh=%v engine=%v", tag, t1, t2, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if wantKnown != gotKnown || (wantKnown && wantKW != gotKW) {
				t.Fatalf("%s %s->%s: fresh (%d,%v) engine (%d,%v)",
					tag, t1, t2, wantKW, wantKnown, gotKW, gotKnown)
			}
		}
	}
}

// TestNetworkEngineMatchesFreshBuild is the engine hierarchy's differential
// acceptance test: for EVERY scenario of the full registry (multi-agent
// family included up to m=16), runs are stamped out of one per-network
// NetworkEngine, observer agents subscribe handles, and at every observer
// state every knowledge answer through the three-tier path —
// NetworkEngine.NewRun -> Shared -> Handle — is identical (weight,
// knownness and error class, both query directions, chain hops included) to
// a fresh NewExtendedFromView of that agent's own view. Two runs of each
// scenario under different policies go through the SAME engine value, so a
// run leaking state into the network tier (the cloned aux prototype, the
// hint tables, the pooled scratches) cannot escape the comparison.
func TestNetworkEngineMatchesFreshBuild(t *testing.T) {
	reg := scenario.RegistrySized(0, 16)
	for _, name := range scenario.Names(reg) {
		sc := reg[name]
		if testing.Short() && sc.Net.N() > 8 {
			continue
		}
		// Large networks keep full per-state coverage but a smaller query
		// set, so the fresh rebuild per (state, pair) stays affordable.
		maxQueries := 5
		if sc.Net.N() > 8 {
			maxQueries = 3
		}
		eng := bounds.NewNetworkEngine(sc.Net)
		for runIdx, policy := range []sim.Policy{nil, sim.NewRandom(int64(7 * sc.Net.N()))} {
			r, err := sc.Simulate(policy)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			procs := sc.Net.Procs()
			observers := map[model.ProcID]bool{
				procs[runIdx%len(procs)]:                true,
				procs[(runIdx+len(procs)/2)%len(procs)]: true,
			}
			shared := eng.NewRun()
			handles := make(map[model.ProcID]*bounds.Handle)
			d := newBatchDriver(t, r, observers)
			for {
				p, k, v, ok := d.step(t)
				if !ok {
					break
				}
				h := handles[p]
				if h == nil {
					h = mustHandle(t, shared, v)
					handles[p] = h
				}
				tag := fmt.Sprintf("%s run %d p%d#%d", name, runIdx, p, k)
				diffAgainstFresh(t, tag, h, v, maxQueries)
			}
			for _, h := range handles {
				h.Release()
			}
		}
	}
}

// TestNetworkEngineRunIsolation interleaves the INCREMENTAL growth of two
// runs stamped out of ONE engine, one state at a time: run A absorbs a
// state and answers, then run B does, alternating — so per-run standing
// material (node vertices, delivery edges, chain vertices appended to the
// cloned aux adjacency and rolled back) mutates between every sync of the
// sibling run. Answers must keep matching fresh builds of each agent's own
// view at every interleaved step.
func TestNetworkEngineRunIsolation(t *testing.T) {
	sc := scenario.MultiAgent(2)
	eng := bounds.NewNetworkEngine(sc.Net)
	observers := map[model.ProcID]bool{sc.Tasks[0].B: true, sc.Tasks[1].B: true}
	type runState struct {
		d       *batchDriver
		shared  *bounds.Shared
		handles map[model.ProcID]*bounds.Handle
	}
	runs := make([]*runState, 2)
	for i := range runs {
		r, err := sc.Simulate(sim.NewRandom(int64(3 + i)))
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = &runState{
			d:       newBatchDriver(t, r, observers),
			shared:  eng.NewRun(),
			handles: make(map[model.ProcID]*bounds.Handle),
		}
	}
	for live := 2; live > 0; {
		live = 0
		for i, rs := range runs {
			p, k, v, ok := rs.d.step(t)
			if !ok {
				continue
			}
			live++
			h := rs.handles[p]
			if h == nil {
				h = mustHandle(t, rs.shared, v)
				rs.handles[p] = h
			}
			tag := fmt.Sprintf("interleave run %d p%d#%d", i, p, k)
			diffAgainstFresh(t, tag, h, v, 4)
		}
	}
}

// TestNetworkEngineAllocationGuard pins the amortization the network tier
// buys: stamping a run out of a prebuilt engine (NewRun) must allocate
// strictly less than deriving the whole engine per run (NewShared, which is
// now NewNetworkEngine + NewRun) — the aux band prototype is cloned in O(1)
// allocations and the hint tables are shared, not rebuilt.
func TestNetworkEngineAllocationGuard(t *testing.T) {
	net := model.MustComplete(6, 1, 5)
	eng := bounds.NewNetworkEngine(net)
	perRun := testing.AllocsPerRun(100, func() {
		if eng.NewRun() == nil {
			t.Fatal("no run")
		}
	})
	fresh := testing.AllocsPerRun(100, func() {
		if bounds.NewShared(net) == nil {
			t.Fatal("no engine")
		}
	})
	if perRun >= fresh {
		t.Errorf("NewRun allocates %.0f times per run, fresh NewShared %.0f — the network tier amortizes nothing", perRun, fresh)
	}
	// The run stamp itself must stay O(1) in the network: struct, frontier
	// tables, coordinate copies and a constant-allocation graph clone.
	const limit = 10
	if perRun > limit {
		t.Errorf("NewRun allocates %.0f times per run, want <= %d", perRun, limit)
	}
}

// mustHandle subscribes a view to a shared engine, failing the test on the
// (programmer-error) network-mismatch path.
func mustHandle(tb testing.TB, s *bounds.Shared, v *run.View) *bounds.Handle {
	tb.Helper()
	h, err := s.NewHandle(v)
	if err != nil {
		tb.Fatal(err)
	}
	return h
}
