package scenario

import (
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// Figure1Params parametrize the fork of Figure 1: C sends simultaneously to
// A and B; if L_CB >= U_CA + x, then B receives C's message at least x time
// units after A does, so acting on receipt solves Late<a --x--> b> with no
// communication between A and B at all.
type Figure1Params struct {
	LCA, UCA int
	LCB, UCB int
	X        int
	GoTime   model.Time
}

// DefaultFigure1 is the canonical parametrization: U_CA = 3, L_CB = 8,
// x = 5, satisfying L_CB >= U_CA + x with equality.
func DefaultFigure1() Figure1Params {
	return Figure1Params{LCA: 1, UCA: 3, LCB: 8, UCB: 12, X: 5, GoTime: 1}
}

// Figure1 builds the two-legged-fork coordination scenario of Figure 1.
// Processes: C=1, A=2, B=3.
func Figure1(p Figure1Params) *Scenario {
	const (
		c = model.ProcID(1)
		a = model.ProcID(2)
		b = model.ProcID(3)
	)
	net := model.NewBuilder(3).
		Chan(c, a, p.LCA, p.UCA).
		Chan(c, b, p.LCB, p.UCB).
		MustBuild()
	task := &coord.Task{Kind: coord.Late, X: p.X, A: a, B: b, C: c, GoTime: p.GoTime}
	return &Scenario{
		Name: "figure1",
		Description: "Two-legged fork: C floods A and B; the bound gap " +
			"L_CB - U_CA alone coordinates a before b (Figure 1).",
		Net:       net,
		Externals: sim.GoAt(c, p.GoTime, "go"),
		Horizon:   p.GoTime + model.Time(p.UCB+p.UCA) + 8,
		Roles:     map[string]model.ProcID{"C": c, "A": a, "B": b},
		Task:      task,
	}
}

// Figure2Params parametrize the zigzag of Figures 2a/2b: C sends to A and
// D; E sends to D and B; D receives C's message before E's. Equation (1):
// -U_CA + L_CD - U_ED + L_EB >= x guarantees a --x--> b (strictly, the
// non-joined forks buy one extra unit).
type Figure2Params struct {
	LCA, UCA int
	LCD, UCD int
	LED, UED int
	LEB, UEB int
	// Relay bounds for the D -> B channel of Figure 2b.
	LDB, UDB int
	X        int
	// CTime and ETime schedule the spontaneous inputs that make C and E
	// send. They must be chosen so that D hears C strictly before E under
	// the scenario policy.
	CTime, ETime model.Time
}

// DefaultFigure2 is parametrized so that the E-zigzag is the only pattern
// strong enough for x: Equation (1) gives -U_CA + L_CD - U_ED + L_EB =
// -2 + 5 - 2 + 4 = 5, and the zigzag's non-joined forks buy one more unit,
// reaching x = 6; the simple relay fork C->D->B only certifies
// L_CD + L_DB - U_CA = 4 < x. The trigger times guarantee that D hears C
// strictly before E under every delivery policy (earliest E arrival 8 >
// latest C arrival 7).
func DefaultFigure2() Figure2Params {
	return Figure2Params{
		LCA: 1, UCA: 2,
		LCD: 5, UCD: 6,
		LED: 2, UED: 2,
		LEB: 4, UEB: 8,
		LDB: 1, UDB: 3,
		X:     6,
		CTime: 1, ETime: 6,
	}
}

// EquationOne returns the left-hand side of Equation (1),
// -U_CA + L_CD - U_ED + L_EB.
func (p Figure2Params) EquationOne() int {
	return -p.UCA + p.LCD - p.UED + p.LEB
}

func figure2(p Figure2Params, relay bool, name, desc string) *Scenario {
	const (
		c = model.ProcID(1)
		e = model.ProcID(2)
		d = model.ProcID(3)
		a = model.ProcID(4)
		b = model.ProcID(5)
	)
	nb := model.NewBuilder(5).
		Chan(c, a, p.LCA, p.UCA).
		Chan(c, d, p.LCD, p.UCD).
		Chan(e, d, p.LED, p.UED).
		Chan(e, b, p.LEB, p.UEB)
	if relay {
		nb.Chan(d, b, p.LDB, p.UDB)
	}
	net := nb.MustBuild()
	task := &coord.Task{Kind: coord.Late, X: p.X, A: a, B: b, C: c, GoTime: p.CTime}
	horizon := p.ETime + model.Time(p.UED+p.UEB+p.UDB+p.UCD) + 16
	return &Scenario{
		Name:        name,
		Description: desc,
		Net:         net,
		Externals: []run.ExternalEvent{
			{Proc: c, Time: p.CTime, Label: "go"},
			{Proc: e, Time: p.ETime, Label: "tick"},
		},
		Horizon: horizon,
		Roles:   map[string]model.ProcID{"C": c, "E": e, "D": d, "A": a, "B": b},
		Task:    task,
	}
}

// Figure2a builds the zigzag happened-before pattern of Figure 2a (no
// relay channel; the zigzag exists but B cannot see it).
func Figure2a(p Figure2Params) *Scenario {
	return figure2(p, false,
		"figure2a",
		"Zigzag pattern (Figure 2a): C->{A,D}, E->{D,B}, with D hearing C "+
			"before E; Equation (1) bounds b after a with no chain from A to B.")
}

// Figure2b builds the visible-zigzag coordination scenario of Figure 2b:
// the added D -> B channel floods D's state to B, making the zigzag
// sigma-visible so that Protocol 2 lets B act.
func Figure2b(p Figure2Params) *Scenario {
	return figure2(p, true,
		"figure2b",
		"Visible zigzag (Figure 2b): as 2a plus a D->B channel; B learns "+
			"that D heard C before E and may act on Late<a --x--> b>.")
}

// Figure3Params parametrize a two-legged fork with multi-hop legs
// (Figure 3): the base O reaches the head via h relay processes and the
// tail via t relay processes.
type Figure3Params struct {
	HeadHops int // processes on the head leg (>= 1)
	TailHops int // processes on the tail leg (>= 1)
	L, U     int // uniform bounds
	GoTime   model.Time
}

// DefaultFigure3 uses two-hop legs with bounds [2, 5].
func DefaultFigure3() Figure3Params {
	return Figure3Params{HeadHops: 2, TailHops: 2, L: 2, U: 5, GoTime: 1}
}

// Figure3 builds a long-legged fork: process 1 is the base; processes
// 2..1+h the head chain; the rest the tail chain.
func Figure3(p Figure3Params) *Scenario {
	n := 1 + p.HeadHops + p.TailHops
	base := model.ProcID(1)
	nb := model.NewBuilder(n)
	prev := base
	for i := 0; i < p.HeadHops; i++ {
		next := model.ProcID(2 + i)
		nb.Chan(prev, next, p.L, p.U)
		prev = next
	}
	head := prev
	prev = base
	for i := 0; i < p.TailHops; i++ {
		next := model.ProcID(2 + p.HeadHops + i)
		nb.Chan(prev, next, p.L, p.U)
		prev = next
	}
	tail := prev
	return &Scenario{
		Name: "figure3",
		Description: "Two-legged fork with multi-hop legs (Figure 3): " +
			"wt(F) = L(head leg) - U(tail leg).",
		Net:       nb.MustBuild(),
		Externals: sim.GoAt(base, p.GoTime, "go"),
		Horizon:   p.GoTime + model.Time((p.HeadHops+p.TailHops)*p.U) + 8,
		Roles:     map[string]model.ProcID{"O": base, "HEAD": head, "TAIL": tail},
	}
}

// Figure4Params parametrize the three-fork sigma-visible zigzag of
// Figures 4 and 5. Roles: C (go sender, base of fork 1), E2 and E3 (bases
// of forks 2 and 3), M1 and M2 (the junction timelines), A (head of theta1's
// leg), B (sigma's process). Head legs carry [HeadL, HeadU]; tail legs
// [TailL, TailU]; the visibility chains M1->B, M2->B carry [LVis, UVis].
type Figure4Params struct {
	HeadL, HeadU int
	TailL, TailU int
	LVis, UVis   int
	X            int
	CTime        model.Time
	E2Time       model.Time
	E3Time       model.Time
}

// DefaultFigure4 makes every fork contribute positive weight
// (HeadL - TailU = 4), so the full three-fork zigzag certifies
// 3*4 + 2 = 14, which x is set to — weaker sub-patterns cannot reach it.
// The triggers are spaced so each junction hears the earlier fork first
// under every policy (gaps exceed the relevant upper bounds).
func DefaultFigure4() Figure4Params {
	return Figure4Params{
		HeadL: 6, HeadU: 8,
		TailL: 1, TailU: 2,
		LVis: 1, UVis: 3,
		X:     14,
		CTime: 1, E2Time: 9, E3Time: 17,
	}
}

// ThreeForkWeight returns the weight of the canonical three-fork pattern:
// 3 * (HeadL - TailU) + 2 non-joined junctions.
func (p Figure4Params) ThreeForkWeight() int { return 3*(p.HeadL-p.TailU) + 2 }

// Figure4 builds the three-fork visible zigzag of Figures 4/5.
// Processes: C=1, E2=2, E3=3, M1=4, M2=5, A=6, B=7.
func Figure4(p Figure4Params) *Scenario {
	const (
		c  = model.ProcID(1)
		e2 = model.ProcID(2)
		e3 = model.ProcID(3)
		m1 = model.ProcID(4)
		m2 = model.ProcID(5)
		a  = model.ProcID(6)
		b  = model.ProcID(7)
	)
	net := model.NewBuilder(7).
		Chan(c, a, p.TailL, p.TailU).
		Chan(c, m1, p.HeadL, p.HeadU).
		Chan(e2, m1, p.TailL, p.TailU).
		Chan(e2, m2, p.HeadL, p.HeadU).
		Chan(e3, m2, p.TailL, p.TailU).
		Chan(e3, b, p.HeadL, p.HeadU).
		Chan(m1, b, p.LVis, p.UVis).
		Chan(m2, b, p.LVis, p.UVis).
		MustBuild()
	task := &coord.Task{Kind: coord.Late, X: p.X, A: a, B: b, C: c, GoTime: p.CTime}
	return &Scenario{
		Name: "figure4",
		Description: "Three-fork sigma-visible zigzag (Figures 4/5): " +
			"junction orderings at M1 and M2 relayed to B make the full " +
			"pattern visible.",
		Net: net,
		Externals: []run.ExternalEvent{
			{Proc: c, Time: p.CTime, Label: "go"},
			{Proc: e2, Time: p.E2Time, Label: "tick2"},
			{Proc: e3, Time: p.E3Time, Label: "tick3"},
		},
		Horizon: p.E3Time + model.Time(4*p.HeadU+2*p.UVis) + 16,
		Roles: map[string]model.ProcID{
			"C": c, "E2": e2, "E3": e3, "M1": m1, "M2": m2, "A": a, "B": b,
		},
		Task: task,
	}
}

// Figure6 builds the minimal two-process, one-message scenario whose basic
// bounds graph exhibits exactly the edge pair of Figure 6.
func Figure6(l, u int) *Scenario {
	net := model.NewBuilder(2).Chan(1, 2, l, u).MustBuild()
	return &Scenario{
		Name:        "figure6",
		Description: "One delivery: GB gains a forward edge of weight L and a backward edge of weight -U (Figure 6).",
		Net:         net,
		Externals:   sim.GoAt(1, 1, "go"),
		Horizon:     model.Time(u) + 4,
		Roles:       map[string]model.ProcID{"I": 1, "J": 2},
	}
}
