package live

import (
	"fmt"

	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
)

// defaultReplayChunk is how many receive batches a replay buffers between
// recorder and driver when Config.ReplayChunk is zero. Small enough that a
// million-event horizon never holds its schedule in memory, large enough
// that the chunk bookkeeping vanishes against the per-batch work.
const defaultReplayChunk = 512

// replayArrival is one recorded delivery inside a batch: the sender's state
// and send time. The receiver and receive time live on the batch.
type replayArrival struct {
	from run.BasicNode
	send model.Time
}

// replayBatch is one receive batch of the recorded schedule: everything the
// environment would have handed proc's goroutine at time, as spans into the
// owning chunk's flat arrival and external backing.
type replayBatch struct {
	proc model.ProcID
	time model.Time
	// node is the state this batch creates. The recorder predicts it from
	// the per-process state counter; the driver cross-checks it against
	// what View.Absorb actually assigns, so a drift between the two loops
	// is an error, never a silent mismatch.
	node       run.BasicNode
	arr0, arr1 int // span into chunk.arrivals
	ext0, ext1 int // span into chunk.exts
	// floods counts this state's flood messages that arrive within the
	// horizon — known at schedule time, so the driver snapshots the view
	// only when some receiver will actually consume the payload, and can
	// drop the snapshot the moment its last arrival is absorbed.
	floods int
	// degraded marks that the fault injector's taint frontier covers this
	// batch: the driver degrades the agent before OnState, exactly when the
	// goroutine environment would.
	degraded bool
}

// replayChunk is the streaming buffer between recorder and driver. All three
// backing slices are reused across chunks, so a steady-state replay holds
// one chunk of schedule regardless of horizon.
type replayChunk struct {
	batches  []replayBatch
	arrivals []replayArrival
	exts     []string
}

func (c *replayChunk) reset() {
	c.batches = c.batches[:0]
	c.arrivals = c.arrivals[:0]
	c.exts = c.exts[:0]
}

// recorder runs the environment loop of live.Run — policy-scheduled arrival
// buckets, per-process slabs, builder events — without any views or agents,
// emitting the resulting receive batches chunk by chunk. Because every
// channel latency is at least 1 (model.Bounds.Valid), an arrival at tick t
// references a state created strictly before t, so the recorder can run a
// whole chunk ahead of the driver and the reference is always resolvable.
type recorder struct {
	net    *model.Network
	policy sim.Policy
	bl     *run.Builder
	hor    model.Time
	inj    *faults.Injector // nil for fault-free executions

	arrivals [][]recArrival // horizon-indexed buckets
	free     [][]recArrival // recycled bucket backing
	extAt    [][]run.ExternalEvent

	procArr [][]recArrival // per-proc slab for the current tick
	procExt [][]string
	lastIdx []int // per-proc state counter, mirrors View.Absorb's indices

	t model.Time // next tick to process
}

// recArrival is one scheduled delivery in the recorder's buckets.
type recArrival struct {
	from   run.BasicNode
	toProc model.ProcID
	send   model.Time
}

func newRecorder(cfg Config, st *execState, bl *run.Builder) (*recorder, error) {
	extAt, err := extTimetable(cfg, st)
	if err != nil {
		return nil, err
	}
	n := cfg.Net.N()
	return &recorder{
		net:      cfg.Net,
		policy:   st.policy,
		bl:       bl,
		inj:      st.inj,
		hor:      cfg.Horizon,
		arrivals: make([][]recArrival, cfg.Horizon+1),
		extAt:    extAt,
		procArr:  make([][]recArrival, n),
		procExt:  make([][]string, n),
		lastIdx:  make([]int, n),
		t:        1,
	}, nil
}

// fill appends whole ticks of batches to the chunk until it holds at least
// limit batches or the horizon is exhausted. Working in whole ticks keeps
// the recorder free of mid-tick resume state; a chunk can exceed limit by at
// most one tick's batches (≤ n).
func (rc *recorder) fill(c *replayChunk, limit int) error {
	net := rc.net
	n := net.N()
	for rc.t <= rc.hor && len(c.batches) < limit {
		t := rc.t
		rc.t++
		if rc.arrivals[t] == nil && rc.extAt[t] == nil {
			continue
		}
		for _, a := range rc.arrivals[t] {
			rc.procArr[a.toProc-1] = append(rc.procArr[a.toProc-1], a)
		}
		if rc.arrivals[t] != nil {
			rc.free = append(rc.free, rc.arrivals[t][:0])
			rc.arrivals[t] = nil
		}
		// Record the tick's externals up front in configuration order —
		// exactly as Run and sim.Simulate do, so the recordings stay
		// byte-identical.
		for _, e := range rc.extAt[t] {
			rc.bl.External(run.ExternalEvent{Proc: e.Proc, Time: t, Label: e.Label})
			rc.procExt[e.Proc-1] = append(rc.procExt[e.Proc-1], e.Label)
		}

		for p := model.ProcID(1); int(p) <= n; p++ {
			arr := rc.procArr[p-1]
			ext := rc.procExt[p-1]
			if len(arr) == 0 && len(ext) == 0 {
				continue
			}
			rc.procArr[p-1] = arr[:0]
			rc.procExt[p-1] = ext[:0]

			arr0 := len(c.arrivals)
			for _, a := range arr {
				c.arrivals = append(c.arrivals, replayArrival{from: a.from, send: a.send})
				rc.bl.Message(run.MessageEvent{
					FromProc: a.from.Proc, ToProc: p, SendTime: a.send, RecvTime: t,
				})
				if rc.inj != nil {
					rc.inj.Deliver(net.ChanIDOf(a.from.Proc, p), a.from.Proc, p, a.send, t)
				}
			}
			ext0 := len(c.exts)
			c.exts = append(c.exts, ext...)

			// The batch creates proc p's next state; View.Absorb assigns
			// indices 1, 2, ... in batch order, which is exactly this
			// counter.
			rc.lastIdx[p-1]++
			node := run.BasicNode{Proc: p, Index: rc.lastIdx[p-1]}

			// FFIP flood off the new state, counting the deliveries that
			// stay within the horizon.
			floods := 0
			for _, a := range net.OutArcs(p) {
				if rc.inj != nil && rc.inj.SendDrop(a.ID, p, a.To, t) {
					continue
				}
				s := sim.Send{From: p, To: a.To, SendTime: t}
				lat := rc.policy.Latency(s, a.Bounds)
				if lat < a.Bounds.Lower || lat > a.Bounds.Upper {
					return fmt.Errorf("live: policy %q chose latency %d outside %s", rc.policy.Name(), lat, a.Bounds)
				}
				if rc.inj != nil {
					lat = rc.inj.Delay(a.ID, p, a.To, t, lat)
				}
				if t+lat > rc.hor {
					continue
				}
				if rc.inj != nil && rc.inj.Dead(a.To, t+lat) {
					// Static crash schedule: discard at flood time, exactly
					// as Run and sim do, so the flood count the driver's
					// snapshot refcounting relies on never includes an
					// arrival that will not be driven.
					rc.inj.Discard(a.ID, p, a.To, t, t+lat)
					continue
				}
				if rc.arrivals[t+lat] == nil {
					if len(rc.free) > 0 {
						rc.arrivals[t+lat] = rc.free[len(rc.free)-1]
						rc.free = rc.free[:len(rc.free)-1]
					} else {
						rc.arrivals[t+lat] = make([]recArrival, 0, len(net.OutArcs(p)))
					}
				}
				rc.arrivals[t+lat] = append(rc.arrivals[t+lat], recArrival{
					from: node, toProc: a.To, send: t,
				})
				floods++
			}

			c.batches = append(c.batches, replayBatch{
				proc: p, time: t, node: node,
				arr0: arr0, arr1: len(c.arrivals),
				ext0: ext0, ext1: len(c.exts),
				floods:   floods,
				degraded: rc.inj != nil && rc.inj.DegradedAt(p, t),
			})
		}
	}
	return nil
}

// snapEntry is a live payload the driver holds for pending arrivals: the
// state occupying the ring slot, its frozen history and how many recorded
// deliveries still reference it. The snapshot is dropped at zero, so memory
// tracks in-flight messages, not the horizon.
type snapEntry struct {
	idx  int
	snap *run.Snapshot
	left int
}

// driver consumes recorded chunks in a single goroutine, owning every
// process's view and agent. It is the replay-mode counterpart of the
// goroutine-per-process loop in Run: same Absorb/OnState/Snapshot sequence
// per batch, same (time, proc) order, no channels.
//
// Pending payloads live in fixed per-process rings indexed by node index
// modulo maxUpper+1. The slot reuse is sound: a process creates at most one
// state per tick, so two states maxUpper+1 indices apart are at least
// maxUpper+1 ticks apart, and every arrival flooding off the earlier one
// (latency ≤ maxUpper) is absorbed — batches are driven in tick order —
// before the later one's batch stores into the slot.
type driver struct {
	cfg      Config
	inj      *faults.Injector
	views    []*run.View
	agents   []Agent
	rings    [][]snapEntry
	receipts []run.Receipt
	res      *Result
}

func newDriver(cfg Config, st *execState, res *Result) *driver {
	n := cfg.Net.N()
	views := make([]*run.View, n)
	agents := make([]Agent, n)
	for _, p := range cfg.Net.Procs() {
		views[p-1] = run.NewLocalView(cfg.Net, p)
		agents[p-1] = cfg.Agents[p]
	}
	maxU := 0
	for _, a := range cfg.Net.Arcs() {
		if a.Bounds.Upper > maxU {
			maxU = a.Bounds.Upper
		}
	}
	if st.inj != nil {
		// Deadline faults deliver up to MaxSlack ticks past an arc's upper
		// bound; the ring must keep states alive that much longer.
		maxU += st.inj.MaxSlack()
	}
	ringBacking := make([]snapEntry, n*(maxU+1))
	rings := make([][]snapEntry, n)
	for i := range rings {
		rings[i] = ringBacking[i*(maxU+1) : (i+1)*(maxU+1)]
	}
	return &driver{
		cfg:      cfg,
		inj:      st.inj,
		views:    views,
		agents:   agents,
		rings:    rings,
		receipts: make([]run.Receipt, 0, 8),
		res:      res,
	}
}

// drive replays one chunk of batches against the views and agents.
func (d *driver) drive(c *replayChunk) error {
	for i := range c.batches {
		b := &c.batches[i]
		d.receipts = d.receipts[:0]
		for _, a := range c.arrivals[b.arr0:b.arr1] {
			ring := d.rings[a.from.Proc-1]
			e := &ring[a.from.Index%len(ring)]
			if e.idx != a.from.Index || e.left == 0 {
				return fmt.Errorf("live: replay references unknown state %v", a.from)
			}
			d.receipts = append(d.receipts, run.Receipt{From: a.from, Payload: e.snap})
			if e.left--; e.left == 0 {
				e.snap = nil
			}
		}
		ext := c.exts[b.ext0:b.ext1]

		view := d.views[b.proc-1]
		node, err := view.Absorb(d.receipts, ext)
		if err != nil {
			return fmt.Errorf("live: process %d: %w", b.proc, err)
		}
		if node != b.node {
			return fmt.Errorf("live: replay predicted state %v for process %d, view produced %v",
				b.node, b.proc, node)
		}
		if agent := d.agents[b.proc-1]; agent != nil {
			if b.degraded {
				if dg, ok := agent.(Degradable); ok {
					dg.Degrade(d.inj.DegradeReason(b.proc, b.time))
				}
			}
			for _, label := range agent.OnState(view, ext) {
				d.res.Actions = append(d.res.Actions, Action{Proc: b.proc, Node: node, Time: b.time, Label: label})
			}
		}
		if b.floods > 0 {
			ring := d.rings[b.proc-1]
			ring[node.Index%len(ring)] = snapEntry{idx: node.Index, snap: view.Snapshot(), left: b.floods}
		}
	}
	return nil
}

// Replay executes the configuration in a single goroutine: the recorder
// mirrors the environment loop of Run (same policy calls, same builder
// events, same batch order) while the driver feeds the recorded batches
// straight into each process's view and agent — no channels, no per-tick
// handshakes. The schedule streams through one bounded chunk
// (Config.ReplayChunk batches), so long-horizon runs never hold their event
// stream in memory.
//
// Replay is observationally identical to Run: the recording, its
// fingerprint, and every agent's view sequence and actions are
// byte-identical, because scheduling is agent-independent (agents only emit
// action labels) and every latency is at least 1 (so a chunk's arrivals
// always reference already-driven states). The differential tests pin this
// across the full scenario registry.
func Replay(cfg Config) (*Result, error) {
	st, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	bl := run.NewBuilder(cfg.Net, cfg.Horizon)
	if st.inj != nil {
		bl.Tolerate()
	}
	rec, err := newRecorder(cfg, st, bl)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	drv := newDriver(cfg, st, res)

	limit := cfg.ReplayChunk
	if limit <= 0 {
		limit = defaultReplayChunk
	}
	// A process creates at most one state per tick, so the whole schedule
	// holds at most horizon*n batches; capping the chunk there keeps short
	// runs from buying the default buffer, and presizing the slabs once
	// (fill overshoots limit by at most one tick, ≤ n batches) lets every
	// chunk cycle append without regrowing.
	n := cfg.Net.N()
	if most := int(cfg.Horizon) * n; most < limit {
		limit = most
	}
	chunk := replayChunk{
		batches:  make([]replayBatch, 0, limit+n),
		arrivals: make([]replayArrival, 0, 2*(limit+n)),
	}
	for {
		chunk.reset()
		if err := rec.fill(&chunk, limit); err != nil {
			return nil, err
		}
		if len(chunk.batches) == 0 {
			break
		}
		res.ReplayChunks++
		res.ReplayBatches += len(chunk.batches)
		if err := drv.drive(&chunk); err != nil {
			return nil, err
		}
	}

	if err := finish(cfg, st, bl, res); err != nil {
		return nil, err
	}
	if cfg.Engine != nil {
		cfg.Engine.NoteReplay(int64(res.ReplayBatches), int64(res.ReplayChunks))
	}
	return res, nil
}
