package sweep_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/coord"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/sweep"
)

// xAxisXs is the threshold axis the batched-x differentials sweep.
var xAxisXs = []int{0, 2, 4}

// xVariantScenarios expands the full registry (coordination families raised
// to m=16) across the x axis and appends per-x copies of the chaos family's
// coord-faulty scenarios, mirroring what `-sweep -sweep-x -sweep-faults`
// would enumerate. The faulty copies carry XBase/XValue like any axis
// variant; the batching gate must refuse them anyway.
func xVariantScenarios(t *testing.T) []*scenario.Scenario {
	t.Helper()
	scs, err := sweep.Axes{Xs: xAxisXs, MaxCoordM: 16}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xAxisXs {
		for _, sc := range scenario.FaultyFamily() {
			if !strings.HasSuffix(sc.Name, "-chaos") {
				continue
			}
			cp := *sc
			cp.Name = fmt.Sprintf("%s@x=%d", sc.Name, x)
			cp.XBase = sc.Name
			cp.XValue = x
			if x != 0 {
				cp.Tasks = append([]coord.Task(nil), sc.Tasks...)
				for i := range cp.Tasks {
					cp.Tasks[i].X = x
				}
				cp.Task = &cp.Tasks[0]
			}
			scs = append(scs, &cp)
		}
	}
	return scs
}

func xGrid(t *testing.T, mode string, noXBatch bool) sweep.Grid {
	return sweep.Grid{
		Live:     xVariantScenarios(t),
		LiveMode: mode,
		Policies: []sweep.PolicySpec{
			{Name: "eager", New: func(int64) sim.Policy { return sim.Eager{} }, Deterministic: true},
			{Name: "random", New: func(seed int64) sim.Policy { return sim.NewRandom(seed) }},
		},
		Seeds:    []int64{1},
		Workers:  0,
		NoXBatch: noXBatch,
	}
}

// semantic strips a Result down to the fields with run-level meaning,
// erasing execution attribution: the mode tag, prefix-cache verdict,
// reverse/batch engine counters, replay streaming tallies and the fanout
// marker all describe HOW the answer was computed — an x-batched group
// legitimately concentrates them on its primary row — while everything kept
// here must be byte-identical between a batched group and dedicated per-x
// executions.
func semantic(r sweep.Result) sweep.Result {
	r.Mode = ""
	r.Prefix = ""
	r.Rev = bounds.HandleStats{}
	r.ReplayBatches, r.ReplayChunks = 0, 0
	r.XFanout = 0
	return r
}

// TestXBatchMatchesDedicatedCells is the batched sweep's acceptance
// differential: over the full registry expanded across the x axis — the
// m=16 coordination families and the chaos-family coord-faulty scenarios
// included — every per-x row of the batched grid is semantically identical
// to a dedicated per-x execution of the same cell, in both replay and
// goroutine live modes; batchable families actually collapse (XFanout
// covers the whole x axis) and the faulted cells are refused batching.
func TestXBatchMatchesDedicatedCells(t *testing.T) {
	batched, err := xGrid(t, sweep.ModeReplay, false).Run()
	if err != nil {
		t.Fatal(err)
	}
	dedicated, err := xGrid(t, sweep.ModeReplay, true).Run()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := xGrid(t, sweep.ModeLive, true).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(dedicated) || len(batched) != len(oracle) {
		t.Fatalf("result counts differ: %d batched, %d dedicated, %d goroutine",
			len(batched), len(dedicated), len(oracle))
	}
	sawEarly16 := false
	for i := range batched {
		b, d, o := batched[i], dedicated[i], oracle[i]
		if b.Err != nil || d.Err != nil || o.Err != nil {
			t.Fatalf("%s/%s seed %d: cell error: batched=%v dedicated=%v goroutine=%v",
				b.Scenario, b.Policy, b.Seed, b.Err, d.Err, o.Err)
		}
		if strings.HasPrefix(b.Scenario, "coord-early-m16@") {
			sawEarly16 = true
		}
		if !reflect.DeepEqual(semantic(b), semantic(d)) {
			t.Errorf("cell %d differs from dedicated per-x execution:\n batched   %+v\n dedicated %+v",
				i, semantic(b), semantic(d))
		}
		if !reflect.DeepEqual(semantic(b), semantic(o)) {
			t.Errorf("cell %d differs from goroutine oracle:\n batched   %+v\n goroutine %+v",
				i, semantic(b), semantic(o))
		}
		if d.XFanout != 0 || o.XFanout != 0 {
			t.Errorf("cell %d: dedicated run reports fanout %d/%d, want 0",
				i, d.XFanout, o.XFanout)
		}
		if strings.Contains(b.Scenario, "coord-faulty") && b.XFanout != 0 {
			t.Errorf("%s: faulted cell joined an x batch (fanout %d)", b.Scenario, b.XFanout)
		}
	}
	if !sawEarly16 {
		t.Fatal("grid lost the coord-early-m16 family")
	}

	// Fanout accounting: within the batched run, each base family's rows
	// under one (policy, seed) either collapsed onto one primary answering
	// the whole axis, or (join refused: the x override moved more than task
	// thresholds, or faults) ran dedicated with no fanout at all.
	fanout := map[string]int{}
	rows := map[string]int{}
	for _, r := range batched {
		base, _, isVariant := strings.Cut(r.Scenario, "@x=")
		if !isVariant {
			continue
		}
		key := base + "/" + r.Policy
		rows[key]++
		fanout[key] += r.XFanout
	}
	collapsed := 0
	for key, n := range rows {
		if fanout[key] != 0 && fanout[key] != n {
			t.Errorf("%s: fanout %d covers only part of the %d-row x axis", key, fanout[key], n)
		}
		if fanout[key] == n {
			collapsed++
		}
		if strings.Contains(key, "coord-faulty") && fanout[key] != 0 {
			t.Errorf("%s: faulted family batched (fanout %d)", key, fanout[key])
		}
	}
	if collapsed == 0 {
		t.Fatal("no x-axis family collapsed onto a batched execution")
	}
	for _, key := range []string{"coord-m16/eager", "coord-early-m16/random"} {
		if fanout[key] != rows[key] || rows[key] != len(xAxisXs) {
			t.Errorf("%s: fanout %d over %d rows, want full %d-point collapse",
				key, fanout[key], rows[key], len(xAxisXs))
		}
	}
}

// TestXBatchActFeedbackGate pins the chained-coordination escape hatch: a
// scenario family declaring ActFeedback — its recordings depend on the acts
// themselves, so per-x runs genuinely differ — is refused batching even
// with XBase set, and its results match the dedicated path exactly.
func TestXBatchActFeedbackGate(t *testing.T) {
	var fam []*scenario.Scenario
	for _, x := range xAxisXs {
		base := scenario.MultiAgent(4)
		cp := *base
		cp.Name = fmt.Sprintf("%s@x=%d", base.Name, x)
		cp.XBase = base.Name
		cp.XValue = x
		cp.ActFeedback = true
		if x != 0 {
			cp.Tasks = append([]coord.Task(nil), base.Tasks...)
			for i := range cp.Tasks {
				cp.Tasks[i].X = x
			}
			cp.Task = &cp.Tasks[0]
		}
		fam = append(fam, &cp)
	}
	grid := sweep.Grid{
		Live: fam,
		Policies: []sweep.PolicySpec{
			{Name: "eager", New: func(int64) sim.Policy { return sim.Eager{} }, Deterministic: true},
		},
		Seeds: []int64{1},
	}
	gated, err := grid.Run()
	if err != nil {
		t.Fatal(err)
	}
	grid.NoXBatch = true
	dedicated, err := grid.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range gated {
		if gated[i].XFanout != 0 {
			t.Errorf("%s: ActFeedback cell joined an x batch (fanout %d)",
				gated[i].Scenario, gated[i].XFanout)
		}
		if !reflect.DeepEqual(gated[i], dedicated[i]) {
			t.Errorf("cell %d differs:\n gated     %+v\n dedicated %+v",
				i, gated[i], dedicated[i])
		}
	}
}
