package bounds

import (
	"github.com/clockless/zigzag/internal/graph"
	"github.com/clockless/zigzag/internal/run"
)

// LocalWeight computes the strongest precedence bound derivable from the
// local bounds graph GB(r, sigma) alone (Definition 14) — i.e. with the
// auxiliary horizon vertices and their E'/E”/E”' edges ablated. The paper
// shows GB(r, sigma) "misses important information" (Section 5.1); this
// method exists to measure exactly how much: experiments compare it against
// KnowledgeWeight, and the difference is the value of the extended graph.
//
// Both nodes must be basic nodes of the past; chains beyond the horizon
// cannot even be represented without the auxiliary vertices.
func (e *Extended) LocalWeight(sigma1, sigma2 run.BasicNode) (kw int, known bool, err error) {
	u, err := e.VertexOfPast(sigma1)
	if err != nil {
		return 0, false, err
	}
	v, err := e.VertexOfPast(sigma2)
	if err != nil {
		return 0, false, err
	}
	// Filter the graph to past-node vertices: everything below auxBase.
	local := graph.New(e.auxBase)
	for w := 0; w < e.auxBase; w++ {
		for _, edge := range e.g.Out(w) {
			if edge.To < e.auxBase {
				local.AddEdge(w, edge.To, edge.Weight)
			}
		}
	}
	dist, err := local.LongestWith(&e.scratch, u)
	if err != nil {
		return 0, false, err
	}
	if dist[v] == graph.NegInf {
		return 0, false, nil
	}
	return int(dist[v]), true, nil
}
