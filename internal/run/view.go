package run

import (
	"fmt"
	"sort"

	"github.com/clockless/zigzag/internal/model"
)

// View is the subjective information content of a node's local state under
// an FFIP: the structure of its causal past — which nodes exist, which
// deliveries wired them together, which external inputs arrived — and
// nothing else. Crucially, a View carries no real-time information: every
// analysis built on it (in particular the extended bounds graph and hence
// all knowledge computation) is a function of structure alone, which is the
// paper's clockless point made executable.
//
// Views come from two places: ViewOf extracts one from a recorded run
// (offline analysis), and the live engine of internal/live accumulates one
// message by message inside each process goroutine (online decisions).
type View struct {
	net    *model.Network
	origin BasicNode
	// members[p-1] is the boundary index of process p (-1 if absent).
	members []int
	// sent[from][toProc] = receiving node, for deliveries inside the view.
	sent map[BasicNode]map[model.ProcID]BasicNode
	// externals[node] lists external-input labels absorbed at that node.
	externals map[BasicNode][]string
}

// ViewOf extracts the view of sigma from a recorded run.
func ViewOf(r *Run, sigma BasicNode) (*View, error) {
	ps, err := r.Past(sigma)
	if err != nil {
		return nil, err
	}
	v := &View{
		net:       r.net,
		origin:    sigma,
		members:   append([]int(nil), ps.members...),
		sent:      make(map[BasicNode]map[model.ProcID]BasicNode),
		externals: make(map[BasicNode][]string),
	}
	for _, d := range r.deliveries {
		if !ps.Contains(d.To) {
			continue
		}
		v.recordDelivery(d.From, d.To)
	}
	for _, e := range r.externals {
		if ps.Contains(e.To) {
			v.externals[e.To] = append(v.externals[e.To], e.Label)
		}
	}
	return v, nil
}

// NewLocalView returns the view of process p's initial state.
func NewLocalView(net *model.Network, p model.ProcID) *View {
	v := &View{
		net:       net,
		origin:    BasicNode{Proc: p, Index: 0},
		members:   make([]int, net.N()),
		sent:      make(map[BasicNode]map[model.ProcID]BasicNode),
		externals: make(map[BasicNode][]string),
	}
	for i := range v.members {
		v.members[i] = -1
	}
	v.members[p-1] = 0
	return v
}

func (v *View) recordDelivery(from BasicNode, to BasicNode) {
	m := v.sent[from]
	if m == nil {
		m = make(map[model.ProcID]BasicNode)
		v.sent[from] = m
	}
	m[to.Proc] = to
}

// Net returns the network the view lives in.
func (v *View) Net() *model.Network { return v.net }

// Origin returns the node whose local state the view represents.
func (v *View) Origin() BasicNode { return v.origin }

// Contains reports membership of a basic node in the view.
func (v *View) Contains(b BasicNode) bool {
	if b.Proc < 1 || int(b.Proc) > len(v.members) || b.Index < 0 {
		return false
	}
	return b.Index <= v.members[b.Proc-1]
}

// Boundary returns the last node of process p inside the view.
func (v *View) Boundary(p model.ProcID) (BasicNode, bool) {
	if p < 1 || int(p) > len(v.members) || v.members[p-1] < 0 {
		return BasicNode{}, false
	}
	return BasicNode{Proc: p, Index: v.members[p-1]}, true
}

// PastSet converts the view's membership to a PastSet (for callers that
// verify witnesses against recorded runs).
func (v *View) PastSet() *PastSet {
	return &PastSet{origin: v.origin, members: append([]int(nil), v.members...)}
}

// Size returns the number of nodes in the view.
func (v *View) Size() int {
	total := 0
	for _, k := range v.members {
		total += k + 1
	}
	return total
}

// DeliveryTo returns the node that received the message sent at from to
// process to, if that delivery is inside the view.
func (v *View) DeliveryTo(from BasicNode, to model.ProcID) (BasicNode, bool) {
	m, ok := v.sent[from]
	if !ok {
		return BasicNode{}, false
	}
	b, ok := m[to]
	return b, ok
}

// Deliveries returns the view's deliveries as (from, to) node pairs in
// deterministic order, with the dense channel id resolved. Send and receive
// times are structural unknowns and left zero.
func (v *View) Deliveries() []Delivery {
	var out []Delivery
	for from, m := range v.sent {
		for _, to := range m {
			out = append(out, Delivery{From: from, To: to, Chan: v.net.ChanIDOf(from.Proc, to.Proc)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		if a.From.Index != b.From.Index {
			return a.From.Index < b.From.Index
		}
		return a.To.Proc < b.To.Proc
	})
	return out
}

// Leaving returns the (sender, destination) pairs of FFIP messages sent at
// view nodes and not received inside the view — the E” generators of the
// extended bounds graph. Send times are structural unknowns and left zero.
func (v *View) Leaving() []Pending {
	var out []Pending
	for i, k := range v.members {
		p := model.ProcID(i + 1)
		for idx := 1; idx <= k; idx++ {
			from := BasicNode{Proc: p, Index: idx}
			for _, a := range v.net.OutArcs(p) {
				if _, ok := v.DeliveryTo(from, a.To); !ok {
					out = append(out, Pending{From: from, To: a.To, Chan: a.ID})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		if a.From.Index != b.From.Index {
			return a.From.Index < b.From.Index
		}
		return a.To < b.To
	})
	return out
}

// ResolvePrefix resolves theta's chain while it stays inside the view,
// mirroring (*Run).ChainPrefix: it returns the resolved prefix nodes and
// hop count.
func (v *View) ResolvePrefix(theta GeneralNode) (prefix []BasicNode, hops int) {
	cur := theta.Base
	if !v.Contains(cur) {
		return nil, 0
	}
	prefix = append(prefix, cur)
	for _, next := range theta.Path[1:] {
		if cur.IsInitial() {
			return prefix, hops
		}
		d, ok := v.DeliveryTo(cur, next)
		if !ok {
			return prefix, hops
		}
		cur = d
		prefix = append(prefix, cur)
		hops++
	}
	return prefix, hops
}

// ExternalsAt returns the external labels absorbed at a view node.
func (v *View) ExternalsAt(b BasicNode) []string {
	out := append([]string(nil), v.externals[b]...)
	sort.Strings(out)
	return out
}

// FindExternal locates the earliest node of process p that absorbed an
// external input with the given label, scanning p's timeline inside the
// view.
func (v *View) FindExternal(p model.ProcID, label string) (BasicNode, bool) {
	bnd, ok := v.Boundary(p)
	if !ok {
		return BasicNode{}, false
	}
	for k := 1; k <= bnd.Index; k++ {
		n := BasicNode{Proc: p, Index: k}
		for _, l := range v.externals[n] {
			if l == label {
				return n, true
			}
		}
	}
	return BasicNode{}, false
}

// Receipt describes one incoming FFIP message for Absorb: the sender's node
// and the sender's view at that node (the full-information payload).
type Receipt struct {
	From    BasicNode
	Payload *View
}

// Absorb advances the view by one receive batch: the owning process moves
// to its next local state, merges every sender's payload view, records the
// batch's deliveries and external inputs, and returns the new node. It
// implements the FFIP state transition on the receiving side.
func (v *View) Absorb(receipts []Receipt, externalLabels []string) (BasicNode, error) {
	p := v.origin.Proc
	next := BasicNode{Proc: p, Index: v.members[p-1] + 1}
	v.members[p-1] = next.Index
	v.origin = next
	for _, rc := range receipts {
		if rc.Payload != nil {
			if err := v.merge(rc.Payload); err != nil {
				return BasicNode{}, err
			}
		}
		if !v.Contains(rc.From) {
			return BasicNode{}, fmt.Errorf("run: receipt from %s not covered by its own payload", rc.From)
		}
		v.recordDelivery(rc.From, next)
	}
	for _, l := range externalLabels {
		v.externals[next] = append(v.externals[next], l)
	}
	return next, nil
}

// merge unions another view into this one.
func (v *View) merge(o *View) error {
	if len(o.members) != len(v.members) {
		return fmt.Errorf("run: merging views over different networks")
	}
	for i, k := range o.members {
		if k > v.members[i] {
			v.members[i] = k
		}
	}
	for from, m := range o.sent {
		for _, node := range m {
			v.recordDelivery(from, node)
		}
	}
	for node, labels := range o.externals {
		have := make(map[string]bool, len(v.externals[node]))
		for _, l := range v.externals[node] {
			have[l] = true
		}
		for _, l := range labels {
			if !have[l] {
				v.externals[node] = append(v.externals[node], l)
			}
		}
	}
	return nil
}

// Clone returns a deep copy, used as the payload of outgoing FFIP messages
// (the sender's history frozen at send time).
func (v *View) Clone() *View {
	c := &View{
		net:       v.net,
		origin:    v.origin,
		members:   append([]int(nil), v.members...),
		sent:      make(map[BasicNode]map[model.ProcID]BasicNode, len(v.sent)),
		externals: make(map[BasicNode][]string, len(v.externals)),
	}
	for from, m := range v.sent {
		cm := make(map[model.ProcID]BasicNode, len(m))
		for to, node := range m {
			cm[to] = node
		}
		c.sent[from] = cm
	}
	for node, labels := range v.externals {
		c.externals[node] = append([]string(nil), labels...)
	}
	return c
}
