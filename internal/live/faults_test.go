package live_test

import (
	"errors"
	"reflect"
	"testing"

	"github.com/clockless/zigzag/internal/bounds"
	"github.com/clockless/zigzag/internal/faults"
	"github.com/clockless/zigzag/internal/live"
	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/scenario"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/sweep"
)

// faultyPolicies are the policy families the faulted differential tests
// cross with the plan families: the deterministic extreme and a seeded
// random environment.
func faultyPolicies() []sweep.PolicySpec {
	return []sweep.PolicySpec{
		{Name: "eager", New: func(int64) sim.Policy { return sim.Eager{} }},
		{Name: "random", New: func(seed int64) sim.Policy { return sim.NewRandom(seed) }},
	}
}

// faultedConfig assembles the live configuration of one faulted cell.
func faultedConfig(t *testing.T, sc *scenario.Scenario, policy sim.Policy, seed int64,
	agents map[model.ProcID]live.Agent) (live.Config, *faults.Plan) {
	t.Helper()
	plan, err := faults.NewPlan(sc.FaultFamily, sc.Net, sc.Horizon, seed)
	if err != nil {
		t.Fatalf("%s: NewPlan: %v", sc.Name, err)
	}
	return live.Config{
		Net: sc.Net, Horizon: sc.Horizon, Policy: policy,
		Externals: sc.Externals, Agents: agents, Faults: plan,
	}, plan
}

// TestFaultedModesAgree pins the tentpole's byte-for-byte guarantee: for
// every coord-faulty scenario, plan family and policy, the goroutine
// environment, the replay drive and the offline simulator inject the
// identical faults and agree on the recording's fingerprint, the violation
// report, the crashed set, every agent action and every agent's Degraded
// flag.
func TestFaultedModesAgree(t *testing.T) {
	seeds := []int64{1, 2, 3}
	for _, sc := range scenario.FaultyFamily() {
		for _, spec := range faultyPolicies() {
			for _, seed := range seeds {
				tag := sc.Name + "/" + spec.Name
				tasks := sc.TaskList()

				gAgents, gMap := live.NewTaskAgents(tasks)
				gCfg, plan := faultedConfig(t, sc, spec.New(seed), seed, gMap)
				gOut, err := live.Run(gCfg)
				if err != nil {
					t.Fatalf("%s seed %d: goroutine: %v", tag, seed, err)
				}

				rAgents, rMap := live.NewTaskAgents(tasks)
				rCfg, _ := faultedConfig(t, sc, spec.New(seed), seed, rMap)
				rOut, err := live.Replay(rCfg)
				if err != nil {
					t.Fatalf("%s seed %d: replay: %v", tag, seed, err)
				}

				sr, sRep, err := sim.SimulateFaulty(sim.Config{
					Net: sc.Net, Horizon: sc.Horizon, Policy: spec.New(seed),
					Externals: sc.Externals, Faults: plan,
				})
				if err != nil {
					t.Fatalf("%s seed %d: sim: %v", tag, seed, err)
				}

				if g, r := gOut.Run.Fingerprint(), rOut.Run.Fingerprint(); g != r {
					t.Fatalf("%s seed %d: goroutine fp %#x != replay fp %#x", tag, seed, g, r)
				}
				if g, s := gOut.Run.Fingerprint(), sr.Fingerprint(); g != s {
					t.Fatalf("%s seed %d: live fp %#x != sim fp %#x", tag, seed, g, s)
				}
				if !reflect.DeepEqual(gOut.Actions, rOut.Actions) {
					t.Fatalf("%s seed %d: actions differ:\n goroutine %v\n replay    %v",
						tag, seed, gOut.Actions, rOut.Actions)
				}
				if !reflect.DeepEqual(gOut.Violations, rOut.Violations) ||
					!reflect.DeepEqual(gOut.Violations, sRep.Violations) {
					t.Fatalf("%s seed %d: violation reports differ across modes", tag, seed)
				}
				if !reflect.DeepEqual(gOut.Crashed, rOut.Crashed) ||
					!reflect.DeepEqual(gOut.Crashed, sRep.Crashed) {
					t.Fatalf("%s seed %d: crashed sets differ across modes", tag, seed)
				}
				if !reflect.DeepEqual(gOut.Degraded, rOut.Degraded) {
					t.Fatalf("%s seed %d: degraded sets differ: goroutine %v, replay %v",
						tag, seed, gOut.Degraded, rOut.Degraded)
				}
				for i := range gAgents {
					if gAgents[i].Err() != nil || rAgents[i].Err() != nil {
						t.Fatalf("%s seed %d: agent %s internal error (goroutine %v, replay %v) — violations must degrade, not error",
							tag, seed, live.TaskLabel(i), gAgents[i].Err(), rAgents[i].Err())
					}
					if gd, rd := gAgents[i].Degraded(), rAgents[i].Degraded(); gd != rd {
						t.Fatalf("%s seed %d: agent %s Degraded: goroutine %v, replay %v",
							tag, seed, live.TaskLabel(i), gd, rd)
					}
					if gAgents[i].Degraded() {
						if reason := gAgents[i].DegradeReason(); !errors.Is(reason, faults.ErrBoundViolation) {
							t.Fatalf("%s seed %d: degrade reason %v does not wrap ErrBoundViolation",
								tag, seed, reason)
						}
					}
				}
			}
		}
	}
}

// TestFaultedNoEarlyActs is the chaos safety invariant: across every
// coord-faulty scenario, plan family, policy and seed, every action any
// agent performed satisfies its task specification on the faulted run that
// actually happened — the environment lied, yet no agent acted early. The
// test also requires the plans to have real teeth: across the sweep, faults
// must fire (violations recorded) and degrade agents.
func TestFaultedNoEarlyActs(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	totalViolations, totalDegraded, totalActs := 0, 0, 0
	for _, sc := range scenario.FaultyFamily() {
		for _, spec := range faultyPolicies() {
			for _, seed := range seeds {
				tasks := sc.TaskList()
				_, agentMap := live.NewTaskAgents(tasks)
				cfg, _ := faultedConfig(t, sc, spec.New(seed), seed, agentMap)
				out, err := live.Replay(cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", sc.Name, spec.Name, seed, err)
				}
				totalViolations += len(out.Violations)
				totalDegraded += len(out.Degraded)
				totalActs += len(out.Actions)
				byLabel := make(map[string]int, len(tasks))
				for i := range tasks {
					byLabel[live.TaskLabel(i)] = i
				}
				for _, act := range out.Actions {
					i, ok := byLabel[act.Label]
					if !ok {
						t.Fatalf("%s/%s seed %d: unknown action label %q", sc.Name, spec.Name, seed, act.Label)
					}
					if err := tasks[i].AuditAct(out.Run, act.Time); err != nil {
						t.Fatalf("%s/%s seed %d: EARLY ACT by %s: %v", sc.Name, spec.Name, seed, act.Label, err)
					}
				}
			}
		}
	}
	if totalViolations == 0 {
		t.Fatal("no plan injected a single violation: the chaos axis has no teeth")
	}
	if totalDegraded == 0 {
		t.Fatal("no agent ever degraded: the degradation frontier never reached an agent")
	}
	if totalActs == 0 {
		t.Fatal("no agent ever acted: the safety audit is vacuous")
	}
}

// TestFaultedEnginesAgree pins engine-independence under faults: on every
// faulted cell, agents answering through a per-run shared engine act and
// degrade exactly like agents rebuilding a fresh bounds graph per state.
// Healthy partitions of a faulted run must answer byte-identically to fresh
// builds — a violated bound elsewhere cannot corrupt standing state.
func TestFaultedEnginesAgree(t *testing.T) {
	seeds := []int64{1, 2}
	for _, sc := range scenario.FaultyFamily() {
		eng := bounds.NewNetworkEngine(sc.Net)
		for _, spec := range faultyPolicies() {
			for _, seed := range seeds {
				tag := sc.Name + "/" + spec.Name
				tasks := sc.TaskList()

				sAgents, sMap := live.NewTaskAgents(tasks)
				sCfg, _ := faultedConfig(t, sc, spec.New(seed), seed, sMap)
				sCfg.Engine = eng
				sOut, err := live.Replay(sCfg)
				if err != nil {
					t.Fatalf("%s seed %d: shared: %v", tag, seed, err)
				}

				bAgents, bMap := live.NewTaskAgents(tasks)
				for i := range bAgents {
					bAgents[i].Rebuild = true
				}
				bCfg, _ := faultedConfig(t, sc, spec.New(seed), seed, bMap)
				bOut, err := live.Replay(bCfg)
				if err != nil {
					t.Fatalf("%s seed %d: rebuild: %v", tag, seed, err)
				}

				if !reflect.DeepEqual(sOut.Actions, bOut.Actions) {
					t.Fatalf("%s seed %d: engine-dependent actions:\n shared  %v\n rebuild %v",
						tag, seed, sOut.Actions, bOut.Actions)
				}
				for i := range sAgents {
					if sAgents[i].Err() != nil || bAgents[i].Err() != nil {
						t.Fatalf("%s seed %d: agent %s internal error (shared %v, rebuild %v)",
							tag, seed, live.TaskLabel(i), sAgents[i].Err(), bAgents[i].Err())
					}
					if sd, bd := sAgents[i].Degraded(), bAgents[i].Degraded(); sd != bd {
						t.Fatalf("%s seed %d: agent %s Degraded: shared %v, rebuild %v",
							tag, seed, live.TaskLabel(i), sd, bd)
					}
				}
			}
		}
	}
}
