package model

import (
	"fmt"
	"strings"
)

// Path is a sequence of process names describing a walk in the network
// graph, as in Section 2.1 of the paper. A singleton path [i] denotes the
// process i itself; longer paths describe message chains.
type Path []ProcID

// SingletonPath returns the path [i].
func SingletonPath(i ProcID) Path { return Path{i} }

// First returns the first process of the path. It panics on an empty path.
func (p Path) First() ProcID { return p[0] }

// Last returns the last process of the path. It panics on an empty path.
func (p Path) Last() ProcID { return p[len(p)-1] }

// IsSingleton reports whether the path consists of a single process.
func (p Path) IsSingleton() bool { return len(p) == 1 }

// Hops returns the number of channel traversals, len(p)-1.
func (p Path) Hops() int { return len(p) - 1 }

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Append returns a new path p . q (concatenation of sequences). It does not
// require the endpoints to match; use Compose for the paper's composition.
func (p Path) Append(q ...ProcID) Path {
	r := make(Path, 0, len(p)+len(q))
	r = append(r, p...)
	r = append(r, q...)
	return r
}

// Compose implements the paper's path composition pq, defined when the last
// element of p coincides with the first element of q: the shared process is
// written once.
func (p Path) Compose(q Path) (Path, error) {
	if len(p) == 0 || len(q) == 0 {
		return nil, ErrEmptyPath
	}
	if p.Last() != q.First() {
		return nil, fmt.Errorf("model: cannot compose %v with %v: endpoint mismatch", p, q)
	}
	r := make(Path, 0, len(p)+len(q)-1)
	r = append(r, p...)
	r = append(r, q[1:]...)
	return r, nil
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether q is a prefix of p.
func (p Path) HasPrefix(q Path) bool {
	if len(q) > len(p) {
		return false
	}
	return p[:len(q)].Equal(q)
}

// String renders the path as "[1 3 2]" style "1>3>2".
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, id := range p {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, ">")
}

// ValidIn reports whether every consecutive pair of the path is a channel of
// net and the path is non-empty with valid processes.
func (p Path) ValidIn(net *Network) error {
	if len(p) == 0 {
		return ErrEmptyPath
	}
	for _, id := range p {
		if !net.ValidProc(id) {
			return fmt.Errorf("%w: %d", ErrBadProc, id)
		}
	}
	for i := 0; i+1 < len(p); i++ {
		if !net.HasChan(p[i], p[i+1]) {
			return fmt.Errorf("%w: %d->%d in %s", ErrBrokenPath, p[i], p[i+1], p)
		}
	}
	return nil
}

// LowerSum returns L(p), the sum of lower bounds along the path
// (Section 2.1). The path must be valid in net.
func (net *Network) LowerSum(p Path) (int, error) {
	if err := p.ValidIn(net); err != nil {
		return 0, err
	}
	sum := 0
	for i := 0; i+1 < len(p); i++ {
		sum += net.Lower(p[i], p[i+1])
	}
	return sum, nil
}

// UpperSum returns U(p), the sum of upper bounds along the path.
func (net *Network) UpperSum(p Path) (int, error) {
	if err := p.ValidIn(net); err != nil {
		return 0, err
	}
	sum := 0
	for i := 0; i+1 < len(p); i++ {
		sum += net.Upper(p[i], p[i+1])
	}
	return sum, nil
}

// MustLowerSum is LowerSum that panics on error: for paths whose validity
// the caller has already established (witness verification re-walks paths a
// checked zigzag produced). Rendering and other consumers of possibly
// hand-built patterns use LowerSum and surface the error.
func (net *Network) MustLowerSum(p Path) int {
	v, err := net.LowerSum(p)
	if err != nil {
		panic(err)
	}
	return v
}

// MustUpperSum is UpperSum that panics on error — the same contract as
// MustLowerSum.
func (net *Network) MustUpperSum(p Path) int {
	v, err := net.UpperSum(p)
	if err != nil {
		panic(err)
	}
	return v
}

// ShortestHopPath returns a path from src to dst minimizing hop count, using
// breadth-first search, or nil if dst is unreachable. Singleton when
// src == dst.
func (net *Network) ShortestHopPath(src, dst ProcID) Path {
	if !net.ValidProc(src) || !net.ValidProc(dst) {
		return nil
	}
	if src == dst {
		return SingletonPath(src)
	}
	prev := make(map[ProcID]ProcID, net.n)
	seen := make(map[ProcID]bool, net.n)
	seen[src] = true
	queue := []ProcID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range net.Out(cur) {
			if seen[nxt] {
				continue
			}
			seen[nxt] = true
			prev[nxt] = cur
			if nxt == dst {
				var rev Path
				for at := dst; ; at = prev[at] {
					rev = append(rev, at)
					if at == src {
						break
					}
				}
				// Reverse in place.
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, nxt)
		}
	}
	return nil
}

// Reachable reports whether dst is reachable from src along channels.
func (net *Network) Reachable(src, dst ProcID) bool {
	return net.ShortestHopPath(src, dst) != nil
}

// Diameter returns the maximum over all ordered reachable pairs of the
// minimum hop count, or 0 for networks with no reachable pairs.
func (net *Network) Diameter() int {
	max := 0
	for _, src := range net.Procs() {
		// BFS computing hop distances from src.
		dist := map[ProcID]int{src: 0}
		queue := []ProcID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nxt := range net.Out(cur) {
				if _, ok := dist[nxt]; ok {
					continue
				}
				dist[nxt] = dist[cur] + 1
				if dist[nxt] > max {
					max = dist[nxt]
				}
				queue = append(queue, nxt)
			}
		}
	}
	return max
}
