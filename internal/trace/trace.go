// Package trace serializes networks and runs to JSON so that executions can
// be archived, diffed and replayed — the artifact format of the experiment
// harness. Decoding rebuilds a Run through the ordinary builder, so every
// loaded trace re-passes legality validation.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
)

// NetworkJSON is the wire form of a network.
type NetworkJSON struct {
	Procs    int           `json:"procs"`
	Channels []ChannelJSON `json:"channels"`
}

// ChannelJSON is the wire form of one channel.
type ChannelJSON struct {
	From  model.ProcID `json:"from"`
	To    model.ProcID `json:"to"`
	Lower int          `json:"lower"`
	Upper int          `json:"upper"`
}

// RunJSON is the wire form of a recorded run.
type RunJSON struct {
	Network   NetworkJSON    `json:"network"`
	Horizon   model.Time     `json:"horizon"`
	Messages  []MessageJSON  `json:"messages"`
	Externals []ExternalJSON `json:"externals"`
}

// MessageJSON is the wire form of one delivery.
type MessageJSON struct {
	From model.ProcID `json:"from"`
	To   model.ProcID `json:"to"`
	Sent model.Time   `json:"sent"`
	Recv model.Time   `json:"recv"`
}

// ExternalJSON is the wire form of one external input.
type ExternalJSON struct {
	Proc  model.ProcID `json:"proc"`
	Time  model.Time   `json:"time"`
	Label string       `json:"label"`
}

// EncodeNetwork converts a network to its wire form. Channels are emitted in
// ChanID order, which is the (From, To) lexicographic order of the dense arc
// table — the same deterministic order the map-based encoding produced.
func EncodeNetwork(net *model.Network) NetworkJSON {
	out := NetworkJSON{Procs: net.N()}
	for _, a := range net.Arcs() {
		out.Channels = append(out.Channels, ChannelJSON{
			From: a.From, To: a.To, Lower: a.Bounds.Lower, Upper: a.Bounds.Upper,
		})
	}
	return out
}

// DecodeNetwork rebuilds a network from its wire form.
func DecodeNetwork(nj NetworkJSON) (*model.Network, error) {
	b := model.NewBuilder(nj.Procs)
	for _, ch := range nj.Channels {
		b.Chan(ch.From, ch.To, ch.Lower, ch.Upper)
	}
	return b.Build()
}

// EncodeRun converts a run to its wire form.
func EncodeRun(r *run.Run) RunJSON {
	out := RunJSON{
		Network: EncodeNetwork(r.Net()),
		Horizon: r.Horizon(),
	}
	for _, d := range r.Deliveries() {
		out.Messages = append(out.Messages, MessageJSON{
			From: d.From.Proc, To: d.To.Proc, Sent: d.SendTime, Recv: d.RecvTime,
		})
	}
	for _, e := range r.Externals() {
		out.Externals = append(out.Externals, ExternalJSON{
			Proc: e.To.Proc, Time: e.Time, Label: e.Label,
		})
	}
	return out
}

// DecodeRun rebuilds a run from its wire form via the standard builder and
// validates it.
func DecodeRun(rj RunJSON) (*run.Run, error) {
	net, err := DecodeNetwork(rj.Network)
	if err != nil {
		return nil, fmt.Errorf("trace: network: %w", err)
	}
	bl := run.NewBuilder(net, rj.Horizon)
	for _, m := range rj.Messages {
		bl.Message(run.MessageEvent{FromProc: m.From, ToProc: m.To, SendTime: m.Sent, RecvTime: m.Recv})
	}
	for _, e := range rj.Externals {
		bl.External(run.ExternalEvent{Proc: e.Proc, Time: e.Time, Label: e.Label})
	}
	r, err := bl.Build()
	if err != nil {
		return nil, fmt.Errorf("trace: run: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("trace: loaded run illegal: %w", err)
	}
	return r, nil
}

// WriteRun streams a run as indented JSON.
func WriteRun(w io.Writer, r *run.Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(EncodeRun(r))
}

// ReadRun loads a run from JSON.
func ReadRun(rd io.Reader) (*run.Run, error) {
	var rj RunJSON
	if err := json.NewDecoder(rd).Decode(&rj); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return DecodeRun(rj)
}
