package bounds

import (
	"errors"
	"fmt"
	"testing"

	"github.com/clockless/zigzag/internal/model"
	"github.com/clockless/zigzag/internal/run"
	"github.com/clockless/zigzag/internal/sim"
	"github.com/clockless/zigzag/internal/workload"
)

// replayViews reconstructs, from a recorded run, the exact view evolution
// process p's goroutine would see live: for each state k >= 1 it absorbs
// the recorded inbox (with the senders' views at their send nodes as
// payload snapshots) and externals, and calls visit with the shared,
// mutating view. This is the offline stand-in for a live process that lets
// tests walk every state deterministically.
func replayViews(t *testing.T, r *run.Run, p model.ProcID, visit func(k int, v *run.View)) {
	t.Helper()
	payloads := make(map[run.BasicNode]*run.Snapshot)
	view := run.NewLocalView(r.Net(), p)
	for k := 1; k <= r.LastIndex(p); k++ {
		node := run.BasicNode{Proc: p, Index: k}
		var receipts []run.Receipt
		for _, d := range r.Inbox(node) {
			snap, ok := payloads[d.From]
			if !ok {
				pv, err := run.ViewOf(r, d.From)
				if err != nil {
					t.Fatal(err)
				}
				snap = pv.Snapshot()
				payloads[d.From] = snap
			}
			receipts = append(receipts, run.Receipt{From: d.From, Payload: snap})
		}
		var labels []string
		for _, e := range r.ExternalsAt(node) {
			labels = append(labels, e.Label)
		}
		if _, err := view.Absorb(receipts, labels); err != nil {
			t.Fatal(err)
		}
		visit(k, view)
	}
}

// queryNodes picks the query endpoints for one state: the origin itself and
// every non-initial boundary node of the view, plus one-hop general nodes
// off each of them (whose chains routinely leave the past, exercising the
// beyond-horizon chain vertices).
func queryNodes(v *run.View) []run.GeneralNode {
	net := v.Net()
	var out []run.GeneralNode
	add := func(b run.BasicNode) {
		out = append(out, run.At(b))
		if arcs := net.OutArcs(b.Proc); len(arcs) > 0 {
			out = append(out, run.At(b).Hop(arcs[0].To))
			if len(arcs) > 1 {
				out = append(out, run.At(b).Hop(arcs[len(arcs)-1].To))
			}
		}
	}
	add(v.Origin())
	for p := model.ProcID(1); int(p) <= net.N(); p++ {
		if len(out) >= 9 {
			break // enough pairs per state; the state loop supplies volume
		}
		if bnd, ok := v.Boundary(p); ok && !bnd.IsInitial() && bnd != v.Origin() {
			add(bnd)
		}
	}
	return out
}

// TestOnlineMatchesFreshBuild is the engine's differential acceptance test:
// on every state of random scenarios, every knowledge answer of the
// incrementally maintained graph — knowledge weight, knownness and error
// class, over basic and chain-crossing general node pairs, in both
// directions — is identical to a fresh NewExtendedFromView of the same
// view.
func TestOnlineMatchesFreshBuild(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Procs = 4 + int(seed%3)
		in := workload.MustGenerate(cfg)
		r, err := in.Simulate(sim.NewRandom(seed * 13))
		if err != nil {
			t.Fatal(err)
		}
		// Two observers per run keep the state loop quadratic work bounded;
		// different seeds rotate which processes observe.
		procs := in.Net.Procs()
		observers := []model.ProcID{procs[int(seed)%len(procs)], procs[(int(seed)+2)%len(procs)]}
		for _, p := range observers {
			if r.LastIndex(p) == 0 {
				continue
			}
			var eng *Online
			// fixed is a source queried both last and first around every
			// state transition, so the warm-started RelaxFrom path — cached
			// distances re-relaxed across a sync that added and removed
			// edges — is exercised and compared at every state.
			fixed := run.At(run.BasicNode{Proc: p, Index: 1})
			replayViews(t, r, p, func(k int, v *run.View) {
				if eng == nil {
					eng = NewOnline(v)
				}
				fresh, err := NewExtendedFromView(v)
				if err != nil {
					t.Fatal(err)
				}
				qs := append([]run.GeneralNode{fixed}, queryNodes(v)...)
				qs = append(qs, fixed)
				for i, t1 := range qs {
					for j, t2 := range qs {
						if i == j && t1.IsBasic() {
							continue
						}
						wantKW, _, wantKnown, wantErr := fresh.KnowledgeWeight(t1, t2)
						gotKW, gotKnown, gotErr := eng.KnowledgeWeight(t1, t2)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("seed %d p%d#%d %s->%s: err fresh=%v online=%v",
								seed, p, k, t1, t2, wantErr, gotErr)
						}
						if wantErr != nil {
							continue
						}
						if wantKnown != gotKnown || (wantKnown && wantKW != gotKW) {
							t.Fatalf("seed %d p%d#%d %s->%s: fresh (%d,%v) online (%d,%v)",
								seed, p, k, t1, t2, wantKW, wantKnown, gotKW, gotKnown)
						}
					}
				}
			})
		}
	}
}

// TestOnlineQueriesAreRepeatable: speculative chain vertices roll back
// completely, so asking the same question twice (and interleaving other
// questions) never changes an answer within one state.
func TestOnlineQueriesAreRepeatable(t *testing.T) {
	in := workload.MustGenerate(workload.DefaultConfig(3))
	r, err := in.Simulate(sim.NewRandom(5))
	if err != nil {
		t.Fatal(err)
	}
	p := in.Net.Procs()[0]
	if r.LastIndex(p) == 0 {
		t.Skip("process never moves")
	}
	var eng *Online
	replayViews(t, r, p, func(k int, v *run.View) {
		if eng == nil {
			eng = NewOnline(v)
		}
		qs := queryNodes(v)
		type key struct{ i, j int }
		first := make(map[key]string)
		for round := 0; round < 2; round++ {
			for i, t1 := range qs {
				for j, t2 := range qs {
					kw, known, err := eng.KnowledgeWeight(t1, t2)
					got := fmt.Sprintf("%d/%v/%v", kw, known, err)
					if round == 0 {
						first[key{i, j}] = got
					} else if first[key{i, j}] != got {
						t.Fatalf("state %d: %s->%s changed between rounds: %q vs %q",
							k, t1, t2, first[key{i, j}], got)
					}
					if before := eng.NumVertices(); true {
						if kw2, known2, err2 := eng.KnowledgeWeight(t1, t2); kw2 != kw || known2 != known || (err2 == nil) != (err == nil) {
							t.Fatalf("state %d: %s->%s not repeatable", k, t1, t2)
						} else if eng.NumVertices() != before {
							t.Fatalf("state %d: query leaked %d vertices", k, eng.NumVertices()-before)
						}
					}
				}
			}
		}
	})
}

// TestOnlineRejectsUnmodeledChannel mirrors the fresh-build error path: a
// delivery over a channel the network does not model surfaces as
// model.ErrNoChannel from the online engine too — and keeps doing so on
// every retry (the log watermark stays on the bad entry), matching a fresh
// build's stable answer instead of degrading into an internal error.
func TestOnlineRejectsUnmodeledChannel(t *testing.T) {
	net := model.NewBuilder(3).Chan(1, 2, 1, 2).Chan(2, 3, 1, 2).MustBuild()
	sender := run.NewLocalView(net, 3)
	from, err := sender.Absorb(nil, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	receiver := run.NewLocalView(net, 2)
	eng := NewOnline(receiver)
	if _, err := receiver.Absorb([]run.Receipt{{From: from, Payload: sender.Snapshot()}}, nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := eng.Sync(); !errors.Is(err, model.ErrNoChannel) {
			t.Fatalf("round %d: got %v, want model.ErrNoChannel", round, err)
		}
		sigma := run.At(receiver.Origin())
		if _, _, err := eng.KnowledgeWeight(sigma, sigma); !errors.Is(err, model.ErrNoChannel) {
			t.Fatalf("round %d: query error = %v, want model.ErrNoChannel", round, err)
		}
	}
}
