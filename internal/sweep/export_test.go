package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteFormats checks the CSV and JSON renderings of a small sweep:
// schema-correct, deterministic, and carrying the same aggregates as the
// table.
func TestWriteFormats(t *testing.T) {
	g := fullGrid(0)
	g.Seeds = []int64{1, 2}
	results, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	aggs := Summarize(results)

	var buf bytes.Buffer
	if err := Write(&buf, "csv", aggs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("csv output does not parse: %v", err)
	}
	if len(rows) != len(aggs)+1 {
		t.Fatalf("csv rows = %d, want %d aggregates + header", len(rows), len(aggs))
	}
	if got := len(rows[0]); got != len(csvHeader) {
		t.Fatalf("csv header has %d columns, want %d", got, len(csvHeader))
	}
	for i, a := range aggs {
		if rows[i+1][0] != a.Scenario || rows[i+1][1] != ModeSim || rows[i+1][2] != a.Policy {
			t.Errorf("csv row %d is (%s,%s,%s), want (%s,%s,%s)",
				i, rows[i+1][0], rows[i+1][1], rows[i+1][2], a.Scenario, ModeSim, a.Policy)
		}
	}

	buf.Reset()
	if err := Write(&buf, "json", aggs); err != nil {
		t.Fatal(err)
	}
	var decoded []Aggregate
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if len(decoded) != len(aggs) {
		t.Fatalf("json aggregates = %d, want %d", len(decoded), len(aggs))
	}
	for i := range aggs {
		if decoded[i].Scenario != aggs[i].Scenario || decoded[i].Runs != aggs[i].Runs {
			t.Errorf("json aggregate %d round-trips to %+v, want %+v", i, decoded[i], aggs[i])
		}
	}

	buf.Reset()
	if err := Write(&buf, "table", aggs); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != Table(aggs) {
		t.Error("table format does not match Table()")
	}

	if err := Write(&buf, "yaml", aggs); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestRegistryIncludesRandomFamily pins the generated random-topology
// scenarios as seen by sweeps: present and producing legal runs.
func TestRegistryIncludesRandomFamily(t *testing.T) {
	g := fullGrid(0)
	seen := 0
	for _, sc := range g.Scenarios {
		if strings.HasPrefix(sc.Name, "random-") {
			seen++
			r, err := sc.Simulate(nil)
			if err != nil {
				t.Fatalf("%s does not simulate: %v", sc.Name, err)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("%s produces illegal run: %v", sc.Name, err)
			}
		}
	}
	if seen == 0 {
		t.Fatal("registry has no random-topology scenarios")
	}
}
