package run

import (
	"fmt"
	"sort"

	"github.com/clockless/zigzag/internal/model"
)

// MessageEvent describes one delivery for the Builder: the FFIP message sent
// by FromProc at SendTime (i.e. at FromProc's node whose time is exactly
// SendTime) on the channel to ToProc, delivered at RecvTime.
type MessageEvent struct {
	FromProc model.ProcID
	ToProc   model.ProcID
	SendTime model.Time
	RecvTime model.Time
}

// ExternalEvent describes a spontaneous external input for the Builder.
type ExternalEvent struct {
	Proc  model.ProcID
	Time  model.Time
	Label string
}

// Builder assembles a Run from raw timed events. Node indices are derived:
// every distinct time at which a process receives something (messages and/or
// externals) becomes one batch, creating one new basic node. The builder is
// used by the simulator and by the run-synthesis constructions of
// internal/timing (Lemma 8 run-by-timing, Definition 24 fast run).
type Builder struct {
	net      *model.Network
	horizon  model.Time
	messages []MessageEvent
	externs  []ExternalEvent
	tolerant bool
}

// NewBuilder returns a Builder for runs over net recorded up to horizon.
func NewBuilder(net *model.Network, horizon model.Time) *Builder {
	return &Builder{net: net, horizon: horizon}
}

// Message appends a delivery event.
func (bl *Builder) Message(ev MessageEvent) *Builder {
	bl.messages = append(bl.messages, ev)
	return bl
}

// External appends an external-input event.
func (bl *Builder) External(ev ExternalEvent) *Builder {
	bl.externs = append(bl.externs, ev)
	return bl
}

// Tolerate relaxes Build's per-delivery latency-window check to latency >= 1,
// admitting recordings of fault-injected executions whose deliveries may
// violate their channel's [L, U] bounds (internal/faults deadline plans).
// All structural checks — channels exist, nodes exist, no duplicate sends,
// horizon — still apply; dropped messages simply surface as Pending. Such a
// run will generally fail Validate, which is the point: the faults injector,
// not the builder, owns violation accounting for faulted runs.
func (bl *Builder) Tolerate() *Builder {
	bl.tolerant = true
	return bl
}

// Build derives node indices, wires deliveries to nodes and returns the Run.
// It fails if any event is inconsistent (bad channel, bad times, sender has
// no node at the send time, event beyond horizon). Build does NOT check the
// forced-delivery (upper bound deadline) discipline — call Validate on the
// result for full legality checking.
func (bl *Builder) Build() (*Run, error) {
	n := bl.net.N()
	h := int(bl.horizon)

	// 1. Collect the receive times of every process in horizon-indexed
	// bitmaps (one shared backing array; no per-process maps).
	recvBacking := make([]bool, n*(h+1))
	recv := make([][]bool, n)
	for i := range recv {
		recv[i] = recvBacking[i*(h+1) : (i+1)*(h+1)]
	}
	counts := make([]int, n)
	note := func(p model.ProcID, t model.Time) error {
		if !bl.net.ValidProc(p) {
			return fmt.Errorf("%w: process %d", model.ErrBadProc, p)
		}
		if t < 1 {
			return fmt.Errorf("run: time %d: receipts start at time 1", t)
		}
		if t > bl.horizon {
			return fmt.Errorf("%w: time %d > horizon %d", ErrOutsideHorizon, t, bl.horizon)
		}
		if !recv[p-1][t] {
			recv[p-1][t] = true
			counts[p-1]++
		}
		return nil
	}
	for _, ev := range bl.messages {
		if err := note(ev.ToProc, ev.RecvTime); err != nil {
			return nil, fmt.Errorf("delivery %d->%d: %w", ev.FromProc, ev.ToProc, err)
		}
	}
	for _, ev := range bl.externs {
		if err := note(ev.Proc, ev.Time); err != nil {
			return nil, fmt.Errorf("external %q: %w", ev.Label, err)
		}
	}

	// 2. Assign node indices per process: index 0 at time 0, then one node
	// per distinct receive time in ascending order. nodeAt[i][t] is the
	// index of process i+1's node created at time t (0 = none).
	total := n
	for _, c := range counts {
		total += c
	}
	r := &Run{
		net:     bl.net,
		horizon: bl.horizon,
		times:   make([][]model.Time, n),
		nodeOff: make([]int32, n+1),
		inbox:   make([]span, total),
		extIn:   make(map[BasicNode][]int, len(bl.externs)),
		sent:    make(map[sentKey]int, len(bl.messages)),
	}
	nodeBacking := make([]int32, n*(h+1))
	nodeAt := make([][]int32, n)
	timeBacking := make([]model.Time, 0, total)
	for i := 0; i < n; i++ {
		nodeAt[i] = nodeBacking[i*(h+1) : (i+1)*(h+1)]
		r.nodeOff[i+1] = r.nodeOff[i] + int32(counts[i]) + 1
		start := len(timeBacking)
		timeBacking = append(timeBacking, 0)
		k := int32(0)
		for t := 1; t <= h; t++ {
			if recv[i][t] {
				k++
				nodeAt[i][t] = k
				timeBacking = append(timeBacking, model.Time(t))
			}
		}
		r.times[i] = timeBacking[start:len(timeBacking):len(timeBacking)]
	}

	// 3. Wire deliveries. The sent map doubles as the duplicate-send check;
	// its indices are fixed up after sorting below.
	r.deliveries = make([]Delivery, 0, len(bl.messages))
	for _, ev := range bl.messages {
		cid := bl.net.ChanIDOf(ev.FromProc, ev.ToProc)
		if cid == model.NoChan {
			return nil, fmt.Errorf("%w: %d->%d", ErrChannelMissing, ev.FromProc, ev.ToProc)
		}
		if ev.SendTime == 0 {
			return nil, fmt.Errorf("%w: send at time 0 by process %d", ErrInitialSend, ev.FromProc)
		}
		var fromIdx int32
		if ev.SendTime >= 1 && int(ev.SendTime) <= h {
			fromIdx = nodeAt[ev.FromProc-1][ev.SendTime]
		}
		if fromIdx == 0 {
			return nil, fmt.Errorf("run: process %d has no node at send time %d", ev.FromProc, ev.SendTime)
		}
		from := BasicNode{Proc: ev.FromProc, Index: int(fromIdx)}
		to := BasicNode{Proc: ev.ToProc, Index: int(nodeAt[ev.ToProc-1][ev.RecvTime])}
		d := Delivery{From: from, To: to, SendTime: ev.SendTime, RecvTime: ev.RecvTime, Chan: cid}
		bd := bl.net.BoundsOf(cid)
		lat := ev.RecvTime - ev.SendTime
		if bl.tolerant {
			if lat < 1 {
				return nil, fmt.Errorf("%w: %s latency %d < 1", ErrBadDelivery, d, lat)
			}
		} else if lat < bd.Lower || lat > bd.Upper {
			return nil, fmt.Errorf("%w: %s latency %d outside %s", ErrBadDelivery, d, lat, bd)
		}
		key := sentKey{from: from, to: ev.ToProc}
		if _, dup := r.sent[key]; dup {
			return nil, fmt.Errorf("%w: %s to %d", ErrDuplicateSend, from, ev.ToProc)
		}
		r.sent[key] = -1
		r.deliveries = append(r.deliveries, d)
	}
	r.externals = make([]External, 0, len(bl.externs))
	for _, ev := range bl.externs {
		to := BasicNode{Proc: ev.Proc, Index: int(nodeAt[ev.Proc-1][ev.Time])}
		idx := len(r.externals)
		r.externals = append(r.externals, External{To: to, Time: ev.Time, Label: ev.Label})
		r.extIn[to] = append(r.extIn[to], idx)
	}

	// 4. Derive pending messages: every non-initial node sends on every
	// outgoing channel under FFIP; sends without a recorded delivery are
	// still in transit. Only presence in sent matters here, so this can run
	// before the indices are fixed up.
	for p := model.ProcID(1); int(p) <= n; p++ {
		for k := 1; k <= r.LastIndex(p); k++ {
			from := BasicNode{Proc: p, Index: k}
			st := r.times[p-1][k]
			for _, a := range bl.net.OutArcs(p) {
				if _, ok := r.sent[sentKey{from: from, to: a.To}]; !ok {
					r.pending = append(r.pending, Pending{From: from, To: a.To, SendTime: st, Chan: a.ID})
				}
			}
		}
	}
	sort.Slice(r.pending, func(i, j int) bool {
		a, b := r.pending[i], r.pending[j]
		if a.SendTime != b.SendTime {
			return a.SendTime < b.SendTime
		}
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		return a.To < b.To
	})
	sort.Slice(r.deliveries, func(i, j int) bool {
		a, b := r.deliveries[i], r.deliveries[j]
		if a.RecvTime != b.RecvTime {
			return a.RecvTime < b.RecvTime
		}
		if a.To.Proc != b.To.Proc {
			return a.To.Proc < b.To.Proc
		}
		if a.From.Proc != b.From.Proc {
			return a.From.Proc < b.From.Proc
		}
		// Two messages on one channel can share a receive batch (sent at
		// different instants); SendTime makes the key total, so the
		// recorded order is independent of event insertion order — the
		// environment loops of sim and live interleave differently.
		return a.SendTime < b.SendTime
	})
	// Re-index after sorting deliveries. Deliveries into one node share its
	// (RecvTime, To.Proc) batch key, so after the sort each inbox is one
	// contiguous span.
	for idx, d := range r.deliveries {
		r.sent[sentKey{from: d.From, to: d.To.Proc}] = idx
		sp := &r.inbox[r.flat(d.To)]
		if sp.hi == sp.lo {
			sp.lo, sp.hi = int32(idx), int32(idx+1)
		} else {
			sp.hi = int32(idx + 1)
		}
	}
	// Content fingerprint over the canonical event log: deliveries in the
	// arrival order just established and externals in recorded order. The
	// sort above makes the hash independent of event insertion order, so the
	// interleaving differences between the sim and live environment loops
	// cannot split fingerprints of byte-identical recordings.
	fph := fpMix(fpSeed(bl.net), uint64(bl.horizon))
	for _, d := range r.deliveries {
		fph = fpDelivery(fph, d)
	}
	for _, e := range r.externals {
		fph = fpExternal(fph, e)
	}
	r.fingerprint = fpFinish(fph)
	return r, nil
}

// MustBuild is Build that panics on error.
func (bl *Builder) MustBuild() *Run {
	r, err := bl.Build()
	if err != nil {
		panic(err)
	}
	return r
}
