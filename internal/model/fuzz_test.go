package model_test

import (
	"testing"

	"github.com/clockless/zigzag/internal/model"
)

// fuzzArc is one decoded channel declaration.
type fuzzArc struct {
	from, to     model.ProcID
	lower, upper int
}

// decodeArcs turns the fuzz input into a process count and a channel list.
// Bounds are kept small and non-degenerate often enough that most inputs
// build; invalid declarations (self-loops, duplicates, bad bounds) are the
// fuzzer's job to find and Build's job to reject — never to panic on.
func decodeArcs(data []byte) (int, []fuzzArc) {
	if len(data) < 1 {
		return 0, nil
	}
	n := int(data[0])%6 + 1
	var arcs []fuzzArc
	for i := 1; i+3 < len(data); i += 4 {
		arcs = append(arcs, fuzzArc{
			from:  model.ProcID(int(data[i])%8 + 1),
			to:    model.ProcID(int(data[i+1])%8 + 1),
			lower: int(data[i+2]) % 5,
			upper: int(data[i+3]) % 7,
		})
	}
	return n, arcs
}

func buildNet(n int, arcs []fuzzArc) (*model.Network, error) {
	b := model.NewBuilder(n)
	for _, a := range arcs {
		b.Chan(a.from, a.to, a.lower, a.upper)
	}
	return b.Build()
}

// FuzzNetworkFingerprint checks the content-addressing contract of
// Network.Fingerprint on arbitrary topologies: declaration order never
// changes the fingerprint, the fingerprint is never the zero sentinel, and
// perturbing any single channel bound changes it. Caches keyed by the
// fingerprint (sweep engine maps, the standing-prefix tier) rely on exactly
// these properties.
func FuzzNetworkFingerprint(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2, 1, 2, 1, 2, 2, 0, 1, 2})
	f.Add([]byte{5, 0, 1, 0, 3, 1, 0, 2, 2, 2, 3, 1, 1, 3, 4, 0, 5})
	f.Add([]byte{1, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return
		}
		n, arcs := decodeArcs(data)
		if n == 0 {
			return
		}
		net, err := buildNet(n, arcs)
		if err != nil {
			// Invalid declaration (bad proc, self-loop, duplicate, bad
			// bounds): a typed error is the contract; nothing to fingerprint.
			return
		}
		fp := net.Fingerprint()
		if fp == 0 {
			t.Fatal("fingerprint is the zero no-fingerprint sentinel")
		}

		// Declaration order must not matter: rebuild with the arcs reversed.
		rev := make([]fuzzArc, len(arcs))
		for i, a := range arcs {
			rev[len(arcs)-1-i] = a
		}
		net2, err := buildNet(n, rev)
		if err != nil {
			t.Fatalf("reversed declaration failed to build: %v", err)
		}
		if fp2 := net2.Fingerprint(); fp2 != fp {
			t.Fatalf("declaration order changed fingerprint: %#x vs %#x", fp, fp2)
		}

		// Perturbing one channel's upper bound must change the fingerprint.
		if len(arcs) > 0 {
			bumped := make([]fuzzArc, len(arcs))
			copy(bumped, arcs)
			bumped[0].upper++
			net3, err := buildNet(n, bumped)
			if err != nil {
				t.Fatalf("bumped bound failed to build: %v", err)
			}
			if net3.Fingerprint() == fp {
				t.Fatalf("bumping a bound left fingerprint %#x unchanged", fp)
			}
		}

		// Shrinking the topology must change the fingerprint too: drop the
		// last channel (still valid — removing a channel cannot introduce an
		// error).
		if len(arcs) > 0 {
			net4, err := buildNet(n, arcs[:len(arcs)-1])
			if err != nil {
				t.Fatalf("dropped channel failed to build: %v", err)
			}
			if net4.Fingerprint() == fp {
				t.Fatalf("dropping a channel left fingerprint %#x unchanged", fp)
			}
		}
	})
}
